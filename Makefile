# Mirrors .github/workflows/ci.yml: `make lint test` is what CI runs.

GO ?= go

.PHONY: build test test-race test-full bench lint fmt

build:
	$(GO) build ./...

# The short suite is what CI gates on (<5 minutes).
test:
	$(GO) test -short ./...

test-race:
	$(GO) test -race -short ./...

# Full suite, including the ~80s linear-regression plan-space search.
test-full:
	$(GO) test ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .
