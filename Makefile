# Mirrors .github/workflows/ci.yml: `make lint test` is what CI runs.

GO ?= go

.PHONY: build test test-race test-full bench bench-json bench-check lint fmt

build:
	$(GO) build ./...

# The short suite is what CI gates on (<5 minutes).
test:
	$(GO) test -short ./...

test-race:
	$(GO) test -race -short ./...

# Full suite, including the ~80s linear-regression plan-space search.
test-full:
	$(GO) test ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Seed the perf trajectory: parallel-exec + buffer-pool benchmarks as JSON
# (op, ns/op, hit rate) into BENCH_pool.json, the eviction-policy
# comparison (LRU vs segmented hot-set hit rate under a flooding scan) into
# BENCH_cache.json, the sharded-vs-single-directory parallel-read benchmark
# into BENCH_shard.json, and the replication benchmarks (k-way write
# amplification, healthy vs degraded-fallback read latency) into
# BENCH_replica.json. CI uploads all four as artifacts and gates on them
# via bench-check. Each step runs separately so a failing benchmark fails
# the target.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkParallelExec' -benchtime 3x . > .bench-exec.txt
	$(GO) test -run '^$$' -bench 'BenchmarkPool' -benchmem ./internal/buffer > .bench-pool.txt
	cat .bench-exec.txt .bench-pool.txt | $(GO) run ./cmd/benchjson -out BENCH_pool.json
	$(GO) test -run '^$$' -bench 'BenchmarkCachePolicy' -benchmem ./internal/buffer > .bench-cache.txt
	$(GO) run ./cmd/benchjson -out BENCH_cache.json < .bench-cache.txt
	$(GO) test -run '^$$' -bench 'BenchmarkShardedRead' -benchtime 5x ./internal/storage > .bench-shard.txt
	$(GO) run ./cmd/benchjson -out BENCH_shard.json < .bench-shard.txt
	$(GO) test -run '^$$' -bench 'BenchmarkReplicatedWrite|BenchmarkDegradedRead' -benchtime 5x ./internal/storage > .bench-replica.txt
	$(GO) run ./cmd/benchjson -out BENCH_replica.json < .bench-replica.txt
	@rm -f .bench-exec.txt .bench-pool.txt .bench-cache.txt .bench-shard.txt .bench-replica.txt

# Bench-regression gate: stash the committed baselines, rerun the
# benchmarks, and fail on a >25% ns/op regression against any baseline.
# CI runs exactly this; refresh the committed BENCH_*.json to move a
# baseline deliberately.
bench-check:
	@mkdir -p .bench-base
	cp BENCH_pool.json BENCH_cache.json BENCH_shard.json BENCH_replica.json .bench-base/
	$(MAKE) bench-json
	$(GO) run ./cmd/benchjson -compare .bench-base/BENCH_pool.json BENCH_pool.json -tolerance 0.25
	$(GO) run ./cmd/benchjson -compare .bench-base/BENCH_cache.json BENCH_cache.json -tolerance 0.25
	$(GO) run ./cmd/benchjson -compare .bench-base/BENCH_shard.json BENCH_shard.json -tolerance 0.25
	$(GO) run ./cmd/benchjson -compare .bench-base/BENCH_replica.json BENCH_replica.json -tolerance 0.25
	@rm -rf .bench-base

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .
