# Mirrors .github/workflows/ci.yml: `make lint test` is what CI runs.

GO ?= go

.PHONY: build test test-race test-full bench bench-json bench-check lint fmt doc-check riotvet smoke

build:
	$(GO) build ./...

# The short suite is what CI gates on (<5 minutes).
test:
	$(GO) test -short ./...

test-race:
	$(GO) test -race -short ./...

# Full suite, including the ~80s linear-regression plan-space search.
test-full:
	$(GO) test ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Seed the perf trajectory: parallel-exec + buffer-pool benchmarks as JSON
# (op, ns/op, hit rate) into BENCH_pool.json, the eviction-policy
# comparison (LRU vs segmented hot-set hit rate under a flooding scan) into
# BENCH_cache.json, the sharded-vs-single-directory parallel-read benchmark
# into BENCH_shard.json, the replication benchmarks (k-way write
# amplification, healthy vs degraded-fallback read latency) into
# BENCH_replica.json, and the network block-service round-trip benchmarks
# (remote read/write vs local dir, pipelined vs serial under device
# latency) into BENCH_remote.json, the telemetry overhead benchmark
# (instrumented vs no-op registry on the pipelined exec path — the two
# must stay within a few percent of each other) into BENCH_telemetry.json,
# the three-tier planner benchmark (full Apriori search vs budgeted
# greedy vs warm cache-served query) into BENCH_planner.json, and the
# streamed-results delivery benchmark (a result 4x the pool's capacity
# streamed with flat pool residency — the benchmark itself fails if the
# pool's high-water mark exceeds capacity) into BENCH_stream.json.
# CI uploads all eight as artifacts and gates on them via bench-check.
# Each step runs separately so a failing benchmark fails the target.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkParallelExec' -benchtime 3x . > .bench-exec.txt
	$(GO) test -run '^$$' -bench 'BenchmarkPool' -benchmem ./internal/buffer > .bench-pool.txt
	cat .bench-exec.txt .bench-pool.txt | $(GO) run ./cmd/benchjson -out BENCH_pool.json
	$(GO) test -run '^$$' -bench 'BenchmarkCachePolicy' -benchmem ./internal/buffer > .bench-cache.txt
	$(GO) run ./cmd/benchjson -out BENCH_cache.json < .bench-cache.txt
	$(GO) test -run '^$$' -bench 'BenchmarkShardedRead' -benchtime 5x ./internal/storage > .bench-shard.txt
	$(GO) run ./cmd/benchjson -out BENCH_shard.json < .bench-shard.txt
	$(GO) test -run '^$$' -bench 'BenchmarkReplicatedWrite|BenchmarkDegradedRead' -benchtime 5x ./internal/storage > .bench-replica.txt
	$(GO) run ./cmd/benchjson -out BENCH_replica.json < .bench-replica.txt
	$(GO) test -run '^$$' -bench 'BenchmarkRemote' -benchtime 20x ./internal/blockd > .bench-remote.txt
	$(GO) run ./cmd/benchjson -out BENCH_remote.json < .bench-remote.txt
	$(GO) test -run '^$$' -bench 'BenchmarkTelemetryOverhead' -benchtime 5x . > .bench-telemetry.txt
	$(GO) run ./cmd/benchjson -out BENCH_telemetry.json < .bench-telemetry.txt
	$(GO) test -run '^$$' -bench 'BenchmarkPlannerTiers' -benchtime 3x . > .bench-planner.txt
	$(GO) run ./cmd/benchjson -out BENCH_planner.json < .bench-planner.txt
	$(GO) test -run '^$$' -bench 'BenchmarkStreamedResults' -benchtime 20x . > .bench-stream.txt
	$(GO) run ./cmd/benchjson -out BENCH_stream.json < .bench-stream.txt
	@rm -f .bench-exec.txt .bench-pool.txt .bench-cache.txt .bench-shard.txt .bench-replica.txt .bench-remote.txt .bench-telemetry.txt .bench-planner.txt .bench-stream.txt

# Bench-regression gate: stash the committed baselines, rerun the
# benchmarks, and fail on a >25% ns/op regression against any baseline.
# CI runs exactly this; refresh the committed BENCH_*.json to move a
# baseline deliberately.
bench-check:
	@mkdir -p .bench-base
	cp BENCH_pool.json BENCH_cache.json BENCH_shard.json BENCH_replica.json BENCH_remote.json BENCH_telemetry.json BENCH_planner.json BENCH_stream.json .bench-base/
	$(MAKE) bench-json
	$(GO) run ./cmd/benchjson -compare .bench-base/BENCH_pool.json BENCH_pool.json -tolerance 0.25
	$(GO) run ./cmd/benchjson -compare .bench-base/BENCH_cache.json BENCH_cache.json -tolerance 0.25
	$(GO) run ./cmd/benchjson -compare .bench-base/BENCH_shard.json BENCH_shard.json -tolerance 0.25
	$(GO) run ./cmd/benchjson -compare .bench-base/BENCH_replica.json BENCH_replica.json -tolerance 0.25
	$(GO) run ./cmd/benchjson -compare .bench-base/BENCH_remote.json BENCH_remote.json -tolerance 0.25
	$(GO) run ./cmd/benchjson -compare .bench-base/BENCH_telemetry.json BENCH_telemetry.json -tolerance 0.25
	$(GO) run ./cmd/benchjson -compare .bench-base/BENCH_planner.json BENCH_planner.json -tolerance 0.25
	$(GO) run ./cmd/benchjson -compare .bench-base/BENCH_stream.json BENCH_stream.json -tolerance 0.25
	@rm -rf .bench-base

# Godoc completeness over the public surface: the facade, the planner
# (core/sched/cost), the storage and server layers, and the network
# plane. CI fails on any exported identifier without a doc comment, and
# on any relative markdown link in README/docs pointing at a missing
# file.
doc-check:
	$(GO) run ./cmd/doccheck . ./internal/core ./internal/sched ./internal/cost ./internal/storage ./internal/server ./internal/blockd ./internal/blockproto ./internal/telemetry
	$(GO) run ./cmd/doccheck -links README.md docs

# End-to-end fleet smoke test: 4 riotblockd + riotshared, query, kill a
# server, repair, restart against the persisted catalog.
smoke:
	./scripts/remote_smoke.sh

# riotvet is the project-invariant static-analysis suite (guarded-field
# locking, I/O under locks, context threading, error classification); see
# docs/static-analysis.md for the invariants and the annotation vocabulary.
# Also runnable through the vet driver: go vet -vettool=$(go env GOPATH)/bin/riotvet ./...
riotvet:
	$(GO) run ./cmd/riotvet ./...

# The one lint entry point: go vet, gofmt, the riotvet suite, and godoc
# completeness + docs link checking. CI runs exactly this.
lint: riotvet doc-check
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .
