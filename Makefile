# Mirrors .github/workflows/ci.yml: `make lint test` is what CI runs.

GO ?= go

.PHONY: build test test-race test-full bench bench-json lint fmt

build:
	$(GO) build ./...

# The short suite is what CI gates on (<5 minutes).
test:
	$(GO) test -short ./...

test-race:
	$(GO) test -race -short ./...

# Full suite, including the ~80s linear-regression plan-space search.
test-full:
	$(GO) test ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Seed the perf trajectory: parallel-exec + buffer-pool benchmarks as JSON
# (op, ns/op, hit rate) into BENCH_pool.json, plus the eviction-policy
# comparison (LRU vs segmented hot-set hit rate under a flooding scan) into
# BENCH_cache.json. CI uploads both as artifacts. Each step runs separately
# so a failing benchmark fails the target.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkParallelExec' -benchtime 1x . > .bench-exec.txt
	$(GO) test -run '^$$' -bench 'BenchmarkPool' -benchmem ./internal/buffer > .bench-pool.txt
	cat .bench-exec.txt .bench-pool.txt | $(GO) run ./cmd/benchjson -out BENCH_pool.json
	$(GO) test -run '^$$' -bench 'BenchmarkCachePolicy' -benchmem ./internal/buffer > .bench-cache.txt
	$(GO) run ./cmd/benchjson -out BENCH_cache.json < .bench-cache.txt
	@rm -f .bench-exec.txt .bench-pool.txt .bench-cache.txt

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .
