// Package riotshare is a Go implementation of RIOTShare, the I/O-sharing
// optimizer for big array analytics of Zhang and Yang, "Optimizing I/O for
// Big Array Analytics", PVLDB 5(8), 2012.
//
// RIOTShare takes a static-control program over disk-resident array blocks
// (matrix pipelines, linear regression, scans and joins over blocked
// relations, or user-defined loop nests), extracts data dependences and I/O
// sharing opportunities as integer polyhedra, searches the space of affine
// schedules with an Apriori-style enumeration, costs every legal plan (I/O
// volume and peak memory), and executes the chosen plan through a
// sharing-aware buffer manager over a block storage engine (DAF or
// LAB-tree formats).
//
// Typical use:
//
//	p := riotshare.AddMul(riotshare.AddMulConfig{
//	    N1: 12, N2: 12, N3: 1,
//	    ABBlock: riotshare.Dims{Rows: 6000, Cols: 4000},
//	    DBlock:  riotshare.Dims{Rows: 4000, Cols: 5000},
//	})
//	res, err := riotshare.Optimize(p, riotshare.Options{
//	    BindParams:  true,
//	    MemCapBytes: 1 << 30,
//	})
//	// res.Best is the cheapest legal plan fitting the cap; execute it:
//	store, _ := riotshare.NewStorage(dir, riotshare.FormatDAF)
//	store.CreateAll(p)
//	result, err := riotshare.Execute(res.Best, store, riotshare.PaperDiskModel(), 0)
//
// Programs can also be assembled operator by operator (MatAdd, MatMulAcc,
// MatInv, MatSub, RSS, Scan, NLJoin) or statement by statement through
// NewProgram and the Statement builder, which is the path for user-defined
// operators: the optimizer reasons about any static-control loop nest, not
// a fixed operator list (§2 of the paper).
package riotshare

import (
	"context"

	"riotshare/internal/buffer"
	"riotshare/internal/codegen"
	"riotshare/internal/core"
	"riotshare/internal/deps"
	"riotshare/internal/disk"
	"riotshare/internal/exec"
	"riotshare/internal/govern"
	"riotshare/internal/ops"
	"riotshare/internal/prog"
	"riotshare/internal/server"
	"riotshare/internal/storage"
)

// Program is a static-control program over blocked arrays (§4.1).
type Program = prog.Program

// Statement is one statement of a program with its iteration domain.
type Statement = prog.Statement

// Array describes a disk-resident blocked array.
type Array = prog.Array

// Expr is an affine expression used by the statement builder.
type Expr = prog.Expr

// Cond is an affine access guard.
type Cond = prog.Cond

// AccessType distinguishes reads from writes.
type AccessType = prog.AccessType

// Read and Write are the access types.
const (
	Read  = prog.Read
	Write = prog.Write
)

// NewProgram creates a program with the given global parameters (each
// constrained >= 1).
func NewProgram(name string, params ...string) *Program { return prog.New(name, params...) }

// V, C, GE and EQ build affine expressions and guards for the statement
// builder.
var (
	V  = prog.V
	C  = prog.C
	GE = prog.GE
	EQ = prog.EQ
)

// Schedule maps statement instances to multidimensional time.
type Schedule = prog.Schedule

// Dims is a block shape in elements.
type Dims = ops.Dims

// Mat describes one matrix of a program.
type Mat = ops.Mat

// Operator-library builders (each appends one statement as a new loop
// nest).
var (
	MatAdd    = ops.MatAdd
	MatMulAcc = ops.MatMulAcc
	MatSub    = ops.MatSub
	MatInv    = ops.MatInv
	RSS       = ops.RSS
	Scan      = ops.Scan
	NLJoin    = ops.NLJoin
)

// AddMulConfig, TwoMMConfig and LinRegConfig size the paper's three
// benchmark programs.
type (
	AddMulConfig = ops.AddMulConfig
	TwoMMConfig  = ops.TwoMMConfig
	LinRegConfig = ops.LinRegConfig
)

// AddMul builds Example 1 (C = A+B; E = C·D).
func AddMul(cfg AddMulConfig) *Program { return ops.AddMul(cfg) }

// TwoMM builds the two-multiplication program (C = A·B; E = A·D).
func TwoMM(cfg TwoMMConfig) *Program { return ops.TwoMM(cfg) }

// LinReg builds the seven-step ordinary-least-squares program.
func LinReg(cfg LinRegConfig) *Program { return ops.LinReg(cfg) }

// Options configures optimization.
type Options = core.Options

// Result is the optimizer output: all legal plans, costed and sorted.
type Result = core.Result

// EvaluatedPlan is one legal plan with its cost and executable timeline.
type EvaluatedPlan = core.EvaluatedPlan

// Analysis exposes the extracted dependences and sharing opportunities.
type Analysis = deps.Analysis

// CoAccess is a dependence or sharing opportunity with its extent
// polyhedron.
type CoAccess = deps.CoAccess

// Timeline is a lowered, executable plan.
type Timeline = codegen.Timeline

// Optimize runs analysis, plan search, and costing (Figure 2 of the paper).
func Optimize(p *Program, opt Options) (*Result, error) { return core.Optimize(p, opt) }

// OptimizeSubsets evaluates only the named sharing-opportunity
// combinations, skipping the full enumeration.
func OptimizeSubsets(p *Program, opt Options, subsets [][]string) (*Result, error) {
	return core.OptimizeSubsets(p, opt, subsets)
}

// OptimizeGreedy is the budgeted fast-path optimizer (the server's tier-2
// planner): a greedy cost-ordered accretion over sharing opportunities that
// runs O(n) schedule searches instead of the Apriori enumeration's
// exponential worst case. Canceling ctx mid-search keeps the best plan
// found so far rather than failing. See docs/planner.md.
func OptimizeGreedy(ctx context.Context, p *Program, opt Options) (*Result, error) {
	return core.OptimizeGreedy(ctx, p, opt)
}

// OptimizeBlockSize co-optimizes array block sizes with I/O sharing (the
// §7 future-work extension).
var OptimizeBlockSize = core.OptimizeBlockSize

// OptimizeBlockSizeCtx is OptimizeBlockSize with cancellation: a deadline
// or shutdown interrupts the per-scale sweep.
var OptimizeBlockSizeCtx = core.OptimizeBlockSizeCtx

// DiskModel converts I/O volumes to estimated seconds.
type DiskModel = disk.Model

// PaperDiskModel returns the sustained rates benchmarked in §6 (96 MB/s
// reads, 60 MB/s writes).
func PaperDiskModel() DiskModel { return disk.PaperModel() }

// RefinedDiskModel adds a per-request overhead to the linear model.
func RefinedDiskModel(overheadSec float64) DiskModel { return disk.RefinedModel(overheadSec) }

// Storage is the RIOTStore single-directory block store manager.
type Storage = storage.Manager

// StorageBackend is the block-storage abstraction execution and buffering
// run over: the single-directory *Storage or a *ShardedStorage implement
// it interchangeably.
type StorageBackend = storage.Backend

// ShardedStorage stripes blocks across N shards — local directories
// (stand-ins for devices) and remote riotblockd servers, mixed freely —
// with deterministic placement, per-shard physical I/O stats, and parallel
// cross-shard reads. With Replicas = k > 1 each block is mirrored on its
// primary shard plus the next k-1 in ring order: a lost shard then degrades
// reads to the surviving replicas (DegradeShard takes one offline
// explicitly, an unreachable server degrades automatically, DegradedReads
// counts the fallbacks) and Repair re-mirrors it in place. With persistence
// enabled it catalogs shared arrays in a per-shard-root manifest — written
// atomically and fsynced — so they survive restarts, and a shard whose
// manifest is lost or torn reopens degraded instead of failing while
// replication still covers every block.
type ShardedStorage = storage.ShardedManager

// ShardedStorageOptions configures OpenShardedStorage (format, placement,
// replication, persistence, remote-client tuning).
type ShardedStorageOptions = storage.ShardedOptions

// ShardStats is one shard's physical I/O counters with its spec (directory
// or address), degraded state, and degraded-read (replica fallback) count.
type ShardStats = storage.ShardStats

// Placement names for sharded storage: hash of array/block coordinates, or
// round-robin by grid row.
const (
	PlacementHash = storage.PlacementHash
	PlacementRows = storage.PlacementRows
)

// OpenShardedStorage opens (or, with persistence, reopens) a sharded store
// over the given shard specs: directory paths, host:port addresses of
// riotblockd servers, or a mix (see IsRemoteShardSpec). Placement,
// replication, manifests, and results are identical whichever kind each
// shard is.
func OpenShardedStorage(specs []string, opt ShardedStorageOptions) (*ShardedStorage, error) {
	return storage.OpenSharded(specs, opt)
}

// RemoteShard is a block-storage backend served by one riotblockd process
// over the wire protocol in docs/remote-protocol.md: a pooled, pipelining,
// retrying client that satisfies StorageBackend. Usually used indirectly —
// OpenShardedStorage builds one per host:port spec — but it works
// standalone as a single-shard store too.
type RemoteShard = storage.RemoteShard

// RemoteShardOptions tunes a remote shard client: connection pool size,
// dial and per-operation timeouts, and the retry/backoff policy for
// transient failures.
type RemoteShardOptions = storage.RemoteOptions

// ErrShardUnavailable marks a persistent connection-level failure against
// a remote shard (connection refused, or retries exhausted); a replicated
// ShardedStorage responds by degrading the shard instead of failing
// queries.
var ErrShardUnavailable = storage.ErrShardUnavailable

// NewRemoteShard creates a client for the riotblockd server at addr
// (host:port). Connections are lazy: the server may come up later.
func NewRemoteShard(addr string, opt RemoteShardOptions) *RemoteShard {
	return storage.NewRemoteShard(addr, opt)
}

// IsRemoteShardSpec reports whether a shard spec names a riotblockd
// address (host:port) rather than a local directory.
var IsRemoteShardSpec = storage.IsRemoteSpec

// ShardDirs derives N shard directory paths under one root (shard-0 …
// shard-N-1), the default layout when shards are not separate devices.
var ShardDirs = storage.ShardDirs

// StorageFormat selects the on-disk format.
type StorageFormat = storage.Format

// Storage formats: the directly addressable file and the linearized array
// B-tree.
const (
	FormatDAF     = storage.FormatDAF
	FormatLABTree = storage.FormatLABTree
)

// NewStorage creates a storage manager writing under dir.
func NewStorage(dir string, format StorageFormat) (*Storage, error) {
	return storage.NewManager(dir, format)
}

// ExecResult reports a physical plan execution.
type ExecResult = exec.Result

// ExecOptions configures the pipelined parallel engine: Workers is the
// number of concurrent kernel workers (<= 1 runs the sequential
// interpreter) and PrefetchDepth bounds the I/O prefetch window (<= 0
// picks a default; a memory cap shrinks it to the cap's headroom above the
// plan's peak). Logical I/O accounting and numerics are identical for
// every worker count.
type ExecOptions = exec.Options

// Execute runs an evaluated plan against storage with the given disk model
// and optional memory cap (bytes; 0 = unlimited). Input arrays must already
// be stored; output and intermediate blocks are produced by the run.
func Execute(pl *EvaluatedPlan, store StorageBackend, model DiskModel, memCapBytes int64) (ExecResult, error) {
	return ExecuteOptions(pl, store, model, memCapBytes, ExecOptions{})
}

// ExecuteOptions is Execute with pipelined parallel execution: a worker
// pool runs independent in-core kernels concurrently while a prefetcher
// issues block reads ahead of the timeline, preserving the plan's exact
// I/O volumes and bit-identical numerics.
func ExecuteOptions(pl *EvaluatedPlan, store StorageBackend, model DiskModel, memCapBytes int64, opt ExecOptions) (ExecResult, error) {
	eng := &exec.Engine{Store: store, Model: model, MemCapBytes: memCapBytes}
	return eng.RunOptions(pl.Timeline, opt)
}

// Pseudocode renders a plan's recovered loop nest (§5.5-style output).
func Pseudocode(pl *EvaluatedPlan) string { return pl.Timeline.Pseudocode() }

// StorageStats snapshots a manager's physical I/O counters (requests and
// bytes that actually reached a block store; buffer-pool hits and coalesced
// reads do not count).
type StorageStats = storage.Stats

// BufferPool is the capacity-bounded, sharing-aware block cache in front
// of a storage manager: ref-counted pins driven by each plan's hold
// intervals, policy-driven eviction of unpinned blocks (LRU or a
// scan-resistant segmented LRU), deferred dirty write-back, optional
// per-tenant byte quotas, and hit/miss/eviction statistics. Share one pool
// across concurrent executions (via ExecOptions.Pool or the multi-query
// server) so a block read by one query is a cache hit for the next.
type BufferPool = buffer.Pool

// BufferPoolStats snapshots a pool's counters, including the sticky
// eviction write-back error and the per-tenant breakdown.
type BufferPoolStats = buffer.Stats

// BufferPoolOptions configures a pool's capacity, replacement policy
// ("lru" or "segmented"), and per-tenant quotas.
type BufferPoolOptions = buffer.Options

// BlockPool is the acquisition interface the execution engines use;
// *BufferPool and its aliasing sessions implement it.
type BlockPool = exec.BlockPool

// NewBufferPool creates a pool over the manager with the given soft
// capacity in bytes (<= 0 = unlimited) and the default LRU policy.
func NewBufferPool(store StorageBackend, capacityBytes int64) *BufferPool {
	return buffer.NewPool(store, capacityBytes)
}

// NewBufferPoolOptions creates a pool with an explicit replacement policy
// and optional per-tenant quotas.
func NewBufferPoolOptions(store StorageBackend, opt BufferPoolOptions) (*BufferPool, error) {
	return buffer.NewPoolOptions(store, opt)
}

// TenantConfig weights and bounds one tenant in the admission governor
// (round-robin weight, concurrency cap, plan peak memory cap).
type TenantConfig = govern.TenantConfig

// ServerConfig sizes the multi-query analytics service.
type ServerConfig = server.Config

// Server is the multi-query analytics service: a session/admission layer
// that optimizes submissions through a plan cache, admits up to K
// concurrent executions under a global memory cap, and runs them over one
// shared buffer pool. On a replicated sharded store (ServerConfig.Replicas
// >= 2) it survives a lost shard directory — reads degrade to replicas —
// and RepairShard (or POST /repair) heals the shard in place.
type Server = server.Server

// QueryRequest is one program submission: a named benchmark program or a
// statement-builder JSON spec.
type QueryRequest = server.Request

// QueryStatus is a point-in-time snapshot of one submitted query.
type QueryStatus = server.QueryStatus

// ProgramSpec is the JSON statement-builder program form accepted by the
// server (the paper's user-defined-operator path, §2).
type ProgramSpec = server.ProgramSpec

// ServerStats reports service-wide counters: pool hit rates, physical
// storage I/O, admission occupancy, the plan cache, and the per-tenant
// breakdown (queue depth, hit rate, bytes cached).
type ServerStats = server.Stats

// ServerTenantStats is one tenant's slice of the service counters.
type ServerTenantStats = server.TenantStats

// StreamStats reports the streamed result delivery path (/results/stream):
// active streams, finished streams by outcome, and delivered block/byte
// totals. See docs/streaming.md.
type StreamStats = server.StreamStats

// Stream frame kinds for the binary /results/stream wire format: the
// "kind" byte of each blockproto-framed message (array header, block,
// end-of-stream, in-band error). The frame layout is specified in
// docs/streaming.md.
const (
	StreamFrameArray = server.StreamFrameArray
	StreamFrameBlock = server.StreamFrameBlock
	StreamFrameEnd   = server.StreamFrameEnd
	StreamFrameError = server.StreamFrameError
)

// Stream retention modes (?retain= on /results/stream): retire delivered
// pool frames (evict, the default), keep them cached, or additionally
// drop the query's output stores after a complete stream.
const (
	StreamRetainEvict = server.RetainEvict
	StreamRetainKeep  = server.RetainKeep
	StreamRetainDrop  = server.RetainDrop
)

// NewServer creates a multi-query service with its own shared storage
// manager and buffer pool.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// Serve runs the multi-query service's HTTP/JSON API (submit, status,
// results, queries, stats) on addr until ctx is canceled, then shuts down
// gracefully. cmd/riotshared is a thin wrapper around it.
func Serve(ctx context.Context, addr string, cfg ServerConfig) error {
	return server.ListenAndServe(ctx, addr, cfg)
}
