package riotshare_test

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"riotshare"
	"riotshare/internal/blas"
)

// End-to-end through the public API only: build Example 1, optimize,
// execute the best plan, verify the numbers.
func TestPublicAPIQuickstart(t *testing.T) {
	p := riotshare.AddMul(riotshare.AddMulConfig{
		N1: 3, N2: 4, N3: 2,
		ABBlock: riotshare.Dims{Rows: 6, Cols: 5},
		DBlock:  riotshare.Dims{Rows: 5, Cols: 4},
	})
	res, err := riotshare.Optimize(p, riotshare.Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || len(res.Plans) < 2 {
		t.Fatalf("expected multiple plans, got %d", len(res.Plans))
	}
	store, err := riotshare.NewStorage(t.TempDir(), riotshare.FormatDAF)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := store.CreateAll(p); err != nil {
		t.Fatal(err)
	}
	// Store random inputs.
	rng := rand.New(rand.NewSource(2))
	fill := func(name string) *blas.Matrix {
		arr := p.Arrays[name]
		fm := blas.NewMatrix(arr.BlockRows*arr.GridRows, arr.BlockCols*arr.GridCols)
		for i := range fm.Data {
			fm.Data[i] = rng.NormFloat64()
		}
		for br := 0; br < arr.GridRows; br++ {
			for bc := 0; bc < arr.GridCols; bc++ {
				blk := blas.NewMatrix(arr.BlockRows, arr.BlockCols)
				for r := 0; r < arr.BlockRows; r++ {
					for c := 0; c < arr.BlockCols; c++ {
						blk.Set(r, c, fm.At(br*arr.BlockRows+r, bc*arr.BlockCols+c))
					}
				}
				if err := store.WriteBlock(name, int64(br), int64(bc), blk); err != nil {
					t.Fatal(err)
				}
			}
		}
		return fm
	}
	a, b, d := fill("A"), fill("B"), fill("D")

	r, err := riotshare.Execute(res.Best, store, riotshare.PaperDiskModel(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.ReadBytes != res.Best.Cost.ReadBytes {
		t.Fatalf("measured reads %d != predicted %d", r.ReadBytes, res.Best.Cost.ReadBytes)
	}
	// Verify E = (A+B)·D.
	sum := blas.NewMatrix(a.Rows, a.Cols)
	blas.Add(sum, a, b)
	want := blas.NewMatrix(a.Rows, d.Cols)
	blas.Gemm(want, sum, false, d, false)
	arr := p.Arrays["E"]
	for br := 0; br < arr.GridRows; br++ {
		for bc := 0; bc < arr.GridCols; bc++ {
			blk, err := store.ReadBlock("E", int64(br), int64(bc))
			if err != nil {
				t.Fatal(err)
			}
			for rr := 0; rr < arr.BlockRows; rr++ {
				for cc := 0; cc < arr.BlockCols; cc++ {
					w := want.At(br*arr.BlockRows+rr, bc*arr.BlockCols+cc)
					if df := blk.At(rr, cc) - w; df > 1e-9 || df < -1e-9 {
						t.Fatalf("E wrong at block (%d,%d)", br, bc)
					}
				}
			}
		}
	}
}

// A user-defined operator through the public builder API must be analyzed
// and optimized like any built-in (the extensibility requirement of §2).
func TestPublicAPIUserDefinedOperator(t *testing.T) {
	p := riotshare.NewProgram("stencilish", "n")
	p.AddArray(&riotshare.Array{Name: "Src", BlockRows: 4, BlockCols: 4, GridRows: 8, GridCols: 1})
	p.AddArray(&riotshare.Array{Name: "Dst", BlockRows: 4, BlockCols: 4, GridRows: 8, GridCols: 1})
	p.NewNest()
	s := p.NewStatement("s1", "i")
	s.Range("i", riotshare.C(0), riotshare.V("n").AddK(-1))
	s.Access(riotshare.Read, "Src", riotshare.V("i"), riotshare.C(0))
	s.Access(riotshare.Read, "Src", riotshare.V("i").AddK(1), riotshare.C(0))
	s.Access(riotshare.Write, "Dst", riotshare.V("i"), riotshare.C(0))
	s.SetKernel("add").SetNote("Dst[i]=Src[i]+Src[i+1]")
	p.Bind("n", 8)

	res, err := riotshare.Optimize(p, riotshare.Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	// The overlapping window Src[i+1]/Src[i] is an R→R sharing opportunity;
	// the optimizer must find a plan exploiting it.
	if len(res.Plans) < 2 {
		t.Fatalf("expected a sharing plan for the overlapping window, got %d plans", len(res.Plans))
	}
	best := &res.Plans[0]
	base := res.Baseline()
	if best.Cost.ReadBytes >= base.Cost.ReadBytes {
		t.Errorf("window reuse should cut reads: %d vs %d", best.Cost.ReadBytes, base.Cost.ReadBytes)
	}
}

// Pseudocode rendering must reconstruct loop structure.
func TestPseudocode(t *testing.T) {
	p := riotshare.AddMul(riotshare.AddMulConfig{
		N1: 3, N2: 4, N3: 2,
		ABBlock: riotshare.Dims{Rows: 4, Cols: 4},
		DBlock:  riotshare.Dims{Rows: 4, Cols: 4},
	})
	res, err := riotshare.Optimize(p, riotshare.Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	code := riotshare.Pseudocode(res.Best)
	if !strings.Contains(code, "for ") {
		t.Fatalf("pseudocode should contain loops:\n%s", code)
	}
	if !strings.Contains(code, "s1") || !strings.Contains(code, "s2") {
		t.Fatalf("pseudocode should reference both statements:\n%s", code)
	}
	t.Logf("best plan pseudocode:\n%s", code)
}

// The block-size co-optimizer is reachable through the public API.
func TestPublicOptimizeBlockSize(t *testing.T) {
	build := func(scale float64) *riotshare.Program {
		r := int(6 * scale)
		if r < 1 {
			r = 1
		}
		return riotshare.AddMul(riotshare.AddMulConfig{
			N1: 6, N2: 6, N3: 1,
			ABBlock: riotshare.Dims{Rows: r, Cols: 4},
			DBlock:  riotshare.Dims{Rows: 4, Cols: 5},
		})
	}
	choices, err := riotshare.OptimizeBlockSize(build, []float64{0.5, 1}, riotshare.Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != 2 {
		t.Fatalf("want 2 choices, got %d", len(choices))
	}
}

// A shared buffer pool through the public API: two executions of one plan
// over the same pool must produce identical results while the second run's
// reads are served from memory (no new physical reads).
func TestPublicAPISharedBufferPool(t *testing.T) {
	p := riotshare.AddMul(riotshare.AddMulConfig{
		N1: 2, N2: 3, N3: 1,
		ABBlock: riotshare.Dims{Rows: 4, Cols: 4},
		DBlock:  riotshare.Dims{Rows: 4, Cols: 4},
	})
	res, err := riotshare.Optimize(p, riotshare.Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	store, err := riotshare.NewStorage(t.TempDir(), riotshare.FormatDAF)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := store.CreateAll(p); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for _, name := range []string{"A", "B", "D"} {
		arr := p.Arrays[name]
		for br := 0; br < arr.GridRows; br++ {
			for bc := 0; bc < arr.GridCols; bc++ {
				blk := blas.NewMatrix(arr.BlockRows, arr.BlockCols)
				for i := range blk.Data {
					blk.Data[i] = rng.NormFloat64()
				}
				if err := store.WriteBlock(name, int64(br), int64(bc), blk); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	pool := riotshare.NewBufferPool(store, 0)
	opt := riotshare.ExecOptions{Pool: pool}
	r1, err := riotshare.ExecuteOptions(res.Best, store, riotshare.PaperDiskModel(), 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	readsAfterFirst := store.Stats().ReadReqs
	r2, err := riotshare.ExecuteOptions(res.Best, store, riotshare.PaperDiskModel(), 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	r1.CPUTime, r2.CPUTime = 0, 0
	r1.StageTimes, r2.StageTimes = nil, nil
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("pooled reruns diverged: %+v vs %+v", r1, r2)
	}
	if got := store.Stats().ReadReqs; got != readsAfterFirst {
		t.Errorf("second run did %d new physical reads, want 0 (pool hits)", got-readsAfterFirst)
	}
	if st := pool.Stats(); st.Hits == 0 || st.PinnedFrames != 0 {
		t.Errorf("pool stats after runs: %+v (want hits > 0 and no leaked pins)", st)
	}
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
}

// OptimizeSubsets, the LAB-tree storage format, and the refined disk model
// through the public API.
func TestPublicAPISubsetsAndFormats(t *testing.T) {
	p := riotshare.AddMul(riotshare.AddMulConfig{
		N1: 2, N2: 3, N3: 1,
		ABBlock: riotshare.Dims{Rows: 4, Cols: 4},
		DBlock:  riotshare.Dims{Rows: 4, Cols: 4},
	})
	res, err := riotshare.OptimizeSubsets(p, riotshare.Options{
		BindParams: true,
		Model:      riotshare.RefinedDiskModel(0.005),
	}, [][]string{{"s1WC→s2RC"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plans) != 2 {
		t.Fatalf("want baseline + 1 subset, got %d plans", len(res.Plans))
	}
	store, err := riotshare.NewStorage(t.TempDir(), riotshare.FormatLABTree)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := store.CreateAll(p); err != nil {
		t.Fatal(err)
	}
	// Execution without inputs must fail cleanly (reads of unwritten blocks).
	if _, err := riotshare.Execute(&res.Plans[0], store, riotshare.PaperDiskModel(), 0); err == nil {
		t.Fatal("executing without inputs should error")
	}
}
