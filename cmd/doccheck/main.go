// Command doccheck verifies godoc completeness: every exported top-level
// identifier in the packages it is pointed at — types, functions, methods
// on exported types, consts, vars, plus exported interface methods (the
// API contract) — must carry a doc comment. Struct fields are exempt:
// requiring "ID is the ID"-style field comments produces noise, not
// documentation. CI runs it over the public surface (`make doc-check`):
//
//	doccheck . ./internal/storage ./internal/server ./internal/blockd ./internal/blockproto
//
// It parses with go/ast only (no type checking, no build), skips _test.go
// files, and exits 1 listing every undocumented identifier as
// file:line: name.
//
// With -links it instead checks markdown cross-references: every relative
// link target in the given files (directories are scanned for *.md,
// non-recursive) must exist on disk, so renaming or deleting a doc page
// breaks CI instead of leaving dead links behind:
//
//	doccheck -links README.md docs
//
// http(s) and mailto links and same-file #anchors are skipped; a
// #fragment on a relative link is stripped before the existence check.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package dir> [...] | doccheck -links <markdown file or dir> [...]")
		os.Exit(2)
	}
	if args[0] == "-links" {
		runLinks(args[1:])
		return
	}
	var missing []string
	for _, dir := range args {
		m, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		missing = append(missing, m...)
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		for _, m := range missing {
			fmt.Println(m)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifier(s) missing doc comments\n", len(missing))
		os.Exit(1)
	}
}

// runLinks is the -links mode: it exits 1 listing every relative
// markdown link whose target file does not exist.
func runLinks(paths []string) {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck -links <markdown file or dir> [...]")
		os.Exit(2)
	}
	broken, err := checkLinks(paths)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	if len(broken) > 0 {
		sort.Strings(broken)
		for _, b := range broken {
			fmt.Println(b)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d dead relative link(s)\n", len(broken))
		os.Exit(1)
	}
}

// linkRe matches the target of a markdown inline link or image,
// "](target)"; reference-style definitions are rare enough here not to
// warrant a full parser.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkLinks scans each markdown file (directories non-recursively for
// *.md) and returns "file:line: dead link target" for every relative
// link that does not resolve to an existing file or directory.
func checkLinks(paths []string) ([]string, error) {
	var files []string
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !fi.IsDir() {
			files = append(files, p)
			continue
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
				files = append(files, filepath.Join(p, e.Name()))
			}
		}
	}
	var broken []string
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
					continue
				}
				if idx := strings.IndexByte(target, '#'); idx >= 0 {
					target = target[:idx]
				}
				if target == "" {
					continue // same-file anchor
				}
				resolved := filepath.Join(filepath.Dir(f), target)
				if _, err := os.Stat(resolved); err != nil {
					broken = append(broken, fmt.Sprintf("%s:%d: dead link %q", filepath.ToSlash(f), i+1, m[1]))
				}
			}
		}
	}
	return broken, nil
}

// checkDir parses every non-test .go file in dir (non-recursive, like a Go
// package) and returns "file:line: name" for each undocumented exported
// identifier.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	var missing []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", filepath.ToSlash(p.Filename), p.Line, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				checkDecl(decl, report)
			}
		}
	}
	return missing, nil
}

// checkDecl reports undocumented exported identifiers introduced by one
// top-level declaration.
func checkDecl(decl ast.Decl, report func(token.Pos, string)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		// Methods count only on exported receiver types: an exported
		// method on an unexported type (an interface implementation) is
		// not part of the package's godoc surface.
		if d.Name.IsExported() && d.Doc == nil && receiverExported(d) {
			report(d.Pos(), funcName(d))
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				// A doc comment on the grouped decl ("type ( ... )") or on
				// the spec itself both satisfy godoc.
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
					report(s.Pos(), s.Name.Name)
				}
				if s.Name.IsExported() {
					checkTypeMembers(s, report)
				}
			case *ast.ValueSpec:
				// For const/var groups a group-level doc comment suffices;
				// otherwise each exported spec needs its own (s.Doc) or a
				// trailing line comment (s.Comment).
				if d.Doc != nil || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						report(name.Pos(), name.Name)
					}
				}
			}
		}
	}
}

// checkTypeMembers reports undocumented exported methods of exported
// interface types — the contract callers implement against.
func checkTypeMembers(s *ast.TypeSpec, report func(token.Pos, string)) {
	switch t := s.Type.(type) {
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			if m.Doc != nil || m.Comment != nil {
				continue
			}
			for _, name := range m.Names {
				if name.IsExported() {
					report(name.Pos(), s.Name.Name+"."+name.Name)
				}
			}
		}
	}
}

// receiverExported reports whether d is a plain function or a method on an
// exported named type.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	name := typeName(d.Recv.List[0].Type)
	return ast.IsExported(strings.TrimPrefix(name, "*"))
}

// funcName renders a method as "(T).Name" and a function as "Name".
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	return "(" + typeName(d.Recv.List[0].Type) + ")." + d.Name.Name
}

// typeName renders the receiver type expression compactly.
func typeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + typeName(t.X)
	case *ast.IndexExpr:
		return typeName(t.X)
	case *ast.IndexListExpr:
		return typeName(t.X)
	default:
		return "?"
	}
}
