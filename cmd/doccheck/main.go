// Command doccheck verifies godoc completeness: every exported top-level
// identifier in the packages it is pointed at — types, functions, methods
// on exported types, consts, vars, plus exported interface methods (the
// API contract) — must carry a doc comment. Struct fields are exempt:
// requiring "ID is the ID"-style field comments produces noise, not
// documentation. CI runs it over the public surface (`make doc-check`):
//
//	doccheck . ./internal/storage ./internal/server ./internal/blockd ./internal/blockproto
//
// It parses with go/ast only (no type checking, no build), skips _test.go
// files, and exits 1 listing every undocumented identifier as
// file:line: name.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package dir> [...]")
		os.Exit(2)
	}
	var missing []string
	for _, dir := range args {
		m, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		missing = append(missing, m...)
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		for _, m := range missing {
			fmt.Println(m)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifier(s) missing doc comments\n", len(missing))
		os.Exit(1)
	}
}

// checkDir parses every non-test .go file in dir (non-recursive, like a Go
// package) and returns "file:line: name" for each undocumented exported
// identifier.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	var missing []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", filepath.ToSlash(p.Filename), p.Line, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				checkDecl(decl, report)
			}
		}
	}
	return missing, nil
}

// checkDecl reports undocumented exported identifiers introduced by one
// top-level declaration.
func checkDecl(decl ast.Decl, report func(token.Pos, string)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		// Methods count only on exported receiver types: an exported
		// method on an unexported type (an interface implementation) is
		// not part of the package's godoc surface.
		if d.Name.IsExported() && d.Doc == nil && receiverExported(d) {
			report(d.Pos(), funcName(d))
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				// A doc comment on the grouped decl ("type ( ... )") or on
				// the spec itself both satisfy godoc.
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
					report(s.Pos(), s.Name.Name)
				}
				if s.Name.IsExported() {
					checkTypeMembers(s, report)
				}
			case *ast.ValueSpec:
				// For const/var groups a group-level doc comment suffices;
				// otherwise each exported spec needs its own (s.Doc) or a
				// trailing line comment (s.Comment).
				if d.Doc != nil || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						report(name.Pos(), name.Name)
					}
				}
			}
		}
	}
}

// checkTypeMembers reports undocumented exported methods of exported
// interface types — the contract callers implement against.
func checkTypeMembers(s *ast.TypeSpec, report func(token.Pos, string)) {
	switch t := s.Type.(type) {
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			if m.Doc != nil || m.Comment != nil {
				continue
			}
			for _, name := range m.Names {
				if name.IsExported() {
					report(name.Pos(), s.Name.Name+"."+name.Name)
				}
			}
		}
	}
}

// receiverExported reports whether d is a plain function or a method on an
// exported named type.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	name := typeName(d.Recv.List[0].Type)
	return ast.IsExported(strings.TrimPrefix(name, "*"))
}

// funcName renders a method as "(T).Name" and a function as "Name".
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	return "(" + typeName(d.Recv.List[0].Type) + ")." + d.Name.Name
}

// typeName renders the receiver type expression compactly.
func typeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + typeName(t.X)
	case *ast.IndexExpr:
		return typeName(t.X)
	case *ast.IndexListExpr:
		return typeName(t.X)
	default:
		return "?"
	}
}
