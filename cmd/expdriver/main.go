// Command expdriver regenerates the paper's evaluation (§6): every table
// and figure, the optimization-time note, the dataset-scale consistency
// check, and the system comparison. See DESIGN.md's experiment index.
//
// Usage:
//
//	expdriver -exp all                 # everything (quick mode)
//	expdriver -exp fig6 -full          # full linreg plan-space search (~minutes)
//	expdriver -exp fig3a,fig3b
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"riotshare/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiments: all,table2,table3,table4,fig3a,fig3b,fig4,fig5,fig6,opttime,scales,compare")
		full     = flag.Bool("full", false, "run full plan-space searches (linreg explores ~16k combinations)")
		seed     = flag.Int64("seed", 1, "synthetic data seed")
		dir      = flag.String("data", "", "directory for physical block files (default: temp)")
		workers  = flag.Int("workers", 1, "parallel kernel workers for physical runs (1 = sequential engine)")
		prefetch = flag.Int("prefetch", 0, "I/O prefetch window in blocks (0 = 2x workers)")
	)
	flag.Parse()
	opt := bench.Options{Quick: !*full, Seed: *seed, DataDir: *dir, Workers: *workers, PrefetchDepth: *prefetch}

	runners := map[string]func(io.Writer, bench.Options) error{
		"table2":  func(w io.Writer, _ bench.Options) error { return bench.Table2(w) },
		"table3":  func(w io.Writer, _ bench.Options) error { return bench.Table3(w) },
		"table4":  func(w io.Writer, _ bench.Options) error { return bench.Table4(w) },
		"fig3a":   bench.Fig3a,
		"fig3b":   bench.Fig3b,
		"fig4":    bench.Fig4,
		"fig5":    bench.Fig5,
		"fig6":    bench.Fig6,
		"opttime": bench.OptTime,
		"scales":  bench.Scales,
		"compare": bench.Compare,
	}
	if *exp == "all" {
		if err := bench.RunAll(os.Stdout, opt); err != nil {
			fmt.Fprintln(os.Stderr, "expdriver:", err)
			os.Exit(1)
		}
		return
	}
	valid := make([]string, 0, len(runners)+1)
	for name := range runners {
		valid = append(valid, name)
	}
	sort.Strings(valid)
	valid = append([]string{"all"}, valid...)
	for _, name := range strings.Split(*exp, ",") {
		fn, ok := runners[strings.TrimSpace(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "expdriver: unknown experiment %q (valid: %s)\n",
				name, strings.Join(valid, ", "))
			os.Exit(2)
		}
		if err := fn(os.Stdout, opt); err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}
