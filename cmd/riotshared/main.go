// Command riotshared is the multi-query analytics daemon: it serves the
// HTTP/JSON API of internal/server — concurrent program submissions
// optimized through a plan cache and executed over one shared,
// sharing-aware buffer pool — and doubles as its command-line client.
//
// Server:
//
//	riotshared serve -addr :8377 -data /var/lib/riotshare -pool-mb 256 -max-concurrent 4
//	riotshared serve -data /var/lib/riotshare -shards 4 -persist   # striped + restart-persistent
//	riotshared serve -shard-dirs /mnt/d0,/mnt/d1 -persist          # explicit devices
//	riotshared serve -data /var/lib/riotshare -shards 4 -replicas 2 -persist  # lost shard → degraded reads
//	riotshared serve -shard-addrs h0:8441,h1:8441,h2:8441,h3:8441 -replicas 2 -persist  # remote riotblockd shards
//	riotshared serve -policy segmented -tenant-quota-mb acme=64,beta=32 \
//	    -tenant-weight acme=3 -tenant-concurrent acme=2 -tenant-mem-mb acme=512
//
// Client:
//
//	riotshared submit  -addr http://localhost:8377 -prog addmul -mem 1000 -tenant acme
//	riotshared submit  -addr http://localhost:8377 -spec program.json
//	riotshared status  -addr http://localhost:8377 -id q1
//	riotshared results -addr http://localhost:8377 -id q1 -wait
//	riotshared results -addr http://localhost:8377 -id q1 -stream -stream-chunk-blocks 8
//	riotshared stats   -addr http://localhost:8377 -tenant acme
//	riotshared stats   -addr http://localhost:8377 -watch 2s   # live delta view
//	riotshared stats   -addr http://localhost:8377 -planner    # planner tiers + improver
//	riotshared trace   -addr http://localhost:8377 q1          # span-tree breakdown
//	riotshared repair  -addr http://localhost:8377 -shard 1
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight HTTP
// requests drain, running queries finish, the pool flushes.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"riotshare/internal/blockproto"
	"riotshare/internal/govern"
	"riotshare/internal/server"
	"riotshare/internal/storage"
	"riotshare/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "riotshared:", err)
		os.Exit(1)
	}
}

func run() error {
	if len(os.Args) < 2 {
		return fmt.Errorf("subcommand required: serve, submit, status, results, stats")
	}
	sub := os.Args[1]
	fs := flag.NewFlagSet(sub, flag.ExitOnError)
	switch sub {
	case "serve":
		return serve(fs, os.Args[2:])
	case "submit", "status", "results", "stats", "trace", "repair":
		return client(sub, fs, os.Args[2:])
	default:
		return fmt.Errorf("unknown subcommand %q (serve, submit, status, results, stats, trace, repair)", sub)
	}
}

func serve(fs *flag.FlagSet, args []string) error {
	var (
		addr     = fs.String("addr", ":8377", "listen address")
		dir      = fs.String("data", "", "directory for physical block files (default: temp)")
		format   = fs.String("format", "daf", "block format: daf or lab-tree")
		poolMB   = fs.Int64("pool-mb", 256, "shared buffer pool capacity in MB (0 = unlimited)")
		policy   = fs.String("policy", "lru", "pool replacement policy: lru or segmented (scan-resistant)")
		maxConc  = fs.Int("max-concurrent", 2, "max concurrently executing queries (K)")
		memMB    = fs.Int64("mem-mb", 0, "global cap on combined plan peak memory in MB (0 = unlimited)")
		workers  = fs.Int("workers", 1, "default kernel workers per query (1 = sequential engine)")
		prefetch = fs.Int("prefetch", 0, "default I/O prefetch window per query (0 = 2x workers)")
		seed     = fs.Int64("seed", 1, "synthetic input data seed")
		full     = fs.Bool("full", false, "full plan-space search for linreg (minutes)")

		planBudgetMs = fs.Int64("plan-budget-ms", 250, "wall-clock budget for the greedy fast-path planner on a cache miss (0 = full search every miss)")
		planImprover = fs.Bool("plan-improver", true, "re-plan greedy-planned cache entries with the full search in the background and hot-swap better plans")
		planCacheN   = fs.Int("plan-cache", 256, "plan cache entry cap, LRU-evicted (-1 = unlimited)")

		shards     = fs.Int("shards", 1, "stripe the block store across N shard dirs under -data (devices)")
		shardDirs  = fs.String("shard-dirs", "", "explicit comma-separated shard directories (overrides -shards; order matters)")
		shardAddrs = fs.String("shard-addrs", "", "comma-separated host:port addresses of riotblockd servers, appended after -shard-dirs as remote shards (order matters)")
		placement  = fs.String("placement", "", "block placement across shards: hash (default) or rows")
		replicas   = fs.Int("replicas", 1, "mirror each block on k shards (ring order); a lost shard then degrades reads instead of failing the open")
		persist    = fs.Bool("persist", false, "persist shared input arrays across restarts (manifest catalog; requires -data, -shard-dirs, or -shard-addrs)")

		quotaMB    = fs.String("tenant-quota-mb", "", "per-tenant pool quotas, e.g. acme=64,beta=32 (MB)")
		weights    = fs.String("tenant-weight", "", "per-tenant admission weights, e.g. acme=3,beta=1")
		tenantConc = fs.String("tenant-concurrent", "", "per-tenant concurrency caps, e.g. acme=2")
		tenantMem  = fs.String("tenant-mem-mb", "", "per-tenant plan peak memory caps, e.g. acme=512 (MB)")
		noAffinity = fs.Bool("no-affinity", false, "disable shared-input affinity batching in admission")

		slowMs   = fs.Int64("slow-query-ms", 0, "log a JSON span breakdown to stderr for queries slower than this (0 = off)")
		pprofOn  = fs.Bool("pprof", false, "register net/http/pprof handlers under /debug/pprof/")
		traceCap = fs.Int("trace-cap", 0, "completed query traces retained for GET /trace (0 = default 256)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	poolQuotas, err := parseTenantInts(*quotaMB, "tenant-quota-mb")
	if err != nil {
		return err
	}
	tenantQuotaBytes := make(map[string]int64, len(poolQuotas))
	for t, mb := range poolQuotas {
		tenantQuotaBytes[t] = mb << 20
	}
	tenants, err := parseTenantConfigs(*weights, *tenantConc, *tenantMem)
	if err != nil {
		return err
	}
	dirs := splitList(*shardDirs)
	addrs := splitList(*shardAddrs)
	for _, a := range addrs {
		if !storage.IsRemoteSpec(a) {
			return fmt.Errorf("-shard-addrs: %q is not a host:port address", a)
		}
	}
	if *persist && *dir == "" && len(dirs) == 0 && len(addrs) == 0 {
		return fmt.Errorf("-persist needs a real data directory: set -data, -shard-dirs, or -shard-addrs")
	}
	if *dir == "" && len(dirs) == 0 && len(addrs) == 0 {
		d, err := os.MkdirTemp("", "riotshared-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(d)
		*dir = d
	}
	f := storage.FormatDAF
	if *format == "lab-tree" {
		f = storage.FormatLABTree
	} else if *format != "daf" {
		return fmt.Errorf("unknown format %q (daf, lab-tree)", *format)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	fmt.Printf("riotshared: serving on %s (data %s, pool %dMB, K=%d)\n", *addr, *dir, *poolMB, *maxConc)
	err = server.ListenAndServe(ctx, *addr, server.Config{
		Dir:                  *dir,
		Format:               f,
		Shards:               *shards,
		ShardDirs:            dirs,
		ShardAddrs:           addrs,
		Placement:            *placement,
		Replicas:             *replicas,
		Persist:              *persist,
		PoolBytes:            *poolMB << 20,
		PoolPolicy:           *policy,
		TenantPoolQuotaBytes: tenantQuotaBytes,
		MaxConcurrent:        *maxConc,
		GlobalMemBytes:       *memMB << 20,
		Tenants:              tenants,
		NoAffinity:           *noAffinity,
		Workers:              *workers,
		PrefetchDepth:        *prefetch,
		Seed:                 *seed,
		FullSearch:           *full,
		PlanBudget:           time.Duration(*planBudgetMs) * time.Millisecond,
		PlanImprover:         *planImprover,
		PlanCacheEntries:     *planCacheN,
		SlowQueryMs:          *slowMs,
		EnablePprof:          *pprofOn,
		TraceCapacity:        *traceCap,
	})
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	return err
}

// splitList parses a comma-separated flag list, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// parseTenantInts parses "name=value,name=value" flag lists.
func parseTenantInts(s, flagName string) (map[string]int64, error) {
	out := map[string]int64{}
	if s == "" {
		return out, nil
	}
	for _, kv := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-%s: %q is not name=value", flagName, kv)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("-%s: %q is not a non-negative integer", flagName, val)
		}
		out[name] = n
	}
	return out, nil
}

// parseTenantConfigs assembles govern.TenantConfig values from the three
// per-tenant flag lists.
func parseTenantConfigs(weights, conc, memMB string) (map[string]govern.TenantConfig, error) {
	ws, err := parseTenantInts(weights, "tenant-weight")
	if err != nil {
		return nil, err
	}
	cs, err := parseTenantInts(conc, "tenant-concurrent")
	if err != nil {
		return nil, err
	}
	ms, err := parseTenantInts(memMB, "tenant-mem-mb")
	if err != nil {
		return nil, err
	}
	if len(ws) == 0 && len(cs) == 0 && len(ms) == 0 {
		return nil, nil
	}
	out := map[string]govern.TenantConfig{}
	for name, w := range ws {
		tc := out[name]
		tc.Weight = int(w)
		out[name] = tc
	}
	for name, c := range cs {
		tc := out[name]
		tc.MaxConcurrent = int(c)
		out[name] = tc
	}
	for name, m := range ms {
		tc := out[name]
		tc.MemBytes = m << 20
		out[name] = tc
	}
	return out, nil
}

func client(sub string, fs *flag.FlagSet, args []string) error {
	var (
		addr     = fs.String("addr", "http://localhost:8377", "server base URL")
		progName = fs.String("prog", "", "named program: addmul, twomm-a, twomm-b, linreg")
		specPath = fs.String("spec", "", "statement-builder JSON program file")
		memMB    = fs.Int64("mem", 0, "per-query memory cap in MB (0 = unlimited)")
		plan     = fs.Int("plan", -1, "force plan index (-1 = cheapest fitting plan)")
		workers  = fs.Int("workers", 0, "kernel workers for this query (0 = server default)")
		tenant   = fs.String("tenant", "", "tenant label (submit: governor fairness + pool quotas; stats: filter)")
		id       = fs.String("id", "", "query id (status, results, trace)")
		wait     = fs.Bool("wait", false, "block until the query finishes (results)")
		stream   = fs.Bool("stream", false, "stream the output blocks from /results/stream instead of fetching the JSON summary; delivery begins before the query finishes (results)")
		chunkBlk = fs.Int("stream-chunk-blocks", 0, "output blocks per streamed chunk, 0 = server default (results -stream)")
		shard    = fs.Int("shard", -1, "shard index to re-mirror from its replicas (repair)")
		watch    = fs.Duration("watch", 0, "poll /stats at this interval and render counter deltas (stats)")
		planner  = fs.Bool("planner", false, "render per-tier planning percentiles and improver activity (stats)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" && fs.NArg() > 0 {
		*id = fs.Arg(0) // `riotshared trace q1` style positional id
	}
	switch sub {
	case "submit":
		req := server.Request{Program: *progName, Tenant: *tenant, MemCapMB: *memMB, Workers: *workers}
		if *specPath != "" {
			data, err := os.ReadFile(*specPath)
			if err != nil {
				return err
			}
			var spec server.ProgramSpec
			if err := json.Unmarshal(data, &spec); err != nil {
				return fmt.Errorf("parse %s: %w", *specPath, err)
			}
			req.Spec = &spec
		}
		if *plan >= 0 {
			req.Plan = plan
		}
		body, err := json.Marshal(req)
		if err != nil {
			return err
		}
		return do(http.MethodPost, *addr+"/submit", body)
	case "status":
		if *id == "" {
			return fmt.Errorf("-id required")
		}
		return do(http.MethodGet, *addr+"/status?id="+*id, nil)
	case "results":
		if *id == "" {
			return fmt.Errorf("-id required")
		}
		if *stream {
			return streamResults(*addr, *id, *chunkBlk)
		}
		url := *addr + "/results?id=" + *id
		if *wait {
			url += "&wait=1"
		}
		return do(http.MethodGet, url, nil)
	case "stats":
		if *watch > 0 {
			if *tenant != "" {
				return fmt.Errorf("-watch renders the full service view; drop -tenant")
			}
			return watchStats(*addr, *watch)
		}
		if *planner {
			return printPlannerStats(*addr)
		}
		u := *addr + "/stats"
		if *tenant != "" {
			u += "?tenant=" + url.QueryEscape(*tenant)
		}
		return do(http.MethodGet, u, nil)
	case "trace":
		if *id == "" {
			return fmt.Errorf("query id required: riotshared trace q1 (or -id q1)")
		}
		return printTrace(*addr, *id)
	case "repair":
		if *shard < 0 {
			return fmt.Errorf("-shard required")
		}
		return do(http.MethodPost, fmt.Sprintf("%s/repair?shard=%d", *addr, *shard), nil)
	}
	return nil
}

// streamResults consumes GET /results/stream in binary mode, decoding
// the blockproto frames as they arrive and printing one summary line
// per output array. Sums accumulate in frame-arrival order — blocks
// row-major across the grid, elements row-major within each block —
// which is exactly the order the server sums for OutputInfo.Sum, so
// the printed sum is bit-identical to the "sum" field of a whole
// /results fetch (both are rendered through encoding/json).
func streamResults(addr, id string, chunkBlocks int) error {
	u := addr + "/results/stream?id=" + url.QueryEscape(id)
	if chunkBlocks > 0 {
		u += "&chunk=" + strconv.Itoa(chunkBlocks)
	}
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		out, _ := io.ReadAll(resp.Body)
		os.Stdout.Write(out)
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	type arrayAgg struct {
		blocks int
		bytes  int64
		sum    float64
	}
	aggs := map[string]*arrayAgg{}
	var order []string
	for {
		_, kind, payload, err := blockproto.ReadFrame(resp.Body)
		if err != nil {
			return fmt.Errorf("read stream frame: %w", err)
		}
		d := blockproto.NewDec(payload)
		switch kind {
		case server.StreamFrameArray:
			name := d.Str()
			br, bc := d.U32(), d.U32()
			gr, gc := d.U32(), d.U32()
			if err := d.Err(); err != nil {
				return fmt.Errorf("array frame: %w", err)
			}
			aggs[name] = &arrayAgg{}
			order = append(order, name)
			fmt.Printf("array %s: %dx%d grid of %dx%d blocks\n", name, gr, gc, br, bc)
		case server.StreamFrameBlock:
			name := d.Str()
			d.I64() // block row
			d.I64() // block col
			rows, cols := int(d.U32()), int(d.U32())
			blob := d.Blob()
			if err := d.Err(); err != nil {
				return fmt.Errorf("block frame: %w", err)
			}
			blk, err := blockproto.DecodeBlock(rows, cols, blob)
			if err != nil {
				return err
			}
			a := aggs[name]
			if a == nil {
				return fmt.Errorf("block frame for unannounced array %q", name)
			}
			a.blocks++
			a.bytes += int64(len(blob))
			for _, v := range blk.Data {
				a.sum += v
			}
		case server.StreamFrameEnd:
			arrays, blocks := d.U32(), d.U32()
			total := d.I64()
			if err := d.Err(); err != nil {
				return fmt.Errorf("end frame: %w", err)
			}
			for _, name := range order {
				a := aggs[name]
				sum, _ := json.Marshal(a.sum)
				fmt.Printf("array %s: %d blocks, %d bytes, sum %s\n", name, a.blocks, a.bytes, sum)
			}
			fmt.Printf("stream end: %d arrays, %d blocks, %d bytes\n", arrays, blocks, total)
			return nil
		case server.StreamFrameError:
			return fmt.Errorf("stream failed: %s", d.Str())
		default:
			return fmt.Errorf("unexpected stream frame kind 0x%02x", kind)
		}
	}
}

// watchStats polls /stats and renders one delta line per tick: running
// and queued gauges as-is, counters as per-interval deltas, rates and
// percentiles from the current snapshot. Δswaps counts plan tables the
// background improver hot-swapped during the interval. Exits on
// SIGINT/SIGTERM.
func watchStats(addr string, interval time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	fmt.Printf("%-8s %4s %6s %5s %5s %7s %7s %7s %8s %7s %6s %7s\n",
		"time", "run", "queued", "Δsub", "Δfin", "Δreads", "ΔrdMB", "ΔwrMB", "poolHit%", "plan%", "Δswaps", "p95ms")
	var prev server.Stats
	have := false
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		st, err := fetchStats(addr + "/stats")
		if err != nil {
			return err
		}
		if have {
			degraded := ""
			if st.DegradedReads > prev.DegradedReads {
				degraded = fmt.Sprintf("  DEGRADED +%d", st.DegradedReads-prev.DegradedReads)
			}
			var dSwaps int64
			if st.Improver != nil {
				dSwaps = st.Improver.Swaps
				if prev.Improver != nil {
					dSwaps -= prev.Improver.Swaps
				}
			}
			fmt.Printf("%-8s %4d %6d %5d %5d %7d %7.1f %7.1f %8.1f %7.1f %6d %7.2f%s\n",
				time.Now().Format("15:04:05"),
				st.Running, st.Queued,
				st.Submitted-prev.Submitted, st.Finished-prev.Finished,
				st.Store.ReadReqs-prev.Store.ReadReqs,
				float64(st.Store.ReadBytes-prev.Store.ReadBytes)/(1<<20),
				float64(st.Store.WriteBytes-prev.Store.WriteBytes)/(1<<20),
				st.Pool.HitRate()*100, st.PlanCacheHitRate*100, dSwaps, st.PlanningP95Ms,
				degraded)
		}
		prev, have = st, true
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
		}
	}
}

// printPlannerStats renders the tiered planner's view of one /stats
// snapshot: per-tier planning latency percentiles, the bounded plan
// cache, and background improver activity.
func printPlannerStats(addr string) error {
	st, err := fetchStats(addr + "/stats")
	if err != nil {
		return err
	}
	fmt.Printf("plan cache: %d entries, %d hits / %d misses (%.1f%% hit), %d evictions\n",
		st.PlanCacheSize, st.PlanCacheHits, st.PlanCacheMisses,
		st.PlanCacheHitRate*100, st.PlanCacheEvictions)
	fmt.Printf("%-8s %8s %10s %10s %10s\n", "tier", "plans", "p50ms", "p95ms", "p99ms")
	for _, tier := range []string{"cache", "greedy", "full"} {
		ts, ok := st.PlanningTiers[tier]
		if !ok {
			continue
		}
		fmt.Printf("%-8s %8d %10.2f %10.2f %10.2f\n", tier, ts.Count, ts.P50Ms, ts.P95Ms, ts.P99Ms)
	}
	if st.Improver == nil {
		fmt.Println("improver: off")
		return nil
	}
	fmt.Printf("improver: %d runs, %d plans swapped, %d queued, %d dropped, %.0fms background search\n",
		st.Improver.Runs, st.Improver.Swaps, st.Improver.QueueDepth,
		st.Improver.Dropped, st.Improver.SearchMs)
	return nil
}

// fetchStats decodes one /stats snapshot.
func fetchStats(url string) (server.Stats, error) {
	var st server.Stats
	resp, err := http.Get(url)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// printTrace fetches one query's completed span tree and renders it as
// an indented duration breakdown.
func printTrace(addr, id string) error {
	resp, err := http.Get(addr + "/trace?id=" + url.QueryEscape(id))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("trace %s: %s", id, e.Error)
		}
		return fmt.Errorf("trace %s: HTTP %d", id, resp.StatusCode)
	}
	var tr telemetry.Trace
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return err
	}
	fmt.Printf("trace %s (%v)\n", tr.QueryID, tr.Root.Duration())
	var b strings.Builder
	tr.Root.Render(&b, 0)
	fmt.Print(b.String())
	return nil
}

// do performs one API call and prints the JSON response, asking the
// server for indented output since it goes to a human terminal.
func do(method, url string, body []byte) error {
	if strings.Contains(url, "?") {
		url += "&pretty=1"
	} else {
		url += "?pretty=1"
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	os.Stdout.Write(out)
	if resp.StatusCode >= 400 {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return nil
}
