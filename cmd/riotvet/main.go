// Command riotvet runs the project-invariant static-analysis suite:
// guardedfield (mutex-guarded fields are accessed under their mutex),
// lockio (no blocking I/O inside critical sections), ctxflow
// (sched/core/server thread the caller's context), and errclass
// (errors are classified with errors.Is/As/Join). Each analyzer
// mechanically enforces a rule a past review cycle fixed by hand; see
// docs/static-analysis.md.
//
// Two modes share the same analyzers:
//
//	riotvet ./...                      # standalone, whole-module
//	go vet -vettool=$(which riotvet) ./...  # unit-at-a-time under cmd/go
//
// Standalone mode loads packages itself (go list -export) and exits 1
// when any analyzer reports a finding, 2 when loading or type checking
// fails. Vettool mode speaks the go command's unitchecker protocol:
// -V=full for tool identity, -flags for flag discovery, and a JSON
// *.cfg file naming one package's files and export data per
// invocation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"riotshare/internal/lint"
	"riotshare/internal/lint/analysis"
	"riotshare/internal/lint/load"
)

func main() {
	// The -V and -flags protocol flags must be handled before normal
	// flag parsing: the go command probes them with no other args.
	progFlags := flag.NewFlagSet("riotvet", flag.ExitOnError)
	progFlags.Usage = usage
	version := progFlags.String("V", "", "print version and exit (the go vet tool protocol; only -V=full is supported)")
	listFlags := progFlags.Bool("flags", false, "print the tool's analyzer flags as JSON and exit (the go vet tool protocol)")
	if err := progFlags.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if *version != "" {
		printVersion(*version)
		return
	}
	if *listFlags {
		// No analyzer exposes flags; tell cmd/go so it treats every
		// remaining argument as a package pattern.
		fmt.Println("[]")
		return
	}

	args := progFlags.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitcheck(args[0])
		return
	}
	standalone(args)
}

// usage prints the command synopsis.
func usage() {
	fmt.Fprintf(os.Stderr, "usage: riotvet [packages]  (standalone)\n")
	fmt.Fprintf(os.Stderr, "       go vet -vettool=$(which riotvet) [packages]\n\n")
	fmt.Fprintf(os.Stderr, "analyzers:\n")
	for _, a := range lint.Suite() {
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
	}
}

// standalone loads the matched packages and applies the suite,
// printing findings in vet's file:line:col form.
func standalone(patterns []string) {
	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "riotvet: %v\n", err)
		os.Exit(2)
	}
	suite := lint.Suite()
	exit := 0
	for _, pkg := range pkgs {
		findings, err := analysis.Run(pkg.Unit, suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "riotvet: %v\n", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
			exit = 1
		}
	}
	os.Exit(exit)
}
