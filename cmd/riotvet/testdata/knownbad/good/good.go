// Package good is the clean control for the -vettool integration
// smoke test: `go vet -vettool=riotvet` must pass it.
package good

import (
	"errors"
	"sync"
)

// ErrGone is a sentinel matched structurally below.
var ErrGone = errors.New("gone")

// IsGone classifies with errors.Is, surviving wrapping.
func IsGone(err error) bool {
	return errors.Is(err, ErrGone)
}

// cache pairs a mutex with the map it guards.
type cache struct {
	mu sync.Mutex
	m  map[string]int
}

// peek reads the guarded map under the lock.
func (c *cache) peek(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[k]
}
