// Package bad is the known-bad fixture for the -vettool integration
// smoke test: it must make `go vet -vettool=riotvet` exit nonzero with
// an errclass diagnostic (a sentinel == comparison) and a guardedfield
// diagnostic (a guarded map read lock-free).
package bad

import (
	"errors"
	"sync"
)

// ErrGone is the sentinel the comparison below misuses.
var ErrGone = errors.New("gone")

// IsGone compares a possibly wrapped error against the sentinel with
// ==: the diagnostic the smoke test greps for.
func IsGone(err error) bool {
	return err == ErrGone
}

// cache pairs a mutex with the map it guards.
type cache struct {
	mu sync.Mutex
	m  map[string]int
}

// peek reads the guarded map without the lock.
func (c *cache) peek(k string) int {
	return c.m[k]
}
