module knownbad

go 1.22
