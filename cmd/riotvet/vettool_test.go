package main_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildRiotvet compiles the riotvet binary into a temp dir and returns
// its path.
func buildRiotvet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "riotvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building riotvet: %v\n%s", err, out)
	}
	return bin
}

// TestVetTool is the -vettool integration smoke test: driving the
// suite through `go vet -vettool=riotvet` over a known-bad fixture
// package must exit nonzero with the expected diagnostics, and over a
// clean control package must pass. This covers the unitchecker
// protocol (-V=full identity, vet.cfg parsing, export-data import,
// facts output) end to end under the real go command.
func TestVetTool(t *testing.T) {
	bin := buildRiotvet(t)

	vet := exec.Command("go", "vet", "-vettool="+bin, "./bad")
	vet.Dir = "testdata/knownbad"
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool=riotvet ./bad succeeded; want failure\n%s", out)
	}
	for _, want := range []string{
		"sentinel comparison err == ErrGone",
		"cache.m is guarded by c.mu",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("go vet output missing %q:\n%s", want, out)
		}
	}

	vet = exec.Command("go", "vet", "-vettool="+bin, "./good")
	vet.Dir = "testdata/knownbad"
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=riotvet ./good failed: %v\n%s", err, out)
	}
}

// TestStandalone drives the same fixture through riotvet's standalone
// mode: exit 1 with diagnostics on the bad package, exit 0 on the
// clean one.
func TestStandalone(t *testing.T) {
	bin := buildRiotvet(t)

	cmd := exec.Command(bin, "./bad")
	cmd.Dir = "testdata/knownbad"
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("riotvet ./bad succeeded; want exit 1\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("riotvet ./bad: want exit code 1, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "errclass: sentinel comparison") {
		t.Errorf("riotvet output missing errclass diagnostic:\n%s", out)
	}

	cmd = exec.Command(bin, "./good")
	cmd.Dir = "testdata/knownbad"
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("riotvet ./good failed: %v\n%s", err, out)
	}
}
