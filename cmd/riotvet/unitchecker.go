// The go vet tool protocol: cmd/go invokes the tool once per package
// with a JSON config file naming the package's sources and its
// dependencies' export data, mirroring
// golang.org/x/tools/go/analysis/unitchecker closely enough that
// `go vet -vettool=$(which riotvet)` behaves like any other vet tool —
// including build caching keyed on the tool's -V=full identity.

package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"riotshare/internal/lint"
	"riotshare/internal/lint/analysis"
)

// vetConfig is the subset of cmd/go's vet.cfg schema riotvet needs.
// Field names and meanings follow the unitchecker contract.
type vetConfig struct {
	ID                        string            // package ID, e.g. "fmt [fmt.test]"
	Compiler                  string            // "gc"
	Dir                       string            // package directory
	ImportPath                string            // canonical import path
	GoVersion                 string            // minimum go version, e.g. "go1.22"
	GoFiles                   []string          // absolute paths of Go sources
	NonGoFiles                []string          // assembly etc. (unused)
	IgnoredFiles              []string          // build-constrained-away files (unused)
	ImportMap                 map[string]string // source import -> canonical path
	PackageFile               map[string]string // canonical path -> export data file
	Standard                  map[string]bool   // canonical path -> is stdlib
	PackageVetx               map[string]string // canonical path -> dependency facts (unused)
	VetxOnly                  bool              // only facts are wanted, no diagnostics
	VetxOutput                string            // where to write this package's facts
	SucceedOnTypecheckFailure bool              // exit 0 quietly if the package doesn't compile
}

// unitcheck runs the suite over one vet unit described by cfgFile and
// exits: 0 clean, 1 findings, 2 protocol or type errors.
func unitcheck(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatalf("reading vet config: %v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing vet config %s: %v", cfgFile, err)
	}

	unit, err := typecheckUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(&cfg)
			os.Exit(0)
		}
		fatalf("%v", err)
	}

	// The suite exchanges no inter-package facts, but the go command
	// expects the facts file to exist before it caches the unit.
	writeVetx(&cfg)
	if cfg.VetxOnly {
		os.Exit(0)
	}

	findings, err := analysis.Run(unit, lint.Suite())
	if err != nil {
		fatalf("%v", err)
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", f.Pos, f.Message)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

// typecheckUnit parses and type-checks the unit's sources against the
// export data cmd/go supplied.
func typecheckUnit(cfg *vetConfig) (*analysis.Unit, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.ImportPath, err)
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, func(importPath string) (io.ReadCloser, error) {
		canonical, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("no import mapping for %q", importPath)
		}
		file, ok := cfg.PackageFile[canonical]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", canonical)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: type checking failed: %w", cfg.ImportPath, err)
	}
	return &analysis.Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// writeVetx writes the (empty) facts file the go command caches for
// dependent units.
func writeVetx(cfg *vetConfig) {
	if cfg.VetxOutput == "" {
		return
	}
	if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
		fatalf("writing facts: %v", err)
	}
}

// fatalf reports a protocol-level failure and exits 2.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "riotvet: "+format+"\n", args...)
	os.Exit(2)
}

// printVersion implements -V=full: the go command hashes this line
// into its build cache key, so it must identify the executable's
// contents, not just its name.
func printVersion(mode string) {
	if mode != "full" {
		fatalf("unsupported flag value: -V=%s", mode)
	}
	exe, err := os.Executable()
	if err != nil {
		fatalf("-V=full: %v", err)
	}
	f, err := os.Open(exe)
	if err != nil {
		fatalf("-V=full: %v", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fatalf("-V=full: %v", err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", filepath.Base(exe), h.Sum(nil))
}
