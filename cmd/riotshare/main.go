// Command riotshare optimizes and runs the built-in benchmark programs
// from the command line.
//
// Usage:
//
//	riotshare analyze  -prog addmul          # dependences and sharing opportunities
//	riotshare optimize -prog twomm-a -mem 1000   # plan table under a memory cap (MB)
//	riotshare codegen  -prog addmul          # pseudo-code of the best plan
//	riotshare run      -prog linreg -plan 0  # execute a plan on synthetic data
package main

import (
	"flag"
	"fmt"
	"os"

	"riotshare"
	"riotshare/internal/bench"
	"riotshare/internal/core"
	"riotshare/internal/deps"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "riotshare:", err)
		os.Exit(1)
	}
}

func programByName(name string) (*riotshare.Program, error) {
	switch name {
	case "addmul":
		return bench.AddMulPaper(), nil
	case "twomm-a":
		return bench.TwoMMPaperA(), nil
	case "twomm-b":
		return bench.TwoMMPaperB(), nil
	case "linreg":
		return bench.LinRegPaper(), nil
	default:
		return nil, fmt.Errorf("unknown program %q (addmul, twomm-a, twomm-b, linreg)", name)
	}
}

func run() error {
	if len(os.Args) < 2 {
		return fmt.Errorf("subcommand required: analyze, optimize, codegen, run")
	}
	sub := os.Args[1]
	fs := flag.NewFlagSet(sub, flag.ExitOnError)
	progName := fs.String("prog", "addmul", "program: addmul, twomm-a, twomm-b, linreg")
	memMB := fs.Int64("mem", 0, "memory cap in MB (0 = unlimited)")
	planIdx := fs.Int("plan", -1, "plan index for run (-1 = best)")
	full := fs.Bool("full", false, "full plan-space search (slow for linreg)")
	asJSON := fs.Bool("json", false, "emit the lowered plan as JSON (codegen subcommand)")
	workers := fs.Int("workers", 1, "parallel kernel workers for run (1 = sequential engine)")
	prefetch := fs.Int("prefetch", 0, "I/O prefetch window in blocks (0 = 2x workers)")
	shards := fs.Int("shards", 1, "stripe the run's block store across N shard dirs (per-shard I/O is reported)")
	replicas := fs.Int("replicas", 1, "mirror each block on k shards (needs -shards >= k); write amplification and degraded reads are reported")
	if err := fs.Parse(os.Args[2:]); err != nil {
		return err
	}
	p, err := programByName(*progName)
	if err != nil {
		return err
	}
	optimize := func() (*riotshare.Result, error) {
		if !*full && *progName == "linreg" {
			return riotshare.OptimizeSubsets(p, core.Options{
				BindParams:  true,
				MemCapBytes: *memMB << 20,
			}, bench.LinRegSelectedPlans())
		}
		return riotshare.Optimize(p, core.Options{BindParams: true, MemCapBytes: *memMB << 20})
	}

	switch sub {
	case "analyze":
		an, err := deps.Analyze(p, deps.Options{BindParams: true})
		if err != nil {
			return err
		}
		fmt.Printf("program %s: %d statements, %d dependences, %d sharing opportunities\n",
			p.Name, len(p.Stmts), len(an.Deps), len(an.Shares))
		fmt.Println("dependences:")
		for _, d := range an.Deps {
			fmt.Printf("  %s\n", d)
		}
		fmt.Println("sharing opportunities:")
		for _, s := range an.Shares {
			fmt.Printf("  %s\n", s)
		}
		return nil

	case "optimize":
		res, err := optimize()
		if err != nil {
			return err
		}
		fmt.Printf("program %s: %d plans in %v (%d FindSchedule calls)\n",
			p.Name, len(res.Plans), res.OptimizeTime, res.SearchStats.FindScheduleCalls)
		fmt.Printf("%-5s %-10s %-10s %s\n", "plan", "mem(MB)", "I/O(s)", "sharing set")
		for _, pl := range res.Plans {
			marker := " "
			if res.Best != nil && pl.Index == res.Best.Index {
				marker = "*"
			}
			fmt.Printf("%-4d%s %-10.0f %-10.0f %s\n", pl.Index, marker,
				float64(pl.Cost.PeakMemoryBytes)/(1<<20), pl.Cost.IOTimeSec, pl.Label)
		}
		return nil

	case "codegen":
		res, err := optimize()
		if err != nil {
			return err
		}
		if res.Best == nil {
			return fmt.Errorf("no plan fits the memory cap")
		}
		if *asJSON {
			return res.Best.Timeline.WriteJSON(os.Stdout)
		}
		fmt.Printf("best plan %s\nschedule:\n%s\npseudo-code:\n%s",
			res.Best.Label, res.Best.Plan.Schedule.StringFor(p), riotshare.Pseudocode(res.Best))
		return nil

	case "run":
		res, err := optimize()
		if err != nil {
			return err
		}
		pl := res.Best
		if *planIdx >= 0 {
			if *planIdx >= len(res.Plans) {
				return fmt.Errorf("plan %d out of range (%d plans)", *planIdx, len(res.Plans))
			}
			pl = &res.Plans[*planIdx]
		}
		if pl == nil {
			return fmt.Errorf("no plan fits the memory cap")
		}
		dir, err := os.MkdirTemp("", "riotshare-run-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		var store riotshare.StorageBackend
		var sharded *riotshare.ShardedStorage
		if *shards > 1 {
			sharded, err = riotshare.OpenShardedStorage(
				riotshare.ShardDirs(dir, *shards), riotshare.ShardedStorageOptions{Replicas: *replicas})
			store = sharded
		} else {
			if *replicas > 1 {
				return fmt.Errorf("-replicas %d needs -shards >= %d", *replicas, *replicas)
			}
			store, err = riotshare.NewStorage(dir, riotshare.FormatDAF)
		}
		if err != nil {
			return err
		}
		defer store.Close()
		if err := store.CreateAll(p); err != nil {
			return err
		}
		if _, err := bench.FillInputs(p, store, 1); err != nil {
			return err
		}
		preRun := store.Stats()
		model := riotshare.PaperDiskModel()
		r, err := riotshare.ExecuteOptions(pl, store, model, *memMB<<20,
			riotshare.ExecOptions{Workers: *workers, PrefetchDepth: *prefetch})
		if err != nil {
			return err
		}
		fmt.Printf("plan %d %s (workers=%d)\n", pl.Index, pl.Label, *workers)
		fmt.Printf("predicted I/O: %.0fs  measured (simulated) I/O: %.0fs\n", pl.Cost.IOTimeSec, r.SimulatedIOSec)
		fmt.Printf("read %.1fGB in %d requests, wrote %.1fGB in %d requests\n",
			float64(r.ReadBytes)/(1<<30), r.ReadReqs, float64(r.WriteBytes)/(1<<30), r.WriteReqs)
		fmt.Printf("peak memory %.0fMB, kernel CPU %v\n",
			float64(r.PeakMemoryBytes)/(1<<20), r.CPUTime)
		// Physical I/O the run actually issued to the block store
		// (scaled-down blocks, DESIGN.md S5; excludes the input fill) —
		// the ground truth buffer-pool hit rates are verified against.
		ps := store.Stats()
		fmt.Printf("physical I/O: %d read requests (%.1fMB), %d write requests (%.1fMB)\n",
			ps.ReadReqs-preRun.ReadReqs, float64(ps.ReadBytes-preRun.ReadBytes)/(1<<20),
			ps.WriteReqs-preRun.WriteReqs, float64(ps.WriteBytes-preRun.WriteBytes)/(1<<20))
		if sharded != nil {
			for i, ss := range sharded.ShardStats() {
				degraded := ""
				if ss.Degraded {
					degraded = " DEGRADED"
				}
				if ss.DegradedReads > 0 {
					degraded += fmt.Sprintf(", %d degraded reads", ss.DegradedReads)
				}
				fmt.Printf("  shard %d: %d read reqs (%.1fMB), %d write reqs (%.1fMB)%s\n",
					i, ss.ReadReqs, float64(ss.ReadBytes)/(1<<20),
					ss.WriteReqs, float64(ss.WriteBytes)/(1<<20), degraded)
			}
			if *replicas > 1 {
				fmt.Printf("  %d-way replication: %d degraded reads total\n", sharded.Replicas(), sharded.DegradedReads())
			}
		}
		if *workers > 1 {
			fmt.Printf("pipelined wall-clock estimate (I/O overlapped with compute): %.0fs\n",
				model.PipelinedTime(r.ReadBytes, r.WriteBytes, r.ReadReqs, r.WriteReqs, r.CPUTime.Seconds()))
		}
		return nil

	default:
		return fmt.Errorf("unknown subcommand %q", sub)
	}
}
