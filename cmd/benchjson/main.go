// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON array of benchmark records, one per benchmark line:
// name, iterations, ns/op, and every extra metric the benchmark reported
// (B/op, allocs/op, custom metrics like the buffer pool's hit-rate).
//
//	go test -run '^$' -bench 'Pool' ./internal/buffer | benchjson -out BENCH_pool.json
//
// `make bench-json` uses it to seed the performance trajectory artifacts
// (BENCH_pool.json, BENCH_cache.json, BENCH_shard.json) that CI uploads on
// every run.
//
// With -compare it instead diffs two such JSON files and fails (exit 1) on
// a ns/op regression beyond the tolerance — the CI bench-regression gate:
//
//	benchjson -compare old.json new.json -tolerance 0.25
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Record is one benchmark result.
type Record struct {
	Op         string  `json:"op"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Policy is extracted from "policy=<name>" sub-benchmark path
	// segments (the eviction-policy comparison in BENCH_cache.json keys
	// on it).
	Policy string `json:"policy,omitempty"`
	// HitRate surfaces the buffer-pool benchmarks' custom metric at the
	// top level when present.
	HitRate *float64           `json:"hit_rate,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// policyOf extracts the value of a "policy=<name>" path segment from a
// benchmark name like BenchmarkCachePolicyScanMix/policy=lru-8 (the
// trailing -N is the GOMAXPROCS suffix).
func policyOf(name string) string {
	for _, seg := range strings.Split(name, "/") {
		if val, ok := strings.CutPrefix(seg, "policy="); ok {
			if i := strings.LastIndex(val, "-"); i > 0 {
				if _, err := strconv.Atoi(val[i+1:]); err == nil {
					val = val[:i]
				}
			}
			return val
		}
	}
	return ""
}

func main() {
	fs := flag.NewFlagSet("benchjson", flag.ExitOnError)
	out := fs.String("out", "BENCH_pool.json", "output JSON file (- for stdout)")
	compare := fs.Bool("compare", false, "compare mode: benchjson -compare old.json new.json [-tolerance 0.25]; exits 1 on ns/op regressions beyond the tolerance")
	tolerance := fs.Float64("tolerance", 0.25, "allowed fractional ns/op increase in -compare mode (0.25 = +25%)")
	// Accept flags interleaved with the positional file arguments
	// (-compare old.json new.json -tolerance 0.25), which stdlib flag
	// parsing alone would stop at.
	args, pos := os.Args[1:], []string(nil)
	for len(args) > 0 {
		// A bare "-" is a positional (stdout/stdin marker), not a flag —
		// the flag package would return it unconsumed and loop forever.
		if strings.HasPrefix(args[0], "-") && args[0] != "-" {
			fs.Parse(args)
			args = fs.Args()
			continue
		}
		pos = append(pos, args[0])
		args = args[1:]
	}
	if *compare {
		if len(pos) != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		regressions, err := compareFiles(pos[0], pos[1], *tolerance, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%% ns/op\n", regressions, *tolerance*100)
			os.Exit(1)
		}
		return
	}
	recs, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(recs) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d records to %s\n", len(recs), *out)
}

// loadRecords reads one benchjson output file.
func loadRecords(path string) (map[string]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]Record, len(recs))
	for _, r := range recs {
		out[r.Op] = r
	}
	return out, nil
}

// compareFiles diffs two benchjson files by benchmark name and reports the
// number of ns/op regressions beyond the tolerance. Benchmarks present in
// only one file are listed but never fail the gate (new benchmarks land,
// old ones retire); improvements are reported for the trajectory log.
func compareFiles(oldPath, newPath string, tolerance float64, w *os.File) (regressions int, err error) {
	oldRecs, err := loadRecords(oldPath)
	if err != nil {
		return 0, err
	}
	newRecs, err := loadRecords(newPath)
	if err != nil {
		return 0, err
	}
	names := make([]string, 0, len(oldRecs))
	for name := range oldRecs {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-60s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		o := oldRecs[name]
		n, ok := newRecs[name]
		if !ok {
			fmt.Fprintf(w, "%-60s %14.0f %14s %8s\n", name, o.NsPerOp, "-", "gone")
			continue
		}
		if o.NsPerOp <= 0 {
			continue
		}
		delta := (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		verdict := ""
		if delta > tolerance {
			verdict = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-60s %14.0f %14.0f %+7.1f%%%s\n", name, o.NsPerOp, n.NsPerOp, delta*100, verdict)
	}
	// Benchmarks only the new file has (a benchmark that just landed, run
	// against a baseline predating it): note them, in stable order, and
	// skip the comparison — there is nothing to regress against until the
	// baseline is refreshed.
	var added []string
	for name := range newRecs {
		if _, ok := oldRecs[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Fprintf(w, "%-60s %14s %14.0f %8s  skipped: no baseline\n", name, "-", newRecs[name].NsPerOp, "new")
	}
	return regressions, nil
}

// parse extracts benchmark lines of the form
//
//	BenchmarkName-8   123   4567 ns/op   0.98 hit-rate   12 B/op   3 allocs/op
func parse(sc *bufio.Scanner) ([]Record, error) {
	var recs []Record
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "Benchmark..." log line, not a result row
		}
		rec := Record{Op: fields[0], Iterations: iters, Policy: policyOf(fields[0]), Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", sc.Text(), fields[i])
			}
			unit := fields[i+1]
			switch unit {
			case "ns/op":
				rec.NsPerOp = v
			case "hit-rate":
				hr := v
				rec.HitRate = &hr
				rec.Metrics[unit] = v
			default:
				rec.Metrics[unit] = v
			}
		}
		if len(rec.Metrics) == 0 {
			rec.Metrics = nil
		}
		recs = append(recs, rec)
	}
	return recs, sc.Err()
}
