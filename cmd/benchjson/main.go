// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON array of benchmark records, one per benchmark line:
// name, iterations, ns/op, and every extra metric the benchmark reported
// (B/op, allocs/op, custom metrics like the buffer pool's hit-rate).
//
//	go test -run '^$' -bench 'Pool' ./internal/buffer | benchjson -out BENCH_pool.json
//
// `make bench-json` uses it to seed the performance trajectory artifact
// (BENCH_pool.json) that CI uploads on every run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result.
type Record struct {
	Op         string  `json:"op"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Policy is extracted from "policy=<name>" sub-benchmark path
	// segments (the eviction-policy comparison in BENCH_cache.json keys
	// on it).
	Policy string `json:"policy,omitempty"`
	// HitRate surfaces the buffer-pool benchmarks' custom metric at the
	// top level when present.
	HitRate *float64           `json:"hit_rate,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// policyOf extracts the value of a "policy=<name>" path segment from a
// benchmark name like BenchmarkCachePolicyScanMix/policy=lru-8 (the
// trailing -N is the GOMAXPROCS suffix).
func policyOf(name string) string {
	for _, seg := range strings.Split(name, "/") {
		if val, ok := strings.CutPrefix(seg, "policy="); ok {
			if i := strings.LastIndex(val, "-"); i > 0 {
				if _, err := strconv.Atoi(val[i+1:]); err == nil {
					val = val[:i]
				}
			}
			return val
		}
	}
	return ""
}

func main() {
	out := flag.String("out", "BENCH_pool.json", "output JSON file (- for stdout)")
	flag.Parse()
	recs, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(recs) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d records to %s\n", len(recs), *out)
}

// parse extracts benchmark lines of the form
//
//	BenchmarkName-8   123   4567 ns/op   0.98 hit-rate   12 B/op   3 allocs/op
func parse(sc *bufio.Scanner) ([]Record, error) {
	var recs []Record
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "Benchmark..." log line, not a result row
		}
		rec := Record{Op: fields[0], Iterations: iters, Policy: policyOf(fields[0]), Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", sc.Text(), fields[i])
			}
			unit := fields[i+1]
			switch unit {
			case "ns/op":
				rec.NsPerOp = v
			case "hit-rate":
				hr := v
				rec.HitRate = &hr
				rec.Metrics[unit] = v
			default:
				rec.Metrics[unit] = v
			}
		}
		if len(rec.Metrics) == 0 {
			rec.Metrics = nil
		}
		recs = append(recs, rec)
	}
	return recs, sc.Err()
}
