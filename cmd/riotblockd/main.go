// Command riotblockd is the standalone network block server: it exposes
// one shard root directory over the blockproto wire protocol, so a
// riotshared front-end can stripe a block store across machines instead of
// local directories (shard specs `host:port` and `dir` mix freely).
//
//	riotblockd -addr :8441 -root /var/lib/riotshare/shard-0
//	riotshared serve -shard-addrs host0:8441,host1:8441,host2:8441,host3:8441 -replicas 2 -persist
//
// One process serves one shard; run one riotblockd per shard root. The
// protocol is specified in docs/remote-protocol.md and the deployment
// runbook in docs/operations.md. The server shuts down gracefully on
// SIGINT/SIGTERM: the listener closes, in-flight connections drain, block
// stores close.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"riotshare/internal/blockd"
	"riotshare/internal/storage"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "riotblockd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", ":8441", "listen address")
		root    = flag.String("root", "", "shard root directory this server exposes (required)")
		format  = flag.String("format", "daf", "block format: daf or lab-tree (must match the front-end's -format)")
		serial  = flag.Bool("serial-device", false, "serve one simulated-latency request at a time (device modeling experiments)")
		quiet   = flag.Bool("quiet", false, "suppress per-connection logging")
		metrics = flag.String("metrics-addr", "", "optional HTTP sidecar address serving GET /metrics and /healthz (e.g. :9441)")
	)
	flag.Parse()
	if *root == "" {
		return fmt.Errorf("-root required: the shard directory this server exposes")
	}
	f := storage.FormatDAF
	switch *format {
	case "daf":
	case "lab-tree":
		f = storage.FormatLABTree
	default:
		return fmt.Errorf("unknown format %q (daf, lab-tree)", *format)
	}
	opt := blockd.Options{Format: f, SerialDevice: *serial}
	if !*quiet {
		opt.Logf = blockd.StdLogf
	}
	srv, err := blockd.New(*root, opt)
	if err != nil {
		return err
	}
	if err := srv.ListenAndServe(*addr); err != nil {
		return err
	}
	if *metrics != "" {
		// The sidecar is observability-only: a bind failure is fatal (a
		// silent half-deployment is worse), but serve errors after that
		// only lose metrics, never block traffic.
		mln, err := net.Listen("tcp", *metrics)
		if err != nil {
			srv.Close()
			return fmt.Errorf("metrics listener: %w", err)
		}
		go func() { _ = http.Serve(mln, srv.MetricsHandler()) }()
		defer mln.Close()
		fmt.Printf("riotblockd: metrics on http://%s/metrics\n", mln.Addr())
	}
	fmt.Printf("riotblockd: serving shard root %s on %s (format %s)\n", *root, srv.Addr(), f)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("riotblockd: shutting down")
	return srv.Close()
}
