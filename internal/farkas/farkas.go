// Package farkas implements the affine form of the Farkas lemma (Lemma 1,
// §5.2): given a non-empty polyhedron P and an affine form ψ(z; u) whose
// coefficients are themselves affine in a vector of unknowns u (schedule
// coefficients), it derives the exact linear constraints on u equivalent to
// ∀z ∈ P: ψ(z; u) >= 0. This is the mechanism that linearizes dependence and
// sharing-opportunity constraints on schedules.
package farkas

import (
	"riotshare/internal/polyhedra"
)

// LinForm is an affine expression over the unknown vector u: Coef·u + K.
type LinForm struct {
	Coef []int64
	K    int64
}

// Template describes ψ(z; u) over a polyhedron with Dim z-variables: the
// coefficient of z_m is the affine form Var[m], and the constant term is
// Const. All forms share the unknown dimension NU.
type Template struct {
	NU    int
	Var   []LinForm // one per z variable
	Const LinForm
}

// NewTemplate returns a zero template for dim z-variables and nu unknowns.
func NewTemplate(dim, nu int) *Template {
	t := &Template{NU: nu, Var: make([]LinForm, dim)}
	for i := range t.Var {
		t.Var[i] = LinForm{Coef: make([]int64, nu)}
	}
	t.Const = LinForm{Coef: make([]int64, nu)}
	return t
}

// AddVarUnknown adds c*u[k] to the coefficient of z variable m.
func (t *Template) AddVarUnknown(m, k int, c int64) *Template {
	t.Var[m].Coef[k] += c
	return t
}

// AddConstUnknown adds c*u[k] to the constant term.
func (t *Template) AddConstUnknown(k int, c int64) *Template {
	t.Const.Coef[k] += c
	return t
}

// AddConst adds the literal c to the constant term.
func (t *Template) AddConst(c int64) *Template {
	t.Const.K += c
	return t
}

// Apply returns the polyhedron over the unknowns u such that
// ∀z ∈ P: ψ(z; u) >= 0. P must be non-empty for the lemma's equivalence; if
// P is empty the returned constraints are vacuously sound (they describe a
// superset of the true, unconstrained, solution set). Farkas multipliers are
// eliminated over the rationals, as the lemma requires; the result is an
// integer polyhedron over u.
func Apply(p *polyhedra.Poly, t *Template) *polyhedra.Poly {
	if len(t.Var) != p.Dim {
		panic("farkas: template dimension mismatch")
	}
	// Split constraints: inequalities get λ_k >= 0, equalities get free μ_e.
	var ineqs, eqs []polyhedra.Constraint
	for _, c := range p.Cons {
		if c.Eq {
			eqs = append(eqs, c)
		} else {
			ineqs = append(ineqs, c)
		}
	}
	nu := t.NU
	nl := len(ineqs) + 1 // λ0 plus one per inequality
	nm := len(eqs)
	total := nu + nl + nm
	lam0 := nu
	lam := func(k int) int { return nu + 1 + k }
	mu := func(e int) int { return nu + 1 + len(ineqs) + e }

	sys := polyhedra.NewPoly(total)
	sys.Rational = true

	// Coefficient matching per z variable m:
	//   Var[m](u) - Σ_k λ_k a_km - Σ_e μ_e e_em == 0.
	for m := 0; m < p.Dim; m++ {
		coef := make([]int64, total)
		copy(coef, t.Var[m].Coef)
		for k, c := range ineqs {
			coef[lam(k)] = -c.Coef[m]
		}
		for e, c := range eqs {
			coef[mu(e)] = -c.Coef[m]
		}
		sys.AddEq(coef, t.Var[m].K)
	}
	// Constant matching: Const(u) - λ0 - Σ_k λ_k b_k - Σ_e μ_e b_e == 0.
	{
		coef := make([]int64, total)
		copy(coef, t.Const.Coef)
		coef[lam0] = -1
		for k, c := range ineqs {
			coef[lam(k)] = -c.K
		}
		for e, c := range eqs {
			coef[mu(e)] = -c.K
		}
		sys.AddEq(coef, t.Const.K)
	}
	// λ0 >= 0 and λ_k >= 0.
	for k := 0; k < nl; k++ {
		coef := make([]int64, total)
		coef[nu+k] = 1
		sys.AddIneq(coef, 0)
	}
	// Project out the multipliers (rational elimination).
	out, _ := sys.ProjectOutRange(nu, nl+nm)
	out.Rational = false // the unknowns (schedule coefficients) are integers
	out.Simplify()
	return out
}

// ApplyEq returns the constraints on u equivalent to ∀z ∈ P: ψ(z; u) == 0,
// by applying the lemma to both ψ >= 0 and -ψ >= 0.
func ApplyEq(p *polyhedra.Poly, t *Template) *polyhedra.Poly {
	pos := Apply(p, t)
	neg := Apply(p, t.Negate())
	return polyhedra.Intersect(pos, neg)
}

// Negate returns the template for -ψ.
func (t *Template) Negate() *Template {
	out := NewTemplate(len(t.Var), t.NU)
	for m := range t.Var {
		for k, c := range t.Var[m].Coef {
			out.Var[m].Coef[k] = -c
		}
		out.Var[m].K = -t.Var[m].K
	}
	for k, c := range t.Const.Coef {
		out.Const.Coef[k] = -c
	}
	out.Const.K = -t.Const.K
	return out
}

// Shifted returns a copy of the template with the constant term shifted by
// delta (ψ - delta >= 0 expresses ψ >= delta).
func (t *Template) Shifted(delta int64) *Template {
	out := NewTemplate(len(t.Var), t.NU)
	for m := range t.Var {
		copy(out.Var[m].Coef, t.Var[m].Coef)
		out.Var[m].K = t.Var[m].K
	}
	copy(out.Const.Coef, t.Const.Coef)
	out.Const.K = t.Const.K - delta
	return out
}

// Eval computes ψ(z; u) for concrete z and u — used by tests to
// cross-validate Apply against brute force.
func (t *Template) Eval(z, u []int64) int64 {
	var v int64
	for m, f := range t.Var {
		coef := f.K
		for k, c := range f.Coef {
			coef += c * u[k]
		}
		v += coef * z[m]
	}
	v += t.Const.K
	for k, c := range t.Const.Coef {
		v += c * u[k]
	}
	return v
}
