package farkas

import (
	"math/rand"
	"testing"

	"riotshare/internal/polyhedra"
)

// The paper's worked example (§5.2): dependence s2WE→s2WE with polyhedron
// P = {(i,j,k,i',j',k') | i'=i, j'=j, k'=k+1}. Require
// θ·(i',j',k') - θ·(i,j,k) >= 1 with θ = (α,β,γ): the derivation in the
// paper yields α, β free and γ >= 1.
func TestPaperWorkedExample(t *testing.T) {
	p := polyhedra.NewPoly(6, "i", "j", "k", "i'", "j'", "k'")
	p.AddEq([]int64{-1, 0, 0, 1, 0, 0}, 0)  // i' - i = 0
	p.AddEq([]int64{0, -1, 0, 0, 1, 0}, 0)  // j' - j = 0
	p.AddEq([]int64{0, 0, -1, 0, 0, 1}, -1) // k' - k - 1 = 0

	// Unknowns u = (α, β, γ). ψ = α(i'-i) + β(j'-j) + γ(k'-k) - 1.
	tpl := NewTemplate(6, 3)
	tpl.AddVarUnknown(0, 0, -1) // -α i
	tpl.AddVarUnknown(1, 1, -1)
	tpl.AddVarUnknown(2, 2, -1)
	tpl.AddVarUnknown(3, 0, 1) // +α i'
	tpl.AddVarUnknown(4, 1, 1)
	tpl.AddVarUnknown(5, 2, 1)
	tpl.AddConst(-1) // strict: >= 1

	res := Apply(p, tpl)
	// γ >= 1 required; α, β unconstrained.
	for _, u := range [][]int64{{0, 0, 1}, {5, -7, 2}, {-3, 9, 1}} {
		if !res.Contains(u) {
			t.Errorf("u=%v should satisfy the Farkas constraints (%s)", u, res)
		}
	}
	for _, u := range [][]int64{{0, 0, 0}, {1, 1, -1}, {9, 9, 0}} {
		if res.Contains(u) {
			t.Errorf("u=%v should violate γ>=1 (%s)", u, res)
		}
	}
}

// Brute-force cross-validation: for random small polyhedra and templates,
// u ∈ Apply(P, t) iff ψ(z; u) >= 0 for all enumerated z ∈ P.
func TestApplyMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 60; iter++ {
		dim := 1 + rng.Intn(2)
		nu := 1 + rng.Intn(2)
		p := polyhedra.NewPoly(dim)
		for i := 0; i < dim; i++ {
			p.AddRange(i, 0, int64(1+rng.Intn(3)))
		}
		if rng.Intn(2) == 0 && dim == 2 {
			p.AddEq([]int64{1, -1}, int64(rng.Intn(3)-1))
		}
		pts, err := p.Enumerate(1000)
		if err != nil || len(pts) == 0 {
			continue
		}
		tpl := NewTemplate(dim, nu)
		for m := 0; m < dim; m++ {
			for k := 0; k < nu; k++ {
				tpl.AddVarUnknown(m, k, int64(rng.Intn(3)-1))
			}
			tpl.Var[m].K = int64(rng.Intn(3) - 1)
		}
		tpl.AddConst(int64(rng.Intn(3) - 1))

		res := Apply(p, tpl)
		// Try all u in a small grid.
		grid := []int64{-2, -1, 0, 1, 2}
		u := make([]int64, nu)
		var rec func(d int)
		rec = func(d int) {
			if d == nu {
				want := true
				for _, z := range pts {
					if tpl.Eval(z, u) < 0 {
						want = false
						break
					}
				}
				got := res.Contains(u)
				if got != want {
					t.Fatalf("iter %d: mismatch at u=%v: farkas=%v brute=%v\nP=%s", iter, u, got, want, p)
				}
				return
			}
			for _, v := range grid {
				u[d] = v
				rec(d + 1)
			}
		}
		rec(0)
	}
}

// ApplyEq: ∀z∈P ψ==0 must accept exactly the u making ψ vanish identically
// on P.
func TestApplyEq(t *testing.T) {
	// P = {0 <= z <= 3}; ψ = u0*z + u1. ψ==0 on P iff u0==0 and u1==0.
	p := polyhedra.NewPoly(1)
	p.AddRange(0, 0, 3)
	tpl := NewTemplate(1, 2)
	tpl.AddVarUnknown(0, 0, 1)
	tpl.AddConstUnknown(1, 1)
	res := ApplyEq(p, tpl)
	if !res.Contains([]int64{0, 0}) {
		t.Error("(0,0) must satisfy")
	}
	for _, u := range [][]int64{{1, 0}, {0, 1}, {-1, 2}} {
		if res.Contains(u) {
			t.Errorf("u=%v should fail ψ==0", u)
		}
	}
}

// ApplyEq on a degenerate (single-point) polyhedron: ψ must vanish at that
// point but coefficients may trade off against the constant.
func TestApplyEqSinglePoint(t *testing.T) {
	p := polyhedra.NewPoly(1)
	p.AddEq([]int64{1}, -2) // z == 2
	tpl := NewTemplate(1, 2)
	tpl.AddVarUnknown(0, 0, 1) // u0*z
	tpl.AddConstUnknown(1, 1)  // + u1
	res := ApplyEq(p, tpl)
	// 2*u0 + u1 == 0.
	if !res.Contains([]int64{1, -2}) || !res.Contains([]int64{0, 0}) || !res.Contains([]int64{-3, 6}) {
		t.Errorf("points on 2u0+u1=0 must satisfy (%s)", res)
	}
	if res.Contains([]int64{1, 0}) {
		t.Error("(1,0) gives ψ(2)=2 ≠ 0")
	}
}

func TestShifted(t *testing.T) {
	tpl := NewTemplate(1, 1)
	tpl.AddVarUnknown(0, 0, 1)
	s := tpl.Shifted(1)
	if s.Const.K != -1 || tpl.Const.K != 0 {
		t.Fatal("Shifted should subtract from a copy")
	}
}

func TestNegate(t *testing.T) {
	tpl := NewTemplate(2, 1)
	tpl.AddVarUnknown(0, 0, 3)
	tpl.AddConst(5)
	n := tpl.Negate()
	if n.Var[0].Coef[0] != -3 || n.Const.K != -5 {
		t.Fatal("Negate wrong")
	}
	if got := n.Eval([]int64{2, 0}, []int64{1}); got != -(3*2 + 5) {
		t.Fatalf("Eval after negate: %d", got)
	}
}

// Unbounded polyhedron: ψ >= 0 on {z >= 0} with ψ = u0*z + u1 requires
// u0 >= 0 and u1 >= 0.
func TestApplyUnbounded(t *testing.T) {
	p := polyhedra.NewPoly(1)
	p.AddIneq([]int64{1}, 0) // z >= 0
	tpl := NewTemplate(1, 2)
	tpl.AddVarUnknown(0, 0, 1)
	tpl.AddConstUnknown(1, 1)
	res := Apply(p, tpl)
	if !res.Contains([]int64{0, 0}) || !res.Contains([]int64{2, 3}) {
		t.Error("nonnegative coefficients should satisfy")
	}
	if res.Contains([]int64{-1, 100}) {
		t.Error("u0=-1 fails for large z")
	}
	if res.Contains([]int64{1, -1}) {
		t.Error("u1=-1 fails at z=0")
	}
}
