// remote_bench_test.go measures the network plane's round-trip cost: a
// 64-block sweep against one riotblockd server — serial (one in-flight
// request) vs pipelined (requests overlapped across the connection pool) —
// with the same sweep against a local directory Manager as the baseline.
// `make bench-json` snapshots the results into BENCH_remote.json and the CI
// bench-regression gate compares them against the committed baseline.
package blockd_test

import (
	"sync"
	"testing"
	"time"

	"riotshare/internal/blas"
	"riotshare/internal/blockd"
	"riotshare/internal/prog"
	"riotshare/internal/storage"
)

// benchArray is the 64-block benchmark working set: 32x32 float64 blocks,
// 8x8 grid (8 KiB per block, 512 KiB total).
func benchArray() *prog.Array {
	return &prog.Array{Name: "B", BlockRows: 32, BlockCols: 32, GridRows: 8, GridCols: 8}
}

// fillBench creates and fills the benchmark array on a backend.
func fillBench(b *testing.B, store storage.Backend, arr *prog.Array) {
	b.Helper()
	if err := store.Create(arr); err != nil {
		b.Fatal(err)
	}
	blk := blas.NewMatrix(arr.BlockRows, arr.BlockCols)
	for i := range blk.Data {
		blk.Data[i] = float64(i)
	}
	for r := int64(0); r < int64(arr.GridRows); r++ {
		for c := int64(0); c < int64(arr.GridCols); c++ {
			if err := store.WriteBlock(arr.Name, r, c, blk); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// startBenchServer boots an in-process riotblockd and a client for it.
func startBenchServer(b *testing.B, pool int) (*blockd.Server, *storage.RemoteShard) {
	b.Helper()
	srv, err := blockd.New(b.TempDir(), blockd.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	rs := storage.NewRemoteShard(srv.Addr(), storage.RemoteOptions{PoolSize: pool})
	b.Cleanup(func() { rs.Close() })
	return srv, rs
}

// sweepSerial reads every block one request at a time — each read pays a
// full round-trip of latency.
func sweepSerial(b *testing.B, store storage.Backend, arr *prog.Array) {
	b.Helper()
	for r := int64(0); r < int64(arr.GridRows); r++ {
		for c := int64(0); c < int64(arr.GridCols); c++ {
			if _, err := store.ReadBlock(arr.Name, r, c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// sweepPipelined reads every block with 8 concurrent readers, so requests
// overlap on the wire (pipelined over the connection pool).
func sweepPipelined(b *testing.B, store storage.Backend, arr *prog.Array) {
	b.Helper()
	type coord struct{ r, c int64 }
	work := make(chan coord, arr.GridRows*arr.GridCols)
	for r := int64(0); r < int64(arr.GridRows); r++ {
		for c := int64(0); c < int64(arr.GridCols); c++ {
			work <- coord{r, c}
		}
	}
	close(work)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for co := range work {
				if _, err := store.ReadBlock(arr.Name, co.r, co.c); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		b.Fatal(err)
	}
}

// BenchmarkRemoteRead sweeps 64 blocks per op: the local-directory
// baseline, the remote serial case (round-trip per block), and the remote
// pipelined case (round-trips overlapped) — the speedup pipelining is for.
func BenchmarkRemoteRead(b *testing.B) {
	arr := benchArray()
	b.Run("local-dir", func(b *testing.B) {
		m, err := storage.NewManager(b.TempDir(), storage.FormatDAF)
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		fillBench(b, m, arr)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweepSerial(b, m, arr)
		}
	})
	b.Run("remote-serial", func(b *testing.B) {
		_, rs := startBenchServer(b, 4)
		fillBench(b, rs, arr)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweepSerial(b, rs, arr)
		}
	})
	b.Run("remote-pipelined", func(b *testing.B) {
		_, rs := startBenchServer(b, 4)
		fillBench(b, rs, arr)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweepPipelined(b, rs, arr)
		}
	})
}

// BenchmarkRemoteReadLatency is the same 64-block sweep against a server
// whose simulated device costs 200µs per read — the regime pipelining is
// for: the serial sweep pays 64 sequential device waits plus 64 round
// trips, the pipelined sweep overlaps them across in-flight requests.
func BenchmarkRemoteReadLatency(b *testing.B) {
	arr := benchArray()
	for _, variant := range []struct {
		name  string
		sweep func(*testing.B, storage.Backend, *prog.Array)
	}{
		{"remote-serial", sweepSerial},
		{"remote-pipelined", sweepPipelined},
	} {
		b.Run(variant.name, func(b *testing.B) {
			_, rs := startBenchServer(b, 4)
			fillBench(b, rs, arr)
			rs.SetLatency(200*time.Microsecond, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				variant.sweep(b, rs, arr)
			}
		})
	}
}

// BenchmarkRemoteWrite sweeps 64 block writes per op, local vs remote.
func BenchmarkRemoteWrite(b *testing.B) {
	arr := benchArray()
	blk := blas.NewMatrix(arr.BlockRows, arr.BlockCols)
	for i := range blk.Data {
		blk.Data[i] = float64(i)
	}
	sweep := func(b *testing.B, store storage.Backend) {
		for r := int64(0); r < int64(arr.GridRows); r++ {
			for c := int64(0); c < int64(arr.GridCols); c++ {
				if err := store.WriteBlock(arr.Name, r, c, blk); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("local-dir", func(b *testing.B) {
		m, err := storage.NewManager(b.TempDir(), storage.FormatDAF)
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		if err := m.Create(arr); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweep(b, m)
		}
	})
	b.Run("remote", func(b *testing.B) {
		_, rs := startBenchServer(b, 4)
		if err := rs.Create(arr); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweep(b, rs)
		}
	})
}
