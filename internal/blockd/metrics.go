package blockd

import (
	"fmt"
	"net/http"
	"time"

	"riotshare/internal/blockproto"
	"riotshare/internal/telemetry"
)

// opNames maps blockproto opcodes to metric label values.
var opNames = map[byte]string{
	blockproto.OpPing:     "ping",
	blockproto.OpCreate:   "create",
	blockproto.OpRead:     "read",
	blockproto.OpWrite:    "write",
	blockproto.OpDrop:     "drop",
	blockproto.OpStats:    "stats",
	blockproto.OpManifest: "manifest",
	blockproto.OpStat:     "stat",
	blockproto.OpWipe:     "wipe",
	blockproto.OpLatency:  "latency",
}

// initMetrics builds the server's registry: per-op latency histograms
// and error counters (pre-registered so the serve path never takes
// the registry's registration lock), plus a collector over the
// manager's physical I/O counters and the live connection count.
func (s *Server) initMetrics() {
	s.reg = telemetry.New()
	s.opLat = make(map[byte]*telemetry.Histogram, len(opNames))
	s.opErrs = make(map[byte]*telemetry.Counter, len(opNames))
	for op, name := range opNames {
		lbl := telemetry.L("op", name)
		s.opLat[op] = s.reg.Histogram("riotblockd_op_seconds",
			"Latency of blockproto operations served, per opcode.", nil, lbl)
		s.opErrs[op] = s.reg.Counter("riotblockd_op_errors_total",
			"Blockproto operations answered with a non-OK status, per opcode.", lbl)
	}
	s.reg.Collect(func(e *telemetry.Emit) {
		st := s.mgr.Stats()
		e.Counter("riotblockd_read_reqs_total", "Physical block reads served.", float64(st.ReadReqs))
		e.Counter("riotblockd_read_bytes_total", "Bytes read from the shard root.", float64(st.ReadBytes))
		e.Counter("riotblockd_write_reqs_total", "Physical block writes served.", float64(st.WriteReqs))
		e.Counter("riotblockd_write_bytes_total", "Bytes written to the shard root.", float64(st.WriteBytes))
		s.mu.Lock()
		conns := len(s.conns)
		s.mu.Unlock()
		e.Gauge("riotblockd_connections", "Currently open client connections.", float64(conns))
	})
}

// observeOp records one served operation's latency and error outcome.
func (s *Server) observeOp(op, status byte, d time.Duration) {
	h, ok := s.opLat[op]
	if !ok {
		return // unknown opcode: answered BadRequest, nothing registered
	}
	h.ObserveDuration(d)
	if status != blockproto.StatusOK {
		s.opErrs[op].Inc()
	}
}

// Metrics exposes the server's telemetry registry.
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// MetricsHandler returns the HTTP sidecar mux cmd/riotblockd serves on
// -metrics-addr: GET /metrics (Prometheus text exposition) and GET
// /healthz.
func (s *Server) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}
