// Package blockd is the network block server behind cmd/riotblockd: it
// exposes exactly one shard root — a single-directory storage.Manager plus
// that root's MANIFEST.json — over the blockproto wire protocol, turning a
// shard directory into a shard address. A ShardedManager front-end
// (riotshared) connects one remote-shard client per address and stripes
// blocks across servers exactly as it stripes across local directories:
// placement, manifests, fingerprints, and replication semantics are
// bit-identical.
//
// Each accepted connection is served by one goroutine that answers
// requests strictly in arrival order, so pipelining clients can match
// responses to requests by position. Concurrency comes from connections:
// the underlying Manager is safe for concurrent use and coalesces
// duplicate reads across them.
package blockd

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"riotshare/internal/blockproto"
	"riotshare/internal/prog"
	"riotshare/internal/storage"
	"riotshare/internal/telemetry"
)

// Options configures a Server beyond its root directory.
type Options struct {
	// Format selects the on-disk block format (default DAF). It must match
	// the front-end's format; the manifest the front-end writes through
	// OpManifest records and validates it.
	Format storage.Format
	// SerialDevice serializes simulated-latency requests, modeling a
	// one-request-at-a-time device (see storage.Manager.SerialDevice).
	SerialDevice bool
	// Logf, when set, receives one line per accepted connection and per
	// connection-fatal error. Nil silences the server (tests).
	Logf func(format string, args ...any)
}

// Server serves one shard root over the blockproto protocol.
type Server struct {
	root string
	opt  Options
	mgr  *storage.Manager

	// Telemetry (built once in New, read-only afterwards): per-op
	// latency histograms and non-OK counters keyed by opcode, plus the
	// registry the -metrics-addr sidecar scrapes.
	reg    *telemetry.Registry
	opLat  map[byte]*telemetry.Histogram
	opErrs map[byte]*telemetry.Counter

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// New creates a server over the shard root directory, creating it if
// needed. Call Serve or ListenAndServe to start answering.
func New(root string, opt Options) (*Server, error) {
	mgr, err := storage.NewManager(root, opt.Format)
	if err != nil {
		return nil, err
	}
	mgr.SerialDevice = opt.SerialDevice
	s := &Server{root: root, opt: opt, mgr: mgr, conns: make(map[net.Conn]struct{})}
	s.initMetrics()
	return s, nil
}

// ListenAndServe listens on addr (TCP) and serves until Close. It returns
// once the listener is accepting, serving in background goroutines — the
// pattern in-process tests and cmd/riotblockd both use; the caller owns
// shutdown via Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// Publish the listener before Serve's goroutine runs, so Addr() is
	// valid the moment this returns.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("blockd: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	go s.Serve(ln)
	return nil
}

// Addr returns the bound listen address once ListenAndServe (or Serve) has
// a listener — "" before that. With ":0" this is how tests learn the port.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections on ln until Close (or a fatal accept error)
// and answers each on its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("blockd: server closed")
	}
	s.ln = ln // idempotent when ListenAndServe already published it
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close stops the listener, closes every live connection and the block
// stores, and waits for connection goroutines to drain. Safe to call more
// than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	if cerr := s.mgr.Close(); err == nil {
		err = cerr
	}
	return err
}

// logf logs through Options.Logf when set.
func (s *Server) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// serveConn answers one connection's requests in order until EOF or a
// connection-fatal error.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	for {
		version, op, payload, err := blockproto.ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !isConnReset(err) {
				s.logf("blockd: %s: read: %v", conn.RemoteAddr(), err)
			}
			return
		}
		t0 := time.Now()
		status, resp := s.handle(version, op, payload)
		s.observeOp(op, status, time.Since(t0))
		if err := blockproto.WriteFrame(conn, status, resp); err != nil {
			if !errors.Is(err, net.ErrClosed) && !isConnReset(err) {
				s.logf("blockd: %s: write: %v", conn.RemoteAddr(), err)
			}
			return
		}
	}
}

// isConnReset matches the peer-went-away errors a killed client leaves
// behind; they are routine, not log-worthy.
func isConnReset(err error) bool {
	return err != nil && (strings.Contains(err.Error(), "connection reset") ||
		strings.Contains(err.Error(), "broken pipe"))
}

// errStatus maps a handler error to its wire status and message payload.
func errStatus(status byte, err error) (byte, []byte) {
	return status, new(blockproto.Enc).Str(err.Error()).Bytes()
}

// handle answers one decoded request frame.
func (s *Server) handle(version, op byte, payload []byte) (byte, []byte) {
	if version != blockproto.ProtoVersion {
		return errStatus(blockproto.StatusBadVersion,
			fmt.Errorf("blockd: protocol version %d, server speaks %d", version, blockproto.ProtoVersion))
	}
	d := blockproto.NewDec(payload)
	switch op {
	case blockproto.OpPing:
		return blockproto.StatusOK, nil

	case blockproto.OpCreate:
		name := d.Str()
		arr := &prog.Array{
			Name:      name,
			BlockRows: int(d.U32()), BlockCols: int(d.U32()),
			GridRows: int(d.U32()), GridCols: int(d.U32()),
			LogicalBlockBytes: d.I64(),
		}
		ensure := d.U8() != 0
		if err := d.Err(); err != nil {
			return errStatus(blockproto.StatusBadRequest, err)
		}
		err := s.mgr.Create(arr)
		if err != nil && ensure && strings.Contains(err.Error(), "already created") {
			if prev := s.mgr.Registered(name); prev != nil && !sameGeometry(prev, arr) {
				// The registration is a stale leftover of an earlier client
				// session's same-named array with a different shape. Reopen
				// under the new geometry, reusing the file the way a fresh
				// local Manager would.
				_ = s.mgr.Drop(name, false)
				err = s.mgr.Create(arr)
			} else {
				err = nil
			}
		}
		if err != nil {
			if strings.Contains(err.Error(), "already created") {
				return errStatus(blockproto.StatusExists, err)
			}
			return errStatus(blockproto.StatusErr, err)
		}
		return blockproto.StatusOK, nil

	case blockproto.OpRead:
		name, r, c := d.Str(), d.I64(), d.I64()
		if err := d.Err(); err != nil {
			return errStatus(blockproto.StatusBadRequest, err)
		}
		blk, err := s.mgr.ReadBlock(name, r, c)
		if err != nil {
			return errStatus(readErrStatus(err), err)
		}
		e := new(blockproto.Enc).U32(uint32(blk.Rows)).U32(uint32(blk.Cols))
		e.Blob(blockproto.EncodeBlock(blk))
		return blockproto.StatusOK, e.Bytes()

	case blockproto.OpWrite:
		name, r, c := d.Str(), d.I64(), d.I64()
		rows, cols := int(d.U32()), int(d.U32())
		raw := d.Blob()
		if err := d.Err(); err != nil {
			return errStatus(blockproto.StatusBadRequest, err)
		}
		blk, err := blockproto.DecodeBlock(rows, cols, raw)
		if err != nil {
			return errStatus(blockproto.StatusBadRequest, err)
		}
		if err := s.mgr.WriteBlock(name, r, c, blk); err != nil {
			return errStatus(readErrStatus(err), err)
		}
		return blockproto.StatusOK, nil

	case blockproto.OpDrop:
		name, deleteFile := d.Str(), d.U8() != 0
		if err := d.Err(); err != nil {
			return errStatus(blockproto.StatusBadRequest, err)
		}
		if err := s.mgr.Drop(name, deleteFile); err != nil {
			return errStatus(readErrStatus(err), err)
		}
		return blockproto.StatusOK, nil

	case blockproto.OpStats:
		st := s.mgr.Stats()
		e := new(blockproto.Enc).I64(st.ReadReqs).I64(st.ReadBytes).I64(st.WriteReqs).I64(st.WriteBytes)
		return blockproto.StatusOK, e.Bytes()

	case blockproto.OpManifest:
		return s.handleManifest(d)

	case blockproto.OpStat:
		name := d.Str()
		if err := d.Err(); err != nil {
			return errStatus(blockproto.StatusBadRequest, err)
		}
		exists := byte(0)
		if _, err := os.Stat(s.storePath(name)); err == nil {
			exists = 1
		} else if !errors.Is(err, fs.ErrNotExist) {
			return errStatus(blockproto.StatusErr, err)
		}
		return blockproto.StatusOK, new(blockproto.Enc).U8(exists).Bytes()

	case blockproto.OpWipe:
		name := d.Str()
		if err := d.Err(); err != nil {
			return errStatus(blockproto.StatusBadRequest, err)
		}
		// Close an open store first so the removal cannot race a write
		// through a surviving descriptor; an unregistered array is fine.
		_ = s.mgr.Drop(name, false)
		if err := os.Remove(s.storePath(name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return errStatus(blockproto.StatusErr, err)
		}
		return blockproto.StatusOK, nil

	case blockproto.OpLatency:
		read, write := d.I64(), d.I64()
		if err := d.Err(); err != nil {
			return errStatus(blockproto.StatusBadRequest, err)
		}
		s.mgr.SetLatency(time.Duration(read), time.Duration(write))
		return blockproto.StatusOK, nil

	default:
		return errStatus(blockproto.StatusBadRequest, fmt.Errorf("blockd: unknown opcode %d", op))
	}
}

// handleManifest answers the three OpManifest sub-operations against the
// shard root's MANIFEST.json.
func (s *Server) handleManifest(d *blockproto.Dec) (byte, []byte) {
	sub := d.U8()
	path := filepath.Join(s.root, "MANIFEST.json")
	switch sub {
	case blockproto.ManifestGet:
		data, err := os.ReadFile(path)
		if errors.Is(err, fs.ErrNotExist) {
			return errStatus(blockproto.StatusNotFound, err)
		}
		if err != nil {
			return errStatus(blockproto.StatusErr, err)
		}
		return blockproto.StatusOK, new(blockproto.Enc).Blob(data).Bytes()
	case blockproto.ManifestPut:
		data := d.Blob()
		if err := d.Err(); err != nil {
			return errStatus(blockproto.StatusBadRequest, err)
		}
		// The same crash-safe tmp+fsync+rename discipline local shard
		// roots get: a riotblockd crash never leaves a torn manifest.
		if err := storage.AtomicWriteFile(path, data, 0o644); err != nil {
			return errStatus(blockproto.StatusErr, err)
		}
		return blockproto.StatusOK, nil
	case blockproto.ManifestDel:
		if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return errStatus(blockproto.StatusErr, err)
		}
		return blockproto.StatusOK, nil
	default:
		return errStatus(blockproto.StatusBadRequest, fmt.Errorf("blockd: unknown manifest sub-op %d", sub))
	}
}

// sameGeometry reports whether two registrations of one array name agree
// on block shape, grid shape, and logical block bytes — everything the
// store layout depends on.
func sameGeometry(a, b *prog.Array) bool {
	return a.BlockRows == b.BlockRows && a.BlockCols == b.BlockCols &&
		a.GridRows == b.GridRows && a.GridCols == b.GridCols &&
		a.LogicalBlockBytes == b.LogicalBlockBytes
}

// storePath is the on-disk store file of one array under this root.
func (s *Server) storePath(name string) string {
	return filepath.Join(s.root, name+"."+s.opt.Format.String())
}

// readErrStatus classifies a Manager error for the wire: "unknown array"
// becomes its own status so clients can treat it as an application error
// (never a connection failure).
func readErrStatus(err error) byte {
	if strings.Contains(err.Error(), "unknown array") {
		return blockproto.StatusUnknownArray
	}
	return blockproto.StatusErr
}

// StdLogf adapts the standard library logger for Options.Logf.
func StdLogf(format string, args ...any) { log.Printf(format, args...) }
