// remote_test.go exercises the network plane end to end: riotblockd
// servers (in-process) behind RemoteShard clients, standalone and striped
// under a ShardedManager — correctness against local directories, failure
// classification (timeout → retry → success; refused → unavailable), and
// the degraded-read + Repair story when a server dies mid-workload.
package blockd_test

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"riotshare/internal/blas"
	"riotshare/internal/blockd"
	"riotshare/internal/prog"
	"riotshare/internal/storage"
)

func testArray(name string) *prog.Array {
	return &prog.Array{Name: name, BlockRows: 4, BlockCols: 3, GridRows: 5, GridCols: 4}
}

// startServer boots an in-process riotblockd over root on a fresh port.
func startServer(t *testing.T, root string) *blockd.Server {
	t.Helper()
	srv, err := blockd.New(root, blockd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// fillBlocks writes a deterministic block set and returns it by coordinate.
func fillBlocks(t *testing.T, b storage.Backend, arr *prog.Array, seed int64) map[[2]int64]*blas.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	blocks := map[[2]int64]*blas.Matrix{}
	for r := int64(0); r < int64(arr.GridRows); r++ {
		for c := int64(0); c < int64(arr.GridCols); c++ {
			blk := blas.NewMatrix(arr.BlockRows, arr.BlockCols)
			for i := range blk.Data {
				blk.Data[i] = rng.NormFloat64()
			}
			blocks[[2]int64{r, c}] = blk
			if err := b.WriteBlock(arr.Name, r, c, blk); err != nil {
				t.Fatalf("write %s[%d,%d]: %v", arr.Name, r, c, err)
			}
		}
	}
	return blocks
}

func assertBlocks(t *testing.T, b storage.Backend, arr *prog.Array, want map[[2]int64]*blas.Matrix) {
	t.Helper()
	for coord, w := range want {
		got, err := b.ReadBlock(arr.Name, coord[0], coord[1])
		if err != nil {
			t.Fatalf("read %s[%d,%d]: %v", arr.Name, coord[0], coord[1], err)
		}
		for i := range w.Data {
			if got.Data[i] != w.Data[i] {
				t.Fatalf("%s[%d,%d] element %d = %v, want %v", arr.Name, coord[0], coord[1], i, got.Data[i], w.Data[i])
			}
		}
	}
}

// A remote shard must round-trip blocks bit-identically and answer
// application errors as such — never as connection failures.
func TestRemoteShardRoundTrip(t *testing.T) {
	srv := startServer(t, t.TempDir())
	rs := storage.NewRemoteShard(srv.Addr(), storage.RemoteOptions{})
	defer rs.Close()

	arr := testArray("A")
	if err := rs.Create(arr); err != nil {
		t.Fatal(err)
	}
	want := fillBlocks(t, rs, arr, 7)
	assertBlocks(t, rs, arr, want)

	st := rs.Stats()
	if st.WriteReqs == 0 || st.ReadReqs == 0 {
		t.Errorf("server stats not counted over the wire: %+v", st)
	}

	// Duplicate create is an application error (detected in the client's
	// session-scoped registry), not a retryable connection failure.
	if err := rs.Create(arr); err == nil {
		t.Error("duplicate Create succeeded")
	} else if errors.Is(err, storage.ErrShardUnavailable) {
		t.Errorf("duplicate Create misclassified as unavailable: %v", err)
	}
	// Unknown arrays likewise.
	if _, err := rs.ReadBlock("nope", 0, 0); err == nil {
		t.Error("read of unknown array succeeded")
	} else if errors.Is(err, storage.ErrShardUnavailable) {
		t.Errorf("unknown-array read misclassified as unavailable: %v", err)
	}
	if rst := rs.RemoteStats(); rst.Retries != 0 {
		t.Errorf("application errors were retried %d times", rst.Retries)
	}

	if err := rs.Drop(arr.Name, true); err != nil {
		t.Fatal(err)
	}
}

// A riotblockd outlives client sessions, so Create's duplicate detection
// is session-scoped: a new client reuses a stale registration silently
// (like a fresh local Manager reuses an existing store file), reopens it
// when the geometry changed, and still refuses duplicates within its own
// session.
func TestRemoteCreateAcrossSessions(t *testing.T) {
	srv := startServer(t, t.TempDir())
	arr := testArray("A")

	first := storage.NewRemoteShard(srv.Addr(), storage.RemoteOptions{})
	if err := first.Create(arr); err != nil {
		t.Fatal(err)
	}
	want := fillBlocks(t, first, arr, 19)
	first.Close()

	// Session two: same name, same geometry — Create succeeds and the
	// prior session's blocks are still there (the store was reused).
	second := storage.NewRemoteShard(srv.Addr(), storage.RemoteOptions{})
	defer second.Close()
	if err := second.Create(arr); err != nil {
		t.Fatalf("Create after session restart: %v", err)
	}
	assertBlocks(t, second, arr, want)
	if err := second.Create(arr); err == nil {
		t.Error("duplicate Create within one session succeeded")
	}

	// Session three: same name, different geometry — the stale
	// registration is reopened under the new shape and I/O works.
	third := storage.NewRemoteShard(srv.Addr(), storage.RemoteOptions{})
	defer third.Close()
	wide := &prog.Array{Name: "A", BlockRows: 2, BlockCols: 6, GridRows: 3, GridCols: 2}
	if err := third.Create(wide); err != nil {
		t.Fatalf("Create with new geometry after session restart: %v", err)
	}
	blk := blas.NewMatrix(wide.BlockRows, wide.BlockCols)
	for i := range blk.Data {
		blk.Data[i] = float64(i) * 0.5
	}
	if err := third.WriteBlock("A", 1, 1, blk); err != nil {
		t.Fatal(err)
	}
	got, err := third.ReadBlock("A", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != wide.BlockRows || got.Cols != wide.BlockCols {
		t.Fatalf("reopened store served %dx%d blocks, want %dx%d", got.Rows, got.Cols, wide.BlockRows, wide.BlockCols)
	}
	for i := range blk.Data {
		if got.Data[i] != blk.Data[i] {
			t.Fatalf("element %d = %v, want %v", i, got.Data[i], blk.Data[i])
		}
	}
}

// Concurrent reads pipeline across the pool without mixing up responses.
func TestRemoteShardConcurrent(t *testing.T) {
	srv := startServer(t, t.TempDir())
	rs := storage.NewRemoteShard(srv.Addr(), storage.RemoteOptions{PoolSize: 2})
	defer rs.Close()

	arr := testArray("A")
	if err := rs.Create(arr); err != nil {
		t.Fatal(err)
	}
	want := fillBlocks(t, rs, arr, 11)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for coord, wantBlk := range want {
				got, err := rs.ReadBlock(arr.Name, coord[0], coord[1])
				if err != nil {
					errs <- err
					return
				}
				for i := range wantBlk.Data {
					if got.Data[i] != wantBlk.Data[i] {
						errs <- errors.New("pipelined read returned wrong block contents")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// A striped store over riotblockd servers must hold bit-identical data to
// the same store over local directories.
func TestRemoteShardedMatchesLocalDirs(t *testing.T) {
	const shards = 4
	addrs := make([]string, shards)
	for i := range addrs {
		addrs[i] = startServer(t, t.TempDir()).Addr()
	}
	remote, err := storage.OpenSharded(addrs, storage.ShardedOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	local, err := storage.OpenSharded(storage.ShardDirs(t.TempDir(), shards), storage.ShardedOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	arr := testArray("A")
	for _, b := range []storage.Backend{remote, local} {
		if err := b.Create(arr); err != nil {
			t.Fatal(err)
		}
	}
	wantRemote := fillBlocks(t, remote, arr, 23)
	wantLocal := fillBlocks(t, local, arr, 23)
	for coord, w := range wantLocal {
		r := wantRemote[coord]
		for i := range w.Data {
			if r.Data[i] != w.Data[i] {
				t.Fatalf("deterministic fill diverged at %v element %d", coord, i)
			}
		}
	}
	assertBlocks(t, remote, arr, wantLocal)
}

// Mixed specs: local directories and remote servers in one store.
func TestMixedLocalRemoteShards(t *testing.T) {
	specs := []string{
		t.TempDir(),
		startServer(t, t.TempDir()).Addr(),
		t.TempDir(),
		startServer(t, t.TempDir()).Addr(),
	}
	sm, err := storage.OpenSharded(specs, storage.ShardedOptions{Replicas: 2, Persist: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	arr := testArray("A")
	if err := sm.Create(arr); err != nil {
		t.Fatal(err)
	}
	want := fillBlocks(t, sm, arr, 31)
	assertBlocks(t, sm, arr, want)
}

// stallProxy stalls its first N accepted connections (reads requests,
// never answers — the timeout case), then transparently forwards later
// connections to target.
type stallProxy struct {
	ln     net.Listener
	target string
	mu     sync.Mutex
	stall  int
}

func newStallProxy(t *testing.T, target string, stallConns int) *stallProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &stallProxy{ln: ln, target: target, stall: stallConns}
	t.Cleanup(func() { ln.Close() })
	go p.run()
	return p
}

func (p *stallProxy) run() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		stall := p.stall > 0
		if stall {
			p.stall--
		}
		p.mu.Unlock()
		if stall {
			// Swallow requests forever; the client must time out, kill
			// this connection, and retry on a fresh one.
			go func() { io.Copy(io.Discard, conn) }()
			continue
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			conn.Close()
			continue
		}
		go func() { io.Copy(up, conn); up.Close() }()
		go func() { io.Copy(conn, up); conn.Close() }()
	}
}

// A stalled request must time out, burn a retry, and then succeed on a
// fresh connection — the transient-failure classification.
func TestRemoteTimeoutRetriesThenSucceeds(t *testing.T) {
	srv := startServer(t, t.TempDir())
	proxy := newStallProxy(t, srv.Addr(), 1)
	rs := storage.NewRemoteShard(proxy.ln.Addr().String(), storage.RemoteOptions{
		PoolSize:     1,
		OpTimeout:    150 * time.Millisecond,
		Retries:      2,
		RetryBackoff: 5 * time.Millisecond,
	})
	defer rs.Close()

	arr := testArray("A")
	if err := rs.Create(arr); err != nil {
		t.Fatalf("create through stalling proxy: %v", err)
	}
	st := rs.RemoteStats()
	if st.Timeouts == 0 {
		t.Error("no timeout counted for the stalled connection")
	}
	if st.Retries == 0 {
		t.Error("no retry counted after the timeout")
	}
	if st.Dials < 2 {
		t.Errorf("retry did not use a fresh connection (dials=%d)", st.Dials)
	}
}

// Connection refused is a persistent failure: immediate
// ErrShardUnavailable, no retry burn.
func TestRemoteConnectionRefusedIsUnavailable(t *testing.T) {
	// Grab a port nothing listens on.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	rs := storage.NewRemoteShard(addr, storage.RemoteOptions{Retries: 2, RetryBackoff: time.Millisecond})
	defer rs.Close()
	err = rs.Ping()
	if !errors.Is(err, storage.ErrShardUnavailable) {
		t.Fatalf("refused connection classified as %v, want ErrShardUnavailable", err)
	}
	if st := rs.RemoteStats(); st.Retries != 0 {
		t.Errorf("refused connection burned %d retries; persistent failures must not retry", st.Retries)
	}
}

// Exhausted transient retries surface as ErrShardUnavailable too.
func TestRemoteExhaustedRetriesAreUnavailable(t *testing.T) {
	srv := startServer(t, t.TempDir())
	proxy := newStallProxy(t, srv.Addr(), 100) // stall every connection
	rs := storage.NewRemoteShard(proxy.ln.Addr().String(), storage.RemoteOptions{
		PoolSize:     1,
		OpTimeout:    50 * time.Millisecond,
		Retries:      1,
		RetryBackoff: time.Millisecond,
	})
	defer rs.Close()
	if err := rs.Ping(); !errors.Is(err, storage.ErrShardUnavailable) {
		t.Fatalf("exhausted retries classified as %v, want ErrShardUnavailable", err)
	}
}

// Killing one server mid-workload must degrade its shard automatically:
// reads fall back to replicas (counted), writes keep succeeding, and the
// data stays bit-identical.
func TestRemoteServerKillDegradesAndFallsBack(t *testing.T) {
	const shards = 4
	servers := make([]*blockd.Server, shards)
	addrs := make([]string, shards)
	roots := make([]string, shards)
	for i := range servers {
		roots[i] = t.TempDir()
		servers[i] = startServer(t, roots[i])
		addrs[i] = servers[i].Addr()
	}
	sm, err := storage.OpenSharded(addrs, storage.ShardedOptions{
		Replicas: 2,
		Remote:   storage.RemoteOptions{OpTimeout: time.Second, Retries: 1, RetryBackoff: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()

	arr := testArray("A")
	if err := sm.Create(arr); err != nil {
		t.Fatal(err)
	}
	want := fillBlocks(t, sm, arr, 47)

	servers[1].Close() // kill one riotblockd

	// Every block must still read back bit-identically; blocks whose
	// primary was shard 1 come from replicas.
	assertBlocks(t, sm, arr, want)
	if got := sm.Degraded(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Degraded() = %v after killing server 1, want [1]", got)
	}
	if sm.DegradedReads() == 0 {
		t.Error("no degraded reads counted while a server is down")
	}
	// Writes must keep succeeding (skipping the dead shard).
	blk := blas.NewMatrix(arr.BlockRows, arr.BlockCols)
	for i := range blk.Data {
		blk.Data[i] = float64(i)
	}
	if err := sm.WriteBlock(arr.Name, 0, 0, blk); err != nil {
		t.Fatalf("write with a dead server: %v", err)
	}
}

// A shard whose server comes back heals with Repair: re-mirrored from
// replicas, degraded flag cleared, counter reset.
func TestRemoteRepairAfterServerRestart(t *testing.T) {
	const shards = 3
	servers := make([]*blockd.Server, shards)
	addrs := make([]string, shards)
	roots := make([]string, shards)
	for i := range servers {
		roots[i] = t.TempDir()
		servers[i] = startServer(t, roots[i])
		addrs[i] = servers[i].Addr()
	}
	sm, err := storage.OpenSharded(addrs, storage.ShardedOptions{
		Replicas: 2, Persist: true,
		Remote: storage.RemoteOptions{OpTimeout: time.Second, Retries: 1, RetryBackoff: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()

	arr := testArray("A")
	if err := sm.Create(arr); err != nil {
		t.Fatal(err)
	}
	want := fillBlocks(t, sm, arr, 53)

	servers[1].Close()
	assertBlocks(t, sm, arr, want) // degrades shard 1 on first contact
	if got := sm.Degraded(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Degraded() = %v, want [1]", got)
	}

	// Repair against a still-dead server must fail cleanly and leave the
	// shard degraded.
	if err := sm.Repair(1); err == nil {
		t.Fatal("Repair succeeded against a dead server")
	}
	if got := sm.Degraded(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("failed Repair changed degraded set to %v", got)
	}

	// Restart the server on the same address and root, then repair.
	restarted, err := blockd.New(roots[1], blockd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted.ListenAndServe(addrs[1]); err != nil {
		t.Fatalf("rebind %s: %v", addrs[1], err)
	}
	defer restarted.Close()
	if err := sm.Repair(1); err != nil {
		t.Fatalf("Repair after restart: %v", err)
	}
	if got := sm.Degraded(); len(got) != 0 {
		t.Fatalf("Degraded() = %v after repair, want none", got)
	}
	if sm.DegradedReads() != 0 {
		t.Error("DegradedReads not reset by Repair")
	}
	assertBlocks(t, sm, arr, want)
}

// A persistent store over remote shards must reopen with its catalog, like
// local directories do; manifests travel over the manifest sub-protocol.
func TestRemotePersistReopen(t *testing.T) {
	const shards = 3
	addrs := make([]string, shards)
	for i := range addrs {
		addrs[i] = startServer(t, t.TempDir()).Addr()
	}
	opt := storage.ShardedOptions{Persist: true, Replicas: 2}
	sm, err := storage.OpenSharded(addrs, opt)
	if err != nil {
		t.Fatal(err)
	}
	arr := testArray("A")
	if err := sm.Create(arr); err != nil {
		sm.Close()
		t.Fatal(err)
	}
	want := fillBlocks(t, sm, arr, 61)
	if err := sm.RecordShared(arr, "fp-61"); err != nil {
		sm.Close()
		t.Fatal(err)
	}
	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := storage.OpenSharded(addrs, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.Reopened() {
		t.Fatal("reopen over remote shards did not find the manifests")
	}
	e, ok := re.SharedEntry(arr.Name)
	if !ok {
		t.Fatal("catalog lost across a remote reopen")
	}
	if e.Fingerprint != "fp-61" {
		t.Fatalf("fingerprint = %q, want fp-61", e.Fingerprint)
	}
	assertBlocks(t, re, arr, want)
}

// IsRemoteSpec must cleanly split directory paths from addresses.
func TestIsRemoteSpec(t *testing.T) {
	remote := []string{"localhost:8441", "127.0.0.1:9000", "h0:1"}
	local := []string{"/var/lib/riotshare", "./shard-0", "data", "host:port", "a/b:1", `C:\data`, ":8441"}
	for _, s := range remote {
		if !storage.IsRemoteSpec(s) {
			t.Errorf("IsRemoteSpec(%q) = false, want true", s)
		}
	}
	for _, s := range local {
		if storage.IsRemoteSpec(s) {
			t.Errorf("IsRemoteSpec(%q) = true, want false", s)
		}
	}
}

// The protocol rejects a version the server does not speak with a clean
// error rather than desyncing the stream.
func TestRemoteBadVersionError(t *testing.T) {
	srv := startServer(t, t.TempDir())
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Hand-rolled frame with a bogus version byte: len=2, version=99, op=1.
	if _, err := conn.Write([]byte{0, 0, 0, 2, 99, 1}); err != nil {
		t.Fatal(err)
	}
	resp := make([]byte, 6)
	if _, err := io.ReadFull(conn, resp); err != nil {
		t.Fatal(err)
	}
	if resp[5] == 0 {
		t.Fatal("server answered StatusOK to an unknown protocol version")
	}
	rest := make([]byte, int(uint32(resp[0])<<24|uint32(resp[1])<<16|uint32(resp[2])<<8|uint32(resp[3]))-2)
	if _, err := io.ReadFull(conn, rest); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rest), "version") {
		t.Errorf("bad-version error %q does not mention the version", rest)
	}
}
