// Package core is RIOTShare's optimizer end to end (Figure 2): it runs
// sharing-opportunity analysis, enumerates legal plans with the
// Apriori-style search, lowers each to an executable timeline, costs it,
// and picks the cheapest plan that fits the memory cap. This is the paper's
// primary contribution assembled from the substrate packages.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"riotshare/internal/codegen"
	"riotshare/internal/cost"
	"riotshare/internal/deps"
	"riotshare/internal/disk"
	"riotshare/internal/prog"
	"riotshare/internal/sched"
)

// Options configures optimization.
type Options struct {
	// MemCapBytes is the explicit memory cap (§4.2); 0 means unlimited.
	MemCapBytes int64
	// Model converts I/O volumes to time; zero value uses the paper's rates.
	Model disk.Model
	// BindParams makes the analysis drop opportunities that are empty for
	// the program's bound parameter values (the paper's per-configuration
	// analysis, e.g. n3=1 removing s2RC→s2RC).
	BindParams bool
	// MaxCalls bounds the Apriori search (0 = default).
	MaxCalls int
	// NoPruning disables the Apriori property (ablation).
	NoPruning bool
	// SkipMultiplicityReduction disables Remark A.1 (ablation).
	SkipMultiplicityReduction bool
}

// EvaluatedPlan is one legal plan with its cost.
type EvaluatedPlan struct {
	Index    int
	Plan     sched.Plan
	Timeline *codegen.Timeline
	Cost     cost.Cost
	// Label lists the realized sharing opportunities.
	Label string
}

// Result is the optimizer output.
type Result struct {
	Analysis *deps.Analysis
	Searcher *sched.Searcher
	// Plans holds every legal plan, sorted by I/O time ascending.
	Plans []EvaluatedPlan
	// Best is the cheapest plan fitting the memory cap (nil if none fits).
	Best *EvaluatedPlan
	// OptimizeTime is the wall-clock optimization time (§6's "A Note on
	// Optimization Time").
	OptimizeTime time.Duration
	// SearchStats reports search effort.
	SearchStats sched.Stats
}

// Optimize runs the full pipeline on a program whose parameters are bound.
func Optimize(p *prog.Program, opt Options) (*Result, error) {
	return OptimizeCtx(context.Background(), p, opt) //riotvet:allow ctxflow — compatibility wrapper; cancelable callers use OptimizeCtx
}

// OptimizeCtx is Optimize with cancellation: canceling ctx aborts the
// Apriori enumeration mid-search and returns the context's error, so
// shutdown and deadlines can interrupt a multi-minute full search.
func OptimizeCtx(ctx context.Context, p *prog.Program, opt Options) (*Result, error) {
	start := time.Now()
	model := opt.Model
	if model.ReadBytesPerSec == 0 {
		model = disk.PaperModel()
	}
	an, err := deps.Analyze(p, deps.Options{
		BindParams:                opt.BindParams,
		SkipMultiplicityReduction: opt.SkipMultiplicityReduction,
	})
	if err != nil {
		return nil, fmt.Errorf("core: analysis: %w", err)
	}
	searcher := sched.NewSearcher(an)
	plans, err := searcher.Search(ctx, sched.SearchOptions{MaxCalls: opt.MaxCalls, NoPruning: opt.NoPruning})
	if err != nil {
		return nil, fmt.Errorf("core: search: %w", err)
	}
	res := &Result{Analysis: an, Searcher: searcher}
	evaluated, err := lowerAndCostAll(an, plans, model)
	if err != nil {
		return nil, err
	}
	res.Plans = evaluated
	sort.SliceStable(res.Plans, func(i, j int) bool {
		return res.Plans[i].Cost.IOTimeSec < res.Plans[j].Cost.IOTimeSec
	})
	for i := range res.Plans {
		res.Plans[i].Index = i
		if res.Best == nil &&
			(opt.MemCapBytes == 0 || res.Plans[i].Cost.PeakMemoryBytes <= opt.MemCapBytes) {
			res.Best = &res.Plans[i]
		}
	}
	res.SearchStats = searcher.Stats
	res.OptimizeTime = time.Since(start)
	return res, nil
}

// lowerAndCostAll lowers and costs every plan concurrently (plans are
// independent; lowering enumerates instances and costing sums them, which
// dominates optimization time when the feasible combination space is large,
// e.g. the ~16k linear-regression plans).
func lowerAndCostAll(an *deps.Analysis, plans []sched.Plan, model disk.Model) ([]EvaluatedPlan, error) {
	out := make([]EvaluatedPlan, len(plans))
	errs := make([]error, len(plans))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(plans) {
		workers = len(plans)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(plans) {
					return
				}
				pl := plans[i]
				tl, err := codegen.Lower(an, pl)
				if err != nil {
					errs[i] = fmt.Errorf("core: lowering plan %s: %w", pl.Label(an), err)
					continue
				}
				out[i] = EvaluatedPlan{
					Plan: pl, Timeline: tl, Cost: cost.Evaluate(tl, model), Label: pl.Label(an),
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// OptimizeSubsets evaluates only the given sharing-opportunity
// combinations (each a list of display names like "s1WC→s2RC"), skipping
// the Apriori enumeration. The empty combination (baseline) is always
// included. Used by the selected-plan experiments (Figures 4(b), 5(b),
// 6(b)) and anywhere the caller already knows the plans of interest.
//
//riotvet:allow ctxflow — compatibility wrapper; cancelable callers use OptimizeSubsetsCtx
func OptimizeSubsets(p *prog.Program, opt Options, subsets [][]string) (*Result, error) {
	return OptimizeSubsetsCtx(context.Background(), p, opt, subsets) //riotvet:allow ctxflow — compatibility wrapper; see OptimizeSubsetsCtx
}

// OptimizeSubsetsCtx is OptimizeSubsets with cancellation plumbed through
// each FindSchedule call.
func OptimizeSubsetsCtx(ctx context.Context, p *prog.Program, opt Options, subsets [][]string) (*Result, error) {
	start := time.Now()
	model := opt.Model
	if model.ReadBytesPerSec == 0 {
		model = disk.PaperModel()
	}
	an, err := deps.Analyze(p, deps.Options{
		BindParams:                opt.BindParams,
		SkipMultiplicityReduction: opt.SkipMultiplicityReduction,
	})
	if err != nil {
		return nil, fmt.Errorf("core: analysis: %w", err)
	}
	searcher := sched.NewSearcher(an)
	all := append([][]string{{}}, subsets...)
	res := &Result{Analysis: an, Searcher: searcher}
	for _, names := range all {
		var q []*deps.CoAccess
		var idxs []int
		missing := false
		for _, n := range names {
			c := an.FindShare(n)
			if c == nil {
				missing = true
				break
			}
			q = append(q, c)
			for i, s := range an.Shares {
				if s == c {
					idxs = append(idxs, i)
				}
			}
		}
		if missing {
			return nil, fmt.Errorf("core: unknown sharing opportunity in %v (have %v)", names, an.ShareStrings())
		}
		schd, ok := searcher.FindSchedule(ctx, q)
		if !ok {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: search canceled: %w", err)
			}
			return nil, fmt.Errorf("core: combination %v is infeasible", names)
		}
		pl := sched.Plan{Shares: idxs, Schedule: schd}
		tl, err := codegen.Lower(an, pl)
		if err != nil {
			return nil, fmt.Errorf("core: lowering %v: %w", names, err)
		}
		res.Plans = append(res.Plans, EvaluatedPlan{
			Plan: pl, Timeline: tl, Cost: cost.Evaluate(tl, model), Label: pl.Label(an),
		})
	}
	sort.SliceStable(res.Plans, func(i, j int) bool {
		return res.Plans[i].Cost.IOTimeSec < res.Plans[j].Cost.IOTimeSec
	})
	for i := range res.Plans {
		res.Plans[i].Index = i
		if res.Best == nil &&
			(opt.MemCapBytes == 0 || res.Plans[i].Cost.PeakMemoryBytes <= opt.MemCapBytes) {
			res.Best = &res.Plans[i]
		}
	}
	res.SearchStats = searcher.Stats
	res.OptimizeTime = time.Since(start)
	return res, nil
}

// OptimizeGreedy is the budgeted fast-path optimizer behind the serving
// tier-2 planner: instead of the Apriori enumeration it runs
// sched.SearchGreedy, scoring candidates by logical I/O bytes (lowering and
// costing each tested combination). Canceling ctx mid-search degrades plan
// quality — the best combination found so far is kept — rather than failing;
// an error is returned only when analysis fails or not even the no-sharing
// baseline could be planned before cancellation. The Result has the same
// shape as Optimize's (Plans sorted by I/O time, Best per MemCapBytes) but
// typically holds just the baseline and the greedy winner.
func OptimizeGreedy(ctx context.Context, p *prog.Program, opt Options) (*Result, error) {
	start := time.Now()
	model := opt.Model
	if model.ReadBytesPerSec == 0 {
		model = disk.PaperModel()
	}
	an, err := deps.Analyze(p, deps.Options{
		BindParams:                opt.BindParams,
		SkipMultiplicityReduction: opt.SkipMultiplicityReduction,
	})
	if err != nil {
		return nil, fmt.Errorf("core: analysis: %w", err)
	}
	searcher := sched.NewSearcher(an)
	// Score by lowering + costing; memoize per label so assembling the
	// Result below reuses the work instead of re-lowering the winners.
	scored := make(map[string]EvaluatedPlan)
	score := func(pl sched.Plan) (float64, error) {
		label := pl.Label(an)
		if ev, ok := scored[label]; ok {
			return float64(ev.Cost.LogicalIOBytes()), nil
		}
		tl, err := codegen.Lower(an, pl)
		if err != nil {
			return 0, fmt.Errorf("core: lowering plan %s: %w", label, err)
		}
		c := cost.Evaluate(tl, model)
		scored[label] = EvaluatedPlan{Plan: pl, Timeline: tl, Cost: c, Label: label}
		return float64(c.LogicalIOBytes()), nil
	}
	plans, err := searcher.SearchGreedy(ctx, sched.GreedyOptions{Score: score, MaxCalls: opt.MaxCalls})
	if err != nil {
		return nil, fmt.Errorf("core: greedy search: %w", err)
	}
	res := &Result{Analysis: an, Searcher: searcher}
	for _, pl := range plans {
		label := pl.Label(an)
		ev, ok := scored[label]
		if !ok {
			tl, err := codegen.Lower(an, pl)
			if err != nil {
				return nil, fmt.Errorf("core: lowering plan %s: %w", label, err)
			}
			ev = EvaluatedPlan{Plan: pl, Timeline: tl, Cost: cost.Evaluate(tl, model), Label: label}
		}
		res.Plans = append(res.Plans, ev)
	}
	sort.SliceStable(res.Plans, func(i, j int) bool {
		return res.Plans[i].Cost.IOTimeSec < res.Plans[j].Cost.IOTimeSec
	})
	for i := range res.Plans {
		res.Plans[i].Index = i
		if res.Best == nil &&
			(opt.MemCapBytes == 0 || res.Plans[i].Cost.PeakMemoryBytes <= opt.MemCapBytes) {
			res.Best = &res.Plans[i]
		}
	}
	res.SearchStats = searcher.Stats
	res.OptimizeTime = time.Since(start)
	return res, nil
}

// Baseline returns the plan realizing no sharing opportunities (the
// original program's cost; Plan 0 in the paper's figures).
func (r *Result) Baseline() *EvaluatedPlan {
	for i := range r.Plans {
		if len(r.Plans[i].Plan.Shares) == 0 {
			return &r.Plans[i]
		}
	}
	return nil
}

// PlanBySharing finds a plan realizing exactly the named opportunities.
func (r *Result) PlanBySharing(names ...string) *EvaluatedPlan {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	for i := range r.Plans {
		pl := &r.Plans[i]
		if len(pl.Plan.Shares) != len(names) {
			continue
		}
		all := true
		for _, idx := range pl.Plan.Shares {
			if !want[r.Analysis.Shares[idx].String()] {
				all = false
				break
			}
		}
		if all {
			return pl
		}
	}
	return nil
}

// BlockSizeChoice is one evaluated (block shape, plan) combination from the
// joint optimizer.
type BlockSizeChoice struct {
	Scale  float64 // row-scaling factor applied to the base block shape
	Result *Result
	Best   *EvaluatedPlan
}

// OptimizeBlockSize implements the future-work extension sketched in §7 (and
// the ♣ experiment of §6.1): it co-optimizes the array block size with I/O
// sharing by sweeping scaling factors over a program-template builder and
// returning the evaluated choices, best first. build must return the
// program for a given scale.
//
//riotvet:allow ctxflow — compatibility wrapper; cancelable callers use OptimizeBlockSizeCtx
func OptimizeBlockSize(build func(scale float64) *prog.Program, scales []float64, opt Options) ([]BlockSizeChoice, error) {
	return OptimizeBlockSizeCtx(context.Background(), build, scales, opt) //riotvet:allow ctxflow — compatibility wrapper; see OptimizeBlockSizeCtx
}

// OptimizeBlockSizeCtx is OptimizeBlockSize with cancellation: each
// per-scale optimization runs under ctx, so a deadline or shutdown can
// interrupt the sweep between (or inside) full searches.
func OptimizeBlockSizeCtx(ctx context.Context, build func(scale float64) *prog.Program, scales []float64, opt Options) ([]BlockSizeChoice, error) {
	var out []BlockSizeChoice
	for _, s := range scales {
		r, err := OptimizeCtx(ctx, build(s), opt)
		if err != nil {
			return nil, fmt.Errorf("core: block-size scale %.2f: %w", s, err)
		}
		if r.Best == nil {
			continue // no plan fits the cap at this block size
		}
		out = append(out, BlockSizeChoice{Scale: s, Result: r, Best: r.Best})
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Best.Cost.IOTimeSec < out[j].Best.Cost.IOTimeSec
	})
	return out, nil
}
