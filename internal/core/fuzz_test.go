package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"riotshare/internal/blas"
	"riotshare/internal/codegen"
	"riotshare/internal/disk"
	"riotshare/internal/exec"
	"riotshare/internal/prog"
	"riotshare/internal/storage"
)

// randomProgram generates a random static-control program: a chain of 2-4
// blocked operators (elementwise combine, accumulate-multiply, aggregate)
// over randomly shaped block grids, where later operators consume earlier
// intermediates. The generator only produces well-formed programs; the
// pipeline must handle every one soundly.
func randomProgram(rng *rand.Rand, idx int) *prog.Program {
	p := prog.New(fmt.Sprintf("fuzz%d", idx), "n1", "n2")
	n1 := int64(2 + rng.Intn(3))
	n2 := int64(2 + rng.Intn(3))
	p.Bind("n1", n1).Bind("n2", n2)
	blk := func() (int, int) { return 2 + rng.Intn(3), 2 + rng.Intn(3) }
	br, bc := blk()

	newArr := func(name string, gr, gc int64, transient bool) {
		p.AddArray(&prog.Array{
			Name: name, BlockRows: br, BlockCols: bc,
			GridRows: int(gr), GridCols: int(gc), Transient: transient,
		})
	}
	newArr("In0", n1, n2, false)
	newArr("In1", n1, n2, false)

	// All ops but the last are shape-preserving (elementwise), so every read
	// stays within the grid upstream operators wrote; the final op is drawn
	// from all three kinds (elementwise, accumulating row-aggregate, or a
	// sliding window with two offset reads of the same array).
	nOps := 2 + rng.Intn(3)
	prev := "In0"
	for op := 0; op < nOps; op++ {
		out := fmt.Sprintf("T%d", op)
		last := op == nOps-1
		kind := 0
		if last {
			kind = rng.Intn(3)
		}
		switch kind {
		case 0: // elementwise: out[i,k] = prev[i,k] + In1[i,k]
			newArr(out, n1, n2, !last)
			p.NewNest()
			s := p.NewStatement(fmt.Sprintf("s%d", op+1), "i", "k")
			s.Range("i", prog.C(0), prog.V("n1")).Range("k", prog.C(0), prog.V("n2"))
			s.Access(prog.Read, prev, prog.V("i"), prog.V("k"))
			s.Access(prog.Read, "In1", prog.V("i"), prog.V("k"))
			s.Access(prog.Write, out, prog.V("i"), prog.V("k"))
			s.SetKernel("add")
		case 1: // row aggregate with accumulator: out[i,0] += f(prev[i,k])
			newArr(out, n1, 1, false)
			p.NewNest()
			s := p.NewStatement(fmt.Sprintf("s%d", op+1), "i", "k")
			s.Range("i", prog.C(0), prog.V("n1")).Range("k", prog.C(0), prog.V("n2"))
			s.Access(prog.Read, prev, prog.V("i"), prog.V("k"))
			s.AccessWhen(prog.Read, out, prog.V("i"), prog.C(0),
				[]prog.Cond{prog.GE(prog.V("k").AddK(-1))})
			s.Access(prog.Write, out, prog.V("i"), prog.C(0))
			s.SetKernel("scan-agg")
		default: // sliding window: out[i,k] = prev[i,k] + prev[i+1,k]
			newArr(out, n1-1, n2, false)
			p.NewNest()
			s := p.NewStatement(fmt.Sprintf("s%d", op+1), "i", "k")
			s.Range("i", prog.C(0), prog.V("n1").AddK(-1)).Range("k", prog.C(0), prog.V("n2"))
			s.Access(prog.Read, prev, prog.V("i"), prog.V("k"))
			s.Access(prog.Read, prev, prog.V("i").AddK(1), prog.V("k"))
			s.Access(prog.Write, out, prog.V("i"), prog.V("k"))
			s.SetKernel("add")
		}
		prev = out
	}
	return p
}

// scanKernelOK reports whether the generated program only chains
// shape-compatible operators (the generator occasionally produces chains
// the simple kernels cannot consume; those are skipped for execution but
// still exercised through analysis and search).
func executable(p *prog.Program) bool {
	for _, st := range p.Stmts {
		if st.Kernel == "add" {
			// add needs both read operands shaped like the output.
			w := st.WriteAccess()
			wa := p.Arrays[w.Array]
			for _, ac := range st.Accesses {
				if ac.Type == prog.Read {
					ra := p.Arrays[ac.Array]
					if ra.BlockRows != wa.BlockRows || ra.BlockCols != wa.BlockCols {
						return false
					}
				}
			}
		}
	}
	return true
}

// TestFuzzPipeline generates random programs and validates, for every plan
// the optimizer produces: (a) instance-level legality of the schedule,
// (b) cost/execution agreement byte for byte, (c) identical final outputs
// across all plans of the same program.
func TestFuzzPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	programs := 0
	for idx := 0; programs < 12 && idx < 60; idx++ {
		p := randomProgram(rng, idx)
		res, err := Optimize(p, Options{BindParams: true, MaxCalls: 30000})
		if err != nil {
			t.Fatalf("program %s: %v", p.Name, err)
		}
		programs++
		// (a) legality of every plan at the instance level.
		for _, pl := range res.Plans {
			if err := res.Searcher.VerifyConcrete(pl.Plan.Schedule); err != nil {
				t.Fatalf("program %s plan %s: %v", p.Name, pl.Label, err)
			}
		}
		if !executable(p) {
			continue
		}
		// (b)+(c): execute up to 6 plans, compare volumes and outputs.
		var refOutputs map[string][]float64
		limit := len(res.Plans)
		if limit > 6 {
			limit = 6
		}
		for _, pl := range res.Plans[:limit] {
			m, err := storage.NewManager(t.TempDir(), storage.FormatDAF)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.CreateAll(p); err != nil {
				t.Fatal(err)
			}
			if err := fillRandomInputs(p, m, 99); err != nil {
				t.Fatal(err)
			}
			eng := &exec.Engine{Store: m, Model: disk.PaperModel()}
			r, err := eng.Run(pl.Timeline)
			if err != nil {
				t.Fatalf("program %s plan %s: %v", p.Name, pl.Label, err)
			}
			if r.ReadBytes != pl.Cost.ReadBytes || r.WriteBytes != pl.Cost.WriteBytes {
				t.Fatalf("program %s plan %s: measured (%d,%d) != predicted (%d,%d)",
					p.Name, pl.Label, r.ReadBytes, r.WriteBytes, pl.Cost.ReadBytes, pl.Cost.WriteBytes)
			}
			if r.PeakMemoryBytes != pl.Cost.PeakMemoryBytes {
				t.Fatalf("program %s plan %s: peak memory %d != %d",
					p.Name, pl.Label, r.PeakMemoryBytes, pl.Cost.PeakMemoryBytes)
			}
			outs := readOutputs(t, p, m, pl.Timeline)
			if refOutputs == nil {
				refOutputs = outs
			} else {
				for name, want := range refOutputs {
					got, ok := outs[name]
					if !ok {
						continue
					}
					for i := range want {
						d := got[i] - want[i]
						if d > 1e-9 || d < -1e-9 {
							t.Fatalf("program %s plan %s: output %s differs from plan %s",
								p.Name, pl.Label, name, res.Plans[0].Label)
						}
					}
				}
			}
			m.Close()
		}
	}
	if programs < 10 {
		t.Fatalf("generator produced too few programs: %d", programs)
	}
}

func fillRandomInputs(p *prog.Program, m *storage.Manager, seed int64) error {
	written := map[string]bool{}
	for _, st := range p.Stmts {
		if w := st.WriteAccess(); w != nil {
			written[w.Array] = true
		}
	}
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, 0, len(p.Arrays))
	for name := range p.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		arr := p.Arrays[name]
		if written[name] {
			continue
		}
		for br := 0; br < arr.GridRows; br++ {
			for bc := 0; bc < arr.GridCols; bc++ {
				blk := newRandBlock(rng, arr.BlockRows, arr.BlockCols)
				if err := m.WriteBlock(name, int64(br), int64(bc), blk); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// readOutputs reads back every non-transient written array's blocks that
// the plan actually persisted to disk.
func readOutputs(t *testing.T, p *prog.Program, m *storage.Manager, tl *codegen.Timeline) map[string][]float64 {
	t.Helper()
	// Determine which blocks were physically written by this plan.
	persisted := map[string]bool{}
	for i, ev := range tl.Events {
		for ai, ac := range ev.St.Accesses {
			if ac.Type == prog.Write && tl.Actions[i][ai] == codegen.DoIO {
				r, c := ac.BlockAt(ev.X, tl.Params)
				persisted[codegen.BlockKey(ac.Array, r, c)] = true
			}
		}
	}
	out := map[string][]float64{}
	for name, arr := range p.Arrays {
		if arr.Transient {
			continue
		}
		var data []float64
		complete := true
		for br := 0; br < arr.GridRows && complete; br++ {
			for bc := 0; bc < arr.GridCols && complete; bc++ {
				if !persisted[codegen.BlockKey(name, int64(br), int64(bc))] {
					complete = false
					break
				}
				blk, err := m.ReadBlock(name, int64(br), int64(bc))
				if err != nil {
					t.Fatal(err)
				}
				data = append(data, blk.Data...)
			}
		}
		if complete && len(data) > 0 {
			out[name] = data
		}
	}
	return out
}

func newRandBlock(rng *rand.Rand, rows, cols int) *blas.Matrix {
	blk := blas.NewMatrix(rows, cols)
	for i := range blk.Data {
		blk.Data[i] = rng.NormFloat64()
	}
	return blk
}
