package core

import (
	"testing"

	"riotshare/internal/disk"
	"riotshare/internal/ops"
	"riotshare/internal/prog"
)

// paperAddMul builds Example 1 with the paper's Table 2 logical sizes
// (blocks of 6000×4000 and 4000×5000 elements; 12×12 and 12×1 grids) on
// scaled-down physical data.
func paperAddMul() *prog.Program {
	return ops.AddMul(ops.AddMulConfig{
		N1: 12, N2: 12, N3: 1,
		ABBlock:   ops.Dims{Rows: 6, Cols: 4},
		DBlock:    ops.Dims{Rows: 4, Cols: 5},
		LogicalAB: ops.Dims{Rows: 6000, Cols: 4000},
		LogicalD:  ops.Dims{Rows: 4000, Cols: 5000},
	})
}

// Figure 3's structure: the best plan must realize the paper's Plan 7
// sharing set, cut I/O time by roughly 2-3x versus the original plan, and
// memory footprints must cluster on a few distinct values.
func TestFigure3Shape(t *testing.T) {
	res, err := Optimize(paperAddMul(), Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	base := res.Baseline()
	best := &res.Plans[0]
	if base == nil {
		t.Fatal("no baseline")
	}
	t.Logf("plans=%d base=%.0fs best=%.0fs (%s) mem base=%dMB best=%dMB",
		len(res.Plans), base.Cost.IOTimeSec, best.Cost.IOTimeSec, best.Label,
		base.Cost.PeakMemoryBytes/(1<<20), best.Cost.PeakMemoryBytes/(1<<20))

	// Paper: Plan 0 = 2394s, Plan 7 = 836s (ratio 2.86); our model must land
	// in the same regime.
	ratio := base.Cost.IOTimeSec / best.Cost.IOTimeSec
	if ratio < 2.0 || ratio > 4.0 {
		t.Errorf("I/O improvement ratio %.2f outside the paper's regime (~2.9)", ratio)
	}
	// Paper: baseline I/O around 2394s and best around 836s with the same
	// matrix sizes and rates; allow ±25%%.
	if base.Cost.IOTimeSec < 1800 || base.Cost.IOTimeSec > 3000 {
		t.Errorf("baseline I/O time %.0fs far from the paper's 2394s", base.Cost.IOTimeSec)
	}
	if best.Cost.IOTimeSec < 600 || best.Cost.IOTimeSec > 1100 {
		t.Errorf("best I/O time %.0fs far from the paper's 836s", best.Cost.IOTimeSec)
	}
	// The best plan realizes the Plan-7 set.
	p7 := res.PlanBySharing("s1WC→s2RC", "s2WE→s2RE", "s2WE→s2WE")
	if p7 == nil {
		t.Fatal("Plan 7 sharing set missing")
	}
	if p7.Cost.IOTimeSec > best.Cost.IOTimeSec {
		t.Errorf("Plan 7 (%.0fs) should be the best plan (%.0fs, %s)",
			p7.Cost.IOTimeSec, best.Cost.IOTimeSec, best.Label)
	}
	// Memory footprints cluster: the paper observes only 3 distinct values
	// across 8 plans.
	distinct := map[int64]bool{}
	for _, pl := range res.Plans {
		distinct[pl.Cost.PeakMemoryBytes] = true
	}
	if len(distinct) > 5 {
		t.Errorf("expected few distinct memory footprints, got %d", len(distinct))
	}
	// Footprints in the paper's figure range roughly 590-820 MB.
	for _, pl := range res.Plans {
		mb := pl.Cost.PeakMemoryBytes / (1 << 20)
		if mb < 500 || mb > 1000 {
			t.Errorf("plan %s memory %dMB outside the paper's 590-820MB band", pl.Label, mb)
		}
	}
}

// The ♣ experiment: enlarging Plan 0's blocks (6000→9000 rows) uses more
// memory than Plan 7 yet still costs far more I/O — blindly enlarging
// blocks is not the best use of extra memory (§6.1).
func TestClubsuitBlockEnlargement(t *testing.T) {
	res, err := Optimize(paperAddMul(), Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	plan7 := res.PlanBySharing("s1WC→s2RC", "s2WE→s2RE", "s2WE→s2WE")
	if plan7 == nil {
		t.Fatal("missing plan 7")
	}
	// Enlarged-block program: 9000-row blocks, 8 row-blocks ≈ same total.
	big := ops.AddMul(ops.AddMulConfig{
		N1: 8, N2: 12, N3: 1,
		ABBlock:   ops.Dims{Rows: 9, Cols: 4},
		DBlock:    ops.Dims{Rows: 4, Cols: 5},
		LogicalAB: ops.Dims{Rows: 9000, Cols: 4000},
		LogicalD:  ops.Dims{Rows: 4000, Cols: 5000},
	})
	resBig, err := OptimizeSubsets(big, Options{BindParams: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	club := resBig.Baseline()
	if club.Cost.PeakMemoryBytes <= plan7.Cost.PeakMemoryBytes {
		t.Errorf("♣ should use more memory than Plan 7: %d vs %d",
			club.Cost.PeakMemoryBytes, plan7.Cost.PeakMemoryBytes)
	}
	if club.Cost.IOTimeSec <= 1.5*plan7.Cost.IOTimeSec {
		t.Errorf("♣ should still cost far more I/O than Plan 7: %.0fs vs %.0fs",
			club.Cost.IOTimeSec, plan7.Cost.IOTimeSec)
	}
}

// Memory cap selection: with a cap below the best plan's footprint the
// optimizer must pick a cheaper-memory plan.
func TestMemoryCapSelection(t *testing.T) {
	res, err := Optimize(paperAddMul(), Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	best := &res.Plans[0]
	cap := best.Cost.PeakMemoryBytes - 1
	res2, err := Optimize(paperAddMul(), Options{BindParams: true, MemCapBytes: cap})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Best == nil {
		t.Fatal("some plan must fit")
	}
	if res2.Best.Cost.PeakMemoryBytes > cap {
		t.Fatalf("selected plan exceeds cap: %d > %d", res2.Best.Cost.PeakMemoryBytes, cap)
	}
	if res2.Best.Cost.IOTimeSec < best.Cost.IOTimeSec {
		t.Fatal("capped best cannot beat uncapped best")
	}
}

// Optimization is parametric: the same template at different data scales
// yields the same plan structure (§6's "Datasets of Different Scales"), and
// costs scale with the data.
func TestScaleInvariance(t *testing.T) {
	mk := func(scale int) *prog.Program {
		return ops.AddMul(ops.AddMulConfig{
			N1: 12, N2: 12, N3: 1,
			ABBlock:   ops.Dims{Rows: 6, Cols: 4},
			DBlock:    ops.Dims{Rows: 4, Cols: 5},
			LogicalAB: ops.Dims{Rows: 600 * scale, Cols: 400 * scale},
			LogicalD:  ops.Dims{Rows: 400 * scale, Cols: 500 * scale},
		})
	}
	r1, err := Optimize(mk(1), Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	r10, err := Optimize(mk(10), Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Plans) != len(r10.Plans) {
		t.Fatalf("plan counts differ across scales: %d vs %d", len(r1.Plans), len(r10.Plans))
	}
	if r1.Plans[0].Label != r10.Plans[0].Label {
		t.Errorf("best plan changed across scales: %s vs %s", r1.Plans[0].Label, r10.Plans[0].Label)
	}
	// I/O volume scales by 100 (both block dims ×10).
	ratio := float64(r10.Plans[0].Cost.ReadBytes) / float64(r1.Plans[0].Cost.ReadBytes)
	if ratio < 99.9 || ratio > 100.1 {
		t.Errorf("I/O should scale 100x, got %.2f", ratio)
	}
}

// The refined cost model (per-request overhead) must increase estimates and
// can be swapped in freely (§5.4).
func TestRefinedCostModel(t *testing.T) {
	r1, err := OptimizeSubsets(paperAddMul(), Options{BindParams: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := OptimizeSubsets(paperAddMul(), Options{BindParams: true, Model: disk.RefinedModel(0.008)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Plans[0].Cost.IOTimeSec <= r1.Plans[0].Cost.IOTimeSec {
		t.Error("per-request overhead must increase estimated time")
	}
}

// OptimizeBlockSize (the §7 future-work extension): the joint optimizer
// must return choices sorted by I/O time and include multiple scales.
func TestOptimizeBlockSize(t *testing.T) {
	build := func(scale float64) *prog.Program {
		r := int(6 * scale)
		if r < 1 {
			r = 1
		}
		return ops.AddMul(ops.AddMulConfig{
			N1: 12, N2: 12, N3: 1,
			ABBlock:   ops.Dims{Rows: r, Cols: 4},
			DBlock:    ops.Dims{Rows: 4, Cols: 5},
			LogicalAB: ops.Dims{Rows: 1000 * r, Cols: 4000},
			LogicalD:  ops.Dims{Rows: 4000, Cols: 5000},
		})
	}
	choices, err := OptimizeBlockSize(build, []float64{0.5, 1, 2}, Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != 3 {
		t.Fatalf("want 3 choices, got %d", len(choices))
	}
	for i := 1; i < len(choices); i++ {
		if choices[i-1].Best.Cost.IOTimeSec > choices[i].Best.Cost.IOTimeSec {
			t.Fatal("choices must be sorted by I/O time")
		}
	}
}

// Ablation: disabling multiplicity reduction must not produce more plans
// than the reduced analysis admits fewer opportunities for.
func TestAblationMultiplicityReduction(t *testing.T) {
	p := paperAddMul()
	r1, err := Optimize(p, Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Optimize(paperAddMul(), Options{BindParams: true, SkipMultiplicityReduction: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("with reduction: %d plans (%d calls); without: %d plans (%d calls)",
		len(r1.Plans), r1.SearchStats.FindScheduleCalls,
		len(r2.Plans), r2.SearchStats.FindScheduleCalls)
	if r1.Baseline() == nil || r2.Baseline() == nil {
		t.Fatal("baselines must exist")
	}
}
