package core

import (
	"context"
	"testing"
	"time"

	"riotshare/internal/ops"
	"riotshare/internal/prog"
)

// GreedyIORatioBound is the documented plan-quality bound of the tier-2
// greedy planner (docs/planner.md): the greedy plan's logical I/O is
// within this factor of the full search's best plan on the paper's
// workloads. Observed: 1.00 on addmul and linreg, 1.28 on twomm-a (the
// greedy chain commits to the read-sharing family where the optimum mixes
// write-backed sharing) — the same regime as Janus-Datalog's ~13%-of-
// optimal greedy planner, and the background improver erases the gap for
// recurring shapes.
const GreedyIORatioBound = 1.30

// paperTwoMMA builds the paper's TwoMM configuration A (Figure 5) on
// scaled-down physical data, like paperAddMul.
func paperTwoMMA() *prog.Program {
	return ops.TwoMM(ops.TwoMMConfig{
		N1: 6, N2: 10, N3: 6, N4: 10,
		ABlock:   ops.Dims{Rows: 8, Cols: 7},
		BBlock:   ops.Dims{Rows: 7, Cols: 3},
		DBlock:   ops.Dims{Rows: 7, Cols: 3},
		LogicalA: ops.Dims{Rows: 8000, Cols: 7000},
		LogicalB: ops.Dims{Rows: 7000, Cols: 3000},
		LogicalD: ops.Dims{Rows: 7000, Cols: 3000},
	})
}

// comparePlanQuality runs both planners on one program and asserts the
// greedy plan's logical I/O stays within GreedyIORatioBound of the full
// search's best plan, at strictly fewer FindSchedule calls. Returns the
// two optimization times for callers that also bound planning time.
func comparePlanQuality(t *testing.T, name string, p *prog.Program, fullTimeout time.Duration) (greedyTime, fullTime time.Duration) {
	t.Helper()
	greedy, err := OptimizeGreedy(context.Background(), p, Options{BindParams: true})
	if err != nil {
		t.Fatalf("%s greedy: %v", name, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), fullTimeout)
	defer cancel()
	full, err := OptimizeCtx(ctx, p, Options{BindParams: true})
	if err != nil {
		t.Fatalf("%s full: %v", name, err)
	}
	if greedy.Best == nil || full.Best == nil {
		t.Fatalf("%s: missing best plan (greedy %v, full %v)", name, greedy.Best, full.Best)
	}
	gIO := greedy.Best.Cost.LogicalIOBytes()
	fIO := full.Best.Cost.LogicalIOBytes()
	ratio := float64(gIO) / float64(fIO)
	t.Logf("%s: greedy %s %.1fGB in %v (%d calls) vs full %s %.1fGB in %v (%d calls) — IO ratio %.3f",
		name, greedy.Best.Label, float64(gIO)/1e9, greedy.OptimizeTime, greedy.SearchStats.FindScheduleCalls,
		full.Best.Label, float64(fIO)/1e9, full.OptimizeTime, full.SearchStats.FindScheduleCalls, ratio)
	if ratio > GreedyIORatioBound {
		t.Errorf("%s: greedy plan's logical I/O is %.3fx the full search's best (bound %.2f)",
			name, ratio, GreedyIORatioBound)
	}
	if ratio < 1.0 {
		t.Errorf("%s: greedy plan beats the full enumeration (%.3fx) — the full search missed a plan", name, ratio)
	}
	// The greedy pass runs O(seeds·n) schedule searches per fixpoint pass;
	// the win over the full search's exponential enumeration only shows at
	// linreg scale (thousands of calls), so compare only there.
	if full.SearchStats.FindScheduleCalls > 100 &&
		greedy.SearchStats.FindScheduleCalls*10 >= full.SearchStats.FindScheduleCalls {
		t.Errorf("%s: greedy used %d FindSchedule calls, full search %d",
			name, greedy.SearchStats.FindScheduleCalls, full.SearchStats.FindScheduleCalls)
	}
	// The greedy table must still resolve a plan under any memory cap the
	// full table would (its baseline is the fallback).
	if greedy.Baseline() == nil {
		t.Errorf("%s: greedy table is missing the baseline plan", name)
	}
	return greedy.OptimizeTime, full.OptimizeTime
}

// Plan quality on the paper's Example 1 and TwoMM workloads: the greedy
// tier must stay within the documented logical-I/O bound of the full
// Apriori search.
func TestGreedyPlanQualityPaperConfigs(t *testing.T) {
	comparePlanQuality(t, "addmul", paperAddMul(), time.Minute)
	comparePlanQuality(t, "twomm-a", paperTwoMMA(), time.Minute)
}

// The linear-regression program is the workload the greedy tier exists
// for: its full search explores a ~2^16 combination space for over a
// minute, while the greedy pass runs O(n) schedule searches. The
// acceptance bar is planning in under 1% of the full search's time while
// staying within the documented I/O ratio. The full search runs under its
// own deadline so a search regression fails loudly rather than hanging.
func TestGreedyPlanQualityLinReg(t *testing.T) {
	if testing.Short() {
		t.Skip("full linreg plan-space search takes minutes; run without -short")
	}
	p := ops.LinReg(ops.LinRegConfig{
		N:        25,
		XBlock:   ops.Dims{Rows: 60, Cols: 40},
		YBlock:   ops.Dims{Rows: 60, Cols: 4},
		LogicalX: ops.Dims{Rows: 60000, Cols: 4000},
		LogicalY: ops.Dims{Rows: 60000, Cols: 400},
	})
	greedyTime, fullTime := comparePlanQuality(t, "linreg", p, 10*time.Minute)
	if frac := greedyTime.Seconds() / fullTime.Seconds(); frac > 0.01 {
		t.Errorf("greedy planning took %.2f%% of the full search's time (bar: < 1%%): %v vs %v",
			frac*100, greedyTime, fullTime)
	}
}
