// Package server is the multi-query analytics service: a session and
// admission layer that accepts program submissions (named benchmark
// programs or statement-builder JSON specs), optimizes them through a plan
// cache, admits executions through a tenant-aware resource governor
// (weighted round-robin across tenants under global and per-tenant
// concurrency/memory quotas; see internal/govern), and runs them over one
// shared, sharing-aware buffer pool — so a block read by one query is a
// cache hit for the next. It turns the single-shot optimizer into a
// long-running service, extending the paper's intra-program I/O sharing
// across concurrent queries and tenants.
//
// Input arrays (arrays a program never writes) are shared across queries by
// name: the first query to reference one creates and fills it, later
// queries — and concurrent ones — read the very same blocks through the
// pool. Written arrays are namespaced per query ("q3.E"), so concurrent
// executions of the same program cannot collide, while their ExecResults
// stay identical to standalone sequential runs. The governor prefers
// admitting queries whose shared inputs are already pool-resident
// (affinity batching), so those hits compound.
package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"riotshare/internal/bench"
	"riotshare/internal/blas"
	"riotshare/internal/buffer"
	"riotshare/internal/core"
	"riotshare/internal/disk"
	"riotshare/internal/exec"
	"riotshare/internal/govern"
	"riotshare/internal/prog"
	"riotshare/internal/storage"
	"riotshare/internal/telemetry"
)

// Config sizes the service.
type Config struct {
	// Dir hosts the physical block files (required unless ShardDirs is
	// set). With Shards > 1 the blocks live under Dir/shard-0 … shard-N-1.
	Dir string
	// Format selects the on-disk block format (default DAF).
	Format storage.Format
	// Shards stripes the block store across N shard directories —
	// stand-ins for devices — with deterministic block placement (<= 1 and
	// no ShardDirs = the classic single-directory manager). Results are
	// bit-identical across shard counts.
	Shards int
	// ShardDirs names the shard directories explicitly (separate devices
	// or mounts); it overrides Shards/Dir-derived layout. Order matters
	// and is validated against the persisted manifests.
	ShardDirs []string
	// ShardAddrs names remote shards — host:port addresses of riotblockd
	// servers — appended after ShardDirs, so local directories and remote
	// servers mix freely in one store. Order matters like ShardDirs.
	// Placement, replication, manifests, and results are identical to an
	// all-local layout; a server that stops answering degrades its shard
	// (replication permitting) instead of failing queries.
	ShardAddrs []string
	// Remote tunes the client for each remote shard (pool size, timeouts,
	// retry policy); zero value = defaults.
	Remote storage.RemoteOptions
	// Placement selects the block→shard mapping ("" or "hash", "rows").
	Placement string
	// Replicas mirrors each block on k shards (primary plus the next k-1
	// in ring order; 0/1 = unreplicated). With k >= 2 a lost shard
	// directory degrades reads to the surviving replicas instead of
	// failing the reopen, and RepairShard re-mirrors it in place.
	Replicas int
	// Persist keeps shared input arrays across server restarts: array
	// metadata and fill fingerprints are cataloged in a per-shard-root
	// manifest, and a server reopening the same directories skips
	// refilling any input whose fingerprint matches.
	Persist bool
	// PoolBytes is the shared buffer pool's soft capacity (0 = unlimited).
	PoolBytes int64
	// PoolPolicy selects the pool's replacement policy: "" or "lru" for
	// classic LRU, "segmented" for the scan-resistant segmented LRU under
	// which one tenant's huge scan cannot flush other tenants' hot sets.
	PoolPolicy string
	// TenantPoolQuotaBytes optionally bounds the pool bytes each tenant's
	// installed frames may occupy (quota partitioning inside the one
	// shared pool; absent tenants are bounded only by PoolBytes).
	TenantPoolQuotaBytes map[string]int64
	// MaxConcurrent is K, the number of concurrently executing queries
	// (default 2).
	MaxConcurrent int
	// GlobalMemBytes caps the combined peak (logical) memory of admitted
	// plans (0 = unlimited). A query whose plan alone exceeds it fails at
	// admission rather than starving the queue.
	GlobalMemBytes int64
	// Tenants sets per-tenant admission weights and concurrency/memory
	// quotas for the governor; absent tenants get weight 1 and only the
	// global bounds.
	Tenants map[string]govern.TenantConfig
	// NoAffinity disables shared-input affinity batching (by default the
	// governor prefers, within a tenant, the admissible query whose input
	// arrays are already pool-resident).
	NoAffinity bool
	// Workers/PrefetchDepth default each query to the pipelined engine
	// configuration (Workers <= 1 = sequential interpreter); a Request may
	// override them.
	Workers       int
	PrefetchDepth int
	// Seed drives the deterministic synthetic fill of shared input arrays.
	Seed int64
	// RetainOutputs bounds how many finished queries keep their output
	// arrays on disk for later retrieval (each open output store holds a
	// file descriptor, so an unbounded server would exhaust the process
	// limit). Oldest outputs are dropped first; their result summaries
	// remain. 0 = default (64), < 0 = unlimited.
	RetainOutputs int
	// FullSearch enables the full linreg plan-space search (minutes);
	// default uses the paper's selected plans.
	FullSearch bool
	// PlanBudget, when > 0, enables the tiered planner's greedy fast path
	// (tier 2): a cache-miss query is planned by the budgeted greedy
	// search under this wall-clock budget instead of the full Apriori
	// enumeration. 0 keeps the classic full search on every miss.
	// Programs with a restricted plan list (linreg without FullSearch)
	// always use their selected plans. See docs/planner.md.
	PlanBudget time.Duration
	// PlanImprover starts the background plan improver (tier 3):
	// greedy-planned cache entries are re-planned with the full search
	// off the query path and hot-swapped when strictly better, so
	// recurring query shapes converge toward full-search plan quality.
	PlanImprover bool
	// PlanCacheEntries bounds the plan cache; the least recently used
	// entry is evicted past the cap (0 = default 256, < 0 = unlimited).
	PlanCacheEntries int
	// Programs registers extra named programs next to the built-in
	// benchmark set (addmul, twomm-a, twomm-b, linreg).
	Programs map[string]func() *prog.Program
	// SlowQueryMs, when > 0, logs a structured span breakdown (one JSON
	// line) for every query whose wall time meets the threshold.
	SlowQueryMs int64
	// SlowQueryLog receives slow-query lines (default os.Stderr).
	SlowQueryLog io.Writer
	// EnablePprof registers net/http/pprof profiling handlers under
	// /debug/pprof/ on the HTTP API.
	EnablePprof bool
	// TraceCapacity bounds the ring of completed query traces served by
	// GET /trace (0 = default 256).
	TraceCapacity int
}

// Request is one program submission.
type Request struct {
	// Program names a registered program, or Spec carries a
	// statement-builder JSON program; exactly one must be set.
	Program string       `json:"program,omitempty"`
	Spec    *ProgramSpec `json:"spec,omitempty"`
	// Tenant labels the submission for the resource governor and the
	// pool's quota accounting ("" = the anonymous tenant).
	Tenant string `json:"tenant,omitempty"`
	// MemCapMB bounds the chosen plan's peak (logical) memory and is
	// enforced during execution (0 = unlimited: the cheapest plan wins).
	MemCapMB int64 `json:"memCapMB,omitempty"`
	// Plan forces a plan index from the optimizer's table (nil = cheapest
	// plan fitting MemCapMB).
	Plan *int `json:"plan,omitempty"`
	// Workers/Prefetch override the server's execution defaults when > 0.
	Workers  int `json:"workers,omitempty"`
	Prefetch int `json:"prefetch,omitempty"`
}

// State is a query's lifecycle phase.
type State string

// Query lifecycle states.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// OutputInfo summarizes one persistent output array of a finished query.
type OutputInfo struct {
	// Array is the program's name for the output; Physical is the
	// namespaced on-disk array ("q3.E") it was written to.
	Array    string  `json:"array"`
	Physical string  `json:"physical"`
	Rows     int     `json:"rows"`
	Cols     int     `json:"cols"`
	Sum      float64 `json:"sum"` // element sum, a cheap cross-check
}

// QueryStatus is a point-in-time snapshot of one query.
type QueryStatus struct {
	ID        string       `json:"id"`
	Program   string       `json:"program"`
	Tenant    string       `json:"tenant,omitempty"`
	State     State        `json:"state"`
	PlanIndex int          `json:"planIndex"`
	PlanLabel string       `json:"planLabel"`
	Submitted time.Time    `json:"submitted"`
	Started   time.Time    `json:"started,omitempty"`
	Finished  time.Time    `json:"finished,omitempty"`
	Result    *exec.Result `json:"result,omitempty"`
	Outputs   []OutputInfo `json:"outputs,omitempty"`
	Err       string       `json:"error,omitempty"`
}

// query is the server-side record.
type query struct {
	id      string
	req     Request
	prog    *prog.Program
	subsets [][]string // restricted plan search, when the program wants one

	// alias maps the program's written arrays to their namespaced
	// physical stores; outputsDropped marks that those stores were
	// retired (failure cleanup or the RetainOutputs policy).
	alias          map[string]string
	outputsDropped bool

	// stream tracks per-output-block completion so /results/stream can
	// deliver finished blocks while later pipeline stages still run.
	stream *streamState

	status QueryStatus
	done   chan struct{}
}

// TenantStats is one tenant's slice of the service counters: governor
// occupancy (queue depth, running, admitted memory footprint), submission
// lifecycle counts, admission queue wait, and its share of the buffer pool
// (hit rate, resident bytes, quota).
type TenantStats struct {
	Running        int     `json:"running"`
	Queued         int     `json:"queued"`
	MemBytes       int64   `json:"memBytes,omitempty"`
	Submitted      int64   `json:"submitted"`
	Finished       int64   `json:"finished"`
	AvgQueueWaitMs float64 `json:"avgQueueWaitMs"`
	// Queue-wait percentiles (admission request to grant), computed by the
	// governor over its recent-grants window — the server-side view the
	// fairness acceptance criteria are asserted against.
	QueueWaitP50Ms float64 `json:"queueWaitP50Ms"`
	QueueWaitP95Ms float64 `json:"queueWaitP95Ms"`
	QueueWaitP99Ms float64 `json:"queueWaitP99Ms"`
	PoolHits       int64   `json:"poolHits"`
	PoolMisses     int64   `json:"poolMisses"`
	PoolHitRate    float64 `json:"poolHitRate"`
	BytesCached    int64   `json:"bytesCached"`
	PoolQuotaBytes int64   `json:"poolQuotaBytes,omitempty"`
}

// Stats reports service-wide counters: the shared pool, physical storage
// I/O (aggregate and per shard), admission, the plan cache, shared-input
// persistence, and the per-tenant breakdown.
type Stats struct {
	Pool  buffer.Stats  `json:"pool"`
	Store storage.Stats `json:"store"`
	// Shards breaks physical I/O down per shard directory when the block
	// store is sharded (nil on the single-directory path) — the
	// per-device utilization view, including each shard's degraded state
	// and fallback-read count.
	Shards []storage.ShardStats `json:"shards,omitempty"`
	// Replicas is the store's replication factor (0 when unsharded, 1 =
	// sharded but unreplicated); DegradedReads totals the reads served
	// from a replica because their primary shard is degraded — nonzero
	// means the store is running degraded and RepairShard should be run.
	Replicas      int   `json:"replicas,omitempty"`
	DegradedReads int64 `json:"degradedReads,omitempty"`

	Running   int   `json:"running"`
	Queued    int   `json:"queued"`
	Submitted int64 `json:"submitted"`
	Finished  int64 `json:"finished"`

	// InputFills counts shared inputs synthesized and written by this
	// process; InputFillsSkipped counts inputs served from the persisted
	// catalog with zero refill writes (fingerprint match on reopen).
	InputFills        int64 `json:"inputFills"`
	InputFillsSkipped int64 `json:"inputFillsSkipped"`

	PlanCacheHits   int64 `json:"planCacheHits"`
	PlanCacheMisses int64 `json:"planCacheMisses"`
	// PlanCacheHitRate is hits / (hits + misses), 0 while idle.
	PlanCacheHitRate float64 `json:"planCacheHitRate"`
	// PlanCacheSize is the number of resident plan tables;
	// PlanCacheEvictions counts entries retired by the LRU bound.
	PlanCacheSize      int   `json:"planCacheSize"`
	PlanCacheEvictions int64 `json:"planCacheEvictions,omitempty"`
	// Planning latency percentiles in milliseconds over every plans()
	// call (cache hits and misses alike), from the telemetry histogram.
	PlanningP50Ms float64 `json:"planningP50Ms"`
	PlanningP95Ms float64 `json:"planningP95Ms"`
	PlanningP99Ms float64 `json:"planningP99Ms"`
	// PlanningTiers breaks planning latency down per tier ("cache",
	// "greedy", "full"); only tiers that served at least one query
	// appear.
	PlanningTiers map[string]PlanningTierStats `json:"planningTiers,omitempty"`
	// Improver reports background plan-improver activity; nil unless
	// Config.PlanImprover is set.
	Improver *ImproverStats `json:"improver,omitempty"`

	// Streams reports the streamed result delivery path (/results/stream):
	// active streams, finished ones by outcome, and delivered totals.
	Streams StreamStats `json:"streams"`

	// Tenants breaks the service down per tenant label (the anonymous
	// tenant is ""). Nil until a query was submitted.
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
}

// PlanningTierStats is one planner tier's latency distribution.
type PlanningTierStats struct {
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50Ms"`
	P95Ms float64 `json:"p95Ms"`
	P99Ms float64 `json:"p99Ms"`
}

// ImproverStats reports the background plan improver: full searches run,
// cached tables hot-swapped with a strictly better one, jobs dropped on a
// full queue, jobs waiting, and cumulative background search time.
type ImproverStats struct {
	Runs       int64   `json:"runs"`
	Swaps      int64   `json:"swaps"`
	Dropped    int64   `json:"dropped,omitempty"`
	QueueDepth int     `json:"queueDepth"`
	SearchMs   float64 `json:"searchMs"`
}

// Planner tier labels for riotshare_planning_seconds{tier=...} and
// Stats.PlanningTiers.
const (
	tierCache  = "cache"
	tierGreedy = "greedy"
	tierFull   = "full"
)

var planTiers = []string{tierCache, tierGreedy, tierFull}

// Server is the multi-query analytics service.
type Server struct {
	cfg   Config
	store storage.Backend
	// sharded is the catalog-bearing view of store when the service runs
	// sharded and/or persistent; nil on the classic single-directory path.
	sharded *storage.ShardedManager
	pool    *buffer.Pool

	inputFills, inputFillsSkipped atomic.Int64

	mu        sync.Mutex
	queries   map[string]*query
	order     []string
	retained  []*query // finished queries with outputs still on disk
	nextID    int
	closed    bool
	submitted int64
	finished  int64
	wg        sync.WaitGroup

	// Plan cache: bounded LRU over planEntry. planLRU's front is the most
	// recently used entry; eviction walks from the back, skipping entries
	// whose planning is still in flight.
	planMu        sync.Mutex
	planCache     map[string]*planEntry
	planLRU       *list.List
	planHits      int64
	planMisses    int64
	planEvictions int64

	// Plan improver (tier 3): greedy-planned cache keys are enqueued on
	// impCh; the loop re-plans them with the full search and hot-swaps
	// strictly better tables under planMu. Nil/zero when disabled.
	impCh                         chan improveJob
	impCancel                     context.CancelFunc
	impWG                         sync.WaitGroup
	impRuns, impSwaps, impDropped atomic.Int64

	gov *govern.Governor

	tenantMu sync.Mutex
	tenants  map[string]*tenantCounters

	inputMu sync.Mutex
	inputs  map[string]*inputState

	// reg and tracer are the service's telemetry: a metrics registry
	// scraped by GET /metrics and a bounded ring of completed query
	// span trees served by GET /trace. Both are always live; the
	// handles below are registered once at startup and the labeled
	// families are memoizing vecs, so the steady-state query path
	// takes the registry lock only the first time a program, tenant,
	// or stage label is seen.
	reg                              *telemetry.Registry
	tracer                           *telemetry.Tracer
	mPlanning                        *telemetry.Histogram
	mPlanningTier                    *telemetry.HistogramVec // by planner tier
	mImprove                         *telemetry.Histogram    // nil unless the improver runs
	mSlowTotal                       *telemetry.Counter
	mQuery                           *telemetry.HistogramVec // by program
	mAdmitWait                       *telemetry.HistogramVec // by tenant
	mExecStage                       *telemetry.HistogramVec // by stage
	mPrefetchIssued, mPrefetchInline *telemetry.Counter
	slowMu                           sync.Mutex
	slowLog                          io.Writer

	// Streamed result delivery (stream.go): lifetime counters mirrored
	// into Stats.Streams and the riotshare_stream_* metric families.
	streamActive    atomic.Int64
	streamCompleted atomic.Int64
	streamCanceled  atomic.Int64
	streamErrors    atomic.Int64
	streamBlocks64  atomic.Int64
	streamBytes64   atomic.Int64
	mStreamBlocks   *telemetry.Counter
	mStreamBytes    *telemetry.Counter
	mStreamActive   *telemetry.Gauge
	mStreamSeconds  *telemetry.Histogram
	mStreamOutcome  map[string]*telemetry.Counter // by outcome label
}

// tenantCounters aggregates one tenant's submission lifecycle on the
// server side (the governor and pool keep their own per-tenant views).
type tenantCounters struct {
	submitted, finished int64
	admissions          int64
	waitTotal           time.Duration
}

type planEntry struct {
	ready chan struct{}
	// res and err are written once before ready closes, but res may be
	// hot-swapped by the improver afterwards — read them under planMu.
	res *core.Result
	err error
	// key/elem tie the entry into the LRU list; tier records which
	// planner produced res; improved marks that the improver already
	// re-planned this entry (successfully or not).
	key      string
	elem     *list.Element
	tier     string
	improved bool
}

// improveJob asks the improver to re-plan one cached entry.
type improveJob struct {
	key  string
	prog *prog.Program
}

type inputState struct {
	ready chan struct{}
	arr   *prog.Array
	err   error
}

// New creates a service with its shared storage backend and buffer pool.
// With Shards > 1, ShardDirs, ShardAddrs, or Persist set, the backend is a
// sharded store (striped over local directories, remote riotblockd
// servers, or a mix); with Persist it reopens an existing store, restoring
// the shared-input catalog so matching inputs are served without a refill.
func New(cfg Config) (*Server, error) {
	if cfg.Dir == "" && len(cfg.ShardDirs) == 0 && len(cfg.ShardAddrs) == 0 {
		return nil, errors.New("server: Config.Dir, Config.ShardDirs, or Config.ShardAddrs required")
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	var (
		m       storage.Backend
		sharded *storage.ShardedManager
		err     error
	)
	if cfg.Shards > 1 || len(cfg.ShardDirs) > 0 || len(cfg.ShardAddrs) > 0 || cfg.Persist || cfg.Placement != "" || cfg.Replicas > 1 {
		specs := cfg.ShardDirs
		if len(specs) == 0 && len(cfg.ShardAddrs) == 0 {
			n := cfg.Shards
			if n <= 1 {
				n = 1
			}
			specs = storage.ShardDirs(cfg.Dir, n)
		}
		specs = append(append([]string{}, specs...), cfg.ShardAddrs...)
		sharded, err = storage.OpenSharded(specs, storage.ShardedOptions{
			Format:    cfg.Format,
			Placement: cfg.Placement,
			Replicas:  cfg.Replicas,
			Persist:   cfg.Persist,
			Remote:    cfg.Remote,
		})
		m = sharded
	} else {
		m, err = storage.NewManager(cfg.Dir, cfg.Format)
	}
	if err != nil {
		return nil, err
	}
	pool, err := buffer.NewPoolOptions(m, buffer.Options{
		CapacityBytes:    cfg.PoolBytes,
		Policy:           cfg.PoolPolicy,
		TenantQuotaBytes: cfg.TenantPoolQuotaBytes,
	})
	if err != nil {
		m.Close()
		return nil, err
	}
	reg := telemetry.New()
	admitWait := reg.HistogramVec("riotshare_admission_wait_seconds",
		"Admission queue wait per tenant (Admit call to grant).", nil, "tenant")
	gcfg := govern.Config{
		MaxConcurrent:  cfg.MaxConcurrent,
		GlobalMemBytes: cfg.GlobalMemBytes,
		Tenants:        cfg.Tenants,
		OnGrant: func(tenant string, wait time.Duration) {
			admitWait.With(tenant).ObserveDuration(wait)
		},
	}
	if !cfg.NoAffinity {
		// One pool snapshot per dispatch round scores every queued
		// query's inputs without re-locking the pool per waiter.
		gcfg.Affinity = func() func(inputs []string) int64 {
			snap := pool.ResidentArrays()
			return func(inputs []string) int64 {
				var sum int64
				for _, a := range inputs {
					sum += snap[a]
				}
				return sum
			}
		}
	}
	slowLog := cfg.SlowQueryLog
	if slowLog == nil {
		slowLog = os.Stderr
	}
	s := &Server{
		cfg:       cfg,
		store:     m,
		sharded:   sharded,
		pool:      pool,
		queries:   make(map[string]*query),
		planCache: make(map[string]*planEntry),
		planLRU:   list.New(),
		gov:       govern.New(gcfg),
		tenants:   make(map[string]*tenantCounters),
		inputs:    make(map[string]*inputState),
		reg:       reg,
		tracer:    telemetry.NewTracer(cfg.TraceCapacity),
		slowLog:   slowLog,
	}
	s.mPlanning = reg.Histogram("riotshare_planning_seconds",
		"Latency of plan-cache lookup or planning per query.", nil)
	s.mPlanningTier = reg.HistogramVec("riotshare_planning_seconds",
		"Latency of plan-cache lookup or planning per query.", nil, "tier")
	s.mSlowTotal = reg.Counter("riotshare_slow_queries_total",
		"Queries whose wall time met the slow-query threshold.")
	s.mQuery = reg.HistogramVec("riotshare_query_seconds",
		"End-to-end query wall time (planning through result collection).", nil, "program")
	s.mAdmitWait = admitWait
	s.mExecStage = reg.HistogramVec("riotshare_exec_stage_seconds",
		"Cumulative kernel wall time per pipeline stage per query.", nil, "stage")
	s.mPrefetchIssued = reg.Counter("riotshare_prefetch_issued_total",
		"Prefetchable reads issued ahead of use by the async prefetcher.")
	s.mPrefetchInline = reg.Counter("riotshare_prefetch_inline_total",
		"Prefetchable reads a consumer claimed inline (prefetch too late).")
	s.mStreamBlocks = reg.Counter("riotshare_stream_blocks_total",
		"Output blocks delivered over streamed results.")
	s.mStreamBytes = reg.Counter("riotshare_stream_bytes_total",
		"Output payload bytes delivered over streamed results.")
	s.mStreamActive = reg.Gauge("riotshare_streams_active",
		"Result streams currently on the wire.")
	s.mStreamSeconds = reg.Histogram("riotshare_stream_seconds",
		"Wall time of one result stream, open to last frame.", nil)
	s.mStreamOutcome = make(map[string]*telemetry.Counter, 3)
	for _, outcome := range []string{"done", "canceled", "error"} {
		s.mStreamOutcome[outcome] = reg.Counter("riotshare_streams_total",
			"Finished result streams by outcome.", telemetry.L("outcome", outcome))
	}
	pool.RegisterMetrics(reg)
	if sharded != nil {
		sharded.RegisterMetrics(reg)
	}
	s.registerCollectors()
	if cfg.PlanImprover {
		s.mImprove = reg.Histogram("riotshare_plan_improver_seconds",
			"Background full-search planning time per improver run.", nil)
		ictx, cancel := context.WithCancel(context.Background()) //riotvet:allow ctxflow — server-lifetime improver loop; canceled by Close, not by any one query
		s.impCancel = cancel
		s.impCh = make(chan improveJob, 64)
		s.impWG.Add(1)
		go s.improveLoop(ictx)
	}
	return s, nil
}

// registerCollectors wires the scrape-time metric sources that sample
// existing stats snapshots: service lifecycle counters, plan cache,
// shared-input persistence, governor occupancy, and aggregate store
// I/O (per-shard detail comes from the sharded store's own collector).
func (s *Server) registerCollectors() {
	s.reg.Collect(func(e *telemetry.Emit) {
		running, queued := s.gov.Load()
		e.Gauge("riotshare_queries_running", "Queries currently executing.", float64(running))
		e.Gauge("riotshare_queries_queued", "Queries waiting for admission.", float64(queued))
		s.mu.Lock()
		submitted, finished := s.submitted, s.finished
		s.mu.Unlock()
		e.Counter("riotshare_queries_submitted_total", "Queries accepted by Submit.", float64(submitted))
		e.Counter("riotshare_queries_finished_total", "Queries finished (done or failed).", float64(finished))
		s.planMu.Lock()
		hits, misses := s.planHits, s.planMisses
		size, evictions := s.planLRU.Len(), s.planEvictions
		s.planMu.Unlock()
		e.Counter("riotshare_plan_cache_hits_total", "Plan cache hits.", float64(hits))
		e.Counter("riotshare_plan_cache_misses_total", "Plan cache misses (plans computed).", float64(misses))
		e.Gauge("riotshare_plan_cache_entries", "Plan tables resident in the bounded cache.", float64(size))
		e.Counter("riotshare_plan_cache_evictions_total", "Plan cache entries retired by the LRU bound.", float64(evictions))
		if s.impCh != nil {
			e.Counter("riotshare_plan_improver_runs_total", "Background full-search improver runs.", float64(s.impRuns.Load()))
			e.Counter("riotshare_plan_improver_swaps_total", "Cached plan tables hot-swapped with a strictly better one.", float64(s.impSwaps.Load()))
			e.Counter("riotshare_plan_improver_dropped_total", "Improver jobs dropped on a full queue.", float64(s.impDropped.Load()))
			e.Gauge("riotshare_plan_improver_queue", "Improver jobs waiting.", float64(len(s.impCh)))
		}
		e.Counter("riotshare_input_fills_total", "Shared inputs synthesized and written.", float64(s.inputFills.Load()))
		e.Counter("riotshare_input_fills_skipped_total", "Shared inputs served from the persisted catalog.", float64(s.inputFillsSkipped.Load()))
		st := s.store.Stats()
		e.Counter("riotshare_store_read_reqs_total", "Physical block reads, all shards.", float64(st.ReadReqs))
		e.Counter("riotshare_store_read_bytes_total", "Bytes read, all shards.", float64(st.ReadBytes))
		e.Counter("riotshare_store_write_reqs_total", "Physical block writes, all shards.", float64(st.WriteReqs))
		e.Counter("riotshare_store_write_bytes_total", "Bytes written, all shards.", float64(st.WriteBytes))
	})
}

// Metrics exposes the service's telemetry registry (scraped by GET
// /metrics; components and tests may register further sources).
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// Tracer exposes the ring of completed query traces (GET /trace).
func (s *Server) Tracer() *telemetry.Tracer { return s.tracer }

// Pool exposes the shared buffer pool (read-mostly: stats, flush).
func (s *Server) Pool() *buffer.Pool { return s.pool }

// RepairShard re-mirrors one degraded shard of a replicated store from the
// surviving replicas, clearing its degraded state and degraded-read
// counter; subsequent reads come off the repaired primary again. Errors on
// an unsharded or unreplicated store.
func (s *Server) RepairShard(shard int) error {
	if s.sharded == nil {
		return errors.New("server: storage is not sharded; nothing to repair")
	}
	return s.sharded.Repair(shard)
}

// Store exposes the shared storage backend.
func (s *Server) Store() storage.Backend { return s.store }

// Submit validates and enqueues a request, returning the query ID. The
// query runs asynchronously; use Wait, Status, or the HTTP API to follow
// it.
func (s *Server) Submit(req Request) (string, error) {
	if (req.Program == "") == (req.Spec == nil) {
		return "", errors.New("server: exactly one of Program or Spec must be set")
	}
	p, subsets, err := s.resolve(req)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", errors.New("server: closed")
	}
	s.nextID++
	q := &query{
		id:      fmt.Sprintf("q%d", s.nextID),
		req:     req,
		prog:    p,
		subsets: subsets,
		stream:  newStreamState(),
		done:    make(chan struct{}),
	}
	q.status = QueryStatus{
		ID:        q.id,
		Program:   p.Name,
		Tenant:    req.Tenant,
		State:     StateQueued,
		PlanIndex: -1,
		Submitted: time.Now(),
	}
	s.queries[q.id] = q
	s.order = append(s.order, q.id)
	s.submitted++
	s.wg.Add(1)
	s.mu.Unlock()
	s.tenantMu.Lock()
	s.tenantLocked(req.Tenant).submitted++
	s.tenantMu.Unlock()
	go s.run(q)
	return q.id, nil
}

// tenantLocked returns (creating on first use) the per-tenant counters;
// every caller holds s.tenantMu.
func (s *Server) tenantLocked(name string) *tenantCounters {
	tc := s.tenants[name]
	if tc == nil {
		tc = &tenantCounters{}
		s.tenants[name] = tc
	}
	return tc
}

// named programs: the paper's benchmark set. linreg's full plan space is
// ~16k combinations, so unless FullSearch is set its optimization is
// restricted to the paper's selected plans (like cmd/riotshare).
func (s *Server) resolve(req Request) (*prog.Program, [][]string, error) {
	if req.Spec != nil {
		p, err := req.Spec.Build()
		return p, nil, err
	}
	if build, ok := s.cfg.Programs[req.Program]; ok {
		return build(), nil, nil
	}
	switch req.Program {
	case "addmul":
		return bench.AddMulPaper(), nil, nil
	case "twomm-a":
		return bench.TwoMMPaperA(), nil, nil
	case "twomm-b":
		return bench.TwoMMPaperB(), nil, nil
	case "linreg":
		if s.cfg.FullSearch {
			return bench.LinRegPaper(), nil, nil
		}
		return bench.LinRegPaper(), bench.LinRegSelectedPlans(), nil
	default:
		return nil, nil, fmt.Errorf("server: unknown program %q (addmul, twomm-a, twomm-b, linreg%s)",
			req.Program, s.extraProgramNames())
	}
}

func (s *Server) extraProgramNames() string {
	if len(s.cfg.Programs) == 0 {
		return ""
	}
	names := make([]string, 0, len(s.cfg.Programs))
	for n := range s.cfg.Programs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		out += ", " + n
	}
	return out
}

// plans optimizes through the tiered planner, reporting which tier served
// the table: "cache" (tier 1, a resident entry), "greedy" (tier 2, the
// budgeted fast-path search under Config.PlanBudget), or "full" (the
// Apriori enumeration — every miss when no budget is set, and all
// restricted-plan programs). Greedy-planned entries are handed to the
// background improver, which hot-swaps a strictly better full-search table
// into the cache off the query path. The cache key ignores per-query
// memory caps: plan selection against a cap happens on the cached table.
func (s *Server) plans(req Request, p *prog.Program, subsets [][]string) (*core.Result, string, error) {
	key := "prog:" + req.Program
	if req.Spec != nil {
		key = req.Spec.cacheKey()
	}
	s.planMu.Lock()
	if e, ok := s.planCache[key]; ok {
		s.planHits++
		s.planLRU.MoveToFront(e.elem)
		s.planMu.Unlock()
		<-e.ready
		// Re-lock to read the table: the improver may hot-swap res after
		// the entry became ready.
		s.planMu.Lock()
		res, err := e.res, e.err
		s.planMu.Unlock()
		return res, tierCache, err
	}
	e := &planEntry{ready: make(chan struct{}), key: key}
	e.elem = s.planLRU.PushFront(e)
	s.planCache[key] = e
	s.planMisses++
	s.evictPlansLocked()
	s.planMu.Unlock()

	tier := tierFull
	var res *core.Result
	var err error
	switch {
	case subsets != nil:
		res, err = core.OptimizeSubsetsCtx(context.Background(), p, core.Options{BindParams: true}, subsets) //riotvet:allow ctxflow — plan fill is shared by every waiter on the cache entry; one query's cancellation must not poison it
	case s.cfg.PlanBudget > 0:
		tier = tierGreedy
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.PlanBudget) //riotvet:allow ctxflow — budget-bounded shared plan fill; see above
		res, err = core.OptimizeGreedy(ctx, p, core.Options{BindParams: true})
		expired := err != nil && ctx.Err() != nil
		cancel()
		if expired {
			// The budget ran out before even the baseline was planned;
			// plan just the baseline without a deadline so the query
			// still runs (and the improver can upgrade it later).
			res, err = core.OptimizeSubsetsCtx(context.Background(), p, core.Options{BindParams: true}, nil) //riotvet:allow ctxflow — baseline rescue of the shared plan fill; see above
		}
	default:
		res, err = core.OptimizeCtx(context.Background(), p, core.Options{BindParams: true}) //riotvet:allow ctxflow — full-search shared plan fill; see above
	}

	s.planMu.Lock()
	e.res, e.err = res, err
	e.tier = tier
	s.planMu.Unlock()
	close(e.ready)
	if tier == tierGreedy && err == nil {
		s.enqueueImprove(key, p)
	}
	return res, tier, err
}

// evictPlansLocked enforces the plan cache's LRU bound. Entries whose
// planning is still in flight are skipped: their waiters hold the entry
// pointer, and evicting them would duplicate the running search. Callers
// hold planMu.
func (s *Server) evictPlansLocked() {
	max := s.cfg.PlanCacheEntries
	if max < 0 {
		return
	}
	if max == 0 {
		max = 256
	}
	for el := s.planLRU.Back(); el != nil && s.planLRU.Len() > max; {
		prev := el.Prev()
		e := el.Value.(*planEntry)
		select {
		case <-e.ready:
			s.planLRU.Remove(el)
			delete(s.planCache, e.key)
			s.planEvictions++
		default:
		}
		el = prev
	}
}

// enqueueImprove hands a greedy-planned cache key to the improver. The
// queue is bounded and non-blocking: under a burst of novel query shapes
// excess jobs are dropped (counted) rather than stalling the query path.
func (s *Server) enqueueImprove(key string, p *prog.Program) {
	if s.impCh == nil {
		return
	}
	s.planMu.Lock()
	e, ok := s.planCache[key]
	skip := !ok || e.improved
	s.planMu.Unlock()
	if skip {
		return
	}
	select {
	case s.impCh <- improveJob{key: key, prog: p}:
	default:
		s.impDropped.Add(1)
	}
}

func (s *Server) improveLoop(ctx context.Context) {
	defer s.impWG.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case job := <-s.impCh:
			s.improveOne(ctx, job)
		}
	}
}

// improveOne re-plans one greedy-planned cache entry with the full search
// and hot-swaps the cached table when the full search's best plan does
// strictly less logical I/O. Swapping the whole *core.Result under planMu
// is atomic from the readers' side: a query sees either the old table or
// the new one, never a mix, and queries already running on the old plan
// are unaffected (their timeline is theirs). ctx cancellation (server
// Close) aborts the search mid-way.
func (s *Server) improveOne(ctx context.Context, job improveJob) {
	s.planMu.Lock()
	e, ok := s.planCache[job.key]
	if !ok || e.improved {
		s.planMu.Unlock()
		return
	}
	e.improved = true
	s.planMu.Unlock()

	start := time.Now()
	full, err := core.OptimizeCtx(ctx, job.prog, core.Options{BindParams: true})
	s.mImprove.ObserveDuration(time.Since(start))
	s.impRuns.Add(1)
	if err != nil || len(full.Plans) == 0 {
		return
	}
	s.planMu.Lock()
	defer s.planMu.Unlock()
	e, ok = s.planCache[job.key]
	if !ok || e.err != nil || e.res == nil || len(e.res.Plans) == 0 {
		return // evicted or failed meanwhile; nothing to upgrade
	}
	if full.Plans[0].Cost.LogicalIOBytes() < e.res.Plans[0].Cost.LogicalIOBytes() {
		e.res = full
		e.tier = tierFull
		s.impSwaps.Add(1)
	}
}

// selectPlan picks the forced plan index or the cheapest plan whose peak
// memory fits the per-query cap.
func selectPlan(res *core.Result, req Request) (*core.EvaluatedPlan, error) {
	if req.Plan != nil {
		i := *req.Plan
		if i < 0 || i >= len(res.Plans) {
			return nil, fmt.Errorf("server: plan %d out of range (%d plans)", i, len(res.Plans))
		}
		return &res.Plans[i], nil
	}
	cap := req.MemCapMB << 20
	for i := range res.Plans {
		if cap == 0 || res.Plans[i].Cost.PeakMemoryBytes <= cap {
			return &res.Plans[i], nil
		}
	}
	return nil, fmt.Errorf("server: no plan fits the %dMB memory cap", req.MemCapMB)
}

// run drives one query through optimize → admit → execute → publish, then
// enforces the output-retention bound.
func (s *Server) run(q *query) {
	defer s.wg.Done()
	err := s.runQuery(q)
	limit := s.cfg.RetainOutputs
	if limit == 0 {
		limit = 64
	}
	var victims []*query
	s.mu.Lock()
	q.status.Finished = time.Now()
	if err != nil {
		q.status.State = StateFailed
		q.status.Err = err.Error()
	} else {
		q.status.State = StateDone
		if len(q.alias) > 0 {
			s.retained = append(s.retained, q)
		}
	}
	if limit > 0 {
		for len(s.retained) > limit {
			victims = append(victims, s.retained[0])
			s.retained = s.retained[1:]
		}
	}
	s.finished++
	s.mu.Unlock()
	s.tenantMu.Lock()
	s.tenantLocked(q.req.Tenant).finished++
	s.tenantMu.Unlock()
	for _, v := range victims {
		s.dropOutputs(v)
	}
	close(q.done)
}

// dropOutputs retires a query's private output arrays: pool frames are
// discarded without write-back and the on-disk stores are closed and
// deleted. Result summaries survive; Output() for the query then errors.
func (s *Server) dropOutputs(q *query) {
	s.mu.Lock()
	if q.outputsDropped {
		s.mu.Unlock()
		return
	}
	q.outputsDropped = true
	alias := q.alias
	s.mu.Unlock()
	for _, phys := range alias {
		s.pool.DiscardArray(phys)
		// Best effort: a failed Create may have registered nothing.
		_ = s.store.Drop(phys, true)
	}
}

func (s *Server) runQuery(q *query) (retErr error) {
	// Span tree: the phases are strictly sequential in this function, so
	// child durations account for (almost all of) the root's wall time.
	root := telemetry.StartSpan("query")
	root.Annotate("program", q.prog.Name)
	if q.req.Tenant != "" {
		root.Annotate("tenant", q.req.Tenant)
	}
	defer func() {
		root.End()
		if retErr != nil {
			root.Annotate("error", retErr.Error())
		}
		s.tracer.Add(q.id, root)
		s.mQuery.With(q.prog.Name).ObserveDuration(root.Duration())
		s.maybeLogSlow(q, root, retErr)
	}()

	sp := root.Child("planning")
	res, tier, err := s.plans(q.req, q.prog, q.subsets)
	sp.End()
	s.mPlanning.ObserveDuration(sp.Duration())
	s.mPlanningTier.With(tier).ObserveDuration(sp.Duration())
	sp.Annotate("tier", tier)
	if tier == tierCache {
		sp.Annotate("cache", "hit")
	} else {
		sp.Annotate("cache", "miss")
	}
	if err != nil {
		return err
	}
	pl, err := selectPlan(res, q.req)
	if err != nil {
		return err
	}
	sp.Annotate("plan", pl.Label)
	s.mu.Lock()
	q.status.PlanIndex = pl.Index
	q.status.PlanLabel = pl.Label
	s.mu.Unlock()

	peak := pl.Cost.PeakMemoryBytes
	enqueued := time.Now()
	sp = root.Child("admission-wait")
	if err := s.gov.Admit(q.req.Tenant, peak, inputArrays(q.prog)); err != nil {
		sp.End()
		return err
	}
	sp.End()
	defer s.gov.Release(q.req.Tenant, peak)
	s.tenantMu.Lock()
	tc := s.tenantLocked(q.req.Tenant)
	tc.admissions++
	tc.waitTotal += time.Since(enqueued)
	s.tenantMu.Unlock()

	s.mu.Lock()
	q.status.State = StateRunning
	q.status.Started = time.Now()
	s.mu.Unlock()

	sp = root.Child("input-fill")
	alias, err := s.prepareArrays(q)
	sp.End()
	s.mu.Lock()
	q.alias = alias
	s.mu.Unlock()
	if err != nil {
		s.dropOutputs(q)
		return err
	}
	// The output namespace exists: streams may start resolving blocks.
	q.stream.noteAlias()
	workers, prefetch := s.cfg.Workers, s.cfg.PrefetchDepth
	if q.req.Workers > 0 {
		workers = q.req.Workers
	}
	if q.req.Prefetch > 0 {
		prefetch = q.req.Prefetch
	}
	eng := &exec.Engine{
		Store:       s.store,
		Model:       disk.PaperModel(),
		MemCapBytes: q.req.MemCapMB << 20,
		Pool:        s.pool.TenantSession(q.req.Tenant, alias),
		// Early streamed delivery: each output block's final write wakes
		// any /results/stream waiting on it.
		OnBlockWritten: q.stream.noteBlock,
	}
	sp = root.Child("exec")
	r, err := eng.RunOptions(pl.Timeline, exec.Options{Workers: workers, PrefetchDepth: prefetch})
	sp.End()
	s.recordExec(sp, r)
	if err != nil {
		s.dropOutputs(q) // partial outputs are garbage; reclaim frames + stores
		return err
	}
	// Make this query's outputs durable and retire their private frames so
	// they stop competing with shared inputs for pool capacity. Targeted
	// invalidation only: a global flush would write back other running
	// queries' dirty accumulator frames and stall them on the pool lock.
	sp = root.Child("result-fetch")
	for _, phys := range alias {
		if err := s.pool.InvalidateArray(phys); err != nil {
			sp.End()
			s.dropOutputs(q)
			return err
		}
	}
	outs, err := s.collectOutputs(q, alias)
	sp.End()
	if err != nil {
		s.dropOutputs(q)
		return err
	}
	s.mu.Lock()
	q.status.Result = &r
	q.status.Outputs = outs
	s.mu.Unlock()
	return nil
}

// recordExec attaches per-stage kernel times and prefetch counts from
// an execution's Result to its exec span and the stage histograms.
func (s *Server) recordExec(sp *telemetry.Span, r exec.Result) {
	stages := make([]string, 0, len(r.StageTimes))
	for stage := range r.StageTimes {
		stages = append(stages, stage)
	}
	sort.Strings(stages)
	for _, stage := range stages {
		d := r.StageTimes[stage]
		c := telemetry.StartSpan("stage:" + stage)
		c.EndWith(d)
		sp.AttachChild(c)
		s.mExecStage.With(stage).ObserveDuration(d)
	}
	if r.PrefetchIssued > 0 || r.PrefetchInline > 0 {
		sp.Annotate("prefetchIssued", strconv.FormatInt(r.PrefetchIssued, 10))
		sp.Annotate("prefetchInline", strconv.FormatInt(r.PrefetchInline, 10))
		s.mPrefetchIssued.Add(r.PrefetchIssued)
		s.mPrefetchInline.Add(r.PrefetchInline)
	}
}

// slowQueryLine is the JSON schema of one slow-query log line.
type slowQueryLine struct {
	Time    time.Time       `json:"ts"`
	QueryID string          `json:"queryId"`
	Program string          `json:"program"`
	Tenant  string          `json:"tenant,omitempty"`
	WallMs  float64         `json:"wallMs"`
	Err     string          `json:"error,omitempty"`
	Trace   *telemetry.Span `json:"trace"`
}

// maybeLogSlow writes one structured JSON line with the query's span
// breakdown when its wall time meets the slow-query threshold.
func (s *Server) maybeLogSlow(q *query, root *telemetry.Span, err error) {
	if s.cfg.SlowQueryMs <= 0 || root.Duration() < time.Duration(s.cfg.SlowQueryMs)*time.Millisecond {
		return
	}
	s.mSlowTotal.Inc()
	line := slowQueryLine{
		Time:    time.Now(),
		QueryID: q.id,
		Program: q.prog.Name,
		Tenant:  q.req.Tenant,
		WallMs:  float64(root.Duration()) / float64(time.Millisecond),
		Trace:   root,
	}
	if err != nil {
		line.Err = err.Error()
	}
	buf, jerr := json.Marshal(line)
	if jerr != nil {
		return
	}
	buf = append(buf, '\n')
	s.slowMu.Lock()
	_, _ = s.slowLog.Write(buf)
	s.slowMu.Unlock()
}

// prepareArrays registers the query's arrays with the shared manager:
// inputs (never written by the program) are shared by name and filled
// deterministically once; written arrays get private namespaced stores and
// an alias entry for the query's pool session.
func (s *Server) prepareArrays(q *query) (map[string]string, error) {
	p := q.prog
	written := writtenArrays(p)
	// Sort for deterministic registration order.
	names := make([]string, 0, len(p.Arrays))
	for name := range p.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	// alias is returned even on error so the caller can retire whatever
	// was already created.
	alias := make(map[string]string)
	for _, name := range names {
		arr := p.Arrays[name]
		if !written[name] {
			if err := s.ensureInput(arr); err != nil {
				return alias, err
			}
			continue
		}
		phys := q.id + "." + name
		clone := *arr
		clone.Name = phys
		if err := s.store.Create(&clone); err != nil {
			return alias, err
		}
		alias[name] = phys
	}
	return alias, nil
}

// ensureInput creates and fills a shared input array exactly once; later
// queries wait for the fill and verify shape compatibility.
func (s *Server) ensureInput(arr *prog.Array) error {
	s.inputMu.Lock()
	if st, ok := s.inputs[arr.Name]; ok {
		s.inputMu.Unlock()
		<-st.ready
		if st.err != nil {
			return fmt.Errorf("server: shared input %s: %w", arr.Name, st.err)
		}
		if !sameShape(st.arr, arr) {
			return fmt.Errorf("server: input array %q conflicts with an already-registered array of different shape (%dx%d blocks in %dx%d vs %dx%d in %dx%d)",
				arr.Name, arr.BlockRows, arr.BlockCols, arr.GridRows, arr.GridCols,
				st.arr.BlockRows, st.arr.BlockCols, st.arr.GridRows, st.arr.GridCols)
		}
		return nil
	}
	st := &inputState{ready: make(chan struct{}), arr: arr}
	s.inputs[arr.Name] = st
	s.inputMu.Unlock()
	st.err = s.fillInput(arr)
	if st.err != nil {
		// Do not poison the input name for the daemon's lifetime: retire
		// the half-created store and let a later query retry the fill.
		s.inputMu.Lock()
		delete(s.inputs, arr.Name)
		s.inputMu.Unlock()
		_ = s.store.Drop(arr.Name, true) // best effort; Create may not have registered it
	}
	close(st.ready)
	if st.err != nil {
		return fmt.Errorf("server: shared input %s: %w", arr.Name, st.err)
	}
	return nil
}

// fillInput creates and fills one shared input — unless the persistent
// catalog already holds it under a matching fill fingerprint, in which case
// the reopened store serves it with zero refill writes. A cataloged entry
// whose fingerprint does not match the expected fill (different seed,
// shape, or fill version) is retired and refilled: the catalog never lets
// stale data answer queries.
func (s *Server) fillInput(arr *prog.Array) error {
	fp := FillFingerprint(arr, s.cfg.Seed)
	if s.sharded != nil {
		if e, ok := s.sharded.SharedEntry(arr.Name); ok {
			if e.Fingerprint == fp && sameShape(e.Array(arr.Name), arr) {
				s.inputFillsSkipped.Add(1)
				return nil
			}
			if err := s.sharded.Drop(arr.Name, true); err != nil {
				return err
			}
		}
	}
	if err := s.store.Create(arr); err != nil {
		return err
	}
	if err := FillInput(s.store, arr, s.cfg.Seed); err != nil {
		return err
	}
	s.inputFills.Add(1)
	if s.sharded != nil {
		return s.sharded.RecordShared(arr, fp)
	}
	return nil
}

// FillFingerprint identifies the deterministic synthetic fill of one input
// array: fill-algorithm version, seed, array name, and block/grid shape.
// Any change to these changes the data FillInput would produce, so a
// persisted store whose cataloged fingerprint matches may be served without
// a refill, and a mismatch forces one.
func FillFingerprint(arr *prog.Array, seed int64) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("riotshare-fill-v1|seed=%d|array=%s|block=%dx%d|grid=%dx%d",
		seed, arr.Name, arr.BlockRows, arr.BlockCols, arr.GridRows, arr.GridCols)))
	return hex.EncodeToString(h[:])
}

// writtenArrays collects the arrays the program writes; the rest are its
// shared inputs.
func writtenArrays(p *prog.Program) map[string]bool {
	written := map[string]bool{}
	for _, st := range p.Stmts {
		if w := st.WriteAccess(); w != nil {
			written[w.Array] = true
		}
	}
	return written
}

// inputArrays returns the program's shared input arrays (never written),
// sorted — the governor scores them against pool residency for affinity
// batching.
func inputArrays(p *prog.Program) []string {
	written := writtenArrays(p)
	names := make([]string, 0, len(p.Arrays))
	for name := range p.Arrays {
		if !written[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

func sameShape(a, b *prog.Array) bool {
	return a.BlockRows == b.BlockRows && a.BlockCols == b.BlockCols &&
		a.GridRows == b.GridRows && a.GridCols == b.GridCols
}

// FillInput writes deterministic pseudo-random blocks for one input array.
// The sequence depends only on (seed, array name), so any process — the
// server or a standalone run validating it — produces identical data.
func FillInput(m storage.Backend, arr *prog.Array, seed int64) error {
	h := fnv.New64a()
	h.Write([]byte(arr.Name))
	rng := rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
	for bc := 0; bc < arr.GridCols; bc++ {
		for br := 0; br < arr.GridRows; br++ {
			blk := blas.NewMatrix(arr.BlockRows, arr.BlockCols)
			for i := range blk.Data {
				blk.Data[i] = rng.NormFloat64()
			}
			if err := m.WriteBlock(arr.Name, int64(br), int64(bc), blk); err != nil {
				return err
			}
		}
	}
	return nil
}

// collectOutputs summarizes the query's persistent outputs one block at a
// time — never materializing a full output matrix, so the server's
// resident memory stays bounded by one block regardless of result size
// (the same discipline the streamed delivery path follows). The summation
// order (row-major blocks, row-major elements within each block) matches
// the streamed frame order, so a streaming client accumulating in arrival
// order reproduces Sum bit for bit.
func (s *Server) collectOutputs(q *query, alias map[string]string) ([]OutputInfo, error) {
	names := make([]string, 0, len(alias))
	for name := range alias {
		names = append(names, name)
	}
	sort.Strings(names)
	var outs []OutputInfo
	for _, name := range names {
		arr := q.prog.Arrays[name]
		if arr == nil || arr.Transient {
			continue
		}
		sum := 0.0
		for br := 0; br < arr.GridRows; br++ {
			for bc := 0; bc < arr.GridCols; bc++ {
				blk, err := s.store.ReadBlock(alias[name], int64(br), int64(bc))
				if err != nil {
					return nil, err
				}
				for _, v := range blk.Data {
					sum += v
				}
			}
		}
		outs = append(outs, OutputInfo{
			Array: name, Physical: alias[name],
			Rows: arr.BlockRows * arr.GridRows, Cols: arr.BlockCols * arr.GridCols,
			Sum: sum,
		})
	}
	return outs, nil
}

// readFullArray assembles a stored array (under its physical name) into
// one matrix.
func readFullArray(m storage.Backend, arr *prog.Array, phys string) (*blas.Matrix, error) {
	full := blas.NewMatrix(arr.BlockRows*arr.GridRows, arr.BlockCols*arr.GridCols)
	for br := 0; br < arr.GridRows; br++ {
		for bc := 0; bc < arr.GridCols; bc++ {
			blk, err := m.ReadBlock(phys, int64(br), int64(bc))
			if err != nil {
				return nil, err
			}
			for r := 0; r < arr.BlockRows; r++ {
				for c := 0; c < arr.BlockCols; c++ {
					full.Set(br*arr.BlockRows+r, bc*arr.BlockCols+c, blk.At(r, c))
				}
			}
		}
	}
	return full, nil
}

// Output assembles one persistent output array of a finished query.
func (s *Server) Output(id, array string) (*blas.Matrix, error) {
	s.mu.Lock()
	q, ok := s.queries[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("server: unknown query %q", id)
	}
	<-q.done
	s.mu.Lock()
	dropped := q.outputsDropped
	var phys string
	for _, o := range q.status.Outputs {
		if o.Array == array {
			phys = o.Physical
		}
	}
	s.mu.Unlock()
	if dropped {
		return nil, fmt.Errorf("server: query %s outputs were retired (RetainOutputs policy)", id)
	}
	if phys == "" {
		return nil, fmt.Errorf("server: query %s has no output array %q", id, array)
	}
	return readFullArray(s.store, q.prog.Arrays[array], phys)
}

// Status snapshots one query.
func (s *Server) Status(id string) (QueryStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queries[id]
	if !ok {
		return QueryStatus{}, fmt.Errorf("server: unknown query %q", id)
	}
	return q.statusCopy(), nil
}

func (q *query) statusCopy() QueryStatus {
	st := q.status
	if st.Result != nil {
		r := *st.Result
		st.Result = &r
	}
	st.Outputs = append([]OutputInfo(nil), q.status.Outputs...)
	return st
}

// Wait blocks until the query finishes and returns its final status.
func (s *Server) Wait(id string) (QueryStatus, error) {
	return s.WaitCtx(context.Background(), id) //riotvet:allow ctxflow — compatibility wrapper; cancelable callers use WaitCtx
}

// WaitCtx blocks until the query finishes or ctx is canceled; on
// cancellation it returns ctx's error without waiting further. The HTTP
// /results?wait=1 path waits under the request context, so a client that
// went away stops holding the handler (and the materialized result)
// alive.
func (s *Server) WaitCtx(ctx context.Context, id string) (QueryStatus, error) {
	s.mu.Lock()
	q, ok := s.queries[id]
	s.mu.Unlock()
	if !ok {
		return QueryStatus{}, fmt.Errorf("server: unknown query %q", id)
	}
	select {
	case <-q.done:
	case <-ctx.Done():
		return QueryStatus{}, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return q.statusCopy(), nil
}

// List snapshots every query in submission order.
func (s *Server) List() []QueryStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]QueryStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.queries[id].statusCopy())
	}
	return out
}

// Stats snapshots service-wide counters.
func (s *Server) Stats() Stats {
	running, queued := s.gov.Load()
	loads := s.gov.TenantLoads()
	waits := s.gov.TenantWaits()
	s.mu.Lock()
	submitted, finished := s.submitted, s.finished
	s.mu.Unlock()
	s.planMu.Lock()
	hits, misses := s.planHits, s.planMisses
	cacheSize, evictions := s.planLRU.Len(), s.planEvictions
	s.planMu.Unlock()
	st := Stats{
		Pool:               s.pool.Stats(),
		Store:              s.store.Stats(),
		Running:            running,
		Queued:             queued,
		Submitted:          submitted,
		Finished:           finished,
		PlanCacheHits:      hits,
		PlanCacheMisses:    misses,
		PlanCacheSize:      cacheSize,
		PlanCacheEvictions: evictions,
		InputFills:         s.inputFills.Load(),
		InputFillsSkipped:  s.inputFillsSkipped.Load(),
		Streams:            s.streamStats(),
	}
	if hits+misses > 0 {
		st.PlanCacheHitRate = float64(hits) / float64(hits+misses)
	}
	const ms = float64(time.Millisecond)
	st.PlanningP50Ms = s.mPlanning.Quantile(0.50) * float64(time.Second) / ms
	st.PlanningP95Ms = s.mPlanning.Quantile(0.95) * float64(time.Second) / ms
	st.PlanningP99Ms = s.mPlanning.Quantile(0.99) * float64(time.Second) / ms
	for _, tier := range planTiers {
		h := s.mPlanningTier.With(tier)
		if h.Count() == 0 {
			continue
		}
		if st.PlanningTiers == nil {
			st.PlanningTiers = make(map[string]PlanningTierStats, len(planTiers))
		}
		st.PlanningTiers[tier] = PlanningTierStats{
			Count: h.Count(),
			P50Ms: h.Quantile(0.50) * float64(time.Second) / ms,
			P95Ms: h.Quantile(0.95) * float64(time.Second) / ms,
			P99Ms: h.Quantile(0.99) * float64(time.Second) / ms,
		}
	}
	if s.impCh != nil {
		st.Improver = &ImproverStats{
			Runs:       s.impRuns.Load(),
			Swaps:      s.impSwaps.Load(),
			Dropped:    s.impDropped.Load(),
			QueueDepth: len(s.impCh),
			SearchMs:   s.mImprove.Sum() * float64(time.Second) / ms,
		}
	}
	if s.sharded != nil {
		st.Shards = s.sharded.ShardStats()
		st.Replicas = s.sharded.Replicas()
		st.DegradedReads = s.sharded.DegradedReads()
	}
	// Per-tenant view: union of the governor's occupancy, the server's
	// lifecycle counters, and the pool's per-tenant slice.
	s.tenantMu.Lock()
	names := map[string]bool{}
	for name := range s.tenants {
		names[name] = true
	}
	for name := range loads {
		names[name] = true
	}
	for name := range waits {
		names[name] = true
	}
	for name := range st.Pool.Tenants {
		names[name] = true
	}
	if len(names) > 0 {
		st.Tenants = make(map[string]TenantStats, len(names))
		for name := range names {
			ts := TenantStats{}
			if ld, ok := loads[name]; ok {
				ts.Running, ts.Queued, ts.MemBytes = ld.Running, ld.Queued, ld.MemBytes
			}
			if tc := s.tenants[name]; tc != nil {
				ts.Submitted, ts.Finished = tc.submitted, tc.finished
				if tc.admissions > 0 {
					ts.AvgQueueWaitMs = float64(tc.waitTotal.Milliseconds()) / float64(tc.admissions)
				}
			}
			if wq, ok := waits[name]; ok {
				ts.QueueWaitP50Ms = float64(wq.P50) / float64(time.Millisecond)
				ts.QueueWaitP95Ms = float64(wq.P95) / float64(time.Millisecond)
				ts.QueueWaitP99Ms = float64(wq.P99) / float64(time.Millisecond)
			}
			if ps, ok := st.Pool.Tenants[name]; ok {
				ts.PoolHits, ts.PoolMisses = ps.Hits, ps.Misses
				ts.PoolHitRate = ps.HitRate()
				ts.BytesCached = ps.BytesCached
				ts.PoolQuotaBytes = ps.QuotaBytes
			}
			st.Tenants[name] = ts
		}
	}
	s.tenantMu.Unlock()
	return st
}

// Close stops accepting submissions, fails queries still waiting for
// admission, waits for running queries to finish, flushes the pool and
// closes storage.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.gov.Close()
	s.wg.Wait()
	// Stop the improver after the last query drained: cancellation aborts
	// a running background search via the ctx plumbed through the core
	// search loop.
	if s.impCancel != nil {
		s.impCancel()
		s.impWG.Wait()
	}
	err := s.pool.Flush()
	if cerr := s.store.Close(); err == nil {
		err = cerr
	}
	return err
}
