package server

import (
	"reflect"
	"testing"

	"riotshare/internal/blas"
	"riotshare/internal/core"
	"riotshare/internal/disk"
	"riotshare/internal/exec"
	"riotshare/internal/ops"
	"riotshare/internal/prog"
	"riotshare/internal/storage"
)

const testSeed = 11

// smallAddMul is the test workload: C = A+B; E = C·D at a small block
// grid.
func smallAddMul() *prog.Program {
	return ops.AddMul(ops.AddMulConfig{
		N1: 3, N2: 4, N3: 2,
		ABBlock: ops.Dims{Rows: 6, Cols: 5},
		DBlock:  ops.Dims{Rows: 5, Cols: 4},
	})
}

// standaloneRun executes the program's cheapest plan on a private manager
// without a pool — the reference the server's per-query results must
// match — and reports the result, the persistent outputs, and the physical
// read count.
func standaloneRun(t *testing.T, build func() *prog.Program) (exec.Result, map[string]*blas.Matrix, int64) {
	t.Helper()
	p := build()
	res, err := core.Optimize(p, core.Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	pl := &res.Plans[0]
	m, err := storage.NewManager(t.TempDir(), storage.FormatDAF)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.CreateAll(p); err != nil {
		t.Fatal(err)
	}
	written := map[string]bool{}
	for _, st := range p.Stmts {
		if w := st.WriteAccess(); w != nil {
			written[w.Array] = true
		}
	}
	for name, arr := range p.Arrays {
		if !written[name] {
			if err := FillInput(m, arr, testSeed); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng := &exec.Engine{Store: m, Model: disk.PaperModel()}
	r, err := eng.Run(pl.Timeline)
	if err != nil {
		t.Fatal(err)
	}
	physReads := m.Stats().ReadReqs
	outs := map[string]*blas.Matrix{}
	for name, arr := range p.Arrays {
		if written[name] && !arr.Transient {
			full, err := readFullArray(m, arr, name)
			if err != nil {
				t.Fatal(err)
			}
			outs[name] = full
		}
	}
	return r, outs, physReads
}

// stripTimes drops the fields that legitimately vary between runs
// (kernel wall times and scheduling-dependent prefetch counts).
func stripTimes(r exec.Result) exec.Result {
	r.CPUTime = 0
	r.StageTimes = nil
	r.PrefetchIssued = 0
	r.PrefetchInline = 0
	return r
}

// sameResult compares two execution results modulo timing fields.
func sameResult(a, b exec.Result) bool {
	return reflect.DeepEqual(stripTimes(a), stripTimes(b))
}

// TestConcurrentQueriesShareOnePool is the subsystem's acceptance test:
// two queries of the same program run concurrently through the admission
// layer over one shared pool, and (a) each query's ExecResult volumes and
// output numerics are identical to a standalone sequential run, while
// (b) cross-query sharing shows up as pool hits and as physical reads
// strictly below the sum of standalone physical reads.
func TestConcurrentQueriesShareOnePool(t *testing.T) {
	wantRes, wantOuts, standaloneReads := standaloneRun(t, smallAddMul)
	if standaloneReads == 0 {
		t.Fatal("standalone run did no physical reads")
	}

	s, err := New(Config{
		Dir:           t.TempDir(),
		MaxConcurrent: 2,
		Seed:          testSeed,
		Programs:      map[string]func() *prog.Program{"addmul-small": smallAddMul},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	id1, err := s.Submit(Request{Program: "addmul-small"})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Submit(Request{Program: "addmul-small"})
	if err != nil {
		t.Fatal(err)
	}
	st1, err := s.Wait(id1)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := s.Wait(id2)
	if err != nil {
		t.Fatal(err)
	}
	stats := s.Stats() // snapshot before Output() adds physical reads

	for _, st := range []QueryStatus{st1, st2} {
		if st.State != StateDone {
			t.Fatalf("query %s: state %s, err %q", st.ID, st.State, st.Err)
		}
		if st.Result == nil {
			t.Fatalf("query %s: no result", st.ID)
		}
		if !sameResult(*st.Result, wantRes) {
			t.Errorf("query %s: ExecResult diverged from standalone\nserver:     %+v\nstandalone: %+v",
				st.ID, stripTimes(*st.Result), stripTimes(wantRes))
		}
	}

	// (b) Cross-query sharing: pool hits on shared input blocks, and total
	// physical reads strictly below two standalone runs.
	if stats.Pool.Hits == 0 {
		t.Errorf("pool hits = 0, want > 0 (stats: %+v)", stats.Pool)
	}
	if stats.Store.ReadReqs >= 2*standaloneReads {
		t.Errorf("physical reads = %d, want < 2x standalone (%d)", stats.Store.ReadReqs, 2*standaloneReads)
	}

	// (a) Output numerics bit-identical to standalone, per query.
	for _, id := range []string{id1, id2} {
		for name, want := range wantOuts {
			got, err := s.Output(id, name)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("query %s: %s[%d] = %v, want %v (not bit-identical)", id, name, i, got.Data[i], want.Data[i])
				}
			}
		}
	}

	// The identical second submission must have hit the plan cache.
	if stats.PlanCacheHits == 0 {
		t.Errorf("plan cache hits = 0, want > 0")
	}
}

// The pipelined engine behind the server must preserve the same
// standalone-identical results over the shared pool.
func TestServerParallelWorkersMatchStandalone(t *testing.T) {
	wantRes, wantOuts, _ := standaloneRun(t, smallAddMul)
	s, err := New(Config{
		Dir:           t.TempDir(),
		MaxConcurrent: 2,
		Workers:       4,
		Seed:          testSeed,
		Programs:      map[string]func() *prog.Program{"addmul-small": smallAddMul},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id1, err := s.Submit(Request{Program: "addmul-small"})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Submit(Request{Program: "addmul-small"})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{id1, id2} {
		st, err := s.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("query %s: state %s, err %q", st.ID, st.State, st.Err)
		}
		if !sameResult(*st.Result, wantRes) {
			t.Errorf("query %s (workers=4): ExecResult diverged\nserver:     %+v\nstandalone: %+v",
				st.ID, stripTimes(*st.Result), stripTimes(wantRes))
		}
		for name, want := range wantOuts {
			got, err := s.Output(id, name)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("query %s: %s[%d] = %v, want %v", id, name, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// Admission must serialize at K=1 and fail a plan that cannot ever fit the
// global memory cap.
func TestAdmissionLimits(t *testing.T) {
	s, err := New(Config{
		Dir:            t.TempDir(),
		MaxConcurrent:  1,
		GlobalMemBytes: 1, // nothing fits
		Seed:           testSeed,
		Programs:       map[string]func() *prog.Program{"addmul-small": smallAddMul},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id, err := s.Submit(Request{Program: "addmul-small"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed (global cap 1 byte)", st.State)
	}
}

// A per-query memory cap steers plan selection to a plan that fits, and
// the chosen plan's peak respects it.
func TestPerQueryMemCapSelectsFittingPlan(t *testing.T) {
	p := smallAddMul()
	res, err := core.Optimize(p, core.Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	// Pick a cap below the cheapest plan's peak but above the baseline's.
	base := res.Baseline()
	best := &res.Plans[0]
	if base.Cost.PeakMemoryBytes >= best.Cost.PeakMemoryBytes {
		t.Skip("cheapest plan already at baseline memory")
	}
	capMB := (base.Cost.PeakMemoryBytes >> 20) + 1

	s, err := New(Config{
		Dir:      t.TempDir(),
		Seed:     testSeed,
		Programs: map[string]func() *prog.Program{"addmul-small": smallAddMul},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id, err := s.Submit(Request{Program: "addmul-small", MemCapMB: capMB})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %s, err %q", st.State, st.Err)
	}
	if st.Result.PeakMemoryBytes > capMB<<20 {
		t.Fatalf("peak %d exceeds the %dMB cap", st.Result.PeakMemoryBytes, capMB)
	}
}

// A statement-builder JSON spec must optimize and execute end to end:
// C = A + B over a 2x2 grid, verified against the deterministic input
// fill.
func TestSpecSubmission(t *testing.T) {
	spec := &ProgramSpec{
		Name:   "addspec",
		Params: []string{"n1", "n2"},
		Bind:   map[string]int64{"n1": 2, "n2": 2},
		Arrays: []ArraySpec{
			{Name: "A", BlockRows: 4, BlockCols: 4, GridRows: 2, GridCols: 2},
			{Name: "B", BlockRows: 4, BlockCols: 4, GridRows: 2, GridCols: 2},
			{Name: "C", BlockRows: 4, BlockCols: 4, GridRows: 2, GridCols: 2},
		},
		Stmts: []StmtSpec{{
			Name: "s1",
			Vars: []string{"i", "j"},
			Ranges: []RangeSpec{
				{Var: "i", Lo: ExprSpec{}, Hi: ExprSpec{Terms: map[string]int64{"n1": 1}}},
				{Var: "j", Lo: ExprSpec{}, Hi: ExprSpec{Terms: map[string]int64{"n2": 1}}},
			},
			Accesses: []AccessSpec{
				{Type: "read", Array: "A", Row: ExprSpec{Terms: map[string]int64{"i": 1}}, Col: ExprSpec{Terms: map[string]int64{"j": 1}}},
				{Type: "read", Array: "B", Row: ExprSpec{Terms: map[string]int64{"i": 1}}, Col: ExprSpec{Terms: map[string]int64{"j": 1}}},
				{Type: "write", Array: "C", Row: ExprSpec{Terms: map[string]int64{"i": 1}}, Col: ExprSpec{Terms: map[string]int64{"j": 1}}},
			},
			Kernel: "add",
			Note:   "C[i,j]=A[i,j]+B[i,j]",
		}},
	}
	s, err := New(Config{Dir: t.TempDir(), Seed: testSeed})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id, err := s.Submit(Request{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %s, err %q", st.State, st.Err)
	}

	// Reference: the same deterministic fill on a scratch manager.
	m, err := storage.NewManager(t.TempDir(), storage.FormatDAF)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	arrA := &prog.Array{Name: "A", BlockRows: 4, BlockCols: 4, GridRows: 2, GridCols: 2}
	arrB := &prog.Array{Name: "B", BlockRows: 4, BlockCols: 4, GridRows: 2, GridCols: 2}
	for _, arr := range []*prog.Array{arrA, arrB} {
		if err := m.Create(arr); err != nil {
			t.Fatal(err)
		}
		if err := FillInput(m, arr, testSeed); err != nil {
			t.Fatal(err)
		}
	}
	fullA, err := readFullArray(m, arrA, "A")
	if err != nil {
		t.Fatal(err)
	}
	fullB, err := readFullArray(m, arrB, "B")
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Output(id, "C")
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Data {
		if want := fullA.Data[i] + fullB.Data[i]; got.Data[i] != want {
			t.Fatalf("C[%d] = %v, want %v", i, got.Data[i], want)
		}
	}
}

// RetainOutputs must bound on-disk output stores: once the retention
// window slides past a query, its output arrays are closed and deleted
// (no file-descriptor leak in a long-running server) while newer queries'
// outputs stay readable and result summaries survive.
func TestOutputRetention(t *testing.T) {
	s, err := New(Config{
		Dir:           t.TempDir(),
		Seed:          testSeed,
		RetainOutputs: 1,
		Programs:      map[string]func() *prog.Program{"addmul-small": smallAddMul},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := s.Submit(Request{Program: "addmul-small"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(id); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Oldest two retired, newest retained.
	for _, id := range ids[:2] {
		if _, err := s.Output(id, "E"); err == nil {
			t.Errorf("query %s outputs should have been retired", id)
		}
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone || len(st.Outputs) == 0 {
			t.Errorf("query %s: summaries must survive retirement: %+v", id, st)
		}
	}
	if _, err := s.Output(ids[2], "E"); err != nil {
		t.Errorf("newest query's outputs must stay readable: %v", err)
	}
	// The retired stores are gone from the shared manager.
	if _, err := s.Store().ReadBlock(ids[0]+".E", 0, 0); err == nil {
		t.Errorf("retired store %s.E still readable through the manager", ids[0])
	}
}

// Malformed specs and unknown programs must fail at submission with a
// useful error.
func TestSubmitValidation(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Submit(Request{}); err == nil {
		t.Error("empty request accepted")
	}
	if _, err := s.Submit(Request{Program: "nope"}); err == nil {
		t.Error("unknown program accepted")
	}
	if _, err := s.Submit(Request{Spec: &ProgramSpec{Name: "x"}}); err == nil {
		t.Error("statement-less spec accepted")
	}
	if _, err := s.Submit(Request{Program: "addmul", Spec: &ProgramSpec{}}); err == nil {
		t.Error("program+spec accepted")
	}
}
