package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Handler returns the service's HTTP/JSON API:
//
//	POST /submit          {"program":"addmul","memCapMB":1000,...} or {"spec":{...}}
//	                      → 202 {"id":"q1","state":"queued"}
//	GET  /status?id=q1    → QueryStatus
//	GET  /results?id=q1   → final QueryStatus; blocks until done with ?wait=1
//	                        (the wait honors request-context cancellation),
//	                        409 while the query is still queued/running otherwise
//	GET  /results/stream?id=q1
//	                      → the query's output blocks streamed one at a time
//	                        straight out of the buffer pool: binary blockproto
//	                        frames by default, ?format=ndjson for one JSON
//	                        object per line. Streams begin before the query
//	                        finishes (early delivery) and retire delivered
//	                        frames (?retain=evict|keep|drop, ?chunk=N). See
//	                        docs/streaming.md
//	GET  /queries         → every query, submission order
//	GET  /stats           → Stats (pool hit rates, physical I/O, admission,
//	                        plan cache incl. hit rate and planning latency
//	                        percentiles, per-tenant breakdown incl. eviction
//	                        write-back errors; on a replicated sharded store
//	                        also per-shard degraded flags and degraded-read
//	                        counters); ?tenant=name returns just that
//	                        tenant's TenantStats
//	GET  /metrics         → Prometheus text exposition of the telemetry
//	                        registry (admission, planning, pool, per-shard
//	                        storage, remote clients, exec stages)
//	GET  /trace?id=q1     → the query's completed span tree (bounded ring of
//	                        recent traces); without ?id, the retained IDs
//	POST /repair?shard=1  → re-mirror a degraded shard from its replicas
//	                        (replicated stores only); 200 on success
//	GET  /healthz         → 200 ok
//
// JSON responses are compact by default; pass ?pretty=1 for indented
// output. With Config.EnablePprof the net/http/pprof handlers are
// registered under /debug/pprof/.
//
// Submissions carry an optional "tenant" label; the resource governor
// schedules tenants fairly (weighted round-robin with per-tenant quotas)
// and the buffer pool meters per-tenant residency.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/submit", s.handleSubmit)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/results", s.handleResults)
	mux.HandleFunc("/results/stream", s.handleResultsStream)
	mux.HandleFunc("/queries", s.handleQueries)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/repair", s.handleRepair)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// wantPretty reports whether the request asked for indented JSON.
func wantPretty(r *http.Request) bool {
	v := r.URL.Query().Get("pretty")
	return v != "" && v != "0"
}

func writeJSON(w http.ResponseWriter, r *http.Request, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	if wantPretty(r) {
		enc.SetIndent("", "  ")
	}
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, r *http.Request, code int, err error) {
	writeJSON(w, r, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, r, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	id, err := s.Submit(req)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, r, http.StatusAccepted, map[string]string{"id": id, "state": string(StateQueued)})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.URL.Query().Get("id"))
	if err != nil {
		writeErr(w, r, http.StatusNotFound, err)
		return
	}
	writeJSON(w, r, http.StatusOK, st)
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if r.URL.Query().Get("wait") != "" {
		// Wait under the request context: a client that disconnects stops
		// holding the handler (and, once ready, the materialized result)
		// alive for a query nobody is waiting on.
		st, err := s.WaitCtx(r.Context(), id)
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return // client gone; nothing to write
		}
		if err != nil {
			writeErr(w, r, http.StatusNotFound, err)
			return
		}
		writeJSON(w, r, http.StatusOK, st)
		return
	}
	st, err := s.Status(id)
	if err != nil {
		writeErr(w, r, http.StatusNotFound, err)
		return
	}
	if st.State != StateDone && st.State != StateFailed {
		writeJSON(w, r, http.StatusConflict, st)
		return
	}
	writeJSON(w, r, http.StatusOK, st)
}

func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, r, http.StatusOK, s.List())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	if tenant, ok := r.URL.Query()["tenant"]; ok && len(tenant) > 0 {
		ts, found := st.Tenants[tenant[0]]
		if !found {
			writeErr(w, r, http.StatusNotFound, fmt.Errorf("no activity for tenant %q", tenant[0]))
			return
		}
		writeJSON(w, r, http.StatusOK, ts)
		return
	}
	writeJSON(w, r, http.StatusOK, st)
}

// handleMetrics serves the telemetry registry in Prometheus text
// exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.reg.WritePrometheus(w)
}

// handleTrace serves one completed query's span tree by ID, or the
// list of retained trace IDs without ?id.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		writeJSON(w, r, http.StatusOK, map[string]any{"traces": s.tracer.IDs()})
		return
	}
	tr, ok := s.tracer.Get(id)
	if !ok {
		writeErr(w, r, http.StatusNotFound, fmt.Errorf("no trace for query %q (still running, or evicted from the ring)", id))
		return
	}
	writeJSON(w, r, http.StatusOK, tr)
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, r, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	shard, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("repair needs ?shard=N: %w", err))
		return
	}
	if err := s.RepairShard(shard); err != nil {
		writeErr(w, r, http.StatusConflict, err)
		return
	}
	writeJSON(w, r, http.StatusOK, map[string]any{"repaired": shard})
}

// ListenAndServe runs the HTTP API on addr until ctx is canceled, then
// shuts down gracefully: in-flight HTTP requests drain, queued queries fail
// fast, running queries finish, and the pool flushes before storage closes.
func ListenAndServe(ctx context.Context, addr string, cfg Config) error {
	srv, err := New(cfg)
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	shctx, cancel := context.WithTimeout(context.Background(), 15*time.Second) //riotvet:allow ctxflow — shutdown deadline must outlive the canceled serve ctx
	defer cancel()
	if err := hs.Shutdown(shctx); err != nil {
		srv.Close()
		return err
	}
	return srv.Close()
}
