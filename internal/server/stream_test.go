package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"riotshare/internal/blas"
	"riotshare/internal/blockd"
	"riotshare/internal/blockproto"
	"riotshare/internal/prog"
	"riotshare/internal/storage"
)

// streamedArray is one output array reassembled from a decoded stream.
type streamedArray struct {
	full   *blas.Matrix
	blocks int
	// sum accumulates in frame-arrival order — block row-major, elements
	// row-major — the order collectOutputs uses for OutputInfo.Sum, so
	// equality can be asserted bit-for-bit.
	sum float64
}

// decodeStream parses a complete binary stream and reassembles each
// array, failing the test on a malformed sequence or an in-band error
// frame.
func decodeStream(t *testing.T, data []byte) map[string]*streamedArray {
	t.Helper()
	rd := bytes.NewReader(data)
	type geom struct{ blockRows, blockCols, gridRows, gridCols int }
	geoms := map[string]geom{}
	arrs := map[string]*streamedArray{}
	totalBlocks := 0
	for {
		_, kind, payload, err := blockproto.ReadFrame(rd)
		if err != nil {
			t.Fatalf("read stream frame: %v", err)
		}
		d := blockproto.NewDec(payload)
		switch kind {
		case StreamFrameArray:
			name := d.Str()
			g := geom{
				blockRows: int(d.U32()), blockCols: int(d.U32()),
				gridRows: int(d.U32()), gridCols: int(d.U32()),
			}
			if err := d.Err(); err != nil {
				t.Fatalf("array frame: %v", err)
			}
			geoms[name] = g
			arrs[name] = &streamedArray{full: blas.NewMatrix(g.blockRows*g.gridRows, g.blockCols*g.gridCols)}
		case StreamFrameBlock:
			name := d.Str()
			br, bc := d.I64(), d.I64()
			rows, cols := int(d.U32()), int(d.U32())
			blob := d.Blob()
			if err := d.Err(); err != nil {
				t.Fatalf("block frame: %v", err)
			}
			blk, err := blockproto.DecodeBlock(rows, cols, blob)
			if err != nil {
				t.Fatal(err)
			}
			a, g := arrs[name], geoms[name]
			if a == nil {
				t.Fatalf("block frame for unannounced array %q", name)
			}
			for i := 0; i < rows; i++ {
				for j := 0; j < cols; j++ {
					a.full.Data[(int(br)*g.blockRows+i)*a.full.Cols+int(bc)*g.blockCols+j] = blk.Data[i*cols+j]
				}
			}
			a.blocks++
			totalBlocks++
			for _, v := range blk.Data {
				a.sum += v
			}
		case StreamFrameEnd:
			arrays, blocks := int(d.U32()), int(d.U32())
			d.I64() // payload bytes
			if err := d.Err(); err != nil {
				t.Fatalf("end frame: %v", err)
			}
			if arrays != len(arrs) || blocks != totalBlocks {
				t.Fatalf("end frame totals (%d arrays, %d blocks) disagree with the stream (%d, %d)",
					arrays, blocks, len(arrs), totalBlocks)
			}
			if rd.Len() != 0 {
				t.Fatalf("%d trailing bytes after the end frame", rd.Len())
			}
			return arrs
		case StreamFrameError:
			t.Fatalf("in-band stream error: %s", d.Str())
		default:
			t.Fatalf("unexpected stream frame kind 0x%02x", kind)
		}
	}
}

// TestStreamedResultsMatchWholeFetch is the streaming path's property
// test: across sequential and pipelined engines, both block formats, and
// local/sharded/remote stores, a stream opened immediately after submit
// (early delivery — the query is still queued or running) reassembles to
// exactly the whole-fetch result, and its arrival-order sum is
// bit-identical to the /results summary sum.
func TestStreamedResultsMatchWholeFetch(t *testing.T) {
	cases := []struct {
		name    string
		workers int
		format  storage.Format
		shards  int
		remote  bool
	}{
		{name: "seq-daf", workers: 1, format: storage.FormatDAF},
		{name: "par-daf-sharded", workers: 4, format: storage.FormatDAF, shards: 3},
		{name: "seq-labtree", workers: 1, format: storage.FormatLABTree},
		{name: "par-labtree-remote", workers: 4, format: storage.FormatLABTree, remote: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				Dir:      t.TempDir(),
				Format:   tc.format,
				Seed:     testSeed,
				Workers:  tc.workers,
				Shards:   tc.shards,
				Programs: map[string]func() *prog.Program{"addmul-small": smallAddMul},
			}
			if tc.remote {
				// One local shard dir plus two in-process riotblockd
				// servers: the mixed layout from docs/remote-protocol.md.
				cfg.Dir = ""
				cfg.ShardDirs = []string{t.TempDir()}
				for i := 0; i < 2; i++ {
					srv, err := blockd.New(t.TempDir(), blockd.Options{Format: tc.format})
					if err != nil {
						t.Fatal(err)
					}
					if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
						t.Fatal(err)
					}
					t.Cleanup(func() { srv.Close() })
					cfg.ShardAddrs = append(cfg.ShardAddrs, srv.Addr())
				}
			}
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			id, err := s.Submit(Request{Program: "addmul-small"})
			if err != nil {
				t.Fatal(err)
			}
			// Stream right away: delivery overlaps execution.
			var buf bytes.Buffer
			if err := s.StreamTo(&buf, id, 3); err != nil {
				t.Fatalf("StreamTo: %v", err)
			}
			st, err := s.Wait(id)
			if err != nil {
				t.Fatal(err)
			}
			if st.State != StateDone {
				t.Fatalf("state = %s, err %q", st.State, st.Err)
			}
			arrs := decodeStream(t, buf.Bytes())
			if len(arrs) != len(st.Outputs) {
				t.Fatalf("streamed %d arrays, want %d", len(arrs), len(st.Outputs))
			}
			for _, o := range st.Outputs {
				a := arrs[o.Array]
				if a == nil {
					t.Fatalf("output %s missing from the stream", o.Array)
				}
				if a.sum != o.Sum {
					t.Errorf("%s: streamed arrival-order sum %v != summary sum %v (not bit-identical)", o.Array, a.sum, o.Sum)
				}
				want, err := s.Output(id, o.Array)
				if err != nil {
					t.Fatal(err)
				}
				if a.full.Rows != want.Rows || a.full.Cols != want.Cols {
					t.Fatalf("%s: streamed %dx%d, whole fetch %dx%d", o.Array, a.full.Rows, a.full.Cols, want.Rows, want.Cols)
				}
				for i := range want.Data {
					if a.full.Data[i] != want.Data[i] {
						t.Fatalf("%s[%d] = %v streamed, %v whole-fetch (not bit-identical)", o.Array, i, a.full.Data[i], want.Data[i])
					}
				}
			}
		})
	}
}

// gridAddSpec builds C = A + B over a grid×grid grid of block×block
// blocks — a single non-transient output whose size scales freely past
// any pool capacity.
func gridAddSpec(grid, block int) *ProgramSpec {
	return &ProgramSpec{
		Name:   fmt.Sprintf("addgrid-%dx%d", grid, block),
		Params: []string{"n1", "n2"},
		Bind:   map[string]int64{"n1": int64(grid), "n2": int64(grid)},
		Arrays: []ArraySpec{
			{Name: "A", BlockRows: block, BlockCols: block, GridRows: grid, GridCols: grid},
			{Name: "B", BlockRows: block, BlockCols: block, GridRows: grid, GridCols: grid},
			{Name: "C", BlockRows: block, BlockCols: block, GridRows: grid, GridCols: grid},
		},
		Stmts: []StmtSpec{{
			Name: "s1",
			Vars: []string{"i", "j"},
			Ranges: []RangeSpec{
				{Var: "i", Lo: ExprSpec{}, Hi: ExprSpec{Terms: map[string]int64{"n1": 1}}},
				{Var: "j", Lo: ExprSpec{}, Hi: ExprSpec{Terms: map[string]int64{"n2": 1}}},
			},
			Accesses: []AccessSpec{
				{Type: "read", Array: "A", Row: ExprSpec{Terms: map[string]int64{"i": 1}}, Col: ExprSpec{Terms: map[string]int64{"j": 1}}},
				{Type: "read", Array: "B", Row: ExprSpec{Terms: map[string]int64{"i": 1}}, Col: ExprSpec{Terms: map[string]int64{"j": 1}}},
				{Type: "write", Array: "C", Row: ExprSpec{Terms: map[string]int64{"i": 1}}, Col: ExprSpec{Terms: map[string]int64{"j": 1}}},
			},
			Kernel: "add",
			Note:   "C[i,j]=A[i,j]+B[i,j]",
		}},
	}
}

// poolWatchingWriter is a deliberately slow stream consumer that samples
// the pool's residency on every write — the backpressure probe.
type poolWatchingWriter struct {
	s       *Server
	n       int
	maxSeen int64
}

func (w *poolWatchingWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n%8 == 0 {
		time.Sleep(2 * time.Millisecond) // slow consumer
	}
	if b := w.s.Stats().Pool.BytesCached; b > w.maxSeen {
		w.maxSeen = b
	}
	return len(p), nil
}

// TestStreamBackpressureBoundsPoolResidency proves the bounded-memory
// property: a result 4x the pool's byte capacity streamed to a slow
// consumer never pushes pool residency past capacity — neither the
// post-eviction high-water mark (PeakBytes) nor any mid-stream sample.
func TestStreamBackpressureBoundsPoolResidency(t *testing.T) {
	const grid, block = 8, 32
	blockBytes := int64(block * block * 8)
	poolCap := 16 * blockBytes // 128 KiB
	outBytes := int64(grid*grid) * blockBytes
	if outBytes < 4*poolCap {
		t.Fatalf("test setup: output %d bytes is under 4x the %d-byte pool", outBytes, poolCap)
	}
	s, err := New(Config{Dir: t.TempDir(), Seed: testSeed, PoolBytes: poolCap})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id, err := s.Submit(Request{Spec: gridAddSpec(grid, block)})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %s, err %q", st.State, st.Err)
	}
	w := &poolWatchingWriter{s: s}
	if err := s.StreamTo(w, id, 4); err != nil {
		t.Fatalf("StreamTo: %v", err)
	}
	stats := s.Stats()
	if stats.Pool.PeakBytes > stats.Pool.BytesCap {
		t.Errorf("pool peak %d bytes exceeds capacity %d: streaming grew residency", stats.Pool.PeakBytes, stats.Pool.BytesCap)
	}
	if w.maxSeen > poolCap {
		t.Errorf("mid-stream residency sample %d exceeds the %d-byte capacity", w.maxSeen, poolCap)
	}
	if stats.Pool.PinnedFrames != 0 {
		t.Errorf("%d frames still pinned after the stream", stats.Pool.PinnedFrames)
	}
}

// TestStreamClientDisconnect proves a mid-stream disconnect cleans up:
// the handler notices the canceled request context, the canceled counter
// increments, the active gauge drains, no pool pins leak, and the same
// query still streams completely afterwards.
func TestStreamClientDisconnect(t *testing.T) {
	s, err := New(Config{
		Dir:           t.TempDir(),
		Seed:          testSeed,
		MaxConcurrent: 1,
		Programs:      map[string]func() *prog.Program{"addmul-small": smallAddMul},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Simulated device latency keeps the first query busy for hundreds of
	// milliseconds of wall time, so the second stays queued — its stream
	// blocks server-side with nothing on the wire, and the disconnect is
	// guaranteed to land mid-stream.
	s.Store().SetLatency(3*time.Millisecond, 3*time.Millisecond)
	id1, err := s.Submit(Request{Program: "addmul-small"})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Submit(Request{Program: "addmul-small"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/results/stream?id="+id2, nil)
	if err != nil {
		t.Fatal(err)
	}
	clientDone := make(chan struct{})
	go func() {
		defer close(clientDone)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	<-clientDone

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats().Streams
		if st.Canceled == 1 && st.Active == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream never recorded the disconnect: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Let both queries finish; the disconnected stream must not have
	// disturbed them, and the query stays streamable.
	s.Store().SetLatency(0, 0)
	for _, id := range []string{id1, id2} {
		st, err := s.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("query %s: state %s, err %q", id, st.State, st.Err)
		}
	}
	var buf bytes.Buffer
	if err := s.StreamTo(&buf, id2, 2); err != nil {
		t.Fatalf("re-stream after disconnect: %v", err)
	}
	st2, err := s.Status(id2)
	if err != nil {
		t.Fatal(err)
	}
	arrs := decodeStream(t, buf.Bytes())
	for _, o := range st2.Outputs {
		a := arrs[o.Array]
		if a == nil || a.sum != o.Sum {
			t.Fatalf("re-stream of %s diverged from the summary", o.Array)
		}
	}
	if pins := s.Stats().Pool.PinnedFrames; pins != 0 {
		t.Errorf("%d pool frames still pinned after disconnect + re-stream", pins)
	}
}

// TestStreamRetainDropWaitsForQuery is the regression test for the
// early-delivery/RetainDrop race: a ?retain=drop stream that finishes
// before the query's result-fetch phase (blocks are announced as they
// are written, ahead of collectOutputs) must not drop the output stores
// out from under the still-running query. The query ends StateDone with
// its summary; only then are the outputs retired.
func TestStreamRetainDropWaitsForQuery(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Seed: testSeed})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The window needs the stream to finish just as result-fetch begins,
	// so: a program whose output blocks are independent (each block's
	// final write is announced as execution passes it, keeping the stream
	// in lockstep with exec via pool hits instead of bunching every
	// announcement at the end), and asymmetric device latency — reads
	// slow, writes free — so the stream's per-block retirement costs
	// nothing while the query's result-fetch phase still has one slow
	// read per output block ahead of it when the stream's End frame (and,
	// before the fix, the drop) lands.
	s.Store().SetLatency(10*time.Millisecond, 0)
	id, err := s.Submit(Request{Spec: gridAddSpec(4, 8)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/results/stream?id=" + id + "&retain=drop")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	decodeStream(t, body) // fails on an in-band error frame

	st, err := s.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("query after retain=drop stream: state %s, err %q (outputs dropped under the running query?)", st.State, st.Err)
	}
	if len(st.Outputs) == 0 {
		t.Fatal("summary missing after retain=drop stream")
	}
	// The drop did happen — after completion: block re-reads now fail
	// while the summary above survived.
	if _, err := s.Output(id, st.Outputs[0].Array); err == nil {
		t.Errorf("Output(%s) succeeded after retain=drop; outputs were never dropped", st.Outputs[0].Array)
	}
}

// TestSinkErrorClassification covers the stream-outcome split between
// transport failures (client gone → canceled) and encode failures (bad
// data → a real stream error): an ndjson marshal of NaN block data must
// not be silently counted as a client disconnect.
func TestSinkErrorClassification(t *testing.T) {
	if err := classifySinkErr(io.ErrClosedPipe); !errors.Is(err, errStreamCanceled) {
		t.Fatalf("transport failure classified as %v, want canceled", err)
	}
	blk := blas.NewMatrix(1, 1)
	blk.Data[0] = math.NaN()
	var buf bytes.Buffer
	err := ndjsonSink{w: &buf}.Block("E", 0, 0, blk)
	if err == nil {
		t.Fatal("ndjson encode of NaN block data should fail")
	}
	var enc *encodeError
	if !errors.As(err, &enc) {
		t.Fatalf("marshal failure not tagged as encodeError: %v", err)
	}
	if c := classifySinkErr(err); errors.Is(c, errStreamCanceled) {
		t.Fatalf("encode failure misclassified as client disconnect: %v", c)
	}
	if buf.Len() != 0 {
		t.Errorf("partial line written before the encode failure: %q", buf.String())
	}
}

// TestStreamToCtxCancel proves the in-process streaming entry point honors
// its context: canceling mid-stream releases the embedder instead of
// blocking forever in waitBlockReady on a query that has not run yet.
func TestStreamToCtxCancel(t *testing.T) {
	s, err := New(Config{
		Dir:           t.TempDir(),
		Seed:          testSeed,
		MaxConcurrent: 1,
		Programs:      map[string]func() *prog.Program{"addmul-small": smallAddMul},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// The first query occupies the only execution slot for hundreds of
	// milliseconds; the second stays queued, so its stream has nothing to
	// deliver and parks in waitBlockReady.
	s.Store().SetLatency(3*time.Millisecond, 3*time.Millisecond)
	id1, err := s.Submit(Request{Program: "addmul-small"})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Submit(Request{Program: "addmul-small"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	streamDone := make(chan error, 1)
	go func() { streamDone <- s.StreamToCtx(ctx, io.Discard, id2, 2) }()
	select {
	case err := <-streamDone:
		if !errors.Is(err, errStreamCanceled) {
			t.Fatalf("StreamToCtx after cancel: %v, want canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("StreamToCtx still blocked after its context was canceled")
	}
	// The abandoned stream left both queries unharmed.
	s.Store().SetLatency(0, 0)
	for _, id := range []string{id1, id2} {
		st, err := s.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("query %s: state %s, err %q", id, st.State, st.Err)
		}
	}
}

// TestResultsWaitHonorsClientDisconnect is the regression test for the
// /results?wait=1 bugfix: a client that disconnects mid-wait releases
// the handler promptly instead of holding it (and the result) until the
// query finishes; the query itself is unaffected.
func TestResultsWaitHonorsClientDisconnect(t *testing.T) {
	s, err := New(Config{
		Dir:      t.TempDir(),
		Seed:     testSeed,
		Programs: map[string]func() *prog.Program{"addmul-small": smallAddMul},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Store().SetLatency(3*time.Millisecond, 3*time.Millisecond)
	id, err := s.Submit(Request{Program: "addmul-small"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/results?id="+id+"&wait=1", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	handlerDone := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(rec, req)
		close(handlerDone)
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case <-handlerDone:
	case <-time.After(2 * time.Second):
		t.Fatal("handler still blocked in wait after the client disconnected")
	}
	if rec.Body.Len() != 0 {
		t.Errorf("handler wrote %q to a disconnected client", rec.Body.String())
	}
	s.Store().SetLatency(0, 0)
	st, err := s.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("query after abandoned wait: state %s, err %q", st.State, st.Err)
	}
}
