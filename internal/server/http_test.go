package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"riotshare/internal/prog"
)

func newHTTPServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		Dir:      t.TempDir(),
		Seed:     testSeed,
		Programs: map[string]func() *prog.Program{"addmul-small": smallAddMul},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func TestHTTPSubmitStatusResultsStats(t *testing.T) {
	_, ts := newHTTPServer(t)

	body, _ := json.Marshal(Request{Program: "addmul-small", Tenant: "acme"})
	resp, err := http.Post(ts.URL+"/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var sub struct{ ID, State string }
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sub.ID == "" {
		t.Fatal("no query id returned")
	}

	// Blocking results fetch.
	resp, err = http.Get(ts.URL + "/results?wait=1&id=" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results status = %d", resp.StatusCode)
	}
	var st QueryStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != StateDone {
		t.Fatalf("state = %s, err %q", st.State, st.Err)
	}
	if st.Result == nil || st.Result.ReadReqs == 0 {
		t.Fatalf("result missing or empty: %+v", st.Result)
	}
	if len(st.Outputs) == 0 {
		t.Fatal("no output summaries")
	}

	// Status endpoint agrees.
	resp, err = http.Get(ts.URL + "/status?id=" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	var st2 QueryStatus
	if err := json.NewDecoder(resp.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st2.State != StateDone {
		t.Fatalf("status endpoint state = %s", st2.State)
	}

	// Stats reflect the run.
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Finished != 1 || stats.Store.ReadReqs == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if acme := stats.Tenants["acme"]; acme.Submitted != 1 || acme.Finished != 1 || acme.PoolMisses == 0 {
		t.Fatalf("tenant stats = %+v, want acme's submission and pool activity", stats.Tenants)
	}

	// The per-tenant filter answers with just that tenant's slice, and 404s
	// an unknown tenant.
	resp, err = http.Get(ts.URL + "/stats?tenant=acme")
	if err != nil {
		t.Fatal(err)
	}
	var tstats TenantStats
	if err := json.NewDecoder(resp.Body).Decode(&tstats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tstats.Finished != 1 {
		t.Fatalf("/stats?tenant=acme = %+v", tstats)
	}
	resp, err = http.Get(ts.URL + "/stats?tenant=nobody")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant stats status = %d", resp.StatusCode)
	}

	// Queries listing.
	resp, err = http.Get(ts.URL + "/queries")
	if err != nil {
		t.Fatal(err)
	}
	var list []QueryStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != sub.ID {
		t.Fatalf("queries = %+v", list)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, ts := newHTTPServer(t)

	// Unknown program → 400.
	body, _ := json.Marshal(Request{Program: "nope"})
	resp, err := http.Post(ts.URL+"/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown program status = %d", resp.StatusCode)
	}

	// Unknown query → 404.
	resp, err = http.Get(ts.URL + "/status?id=q999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown query status = %d", resp.StatusCode)
	}

	// GET on /submit → 405.
	resp, err = http.Get(ts.URL + "/submit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /submit status = %d", resp.StatusCode)
	}
}

// /repair re-mirrors a degraded shard of a replicated store over HTTP; on
// an unsharded server (and for malformed requests) it fails cleanly.
func TestHTTPRepair(t *testing.T) {
	// Unsharded server: nothing to repair.
	_, ts := newHTTPServer(t)
	resp, err := http.Post(ts.URL+"/repair?shard=0", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("repair on unsharded store status = %d, want 409", resp.StatusCode)
	}

	// Replicated server: repair succeeds, GET and garbage are rejected.
	s, err := New(Config{
		Dir:      t.TempDir(),
		Shards:   3,
		Replicas: 2,
		Seed:     testSeed,
		Programs: map[string]func() *prog.Program{"addmul-small": smallAddMul},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s.Handler())
	defer func() {
		ts2.Close()
		s.Close()
	}()
	runOne(t, s, "addmul-small")

	resp, err = http.Get(ts2.URL + "/repair?shard=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /repair status = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts2.URL+"/repair?shard=x", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST /repair?shard=x status = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts2.URL+"/repair?shard=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Repaired int `json:"repaired"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rep.Repaired != 1 {
		t.Fatalf("POST /repair?shard=1 = %d %+v, want 200 repaired=1", resp.StatusCode, rep)
	}
}
