package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"riotshare/internal/prog"
	"riotshare/internal/telemetry"
)

// runSmall submits the small program and waits for it, returning the id.
func runSmall(t *testing.T, s *Server) string {
	t.Helper()
	id, err := s.Submit(Request{Program: "addmul-small", Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("query state = %s, err %q", st.State, st.Err)
	}
	return id
}

// TestQueryTraceCompleteness asserts every query phase appears exactly
// once in the span tree and that the phases account for at least 90% of
// the query's wall time — the acceptance bar for the tracer.
func TestQueryTraceCompleteness(t *testing.T) {
	s, _ := newHTTPServer(t)
	id := runSmall(t, s)

	tr, ok := s.Tracer().Get(id)
	if !ok {
		t.Fatalf("no trace retained for %s; ids = %v", id, s.Tracer().IDs())
	}
	root := tr.Root
	if root.Name != "query" {
		t.Fatalf("root span = %q, want query", root.Name)
	}
	// The program annotation is the program's own name ("addmul"), not
	// the registry key it was submitted under.
	if root.Annotations["program"] != "addmul" || root.Annotations["tenant"] != "acme" {
		t.Fatalf("root annotations = %v", root.Annotations)
	}

	phases := map[string]int{}
	var phaseSum time.Duration
	for _, c := range root.Children {
		phases[c.Name]++
		phaseSum += c.Duration()
	}
	for _, want := range []string{"planning", "admission-wait", "input-fill", "exec", "result-fetch"} {
		if phases[want] != 1 {
			t.Errorf("phase %q appears %d times, want exactly once (tree: %v)", want, phases[want], phases)
		}
	}
	if wall := root.Duration(); phaseSum < wall*9/10 {
		t.Errorf("phases cover %v of %v wall (%.0f%%), want >= 90%%",
			phaseSum, wall, 100*float64(phaseSum)/float64(wall))
	}

	// The exec phase carries per-stage child spans and prefetch
	// annotations bridged from the engine's Result.
	var execSpan *telemetry.Span
	for _, c := range root.Children {
		if c.Name == "exec" {
			execSpan = c
		}
	}
	stages := 0
	for _, c := range execSpan.Children {
		if strings.HasPrefix(c.Name, "stage:") {
			stages++
		}
	}
	if stages == 0 {
		t.Errorf("exec span has no stage children: %v", execSpan.Children)
	}
}

// TestSlowQueryLog asserts the threshold gates logging: every query is
// slow at 1ns-scale thresholds, none at absurd ones, and the logged
// line carries the full span breakdown.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	s, err := New(Config{
		Dir:          t.TempDir(),
		Seed:         testSeed,
		Programs:     map[string]func() *prog.Program{"addmul-small": smallAddMul},
		SlowQueryMs:  1, // the small program still takes >1ms of real work
		SlowQueryLog: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id := runSmall(t, s)

	line := strings.TrimSpace(buf.String())
	if line == "" {
		t.Fatal("no slow-query line logged at a 1ms threshold")
	}
	var got slowQueryLine
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("slow-query line is not one JSON object: %v\n%s", err, line)
	}
	if got.QueryID != id || got.Program != "addmul" || got.Tenant != "acme" {
		t.Fatalf("slow-query line = %+v", got)
	}
	if got.WallMs < 1 {
		t.Fatalf("wallMs = %v, want >= threshold", got.WallMs)
	}
	if got.Trace == nil || got.Trace.Name != "query" || len(got.Trace.Children) == 0 {
		t.Fatalf("slow-query trace missing span breakdown: %+v", got.Trace)
	}

	// Same run shape under a sky-high threshold: nothing logged.
	var quiet bytes.Buffer
	s2, err := New(Config{
		Dir:          t.TempDir(),
		Seed:         testSeed,
		Programs:     map[string]func() *prog.Program{"addmul-small": smallAddMul},
		SlowQueryMs:  1 << 40,
		SlowQueryLog: &quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	runSmall(t, s2)
	if quiet.Len() != 0 {
		t.Fatalf("logged below threshold: %s", quiet.String())
	}
}

// expositionLine matches one Prometheus text-format sample line.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [0-9.eE+-]+$`)

// TestMetricsEndpoint asserts /metrics serves parseable exposition
// covering every subsystem the issue names.
func TestMetricsEndpoint(t *testing.T) {
	s, ts := newHTTPServer(t)
	runSmall(t, s)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	for _, ln := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(ln, "# HELP ") || strings.HasPrefix(ln, "# TYPE ") {
			continue
		}
		if !expositionLine.MatchString(ln) {
			t.Errorf("unparseable exposition line: %q", ln)
		}
	}

	for _, want := range []string{
		"riotshare_admission_wait_seconds_bucket",
		"riotshare_planning_seconds_count",
		"riotshare_query_seconds_bucket",
		"riotshare_exec_stage_seconds_bucket",
		"riotshare_pool_hits_total",
		"riotshare_pool_bytes_cached",
		"riotshare_store_read_reqs_total",
		"riotshare_queries_finished_total",
		"riotshare_plan_cache_misses_total",
		"riotshare_input_fills_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestTraceEndpoint covers the id listing, the span-tree fetch, and the
// unknown-id 404.
func TestTraceEndpoint(t *testing.T) {
	s, ts := newHTTPServer(t)
	id := runSmall(t, s)

	resp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Traces []string `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Traces) != 1 || listing.Traces[0] != id {
		t.Fatalf("trace listing = %v", listing.Traces)
	}

	resp, err = http.Get(ts.URL + "/trace?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/trace Content-Type = %q", ct)
	}
	var tr telemetry.Trace
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tr.QueryID != id || tr.Root == nil || tr.Root.Name != "query" {
		t.Fatalf("trace = %+v", tr)
	}

	resp, err = http.Get(ts.URL + "/trace?id=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace status = %d", resp.StatusCode)
	}
}

// TestJSONContentTypeAndPretty asserts handlers declare
// application/json, default to compact encoding, and honor ?pretty=1.
func TestJSONContentTypeAndPretty(t *testing.T) {
	s, ts := newHTTPServer(t)
	runSmall(t, s)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/stats Content-Type = %q", ct)
	}
	compact, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if bytes.Contains(bytes.TrimRight(compact, "\n"), []byte("\n")) {
		t.Fatalf("default /stats is not compact:\n%s", compact)
	}

	resp, err = http.Get(ts.URL + "/stats?pretty=1")
	if err != nil {
		t.Fatal(err)
	}
	pretty, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(pretty, []byte("\n  \"")) {
		t.Fatalf("?pretty=1 /stats is not indented:\n%s", pretty)
	}
	var a, b Stats
	if err := json.Unmarshal(compact, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(pretty, &b); err != nil {
		t.Fatal(err)
	}
	if a.Finished != b.Finished {
		t.Fatalf("pretty and compact stats disagree: %d vs %d", a.Finished, b.Finished)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/healthz Content-Type = %q", ct)
	}
}
