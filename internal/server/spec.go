package server

import (
	"encoding/json"
	"fmt"

	"riotshare/internal/prog"
)

// ProgramSpec is the JSON form of the statement-builder API (the paper's
// user-defined-operator path, §2): arrays, loop-nest statements with
// parametric ranges, guarded affine block accesses, and kernels. A spec
// submitted to the multi-query server is built into a prog.Program and
// optimized like any named benchmark program.
type ProgramSpec struct {
	Name   string           `json:"name"`
	Params []string         `json:"params,omitempty"`
	Bind   map[string]int64 `json:"bind,omitempty"`
	Arrays []ArraySpec      `json:"arrays"`
	Stmts  []StmtSpec       `json:"stmts"`
}

// ArraySpec declares one blocked array.
type ArraySpec struct {
	Name      string `json:"name"`
	BlockRows int    `json:"blockRows"`
	BlockCols int    `json:"blockCols"`
	GridRows  int    `json:"gridRows"`
	GridCols  int    `json:"gridCols"`
	// LogicalBlockBytes defaults to the physical block size when omitted.
	LogicalBlockBytes int64 `json:"logicalBlockBytes,omitempty"`
	Transient         bool  `json:"transient,omitempty"`
}

// ExprSpec is an affine expression: sum of terms (variable or parameter
// name times coefficient) plus a constant.
type ExprSpec struct {
	Terms map[string]int64 `json:"terms,omitempty"`
	K     int64            `json:"k,omitempty"`
}

// RangeSpec bounds one loop variable: lo <= var < hi.
type RangeSpec struct {
	Var string   `json:"var"`
	Lo  ExprSpec `json:"lo"`
	Hi  ExprSpec `json:"hi"`
}

// CondSpec guards an access: expr >= 0, or expr == 0 when Eq.
type CondSpec struct {
	Expr ExprSpec `json:"expr"`
	Eq   bool     `json:"eq,omitempty"`
}

// AccessSpec is one guarded affine block access.
type AccessSpec struct {
	Type  string     `json:"type"` // "read" or "write"
	Array string     `json:"array"`
	Row   ExprSpec   `json:"row"`
	Col   ExprSpec   `json:"col"`
	When  []CondSpec `json:"when,omitempty"`
}

// StmtSpec is one statement; NewNest starts a new top-level loop nest
// (statements default into the current nest, defining the original
// schedule's textual order).
type StmtSpec struct {
	Name     string       `json:"name"`
	Vars     []string     `json:"vars,omitempty"`
	NewNest  bool         `json:"newNest,omitempty"`
	Ranges   []RangeSpec  `json:"ranges,omitempty"`
	Accesses []AccessSpec `json:"accesses"`
	Kernel   string       `json:"kernel,omitempty"`
	Note     string       `json:"note,omitempty"`
}

func (e ExprSpec) expr() prog.Expr {
	terms := make(map[string]int64, len(e.Terms))
	for k, v := range e.Terms {
		terms[k] = v
	}
	return prog.Expr{Terms: terms, K: e.K}
}

// validate checks name references so Build never trips the builder API's
// panics on malformed client input.
func (sp *ProgramSpec) validate() error {
	if sp.Name == "" {
		return fmt.Errorf("spec: program name required")
	}
	if len(sp.Stmts) == 0 {
		return fmt.Errorf("spec: at least one statement required")
	}
	params := map[string]bool{}
	for _, p := range sp.Params {
		params[p] = true
	}
	arrays := map[string]bool{}
	for _, a := range sp.Arrays {
		if a.Name == "" {
			return fmt.Errorf("spec: array with empty name")
		}
		if arrays[a.Name] {
			return fmt.Errorf("spec: duplicate array %q", a.Name)
		}
		if a.BlockRows <= 0 || a.BlockCols <= 0 || a.GridRows <= 0 || a.GridCols <= 0 {
			return fmt.Errorf("spec: array %q needs positive block and grid dimensions", a.Name)
		}
		arrays[a.Name] = true
	}
	for _, p := range sp.Params {
		if _, ok := sp.Bind[p]; !ok {
			return fmt.Errorf("spec: parameter %q unbound (the server executes bound programs)", p)
		}
	}
	for bound := range sp.Bind {
		if !params[bound] {
			return fmt.Errorf("spec: binding for unknown parameter %q", bound)
		}
	}
	for si, st := range sp.Stmts {
		if st.Name == "" {
			return fmt.Errorf("spec: statement %d has no name", si)
		}
		vars := map[string]bool{}
		for _, v := range st.Vars {
			if params[v] {
				return fmt.Errorf("spec: %s: loop variable %q shadows a parameter", st.Name, v)
			}
			vars[v] = true
		}
		known := func(e ExprSpec) error {
			for name := range e.Terms {
				if !vars[name] && !params[name] {
					return fmt.Errorf("spec: %s: unknown name %q in expression", st.Name, name)
				}
			}
			return nil
		}
		for _, rg := range st.Ranges {
			if !vars[rg.Var] {
				return fmt.Errorf("spec: %s: range over unknown variable %q", st.Name, rg.Var)
			}
			if err := known(rg.Lo); err != nil {
				return err
			}
			if err := known(rg.Hi); err != nil {
				return err
			}
		}
		writes := 0
		for _, ac := range st.Accesses {
			if ac.Type != "read" && ac.Type != "write" {
				return fmt.Errorf("spec: %s: access type %q (want read or write)", st.Name, ac.Type)
			}
			if !arrays[ac.Array] {
				return fmt.Errorf("spec: %s: access to unknown array %q", st.Name, ac.Array)
			}
			if ac.Type == "write" {
				writes++
			}
			if err := known(ac.Row); err != nil {
				return err
			}
			if err := known(ac.Col); err != nil {
				return err
			}
			for _, cd := range ac.When {
				if err := known(cd.Expr); err != nil {
					return err
				}
			}
		}
		if writes > 1 {
			return fmt.Errorf("spec: %s: more than one write access (unsupported, §4.1)", st.Name)
		}
	}
	return nil
}

// Build constructs the program. The spec must bind every parameter; the
// server only executes bound programs.
func (sp *ProgramSpec) Build() (*prog.Program, error) {
	if err := sp.validate(); err != nil {
		return nil, err
	}
	p := prog.New(sp.Name, sp.Params...)
	for _, a := range sp.Arrays {
		p.AddArray(&prog.Array{
			Name:      a.Name,
			BlockRows: a.BlockRows, BlockCols: a.BlockCols,
			GridRows: a.GridRows, GridCols: a.GridCols,
			LogicalBlockBytes: a.LogicalBlockBytes,
			Transient:         a.Transient,
		})
	}
	for _, stSpec := range sp.Stmts {
		if stSpec.NewNest {
			p.NewNest()
		}
		st := p.NewStatement(stSpec.Name, stSpec.Vars...)
		for _, rg := range stSpec.Ranges {
			st.Range(rg.Var, rg.Lo.expr(), rg.Hi.expr())
		}
		for _, ac := range stSpec.Accesses {
			t := prog.Read
			if ac.Type == "write" {
				t = prog.Write
			}
			var conds []prog.Cond
			for _, cd := range ac.When {
				if cd.Eq {
					conds = append(conds, prog.EQ(cd.Expr.expr()))
				} else {
					conds = append(conds, prog.GE(cd.Expr.expr()))
				}
			}
			st.AccessWhen(t, ac.Array, ac.Row.expr(), ac.Col.expr(), conds)
		}
		if stSpec.Kernel != "" {
			st.SetKernel(stSpec.Kernel)
		}
		if stSpec.Note != "" {
			st.SetNote(stSpec.Note)
		}
	}
	for param, v := range sp.Bind {
		p.Bind(param, v)
	}
	return p, nil
}

// cacheKey is the spec's canonical JSON (struct field order makes it
// deterministic), used to key the server's plan cache.
func (sp *ProgramSpec) cacheKey() string {
	b, err := json.Marshal(sp)
	if err != nil {
		return fmt.Sprintf("spec:%s:unmarshalable", sp.Name)
	}
	return "spec:" + string(b)
}
