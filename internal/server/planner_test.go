package server

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"riotshare/internal/core"
	"riotshare/internal/prog"
)

// The plan cache must hold at most PlanCacheEntries tables, retire the
// least recently used beyond that, and report size and evictions in both
// Stats and the metrics registry. The same builder is registered under
// three names: plan tables are keyed by program name, while the arrays
// keep one consistent shape in storage.
func TestPlanCacheLRUBound(t *testing.T) {
	s, err := New(Config{
		Dir:  t.TempDir(),
		Seed: testSeed,
		Programs: map[string]func() *prog.Program{
			"am2": smallAddMul,
			"am3": smallAddMul,
			"am4": smallAddMul,
		},
		PlanCacheEntries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for _, name := range []string{"am2", "am3", "am4"} {
		id, err := s.Submit(Request{Program: name})
		if err != nil {
			t.Fatal(err)
		}
		if st, err := s.Wait(id); err != nil || st.State != StateDone {
			t.Fatalf("%s: state %v, err %v (%s)", name, st.State, err, st.Err)
		}
	}
	stats := s.Stats()
	if stats.PlanCacheSize > 2 {
		t.Errorf("plan cache size = %d, want <= 2", stats.PlanCacheSize)
	}
	if stats.PlanCacheEvictions < 1 {
		t.Errorf("plan cache evictions = %d, want >= 1", stats.PlanCacheEvictions)
	}
	if stats.PlanCacheMisses != 3 || stats.PlanCacheHits != 0 {
		t.Errorf("hits/misses = %d/%d, want 0/3", stats.PlanCacheHits, stats.PlanCacheMisses)
	}

	// am2 was the least recently used and must have been evicted: a
	// resubmission misses again instead of hitting.
	id, err := s.Submit(Request{Program: "am2"})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := s.Wait(id); err != nil || st.State != StateDone {
		t.Fatalf("am2 again: state %v, err %v (%s)", st.State, err, st.Err)
	}
	stats = s.Stats()
	if stats.PlanCacheMisses != 4 {
		t.Errorf("misses after resubmitting evicted program = %d, want 4", stats.PlanCacheMisses)
	}
	if stats.PlanCacheEvictions < 2 {
		t.Errorf("evictions after fourth miss = %d, want >= 2", stats.PlanCacheEvictions)
	}

	var sb strings.Builder
	if err := s.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"riotshare_plan_cache_entries",
		"riotshare_plan_cache_evictions_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}

// A budgeted server plans cold queries on the greedy tier, serves repeats
// from the cache tier, keeps outputs bit-identical to a standalone run,
// and exposes the tier split in Stats and as separated
// riotshare_planning_seconds{tier} histograms.
func TestGreedyTierPlanning(t *testing.T) {
	_, wantOuts, _ := standaloneRun(t, smallAddMul)

	s, err := New(Config{
		Dir:        t.TempDir(),
		Seed:       testSeed,
		Programs:   map[string]func() *prog.Program{"addmul-small": smallAddMul},
		PlanBudget: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var ids [2]string
	for i := range ids {
		id, err := s.Submit(Request{Program: "addmul-small"})
		if err != nil {
			t.Fatal(err)
		}
		if st, err := s.Wait(id); err != nil || st.State != StateDone {
			t.Fatalf("query %d: state %v, err %v (%s)", i, st.State, err, st.Err)
		}
		ids[i] = id
	}

	stats := s.Stats()
	if got := stats.PlanningTiers["greedy"].Count; got != 1 {
		t.Errorf("greedy-tier plannings = %d, want 1 (tiers: %+v)", got, stats.PlanningTiers)
	}
	if got := stats.PlanningTiers["cache"].Count; got != 1 {
		t.Errorf("cache-tier plannings = %d, want 1 (tiers: %+v)", got, stats.PlanningTiers)
	}
	if got := stats.PlanningTiers["full"].Count; got != 0 {
		t.Errorf("full-tier plannings = %d, want 0 under a plan budget", got)
	}

	// Greedy-planned queries still produce bit-identical outputs.
	for _, id := range ids {
		for name, want := range wantOuts {
			got, err := s.Output(id, name)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("query %s: %s[%d] = %v, want %v (not bit-identical)",
						id, name, i, got.Data[i], want.Data[i])
				}
			}
		}
	}

	var sb strings.Builder
	if err := s.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`riotshare_planning_seconds_bucket{tier="greedy"`,
		`riotshare_planning_seconds_bucket{tier="cache"`,
		`riotshare_planning_seconds_count{tier="greedy"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing separated tier series %q", want)
		}
	}
}

// The improver's hot swap, driven deterministically: a baseline-only plan
// table is installed in the cache as if the greedy tier had produced it,
// one query runs on it, improveOne is invoked synchronously, and a second
// query must then run on a strictly-better plan with bit-identical
// outputs — the acceptance criterion for tier 3.
func TestImproverHotSwapDeterministic(t *testing.T) {
	s, err := New(Config{
		Dir:      t.TempDir(),
		Seed:     testSeed,
		Programs: map[string]func() *prog.Program{"addmul-small": smallAddMul},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Install a deliberately weak table: the no-sharing baseline only.
	base, err := core.OptimizeSubsets(smallAddMul(), core.Options{BindParams: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Plans) != 1 {
		t.Fatalf("baseline-only table has %d plans, want 1", len(base.Plans))
	}
	const key = "prog:addmul-small"
	ready := make(chan struct{})
	close(ready)
	e := &planEntry{ready: ready, key: key, res: base, tier: tierGreedy}
	s.planMu.Lock()
	e.elem = s.planLRU.PushFront(e)
	s.planCache[key] = e
	s.planMu.Unlock()
	oldIO := base.Plans[0].Cost.LogicalIOBytes()

	run := func() QueryStatus {
		t.Helper()
		id, err := s.Submit(Request{Program: "addmul-small"})
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.Wait(id)
		if err != nil || st.State != StateDone {
			t.Fatalf("state %v, err %v (%s)", st.State, err, st.Err)
		}
		return st
	}
	st1 := run()

	s.improveOne(context.Background(), improveJob{key: key, prog: smallAddMul()})
	if got := s.impSwaps.Load(); got != 1 {
		t.Fatalf("improver swaps = %d, want 1", got)
	}
	s.planMu.Lock()
	swapped, tier := e.res, e.tier
	s.planMu.Unlock()
	if swapped == base {
		t.Fatal("plan table was not hot-swapped")
	}
	if tier != tierFull {
		t.Errorf("swapped entry tier = %q, want %q", tier, tierFull)
	}
	newIO := swapped.Plans[0].Cost.LogicalIOBytes()
	if newIO >= oldIO {
		t.Errorf("swapped plan logical I/O = %d, want < %d", newIO, oldIO)
	}
	t.Logf("hot swap: %s (%d B) -> %s (%d B)",
		base.Plans[0].Label, oldIO, swapped.Plans[0].Label, newIO)

	// A repeat invocation must not re-plan or double-swap.
	s.improveOne(context.Background(), improveJob{key: key, prog: smallAddMul()})
	if got := s.impSwaps.Load(); got != 1 {
		t.Errorf("improver swaps after duplicate job = %d, want 1", got)
	}

	st2 := run()
	if st2.PlanLabel == st1.PlanLabel {
		t.Errorf("second query still ran plan %q; expected the swapped-in plan", st2.PlanLabel)
	}

	// Bit-identical results before and after the swap.
	for _, name := range outputNames(t, smallAddMul()) {
		a, err := s.Output(st1.ID, name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Output(st2.ID, name)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("%s[%d] = %v before swap, %v after (not bit-identical)",
					name, i, a.Data[i], b.Data[i])
			}
		}
	}
}

// outputNames lists a program's persistent written arrays.
func outputNames(t *testing.T, p *prog.Program) []string {
	t.Helper()
	written := map[string]bool{}
	for _, st := range p.Stmts {
		if w := st.WriteAccess(); w != nil {
			written[w.Array] = true
		}
	}
	var names []string
	for name, arr := range p.Arrays {
		if written[name] && !arr.Transient {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		t.Fatal("program has no persistent outputs")
	}
	return names
}

// The full tier-1/2/3 loop under live traffic: a budgeted server with the
// improver enabled plans a cold query on the greedy tier, the background
// improver re-plans it with the full search, and the cached table ends at
// exactly the full search's best logical I/O — never worse than greedy.
func TestImproverLive(t *testing.T) {
	full, err := core.Optimize(smallAddMul(), core.Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	fullBestIO := full.Plans[0].Cost.LogicalIOBytes()

	s, err := New(Config{
		Dir:          t.TempDir(),
		Seed:         testSeed,
		Programs:     map[string]func() *prog.Program{"addmul-small": smallAddMul},
		PlanBudget:   10 * time.Second,
		PlanImprover: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	id, err := s.Submit(Request{Program: "addmul-small"})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := s.Wait(id); err != nil || st.State != StateDone {
		t.Fatalf("state %v, err %v (%s)", st.State, err, st.Err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		stats := s.Stats()
		if stats.Improver != nil && stats.Improver.Runs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("improver never ran (stats: %+v)", stats.Improver)
		}
		time.Sleep(10 * time.Millisecond)
	}

	s.planMu.Lock()
	e := s.planCache["prog:addmul-small"]
	var cachedIO int64 = -1
	if e != nil && e.res != nil && len(e.res.Plans) > 0 {
		cachedIO = e.res.Plans[0].Cost.LogicalIOBytes()
	}
	s.planMu.Unlock()
	// After the improver ran, the cached best is min(greedy, full-best);
	// the full search enumerates every greedy combination, so that minimum
	// is exactly the full search's best.
	if cachedIO != fullBestIO {
		t.Errorf("cached best logical I/O after improvement = %d, want %d (full search's best)",
			cachedIO, fullBestIO)
	}
	if swaps := s.impSwaps.Load(); swaps > 1 {
		t.Errorf("improver swaps = %d, want 0 or 1 for one entry", swaps)
	}

	stats := s.Stats()
	if stats.Improver == nil {
		t.Fatal("Stats.Improver missing with the improver enabled")
	}
	if stats.Improver.Swaps != s.impSwaps.Load() {
		t.Errorf("Stats.Improver.Swaps = %d, counter = %d", stats.Improver.Swaps, s.impSwaps.Load())
	}

	var sb strings.Builder
	if err := s.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"riotshare_plan_improver_runs_total 1",
		"riotshare_plan_improver_queue 0",
		fmt.Sprintf("riotshare_plan_improver_swaps_total %d", s.impSwaps.Load()),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// A post-improvement query serves from the (possibly swapped) cache
	// and completes; then the server shuts down cleanly with the improver
	// goroutine running.
	id2, err := s.Submit(Request{Program: "addmul-small"})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := s.Wait(id2); err != nil || st.State != StateDone {
		t.Fatalf("post-improvement query: state %v, err %v (%s)", st.State, err, st.Err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
