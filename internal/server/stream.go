// stream.go is the chunked, backpressure-aware result delivery path:
// GET /results/stream?id= sends a finished — or still running — query's
// output blocks one at a time straight out of the buffer pool, instead of
// materializing the whole result in the handler the way /results does.
//
// Three properties make it the serving-path form of the paper's
// out-of-core discipline:
//
//   - Early delivery. The exec engines announce each output block's final
//     physical write (Engine.OnBlockWritten); the streamer waits on those
//     per-block signals, so the first finished blocks go on the wire while
//     later pipeline stages are still executing.
//   - Backpressure. Blocks are acquired from the pool at most one chunk
//     ahead of the bytes the client has accepted: a slow reader stalls the
//     handler's write, which stalls the next pool acquisition. Pool
//     residency never grows with result size or client speed.
//   - Bounded retention. After a chunk is on the wire its frames are
//     retired (buffer.Pool.ReleaseBlock — write back if dirty, drop when
//     unpinned), so a result far larger than the pool's capacity streams
//     with flat resident memory. ?retain=keep keeps frames cached for
//     re-fetch; ?retain=drop additionally retires the query's output
//     stores once the stream completes.
//
// Wire format (format=binary): a sequence of blockproto frames
// (uint32 length | uint8 version | uint8 kind | payload) using the stream
// frame kinds below — an array header frame per output array, one frame
// per block in row-major order, and a final end frame (or an error frame
// if the query fails mid-stream). format=ndjson mirrors the same sequence
// as one JSON object per line for curl-ability. docs/streaming.md is the
// authoritative spec; keep the two in sync.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"riotshare/internal/blas"
	"riotshare/internal/blockproto"
	"riotshare/internal/prog"
	"riotshare/internal/telemetry"
)

// Stream frame kinds (the "kind" byte of each blockproto frame on the
// binary streaming path). They live above the request/response opcode and
// status ranges of the block-service protocol so a frame can never be
// mistaken for one.
const (
	// StreamFrameArray opens one output array:
	// Str name, U32 blockRows, U32 blockCols, U32 gridRows, U32 gridCols.
	StreamFrameArray byte = 0x20
	// StreamFrameBlock carries one block:
	// Str name, I64 blockRow, I64 blockCol, U32 rows, U32 cols,
	// Blob payload (EncodeBlock: row-major little-endian float64).
	StreamFrameBlock byte = 0x21
	// StreamFrameEnd closes a successful stream:
	// U32 arrays, U32 blocks, I64 payload bytes.
	StreamFrameEnd byte = 0x22
	// StreamFrameError reports a mid-stream failure (Str message) and
	// terminates the stream. It exists because the HTTP status is already
	// on the wire when a query fails after its first block was sent.
	StreamFrameError byte = 0x23
)

// Stream retention modes (?retain=).
const (
	// RetainEvict (the default) retires each streamed block's pool frame
	// after delivery; the output stores stay on disk for re-fetch.
	RetainEvict = "evict"
	// RetainKeep leaves streamed frames cached (they age out through the
	// normal replacement policy).
	RetainKeep = "keep"
	// RetainDrop retires frames like evict and additionally drops the
	// query's output stores after a complete, successful stream — the
	// "fetch once" mode; a later /results still returns the summary.
	RetainDrop = "drop"
)

// streamKey is the logical block key the completion signals are tracked
// under (the program's array name, not the namespaced physical one).
func streamKey(array string, r, c int64) string {
	return fmt.Sprintf("%s[%d,%d]", array, r, c)
}

// streamState tracks one query's output-block completion so streamed
// delivery can begin before the query finishes. The exec callback marks
// blocks ready; waiters block on a broadcast channel replaced on every
// state change. A query's terminal state (q.done) supersedes everything:
// after it, every block of a successful query is readable.
type streamState struct {
	mu      sync.Mutex
	ready   map[string]bool
	aliasOK bool
	changed chan struct{}
}

func newStreamState() *streamState {
	return &streamState{ready: make(map[string]bool), changed: make(chan struct{})}
}

// signalLocked wakes every waiter; callers hold st.mu.
func (st *streamState) signalLocked() {
	close(st.changed)
	st.changed = make(chan struct{})
}

// noteBlock marks one logical block's final write complete (the exec
// OnBlockWritten callback, possibly from a worker goroutine).
func (st *streamState) noteBlock(array string, r, c int64) {
	st.mu.Lock()
	st.ready[streamKey(array, r, c)] = true
	st.signalLocked()
	st.mu.Unlock()
}

// noteAlias marks the query's output namespace (q.alias) as published.
func (st *streamState) noteAlias() {
	st.mu.Lock()
	st.aliasOK = true
	st.signalLocked()
	st.mu.Unlock()
}

// check snapshots (block ready?, alias published?) and returns the
// broadcast channel to wait on if not.
func (st *streamState) check(key string) (ready, aliasOK bool, wait <-chan struct{}) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return key == "" || st.ready[key], st.aliasOK, st.changed
}

// StreamStats reports the streamed-result delivery path's lifetime
// counters (Stats.Streams).
type StreamStats struct {
	// Active is the number of streams currently on the wire; Completed,
	// Canceled, and Errors count finished ones by outcome (canceled =
	// client disconnect).
	Active    int   `json:"active"`
	Completed int64 `json:"completed"`
	Canceled  int64 `json:"canceled"`
	Errors    int64 `json:"errors"`
	// Blocks and Bytes total the delivered block frames and their payload
	// bytes across all streams.
	Blocks int64 `json:"blocks"`
	Bytes  int64 `json:"bytes"`
}

// streamOptions is one stream request's parsed knobs.
type streamOptions struct {
	format string // "binary" or "ndjson"
	chunk  int    // blocks acquired/flushed per round
	retain string // RetainEvict, RetainKeep, RetainDrop
}

// maxStreamChunk bounds ?chunk=: the handler holds at most this many
// block copies outside the pool at once.
const maxStreamChunk = 256

func parseStreamOptions(r *http.Request) (streamOptions, error) {
	q := r.URL.Query()
	opt := streamOptions{format: "binary", chunk: 1, retain: RetainEvict}
	switch f := q.Get("format"); f {
	case "", "binary":
	case "ndjson":
		opt.format = "ndjson"
	default:
		return opt, fmt.Errorf("unknown format %q (binary, ndjson)", f)
	}
	if c := q.Get("chunk"); c != "" {
		n, err := strconv.Atoi(c)
		if err != nil || n < 1 {
			return opt, fmt.Errorf("chunk must be a positive integer, got %q", c)
		}
		if n > maxStreamChunk {
			n = maxStreamChunk
		}
		opt.chunk = n
	}
	switch ret := q.Get("retain"); ret {
	case "", RetainEvict:
	case RetainKeep, RetainDrop:
		opt.retain = ret
	default:
		return opt, fmt.Errorf("unknown retain mode %q (evict, keep, drop)", ret)
	}
	return opt, nil
}

// streamSink renders the frame sequence to one of the two wire formats.
type streamSink interface {
	Array(name string, arr *prog.Array) error
	Block(name string, r, c int64, blk *blas.Matrix) error
	End(arrays, blocks int, bytes int64) error
	Error(msg string) error
}

// binarySink writes blockproto frames with the stream frame kinds.
type binarySink struct{ w io.Writer }

func (b binarySink) Array(name string, arr *prog.Array) error {
	var e blockproto.Enc
	e.Str(name).
		U32(uint32(arr.BlockRows)).U32(uint32(arr.BlockCols)).
		U32(uint32(arr.GridRows)).U32(uint32(arr.GridCols))
	return blockproto.WriteFrame(b.w, StreamFrameArray, e.Bytes())
}

func (b binarySink) Block(name string, r, c int64, blk *blas.Matrix) error {
	var e blockproto.Enc
	e.Str(name).I64(r).I64(c).
		U32(uint32(blk.Rows)).U32(uint32(blk.Cols)).
		Blob(blockproto.EncodeBlock(blk))
	return blockproto.WriteFrame(b.w, StreamFrameBlock, e.Bytes())
}

func (b binarySink) End(arrays, blocks int, bytes int64) error {
	var e blockproto.Enc
	e.U32(uint32(arrays)).U32(uint32(blocks)).I64(bytes)
	return blockproto.WriteFrame(b.w, StreamFrameEnd, e.Bytes())
}

func (b binarySink) Error(msg string) error {
	var e blockproto.Enc
	e.Str(msg)
	return blockproto.WriteFrame(b.w, StreamFrameError, e.Bytes())
}

// ndjsonSink writes the same sequence as one JSON object per line.
type ndjsonSink struct{ w io.Writer }

func (n ndjsonSink) write(v any) error {
	buf, err := json.Marshal(v)
	if err != nil {
		// Marshal failures (NaN/±Inf block data) happen before any bytes
		// of the line reach the client; tag them so the stream reports a
		// real error instead of a disconnect.
		return &encodeError{err: err}
	}
	buf = append(buf, '\n')
	_, err = n.w.Write(buf)
	return err
}

func (n ndjsonSink) Array(name string, arr *prog.Array) error {
	return n.write(map[string]any{
		"type": "array", "array": name,
		"blockRows": arr.BlockRows, "blockCols": arr.BlockCols,
		"gridRows": arr.GridRows, "gridCols": arr.GridCols,
		"rows": arr.BlockRows * arr.GridRows, "cols": arr.BlockCols * arr.GridCols,
	})
}

func (n ndjsonSink) Block(name string, r, c int64, blk *blas.Matrix) error {
	return n.write(map[string]any{
		"type": "block", "array": name, "r": r, "c": c,
		"rows": blk.Rows, "cols": blk.Cols, "data": blk.Data,
	})
}

func (n ndjsonSink) End(arrays, blocks int, bytes int64) error {
	return n.write(map[string]any{
		"type": "end", "arrays": arrays, "blocks": blocks, "bytes": bytes,
	})
}

func (n ndjsonSink) Error(msg string) error {
	return n.write(map[string]string{"type": "error", "error": msg})
}

// handleResultsStream is GET /results/stream?id=q1: 404 for an unknown
// query, 409 (JSON error) when the query already failed, otherwise a 200
// whose body is the streamed frame sequence. A still-queued or running
// query streams blocks as execution finishes them (early delivery); a
// failure after the stream started is reported in-band with an error
// frame. Optional knobs: ?format=binary|ndjson, ?chunk=N (blocks per
// acquire/flush round), ?retain=evict|keep|drop.
func (s *Server) handleResultsStream(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	s.mu.Lock()
	q, ok := s.queries[id]
	s.mu.Unlock()
	if !ok {
		writeErr(w, r, http.StatusNotFound, fmt.Errorf("server: unknown query %q", id))
		return
	}
	opt, err := parseStreamOptions(r)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	// A query that already failed gets a clean HTTP error instead of a
	// 200-then-error-frame stream.
	s.mu.Lock()
	failedEarly := q.status.State == StateFailed
	errText := q.status.Err
	s.mu.Unlock()
	if failedEarly {
		writeErr(w, r, http.StatusConflict, fmt.Errorf("server: query %s failed: %s", id, errText))
		return
	}
	if opt.format == "ndjson" {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "application/octet-stream")
	}
	w.Header().Set("X-Riotshare-Query", id)
	w.WriteHeader(http.StatusOK)
	var sink streamSink
	if opt.format == "ndjson" {
		sink = ndjsonSink{w: w}
	} else {
		sink = binarySink{w: w}
	}
	flush := func() {}
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	s.streamQuery(r, q, opt, sink, flush)
}

// errStreamCanceled classifies a client disconnect mid-stream.
var errStreamCanceled = errors.New("stream canceled by client")

// encodeError marks a sink failure that happened while encoding a frame
// (json.Marshal of a NaN/±Inf block on the ndjson path, say) rather than
// writing it to the client. The distinction drives the stream's outcome:
// an encode failure is a genuine stream error — reported in-band with an
// error frame and counted under outcome="error" — while a write failure
// means the client is gone (outcome="canceled").
type encodeError struct{ err error }

func (e *encodeError) Error() string { return "encode stream frame: " + e.err.Error() }
func (e *encodeError) Unwrap() error { return e.err }

// classifySinkErr maps a sink failure to the stream's outcome error.
func classifySinkErr(err error) error {
	var enc *encodeError
	if errors.As(err, &enc) {
		return fmt.Errorf("server: %w", enc)
	}
	return errStreamCanceled
}

// streamQuery drives one stream: wait for the query's output namespace,
// then deliver every non-transient output array's blocks in sorted-array,
// row-major order, waiting on per-block completion signals, acquiring at
// most chunk blocks from the pool per round and retiring them after the
// round is on the wire. It owns the stream telemetry (metrics, span tree,
// Stats.Streams counters).
func (s *Server) streamQuery(r *http.Request, q *query, opt streamOptions, sink streamSink, flush func()) {
	ctx := r.Context()
	root := telemetry.StartSpan("stream")
	root.Annotate("query", q.id)
	root.Annotate("format", opt.format)
	root.Annotate("retain", opt.retain)
	s.streamActive.Add(1)
	s.mStreamActive.Add(1)
	start := time.Now()
	arrays, blocks, bytes, err := s.streamBlocks(ctx, q, opt, sink, flush)
	s.streamActive.Add(-1)
	s.mStreamActive.Add(-1)
	s.streamBlocks64.Add(int64(blocks))
	s.streamBytes64.Add(bytes)
	s.mStreamBlocks.Add(int64(blocks))
	s.mStreamBytes.Add(bytes)
	s.mStreamSeconds.ObserveDuration(time.Since(start))
	root.Annotate("arrays", strconv.Itoa(arrays))
	root.Annotate("blocks", strconv.Itoa(blocks))
	root.Annotate("bytes", strconv.FormatInt(bytes, 10))
	outcome := "done"
	switch {
	case errors.Is(err, errStreamCanceled):
		outcome = "canceled"
		s.streamCanceled.Add(1)
	case err != nil:
		outcome = "error"
		s.streamErrors.Add(1)
		root.Annotate("error", err.Error())
		// Best effort: the 200 is already on the wire, so the failure
		// travels in-band. A dead connection just errors again silently.
		_ = sink.Error(err.Error())
		flush()
	default:
		s.streamCompleted.Add(1)
		if opt.retain == RetainDrop {
			// The stream can complete before runQuery does — blocks are
			// announced as execution writes them, ahead of the result-fetch
			// phase — and dropping the output stores then would yank them
			// out from under InvalidateArray/collectOutputs and fail a
			// successful query. Wait for the terminal state and drop only on
			// success; a failed query's run path drops its own outputs.
			<-q.done
			s.mu.Lock()
			succeeded := q.status.State == StateDone
			s.mu.Unlock()
			if succeeded {
				s.dropOutputs(q)
			}
		}
	}
	s.mStreamOutcome[outcome].Inc()
	root.Annotate("outcome", outcome)
	root.End()
	s.tracer.Add(q.id+":stream", root)
}

// streamBlocks is the delivery loop; it returns the totals delivered and
// the first error (errStreamCanceled for a client disconnect).
func (s *Server) streamBlocks(ctx context.Context, q *query, opt streamOptions, sink streamSink, flush func()) (arrays, blocks int, bytes int64, err error) {
	// Phase 1: wait until the query's output namespace exists (the alias
	// map is published right after prepareArrays) or the query reaches a
	// terminal state.
	for {
		_, aliasOK, wait := q.stream.check("")
		if aliasOK {
			break
		}
		select {
		case <-q.done:
		case <-ctx.Done():
			return arrays, blocks, bytes, errStreamCanceled
		case <-wait:
			continue
		}
		// Terminal without a namespace: planning/admission failed, or the
		// program writes nothing.
		if st, _ := s.Status(q.id); st.State == StateFailed {
			return arrays, blocks, bytes, fmt.Errorf("server: query %s failed: %s", q.id, st.Err)
		}
		break
	}
	s.mu.Lock()
	alias := q.alias
	dropped := q.outputsDropped
	s.mu.Unlock()
	if dropped {
		return arrays, blocks, bytes, fmt.Errorf("server: query %s outputs were retired (RetainOutputs policy)", q.id)
	}

	// Output arrays in sorted order — the same order collectOutputs
	// summarizes them in.
	names := make([]string, 0, len(alias))
	for name := range alias {
		names = append(names, name)
	}
	sort.Strings(names)

	type pending struct {
		r, c int64
		blk  *blas.Matrix
	}
	for _, name := range names {
		arr := q.prog.Arrays[name]
		if arr == nil || arr.Transient {
			continue
		}
		phys := alias[name]
		if err := sink.Array(name, arr); err != nil {
			return arrays, blocks, bytes, classifySinkErr(err)
		}
		arrays++
		chunk := make([]pending, 0, opt.chunk)
		// emit delivers the buffered chunk: write frames, flush, then
		// retire the frames from the pool (bounded retention).
		emit := func() error {
			for _, p := range chunk {
				if err := sink.Block(name, p.r, p.c, p.blk); err != nil {
					return classifySinkErr(err)
				}
				blocks++
				bytes += int64(len(p.blk.Data)) * 8
			}
			flush()
			if opt.retain != RetainKeep {
				for _, p := range chunk {
					if err := s.pool.ReleaseBlock(phys, p.r, p.c); err != nil {
						return err
					}
				}
			}
			chunk = chunk[:0]
			return nil
		}
		for br := int64(0); br < int64(arr.GridRows); br++ {
			for bc := int64(0); bc < int64(arr.GridCols); bc++ {
				if err := s.waitBlockReady(ctx, q, streamKey(name, br, bc)); err != nil {
					return arrays, blocks, bytes, err
				}
				blk, err := s.pool.Acquire(phys, br, bc)
				if err != nil {
					return arrays, blocks, bytes, err
				}
				// Acquire returns a private copy; the frame pin is only
				// needed while the copy is taken.
				s.pool.Unpin(phys, br, bc, 1)
				chunk = append(chunk, pending{r: br, c: bc, blk: blk})
				if len(chunk) >= opt.chunk {
					if err := emit(); err != nil {
						return arrays, blocks, bytes, err
					}
				}
			}
		}
		if err := emit(); err != nil {
			return arrays, blocks, bytes, err
		}
	}
	if err := sink.End(arrays, blocks, bytes); err != nil {
		return arrays, blocks, bytes, classifySinkErr(err)
	}
	flush()
	return arrays, blocks, bytes, nil
}

// waitBlockReady blocks until the logical block's final write completed,
// the query reached a terminal state (every block of a successful query
// is then readable; a failed query errors), or the client disconnected.
// A block the plan never writes to disk directly (or at all) resolves
// when the query finishes.
func (s *Server) waitBlockReady(ctx context.Context, q *query, key string) error {
	for {
		ready, _, wait := q.stream.check(key)
		if ready {
			return nil
		}
		select {
		case <-q.done:
			if st, _ := s.Status(q.id); st.State == StateFailed {
				return fmt.Errorf("server: query %s failed: %s", q.id, st.Err)
			}
			return nil
		case <-ctx.Done():
			return errStreamCanceled
		case <-wait:
		}
	}
}

// StreamTo streams a query's outputs to w in the binary frame format —
// the in-process form of GET /results/stream, used by tests and
// embedders. It blocks until the stream completes or fails; use
// StreamToCtx to bound how long that can be.
func (s *Server) StreamTo(w io.Writer, id string, chunkBlocks int) error {
	return s.StreamToCtx(context.Background(), w, id, chunkBlocks) //riotvet:allow ctxflow — compatibility wrapper; cancelable callers use StreamToCtx
}

// StreamToCtx is StreamTo with a cancellation hook: canceling ctx aborts
// the stream mid-delivery (retiring what it held, like a client
// disconnect on the HTTP path), so a query that hangs before reaching a
// terminal state cannot block the embedder forever.
func (s *Server) StreamToCtx(ctx context.Context, w io.Writer, id string, chunkBlocks int) error {
	s.mu.Lock()
	q, ok := s.queries[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("server: unknown query %q", id)
	}
	if chunkBlocks < 1 {
		chunkBlocks = 1
	}
	opt := streamOptions{format: "binary", chunk: chunkBlocks, retain: RetainEvict}
	_, _, _, err := s.streamBlocks(ctx, q, opt, binarySink{w: w}, func() {})
	return err
}

// streamStats snapshots the streaming counters for Stats.
func (s *Server) streamStats() StreamStats {
	return StreamStats{
		Active:    int(s.streamActive.Load()),
		Completed: s.streamCompleted.Load(),
		Canceled:  s.streamCanceled.Load(),
		Errors:    s.streamErrors.Load(),
		Blocks:    s.streamBlocks64.Load(),
		Bytes:     s.streamBytes64.Load(),
	}
}
