package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"riotshare/internal/prog"
)

// removeShardManifest deletes one shard's manifest under the server's
// default Dir/shard-N layout, simulating a lost or wrong shard directory.
func removeShardManifest(dir string, shard int) error {
	return os.Remove(filepath.Join(dir, fmt.Sprintf("shard-%d", shard), "MANIFEST.json"))
}

// inputBlockCount sums the stored blocks of a program's shared inputs —
// exactly the physical writes FillInput issues for them.
func inputBlockCount(p *prog.Program) int64 {
	var n int64
	written := writtenArrays(p)
	for name, arr := range p.Arrays {
		if !written[name] {
			n += int64(arr.GridRows) * int64(arr.GridCols)
		}
	}
	return n
}

// runOne submits the program and waits for completion, returning the final
// status.
func runOne(t *testing.T, s *Server, program string) QueryStatus {
	t.Helper()
	id, err := s.Submit(Request{Program: program})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("query %s: %s (%s)", id, st.State, st.Err)
	}
	return st
}

// TestServerRestartPersistedInputs is the persistence acceptance test: a
// server over a sharded, persistent store fills its shared inputs once;
// a second server reopening the same directories answers the same query
// with identical results and ZERO refill writes — every write the reopened
// process issues is an output write, none touch the persisted inputs.
func TestServerRestartPersistedInputs(t *testing.T) {
	progs := map[string]func() *prog.Program{"addmul-small": smallAddMul}
	cfg := Config{
		Dir:      t.TempDir(),
		Shards:   2,
		Persist:  true,
		Seed:     testSeed,
		Programs: progs,
	}

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := runOne(t, s1, "addmul-small")
	st1 := s1.Stats()
	if st1.InputFills == 0 || st1.InputFillsSkipped != 0 {
		t.Fatalf("fresh server: InputFills=%d skipped=%d, want fills>0 skipped=0", st1.InputFills, st1.InputFillsSkipped)
	}
	if len(st1.Shards) != 2 {
		t.Fatalf("sharded server reported %d shard stats, want 2", len(st1.Shards))
	}
	firstWrites := st1.Store.WriteReqs
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	second := runOne(t, s2, "addmul-small")
	st2 := s2.Stats()

	// The catalog served every shared input; nothing was refilled.
	if st2.InputFills != 0 {
		t.Errorf("reopened server refilled %d inputs, want 0", st2.InputFills)
	}
	if st2.InputFillsSkipped == 0 {
		t.Error("reopened server skipped no input fills — the catalog was not used")
	}

	// Zero refill writes: the reopened run's physical writes are exactly
	// the fresh run's minus the one-time input fill.
	fillWrites := inputBlockCount(smallAddMul())
	if got, want := st2.Store.WriteReqs, firstWrites-fillWrites; got != want {
		t.Errorf("reopened server issued %d physical writes, want %d (fresh %d minus %d fill writes)",
			got, want, firstWrites, fillWrites)
	}

	// Same plan, same persisted data → bit-identical results and outputs.
	if first.Result == nil || second.Result == nil {
		t.Fatal("missing results")
	}
	r1, r2 := *first.Result, *second.Result
	if !sameResult(r1, r2) {
		t.Errorf("Result diverged across restart:\nfresh:  %+v\nreopen: %+v", stripTimes(r1), stripTimes(r2))
	}
	if len(first.Outputs) == 0 || len(first.Outputs) != len(second.Outputs) {
		t.Fatalf("outputs: fresh %d vs reopen %d", len(first.Outputs), len(second.Outputs))
	}
	for i := range first.Outputs {
		if first.Outputs[i].Sum != second.Outputs[i].Sum {
			t.Errorf("output %s sum %v before restart, %v after (not identical data)",
				first.Outputs[i].Array, first.Outputs[i].Sum, second.Outputs[i].Sum)
		}
	}
	m1, err := s2.Output(second.ID, second.Outputs[0].Array)
	if err != nil {
		t.Fatal(err)
	}
	if m1 == nil {
		t.Fatal("nil output matrix")
	}
}

// A reopened server whose expected fill no longer matches the catalog
// (different seed → different fingerprint) must refill rather than serve
// the stale persisted data.
func TestServerRestartFingerprintMismatchRefills(t *testing.T) {
	progs := map[string]func() *prog.Program{"addmul-small": smallAddMul}
	dir := t.TempDir()
	cfg := Config{Dir: dir, Shards: 2, Persist: true, Seed: testSeed, Programs: progs}

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stale := runOne(t, s1, "addmul-small")
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	cfg.Seed = testSeed + 1 // the fill the server would produce changes
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	fresh := runOne(t, s2, "addmul-small")
	st := s2.Stats()
	if st.InputFills == 0 || st.InputFillsSkipped != 0 {
		t.Errorf("fingerprint mismatch did not force a refill: fills=%d skipped=%d", st.InputFills, st.InputFillsSkipped)
	}
	// Different seed, different data: serving the stale outputs would make
	// these sums match.
	same := true
	for i := range fresh.Outputs {
		if fresh.Outputs[i].Sum != stale.Outputs[i].Sum {
			same = false
		}
	}
	if same {
		t.Error("reopened server served results from the stale seed's data")
	}

	// And a matching reopen after the refill skips again, with the new
	// fingerprint.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	runOne(t, s3, "addmul-small")
	if st := s3.Stats(); st.InputFills != 0 || st.InputFillsSkipped == 0 {
		t.Errorf("third open after refill: fills=%d skipped=%d, want 0/>0", st.InputFills, st.InputFillsSkipped)
	}
}

// The degraded-restart acceptance test: with -replicas 2, deleting one
// shard directory and reopening must still answer every query with
// bit-identical results and ZERO refill writes — the lost shard's blocks
// are served from their replicas (DegradedReads > 0) — and after Repair the
// degraded reads return to zero, including across one more restart.
func TestServerRestartDegradedShardAndRepair(t *testing.T) {
	progs := map[string]func() *prog.Program{"addmul-small": smallAddMul}
	cfg := Config{
		Dir:      t.TempDir(),
		Shards:   3,
		Replicas: 2,
		Persist:  true,
		Seed:     testSeed,
		Programs: progs,
	}

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := runOne(t, s1, "addmul-small")
	if st := s1.Stats(); st.Replicas != 2 || st.DegradedReads != 0 {
		t.Fatalf("fresh server: replicas=%d degradedReads=%d, want 2/0", st.Replicas, st.DegradedReads)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Kill shard 1 outright: directory, manifest, block files, everything.
	if err := os.RemoveAll(filepath.Join(cfg.Dir, "shard-1")); err != nil {
		t.Fatal(err)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("reopen with a lost shard dir under 2-way replication failed: %v", err)
	}
	defer s2.Close()
	second := runOne(t, s2, "addmul-small")

	st2 := s2.Stats()
	// Zero refill writes: the catalog still covers every shared input.
	if st2.InputFills != 0 {
		t.Errorf("degraded reopen refilled %d inputs, want 0 (replicas cover the lost shard)", st2.InputFills)
	}
	if st2.InputFillsSkipped == 0 {
		t.Error("degraded reopen skipped no input fills — the catalog was not used")
	}
	// The lost shard's blocks were served from replicas.
	if st2.DegradedReads == 0 {
		t.Error("no degraded reads counted while shard 1 is down")
	}
	if len(st2.Shards) != 3 || !st2.Shards[1].Degraded {
		t.Fatalf("/stats does not mark shard 1 degraded: %+v", st2.Shards)
	}
	if st2.Shards[1].DegradedReads == 0 {
		t.Error("/stats counts no degraded reads against the lost shard")
	}
	// Bit-identical results despite the degradation.
	if first.Result == nil || second.Result == nil {
		t.Fatal("missing results")
	}
	r1, r2 := *first.Result, *second.Result
	if !sameResult(r1, r2) {
		t.Errorf("Result diverged across the degraded restart:\nfresh:    %+v\ndegraded: %+v", stripTimes(r1), stripTimes(r2))
	}
	if len(first.Outputs) == 0 || len(first.Outputs) != len(second.Outputs) {
		t.Fatalf("outputs: fresh %d vs degraded %d", len(first.Outputs), len(second.Outputs))
	}
	for i := range first.Outputs {
		if first.Outputs[i].Sum != second.Outputs[i].Sum {
			t.Errorf("output %s sum %v healthy, %v degraded (not identical data)",
				first.Outputs[i].Array, first.Outputs[i].Sum, second.Outputs[i].Sum)
		}
	}

	// Repair re-mirrors the shard in place; the degraded-read counter
	// returns to zero and stays there.
	if err := s2.RepairShard(1); err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.DegradedReads != 0 {
		t.Errorf("DegradedReads = %d after repair, want 0", st.DegradedReads)
	}
	if st.Shards[1].Degraded {
		t.Error("shard 1 still marked degraded after repair")
	}

	// One more restart: the repaired store reopens fully healthy and still
	// answers without refilling or falling back.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := New(cfg)
	if err != nil {
		t.Fatalf("reopen after repair: %v", err)
	}
	defer s3.Close()
	third := runOne(t, s3, "addmul-small")
	st3 := s3.Stats()
	if st3.InputFills != 0 || st3.InputFillsSkipped == 0 {
		t.Errorf("post-repair reopen: fills=%d skipped=%d, want 0/>0", st3.InputFills, st3.InputFillsSkipped)
	}
	if st3.DegradedReads != 0 {
		t.Errorf("post-repair reopen served %d degraded reads, want 0", st3.DegradedReads)
	}
	for i := range st3.Shards {
		if st3.Shards[i].Degraded {
			t.Errorf("shard %d still degraded after repair + reopen", i)
		}
	}
	r3 := *third.Result
	if !sameResult(r1, r3) {
		t.Errorf("Result diverged after repair:\nfresh:  %+v\nhealed: %+v", stripTimes(r1), stripTimes(r3))
	}
	for i := range first.Outputs {
		if first.Outputs[i].Sum != third.Outputs[i].Sum {
			t.Errorf("output %s sum %v healthy, %v after repair", first.Outputs[i].Array, first.Outputs[i].Sum, third.Outputs[i].Sum)
		}
	}
}

// A server reopening a store with a missing shard directory must fail with
// an error naming the shard — not silently rebuild half a store.
func TestServerRestartMissingShard(t *testing.T) {
	progs := map[string]func() *prog.Program{"addmul-small": smallAddMul}
	cfg := Config{Dir: t.TempDir(), Shards: 3, Persist: true, Seed: testSeed, Programs: progs}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runOne(t, s1, "addmul-small")
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	// Losing shard-1's manifest looks like a lost/wrong directory.
	if err := removeShardManifest(cfg.Dir, 1); err != nil {
		t.Fatal(err)
	}
	_, err = New(cfg)
	if err == nil {
		t.Fatal("reopen over a broken shard succeeded")
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Errorf("error does not name the broken shard: %v", err)
	}
}
