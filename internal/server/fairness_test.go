package server

import (
	"testing"
	"time"

	"riotshare/internal/prog"
)

// fairnessWorkload drives one server through the two-tenant scenario at
// K=1: a flooding tenant piles floodN queries into the queue, then a small
// tenant submits smallN queries behind them. It returns the final statuses
// of both groups.
func fairnessWorkload(t *testing.T, s *Server, floodTenant, smallTenant string, floodN, smallN int) (flood, small []QueryStatus) {
	t.Helper()
	floodIDs := make([]string, 0, floodN)
	for i := 0; i < floodN; i++ {
		id, err := s.Submit(Request{Program: "addmul-small", Tenant: floodTenant})
		if err != nil {
			t.Fatal(err)
		}
		floodIDs = append(floodIDs, id)
	}
	// Only submit the small tenant's queries once the flood has piled up
	// behind the single slot, so both schedulers face the same backlog.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Stats()
		if st.Running+st.Queued >= floodN-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flood never queued: %+v", st)
		}
		time.Sleep(200 * time.Microsecond)
	}
	smallIDs := make([]string, 0, smallN)
	for i := 0; i < smallN; i++ {
		id, err := s.Submit(Request{Program: "addmul-small", Tenant: smallTenant})
		if err != nil {
			t.Fatal(err)
		}
		smallIDs = append(smallIDs, id)
	}
	for _, id := range floodIDs {
		st, err := s.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("flood query %s: %s (%s)", id, st.State, st.Err)
		}
		flood = append(flood, st)
	}
	for _, id := range smallIDs {
		st, err := s.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("small query %s: %s (%s)", id, st.State, st.Err)
		}
		small = append(small, st)
	}
	return flood, small
}

// serverP95 returns the server-reported admission-wait p95 for a tenant —
// the governor's own histogram, surfaced through Stats (and /stats), which
// is what operators see. The test asserts against it rather than
// recomputing waits client-side.
func serverP95(t *testing.T, s *Server, tenant string) time.Duration {
	t.Helper()
	ts, ok := s.Stats().Tenants[tenant]
	if !ok {
		t.Fatalf("no server stats for tenant %q", tenant)
	}
	if ts.QueueWaitP95Ms < ts.QueueWaitP50Ms || ts.QueueWaitP99Ms < ts.QueueWaitP95Ms {
		t.Fatalf("tenant %q wait quantiles not monotone: p50=%v p95=%v p99=%v",
			tenant, ts.QueueWaitP50Ms, ts.QueueWaitP95Ms, ts.QueueWaitP99Ms)
	}
	return time.Duration(ts.QueueWaitP95Ms * float64(time.Millisecond))
}

// TestTenantFairnessVsFIFOBaseline is the governor's acceptance test: with
// one tenant flooding the queue and another submitting a handful of small
// queries behind the flood, the governor's round-robin must interleave the
// small tenant's queries into the flood — deterministically witnessed by
// flood queries still starting after the small tenant has fully finished —
// and the small tenant's p95 queue wait must beat the FIFO baseline, where
// the small queries sit behind the entire flood.
func TestTenantFairnessVsFIFOBaseline(t *testing.T) {
	const floodN, smallN = 8, 3
	progs := map[string]func() *prog.Program{"addmul-small": smallAddMul}

	// Governed run: two tenant labels → two round-robin queues. Simulated
	// device latency makes each query slow enough for the flood to pile up
	// behind the single slot, as it would on real storage.
	gov, err := New(Config{Dir: t.TempDir(), MaxConcurrent: 1, Seed: testSeed, Programs: progs})
	if err != nil {
		t.Fatal(err)
	}
	defer gov.Close()
	gov.Store().SetLatency(2*time.Millisecond, 2*time.Millisecond)
	flood, small := fairnessWorkload(t, gov, "flood", "small", floodN, smallN)

	// Interleaving witness: the small tenant finished while flood queries
	// were still being admitted.
	lastSmall := small[0].Finished
	for _, st := range small {
		if st.Finished.After(lastSmall) {
			lastSmall = st.Finished
		}
	}
	floodAfter := 0
	for _, st := range flood {
		if st.Started.After(lastSmall) {
			floodAfter++
		}
	}
	if floodAfter == 0 {
		t.Errorf("no flood query started after the small tenant finished: the flood was not interleaved")
	}

	// Per-tenant stats surfaced the two queues.
	stats := gov.Stats()
	if stats.Tenants["flood"].Finished != floodN || stats.Tenants["small"].Finished != smallN {
		t.Errorf("per-tenant finished counts = %+v", stats.Tenants)
	}
	if stats.Tenants["small"].AvgQueueWaitMs <= 0 {
		t.Errorf("small tenant AvgQueueWaitMs = %v, want > 0 (it did queue)", stats.Tenants["small"].AvgQueueWaitMs)
	}

	// FIFO baseline: the same backlog under one shared tenant label — the
	// original single-queue admission — makes the small queries wait out
	// the whole flood.
	fifo, err := New(Config{Dir: t.TempDir(), MaxConcurrent: 1, Seed: testSeed, Programs: progs})
	if err != nil {
		t.Fatal(err)
	}
	defer fifo.Close()
	fifo.Store().SetLatency(2*time.Millisecond, 2*time.Millisecond)
	fifoFlood, fifoSmall := fairnessWorkload(t, fifo, "", "", floodN, smallN)
	_, _ = fifoFlood, fifoSmall

	// Compare the server-reported p95 admission waits: the governed small
	// tenant against the same queries inside the FIFO baseline's single
	// queue (every FIFO query lands on the anonymous tenant "").
	govP95, fifoP95 := serverP95(t, gov, "small"), serverP95(t, fifo, "")
	t.Logf("small-tenant p95 queue wait: governed %v vs FIFO %v (flood started after small finished: %d/%d)",
		govP95, fifoP95, floodAfter, floodN)
	if govP95 >= fifoP95 {
		t.Errorf("governed small-tenant p95 wait %v not below the FIFO baseline %v", govP95, fifoP95)
	}
}
