package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
	"time"

	"riotshare/internal/baseline"
	"riotshare/internal/blas"
	"riotshare/internal/core"
	"riotshare/internal/disk"
	"riotshare/internal/exec"
	"riotshare/internal/prog"
	"riotshare/internal/storage"
)

// Options configures the experiment runners.
type Options struct {
	// Quick replaces full Apriori plan-space searches with the selected-plan
	// subsets where the full space is large (the linear-regression search
	// explores ~16k combinations and takes minutes otherwise).
	Quick bool
	// DataDir hosts the physical block files; empty = a fresh temp dir.
	DataDir string
	// Seed for synthetic input data.
	Seed int64
	// Workers and PrefetchDepth select the pipelined parallel engine for
	// physical runs (Workers <= 1 keeps the sequential interpreter);
	// measured logical volumes are identical either way.
	Workers       int
	PrefetchDepth int
}

func (o Options) dir() (string, func(), error) {
	if o.DataDir != "" {
		return o.DataDir, func() {}, nil
	}
	d, err := os.MkdirTemp("", "riotshare-bench-*")
	if err != nil {
		return "", nil, err
	}
	return d, func() { os.RemoveAll(d) }, nil
}

// actualModel is the measurement-side disk model: the same sustained rates
// as the prediction model plus a per-request overhead, so predicted and
// "actual" I/O times differ by a realistic, small amount (the paper's
// §6.1 reports 1.7% average error from the same effect).
func actualModel() disk.Model { return disk.RefinedModel(0.008) }

// FillInputs writes seeded random blocks for every array the program never
// writes, and returns the assembled full input matrices for reference
// computations.
func FillInputs(p *prog.Program, m storage.Backend, seed int64) (map[string]*blas.Matrix, error) {
	written := map[string]bool{}
	for _, st := range p.Stmts {
		if w := st.WriteAccess(); w != nil {
			written[w.Array] = true
		}
	}
	rng := rand.New(rand.NewSource(seed))
	full := map[string]*blas.Matrix{}
	names := make([]string, 0, len(p.Arrays))
	for name := range p.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		arr := p.Arrays[name]
		if written[name] {
			continue
		}
		fm := blas.NewMatrix(arr.BlockRows*arr.GridRows, arr.BlockCols*arr.GridCols)
		for i := range fm.Data {
			fm.Data[i] = rng.NormFloat64()
		}
		full[name] = fm
		for br := 0; br < arr.GridRows; br++ {
			for bc := 0; bc < arr.GridCols; bc++ {
				blk := blas.NewMatrix(arr.BlockRows, arr.BlockCols)
				for r := 0; r < arr.BlockRows; r++ {
					for c := 0; c < arr.BlockCols; c++ {
						blk.Set(r, c, fm.At(br*arr.BlockRows+r, bc*arr.BlockCols+c))
					}
				}
				if err := m.WriteBlock(name, int64(br), int64(bc), blk); err != nil {
					return nil, err
				}
			}
		}
	}
	return full, nil
}

// runPhysical executes a plan against real storage and returns the
// measured result (volumes are logical, paper scale).
func runPhysical(p *prog.Program, pl *core.EvaluatedPlan, dir string, opt Options) (exec.Result, error) {
	sub, err := os.MkdirTemp(dir, "plan-*")
	if err != nil {
		return exec.Result{}, err
	}
	defer os.RemoveAll(sub)
	m, err := storage.NewManager(sub, storage.FormatDAF)
	if err != nil {
		return exec.Result{}, err
	}
	defer m.Close()
	if err := m.CreateAll(p); err != nil {
		return exec.Result{}, err
	}
	if _, err := FillInputs(p, m, opt.Seed); err != nil {
		return exec.Result{}, err
	}
	eng := &exec.Engine{Store: m, Model: actualModel()}
	return eng.RunOptions(pl.Timeline, exec.Options{Workers: opt.Workers, PrefetchDepth: opt.PrefetchDepth})
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
func gb(b int64) float64 { return float64(b) / (1 << 30) }

// Table2 prints the §6.1 matrix configuration (Table 2).
func Table2(w io.Writer) error {
	p := AddMulPaper()
	return printSizeTable(w, "Table 2: matrix addition and multiplication — matrix sizes", p,
		[][]string{{"A", "B", "C"}, {"D"}, {"E"}})
}

// Table3 prints the §6.2 matrix configurations (Table 3).
func Table3(w io.Writer) error {
	if err := printSizeTable(w, "Table 3 (Config A): two matrix multiplications", TwoMMPaperA(),
		[][]string{{"A"}, {"B", "D"}, {"C", "E"}}); err != nil {
		return err
	}
	return printSizeTable(w, "Table 3 (Config B): two matrix multiplications", TwoMMPaperB(),
		[][]string{{"A"}, {"B"}, {"C"}, {"D"}, {"E"}})
}

// Table4 prints the §6.3 matrix configuration (Table 4).
func Table4(w io.Writer) error {
	return printSizeTable(w, "Table 4: linear regression — matrix sizes", LinRegPaper(),
		[][]string{{"X"}, {"Y", "Yh", "Ev"}, {"U", "W"}, {"V", "Bh"}})
}

func printSizeTable(w io.Writer, title string, p *prog.Program, groups [][]string) error {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-10s %-18s %-10s %-12s\n", "Matrix", "Logical block", "# Blocks", "Total size")
	for _, g := range groups {
		arr := p.Arrays[g[0]]
		if arr == nil {
			return fmt.Errorf("bench: unknown array %q", g[0])
		}
		names := ""
		for i, n := range g {
			if i > 0 {
				names += ","
			}
			names += n
		}
		total := arr.LogicalBlockBytes * int64(arr.GridRows) * int64(arr.GridCols)
		fmt.Fprintf(w, "%-10s %-18s %-10s %10.1fGB\n",
			names,
			fmt.Sprintf("%d B", arr.LogicalBlockBytes),
			fmt.Sprintf("%dx%d", arr.GridRows, arr.GridCols),
			gb(total))
	}
	fmt.Fprintln(w)
	return nil
}

// Fig3a prints the §6.1 plan space (Figure 3(a)): every legal plan's memory
// footprint and predicted I/O time, plus the ♣ enlarged-block variant.
func Fig3a(w io.Writer, opt Options) error {
	res, err := core.Optimize(AddMulPaper(), core.Options{BindParams: true})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 3(a): add+mul plan space (memory footprint vs predicted I/O time)")
	fmt.Fprintf(w, "%-5s %-12s %-12s %s\n", "plan", "mem (MB)", "I/O (s)", "sharing set")
	for _, pl := range res.Plans {
		fmt.Fprintf(w, "%-5d %-12.0f %-12.0f %s\n", pl.Index, mb(pl.Cost.PeakMemoryBytes), pl.Cost.IOTimeSec, pl.Label)
	}
	club, err := core.OptimizeSubsets(AddMulClubsuit(), core.Options{BindParams: true}, nil)
	if err != nil {
		return err
	}
	c := club.Baseline()
	fmt.Fprintf(w, "%-5s %-12.0f %-12.0f %s\n\n", "♣", mb(c.Cost.PeakMemoryBytes), c.Cost.IOTimeSec,
		"plan 0 with 9000-row blocks")
	return nil
}

// Fig3b executes every §6.1 plan and prints predicted vs actual I/O time
// plus measured CPU time (Figure 3(b)).
func Fig3b(w io.Writer, opt Options) error {
	res, err := core.Optimize(AddMulPaper(), core.Options{BindParams: true})
	if err != nil {
		return err
	}
	dir, cleanup, err := opt.dir()
	if err != nil {
		return err
	}
	defer cleanup()
	fmt.Fprintln(w, "Figure 3(b): add+mul predicted vs actual")
	return predictedVsActual(w, AddMulPaper(), res.Plans, dir, opt)
}

func predictedVsActual(w io.Writer, p *prog.Program, plans []core.EvaluatedPlan, dir string, opt Options) error {
	fmt.Fprintf(w, "%-5s %-14s %-12s %-10s %-10s %s\n",
		"plan", "predicted(s)", "actual(s)", "err(%)", "cpu(ms)", "sharing set")
	var errSum float64
	for i := range plans {
		pl := &plans[i]
		r, err := runPhysical(p, pl, dir, opt)
		if err != nil {
			return fmt.Errorf("plan %s: %w", pl.Label, err)
		}
		if r.ReadBytes != pl.Cost.ReadBytes || r.WriteBytes != pl.Cost.WriteBytes {
			return fmt.Errorf("plan %s: measured I/O volumes diverge from prediction", pl.Label)
		}
		e := math.Abs(pl.Cost.IOTimeSec-r.SimulatedIOSec) / r.SimulatedIOSec * 100
		errSum += e
		fmt.Fprintf(w, "%-5d %-14.0f %-12.0f %-10.2f %-10.1f %s\n",
			pl.Index, pl.Cost.IOTimeSec, r.SimulatedIOSec, e,
			float64(r.CPUTime.Microseconds())/1000, pl.Label)
	}
	fmt.Fprintf(w, "average prediction error: %.2f%% (paper: 1.7%% on this workload)\n\n",
		errSum/float64(len(plans)))
	return nil
}

// Fig4 reproduces §6.2 Configuration A (Figure 4): the plan space and the
// four selected plans, predicted vs actual.
func Fig4(w io.Writer, opt Options) error {
	return twoMMFig(w, opt, "Figure 4 (Config A)", TwoMMPaperA)
}

// Fig5 reproduces §6.2 Configuration B (Figure 5).
func Fig5(w io.Writer, opt Options) error {
	return twoMMFig(w, opt, "Figure 5 (Config B)", TwoMMPaperB)
}

func twoMMFig(w io.Writer, opt Options, title string, mk func() *prog.Program) error {
	res, err := core.Optimize(mk(), core.Options{BindParams: true})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: plan space — %d plans\n", title, len(res.Plans))
	fmt.Fprintf(w, "%-5s %-12s %-12s %s\n", "plan", "mem (MB)", "I/O (s)", "sharing set")
	for _, pl := range res.Plans {
		fmt.Fprintf(w, "%-5d %-12.0f %-12.0f %s\n", pl.Index, mb(pl.Cost.PeakMemoryBytes), pl.Cost.IOTimeSec, pl.Label)
	}
	fmt.Fprintln(w)

	sel, err := core.OptimizeSubsets(mk(), core.Options{BindParams: true}, TwoMMSelectedPlans())
	if err != nil {
		return err
	}
	dir, cleanup, err := opt.dir()
	if err != nil {
		return err
	}
	defer cleanup()
	fmt.Fprintf(w, "%s: selected plans (0 = no sharing; 1 = accumulate C,E; 2 = 1 + share A; 3 = share A,B,D)\n", title)
	return predictedVsActual(w, mk(), sel.Plans, dir, opt)
}

// Fig6 reproduces §6.3 (Figure 6): the linear-regression plan space (full
// Apriori search unless Quick) and the three selected plans.
func Fig6(w io.Writer, opt Options) error {
	if !opt.Quick {
		res, err := core.Optimize(LinRegPaper(), core.Options{BindParams: true})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Figure 6(a): linear regression plan space — %d plans (%d FindSchedule calls, %v)\n",
			len(res.Plans), res.SearchStats.FindScheduleCalls, res.OptimizeTime.Round(time.Millisecond))
		best := &res.Plans[0]
		base := res.Baseline()
		fmt.Fprintf(w, "best plan: mem %.0fMB, I/O %.0fs (%s)\n", mb(best.Cost.PeakMemoryBytes), best.Cost.IOTimeSec, best.Label)
		fmt.Fprintf(w, "plan 0:    mem %.0fMB, I/O %.0fs\n", mb(base.Cost.PeakMemoryBytes), base.Cost.IOTimeSec)
		fmt.Fprintf(w, "I/O saving %.1f%% for %.1f%% more memory (paper: 43.8%% saving for 6.0%% more memory)\n\n",
			(1-best.Cost.IOTimeSec/base.Cost.IOTimeSec)*100,
			(float64(best.Cost.PeakMemoryBytes)/float64(base.Cost.PeakMemoryBytes)-1)*100)
	}
	sel, err := core.OptimizeSubsets(LinRegPaper(), core.Options{BindParams: true}, LinRegSelectedPlans())
	if err != nil {
		return err
	}
	dir, cleanup, err := opt.dir()
	if err != nil {
		return err
	}
	defer cleanup()
	fmt.Fprintln(w, "Figure 6(b): selected plans (0 = no sharing; 1 = keep U,V in memory; 2 = best: share X reads + pipeline intermediates)")
	return predictedVsActual(w, LinRegPaper(), sel.Plans, dir, opt)
}

// OptTime reproduces §6's "A Note on Optimization Time": wall-clock
// optimization time per program, and its independence from data scale.
func OptTime(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Optimization time (§6; paper: 0.6s add+mul, 2.1s two-mm, 156.7s linreg in single-threaded Python)")
	run := func(name string, p *prog.Program, full bool) error {
		t0 := time.Now()
		var calls int
		if full {
			res, err := core.Optimize(p, core.Options{BindParams: true})
			if err != nil {
				return err
			}
			calls = res.SearchStats.FindScheduleCalls
		} else {
			res, err := core.OptimizeSubsets(p, core.Options{BindParams: true}, LinRegSelectedPlans())
			if err != nil {
				return err
			}
			calls = res.SearchStats.FindScheduleCalls
		}
		fmt.Fprintf(w, "%-22s %10v  (%d FindSchedule calls)\n", name, time.Since(t0).Round(time.Millisecond), calls)
		return nil
	}
	if err := run("add+mul (full)", AddMulPaper(), true); err != nil {
		return err
	}
	if err := run("two-mm A (full)", TwoMMPaperA(), true); err != nil {
		return err
	}
	if err := run("two-mm B (full)", TwoMMPaperB(), true); err != nil {
		return err
	}
	lrName := "linreg (selected)"
	lrFull := false
	if !opt.Quick {
		lrName, lrFull = "linreg (full)", true
	}
	if err := run(lrName, LinRegPaper(), lrFull); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

// Scales reproduces §6's "Datasets of Different Scales": the same program
// template at different scales yields the same plan structure and the same
// optimization time; costs scale with the data.
func Scales(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Datasets of different scales (§6): plan structure and optimization time are scale-invariant")
	fmt.Fprintf(w, "%-8s %-8s %-12s %-14s %s\n", "scale", "plans", "opt time", "best I/O (s)", "best plan")
	var prevLabel string
	for _, scale := range []int{1, 5, 10} {
		res, err := core.Optimize(AddMulScaled(scale), core.Options{BindParams: true})
		if err != nil {
			return err
		}
		best := &res.Plans[0]
		fmt.Fprintf(w, "%-8d %-8d %-12v %-14.1f %s\n",
			scale, len(res.Plans), res.OptimizeTime.Round(time.Millisecond), best.Cost.IOTimeSec, best.Label)
		if prevLabel != "" && best.Label != prevLabel {
			return fmt.Errorf("bench: best plan changed across scales")
		}
		prevLabel = best.Label
	}
	fmt.Fprintln(w)
	return nil
}

// Compare reproduces the §6.1 system comparison with the simulated
// stand-ins (DESIGN.md substitution S5): RIOTShare's best plan vs
// operator-at-a-time (Matlab-like), chunk-at-a-time without sharing
// (SciDB-like), and an LRU buffer pool given the best plan's memory.
func Compare(w io.Writer, opt Options) error {
	p := AddMulPaper()
	res, err := core.Optimize(p, core.Options{BindParams: true})
	if err != nil {
		return err
	}
	best := &res.Plans[0]
	opAtATime, err := baseline.OperatorAtATime(AddMulPaper(), core.Options{BindParams: true})
	if err != nil {
		return err
	}
	noShare, err := baseline.NoSharing(AddMulPaper(), core.Options{BindParams: true})
	if err != nil {
		return err
	}
	// LRU run needs physical execution.
	dir, cleanup, err := opt.dir()
	if err != nil {
		return err
	}
	defer cleanup()
	m, err := storage.NewManager(dir, storage.FormatDAF)
	if err != nil {
		return err
	}
	defer m.Close()
	if err := m.CreateAll(p); err != nil {
		return err
	}
	if _, err := FillInputs(p, m, opt.Seed); err != nil {
		return err
	}
	lru := &baseline.LRUEngine{Store: m, Model: disk.PaperModel(), CapBytes: best.Cost.PeakMemoryBytes}
	lruRes, err := lru.Run(res.Baseline().Timeline)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "System comparison (§6.1; Matlab-like = operator-at-a-time blocked, SciDB-like = chunk-at-a-time, LRU = buffer pool with the best plan's memory)")
	fmt.Fprintf(w, "%-34s %-12s %-10s\n", "engine", "I/O (s)", "vs best")
	row := func(name string, io float64) {
		fmt.Fprintf(w, "%-34s %-12.0f %-10.2fx\n", name, io, io/best.Cost.IOTimeSec)
	}
	row("RIOTShare best plan", best.Cost.IOTimeSec)
	row("operator-at-a-time (Matlab-like)", opAtATime.Cost.IOTimeSec)
	row("no sharing (SciDB-like)", noShare.Cost.IOTimeSec)
	row("LRU buffer pool, same memory", lruRes.SimulatedIOSec)
	fmt.Fprintln(w)
	return nil
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, opt Options) error {
	steps := []struct {
		name string
		fn   func(io.Writer, Options) error
	}{
		{"table2", func(w io.Writer, _ Options) error { return Table2(w) }},
		{"table3", func(w io.Writer, _ Options) error { return Table3(w) }},
		{"table4", func(w io.Writer, _ Options) error { return Table4(w) }},
		{"fig3a", Fig3a},
		{"fig3b", Fig3b},
		{"fig4", Fig4},
		{"fig5", Fig5},
		{"fig6", Fig6},
		{"opttime", OptTime},
		{"scales", Scales},
		{"compare", Compare},
	}
	for _, s := range steps {
		if err := s.fn(w, opt); err != nil {
			return fmt.Errorf("bench: %s: %w", s.name, err)
		}
	}
	return nil
}
