package bench

import (
	"bytes"
	"io"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"riotshare/internal/core"
	"riotshare/internal/storage"
)

func opts() Options { return Options{Quick: true, Seed: 1} }

func TestTablesRender(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(&buf); err != nil {
		t.Fatal(err)
	}
	if err := Table3(&buf); err != nil {
		t.Fatal(err)
	}
	if err := Table4(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Paper totals: 25.6-25.7GB for A,B,C; 44.7GB for X.
	for _, want := range []string{"25.7GB", "44.7GB", "A,B,C", "Matrix"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables missing %q in:\n%s", want, out)
		}
	}
}

func TestFig3aShapes(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig3a(&buf, opts()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "♣") {
		t.Error("♣ variant missing")
	}
	// Every plan line carries a sharing set.
	if !strings.Contains(out, "{s1WC→s2RC, s2WE→s2RE, s2WE→s2WE}") {
		t.Errorf("Plan 7 sharing set missing:\n%s", out)
	}
}

func TestFig3bErrorSmall(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig3b(&buf, opts()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	re := regexp.MustCompile(`average prediction error: ([0-9.]+)%`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no error summary in:\n%s", out)
	}
	v, _ := strconv.ParseFloat(m[1], 64)
	if v > 2.0 {
		t.Errorf("average prediction error %.2f%% exceeds the paper's regime", v)
	}
}

func TestFig4Fig5Crossover(t *testing.T) {
	// Plan 2 wins under Config A; Plan 3 wins under Config B (§6.2's key
	// observation).
	sel := TwoMMSelectedPlans()
	plan2, plan3 := sel[1], sel[2]
	resA, err := core.OptimizeSubsets(TwoMMPaperA(), core.Options{BindParams: true}, sel)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := core.OptimizeSubsets(TwoMMPaperB(), core.Options{BindParams: true}, sel)
	if err != nil {
		t.Fatal(err)
	}
	a2, a3 := resA.PlanBySharing(plan2...), resA.PlanBySharing(plan3...)
	b2, b3 := resB.PlanBySharing(plan2...), resB.PlanBySharing(plan3...)
	if a2 == nil || a3 == nil || b2 == nil || b3 == nil {
		t.Fatal("selected plans missing")
	}
	if a2.Cost.IOTimeSec >= a3.Cost.IOTimeSec {
		t.Errorf("Config A: Plan 2 (%.0f) should beat Plan 3 (%.0f)", a2.Cost.IOTimeSec, a3.Cost.IOTimeSec)
	}
	if b3.Cost.IOTimeSec >= b2.Cost.IOTimeSec {
		t.Errorf("Config B: Plan 3 (%.0f) should beat Plan 2 (%.0f)", b3.Cost.IOTimeSec, b2.Cost.IOTimeSec)
	}
}

func TestFig6SavingMatchesPaper(t *testing.T) {
	// The paper's headline: the best linreg plan saves 43.8% I/O time over
	// Plan 0 using ~6% more memory.
	res, err := core.OptimizeSubsets(LinRegPaper(), core.Options{BindParams: true}, LinRegSelectedPlans())
	if err != nil {
		t.Fatal(err)
	}
	base := res.Baseline()
	best := &res.Plans[0]
	saving := (1 - best.Cost.IOTimeSec/base.Cost.IOTimeSec) * 100
	if saving < 38 || saving < 0 || saving > 50 {
		t.Errorf("I/O saving %.1f%% far from the paper's 43.8%%", saving)
	}
	memIncrease := (float64(best.Cost.PeakMemoryBytes)/float64(base.Cost.PeakMemoryBytes) - 1) * 100
	if memIncrease < 0 || memIncrease > 20 {
		t.Errorf("memory increase %.1f%% far from the paper's 6.0%%", memIncrease)
	}
	t.Logf("saving %.1f%% (paper 43.8%%), memory +%.1f%% (paper +6.0%%)", saving, memIncrease)
}

func TestCompareOrdering(t *testing.T) {
	var buf bytes.Buffer
	if err := Compare(&buf, opts()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Extract the "vs best" multipliers in printed order: best, Matlab-like,
	// SciDB-like, LRU.
	re := regexp.MustCompile(`([0-9.]+)\s*x`)
	ms := re.FindAllStringSubmatch(out, -1)
	if len(ms) != 4 {
		t.Fatalf("expected 4 engines, got %d:\n%s", len(ms), out)
	}
	vals := make([]float64, 4)
	for i, m := range ms {
		vals[i], _ = strconv.ParseFloat(m[1], 64)
	}
	if vals[0] != 1.0 {
		t.Errorf("best plan should be 1.00x, got %v", vals[0])
	}
	for i := 1; i < 4; i++ {
		if vals[i] <= 1.0 {
			t.Errorf("engine %d should be worse than the best plan: %vx", i, vals[i])
		}
	}
}

func TestScalesConsistency(t *testing.T) {
	var buf bytes.Buffer
	if err := Scales(&buf, opts()); err != nil {
		t.Fatal(err)
	}
}

func TestOptTimeRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := OptTime(&buf, opts()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FindSchedule calls") {
		t.Error("optimization-time report incomplete")
	}
}

func TestFillInputsSkipsOutputs(t *testing.T) {
	p := AddMulPaper()
	// FillInputs must not create blocks for written arrays (C, E).
	// Use a throwaway manager.
	dir := t.TempDir()
	m, err := newTestManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.CreateAll(p); err != nil {
		t.Fatal(err)
	}
	full, err := FillInputs(p, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := full["C"]; ok {
		t.Error("C is written by the program and must not be filled")
	}
	for _, name := range []string{"A", "B", "D"} {
		if _, ok := full[name]; !ok {
			t.Errorf("input %s missing", name)
		}
	}
}

func newTestManager(dir string) (*storage.Manager, error) {
	return storage.NewManager(dir, storage.FormatDAF)
}

// Fig4/Fig5/Fig6 runners end to end (quick mode), and RunAll with the same
// options — covering the report-generation paths the expdriver uses.
func TestFigureRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure runners skipped in -short mode")
	}
	var buf bytes.Buffer
	for name, fn := range map[string]func(io.Writer, Options) error{
		"fig4": Fig4, "fig5": Fig5, "fig6": Fig6,
	} {
		if err := fn(&buf, opts()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if !strings.Contains(buf.String(), "average prediction error") {
		t.Fatal("figures should report prediction error")
	}
}
