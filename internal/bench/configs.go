// Package bench is the experiment harness: it builds the paper's three
// benchmark programs at the exact block-grid configurations of Tables 2-4
// (paper-scale logical byte sizes over scaled-down physical blocks,
// DESIGN.md substitution S5) and regenerates every table and figure of the
// evaluation section (§6).
package bench

import (
	"riotshare/internal/ops"
	"riotshare/internal/prog"
)

// AddMulPaper is the §6.1 configuration (Table 2): A, B, C with 6000×4000
// blocks in a 12×12 grid (25.6 GB each); D with 4000×5000 blocks, 12×1
// (1.8 GB); E 6000×5000, 12×1 (2.7 GB).
func AddMulPaper() *prog.Program {
	return ops.AddMul(ops.AddMulConfig{
		N1: 12, N2: 12, N3: 1,
		ABBlock:   ops.Dims{Rows: 6, Cols: 4},
		DBlock:    ops.Dims{Rows: 4, Cols: 5},
		LogicalAB: ops.Dims{Rows: 6000, Cols: 4000},
		LogicalD:  ops.Dims{Rows: 4000, Cols: 5000},
	})
}

// AddMulClubsuit is the ♣ variant of §6.1: Plan 0 with A, B, C, E block
// rows enlarged from 6000 to 9000.
func AddMulClubsuit() *prog.Program {
	return ops.AddMul(ops.AddMulConfig{
		N1: 8, N2: 12, N3: 1,
		ABBlock:   ops.Dims{Rows: 9, Cols: 4},
		DBlock:    ops.Dims{Rows: 4, Cols: 5},
		LogicalAB: ops.Dims{Rows: 9000, Cols: 4000},
		LogicalD:  ops.Dims{Rows: 4000, Cols: 5000},
	})
}

// TwoMMPaperA is §6.2 Configuration A (Table 3): A 8000×7000 blocks in 6×6
// (15.2 GB); B, D 7000×3000 in 6×10 (9.2 GB); C, E 8000×3000 in 6×10
// (10.8 GB).
func TwoMMPaperA() *prog.Program {
	return ops.TwoMM(ops.TwoMMConfig{
		N1: 6, N2: 10, N3: 6, N4: 10,
		ABlock:   ops.Dims{Rows: 8, Cols: 7},
		BBlock:   ops.Dims{Rows: 7, Cols: 3},
		DBlock:   ops.Dims{Rows: 7, Cols: 3},
		LogicalA: ops.Dims{Rows: 8000, Cols: 7000},
		LogicalB: ops.Dims{Rows: 7000, Cols: 3000},
		LogicalD: ops.Dims{Rows: 7000, Cols: 3000},
	})
}

// TwoMMPaperB is §6.2 Configuration B (Table 3): A 2000×8000 in 18×6
// (12.8 GB); B 8000×6000 in 6×4 (8.4 GB); C 2000×6000 in 18×4 (6.4 GB);
// D 8000×7000 in 6×4 (10.0 GB); E 2000×7000 in 18×4 (7.6 GB).
func TwoMMPaperB() *prog.Program {
	return ops.TwoMM(ops.TwoMMConfig{
		N1: 18, N2: 4, N3: 6, N4: 4,
		ABlock:   ops.Dims{Rows: 2, Cols: 8},
		BBlock:   ops.Dims{Rows: 8, Cols: 6},
		DBlock:   ops.Dims{Rows: 8, Cols: 7},
		LogicalA: ops.Dims{Rows: 2000, Cols: 8000},
		LogicalB: ops.Dims{Rows: 8000, Cols: 6000},
		LogicalD: ops.Dims{Rows: 8000, Cols: 7000},
	})
}

// LinRegPaper is the §6.3 configuration (Table 4): X with 60000×4000
// blocks in a 25×1 grid (44.7 GB); Y, Ŷ, E 60000×400, 25×1 (4.5 GB); U, W
// single 4000×4000 blocks (122.1 MB); V, β̂ 4000×400 (12.2 MB).
func LinRegPaper() *prog.Program {
	return ops.LinReg(ops.LinRegConfig{
		N:        25,
		XBlock:   ops.Dims{Rows: 60, Cols: 40},
		YBlock:   ops.Dims{Rows: 60, Cols: 4},
		LogicalX: ops.Dims{Rows: 60000, Cols: 4000},
		LogicalY: ops.Dims{Rows: 60000, Cols: 400},
	})
}

// TwoMMSelectedPlans are the four §6.2 plans shown in Figures 4(b)/5(b):
// Plan 0 (no sharing), Plan 1 (accumulate C and E in memory), Plan 2
// (Plan 1 plus sharing the read of A across the multiplications), Plan 3
// (share A, B and D reads instead of accumulating C and E).
func TwoMMSelectedPlans() [][]string {
	return [][]string{
		{"s1WC→s1RC", "s1WC→s1WC", "s2WE→s2RE", "s2WE→s2WE"},
		{"s1WC→s1RC", "s1WC→s1WC", "s2WE→s2RE", "s2WE→s2WE", "s1RA→s2RA"},
		{"s1RA→s2RA", "s1RB→s1RB", "s2RD→s2RD"},
	}
}

// LinRegSelectedPlans are the three §6.3 plans of Figure 6(b): Plan 0 (no
// sharing), Plan 1 (keep the accumulators U and V in memory during the two
// multiplications), Plan 2 (the best plan: additionally share the reads of
// X between the multiplications and pipeline every intermediate).
func LinRegSelectedPlans() [][]string {
	return [][]string{
		{"s1WU→s1RU", "s1WU→s1WU", "s2WV→s2RV", "s2WV→s2WV"},
		{
			"s1RX→s2RX",
			"s1WU→s1RU", "s1WU→s1WU", "s2WV→s2RV", "s2WV→s2WV",
			"s1WU→s3RU", "s2WV→s4RV", "s3WW→s4RW", "s4WBh→s5RBh",
			"s5WYh→s6RYh", "s6WEv→s7REv",
		},
	}
}

// AddMulScaled returns the §6.1 template at a different data scale
// (logical sizes multiplied by scale), for the scale-consistency
// experiment.
func AddMulScaled(scale int) *prog.Program {
	return ops.AddMul(ops.AddMulConfig{
		N1: 12, N2: 12, N3: 1,
		ABBlock:   ops.Dims{Rows: 6, Cols: 4},
		DBlock:    ops.Dims{Rows: 4, Cols: 5},
		LogicalAB: ops.Dims{Rows: 600 * scale, Cols: 400 * scale},
		LogicalD:  ops.Dims{Rows: 400 * scale, Cols: 500 * scale},
	})
}
