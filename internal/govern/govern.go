// Package govern is the multi-tenant admission governor of the multi-query
// service: it decides which waiting query runs next on the K execution
// slots under a global memory cap. Where the original admission controller
// was one FIFO queue (a flooding tenant starves everyone behind it), the
// governor keeps one FIFO queue per tenant and serves the queues by
// weighted deficit round-robin — every tenant with waiting queries earns
// admission credits proportional to its weight on each rotation, so a
// tenant submitting thousands of queries gets its fair share of slots and
// no more, while per-tenant concurrency and memory quotas bound what a
// single tenant may hold at once.
//
// Within one tenant's queue the governor optionally applies shared-input
// affinity batching: among the tenant's admissible queries it prefers the
// one whose input arrays overlap most with blocks currently resident in
// the shared buffer pool, so pool hits compound (queries over the same
// inputs run back-to-back instead of interleaving with pool-cold work). An
// aging guard bounds how often the queue head may be bypassed, so affinity
// cannot starve within a tenant either.
package govern

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// TenantConfig bounds and weights one tenant.
type TenantConfig struct {
	// Weight is the tenant's deficit-round-robin weight (admissions earned
	// per rotation; <= 0 = 1).
	Weight int `json:"weight,omitempty"`
	// MaxConcurrent caps the tenant's concurrently running queries
	// (0 = only the global K applies).
	MaxConcurrent int `json:"maxConcurrent,omitempty"`
	// MemBytes caps the combined plan peak memory of the tenant's running
	// queries (0 = only the global cap applies). A single plan exceeding
	// it fails at admission rather than waiting forever.
	MemBytes int64 `json:"memBytes,omitempty"`
}

// Config sizes the governor.
type Config struct {
	// MaxConcurrent is K, the global concurrently-running query bound
	// (<= 0 = 2).
	MaxConcurrent int
	// GlobalMemBytes caps the combined peak (logical) memory of admitted
	// plans (0 = unlimited). A plan alone exceeding it fails at admission.
	GlobalMemBytes int64
	// Tenants configures weights and quotas per tenant label; absent
	// tenants (including the anonymous tenant "") get weight 1 and no
	// per-tenant bounds.
	Tenants map[string]TenantConfig
	// Affinity, when set, is called once per dispatch round and returns a
	// scorer of a waiting query's input arrays against the shared pool
	// (bytes already resident) — so the pool is snapshotted once however
	// many queries are queued. Among one tenant's admissible queries the
	// highest score is admitted first; nil keeps strict FIFO within each
	// tenant.
	Affinity func() func(inputs []string) int64
	// MaxAffinitySkips bounds how many times affinity may bypass a
	// tenant's queue head before the head is forced (<= 0 = 8).
	MaxAffinitySkips int
	// OnGrant, when set, is called once per granted admission with the
	// tenant label and the queue wait (Admit call to grant), outside
	// the governor's locks. The server uses it to feed admission-wait
	// telemetry histograms.
	OnGrant func(tenant string, wait time.Duration)
}

// deficitCap bounds accumulated round-robin credit (in units of the
// tenant's weight): a tenant briefly unable to use its turns may burst a
// little when unblocked, but not monopolize the slots.
const deficitCap = 4

// waiter is one query waiting for admission.
type waiter struct {
	peak   int64
	inputs []string
	skips  int
	ready  chan struct{}
}

// tenantQueue is one tenant's FIFO of waiters plus its running footprint
// and round-robin deficit.
type tenantQueue struct {
	name    string
	cfg     TenantConfig
	deficit int
	// inTurn marks a round-robin turn interrupted by full slots: the
	// dispatcher resumes it without crediting a fresh quantum.
	inTurn bool
	// memSkips counts dispatch rounds that admitted other tenants' work
	// while this tenant's head was blocked solely by the global memory
	// cap; past the starvation guard the head gets the next admission.
	memSkips int
	running  int
	memUse   int64
	waiters  []*waiter
}

func (tq *tenantQueue) weight() int {
	if tq.cfg.Weight > 0 {
		return tq.cfg.Weight
	}
	return 1
}

// Governor is the tenant-aware admission controller. The zero value is not
// usable; create one with New.
type Governor struct {
	k        int
	memCap   int64
	cfg      map[string]TenantConfig
	affinity func() func(inputs []string) int64
	maxSkips int
	onGrant  func(tenant string, wait time.Duration)

	mu      sync.Mutex
	running int
	memUse  int64
	queues  map[string]*tenantQueue
	ring    []*tenantQueue // tenants with waiters, in rotation order
	next    int            // persistent round-robin pointer into ring
	closed  chan struct{}

	// waits holds per-tenant admission-wait samples (Admit call → grant).
	// Kept outside the tenant queues, which are reclaimed when drained:
	// wait quantiles describe the governor's whole history. Bounded at
	// maxWaitTenants windows (tenant labels are client-supplied strings);
	// past the cap the longest-idle window is evicted.
	waits    map[string]*waitWindow
	grantSeq int64
}

// waitSamples bounds the per-tenant admission-wait window: a ring of the
// most recent grants, enough for stable p99 estimates without unbounded
// growth in a long-running daemon.
const waitSamples = 4096

// maxWaitTenants bounds how many tenants' wait windows the governor keeps
// (a window is up to 32KB, and clients choose the tenant strings).
const maxWaitTenants = 512

// waitWindow is one tenant's sliding window of admission waits.
type waitWindow struct {
	count   int64 // grants ever recorded
	lastSeq int64 // grant sequence of the latest record, for idle eviction
	samples []time.Duration
	next    int // ring position once len(samples) == waitSamples
}

func (w *waitWindow) record(d time.Duration) {
	w.count++
	if len(w.samples) < waitSamples {
		w.samples = append(w.samples, d)
		return
	}
	w.samples[w.next] = d
	w.next = (w.next + 1) % waitSamples
}

// waitQuantile returns the q-th (0..1] quantile of a sorted sample set.
func waitQuantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted))*q+0.999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// New creates a governor.
func New(cfg Config) *Governor {
	k := cfg.MaxConcurrent
	if k <= 0 {
		k = 2
	}
	skips := cfg.MaxAffinitySkips
	if skips <= 0 {
		skips = 8
	}
	return &Governor{
		k:        k,
		memCap:   cfg.GlobalMemBytes,
		cfg:      cfg.Tenants,
		affinity: cfg.Affinity,
		maxSkips: skips,
		onGrant:  cfg.OnGrant,
		queues:   make(map[string]*tenantQueue),
		waits:    make(map[string]*waitWindow),
		closed:   make(chan struct{}),
	}
}

func (g *Governor) queueLocked(tenant string) *tenantQueue {
	tq := g.queues[tenant]
	if tq == nil {
		tq = &tenantQueue{name: tenant, cfg: g.cfg[tenant]}
		g.queues[tenant] = tq
	}
	return tq
}

// Admit blocks until the query may run: the global K and memory cap fit,
// the tenant's own quotas fit, and the tenant's round-robin turn comes up.
// Oversized requests — a plan that can never fit the global or tenant
// memory cap — fail immediately instead of starving the queue. Pair every
// successful Admit with a Release.
func (g *Governor) Admit(tenant string, peak int64, inputs []string) error {
	select {
	case <-g.closed:
		return errors.New("govern: closed")
	default:
	}
	if g.memCap > 0 && peak > g.memCap {
		return fmt.Errorf("govern: plan peak memory %d bytes exceeds the global cap %d", peak, g.memCap)
	}
	if tc, ok := g.cfg[tenant]; ok && tc.MemBytes > 0 && peak > tc.MemBytes {
		return fmt.Errorf("govern: plan peak memory %d bytes exceeds tenant %q's quota %d", peak, tenant, tc.MemBytes)
	}
	w := &waiter{peak: peak, inputs: inputs, ready: make(chan struct{})}
	enqueued := time.Now()
	g.mu.Lock()
	tq := g.queueLocked(tenant)
	tq.waiters = append(tq.waiters, w)
	if len(tq.waiters) == 1 {
		g.ring = append(g.ring, tq) // joins the rotation at the tail
	}
	g.dispatchLocked()
	g.mu.Unlock()
	select {
	case <-w.ready:
		g.recordWait(tenant, time.Since(enqueued))
		return nil
	case <-g.closed:
		g.mu.Lock()
		for i, qw := range tq.waiters {
			if qw == w {
				tq.waiters = append(tq.waiters[:i], tq.waiters[i+1:]...)
				if len(tq.waiters) == 0 {
					g.unringLocked(tq)
				}
				break
			}
		}
		// The close may have raced an admission grant.
		select {
		case <-w.ready:
			g.mu.Unlock()
			g.recordWait(tenant, time.Since(enqueued))
			return nil
		default:
		}
		g.cleanupLocked(tq)
		g.mu.Unlock()
		return errors.New("govern: closed")
	}
}

// Release returns an admitted query's slot and memory and wakes whatever
// the round-robin now owes a turn.
func (g *Governor) Release(tenant string, peak int64) {
	g.mu.Lock()
	g.running--
	g.memUse -= peak
	if tq := g.queues[tenant]; tq != nil {
		tq.running--
		tq.memUse -= peak
		g.cleanupLocked(tq)
	}
	g.dispatchLocked()
	g.mu.Unlock()
}

// unringLocked removes an emptied tenant queue from the rotation, keeping
// the round-robin pointer on the element that followed it.
func (g *Governor) unringLocked(tq *tenantQueue) {
	for i, q := range g.ring {
		if q == tq {
			g.ring = append(g.ring[:i], g.ring[i+1:]...)
			if i < g.next {
				g.next--
			}
			if len(g.ring) > 0 {
				g.next %= len(g.ring)
			} else {
				g.next = 0
			}
			break
		}
	}
	tq.deficit = 0 // DRR: an emptied queue forfeits saved credit
	tq.inTurn = false
	tq.memSkips = 0
}

// cleanupLocked drops a tenant queue that holds no state worth keeping.
func (g *Governor) cleanupLocked(tq *tenantQueue) {
	if tq.running == 0 && len(tq.waiters) == 0 && tq.memUse == 0 {
		delete(g.queues, tq.name)
	}
}

// fitsLocked reports whether one waiter fits the global and tenant memory
// footprints (the K slots and tenant concurrency are checked separately).
func (g *Governor) fitsLocked(tq *tenantQueue, w *waiter) bool {
	if g.memCap > 0 && g.memUse+w.peak > g.memCap {
		return false
	}
	if tq.cfg.MemBytes > 0 && tq.memUse+w.peak > tq.cfg.MemBytes {
		return false
	}
	return true
}

// admissibleLocked reports whether the tenant could admit right now if a
// slot were free: its concurrency quota has room and its queue head fits
// the memory caps (the head blocks its queue, see pickLocked). Unlike
// pickLocked it has no side effects, so the dispatcher may probe freely.
func (g *Governor) admissibleLocked(tq *tenantQueue) bool {
	if tq.cfg.MaxConcurrent > 0 && tq.running >= tq.cfg.MaxConcurrent {
		return false
	}
	if len(tq.waiters) == 0 {
		return false
	}
	return g.fitsLocked(tq, tq.waiters[0])
}

// pickLocked chooses the tenant's next admissible waiter: the FIFO head
// unless affinity batching (score, nil when disabled) finds a waiter whose
// inputs overlap more with the pooled blocks (bounded by the aging guard),
// -1 when nothing may run. The head blocks its queue while it does not fit
// the memory caps — as in the original FIFO, later small plans never
// starve a waiting big one within a tenant.
func (g *Governor) pickLocked(tq *tenantQueue, score func([]string) int64) int {
	if !g.admissibleLocked(tq) {
		return -1
	}
	head := tq.waiters[0]
	if score == nil || len(tq.waiters) == 1 {
		return 0
	}
	if head.skips >= g.maxSkips {
		return 0 // aging guard: the head has been bypassed enough
	}
	best, bestScore := 0, score(head.inputs)
	for i := 1; i < len(tq.waiters); i++ {
		w := tq.waiters[i]
		if !g.fitsLocked(tq, w) {
			continue
		}
		if s := score(w.inputs); s > bestScore {
			best, bestScore = i, s
		}
	}
	if best != 0 {
		head.skips++
	}
	return best
}

// globallyMemBlockedLocked reports that the tenant's head would run right
// now if only the global memory cap had room: its own quotas fit, the
// global cap alone holds it back.
func (g *Governor) globallyMemBlockedLocked(tq *tenantQueue) bool {
	if len(tq.waiters) == 0 {
		return false
	}
	if tq.cfg.MaxConcurrent > 0 && tq.running >= tq.cfg.MaxConcurrent {
		return false
	}
	head := tq.waiters[0]
	if tq.cfg.MemBytes > 0 && tq.memUse+head.peak > tq.cfg.MemBytes {
		return false
	}
	return g.memCap > 0 && g.memUse+head.peak > g.memCap
}

// memStarvedLocked returns the tenant most overdue under the starvation
// guard: its head has been passed over solely for global memory at least
// maxSkips dispatch rounds in a row. Nil when no tenant is starved.
func (g *Governor) memStarvedLocked() *tenantQueue {
	var starved *tenantQueue
	for _, tq := range g.ring {
		if tq.memSkips >= g.maxSkips && (g.admissibleLocked(tq) || g.globallyMemBlockedLocked(tq)) {
			if starved == nil || tq.memSkips > starved.memSkips {
				starved = tq
			}
		}
	}
	return starved
}

// dispatchLocked runs the weighted deficit round-robin: the persistent
// pointer visits tenants with waiters in rotation order; a tenant with an
// admissible query earns its weight in credits per visit (capped, so
// blocked turns cannot bank unbounded bursts) and admits while credit,
// slots, and quotas last.
//
// Starvation guard: one tenant's big-memory plan must not wait forever
// while other tenants' small plans keep the global cap saturated (the old
// single-FIFO admission blocked everyone behind such a head; round-robin
// would otherwise happily route around it). A head passed over solely for
// global memory on maxSkips admitting rounds gets the next admission —
// until it fits, nothing else is admitted, so running queries drain the
// cap down to it.
func (g *Governor) dispatchLocked() {
	select {
	case <-g.closed:
		return
	default:
	}
	if starved := g.memStarvedLocked(); starved != nil {
		if !g.admissibleLocked(starved) {
			return // hold admissions; releases drain memory toward it
		}
		for i, tq := range g.ring {
			if tq == starved {
				g.next = i // the starved tenant gets the next turn
				break
			}
		}
	}
	// Affinity snapshots the pool at most once per dispatch round, lazily.
	var scorer func([]string) int64
	score := func(inputs []string) int64 {
		if scorer == nil {
			scorer = g.affinity()
		}
		return scorer(inputs)
	}
	if g.affinity == nil {
		score = nil
	}
	admittedTo := map[*tenantQueue]bool{}
	idle := 0 // consecutive visits without an admission
	for g.running < g.k && len(g.ring) > 0 && idle < len(g.ring) {
		g.next %= len(g.ring)
		tq := g.ring[g.next]
		if !g.admissibleLocked(tq) {
			// Nothing admissible here (quota or memory blocked): no
			// credit for turns a tenant cannot use.
			tq.inTurn = false
			idle++
			g.next = (g.next + 1) % len(g.ring)
			continue
		}
		if !tq.inTurn {
			tq.deficit += tq.weight()
			if max := tq.weight() * deficitCap; tq.deficit > max {
				tq.deficit = max
			}
			tq.inTurn = true
		}
		admitted := false
		for tq.deficit >= 1 && g.running < g.k {
			i := g.pickLocked(tq, score)
			if i < 0 {
				break
			}
			w := tq.waiters[i]
			tq.waiters = append(tq.waiters[:i], tq.waiters[i+1:]...)
			g.running++
			g.memUse += w.peak
			tq.running++
			tq.memUse += w.peak
			tq.deficit--
			close(w.ready)
			admitted = true
			admittedTo[tq] = true
		}
		if admitted {
			idle = 0
		} else {
			idle++
		}
		if len(tq.waiters) == 0 {
			g.unringLocked(tq) // pointer stays on the successor
		} else if g.running >= g.k && tq.deficit >= 1 && g.admissibleLocked(tq) {
			// Slots ran out mid-turn with credit left: the next release
			// resumes this tenant's turn instead of rotating past it.
			break
		} else {
			tq.inTurn = false
			g.next = (g.next + 1) % len(g.ring)
		}
	}
	if len(admittedTo) > 0 {
		for _, tq := range g.ring {
			if admittedTo[tq] {
				tq.memSkips = 0
			} else if g.globallyMemBlockedLocked(tq) {
				tq.memSkips++
			}
		}
	}
}

// recordWait files one granted admission's queue wait under the tenant.
func (g *Governor) recordWait(tenant string, d time.Duration) {
	g.mu.Lock()
	ww := g.waits[tenant]
	if ww == nil {
		if len(g.waits) >= maxWaitTenants {
			// Evict the longest-idle tenant's window: labels are
			// client-supplied, so the map must not grow unboundedly.
			var coldest string
			var coldestSeq int64
			for name, w := range g.waits {
				if coldest == "" || w.lastSeq < coldestSeq {
					coldest, coldestSeq = name, w.lastSeq
				}
			}
			delete(g.waits, coldest)
		}
		ww = &waitWindow{}
		g.waits[tenant] = ww
	}
	g.grantSeq++
	ww.lastSeq = g.grantSeq
	ww.record(d)
	g.mu.Unlock()
	if g.onGrant != nil {
		g.onGrant(tenant, d)
	}
}

// WaitQuantiles summarizes one tenant's admission-wait distribution over
// the most recent waitSamples grants.
type WaitQuantiles struct {
	// Count is the number of grants ever recorded for the tenant.
	Count int64 `json:"count"`
	// P50/P95/P99 are queue-wait percentiles (Admit call to grant).
	P50 time.Duration `json:"p50"`
	P95 time.Duration `json:"p95"`
	P99 time.Duration `json:"p99"`
}

// TenantWaits snapshots per-tenant admission-wait quantiles for every
// tenant that has ever been granted admission. The histogram lives in the
// governor — the component that creates the wait — so the service can
// report p95/p99 per tenant without clients computing them.
func (g *Governor) TenantWaits() map[string]WaitQuantiles {
	// Copy the sample windows under the lock, but sort them outside it:
	// g.mu also serializes admission, and sorting thousands of samples per
	// tenant under it would stall Admit/Release on every stats poll.
	type snap struct {
		count   int64
		samples []time.Duration
	}
	g.mu.Lock()
	snaps := make(map[string]snap, len(g.waits))
	for name, ww := range g.waits {
		snaps[name] = snap{count: ww.count, samples: append([]time.Duration(nil), ww.samples...)}
	}
	g.mu.Unlock()
	out := make(map[string]WaitQuantiles, len(snaps))
	for name, s := range snaps {
		sort.Slice(s.samples, func(i, j int) bool { return s.samples[i] < s.samples[j] })
		out[name] = WaitQuantiles{
			Count: s.count,
			P50:   waitQuantile(s.samples, 0.50),
			P95:   waitQuantile(s.samples, 0.95),
			P99:   waitQuantile(s.samples, 0.99),
		}
	}
	return out
}

// Load reports global occupancy: running queries and total queued waiters.
func (g *Governor) Load() (running, queued int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	queued = 0
	for _, tq := range g.queues {
		queued += len(tq.waiters)
	}
	return g.running, queued
}

// TenantLoad is one tenant's occupancy snapshot.
type TenantLoad struct {
	Running  int   `json:"running"`
	Queued   int   `json:"queued"`
	MemBytes int64 `json:"memBytes"`
}

// TenantLoads snapshots per-tenant occupancy for every tenant with queued
// or running queries.
func (g *Governor) TenantLoads() map[string]TenantLoad {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]TenantLoad, len(g.queues))
	for name, tq := range g.queues {
		out[name] = TenantLoad{Running: tq.running, Queued: len(tq.waiters), MemBytes: tq.memUse}
	}
	return out
}

// Close fails every current and future Admit with a closed error. Running
// queries are unaffected; their Releases still balance.
func (g *Governor) Close() {
	g.mu.Lock()
	select {
	case <-g.closed:
	default:
		close(g.closed)
	}
	g.mu.Unlock()
}
