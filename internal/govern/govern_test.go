package govern

import (
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// rig drives a governor deterministically: every query is a goroutine that
// records its admission, holds its slot until the test releases it, and
// releases. Tests enqueue one waiter at a time (waiting for it to register)
// so queue order is exact, then release slots one at a time and assert the
// admission order.
type rig struct {
	t *testing.T
	g *Governor

	mu    sync.Mutex
	order []string

	releases map[string]chan struct{}
	done     []chan struct{}
	inflight int
}

func newRig(t *testing.T, cfg Config) *rig {
	return &rig{t: t, g: New(cfg), releases: make(map[string]chan struct{})}
}

// enqueue submits one query and blocks until the governor has registered
// it (granted or queued), so successive enqueues have a deterministic
// order.
func (r *rig) enqueue(label, tenant string, peak int64, inputs []string) {
	r.t.Helper()
	rel := make(chan struct{})
	done := make(chan struct{})
	r.releases[label] = rel
	r.done = append(r.done, done)
	r.inflight++
	go func() {
		defer close(done)
		if err := r.g.Admit(tenant, peak, inputs); err != nil {
			return
		}
		r.mu.Lock()
		r.order = append(r.order, label)
		r.mu.Unlock()
		<-rel
		r.g.Release(tenant, peak)
	}()
	r.waitFor(func() bool {
		running, queued := r.g.Load()
		return running+queued >= r.inflight || len(r.snapshot()) >= r.inflight
	})
}

// release lets one admitted query finish.
func (r *rig) release(label string) {
	r.t.Helper()
	close(r.releases[label])
}

// waitGrants blocks until n admissions were recorded and returns them.
func (r *rig) waitGrants(n int) []string {
	r.t.Helper()
	r.waitFor(func() bool { return len(r.snapshot()) >= n })
	return r.snapshot()
}

func (r *rig) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

func (r *rig) waitFor(cond func() bool) {
	r.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			r.t.Fatalf("timeout; admissions so far: %v", r.snapshot())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// finish releases everything still held and waits for the goroutines.
func (r *rig) finish() {
	r.t.Helper()
	for label, rel := range r.releases {
		select {
		case <-rel:
		default:
			_ = label
			close(rel)
		}
	}
	r.g.Close()
	for _, d := range r.done {
		<-d
	}
}

func assertOrder(t *testing.T, got []string, want ...string) {
	t.Helper()
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("admission order = %v, want %v", got, want)
	}
}

// A single (anonymous) tenant must behave exactly like the original FIFO
// admission: strict submission order at K=1.
func TestSingleTenantFIFO(t *testing.T) {
	r := newRig(t, Config{MaxConcurrent: 1})
	defer r.finish()
	r.enqueue("q1", "", 10, nil)
	r.waitGrants(1)
	r.enqueue("q2", "", 10, nil)
	r.enqueue("q3", "", 10, nil)
	r.release("q1")
	r.waitGrants(2)
	r.release("q2")
	assertOrder(t, r.waitGrants(3), "q1", "q2", "q3")
}

// Two equal-weight tenants alternate at K=1: a flooding tenant cannot
// push a small tenant's queries behind its whole backlog.
func TestRoundRobinInterleavesTenants(t *testing.T) {
	r := newRig(t, Config{MaxConcurrent: 1})
	defer r.finish()
	r.enqueue("f1", "flood", 10, nil)
	r.waitGrants(1)
	for _, q := range []string{"f2", "f3", "f4", "f5"} {
		r.enqueue(q, "flood", 10, nil)
	}
	r.enqueue("s1", "small", 10, nil)
	r.enqueue("s2", "small", 10, nil)
	for i, q := range []string{"f1", "f2", "s1", "f3", "s2", "f4"} {
		r.release(q)
		r.waitGrants(i + 2)
	}
	assertOrder(t, r.waitGrants(7), "f1", "f2", "s1", "f3", "s2", "f4", "f5")
}

// A weight-2 tenant earns two admissions per rotation against a weight-1
// tenant, with the deficit carrying across slot releases at K=1.
func TestWeightedShares(t *testing.T) {
	r := newRig(t, Config{
		MaxConcurrent: 1,
		Tenants:       map[string]TenantConfig{"a": {Weight: 2}, "b": {Weight: 1}},
	})
	defer r.finish()
	r.enqueue("init", "warm", 10, nil)
	r.waitGrants(1)
	for _, q := range []string{"a1", "a2", "a3", "a4"} {
		r.enqueue(q, "a", 10, nil)
	}
	r.enqueue("b1", "b", 10, nil)
	r.enqueue("b2", "b", 10, nil)
	for i, q := range []string{"init", "a1", "a2", "b1", "a3", "a4"} {
		r.release(q)
		r.waitGrants(i + 2)
	}
	assertOrder(t, r.waitGrants(7), "init", "a1", "a2", "b1", "a3", "a4", "b2")
}

// A per-tenant concurrency quota blocks the tenant's second query while
// other tenants keep using the free global slots.
func TestTenantConcurrencyQuota(t *testing.T) {
	r := newRig(t, Config{
		MaxConcurrent: 4,
		Tenants:       map[string]TenantConfig{"a": {MaxConcurrent: 1}},
	})
	defer r.finish()
	r.enqueue("a1", "a", 10, nil)
	r.waitGrants(1)
	r.enqueue("a2", "a", 10, nil)
	// b1's grant proves the dispatcher ran after a2 queued — so a2 really
	// is held by the tenant quota, not by scheduling lag.
	r.enqueue("b1", "b", 10, nil)
	assertOrder(t, r.waitGrants(2), "a1", "b1")
	if _, queued := r.g.Load(); queued != 1 {
		t.Fatalf("queued = %d, want a2 held by the tenant quota", queued)
	}
	r.release("a1")
	assertOrder(t, r.waitGrants(3), "a1", "b1", "a2")
}

// A per-tenant memory quota holds the tenant's next plan while it does not
// fit, without blocking other tenants, and an oversized plan fails
// immediately.
func TestTenantMemoryQuota(t *testing.T) {
	r := newRig(t, Config{
		MaxConcurrent: 4,
		Tenants:       map[string]TenantConfig{"a": {MemBytes: 100}},
	})
	defer r.finish()
	if err := r.g.Admit("a", 200, nil); err == nil {
		t.Fatal("plan above the tenant quota must fail at admission")
	}
	r.enqueue("a1", "a", 80, nil)
	r.waitGrants(1)
	r.enqueue("a2", "a", 30, nil) // 80+30 > 100: waits
	r.enqueue("b1", "b", 30, nil)
	assertOrder(t, r.waitGrants(2), "a1", "b1")
	r.release("a1")
	assertOrder(t, r.waitGrants(3), "a1", "b1", "a2")
}

// The global memory cap still rejects plans that can never fit and holds
// plans until footprint frees (the original admission semantics).
func TestGlobalMemoryCap(t *testing.T) {
	r := newRig(t, Config{MaxConcurrent: 4, GlobalMemBytes: 100})
	defer r.finish()
	if err := r.g.Admit("", 200, nil); err == nil {
		t.Fatal("plan above the global cap must fail at admission")
	}
	r.enqueue("q1", "", 80, nil)
	r.waitGrants(1)
	r.enqueue("q2", "", 40, nil)
	if running, queued := r.g.Load(); running != 1 || queued != 1 {
		t.Fatalf("load = %d running %d queued, want q2 held by the cap", running, queued)
	}
	r.release("q1")
	assertOrder(t, r.waitGrants(2), "q1", "q2")
}

// The starvation guard: one tenant's big-memory plan, blocked solely by
// the global cap, must not be routed around forever while another tenant's
// small plans keep the cap saturated. After MaxAffinitySkips admitting
// rounds pass it over, admissions hold until memory drains down to it.
func TestGlobalMemStarvationGuard(t *testing.T) {
	r := newRig(t, Config{
		MaxConcurrent:    4,
		GlobalMemBytes:   100,
		MaxAffinitySkips: 2,
	})
	defer r.finish()
	// Three small-tenant queries saturate the cap (3 x 30 of 100)...
	for _, q := range []string{"b1", "b2", "b3"} {
		r.enqueue(q, "b", 30, nil)
	}
	r.waitGrants(3)
	// ...then the big tenant's 90-byte plan queues (30+90 > 100), followed
	// by more small plans that would fit whenever a small one releases.
	r.enqueue("a1", "a", 90, nil)
	for _, q := range []string{"b4", "b5", "b6", "b7", "b8"} {
		r.enqueue(q, "b", 30, nil)
	}
	// Two releases each admit the next small plan over a1's head
	// (memSkips 1, 2)...
	r.release("b1")
	r.waitGrants(4)
	r.release("b2")
	r.waitGrants(5)
	// ...then the guard engages: these releases admit nothing, draining
	// the cap until a1 fits.
	r.release("b3")
	r.release("b4")
	r.release("b5")
	assertOrder(t, r.waitGrants(6), "b1", "b2", "b3", "b4", "b5", "a1")
	// With a1 running (90 of 100), the remaining small plans wait; its
	// release lets them all in at once (3 x 30 fits cap and slots), so
	// their recording order is unordered.
	r.release("a1")
	tail := r.waitGrants(9)[6:]
	sort.Strings(tail)
	assertOrder(t, tail, "b6", "b7", "b8")
}

// Affinity batching reorders within a tenant toward pool-resident inputs,
// and the aging guard forces the bypassed head after MaxAffinitySkips.
func TestAffinityBatchingWithAgingGuard(t *testing.T) {
	scores := map[string]int64{"hot": 100, "cold": 0}
	r := newRig(t, Config{
		MaxConcurrent:    1,
		MaxAffinitySkips: 1,
		Affinity: func() func(inputs []string) int64 {
			return func(inputs []string) int64 {
				var s int64
				for _, in := range inputs {
					s += scores[in]
				}
				return s
			}
		},
	})
	defer r.finish()
	r.enqueue("q0", "", 10, nil)
	r.waitGrants(1)
	r.enqueue("c", "", 10, []string{"cold"})
	r.enqueue("h1", "", 10, []string{"hot"})
	r.enqueue("h2", "", 10, []string{"hot"})
	// h1 overtakes the cold head once; then the aging guard forces c
	// ahead of the equally-hot h2.
	for i, q := range []string{"q0", "h1", "c"} {
		r.release(q)
		r.waitGrants(i + 2)
	}
	assertOrder(t, r.waitGrants(4), "q0", "h1", "c", "h2")
}

// Close fails queued waiters and future admits while running queries'
// releases still balance.
func TestCloseFailsWaiters(t *testing.T) {
	g := New(Config{MaxConcurrent: 1})
	if err := g.Admit("", 10, nil); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- g.Admit("", 10, nil) }()
	for {
		if _, queued := g.Load(); queued == 1 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	g.Close()
	if err := <-errc; err == nil {
		t.Fatal("queued admit must fail on close")
	}
	if err := g.Admit("", 10, nil); err == nil {
		t.Fatal("admit after close must fail")
	}
	g.Release("", 10)
	if running, _ := g.Load(); running != 0 {
		t.Fatalf("running = %d after balanced release", running)
	}
}

// TenantWaits must expose per-tenant admission-wait quantiles: monotone
// p50 <= p95 <= p99, correct counts, and real queueing reflected in the
// percentiles of a tenant that had to wait.
func TestTenantWaitQuantiles(t *testing.T) {
	g := New(Config{MaxConcurrent: 1})
	defer g.Close()
	if err := g.Admit("fast", 1, nil); err != nil {
		t.Fatal(err)
	}
	// A second tenant queues behind the held slot for a measurable time.
	const hold = 50 * time.Millisecond
	done := make(chan error, 1)
	go func() { done <- g.Admit("slow", 1, nil) }()
	for {
		if _, queued := g.Load(); queued == 1 {
			break
		}
		time.Sleep(50 * time.Microsecond)
	}
	time.Sleep(hold)
	g.Release("fast", 1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	g.Release("slow", 1)

	waits := g.TenantWaits()
	fast, ok := waits["fast"]
	if !ok || fast.Count != 1 {
		t.Fatalf("fast tenant waits = %+v", waits)
	}
	slow, ok := waits["slow"]
	if !ok || slow.Count != 1 {
		t.Fatalf("slow tenant waits = %+v", waits)
	}
	if slow.P95 < hold {
		t.Errorf("slow tenant p95 = %v, want >= %v (it queued that long)", slow.P95, hold)
	}
	// Relative bound only: the fast tenant was admitted instantly, so even
	// with scheduler noise its wait must stay below the tenant that
	// provably queued for the whole hold.
	if fast.P95 >= slow.P95 {
		t.Errorf("fast tenant p95 = %v not below queued tenant's %v", fast.P95, slow.P95)
	}
	for name, wq := range waits {
		if wq.P50 > wq.P95 || wq.P95 > wq.P99 {
			t.Errorf("tenant %q quantiles not monotone: %+v", name, wq)
		}
	}
}

// The wait window must cap its memory: after far more grants than the
// window holds, Count keeps the true total while quantiles reflect the
// recent samples.
func TestWaitWindowBounded(t *testing.T) {
	ww := &waitWindow{}
	const n = waitSamples * 2
	for i := 0; i < n; i++ {
		ww.record(time.Duration(i))
	}
	if ww.count != n {
		t.Fatalf("count = %d, want %d", ww.count, n)
	}
	if len(ww.samples) != waitSamples {
		t.Fatalf("window holds %d samples, want %d", len(ww.samples), waitSamples)
	}
	for _, s := range ww.samples {
		if s < waitSamples {
			t.Fatalf("old sample %v survived past the window", s)
		}
	}
}

// Tenant labels are client-supplied, so the wait-window map must stay
// bounded: past maxWaitTenants, the longest-idle window is evicted and the
// freshest tenants survive.
func TestWaitTenantMapBounded(t *testing.T) {
	g := New(Config{MaxConcurrent: 4})
	defer g.Close()
	name := func(i int) string { return "tenant-" + strings.Repeat("x", i%3) + time.Duration(i).String() }
	for i := 0; i < maxWaitTenants+16; i++ {
		n := name(i)
		if err := g.Admit(n, 1, nil); err != nil {
			t.Fatal(err)
		}
		g.Release(n, 1)
	}
	waits := g.TenantWaits()
	if len(waits) > maxWaitTenants {
		t.Fatalf("wait map holds %d tenants, cap %d", len(waits), maxWaitTenants)
	}
	if _, ok := waits[name(maxWaitTenants+15)]; !ok {
		t.Error("freshest tenant's window was evicted instead of the longest-idle one")
	}
	if _, ok := waits[name(0)]; ok {
		t.Error("longest-idle tenant's window survived past the cap")
	}
}
