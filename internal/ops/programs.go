package ops

import (
	"riotshare/internal/prog"
)

// AddMulConfig sizes the Example 1 program (matrix addition followed by
// matrix multiplication, §6.1): A, B, C are n1×n2 block grids, D is n2×n3,
// E is n1×n3.
type AddMulConfig struct {
	N1, N2, N3 int64
	// ABBlock is the block shape of A, B, C (and the row shape of E);
	// DBlock is the block shape of D (and the column shape of E).
	ABBlock, DBlock Dims
	// Logical block shapes for paper-scale I/O accounting (zero = physical).
	LogicalAB, LogicalD Dims
}

// AddMul builds  C = A + B;  E = C · D  (the paper's Example 1).
func AddMul(cfg AddMulConfig) *prog.Program {
	p := prog.New("addmul", "n1", "n2", "n3")
	eBlock := Dims{Rows: cfg.ABBlock.Rows, Cols: cfg.DBlock.Cols}
	eLogical := Dims{}
	if cfg.LogicalAB.Rows != 0 {
		eLogical = Dims{Rows: cfg.LogicalAB.Rows, Cols: cfg.LogicalD.Cols}
	}
	Mat{Name: "A", Block: cfg.ABBlock, Grid: Dims{int(cfg.N1), int(cfg.N2)}, Logical: cfg.LogicalAB}.add(p)
	Mat{Name: "B", Block: cfg.ABBlock, Grid: Dims{int(cfg.N1), int(cfg.N2)}, Logical: cfg.LogicalAB}.add(p)
	Mat{Name: "C", Block: cfg.ABBlock, Grid: Dims{int(cfg.N1), int(cfg.N2)}, Logical: cfg.LogicalAB, Transient: true}.add(p)
	Mat{Name: "D", Block: Dims{cfg.ABBlock.Cols, cfg.DBlock.Cols}, Grid: Dims{int(cfg.N2), int(cfg.N3)}, Logical: cfg.LogicalD}.add(p)
	Mat{Name: "E", Block: eBlock, Grid: Dims{int(cfg.N1), int(cfg.N3)}, Logical: eLogical}.add(p)

	MatAdd(p, "s1", "C", "A", "B", "n1", "n2")
	MatMulAcc(p, "s2", "E", "C", "D", false, false, "n1", "n3", "n2")

	p.Bind("n1", cfg.N1).Bind("n2", cfg.N2).Bind("n3", cfg.N3)
	return p
}

// TwoMMConfig sizes the two-matrix-multiplication program (§6.2):
// C = A·B with A n1×n3 blocks, B n3×n2; E = A·D with D n3×n4.
type TwoMMConfig struct {
	N1, N2, N3, N4 int64
	ABlock         Dims // block shape of A (rows shared by C, E)
	BBlock         Dims // block shape of B (cols shared by C); rows = ABlock.Cols
	DBlock         Dims // block shape of D (cols shared by E); rows = ABlock.Cols
	LogicalA       Dims
	LogicalB       Dims
	LogicalD       Dims
}

// TwoMM builds  C = A·B;  E = A·D  (§6.2).
func TwoMM(cfg TwoMMConfig) *prog.Program {
	p := prog.New("twomm", "n1", "n2", "n3", "n4")
	cBlock := Dims{cfg.ABlock.Rows, cfg.BBlock.Cols}
	eBlock := Dims{cfg.ABlock.Rows, cfg.DBlock.Cols}
	var cLogical, eLogical Dims
	if cfg.LogicalA.Rows != 0 {
		cLogical = Dims{cfg.LogicalA.Rows, cfg.LogicalB.Cols}
		eLogical = Dims{cfg.LogicalA.Rows, cfg.LogicalD.Cols}
	}
	Mat{Name: "A", Block: cfg.ABlock, Grid: Dims{int(cfg.N1), int(cfg.N3)}, Logical: cfg.LogicalA}.add(p)
	Mat{Name: "B", Block: Dims{cfg.ABlock.Cols, cfg.BBlock.Cols}, Grid: Dims{int(cfg.N3), int(cfg.N2)}, Logical: cfg.LogicalB}.add(p)
	Mat{Name: "C", Block: cBlock, Grid: Dims{int(cfg.N1), int(cfg.N2)}, Logical: cLogical}.add(p)
	Mat{Name: "D", Block: Dims{cfg.ABlock.Cols, cfg.DBlock.Cols}, Grid: Dims{int(cfg.N3), int(cfg.N4)}, Logical: cfg.LogicalD}.add(p)
	Mat{Name: "E", Block: eBlock, Grid: Dims{int(cfg.N1), int(cfg.N4)}, Logical: eLogical}.add(p)

	MatMulAcc(p, "s1", "C", "A", "B", false, false, "n1", "n2", "n3")
	MatMulAcc(p, "s2", "E", "A", "D", false, false, "n1", "n4", "n3")

	p.Bind("n1", cfg.N1).Bind("n2", cfg.N2).Bind("n3", cfg.N3).Bind("n4", cfg.N4)
	return p
}

// LinRegConfig sizes the linear-regression program (§6.3): X has n row
// blocks (each XBlock), Y has n row blocks (each YBlock); U, W are single
// m×m blocks; V, Bhat single m×k blocks; R a single scalar block.
type LinRegConfig struct {
	N                  int64
	XBlock, YBlock     Dims
	LogicalX, LogicalY Dims
}

// LinReg builds the paper's seven-step ordinary-least-squares program:
//
//	U = XᵀX; V = XᵀY; W = U⁻¹; β̂ = W·V; Ŷ = X·β̂; E = Y - Ŷ; R = RSS(E)
//
// with matrix transpose passed as a flag to multiplication (§6.3).
func LinReg(cfg LinRegConfig) *prog.Program {
	p := prog.New("linreg", "n")
	m := cfg.XBlock.Cols
	k := cfg.YBlock.Cols
	var logU, logV Dims
	if cfg.LogicalX.Rows != 0 {
		logU = Dims{cfg.LogicalX.Cols, cfg.LogicalX.Cols}
		logV = Dims{cfg.LogicalX.Cols, cfg.LogicalY.Cols}
	}
	Mat{Name: "X", Block: cfg.XBlock, Grid: Dims{int(cfg.N), 1}, Logical: cfg.LogicalX}.add(p)
	Mat{Name: "Y", Block: cfg.YBlock, Grid: Dims{int(cfg.N), 1}, Logical: cfg.LogicalY}.add(p)
	Mat{Name: "U", Block: Dims{m, m}, Grid: Dims{1, 1}, Logical: logU, Transient: true}.add(p)
	Mat{Name: "V", Block: Dims{m, k}, Grid: Dims{1, 1}, Logical: logV, Transient: true}.add(p)
	Mat{Name: "W", Block: Dims{m, m}, Grid: Dims{1, 1}, Logical: logU, Transient: true}.add(p)
	Mat{Name: "Bh", Block: Dims{m, k}, Grid: Dims{1, 1}, Logical: logV}.add(p)
	Mat{Name: "Yh", Block: cfg.YBlock, Grid: Dims{int(cfg.N), 1}, Logical: cfg.LogicalY, Transient: true}.add(p)
	Mat{Name: "Ev", Block: cfg.YBlock, Grid: Dims{int(cfg.N), 1}, Logical: cfg.LogicalY, Transient: true}.add(p)
	Mat{Name: "R", Block: Dims{1, k}, Grid: Dims{1, 1}}.add(p)

	// s1: U += X[r]ᵀ·X[r]. The two reads of X[r,0] have identical Φ and are
	// one access (§4.1). Loop "i,j" of the full multiplication collapse:
	// U is a single block.
	p.NewNest()
	s1 := p.NewStatement("s1", "r")
	s1.Range("r", prog.C(0), prog.V("n"))
	s1.Access(prog.Read, "X", prog.V("r"), prog.C(0))
	s1.AccessWhen(prog.Read, "U", prog.C(0), prog.C(0), []prog.Cond{prog.GE(prog.V("r").AddK(-1))})
	s1.Access(prog.Write, "U", prog.C(0), prog.C(0))
	s1.SetKernel("gemm:ta:self").SetNote("U+=X[r]ᵀX[r]")

	// s2: V += X[r]ᵀ·Y[r].
	p.NewNest()
	s2 := p.NewStatement("s2", "r")
	s2.Range("r", prog.C(0), prog.V("n"))
	s2.Access(prog.Read, "X", prog.V("r"), prog.C(0))
	s2.Access(prog.Read, "Y", prog.V("r"), prog.C(0))
	s2.AccessWhen(prog.Read, "V", prog.C(0), prog.C(0), []prog.Cond{prog.GE(prog.V("r").AddK(-1))})
	s2.Access(prog.Write, "V", prog.C(0), prog.C(0))
	s2.SetKernel("gemm:ta").SetNote("V+=X[r]ᵀY[r]")

	// s3: W = U⁻¹.
	MatInv(p, "s3", "W", "U")

	// s4: β̂ = W·V (single blocks).
	p.NewNest()
	s4 := p.NewStatement("s4")
	s4.Access(prog.Read, "W", prog.C(0), prog.C(0))
	s4.Access(prog.Read, "V", prog.C(0), prog.C(0))
	s4.Access(prog.Write, "Bh", prog.C(0), prog.C(0))
	s4.SetKernel("gemm").SetNote("β̂=W·V")

	// s5: Ŷ[r] = X[r]·β̂.
	p.NewNest()
	s5 := p.NewStatement("s5", "r")
	s5.Range("r", prog.C(0), prog.V("n"))
	s5.Access(prog.Read, "X", prog.V("r"), prog.C(0))
	s5.Access(prog.Read, "Bh", prog.C(0), prog.C(0))
	s5.Access(prog.Write, "Yh", prog.V("r"), prog.C(0))
	s5.SetKernel("gemm").SetNote("Ŷ[r]=X[r]·β̂")

	// s6: E = Y - Ŷ over row blocks.
	p.NewNest()
	s6 := p.NewStatement("s6", "r")
	s6.Range("r", prog.C(0), prog.V("n"))
	s6.Access(prog.Read, "Y", prog.V("r"), prog.C(0))
	s6.Access(prog.Read, "Yh", prog.V("r"), prog.C(0))
	s6.Access(prog.Write, "Ev", prog.V("r"), prog.C(0))
	s6.SetKernel("sub").SetNote("E[r]=Y[r]-Ŷ[r]")

	// s7: R = RSS(E).
	RSS(p, "s7", "R", "Ev", "n")

	p.Bind("n", cfg.N)
	return p
}
