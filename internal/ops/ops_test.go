package ops

import (
	"testing"

	"riotshare/internal/prog"
)

func TestAddMulStructure(t *testing.T) {
	p := AddMul(AddMulConfig{
		N1: 3, N2: 4, N3: 2,
		ABBlock: Dims{Rows: 8, Cols: 6},
		DBlock:  Dims{Rows: 6, Cols: 5},
	})
	if len(p.Stmts) != 2 {
		t.Fatalf("want 2 statements, got %d", len(p.Stmts))
	}
	if got := len(p.Arrays); got != 5 {
		t.Fatalf("want 5 arrays, got %d", got)
	}
	// Block shapes must chain: C = A shape, D rows = A cols, E = A rows × D cols.
	if p.Arrays["C"].BlockRows != 8 || p.Arrays["C"].BlockCols != 6 {
		t.Fatal("C block shape wrong")
	}
	if p.Arrays["D"].BlockRows != 6 || p.Arrays["D"].BlockCols != 5 {
		t.Fatal("D block shape wrong")
	}
	if p.Arrays["E"].BlockRows != 8 || p.Arrays["E"].BlockCols != 5 {
		t.Fatal("E block shape wrong")
	}
	if !p.Arrays["C"].Transient {
		t.Fatal("C must be transient (intermediate)")
	}
	// s2 = gemm with a guarded accumulator read.
	s2 := p.Stmts[1]
	if s2.Kernel != "gemm" {
		t.Fatalf("s2 kernel %q", s2.Kernel)
	}
	guarded := 0
	for _, ac := range s2.Accesses {
		if ac.When != nil {
			guarded++
		}
	}
	if guarded != 1 {
		t.Fatalf("s2 should have exactly one guarded access, got %d", guarded)
	}
}

func TestAddMulLogicalBytes(t *testing.T) {
	p := AddMul(AddMulConfig{
		N1: 12, N2: 12, N3: 1,
		ABBlock:   Dims{Rows: 6, Cols: 4},
		DBlock:    Dims{Rows: 4, Cols: 5},
		LogicalAB: Dims{Rows: 6000, Cols: 4000},
		LogicalD:  Dims{Rows: 4000, Cols: 5000},
	})
	if got := p.Arrays["A"].LogicalBlockBytes; got != 6000*4000*8 {
		t.Fatalf("A logical bytes %d", got)
	}
	if got := p.Arrays["E"].LogicalBlockBytes; got != 6000*5000*8 {
		t.Fatalf("E logical bytes %d", got)
	}
	// Physical stays small.
	if got := p.Arrays["A"].PhysicalBlockBytes(); got != 6*4*8 {
		t.Fatalf("A physical bytes %d", got)
	}
}

func TestTwoMMStructure(t *testing.T) {
	p := TwoMM(TwoMMConfig{
		N1: 6, N2: 10, N3: 6, N4: 10,
		ABlock: Dims{Rows: 8, Cols: 7}, BBlock: Dims{Rows: 7, Cols: 3}, DBlock: Dims{Rows: 7, Cols: 3},
	})
	if len(p.Stmts) != 2 || len(p.Arrays) != 5 {
		t.Fatal("structure wrong")
	}
	// Both statements read A.
	for _, st := range p.Stmts {
		found := false
		for _, ac := range st.Accesses {
			if ac.Array == "A" && ac.Type == prog.Read {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s should read A", st.Name)
		}
	}
	if p.Arrays["C"].GridRows != 6 || p.Arrays["C"].GridCols != 10 {
		t.Fatal("C grid wrong")
	}
}

func TestLinRegStructure(t *testing.T) {
	p := LinReg(LinRegConfig{N: 25, XBlock: Dims{Rows: 60, Cols: 40}, YBlock: Dims{Rows: 60, Cols: 4}})
	if len(p.Stmts) != 7 {
		t.Fatalf("want 7 statements, got %d", len(p.Stmts))
	}
	// Depth-0 statements: s3 (inversion) and s4 (small multiply).
	if p.Stmts[2].Ds() != 0 || p.Stmts[3].Ds() != 0 {
		t.Fatal("s3/s4 should be depth-0")
	}
	// U is m×m where m = X block cols.
	if p.Arrays["U"].BlockRows != 40 || p.Arrays["U"].BlockCols != 40 {
		t.Fatal("U block shape wrong")
	}
	// Transient intermediates per the paper's pipeline.
	for _, name := range []string{"U", "V", "W", "Yh", "Ev"} {
		if !p.Arrays[name].Transient {
			t.Errorf("%s should be transient", name)
		}
	}
	for _, name := range []string{"X", "Y", "Bh", "R"} {
		if p.Arrays[name].Transient {
			t.Errorf("%s should not be transient", name)
		}
	}
}

func TestTransposeFlags(t *testing.T) {
	p := prog.New("tflags", "n")
	Mat{Name: "A", Block: Dims{4, 4}, Grid: Dims{2, 2}}.add(p)
	Mat{Name: "B", Block: Dims{4, 4}, Grid: Dims{2, 2}}.add(p)
	Mat{Name: "Cc", Block: Dims{4, 4}, Grid: Dims{2, 2}}.add(p)
	s := MatMulAcc(p, "s", "Cc", "A", "B", true, false, "n", "n", "n")
	if s.Kernel != "gemm:ta" {
		t.Fatalf("kernel %q", s.Kernel)
	}
	p.Bind("n", 2)
	// Aᵀ access: block subscript (k, i) instead of (i, k).
	params := p.ParamValues()
	r, c := s.Accesses[0].BlockAt([]int64{1, 0, 0}, params) // (i,j,k)=(1,0,0)
	if r != 0 || c != 1 {
		t.Fatalf("transposed access at (1,0,0) = (%d,%d), want (0,1)", r, c)
	}
}

func TestScanAndJoinGuards(t *testing.T) {
	p := prog.New("mix", "n", "m")
	Mat{Name: "Rel", Block: Dims{4, 2}, Grid: Dims{4, 1}}.add(p)
	Mat{Name: "Rel2", Block: Dims{4, 2}, Grid: Dims{3, 1}}.add(p)
	Mat{Name: "Agg", Block: Dims{1, 1}, Grid: Dims{1, 1}}.add(p)
	Mat{Name: "J", Block: Dims{1, 1}, Grid: Dims{1, 1}}.add(p)
	Scan(p, "s1", "Rel", "Agg", "n")
	NLJoin(p, "s2", "J", "Rel", "Rel2", "n", "m")
	p.Bind("n", 4).Bind("m", 3)
	params := p.ParamValues()
	// Scan accumulator read inactive at r=0.
	s1 := p.Stmts[0]
	if s1.Accesses[1].Guarded([]int64{0}, params) {
		t.Fatal("scan accumulator read should be guarded at r=0")
	}
	if !s1.Accesses[1].Guarded([]int64{1}, params) {
		t.Fatal("scan accumulator read should fire at r=1")
	}
	// Join accumulator read inactive only at (0,0).
	s2 := p.Stmts[1]
	if s2.Accesses[2].Guarded([]int64{0, 0}, params) {
		t.Fatal("join accumulator guarded at (0,0)")
	}
	if !s2.Accesses[2].Guarded([]int64{0, 1}, params) {
		t.Fatal("join accumulator should fire at (0,1)")
	}
}

func TestDimsBytes(t *testing.T) {
	if (Dims{Rows: 10, Cols: 20}).Bytes() != 1600 {
		t.Fatal("Bytes wrong")
	}
}
