// Package ops is the operator library (Figure 2): it builds polyhedral
// programs (internal/prog) for the matrix operators the paper evaluates —
// addition, multiplication with optional transpose flags, inversion,
// subtraction, residual sum of squares — and assembles the three benchmark
// programs of §6. Every operator is "opened up": its loop structure and
// accesses are exposed to the optimizer rather than hidden behind a
// black-box physical implementation (§1).
package ops

import (
	"fmt"

	"riotshare/internal/prog"
)

// Dims is a block shape in elements.
type Dims struct {
	Rows, Cols int
}

// Bytes returns the byte size of a block of this shape (float64 elements).
func (d Dims) Bytes() int64 { return int64(d.Rows) * int64(d.Cols) * 8 }

// Mat describes one matrix of a program: block shape, block-grid shape, and
// an optional logical block shape used for paper-scale I/O accounting
// (DESIGN.md substitution S5).
type Mat struct {
	Name      string
	Block     Dims // physical elements per block
	Grid      Dims // number of blocks per dimension
	Logical   Dims // logical block shape for I/O accounting; zero = Block
	Transient bool
}

func (m Mat) add(p *prog.Program) *prog.Array {
	logical := m.Logical
	if logical.Rows == 0 {
		logical = m.Block
	}
	return p.AddArray(&prog.Array{
		Name:              m.Name,
		BlockRows:         m.Block.Rows,
		BlockCols:         m.Block.Cols,
		GridRows:          m.Grid.Rows,
		GridCols:          m.Grid.Cols,
		LogicalBlockBytes: logical.Bytes(),
		Transient:         m.Transient,
	})
}

// MatAdd appends the blocked statement  dst[i,k] = a[i,k] + b[i,k]  as a new
// nest looping over the n1×n2 block grid (parameters pRows, pCols).
func MatAdd(p *prog.Program, name, dst, a, b, pRows, pCols string) *prog.Statement {
	p.NewNest()
	s := p.NewStatement(name, "i", "k")
	s.Range("i", prog.C(0), prog.V(pRows)).Range("k", prog.C(0), prog.V(pCols))
	s.Access(prog.Read, a, prog.V("i"), prog.V("k"))
	s.Access(prog.Read, b, prog.V("i"), prog.V("k"))
	s.Access(prog.Write, dst, prog.V("i"), prog.V("k"))
	s.SetKernel("add").SetNote(fmt.Sprintf("%s[i,k]=%s[i,k]+%s[i,k]", dst, a, b))
	return s
}

// MatMulAcc appends the blocked accumulating statement
//
//	dst[i,j] += a[i,k] * b[k,j]   (dst[i,j] = a·b at k==0)
//
// as a new nest over (i in pI, j in pJ, k in pK). TransA/TransB transpose
// the block subscripts of the operands (BLAS-style flags; the paper's
// linear-regression program passes transpose as a flag rather than a
// separate operator, §6.3). The accumulator read is guarded k >= 1,
// matching footnote 1 of the paper.
func MatMulAcc(p *prog.Program, name, dst, a, b string, transA, transB bool, pI, pJ, pK string) *prog.Statement {
	p.NewNest()
	s := p.NewStatement(name, "i", "j", "k")
	s.Range("i", prog.C(0), prog.V(pI)).Range("j", prog.C(0), prog.V(pJ)).Range("k", prog.C(0), prog.V(pK))
	ar, ac := prog.V("i"), prog.V("k")
	if transA {
		ar, ac = ac, ar
	}
	br, bc := prog.V("k"), prog.V("j")
	if transB {
		br, bc = bc, br
	}
	s.Access(prog.Read, a, ar, ac)
	s.Access(prog.Read, b, br, bc)
	s.AccessWhen(prog.Read, dst, prog.V("i"), prog.V("j"), []prog.Cond{prog.GE(prog.V("k").AddK(-1))})
	s.Access(prog.Write, dst, prog.V("i"), prog.V("j"))
	kernel := "gemm"
	if transA {
		kernel += ":ta"
	}
	if transB {
		kernel += ":tb"
	}
	s.SetKernel(kernel).SetNote(fmt.Sprintf("%s[i,j]+=%s·%s", dst, a, b))
	return s
}

// MatSub appends  dst[r,c] = a[r,c] - b[r,c]  over an n×m block grid.
func MatSub(p *prog.Program, name, dst, a, b, pRows, pCols string) *prog.Statement {
	p.NewNest()
	s := p.NewStatement(name, "i", "k")
	s.Range("i", prog.C(0), prog.V(pRows)).Range("k", prog.C(0), prog.V(pCols))
	s.Access(prog.Read, a, prog.V("i"), prog.V("k"))
	s.Access(prog.Read, b, prog.V("i"), prog.V("k"))
	s.Access(prog.Write, dst, prog.V("i"), prog.V("k"))
	s.SetKernel("sub").SetNote(fmt.Sprintf("%s[i,k]=%s[i,k]-%s[i,k]", dst, a, b))
	return s
}

// MatInv appends the single-block inversion  dst = a^{-1}  (used for U^{-1}
// in linear regression; both operands are 1×1 block grids).
func MatInv(p *prog.Program, name, dst, a string) *prog.Statement {
	p.NewNest()
	s := p.NewStatement(name) // depth-0 statement: a single instance
	s.Access(prog.Read, a, prog.C(0), prog.C(0))
	s.Access(prog.Write, dst, prog.C(0), prog.C(0))
	s.SetKernel("inv").SetNote(fmt.Sprintf("%s=%s^-1", dst, a))
	return s
}

// RSS appends the residual-sum-of-squares accumulation
//
//	dst[0,0] += colsum(e[r,0]^2)  over row blocks r
//
// with the accumulator read guarded r >= 1.
func RSS(p *prog.Program, name, dst, e, pRows string) *prog.Statement {
	p.NewNest()
	s := p.NewStatement(name, "r")
	s.Range("r", prog.C(0), prog.V(pRows))
	s.Access(prog.Read, e, prog.V("r"), prog.C(0))
	s.AccessWhen(prog.Read, dst, prog.C(0), prog.C(0), []prog.Cond{prog.GE(prog.V("r").AddK(-1))})
	s.Access(prog.Write, dst, prog.C(0), prog.C(0))
	s.SetKernel("rss").SetNote(fmt.Sprintf("%s+=RSS(%s[r])", dst, e))
	return s
}

// Scan appends a database-style table scan over the row blocks of a blocked
// relation (the paper notes table scans are static-control programs, §4.1;
// used by the mixed-workload example).
func Scan(p *prog.Program, name, rel, dst, pRows string) *prog.Statement {
	p.NewNest()
	s := p.NewStatement(name, "r")
	s.Range("r", prog.C(0), prog.V(pRows))
	s.Access(prog.Read, rel, prog.V("r"), prog.C(0))
	s.AccessWhen(prog.Read, dst, prog.C(0), prog.C(0), []prog.Cond{prog.GE(prog.V("r").AddK(-1))})
	s.Access(prog.Write, dst, prog.C(0), prog.C(0))
	s.SetKernel("scan-agg").SetNote(fmt.Sprintf("%s+=scan(%s[r])", dst, rel))
	return s
}

// NLJoin appends a blocked nested-loop join between the row blocks of two
// relations, accumulating matches into dst (§4.1 lists nested loop joins
// among static-control programs).
func NLJoin(p *prog.Program, name, dst, outer, inner, pOuter, pInner string) *prog.Statement {
	p.NewNest()
	s := p.NewStatement(name, "i", "j")
	s.Range("i", prog.C(0), prog.V(pOuter)).Range("j", prog.C(0), prog.V(pInner))
	s.Access(prog.Read, outer, prog.V("i"), prog.C(0))
	s.Access(prog.Read, inner, prog.V("j"), prog.C(0))
	s.AccessWhen(prog.Read, dst, prog.C(0), prog.C(0),
		[]prog.Cond{prog.GE(prog.V("i").Plus(prog.V("j")).AddK(-1))})
	s.Access(prog.Write, dst, prog.C(0), prog.C(0))
	s.SetKernel("join-agg").SetNote(fmt.Sprintf("%s+=%s⋈%s", dst, outer, inner))
	return s
}
