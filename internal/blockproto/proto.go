// Package blockproto is the wire protocol spoken between the riotblockd
// network block server and the remote-shard client in internal/storage: a
// small length-prefixed binary protocol carrying block I/O (CREATE, READ,
// WRITE, DROP), shard administration (STATS, MANIFEST get/put/del, STAT,
// WIPE, LATENCY), and liveness (PING) over one TCP connection.
//
// Framing. Every request and every response is one frame:
//
//	uint32  length   (big endian; bytes after this field)
//	uint8   version  (ProtoVersion)
//	uint8   opcode   (requests) / status (responses)
//	...     payload  (opcode/status specific)
//
// Responses carry no request identifier: a connection is a strict FIFO
// pipe, the server answers requests in arrival order, and a client that
// pipelines must match responses to requests by order. Integers inside
// payloads are big-endian fixed width; strings and byte blobs are
// uint16/uint32 length-prefixed. Block payloads are float64 elements in
// little-endian IEEE-754 bit order, row-major — exactly the bytes the DAF
// and LAB-tree stores persist.
//
// The full specification, including versioning rules, lives in
// docs/remote-protocol.md; keep the two in sync.
package blockproto

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"riotshare/internal/blas"
)

// ProtoVersion is the protocol version stamped into every frame. A peer
// receiving a frame with a different version must reject it with
// StatusBadVersion (servers) or fail the connection (clients): there is no
// negotiation, deploys roll the fleet instead.
const ProtoVersion = 1

// MaxFrameBytes bounds a frame's payload so a corrupt or hostile length
// prefix cannot allocate unbounded memory. 64 MiB comfortably exceeds any
// real block (the paper's largest physical blocks are tens of MB).
const MaxFrameBytes = 64 << 20

// Opcodes: the request kinds a block server answers.
const (
	// OpPing is a liveness probe; the response carries no payload.
	OpPing byte = 1
	// OpCreate registers an array's store: name, block/grid shape,
	// logical block bytes, and an "ensure" flag making it idempotent.
	OpCreate byte = 2
	// OpRead fetches one block: name, block row, block col → shape +
	// payload.
	OpRead byte = 3
	// OpWrite stores one block: name, block row, block col, shape,
	// payload.
	OpWrite byte = 4
	// OpDrop closes and unregisters an array's store, optionally deleting
	// its file.
	OpDrop byte = 5
	// OpStats snapshots the server's physical I/O counters.
	OpStats byte = 6
	// OpManifest reads, writes, or removes the shard root's MANIFEST.json
	// (sub-op byte: ManifestGet/Put/Del).
	OpManifest byte = 7
	// OpStat reports whether an array's store file exists on disk.
	OpStat byte = 8
	// OpWipe closes an array's store if open and deletes its file —
	// repair's "start from empty" primitive. Wiping an absent store is not
	// an error.
	OpWipe byte = 9
	// OpLatency sets the server's simulated per-request device latency
	// (read, write nanoseconds; zero disables), mirroring
	// storage.Backend.SetLatency for experiments.
	OpLatency byte = 10
)

// Manifest sub-operations (first payload byte of OpManifest).
const (
	// ManifestGet returns the manifest bytes, or StatusNotFound.
	ManifestGet byte = 0
	// ManifestPut atomically replaces the manifest.
	ManifestPut byte = 1
	// ManifestDel removes the manifest; removing an absent one succeeds.
	ManifestDel byte = 2
)

// Statuses: the first meaningful byte of every response.
const (
	// StatusOK means the request succeeded; the payload is op-specific.
	StatusOK byte = 0
	// StatusErr is a generic server-side failure; the payload is the error
	// string.
	StatusErr byte = 1
	// StatusUnknownArray means the named array has no registered store.
	StatusUnknownArray byte = 2
	// StatusExists means OpCreate (without ensure) hit an already-created
	// array.
	StatusExists byte = 3
	// StatusBadRequest means the frame decoded but the request is
	// malformed (bad opcode, truncated payload, shape mismatch).
	StatusBadRequest byte = 4
	// StatusNotFound means the requested object (manifest, store file)
	// does not exist.
	StatusNotFound byte = 5
	// StatusBadVersion means the request frame's version byte is not
	// ProtoVersion.
	StatusBadVersion byte = 6
)

// WriteFrame emits one frame (version, kind, payload) to w. kind is an
// opcode on the request path and a status on the response path.
func WriteFrame(w io.Writer, kind byte, payload []byte) error {
	if len(payload)+2 > MaxFrameBytes {
		return fmt.Errorf("blockproto: frame payload %d bytes exceeds limit %d", len(payload), MaxFrameBytes)
	}
	var hdr [6]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(payload)+2))
	hdr[4] = ProtoVersion
	hdr[5] = kind
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame from r, returning its version, kind (opcode or
// status), and payload. It validates only the length bound — version
// checking is the caller's, so servers can answer a bad version with
// StatusBadVersion instead of hanging up.
func ReadFrame(r io.Reader) (version, kind byte, payload []byte, err error) {
	var hdr [6]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:])
	if n < 2 || n > MaxFrameBytes {
		return 0, 0, nil, fmt.Errorf("blockproto: frame length %d out of range [2, %d]", n, MaxFrameBytes)
	}
	payload = make([]byte, n-2)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	return hdr[4], hdr[5], payload, nil
}

// Enc builds a frame payload: fixed-width big-endian integers,
// length-prefixed strings and blobs.
type Enc struct{ buf []byte }

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Enc) U8(v byte) *Enc { e.buf = append(e.buf, v); return e }

// U32 appends a big-endian uint32.
func (e *Enc) U32(v uint32) *Enc {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
	return e
}

// I64 appends a big-endian int64 (two's complement).
func (e *Enc) I64(v int64) *Enc {
	e.buf = binary.BigEndian.AppendUint64(e.buf, uint64(v))
	return e
}

// Str appends a uint16-length-prefixed string (array names, error text).
func (e *Enc) Str(s string) *Enc {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	e.buf = binary.BigEndian.AppendUint16(e.buf, uint16(len(s)))
	e.buf = append(e.buf, s...)
	return e
}

// Blob appends a uint32-length-prefixed byte blob (block payloads,
// manifest bytes).
func (e *Enc) Blob(b []byte) *Enc {
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(b)))
	e.buf = append(e.buf, b...)
	return e
}

// Dec decodes a frame payload written by Enc. The first decode error
// sticks: every later call returns zero values, and Err reports it.
type Dec struct {
	buf []byte
	err error
}

// NewDec wraps a payload for decoding.
func NewDec(b []byte) *Dec { return &Dec{buf: b} }

// Err returns the first decode error, if any.
func (d *Dec) Err() error { return d.err }

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = fmt.Errorf("blockproto: truncated payload (want %d bytes, have %d)", n, len(d.buf))
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

// U8 reads one byte.
func (d *Dec) U8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a big-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// I64 reads a big-endian int64.
func (d *Dec) I64() int64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}

// Str reads a uint16-length-prefixed string.
func (d *Dec) Str() string {
	n := d.take(2)
	if n == nil {
		return ""
	}
	return string(d.take(int(binary.BigEndian.Uint16(n))))
}

// Blob reads a uint32-length-prefixed byte blob.
func (d *Dec) Blob() []byte {
	n := d.take(4)
	if n == nil {
		return nil
	}
	ln := binary.BigEndian.Uint32(n)
	if ln > MaxFrameBytes {
		d.err = fmt.Errorf("blockproto: blob length %d exceeds frame limit", ln)
		return nil
	}
	return d.take(int(ln))
}

// EncodeBlock serializes a block matrix as little-endian IEEE-754 float64
// bits, row-major — the byte layout the on-disk stores use, so the server
// can pass payloads straight through.
func EncodeBlock(blk *blas.Matrix) []byte {
	buf := make([]byte, 8*len(blk.Data))
	for i, v := range blk.Data {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return buf
}

// DecodeBlock deserializes an EncodeBlock payload into a rows×cols matrix.
func DecodeBlock(rows, cols int, payload []byte) (*blas.Matrix, error) {
	blk := blas.NewMatrix(rows, cols)
	if want := 8 * len(blk.Data); len(payload) != want {
		return nil, fmt.Errorf("blockproto: block payload %d bytes, want %d for %dx%d", len(payload), want, rows, cols)
	}
	for i := range blk.Data {
		blk.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
	}
	return blk, nil
}
