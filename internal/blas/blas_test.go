package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestAddSubScale(t *testing.T) {
	a := &Matrix{Rows: 1, Cols: 3, Data: []float64{1, 2, 3}}
	b := &Matrix{Rows: 1, Cols: 3, Data: []float64{4, 5, 6}}
	dst := NewMatrix(1, 3)
	Add(dst, a, b)
	if dst.Data[0] != 5 || dst.Data[2] != 9 {
		t.Fatal("Add wrong")
	}
	Sub(dst, b, a)
	if dst.Data[0] != 3 || dst.Data[2] != 3 {
		t.Fatal("Sub wrong")
	}
	Scale(dst, 2, a)
	if dst.Data[1] != 4 {
		t.Fatal("Scale wrong")
	}
}

func TestGemmSmall(t *testing.T) {
	a := &Matrix{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}}
	b := &Matrix{Rows: 2, Cols: 2, Data: []float64{5, 6, 7, 8}}
	dst := NewMatrix(2, 2)
	Gemm(dst, a, false, b, false)
	want := []float64{19, 22, 43, 50}
	for i := range want {
		if dst.Data[i] != want[i] {
			t.Fatalf("Gemm got %v want %v", dst.Data, want)
		}
	}
}

func TestGemmAccumulates(t *testing.T) {
	a := &Matrix{Rows: 1, Cols: 1, Data: []float64{2}}
	b := &Matrix{Rows: 1, Cols: 1, Data: []float64{3}}
	dst := &Matrix{Rows: 1, Cols: 1, Data: []float64{10}}
	Gemm(dst, a, false, b, false)
	if dst.Data[0] != 16 {
		t.Fatalf("Gemm should accumulate: got %v", dst.Data[0])
	}
}

func TestGemmMatchesNaiveAllTransposes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			m, n, k := 70, 65, 130 // crosses tile boundaries
			var a, b *Matrix
			if ta {
				a = randMat(rng, k, m)
			} else {
				a = randMat(rng, m, k)
			}
			if tb {
				b = randMat(rng, n, k)
			} else {
				b = randMat(rng, k, n)
			}
			d1 := NewMatrix(m, n)
			d2 := NewMatrix(m, n)
			Gemm(d1, a, ta, b, tb)
			GemmNaive(d2, a, ta, b, tb)
			if diff := MaxAbsDiff(d1, d2); diff > 1e-9 {
				t.Fatalf("ta=%v tb=%v diff=%g", ta, tb, diff)
			}
		}
	}
}

func TestLUInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 3, 8, 33} {
		a := randMat(rng, n, n)
		// Diagonal dominance to guarantee invertibility.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		inv := NewMatrix(n, n)
		if err := Inverse(inv, a); err != nil {
			t.Fatal(err)
		}
		prod := NewMatrix(n, n)
		Gemm(prod, a, false, inv, false)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(prod.At(i, j)-want) > 1e-8 {
					t.Fatalf("n=%d: A·A⁻¹ not identity at (%d,%d): %g", n, i, j, prod.At(i, j))
				}
			}
		}
	}
}

func TestInverseSingular(t *testing.T) {
	a := NewMatrix(2, 2) // zero matrix
	inv := NewMatrix(2, 2)
	if err := Inverse(inv, a); err == nil {
		t.Fatal("singular matrix should error")
	}
}

func TestLUPivoting(t *testing.T) {
	// Zero leading pivot forces a row swap.
	a := &Matrix{Rows: 2, Cols: 2, Data: []float64{0, 1, 1, 0}}
	inv := NewMatrix(2, 2)
	if err := Inverse(inv, a); err != nil {
		t.Fatal(err)
	}
	// Inverse of the swap is the swap.
	if math.Abs(inv.At(0, 1)-1) > 1e-12 || math.Abs(inv.At(1, 0)-1) > 1e-12 {
		t.Fatalf("swap inverse wrong: %v", inv.Data)
	}
}

func TestRSS(t *testing.T) {
	e := &Matrix{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}}
	dst := NewMatrix(1, 2)
	RSS(dst, e)
	if dst.Data[0] != 10 || dst.Data[1] != 20 {
		t.Fatalf("RSS got %v", dst.Data)
	}
	RSS(dst, e) // accumulates
	if dst.Data[0] != 20 {
		t.Fatal("RSS should accumulate")
	}
}

// Property: (A+B) - B == A elementwise.
func TestAddSubInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMat(rng, 5, 7)
		b := randMat(rng, 5, 7)
		s := NewMatrix(5, 7)
		Add(s, a, b)
		d := NewMatrix(5, 7)
		Sub(d, s, b)
		return MaxAbsDiff(d, a) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: Gemm distributes over block splitting along k — computing
// C = A1·B1 + A2·B2 by two accumulating calls equals the single product of
// the concatenated operands. This is exactly the block-accumulation the
// execution engine relies on.
func TestGemmBlockAccumulationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		m, n, k1, k2 := 9, 8, 6, 5
		a1, a2 := randMat(rng, m, k1), randMat(rng, m, k2)
		b1, b2 := randMat(rng, k1, n), randMat(rng, k2, n)
		// Concatenate along k.
		ca := NewMatrix(m, k1+k2)
		for i := 0; i < m; i++ {
			for k := 0; k < k1; k++ {
				ca.Set(i, k, a1.At(i, k))
			}
			for k := 0; k < k2; k++ {
				ca.Set(i, k1+k, a2.At(i, k))
			}
		}
		cb := NewMatrix(k1+k2, n)
		for k := 0; k < k1; k++ {
			for j := 0; j < n; j++ {
				cb.Set(k, j, b1.At(k, j))
			}
		}
		for k := 0; k < k2; k++ {
			for j := 0; j < n; j++ {
				cb.Set(k1+k, j, b2.At(k, j))
			}
		}
		whole := NewMatrix(m, n)
		Gemm(whole, ca, false, cb, false)
		acc := NewMatrix(m, n)
		Gemm(acc, a1, false, b1, false)
		Gemm(acc, a2, false, b2, false)
		if diff := MaxAbsDiff(whole, acc); diff > 1e-9 {
			t.Fatalf("block accumulation mismatch: %g", diff)
		}
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("At/Set wrong")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone should copy")
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Fatal("Zero wrong")
	}
}
