// Package blas provides the in-core dense kernels the execution engine runs
// on memory-resident blocks: GEMM with transpose flags (cache-blocked),
// addition, subtraction, LU-based inversion, and residual sums of squares.
// It substitutes for GotoBLAS2 [15] (DESIGN.md substitution S6); absolute
// FLOP rates differ from the paper's, but the paper's conclusions depend
// only on CPU time being constant across plans, which holds here.
package blas

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero clears the matrix in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Add computes dst = a + b elementwise; shapes must match.
func Add(dst, a, b *Matrix) {
	checkSame(a, b)
	checkSame(dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// Sub computes dst = a - b elementwise.
func Sub(dst, a, b *Matrix) {
	checkSame(a, b)
	checkSame(dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// Scale computes dst = alpha * a.
func Scale(dst *Matrix, alpha float64, a *Matrix) {
	checkSame(dst, a)
	for i := range dst.Data {
		dst.Data[i] = alpha * a.Data[i]
	}
}

func checkSame(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("blas: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// gemmTile is the cache-blocking tile edge for Gemm.
const gemmTile = 64

// Gemm computes dst += op(a)·op(b), where op transposes its argument when
// the corresponding flag is set. dst must already have the product shape;
// use dst.Zero() first for a plain product. The kernel is tiled for cache
// locality (the in-core analogue of the paper's I/O blocking).
func Gemm(dst *Matrix, a *Matrix, transA bool, b *Matrix, transB bool) {
	ar, ac := a.Rows, a.Cols
	if transA {
		ar, ac = ac, ar
	}
	br, bc := b.Rows, b.Cols
	if transB {
		br, bc = bc, br
	}
	if ac != br {
		panic(fmt.Sprintf("blas: gemm inner dims %d vs %d", ac, br))
	}
	if dst.Rows != ar || dst.Cols != bc {
		panic(fmt.Sprintf("blas: gemm dst %dx%d want %dx%d", dst.Rows, dst.Cols, ar, bc))
	}
	at := func(i, k int) float64 {
		if transA {
			return a.Data[k*a.Cols+i]
		}
		return a.Data[i*a.Cols+k]
	}
	bt := func(k, j int) float64 {
		if transB {
			return b.Data[j*b.Cols+k]
		}
		return b.Data[k*b.Cols+j]
	}
	for ii := 0; ii < ar; ii += gemmTile {
		iMax := min(ii+gemmTile, ar)
		for kk := 0; kk < ac; kk += gemmTile {
			kMax := min(kk+gemmTile, ac)
			for jj := 0; jj < bc; jj += gemmTile {
				jMax := min(jj+gemmTile, bc)
				for i := ii; i < iMax; i++ {
					for k := kk; k < kMax; k++ {
						av := at(i, k)
						if av == 0 {
							continue
						}
						row := dst.Data[i*dst.Cols:]
						for j := jj; j < jMax; j++ {
							row[j] += av * bt(k, j)
						}
					}
				}
			}
		}
	}
}

// GemmNaive is the untiled triple loop, kept for the kernel ablation and as
// a correctness oracle in tests.
func GemmNaive(dst *Matrix, a *Matrix, transA bool, b *Matrix, transB bool) {
	ar, ac := a.Rows, a.Cols
	if transA {
		ar, ac = ac, ar
	}
	bc := b.Cols
	if transB {
		bc = b.Rows
	}
	at := func(i, k int) float64 {
		if transA {
			return a.Data[k*a.Cols+i]
		}
		return a.Data[i*a.Cols+k]
	}
	bt := func(k, j int) float64 {
		if transB {
			return b.Data[j*b.Cols+k]
		}
		return b.Data[k*b.Cols+j]
	}
	for i := 0; i < ar; i++ {
		for j := 0; j < bc; j++ {
			s := dst.At(i, j)
			for k := 0; k < ac; k++ {
				s += at(i, k) * bt(k, j)
			}
			dst.Set(i, j, s)
		}
	}
}

// LU computes an in-place LU decomposition with partial pivoting, returning
// the pivot permutation. a must be square.
func LU(a *Matrix) (piv []int, err error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("blas: LU of non-square %dx%d", a.Rows, a.Cols)
	}
	piv = make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	for col := 0; col < n; col++ {
		// Pivot selection.
		p, best := col, math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				p, best = r, v
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("blas: singular matrix at column %d", col)
		}
		if p != col {
			piv[p], piv[col] = piv[col], piv[p]
			for j := 0; j < n; j++ {
				v1, v2 := a.At(col, j), a.At(p, j)
				a.Set(col, j, v2)
				a.Set(p, j, v1)
			}
		}
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) * inv
			a.Set(r, col, f)
			if f == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
			}
		}
	}
	return piv, nil
}

// Inverse computes dst = a^{-1} via LU with partial pivoting; a is not
// modified.
func Inverse(dst, a *Matrix) error {
	n := a.Rows
	if a.Cols != n || dst.Rows != n || dst.Cols != n {
		return fmt.Errorf("blas: inverse shape mismatch")
	}
	lu := a.Clone()
	piv, err := LU(lu)
	if err != nil {
		return err
	}
	// Solve LU x = e_piv for each unit vector.
	col := make([]float64, n)
	for e := 0; e < n; e++ {
		for i := 0; i < n; i++ {
			if piv[i] == e {
				col[i] = 1
			} else {
				col[i] = 0
			}
		}
		// Forward substitution (L has unit diagonal).
		for i := 1; i < n; i++ {
			s := col[i]
			for j := 0; j < i; j++ {
				s -= lu.At(i, j) * col[j]
			}
			col[i] = s
		}
		// Back substitution.
		for i := n - 1; i >= 0; i-- {
			s := col[i]
			for j := i + 1; j < n; j++ {
				s -= lu.At(i, j) * col[j]
			}
			col[i] = s / lu.At(i, i)
		}
		for i := 0; i < n; i++ {
			dst.Set(i, e, col[i])
		}
	}
	return nil
}

// RSS accumulates per-column residual sums of squares of e into dst (a 1×k
// row vector): dst[0,j] += Σ_i e[i,j]^2.
func RSS(dst, e *Matrix) {
	if dst.Cols != e.Cols || dst.Rows != 1 {
		panic("blas: RSS dst must be 1×cols of e")
	}
	for i := 0; i < e.Rows; i++ {
		for j := 0; j < e.Cols; j++ {
			v := e.At(i, j)
			dst.Data[j] += v * v
		}
	}
}

// MaxAbsDiff returns the max absolute elementwise difference, for tests.
func MaxAbsDiff(a, b *Matrix) float64 {
	checkSame(a, b)
	var m float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
