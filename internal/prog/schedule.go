package prog

import (
	"fmt"
	"strings"
)

// Schedule maps every statement instance to a multidimensional time (§4.1).
// Each statement has NRows affine rows over its extended iteration vector
// (ds + np + 1 coefficients); times are compared lexicographically. The last
// row of an optimizer-produced schedule is the constant dimension c_s
// (§4.2); original schedules additionally carry a leading nest-position row.
type Schedule struct {
	NRows int
	// Rows[stmtID] has NRows rows, each of length ds(stmt)+np+1.
	Rows map[int][][]int64
}

// NewSchedule creates an empty schedule with the given number of time
// dimensions.
func NewSchedule(nrows int) *Schedule {
	return &Schedule{NRows: nrows, Rows: make(map[int][][]int64)}
}

// SetRows installs a statement's schedule rows.
func (sch *Schedule) SetRows(stmtID int, rows [][]int64) {
	if len(rows) != sch.NRows {
		panic(fmt.Sprintf("prog: schedule for stmt %d has %d rows, want %d", stmtID, len(rows), sch.NRows))
	}
	sch.Rows[stmtID] = rows
}

// TimeOf returns the schedule time of a concrete statement instance.
func (sch *Schedule) TimeOf(s *Statement, x, params []int64) []int64 {
	rows, ok := sch.Rows[s.ID]
	if !ok {
		panic(fmt.Sprintf("prog: no schedule for statement %s", s.Name))
	}
	t := make([]int64, len(rows))
	for i, r := range rows {
		t[i] = EvalRow(r, x, params)
	}
	return t
}

// LexLess reports a ≺ b for equal-length time vectors.
func LexLess(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// LexCompare returns -1, 0 or 1.
func LexCompare(a, b []int64) int {
	for i := range a {
		if a[i] < b[i] {
			return -1
		}
		if a[i] > b[i] {
			return 1
		}
	}
	return 0
}

// OriginalSchedule builds the program's original schedule from nest/loop
// structure: time = (nest index, loop variables padded to d̃ with zeros,
// textual position). All statements share the same row count 1 + d̃ + 1, so
// lexicographic comparison is total.
func (p *Program) OriginalSchedule() *Schedule {
	dt := p.DTilde()
	sch := NewSchedule(dt + 2)
	np := len(p.Params)
	for _, s := range p.Stmts {
		w := s.Ds() + np + 1
		rows := make([][]int64, 0, dt+2)
		nest := make([]int64, w)
		nest[w-1] = int64(s.Nest)
		rows = append(rows, nest)
		for q := 0; q < dt; q++ {
			r := make([]int64, w)
			if q < s.Ds() {
				r[q] = 1
			}
			rows = append(rows, r)
		}
		pos := make([]int64, w)
		pos[w-1] = int64(s.Pos)
		rows = append(rows, pos)
		sch.SetRows(s.ID, rows)
	}
	return sch
}

// String renders the schedule rows per statement for debugging and reports.
func (sch *Schedule) StringFor(p *Program) string {
	var sb strings.Builder
	for _, s := range p.Stmts {
		rows := sch.Rows[s.ID]
		if rows == nil {
			continue
		}
		fmt.Fprintf(&sb, "Θ%s(x) = (", s.Name)
		for q, r := range rows {
			if q > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(renderRow(r, s.Vars, p.Params))
		}
		sb.WriteString(")\n")
	}
	return sb.String()
}

func renderRow(row []int64, vars, params []string) string {
	names := append(append([]string(nil), vars...), params...)
	var terms []string
	for i, c := range row[:len(row)-1] {
		switch {
		case c == 0:
		case c == 1:
			terms = append(terms, names[i])
		case c == -1:
			terms = append(terms, "-"+names[i])
		default:
			terms = append(terms, fmt.Sprintf("%d%s", c, names[i]))
		}
	}
	k := row[len(row)-1]
	if k != 0 || len(terms) == 0 {
		terms = append(terms, fmt.Sprintf("%d", k))
	}
	out := strings.Join(terms, "+")
	return strings.ReplaceAll(out, "+-", "-")
}
