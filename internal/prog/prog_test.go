package prog

import (
	"testing"
)

// example1 builds the paper's Example 1 program:
//
//	for i, k: C[i,k] = A[i,k] + B[i,k]          // s1
//	for i, j, k: E[i,j] += C[i,k] * D[k,j]      // s2 (read of E guarded k>=1)
func example1(n1, n2, n3 int64) *Program {
	p := New("addmul", "n1", "n2", "n3")
	p.AddArray(&Array{Name: "A", BlockRows: 8, BlockCols: 8, GridRows: int(n1), GridCols: int(n2)})
	p.AddArray(&Array{Name: "B", BlockRows: 8, BlockCols: 8, GridRows: int(n1), GridCols: int(n2)})
	p.AddArray(&Array{Name: "C", BlockRows: 8, BlockCols: 8, GridRows: int(n1), GridCols: int(n2)})
	p.AddArray(&Array{Name: "D", BlockRows: 8, BlockCols: 8, GridRows: int(n2), GridCols: int(n3)})
	p.AddArray(&Array{Name: "E", BlockRows: 8, BlockCols: 8, GridRows: int(n1), GridCols: int(n3)})

	p.NewNest()
	s1 := p.NewStatement("s1", "i", "k")
	s1.Range("i", C(0), V("n1")).Range("k", C(0), V("n2"))
	s1.Access(Read, "A", V("i"), V("k"))
	s1.Access(Read, "B", V("i"), V("k"))
	s1.Access(Write, "C", V("i"), V("k"))
	s1.SetKernel("add").SetNote("C[i,k]=A[i,k]+B[i,k]")

	p.NewNest()
	s2 := p.NewStatement("s2", "i", "j", "k")
	s2.Range("i", C(0), V("n1")).Range("j", C(0), V("n3")).Range("k", C(0), V("n2"))
	s2.Access(Read, "C", V("i"), V("k"))
	s2.Access(Read, "D", V("k"), V("j"))
	s2.AccessWhen(Read, "E", V("i"), V("j"), []Cond{GE(V("k").AddK(-1))})
	s2.Access(Write, "E", V("i"), V("j"))
	s2.SetKernel("gemm-acc").SetNote("E[i,j]+=C[i,k]*D[k,j]")

	p.Bind("n1", n1).Bind("n2", n2).Bind("n3", n3)
	return p
}

func TestBuilderBasics(t *testing.T) {
	p := example1(3, 4, 2)
	if len(p.Stmts) != 2 || p.DTilde() != 3 {
		t.Fatalf("stmts=%d dtilde=%d", len(p.Stmts), p.DTilde())
	}
	s1, s2 := p.Stmts[0], p.Stmts[1]
	if s1.Ds() != 2 || s2.Ds() != 3 {
		t.Fatal("depths wrong")
	}
	if s1.Nest != 0 || s2.Nest != 1 {
		t.Fatal("nest assignment wrong")
	}
	if s2.WriteAccess() == nil || s2.WriteAccess().Array != "E" {
		t.Fatal("write access lookup wrong")
	}
}

func TestInstancesEnumeration(t *testing.T) {
	p := example1(3, 4, 2)
	inst1, err := p.Instances(p.Stmts[0], 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst1) != 12 {
		t.Fatalf("s1 instances=%d want 12", len(inst1))
	}
	inst2, err := p.Instances(p.Stmts[1], 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst2) != 24 {
		t.Fatalf("s2 instances=%d want 24", len(inst2))
	}
}

func TestAccessGuard(t *testing.T) {
	p := example1(3, 4, 2)
	s2 := p.Stmts[1]
	params := p.ParamValues()
	var eRead *Access
	for i := range s2.Accesses {
		ac := &s2.Accesses[i]
		if ac.Type == Read && ac.Array == "E" {
			eRead = ac
		}
	}
	if eRead == nil {
		t.Fatal("missing guarded read of E")
	}
	if eRead.Guarded([]int64{0, 0, 0}, params) {
		t.Fatal("E read should be guarded out at k=0")
	}
	if !eRead.Guarded([]int64{0, 0, 1}, params) {
		t.Fatal("E read should happen at k=1")
	}
}

func TestBlockAt(t *testing.T) {
	p := example1(3, 4, 2)
	s2 := p.Stmts[1]
	params := p.ParamValues()
	// D access is D[k,j]: at (i,j,k)=(1,2,3) block is (3,2).
	var dRead *Access
	for i := range s2.Accesses {
		if s2.Accesses[i].Array == "D" {
			dRead = &s2.Accesses[i]
		}
	}
	r, c := dRead.BlockAt([]int64{1, 2, 3}, params)
	if r != 3 || c != 2 {
		t.Fatalf("D block at (1,2,3) = (%d,%d) want (3,2)", r, c)
	}
}

func TestOriginalScheduleOrder(t *testing.T) {
	p := example1(2, 2, 2)
	sch := p.OriginalSchedule()
	params := p.ParamValues()
	s1, s2 := p.Stmts[0], p.Stmts[1]
	// Every s1 instance precedes every s2 instance.
	t1 := sch.TimeOf(s1, []int64{1, 1}, params)
	t2 := sch.TimeOf(s2, []int64{0, 0, 0}, params)
	if !LexLess(t1, t2) {
		t.Fatalf("s1(1,1)=%v should precede s2(0,0,0)=%v", t1, t2)
	}
	// Within s2, loop order i,j,k.
	a := sch.TimeOf(s2, []int64{0, 1, 1}, params)
	b := sch.TimeOf(s2, []int64{0, 1, 0}, params)
	if !LexLess(b, a) {
		t.Fatal("k should be innermost in original order")
	}
	c := sch.TimeOf(s2, []int64{1, 0, 0}, params)
	if !LexLess(a, c) {
		t.Fatal("i should dominate order")
	}
}

func TestOriginalScheduleSameNest(t *testing.T) {
	// Two statements in the same loop: for i { s1; s2 } — interleaved.
	p := New("mini", "n")
	p.AddArray(&Array{Name: "A", BlockRows: 4, BlockCols: 1, GridRows: 8, GridCols: 1})
	p.NewNest()
	s1 := p.NewStatement("s1", "i")
	s1.Range("i", C(0), V("n"))
	s1.Access(Write, "A", V("i"), C(0))
	s2 := p.NewStatement("s2", "i")
	s2.Range("i", C(0), V("n"))
	s2.Access(Read, "A", V("n").Minus(V("i")).AddK(-1), C(0))
	p.Bind("n", 4)
	if s1.Nest != s2.Nest {
		t.Fatal("statements should share a nest")
	}
	if s1.Pos != 0 || s2.Pos != 1 {
		t.Fatalf("positions wrong: %d %d", s1.Pos, s2.Pos)
	}
	sch := p.OriginalSchedule()
	params := p.ParamValues()
	// s1(0) < s2(0) < s1(1).
	t10 := sch.TimeOf(s1, []int64{0}, params)
	t20 := sch.TimeOf(s2, []int64{0}, params)
	t11 := sch.TimeOf(s1, []int64{1}, params)
	if !LexLess(t10, t20) || !LexLess(t20, t11) {
		t.Fatalf("interleaving broken: %v %v %v", t10, t20, t11)
	}
}

func TestLexCompare(t *testing.T) {
	if LexCompare([]int64{1, 2}, []int64{1, 2}) != 0 {
		t.Fatal("equal")
	}
	if LexCompare([]int64{1, 2}, []int64{1, 3}) != -1 {
		t.Fatal("less")
	}
	if LexCompare([]int64{2, 0}, []int64{1, 9}) != 1 {
		t.Fatal("greater")
	}
}

func TestEvalRow(t *testing.T) {
	// row over (x0,x1, p0, 1): 2*x0 - x1 + 3*p0 + 5
	row := []int64{2, -1, 3, 5}
	if got := EvalRow(row, []int64{4, 1}, []int64{2}); got != 2*4-1+3*2+5 {
		t.Fatalf("EvalRow got %d", got)
	}
}

func TestExprArithmetic(t *testing.T) {
	e := V("i").Plus(V("j")).Minus(C(2)).AddK(1)
	if e.Terms["i"] != 1 || e.Terms["j"] != 1 || e.K != -1 {
		t.Fatalf("expr wrong: %+v", e)
	}
}

func TestDoubleWritePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("second write access should panic")
		}
	}()
	p := New("bad", "n")
	p.AddArray(&Array{Name: "A", BlockRows: 1, BlockCols: 1, GridRows: 1, GridCols: 1})
	s := p.NewStatement("s", "i")
	s.Access(Write, "A", V("i"), C(0))
	s.Access(Write, "A", V("i"), C(1))
}

func TestParamBinding(t *testing.T) {
	p := example1(3, 4, 2)
	vals := p.ParamValues()
	if vals[0] != 3 || vals[1] != 4 || vals[2] != 2 {
		t.Fatalf("bindings wrong: %v", vals)
	}
}

func TestScheduleStringFor(t *testing.T) {
	p := example1(2, 2, 1)
	sch := p.OriginalSchedule()
	s := sch.StringFor(p)
	if s == "" {
		t.Fatal("StringFor should render")
	}
}

func TestDomainWithContext(t *testing.T) {
	p := example1(3, 4, 2)
	d := p.DomainWithContext(p.Stmts[0])
	// Point with n1=0 must be excluded by context (n1>=1).
	if d.Contains([]int64{0, 0, 0, 4, 2}) {
		t.Fatal("context should exclude n1=0")
	}
	if !d.Contains([]int64{0, 0, 1, 4, 2}) {
		t.Fatal("valid point rejected")
	}
}
