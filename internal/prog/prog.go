// Package prog defines the polyhedral intermediate representation of
// static-control programs (§4.1 of the paper): statements with parametric
// integer iteration domains, affine array-block accesses Φ, and affine
// schedules Θ. Programs are built either through the operator library
// (internal/ops) or directly through this package's builder API (the
// "user-defined operator" path).
package prog

import (
	"fmt"

	"riotshare/internal/polyhedra"
)

// AccessType distinguishes reads from writes.
type AccessType uint8

const (
	// Read is an array-block read access.
	Read AccessType = iota
	// Write is an array-block write access. The paper assumes each statement
	// has at most one write access (§4.1); the builder enforces this.
	Write
)

// String returns "R" or "W".
func (t AccessType) String() string {
	if t == Write {
		return "W"
	}
	return "R"
}

// Array describes a disk-resident blocked array. Block sizes are fixed per
// array; the grid of blocks is what iteration domains range over.
type Array struct {
	Name string
	// BlockRows/BlockCols: elements per block, used by the execution engine
	// for real computation. GridRows/GridCols: number of blocks in each
	// dimension, used to allocate storage.
	BlockRows, BlockCols int
	GridRows, GridCols   int
	// LogicalBlockBytes is the byte size of one block used for I/O
	// accounting (paper-scale; may exceed BlockRows*BlockCols*8 when
	// running scaled-down data — DESIGN.md substitution S5).
	LogicalBlockBytes int64
	// Transient arrays are intermediates that need not survive the program;
	// a W→W-elided or pipelined block of a transient array may never touch
	// disk.
	Transient bool
}

// PhysicalBlockBytes returns the actual bytes of a stored block.
func (a *Array) PhysicalBlockBytes() int64 {
	return int64(a.BlockRows) * int64(a.BlockCols) * 8
}

// Access is one array-block access of a statement: 〈s, t, A, Φ〉 in the
// paper's notation, optionally guarded by affine conditions on the
// statement's extended iteration vector (modelling the paper's footnote-1
// conditional reads, e.g. the accumulator read that exists only for k >= 1).
type Access struct {
	Type  AccessType
	Array string
	// Phi has one row per array dimension (always 2 here: block-row,
	// block-col); each row has length ds+np+1 (loop vars, params, constant).
	Phi [][]int64
	// When, if non-nil, restricts the instances performing this access; it
	// is a polyhedron over the statement's ds+np space.
	When *polyhedra.Poly
}

// Guarded reports whether the access happens at the given instance (with the
// given parameter values).
func (ac *Access) Guarded(x, params []int64) bool {
	if ac.When == nil {
		return true
	}
	pt := make([]int64, 0, len(x)+len(params))
	pt = append(pt, x...)
	pt = append(pt, params...)
	return ac.When.Contains(pt)
}

// BlockAt evaluates Φ at an instance, returning the accessed block
// coordinates.
func (ac *Access) BlockAt(x, params []int64) (int64, int64) {
	r := EvalRow(ac.Phi[0], x, params)
	c := EvalRow(ac.Phi[1], x, params)
	return r, c
}

// Statement is one statement of the program with its iteration domain.
type Statement struct {
	ID   int
	Name string
	// Vars are the loop variables surrounding the statement, outermost
	// first; ds = len(Vars).
	Vars []string
	// Nest and Pos locate the statement in the original program text: Nest
	// is the index of its top-level loop nest, Pos its textual position
	// within the nest body. They define the original schedule.
	Nest, Pos int
	// Domain is the iteration domain over ds+np columns (loop vars then
	// params), with the constant in each constraint's K.
	Domain   *polyhedra.Poly
	Accesses []Access
	// Kernel names the in-core computation the execution engine runs for
	// each instance (e.g. "add", "gemm", "inv"); operand binding follows the
	// access order. Empty for analysis-only programs.
	Kernel string
	// Note is the human-readable statement text, e.g. "C[i,k]=A[i,k]+B[i,k]".
	Note string

	prog *Program
}

// Ds returns the loop-nest depth of the statement.
func (s *Statement) Ds() int { return len(s.Vars) }

// Program is a static-control program over blocked arrays.
type Program struct {
	Name   string
	Params []string
	// Context constrains the parameters (over np columns); by default every
	// parameter is >= 1.
	Context *polyhedra.Poly
	Arrays  map[string]*Array
	Stmts   []*Statement
	// Binding optionally fixes parameter values for costing and execution.
	Binding map[string]int64

	nests int
}

// New creates a program with the given global parameters, each constrained
// to be >= 1 in the context.
func New(name string, params ...string) *Program {
	ctx := polyhedra.NewPoly(len(params), params...)
	for i := range params {
		coef := make([]int64, len(params))
		coef[i] = 1
		ctx.AddIneq(coef, -1)
	}
	return &Program{
		Name:    name,
		Params:  params,
		Context: ctx,
		Arrays:  make(map[string]*Array),
		Binding: make(map[string]int64),
	}
}

// NumParams returns the number of global parameters.
func (p *Program) NumParams() int { return len(p.Params) }

// AddArray registers an array; LogicalBlockBytes defaults to the physical
// size if unset.
func (p *Program) AddArray(a *Array) *Array {
	if a.LogicalBlockBytes == 0 {
		a.LogicalBlockBytes = a.PhysicalBlockBytes()
	}
	if _, dup := p.Arrays[a.Name]; dup {
		panic(fmt.Sprintf("prog: duplicate array %q", a.Name))
	}
	p.Arrays[a.Name] = a
	return a
}

// Bind fixes a parameter value for costing/execution.
func (p *Program) Bind(param string, v int64) *Program {
	if p.paramIndex(param) < 0 {
		panic(fmt.Sprintf("prog: unknown parameter %q", param))
	}
	p.Binding[param] = v
	return p
}

// ParamValues returns the bound parameter values in declaration order,
// panicking if any parameter is unbound.
func (p *Program) ParamValues() []int64 {
	out := make([]int64, len(p.Params))
	for i, name := range p.Params {
		v, ok := p.Binding[name]
		if !ok {
			panic(fmt.Sprintf("prog: parameter %q unbound", name))
		}
		out[i] = v
	}
	return out
}

func (p *Program) paramIndex(name string) int {
	for i, q := range p.Params {
		if q == name {
			return i
		}
	}
	return -1
}

// NewNest starts a new top-level loop nest and returns its index; statements
// created with NewStatement are placed in the most recent nest.
func (p *Program) NewNest() int {
	p.nests++
	return p.nests - 1
}

// NewStatement creates a statement in the current (most recent) nest with
// the given loop variables and an initially unconstrained domain. Pos is its
// textual order within the nest.
func (p *Program) NewStatement(name string, vars ...string) *Statement {
	if p.nests == 0 {
		p.nests = 1
	}
	nest := p.nests - 1
	pos := 0
	for _, s := range p.Stmts {
		if s.Nest == nest {
			pos++
		}
	}
	names := append(append([]string(nil), vars...), p.Params...)
	s := &Statement{
		ID:     len(p.Stmts),
		Name:   name,
		Vars:   append([]string(nil), vars...),
		Nest:   nest,
		Pos:    pos,
		Domain: polyhedra.NewPoly(len(vars)+len(p.Params), names...),
		prog:   p,
	}
	p.Stmts = append(p.Stmts, s)
	return s
}

// DTilde returns d̃ = max statement depth.
func (p *Program) DTilde() int {
	d := 0
	for _, s := range p.Stmts {
		if s.Ds() > d {
			d = s.Ds()
		}
	}
	return d
}

// Expr is an affine expression over a statement's loop variables and the
// program parameters, used by the builder API.
type Expr struct {
	Terms map[string]int64
	K     int64
}

// V returns the expression consisting of a single variable.
func V(name string) Expr { return Expr{Terms: map[string]int64{name: 1}} }

// C returns a constant expression.
func C(k int64) Expr { return Expr{K: k} }

// Plus returns e + f.
func (e Expr) Plus(f Expr) Expr {
	t := map[string]int64{}
	for k, v := range e.Terms {
		t[k] += v
	}
	for k, v := range f.Terms {
		t[k] += v
	}
	return Expr{Terms: t, K: e.K + f.K}
}

// Minus returns e - f.
func (e Expr) Minus(f Expr) Expr {
	t := map[string]int64{}
	for k, v := range e.Terms {
		t[k] += v
	}
	for k, v := range f.Terms {
		t[k] -= v
	}
	return Expr{Terms: t, K: e.K - f.K}
}

// AddK returns e + k.
func (e Expr) AddK(k int64) Expr { return Expr{Terms: e.Terms, K: e.K + k} }

// row converts the expression to a coefficient row of length ds+np+1 in the
// statement's extended space.
func (s *Statement) row(e Expr) []int64 {
	np := len(s.prog.Params)
	out := make([]int64, s.Ds()+np+1)
	out[s.Ds()+np] = e.K
	for name, coef := range e.Terms {
		idx := -1
		for i, v := range s.Vars {
			if v == name {
				idx = i
				break
			}
		}
		if idx < 0 {
			pi := s.prog.paramIndex(name)
			if pi < 0 {
				panic(fmt.Sprintf("prog: unknown name %q in statement %s", name, s.Name))
			}
			idx = s.Ds() + pi
		}
		out[idx] += coef
	}
	return out
}

// rowNoConst drops the trailing constant, returning (coefs, K) suitable for
// a domain constraint.
func (s *Statement) rowNoConst(e Expr) ([]int64, int64) {
	r := s.row(e)
	n := len(r) - 1
	return r[:n], r[n]
}

// Range adds lo <= v < hi to the domain (hi exclusive, matching the paper's
// C-style loops).
func (s *Statement) Range(v string, lo, hi Expr) *Statement {
	c1, k1 := s.rowNoConst(V(v).Minus(lo))
	s.Domain.AddIneq(c1, k1)
	c2, k2 := s.rowNoConst(hi.Minus(V(v)).AddK(-1))
	s.Domain.AddIneq(c2, k2)
	return s
}

// DomainIneq adds e >= 0 to the domain.
func (s *Statement) DomainIneq(e Expr) *Statement {
	c, k := s.rowNoConst(e)
	s.Domain.AddIneq(c, k)
	return s
}

// Access adds an array access with block subscripts given by expressions
// (row, col).
func (s *Statement) Access(t AccessType, array string, rowIdx, colIdx Expr) *Statement {
	return s.AccessWhen(t, array, rowIdx, colIdx, nil)
}

// Cond is an affine guard condition e >= 0 or e == 0.
type Cond struct {
	E  Expr
	Eq bool
}

// GE returns the guard e >= 0.
func GE(e Expr) Cond { return Cond{E: e} }

// EQ returns the guard e == 0.
func EQ(e Expr) Cond { return Cond{E: e, Eq: true} }

// AccessWhen adds a guarded access; the guard conditions restrict the
// instances at which the access occurs.
func (s *Statement) AccessWhen(t AccessType, array string, rowIdx, colIdx Expr, conds []Cond) *Statement {
	if _, ok := s.prog.Arrays[array]; !ok {
		panic(fmt.Sprintf("prog: access to unknown array %q", array))
	}
	if t == Write {
		for _, a := range s.Accesses {
			if a.Type == Write {
				panic(fmt.Sprintf("prog: statement %s has a second write access (unsupported, §4.1)", s.Name))
			}
		}
	}
	ac := Access{
		Type:  t,
		Array: array,
		Phi:   [][]int64{s.row(rowIdx), s.row(colIdx)},
	}
	if len(conds) > 0 {
		names := append(append([]string(nil), s.Vars...), s.prog.Params...)
		w := polyhedra.NewPoly(s.Ds()+len(s.prog.Params), names...)
		for _, c := range conds {
			coef, k := s.rowNoConst(c.E)
			if c.Eq {
				w.AddEq(coef, k)
			} else {
				w.AddIneq(coef, k)
			}
		}
		ac.When = w
	}
	s.Accesses = append(s.Accesses, ac)
	return s
}

// SetKernel binds the in-core computation for execution.
func (s *Statement) SetKernel(k string) *Statement {
	s.Kernel = k
	return s
}

// SetNote attaches the human-readable statement text.
func (s *Statement) SetNote(n string) *Statement {
	s.Note = n
	return s
}

// WriteAccess returns the statement's write access, or nil.
func (s *Statement) WriteAccess() *Access {
	for i := range s.Accesses {
		if s.Accesses[i].Type == Write {
			return &s.Accesses[i]
		}
	}
	return nil
}

// DomainWithContext returns the iteration domain intersected with the
// program context lifted to the statement's ds+np space.
func (p *Program) DomainWithContext(s *Statement) *polyhedra.Poly {
	ctx := p.Context.InsertVars(0, s.Ds())
	return polyhedra.Intersect(s.Domain, ctx)
}

// Instances enumerates the statement's concrete iteration instances under
// the program's parameter binding (exact; block-level domains are small).
func (p *Program) Instances(s *Statement, limit int) ([][]int64, error) {
	vals := p.ParamValues()
	d := s.Domain.Clone()
	for i := len(p.Params) - 1; i >= 0; i-- {
		d = d.BindVar(s.Ds()+i, vals[i])
	}
	return d.Enumerate(limit)
}

// EvalRow evaluates an affine row (len(x)+len(params)+1 coefficients) at a
// concrete instance and parameter values.
func EvalRow(row, x, params []int64) int64 {
	if len(row) != len(x)+len(params)+1 {
		panic(fmt.Sprintf("prog: EvalRow length mismatch: row=%d x=%d params=%d", len(row), len(x), len(params)))
	}
	var v int64
	for i, xv := range x {
		v += row[i] * xv
	}
	for i, pv := range params {
		v += row[len(x)+i] * pv
	}
	return v + row[len(row)-1]
}
