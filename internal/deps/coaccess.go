package deps

import (
	"fmt"

	"riotshare/internal/polyhedra"
	"riotshare/internal/prog"
)

// Kind is the type of a co-access (Definition 1).
type Kind uint8

const (
	// RR is read followed by read.
	RR Kind = iota
	// RW is read followed by write.
	RW
	// WR is write followed by read.
	WR
	// WW is write followed by write.
	WW
)

// String renders e.g. "W→R".
func (k Kind) String() string {
	switch k {
	case RR:
		return "R→R"
	case RW:
		return "R→W"
	case WR:
		return "W→R"
	default:
		return "W→W"
	}
}

// CoAccess is a pair of accesses to the same array together with its extent
// polyhedron (Definition 1): all instance pairs (x, x') touching the same
// block with x before x' in the original schedule. Depending on its type and
// emptiness it is a dependence (Definition 2) and/or a sharing opportunity
// (Definition 3).
type CoAccess struct {
	Prog     *prog.Program
	Src, Tgt *prog.Statement
	SrcAcc   int // index into Src.Accesses
	TgtAcc   int // index into Tgt.Accesses
	Space    PairSpace
	// Extent is the (possibly preprocessed) extent polyhedron as a union of
	// basic polyhedra over the pair space.
	Extent *polyhedra.Set
}

// SrcAccess returns the source access.
func (c *CoAccess) SrcAccess() *prog.Access { return &c.Src.Accesses[c.SrcAcc] }

// TgtAccess returns the target access.
func (c *CoAccess) TgtAccess() *prog.Access { return &c.Tgt.Accesses[c.TgtAcc] }

// Kind returns the co-access type.
func (c *CoAccess) Kind() Kind {
	s, t := c.SrcAccess().Type, c.TgtAccess().Type
	switch {
	case s == prog.Read && t == prog.Read:
		return RR
	case s == prog.Read && t == prog.Write:
		return RW
	case s == prog.Write && t == prog.Read:
		return WR
	default:
		return WW
	}
}

// IsSelf reports whether source and target are the same statement (Table 1's
// "self" case).
func (c *CoAccess) IsSelf() bool { return c.Src.ID == c.Tgt.ID }

// Array returns the shared array name.
func (c *CoAccess) Array() string { return c.SrcAccess().Array }

// String renders e.g. "s1WC→s2RC".
func (c *CoAccess) String() string {
	return fmt.Sprintf("%s%s%s→%s%s%s",
		c.Src.Name, c.SrcAccess().Type, c.Array(),
		c.Tgt.Name, c.TgtAccess().Type, c.Array())
}

// Key uniquely identifies the co-access within a program.
func (c *CoAccess) Key() string {
	return fmt.Sprintf("%d.%d→%d.%d", c.Src.ID, c.SrcAcc, c.Tgt.ID, c.TgtAcc)
}

// buildExtent constructs the raw extent polyhedron of a co-access under the
// original schedule: domain and guard constraints for both sides, block
// equality Φx = Φ'x', and the lexicographic order disjunction.
func buildExtent(p *prog.Program, sch *prog.Schedule, src *prog.Statement, srcAcc int, tgt *prog.Statement, tgtAcc int) (PairSpace, *polyhedra.Set) {
	ps := NewPairSpace(p, src, tgt)
	np := ps.NP
	total := ps.Dim()
	srcOff, tgtOff, paramOff := 0, src.Ds(), src.Ds()+tgt.Ds()
	names := ps.Names(p.Params)

	base := polyhedra.NewPoly(total, names...)
	add := func(q *polyhedra.Poly) {
		for _, c := range q.Cons {
			base.Add(c)
		}
	}
	add(liftPoly(p.DomainWithContext(src), src.Ds(), np, srcOff, paramOff, total))
	add(liftPoly(p.DomainWithContext(tgt), tgt.Ds(), np, tgtOff, paramOff, total))
	a, b := &src.Accesses[srcAcc], &tgt.Accesses[tgtAcc]
	if a.When != nil {
		add(liftPoly(a.When, src.Ds(), np, srcOff, paramOff, total))
	}
	if b.When != nil {
		add(liftPoly(b.When, tgt.Ds(), np, tgtOff, paramOff, total))
	}
	// Block equality, one row per array dimension.
	for r := range a.Phi {
		coef, k := diffRow(a.Phi[r], src.Ds(), b.Phi[r], tgt.Ds(), np, srcOff, tgtOff, paramOff, total)
		base.AddEq(coef, k)
	}
	set := polyhedra.NewSet(total, names...)
	for _, op := range orderPieces(sch, src, srcOff, tgt, tgtOff, np, paramOff, total) {
		set.AddPiece(polyhedra.Intersect(base, op))
	}
	return ps, set
}

// accessBefore reports whether access ai of statement s happens before
// access aj of the same statement within one instance: reads precede the
// write, and accesses of the same type follow their listed order.
func accessBefore(s *prog.Statement, ai, aj int) bool {
	a, b := s.Accesses[ai], s.Accesses[aj]
	if a.Type != b.Type {
		return a.Type == prog.Read
	}
	return ai < aj
}

// applyNoWriteInBetween removes from the extent every instance pair with an
// intervening write to the same block (§5.1). The blocker relation is built
// in the triple space (x, x', y), projected onto (x, x'), and subtracted;
// intra-instance ordering (reads before the write) is honoured so that e.g.
// the R→R co-access on an accumulator is blocked by the accumulator write
// in the source instance itself.
func applyNoWriteInBetween(p *prog.Program, sch *prog.Schedule, c *CoAccess) {
	array := c.Array()
	ps := c.Space
	np := ps.NP
	total := ps.Dim()
	srcOff, tgtOff := 0, c.Src.Ds()

	for _, sw := range p.Stmts {
		for wi := range sw.Accesses {
			w := &sw.Accesses[wi]
			if w.Type != prog.Write || w.Array != array {
				continue
			}
			// Triple space: pair columns, then y (sw vars), params stay at
			// the end: [src | tgt | y | params].
			triTotal := total + sw.Ds()
			yOff := c.Src.Ds() + c.Tgt.Ds()
			triParamOff := yOff + sw.Ds()

			tri := polyhedra.NewPoly(triTotal)
			add := func(q *polyhedra.Poly) {
				for _, cc := range q.Cons {
					tri.Add(cc)
				}
			}
			add(liftPoly(p.DomainWithContext(sw), sw.Ds(), np, yOff, triParamOff, triTotal))
			if w.When != nil {
				add(liftPoly(w.When, sw.Ds(), np, yOff, triParamOff, triTotal))
			}
			// Φw(y) = Φa(x): the write touches the same block as the source.
			a := c.SrcAccess()
			for r := range a.Phi {
				coef, k := diffRow(a.Phi[r], c.Src.Ds(), w.Phi[r], sw.Ds(), np, srcOff, yOff, triParamOff, triTotal)
				tri.AddEq(coef, k)
			}

			// after(x, y): Θ(x) ≺ Θw(y), or same instance with the write
			// positioned after the source access.
			after := polyhedra.NewSet(triTotal)
			for _, op := range orderPieces(sch, c.Src, srcOff, sw, yOff, np, triParamOff, triTotal) {
				after.AddPiece(op)
			}
			if sw.ID == c.Src.ID && accessBefore(sw, c.SrcAcc, wi) {
				same := polyhedra.NewPoly(triTotal)
				for i := 0; i < sw.Ds(); i++ {
					coef := make([]int64, triTotal)
					coef[srcOff+i] = 1
					coef[yOff+i] = -1
					same.AddEq(coef, 0)
				}
				after.AddPiece(same)
			}
			// before(y, x'): Θw(y) ≺ Θ'(x'), or same instance with the write
			// positioned before the target access.
			before := polyhedra.NewSet(triTotal)
			for _, op := range orderPieces(sch, sw, yOff, c.Tgt, tgtOff, np, triParamOff, triTotal) {
				before.AddPiece(op)
			}
			if sw.ID == c.Tgt.ID && accessBefore(sw, wi, c.TgtAcc) {
				same := polyhedra.NewPoly(triTotal)
				for i := 0; i < sw.Ds(); i++ {
					coef := make([]int64, triTotal)
					coef[yOff+i] = 1
					coef[tgtOff+i] = -1
					same.AddEq(coef, 0)
				}
				before.AddPiece(same)
			}

			blockTri := polyhedra.FromPoly(tri)
			blockTri = polyhedra.IntersectSet(blockTri, after)
			blockTri = polyhedra.IntersectSet(blockTri, before)
			if blockTri.IsEmpty() {
				continue
			}
			// Project out y, keeping [src | tgt | params].
			keep := make([]int, 0, total)
			for i := 0; i < c.Src.Ds()+c.Tgt.Ds(); i++ {
				keep = append(keep, i)
			}
			for i := 0; i < np; i++ {
				keep = append(keep, triParamOff+i)
			}
			blockers, _ := blockTri.ProjectOnto(keep)
			for _, bp := range blockers.Ps {
				c.Extent = c.Extent.SubtractPoly(bp)
			}
		}
	}
}
