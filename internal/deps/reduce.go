package deps

import (
	"riotshare/internal/linalg"
	"riotshare/internal/polyhedra"
)

// hullEqualities returns equality constraints valid on every piece of the
// set (the affine hull of the union, conservatively: equalities implied by
// the first piece and verified on the rest).
func hullEqualities(s *polyhedra.Set) []polyhedra.Constraint {
	if len(s.Ps) == 0 {
		return nil
	}
	cand := s.Ps[0].ImpliedEqualities()
	var out []polyhedra.Constraint
	for _, e := range cand {
		valid := true
		for _, p := range s.Ps[1:] {
			// e == 0 on p iff both strict sides are empty.
			hi := p.Clone().AddIneq(e.Coef, e.K-1)
			lo := p.Clone().AddIneq(linalg.ScaleVec(-1, e.Coef), -e.K-1)
			if !hi.IsEmptyRational() || !lo.IsEmptyRational() {
				valid = false
				break
			}
		}
		if valid {
			out = append(out, e)
		}
	}
	return out
}

// hullRank returns the affine-hull dimension of the set projected onto the
// given columns (the "rank, or degree of freedom" of Remark A.1).
func hullRank(s *polyhedra.Set, cols []int) int {
	if len(s.Ps) == 0 {
		return 0
	}
	proj, _ := s.ProjectOnto(cols)
	if len(proj.Ps) == 0 {
		return 0
	}
	eqs := hullEqualities(proj)
	rows := make([][]int64, 0, len(eqs))
	for _, e := range eqs {
		rows = append(rows, e.Coef)
	}
	return len(cols) - linalg.Rank(rows)
}

// freeVars returns the columns among cols that are not pinned by the hull
// equalities of s given the complementary columns: a column is free if
// adding no equalities, its value still varies. We detect it by checking
// whether the hull of the projection onto given ∪ {col} exceeds the hull of
// the projection onto given.
func freeTargetVars(s *polyhedra.Set, srcCols, tgtCols []int, paramCols []int) []int {
	var free []int
	base := append(append([]int{}, srcCols...), paramCols...)
	baseRank := hullRank(s, base)
	for _, t := range tgtCols {
		withT := append(append([]int{}, base...), t)
		if hullRank(s, withT) > baseRank {
			free = append(free, t)
		}
	}
	return free
}

// ReduceMultiplicity makes a sharing opportunity's extent one-one
// (Remark A.1) by adding rank-preserving equality constraints, preferring
// pairings that keep related instances close in execution time: positional
// variable pairings (offset 0, then ±1), then bindings to the variable's
// own bound within the extent (e.g. j' = 0, the first read after a write).
// The reduced extent is always a subset of the input. It reports whether a
// one-one form was reached.
func ReduceMultiplicity(c *CoAccess) bool {
	ps := c.Space
	srcCols, tgtCols, paramCols := ps.SrcCols(), ps.TgtCols(), ps.ParamCols()
	if len(c.Extent.Ps) == 0 {
		return true
	}
	minRank := hullRank(c.Extent, srcCols)
	if t := hullRank(c.Extent, tgtCols); t < minRank {
		minRank = t
	}
	// The paper distinguishes one-many/many-one (keep the instance closest
	// in execution time on the "many" side) from many-many (rank-preserving
	// pairing, Figure 7(b)). Closest-in-time corresponds to binding the free
	// variable to its bound; pairing to equating it with the other side's
	// matching variable.
	srcFiber := len(freeTargetVars(c.Extent, tgtCols, srcCols, paramCols))
	tgtFiber := len(freeTargetVars(c.Extent, srcCols, tgtCols, paramCols))
	preferPairing := srcFiber > 0 && tgtFiber > 0
	// Reduce target freedom first (the paper reduces many-many to many-one
	// and then to one-one), then source freedom.
	if !reduceSide(c, srcCols, tgtCols, paramCols, minRank, true, preferPairing) {
		return false
	}
	if !reduceSide(c, tgtCols, srcCols, paramCols, minRank, false, preferPairing) {
		return false
	}
	// One-one check: no remaining freedom on either side given the other.
	return len(freeTargetVars(c.Extent, srcCols, tgtCols, paramCols)) == 0 &&
		len(freeTargetVars(c.Extent, tgtCols, srcCols, paramCols)) == 0
}

// reduceSide pins the freedom of the "many" side (reduceCols) given the
// other side. When bindTgt is true we are pinning target variables (prefer
// binding to lower bounds: the earliest reuse); otherwise source variables
// (prefer upper bounds: the latest use before the target).
func reduceSide(c *CoAccess, givenCols, reduceCols, paramCols []int, minRank int, bindTgt, preferPairing bool) bool {
	for guard := 0; guard < len(reduceCols)+1; guard++ {
		free := freeTargetVars(c.Extent, givenCols, reduceCols, paramCols)
		if len(free) == 0 {
			return true
		}
		progressed := false
		for _, col := range free {
			if tryPinVar(c, col, givenCols, minRank, bindTgt, preferPairing) {
				progressed = true
				break
			}
		}
		if !progressed {
			return false
		}
	}
	return len(freeTargetVars(c.Extent, givenCols, reduceCols, paramCols)) == 0
}

// tryPinVar attempts candidate equalities pinning column col, accepting the
// first that keeps the extent non-empty and the relation rank >= minRank.
// For many-many opportunities (preferPairing) rank-preserving variable
// pairings come first (Figure 7(b)); for one-many/many-one the
// closest-in-time bound bindings come first (Remark A.1).
func tryPinVar(c *CoAccess, col int, givenCols []int, minRank int, bindTgt, preferPairing bool) bool {
	ps := c.Space
	dim := ps.Dim()
	allCols := make([]int, 0, ps.Src.Ds()+ps.Tgt.Ds())
	allCols = append(allCols, ps.SrcCols()...)
	allCols = append(allCols, ps.TgtCols()...)

	// Pairing candidates: positional/name pairing with the matching variable
	// on the other side, offsets 0, +1, -1 (offset pairings realize
	// "consecutive" relations for self opportunities; offset 0 realizes
	// fusion-style pairings, Fig. 7(b)); then any other given-side variable.
	var pairing []polyhedra.Constraint
	if mate, ok := mateColumn(ps, col); ok {
		for _, off := range []int64{0, 1, -1} {
			coef := make([]int64, dim)
			coef[col] = 1
			coef[mate] = -1
			k := -off
			if !bindTgt {
				// Pinning a source var u to mate v': u = v' + off means
				// u - v' - off == 0; sign conventions are symmetric, so the
				// same form works.
				k = off
			}
			pairing = append(pairing, polyhedra.Constraint{Coef: coef, K: k, Eq: true})
		}
	}
	for _, g := range givenCols {
		if m, ok := mateColumn(ps, col); ok && m == g {
			continue // already tried
		}
		coef := make([]int64, dim)
		coef[col] = 1
		coef[g] = -1
		pairing = append(pairing, polyhedra.Constraint{Coef: coef, K: 0, Eq: true})
	}
	// Bound candidates: bind to the variable's own bound within the extent —
	// for targets the lower bound (earliest reuse after the source), for
	// sources the upper bound (latest use before the target). Candidate
	// constraints come from the extent's own inequalities with a ±1
	// coefficient on col and no other reduce-side variables.
	var bounds []polyhedra.Constraint
	wantSign := int64(1)
	if !bindTgt {
		wantSign = -1
	}
	for _, p := range c.Extent.Ps {
		for _, con := range p.Cons {
			if con.Eq || con.Coef[col] != wantSign {
				continue
			}
			clean := true
			for _, oc := range allCols {
				if oc != col && con.Coef[oc] != 0 && !contains(givenCols, oc) {
					clean = false
					break
				}
			}
			if !clean {
				continue
			}
			bounds = append(bounds, polyhedra.Constraint{Coef: linalg.CloneVec(con.Coef), K: con.K, Eq: true})
		}
	}
	var candidates []polyhedra.Constraint
	if preferPairing {
		candidates = append(append(candidates, pairing...), bounds...)
	} else {
		candidates = append(append(candidates, bounds...), pairing...)
	}

	for _, cand := range candidates {
		trial := c.Extent.Clone()
		for _, p := range trial.Ps {
			p.Add(cand.Clone())
		}
		pruned := polyhedra.NewSet(trial.Dim, trial.Names...)
		for _, p := range trial.Ps {
			pruned.AddPiece(p)
		}
		if pruned.IsEmpty() {
			continue
		}
		if hullRank(pruned, allCols) < minRank {
			continue
		}
		c.Extent = pruned
		return true
	}
	return false
}

// mateColumn returns the column of the same-name (or same-position)
// variable on the opposite side.
func mateColumn(ps PairSpace, col int) (int, bool) {
	sd, td := ps.Src.Ds(), ps.Tgt.Ds()
	if col < sd { // source var: find mate among target vars
		name := ps.Src.Vars[col]
		for i, v := range ps.Tgt.Vars {
			if v == name {
				return sd + i, true
			}
		}
		if col < td {
			return sd + col, true
		}
		return 0, false
	}
	if col < sd+td { // target var
		idx := col - sd
		name := ps.Tgt.Vars[idx]
		for i, v := range ps.Src.Vars {
			if v == name {
				return i, true
			}
		}
		if idx < sd {
			return idx, true
		}
	}
	return 0, false
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
