package deps

import (
	"fmt"
	"sort"

	"riotshare/internal/prog"
)

// Analysis holds the extracted dependences and sharing opportunities of a
// program under its original schedule, fully preprocessed: both are
// no-write-in-between, and sharing opportunities are one-one (§5.1).
type Analysis struct {
	Prog *prog.Program
	Orig *prog.Schedule
	// Deps are the data dependences (types R→W, W→R, W→W with non-empty
	// extent, Definition 2).
	Deps []*CoAccess
	// Shares are the I/O sharing opportunities (types W→R, W→W, R→R with
	// non-empty extent, Definition 3), multiplicity-reduced to one-one.
	Shares []*CoAccess
	// Dropped lists sharing opportunities that could not be reduced to
	// one-one form and were discarded (none occur in the paper's programs).
	Dropped []*CoAccess
}

// Options controls analysis behaviour.
type Options struct {
	// BindParams, when true, substitutes the program's parameter binding
	// into all extents before emptiness checks, so opportunities that are
	// empty for the concrete sizes (e.g. s2RC→s2RC when n3=1, §6.1) are
	// dropped, matching the paper's per-configuration analysis. When false
	// the analysis is fully parametric.
	BindParams bool
	// SkipMultiplicityReduction disables Remark A.1's reduction, used by the
	// ablation benchmarks.
	SkipMultiplicityReduction bool
}

// Analyze extracts dependences and sharing opportunities from the program
// (§4.3) and preprocesses them (§5.1).
func Analyze(p *prog.Program, opt Options) (*Analysis, error) {
	if len(p.Stmts) == 0 {
		return nil, fmt.Errorf("deps: program has no statements")
	}
	sch := p.OriginalSchedule()
	an := &Analysis{Prog: p, Orig: sch}

	for _, src := range p.Stmts {
		for srcAcc := range src.Accesses {
			for _, tgt := range p.Stmts {
				for tgtAcc := range tgt.Accesses {
					a, b := &src.Accesses[srcAcc], &tgt.Accesses[tgtAcc]
					if a.Array != b.Array {
						continue
					}
					space, extent := buildExtent(p, sch, src, srcAcc, tgt, tgtAcc)
					c := &CoAccess{
						Prog: p, Src: src, Tgt: tgt,
						SrcAcc: srcAcc, TgtAcc: tgtAcc,
						Space: space, Extent: extent,
					}
					if c.empty(opt) {
						continue
					}
					applyNoWriteInBetween(p, sch, c)
					if c.empty(opt) {
						continue
					}
					kind := c.Kind()
					if kind != RR { // R→W, W→R, W→W are dependences
						an.Deps = append(an.Deps, c)
					}
					if kind != RW { // W→R, W→W, R→R are sharing opportunities
						s := &CoAccess{
							Prog: p, Src: src, Tgt: tgt,
							SrcAcc: srcAcc, TgtAcc: tgtAcc,
							Space: space, Extent: c.Extent.Clone(),
						}
						if opt.SkipMultiplicityReduction || ReduceMultiplicity(s) {
							if !s.empty(opt) {
								an.Shares = append(an.Shares, s)
							}
						} else {
							an.Dropped = append(an.Dropped, s)
						}
					}
				}
			}
		}
	}
	sortCo(an.Deps)
	sortCo(an.Shares)
	return an, nil
}

// empty tests extent emptiness, optionally under the parameter binding.
func (c *CoAccess) empty(opt Options) bool {
	ext := c.Extent
	if opt.BindParams {
		vals := c.Prog.ParamValues()
		np := c.Space.NP
		base := c.Space.Src.Ds() + c.Space.Tgt.Ds()
		for i := np - 1; i >= 0; i-- {
			ext = ext.BindVar(base+i, vals[i])
		}
		return ext.IsEmptyInt(8)
	}
	return ext.IsEmptyInt(8)
}

func sortCo(cs []*CoAccess) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Key() < cs[j].Key() })
}

// FindShare locates a sharing opportunity by its display string (e.g.
// "s1WC→s2RC"); useful in tests and experiment drivers.
func (an *Analysis) FindShare(display string) *CoAccess {
	for _, s := range an.Shares {
		if s.String() == display {
			return s
		}
	}
	return nil
}

// ShareStrings lists the sharing opportunities in display form.
func (an *Analysis) ShareStrings() []string {
	out := make([]string, len(an.Shares))
	for i, s := range an.Shares {
		out[i] = s.String()
	}
	return out
}

// DepStrings lists the dependences in display form.
func (an *Analysis) DepStrings() []string {
	out := make([]string, len(an.Deps))
	for i, d := range an.Deps {
		out[i] = d.String()
	}
	return out
}

// ConcretePairs enumerates the instance pairs of a co-access's extent under
// the program's parameter binding: each element is (srcInstance,
// tgtInstance). Block-level domains are small so enumeration is exact
// (DESIGN.md substitution S3).
func (c *CoAccess) ConcretePairs(limit int) ([][2][]int64, error) {
	vals := c.Prog.ParamValues()
	np := c.Space.NP
	base := c.Space.Src.Ds() + c.Space.Tgt.Ds()
	ext := c.Extent
	for i := np - 1; i >= 0; i-- {
		ext = ext.BindVar(base+i, vals[i])
	}
	pts, err := ext.Enumerate(limit)
	if err != nil {
		return nil, err
	}
	sd := c.Src.Ds()
	out := make([][2][]int64, len(pts))
	for i, pt := range pts {
		out[i] = [2][]int64{pt[:sd], pt[sd : sd+c.Tgt.Ds()]}
	}
	return out, nil
}
