// Package deps extracts data dependences and I/O sharing opportunities from
// a polyhedral program (§4.3), applies the no-write-in-between rule and
// multiplicity reduction (§5.1, Remark A.1), and exposes them as co-accesses
// with extent polyhedra for the optimizer.
package deps

import (
	"riotshare/internal/polyhedra"
	"riotshare/internal/prog"
)

// PairSpace is the product space of two statements' iteration domains plus
// the shared parameters: columns [src vars | tgt vars | params], constants
// in each constraint's K. Extent polyhedra of co-accesses live here
// (Definition 1).
type PairSpace struct {
	Src, Tgt *prog.Statement
	NP       int
}

// NewPairSpace builds the product space for a (src, tgt) statement pair.
func NewPairSpace(p *prog.Program, src, tgt *prog.Statement) PairSpace {
	return PairSpace{Src: src, Tgt: tgt, NP: p.NumParams()}
}

// Dim returns the total column count.
func (ps PairSpace) Dim() int { return ps.Src.Ds() + ps.Tgt.Ds() + ps.NP }

// SrcCols returns the column indices of the source statement's variables.
func (ps PairSpace) SrcCols() []int {
	out := make([]int, ps.Src.Ds())
	for i := range out {
		out[i] = i
	}
	return out
}

// TgtCols returns the column indices of the target statement's variables.
func (ps PairSpace) TgtCols() []int {
	out := make([]int, ps.Tgt.Ds())
	for i := range out {
		out[i] = ps.Src.Ds() + i
	}
	return out
}

// ParamCols returns the parameter column indices.
func (ps PairSpace) ParamCols() []int {
	out := make([]int, ps.NP)
	for i := range out {
		out[i] = ps.Src.Ds() + ps.Tgt.Ds() + i
	}
	return out
}

// Names returns debug names for the pair space, priming target variables.
func (ps PairSpace) Names(params []string) []string {
	var names []string
	names = append(names, ps.Src.Vars...)
	for _, v := range ps.Tgt.Vars {
		names = append(names, v+"'")
	}
	names = append(names, params...)
	return names
}

// liftRow maps an affine row over one statement's extended space (ds+np+1
// coefficients) into a space of totalDim columns where that statement's
// variables start at off and parameters start at paramOff. It returns the
// lifted coefficients and constant.
func liftRow(row []int64, ds, np, off, paramOff, totalDim int) ([]int64, int64) {
	coef := make([]int64, totalDim)
	for i := 0; i < ds; i++ {
		coef[off+i] += row[i]
	}
	for j := 0; j < np; j++ {
		coef[paramOff+j] += row[ds+j]
	}
	return coef, row[ds+np]
}

// liftPoly maps a polyhedron over one statement's (ds+np) space into a
// larger space with the statement's variables at off and parameters at
// paramOff.
func liftPoly(p *polyhedra.Poly, ds, np, off, paramOff, totalDim int) *polyhedra.Poly {
	out := polyhedra.NewPoly(totalDim)
	for _, c := range p.Cons {
		coef := make([]int64, totalDim)
		for i := 0; i < ds; i++ {
			coef[off+i] += c.Coef[i]
		}
		for j := 0; j < np; j++ {
			coef[paramOff+j] += c.Coef[ds+j]
		}
		if c.Eq {
			out.AddEq(coef, c.K)
		} else {
			out.AddIneq(coef, c.K)
		}
	}
	return out
}

// diffRow returns tgtRow(x') - srcRow(x) as a constraint row over a space
// with src vars at srcOff, tgt vars at tgtOff and params at paramOff.
func diffRow(srcRow []int64, srcDs int, tgtRow []int64, tgtDs, np, srcOff, tgtOff, paramOff, totalDim int) ([]int64, int64) {
	coef := make([]int64, totalDim)
	for i := 0; i < srcDs; i++ {
		coef[srcOff+i] -= srcRow[i]
	}
	for i := 0; i < tgtDs; i++ {
		coef[tgtOff+i] += tgtRow[i]
	}
	var k int64
	for j := 0; j < np; j++ {
		coef[paramOff+j] += tgtRow[tgtDs+j] - srcRow[srcDs+j]
	}
	k = tgtRow[tgtDs+np] - srcRow[srcDs+np]
	return coef, k
}

// orderPieces returns the basic polyhedra whose union expresses
// Θ_src(x) ≺ Θ_tgt(x') under the given schedule, in a space with src vars at
// srcOff, tgt vars at tgtOff, params at paramOff. Each piece q requires
// equality of the first q time rows and strict inequality at row q.
func orderPieces(sch *prog.Schedule, src *prog.Statement, srcOff int, tgt *prog.Statement, tgtOff int, np, paramOff, totalDim int) []*polyhedra.Poly {
	srcRows := sch.Rows[src.ID]
	tgtRows := sch.Rows[tgt.ID]
	var pieces []*polyhedra.Poly
	for q := 0; q < sch.NRows; q++ {
		p := polyhedra.NewPoly(totalDim)
		for r := 0; r < q; r++ {
			coef, k := diffRow(srcRows[r], src.Ds(), tgtRows[r], tgt.Ds(), np, srcOff, tgtOff, paramOff, totalDim)
			p.AddEq(coef, k)
		}
		coef, k := diffRow(srcRows[q], src.Ds(), tgtRows[q], tgt.Ds(), np, srcOff, tgtOff, paramOff, totalDim)
		// Strict: tgt - src >= 1.
		p.AddIneq(coef, k-1)
		if p.Simplify() {
			pieces = append(pieces, p)
		}
	}
	return pieces
}
