package deps

import (
	"sort"
	"testing"

	"riotshare/internal/ops"
	"riotshare/internal/prog"
)

func addMulProgram(n1, n2, n3 int64) *prog.Program {
	return ops.AddMul(ops.AddMulConfig{
		N1: n1, N2: n2, N3: n3,
		ABBlock: ops.Dims{Rows: 8, Cols: 8},
		DBlock:  ops.Dims{Rows: 8, Cols: 8},
	})
}

func analyzeAddMul(t *testing.T, n1, n2, n3 int64, bind bool) *Analysis {
	t.Helper()
	an, err := Analyze(addMulProgram(n1, n2, n3), Options{BindParams: bind})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func shareSet(an *Analysis) map[string]bool {
	m := make(map[string]bool)
	for _, s := range an.Shares {
		m[s.String()] = true
	}
	return m
}

func depSet(an *Analysis) map[string]bool {
	m := make(map[string]bool)
	for _, d := range an.Deps {
		m[d.String()] = true
	}
	return m
}

// §4.3: s1WC→s2RC is both a dependence and a sharing opportunity;
// s2RC→s1WC is neither (empty extent).
func TestAddMulCAnalysis(t *testing.T) {
	an := analyzeAddMul(t, 3, 4, 2, false)
	shares, deps := shareSet(an), depSet(an)
	if !deps["s1WC→s2RC"] {
		t.Errorf("missing dependence s1WC→s2RC; have %v", an.DepStrings())
	}
	if !shares["s1WC→s2RC"] {
		t.Errorf("missing share s1WC→s2RC; have %v", an.ShareStrings())
	}
	if deps["s2RC→s1WC"] || shares["s2RC→s1WC"] {
		t.Error("s2RC→s1WC should be empty (no s2 instance precedes s1)")
	}
}

// Example 1's discussion: expected sharing opportunities for n3 >= 2
// include the accumulator self-shares on E, the D self-share, the C
// pipeline, and the C re-read self-share.
func TestAddMulShareInventoryParametric(t *testing.T) {
	an := analyzeAddMul(t, 3, 4, 2, false)
	shares := shareSet(an)
	for _, want := range []string{
		"s1WC→s2RC", // pipeline C from s1 to s2
		"s2WE→s2RE", // accumulator read reuse
		"s2WE→s2WE", // accumulator write elision
		"s2RD→s2RD", // D re-read across i
		"s2RC→s2RC", // C re-read across j (exists since n3 can be >= 2)
	} {
		if !shares[want] {
			t.Errorf("missing sharing opportunity %s; have %v", want, an.ShareStrings())
		}
	}
}

// §6.1: "because n3 = 1, sharing opportunity s2RC→s2RC does not exist".
func TestAddMulShareInventoryN3Eq1(t *testing.T) {
	an := analyzeAddMul(t, 3, 4, 1, true)
	shares := shareSet(an)
	if shares["s2RC→s2RC"] {
		t.Error("s2RC→s2RC should not exist when n3=1")
	}
	for _, want := range []string{"s1WC→s2RC", "s2WE→s2WE", "s2RD→s2RD"} {
		if !shares[want] {
			t.Errorf("missing %s with n3=1; have %v", want, an.ShareStrings())
		}
	}
	// E accumulator self-shares require n2 >= 2 (present here).
	if !shares["s2WE→s2RE"] {
		t.Errorf("missing s2WE→s2RE; have %v", an.ShareStrings())
	}
}

// The paper computes P(s1WC→s2RC) = {i=i', k=k', 0<=j'<n3}; multiplicity
// reduction then pins j'=0 (the read closest in time to the write).
func TestAddMulPipelineReducedToFirstRead(t *testing.T) {
	an := analyzeAddMul(t, 2, 3, 4, false)
	c := an.FindShare("s1WC→s2RC")
	if c == nil {
		t.Fatal("missing s1WC→s2RC")
	}
	pairs, err := c.ConcretePairs(100000)
	if err != nil {
		t.Fatal(err)
	}
	// One pair per (i,k): 2*3 = 6; target j' must be 0 and i,k must match.
	if len(pairs) != 6 {
		t.Fatalf("want 6 pairs got %d: %v", len(pairs), pairs)
	}
	for _, pr := range pairs {
		src, tgt := pr[0], pr[1]
		if tgt[1] != 0 {
			t.Errorf("target j' should be 0, got %v", tgt)
		}
		if src[0] != tgt[0] || src[1] != tgt[2] {
			t.Errorf("i/k must match: src=%v tgt=%v", src, tgt)
		}
	}
}

// The accumulator W→R share must be consecutive in k after
// no-write-in-between: pairs ((i,j,k),(i,j,k+1)).
func TestAddMulAccumulatorConsecutive(t *testing.T) {
	an := analyzeAddMul(t, 2, 4, 2, false)
	c := an.FindShare("s2WE→s2RE")
	if c == nil {
		t.Fatal("missing s2WE→s2RE")
	}
	pairs, err := c.ConcretePairs(100000)
	if err != nil {
		t.Fatal(err)
	}
	// Per (i,j): k -> k+1 for k in 0..n2-2: 2*2*3 = 12 pairs.
	if len(pairs) != 12 {
		t.Fatalf("want 12 pairs got %d", len(pairs))
	}
	for _, pr := range pairs {
		src, tgt := pr[0], pr[1]
		if src[0] != tgt[0] || src[1] != tgt[1] || tgt[2] != src[2]+1 {
			t.Errorf("not consecutive: src=%v tgt=%v", src, tgt)
		}
	}
}

// The R→R self-share on the accumulator must NOT exist: every pair of E
// reads has the accumulator write in between (intra-instance ordering).
func TestAddMulNoAccumulatorReadReadShare(t *testing.T) {
	an := analyzeAddMul(t, 2, 4, 2, false)
	if s := an.FindShare("s2RE→s2RE"); s != nil {
		pairs, _ := s.ConcretePairs(100000)
		t.Fatalf("s2RE→s2RE should be blocked by intervening writes; got %d pairs", len(pairs))
	}
}

// D self-share: D[k,j] is re-read across i; after reduction pairs must be
// consecutive in i with j, k fixed.
func TestAddMulDSelfShareConsecutiveI(t *testing.T) {
	an := analyzeAddMul(t, 3, 2, 2, false)
	c := an.FindShare("s2RD→s2RD")
	if c == nil {
		t.Fatal("missing s2RD→s2RD")
	}
	pairs, err := c.ConcretePairs(100000)
	if err != nil {
		t.Fatal(err)
	}
	// Per (j,k): i -> i+1 for i in 0..n1-2: 2*2*2 = 8 pairs.
	if len(pairs) != 8 {
		t.Fatalf("want 8 pairs got %d: %v", len(pairs), pairs)
	}
	for _, pr := range pairs {
		src, tgt := pr[0], pr[1]
		if tgt[0] != src[0]+1 || src[1] != tgt[1] || src[2] != tgt[2] {
			t.Errorf("not consecutive in i: src=%v tgt=%v", src, tgt)
		}
	}
}

// Dependences on E: the accumulation chain must be a dependence (W→R and
// W→W). The R→W co-access s2RE→s2WE is transitively covered — the write in
// the source instance itself intervenes, so its ordering is implied by the
// W→W chain and no-write-in-between removes it (§5.1).
func TestAddMulAccumulatorDependences(t *testing.T) {
	an := analyzeAddMul(t, 2, 3, 2, false)
	deps := depSet(an)
	for _, want := range []string{"s2WE→s2RE", "s2WE→s2WE"} {
		if !deps[want] {
			t.Errorf("missing dependence %s; have %v", want, an.DepStrings())
		}
	}
	if deps["s2RE→s2WE"] {
		t.Error("s2RE→s2WE should be transitively covered by the intra-instance write")
	}
}

// §4.3's opposite-direction example: for i { A[i]=B[i]; C[i]=A[n-1-i] }
// has dependences in both directions between s1 and s2.
func TestOppositeDirectionDependences(t *testing.T) {
	p := prog.New("mini", "n")
	p.AddArray(&prog.Array{Name: "A", BlockRows: 2, BlockCols: 2, GridRows: 8, GridCols: 1})
	p.AddArray(&prog.Array{Name: "B", BlockRows: 2, BlockCols: 2, GridRows: 8, GridCols: 1})
	p.AddArray(&prog.Array{Name: "Cc", BlockRows: 2, BlockCols: 2, GridRows: 8, GridCols: 1})
	p.NewNest()
	s1 := p.NewStatement("s1", "i")
	s1.Range("i", prog.C(0), prog.V("n"))
	s1.Access(prog.Read, "B", prog.V("i"), prog.C(0))
	s1.Access(prog.Write, "A", prog.V("i"), prog.C(0))
	s2 := p.NewStatement("s2", "i")
	s2.Range("i", prog.C(0), prog.V("n"))
	s2.Access(prog.Read, "A", prog.V("n").Minus(prog.V("i")).AddK(-1), prog.C(0))
	s2.Access(prog.Write, "Cc", prog.V("i"), prog.C(0))
	p.Bind("n", 6)

	an, err := Analyze(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	deps := depSet(an)
	if !deps["s1WA→s2RA"] || !deps["s2RA→s1WA"] {
		t.Fatalf("both directions expected; have %v", an.DepStrings())
	}
	// Check the paper's polyhedra: P(s1WA→s2RA) = {i+i'=n-1, 0<=i<=(n-1)/2}.
	var fwd *CoAccess
	for _, d := range an.Deps {
		if d.String() == "s1WA→s2RA" {
			fwd = d
		}
	}
	pairs, err := fwd.ConcretePairs(10000)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range pairs {
		i, ip := pr[0][0], pr[1][0]
		if i+ip != 5 {
			t.Errorf("pair (%d,%d) violates i+i'=n-1", i, ip)
		}
		if i > 2 { // (n-1)/2 = 2 for n=6 (source must be the earlier one)
			t.Errorf("source i=%d exceeds (n-1)/2", i)
		}
	}
	if len(pairs) != 3 {
		t.Fatalf("n=6: want 3 forward pairs, got %d", len(pairs))
	}
}

// TwoMM: the cross-statement A share must be rank-preserving (paired j'=j,
// Figure 7(b)), not collapsed to a single pair per (i,k).
func TestTwoMMCrossShareRankPreserving(t *testing.T) {
	p := ops.TwoMM(ops.TwoMMConfig{
		N1: 2, N2: 3, N3: 2, N4: 3,
		ABlock: ops.Dims{Rows: 4, Cols: 4}, BBlock: ops.Dims{Rows: 4, Cols: 4}, DBlock: ops.Dims{Rows: 4, Cols: 4},
	})
	an, err := Analyze(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := an.FindShare("s1RA→s2RA")
	if c == nil {
		t.Fatalf("missing s1RA→s2RA; have %v", an.ShareStrings())
	}
	pairs, err := c.ConcretePairs(100000)
	if err != nil {
		t.Fatal(err)
	}
	// Rank-preserving pairing: one pair per (i, j, k) with j < min(n2,n4):
	// 2*3*2 = 12 pairs (n2=n4=3 here... j in 0..2, so 2*3*2=12).
	if len(pairs) != 12 {
		t.Fatalf("want 12 rank-preserving pairs got %d", len(pairs))
	}
	for _, pr := range pairs {
		src, tgt := pr[0], pr[1]
		if src[0] != tgt[0] || src[2] != tgt[2] {
			t.Errorf("i,k must match: %v %v", src, tgt)
		}
		if src[1] != tgt[1] {
			t.Errorf("rank-preserving pairing expects j'=j: %v %v", src, tgt)
		}
	}
}

// TwoMM inventory: the paper says this program has 9 sharing opportunities.
func TestTwoMMShareCount(t *testing.T) {
	p := ops.TwoMM(ops.TwoMMConfig{
		N1: 2, N2: 3, N3: 2, N4: 3,
		ABlock: ops.Dims{Rows: 4, Cols: 4}, BBlock: ops.Dims{Rows: 4, Cols: 4}, DBlock: ops.Dims{Rows: 4, Cols: 4},
	})
	an, err := Analyze(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	shares := shareSet(an)
	want := []string{
		"s1WC→s1RC", "s1WC→s1WC", "s1RB→s1RB", "s1RA→s1RA",
		"s2WE→s2RE", "s2WE→s2WE", "s2RD→s2RD", "s2RA→s2RA",
		"s1RA→s2RA",
	}
	for _, w := range want {
		if !shares[w] {
			t.Errorf("missing %s; have %v", w, an.ShareStrings())
		}
	}
	if len(an.Shares) != len(want) {
		t.Errorf("expected %d opportunities (paper: 9), got %d: %v",
			len(want), len(an.Shares), an.ShareStrings())
	}
}

// Linear regression: §6.3 reports 16 sharing opportunities; the key ones are
// the X-read shares between s1, s2 and s5.
func TestLinRegShares(t *testing.T) {
	p := ops.LinReg(ops.LinRegConfig{
		N: 4, XBlock: ops.Dims{Rows: 8, Cols: 4}, YBlock: ops.Dims{Rows: 8, Cols: 2},
	})
	an, err := Analyze(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	shares := shareSet(an)
	for _, w := range []string{
		"s1RX→s2RX", "s1RX→s5RX", "s2RX→s5RX",
		"s2RY→s6RY", "s5WYh→s6RYh", "s6WEv→s7REv",
		"s1WU→s3RU", "s2WV→s4RV", "s3WW→s4RW", "s4WBh→s5RBh",
	} {
		if !shares[w] {
			t.Errorf("missing %s", w)
		}
	}
	t.Logf("linreg: %d opportunities (paper: 16): %v", len(an.Shares), an.ShareStrings())
	if len(an.Shares) < 14 || len(an.Shares) > 22 {
		t.Errorf("opportunity count %d far from paper's 16", len(an.Shares))
	}
}

// The U write→read share must connect only the LAST write of U (r = n-1) to
// s3's read (no-write-in-between).
func TestLinRegLastWriteToRead(t *testing.T) {
	p := ops.LinReg(ops.LinRegConfig{
		N: 5, XBlock: ops.Dims{Rows: 8, Cols: 4}, YBlock: ops.Dims{Rows: 8, Cols: 2},
	})
	an, err := Analyze(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := an.FindShare("s1WU→s3RU")
	if c == nil {
		t.Fatal("missing s1WU→s3RU")
	}
	pairs, err := c.ConcretePairs(10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0][0][0] != 4 {
		t.Fatalf("only the last write (r=4) should pair with the read: %v", pairs)
	}
}

// Property: multiplicity reduction yields a one-one relation on every
// sharing opportunity of every benchmark program — each source instance
// appears at most once, and each target instance appears at most once.
func TestSharesAreOneOne(t *testing.T) {
	programs := []*prog.Program{
		addMulProgram(3, 3, 2),
		ops.TwoMM(ops.TwoMMConfig{N1: 2, N2: 2, N3: 2, N4: 2,
			ABlock: ops.Dims{Rows: 4, Cols: 4}, BBlock: ops.Dims{Rows: 4, Cols: 4}, DBlock: ops.Dims{Rows: 4, Cols: 4}}),
		ops.LinReg(ops.LinRegConfig{N: 3, XBlock: ops.Dims{Rows: 4, Cols: 2}, YBlock: ops.Dims{Rows: 4, Cols: 2}}),
	}
	for _, p := range programs {
		an, err := Analyze(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(an.Dropped) != 0 {
			t.Errorf("%s: %d opportunities dropped by reduction", p.Name, len(an.Dropped))
		}
		for _, s := range an.Shares {
			pairs, err := s.ConcretePairs(100000)
			if err != nil {
				t.Fatalf("%s %s: %v", p.Name, s, err)
			}
			srcSeen := map[string]bool{}
			tgtSeen := map[string]bool{}
			for _, pr := range pairs {
				sk, tk := key64(pr[0]), key64(pr[1])
				if srcSeen[sk] {
					t.Errorf("%s %s: source %v repeated", p.Name, s, pr[0])
				}
				if tgtSeen[tk] {
					t.Errorf("%s %s: target %v repeated", p.Name, s, pr[1])
				}
				srcSeen[sk] = true
				tgtSeen[tk] = true
			}
		}
	}
}

// Property: every sharing-opportunity pair truly is a pair of consecutive
// accesses to the same block (for self opportunities after reduction) or at
// least accesses the same block with the source strictly before the target
// under the original schedule.
func TestSharePairsAccessSameBlockInOrder(t *testing.T) {
	p := addMulProgram(3, 3, 2)
	an, err := Analyze(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	params := p.ParamValues()
	for _, s := range an.Shares {
		pairs, err := s.ConcretePairs(100000)
		if err != nil {
			t.Fatal(err)
		}
		for _, pr := range pairs {
			sr, sc := s.SrcAccess().BlockAt(pr[0], params)
			tr, tc := s.TgtAccess().BlockAt(pr[1], params)
			if sr != tr || sc != tc {
				t.Fatalf("%s: pair %v touches different blocks (%d,%d)≠(%d,%d)",
					s, pr, sr, sc, tr, tc)
			}
			t1 := an.Orig.TimeOf(s.Src, pr[0], params)
			t2 := an.Orig.TimeOf(s.Tgt, pr[1], params)
			if !prog.LexLess(t1, t2) {
				t.Fatalf("%s: pair %v not ordered: %v !< %v", s, pr, t1, t2)
			}
		}
	}
}

// Dependence pairs must also respect the original order and block equality.
func TestDepPairsValid(t *testing.T) {
	p := addMulProgram(2, 3, 2)
	an, err := Analyze(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	params := p.ParamValues()
	for _, d := range an.Deps {
		pairs, err := d.ConcretePairs(100000)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) == 0 {
			t.Errorf("%s: dependence with empty concrete extent", d)
		}
		for _, pr := range pairs {
			t1 := an.Orig.TimeOf(d.Src, pr[0], params)
			t2 := an.Orig.TimeOf(d.Tgt, pr[1], params)
			if !prog.LexLess(t1, t2) {
				t.Fatalf("%s: unordered dependence pair %v", d, pr)
			}
		}
	}
}

func key64(v []int64) string {
	out := make([]byte, 0, len(v)*4)
	for _, x := range v {
		out = append(out, byte(x), byte(x>>8), ',')
	}
	return string(out)
}

func TestKindString(t *testing.T) {
	kinds := []Kind{RR, RW, WR, WW}
	var got []string
	for _, k := range kinds {
		got = append(got, k.String())
	}
	sort.Strings(got)
	if len(got) != 4 {
		t.Fatal("kind strings")
	}
}
