package disk

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestPaperModelRates(t *testing.T) {
	m := PaperModel()
	// 96 MB read in one second, 60 MB written in one second.
	if got := m.Time(96*MB, 0, 1, 0); got != 1 {
		t.Fatalf("read rate wrong: %v", got)
	}
	if got := m.Time(0, 60*MB, 0, 1); got != 1 {
		t.Fatalf("write rate wrong: %v", got)
	}
}

func TestRefinedModelOverhead(t *testing.T) {
	m := RefinedModel(0.01)
	base := PaperModel().Time(MB, MB, 2, 3)
	if got := m.Time(MB, MB, 2, 3); got != base+0.05 {
		t.Fatalf("overhead wrong: %v vs %v", got, base+0.05)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Read(100)
	c.Read(50)
	c.Write(30)
	rb, wb, rr, wr := c.Snapshot()
	if rb != 150 || wb != 30 || rr != 2 || wr != 1 {
		t.Fatalf("snapshot wrong: %d %d %d %d", rb, wb, rr, wr)
	}
	c.Reset()
	rb, wb, rr, wr = c.Snapshot()
	if rb != 0 || wb != 0 || rr != 0 || wr != 0 {
		t.Fatal("reset wrong")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Read(1)
				c.Write(2)
			}
		}()
	}
	wg.Wait()
	rb, wb, rr, wr := c.Snapshot()
	if rb != 8000 || wb != 16000 || rr != 8000 || wr != 8000 {
		t.Fatalf("concurrent counts wrong: %d %d %d %d", rb, wb, rr, wr)
	}
}

// Property: time is monotone in volumes.
func TestTimeMonotone(t *testing.T) {
	m := PaperModel()
	f := func(a, b uint32) bool {
		t1 := m.Time(int64(a), int64(b), 0, 0)
		t2 := m.Time(int64(a)+MB, int64(b)+MB, 0, 0)
		return t2 > t1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCounterTime(t *testing.T) {
	var c Counter
	c.Read(96 * MB)
	if got := c.Time(PaperModel()); got != 1 {
		t.Fatalf("Counter.Time wrong: %v", got)
	}
}

func TestConcurrentStreams(t *testing.T) {
	m := RefinedModel(0.01)
	streams := []Stream{
		{ReadBytes: 96 * MB, ReadReqs: 2},
		{ReadBytes: 96 * MB, WriteBytes: 60 * MB, ReadReqs: 1, WriteReqs: 1},
		{WriteBytes: 120 * MB, WriteReqs: 3},
	}
	// Bandwidth is shared: concurrent streams take exactly the combined
	// volume's time, matching one merged stream.
	var total Stream
	for _, s := range streams {
		total.Add(s)
	}
	got := m.ConcurrentTime(streams)
	want := m.Time(total.ReadBytes, total.WriteBytes, total.ReadReqs, total.WriteReqs)
	if got != want {
		t.Fatalf("ConcurrentTime = %g, want %g", got, want)
	}
	if want <= 0 {
		t.Fatal("expected positive modeled time")
	}
}

func TestPipelinedTimeOverlaps(t *testing.T) {
	m := PaperModel()
	io := m.Time(96*MB, 0, 1, 0) // 1 second of reads
	if got := m.PipelinedTime(96*MB, 0, 1, 0, 0.25); got != io {
		t.Fatalf("I/O-bound pipeline = %g, want %g", got, io)
	}
	if got := m.PipelinedTime(96*MB, 0, 1, 0, 4.0); got != 4.0 {
		t.Fatalf("CPU-bound pipeline = %g, want 4.0", got)
	}
}
