// Package disk models the storage device: it accounts read and write byte
// volumes exactly and converts them to time with the sustained-rate model
// the paper calibrates in §6 (96 MB/s reads, 60 MB/s writes on their WD
// Caviar Black; we keep those constants so predicted I/O times are
// comparable). A refined per-request-overhead model is also provided, per
// §5.4's remark that such models "can be easily incorporated".
package disk

import "sync/atomic"

// MB is 2^20 bytes.
const MB = 1 << 20

// Model converts I/O volumes to estimated seconds.
type Model struct {
	// ReadBytesPerSec and WriteBytesPerSec are sustained transfer rates.
	ReadBytesPerSec  float64
	WriteBytesPerSec float64
	// PerRequestOverhead is added once per block request (0 for the paper's
	// linear model).
	PerRequestOverhead float64
}

// PaperModel returns the rates benchmarked in §6.
func PaperModel() Model {
	return Model{ReadBytesPerSec: 96 * MB, WriteBytesPerSec: 60 * MB}
}

// RefinedModel adds a per-request overhead (seek + rotational estimate) to
// the linear model, for the cost-model ablation.
func RefinedModel(overheadSec float64) Model {
	m := PaperModel()
	m.PerRequestOverhead = overheadSec
	return m
}

// Time returns the modeled seconds for the given volumes and request counts.
func (m Model) Time(readBytes, writeBytes int64, readReqs, writeReqs int64) float64 {
	t := float64(readBytes)/m.ReadBytesPerSec + float64(writeBytes)/m.WriteBytesPerSec
	t += m.PerRequestOverhead * float64(readReqs+writeReqs)
	return t
}

// Stream is one concurrent request stream against the device: a worker's
// or the prefetcher's sequence of block requests. The device is still one
// spindle, so streams share its sustained bandwidth rather than multiply
// it; what concurrency buys is overlap with compute, not more bytes per
// second.
type Stream struct {
	ReadBytes, WriteBytes int64
	ReadReqs, WriteReqs   int64
}

// Add folds another stream's volumes into s.
func (s *Stream) Add(o Stream) {
	s.ReadBytes += o.ReadBytes
	s.WriteBytes += o.WriteBytes
	s.ReadReqs += o.ReadReqs
	s.WriteReqs += o.WriteReqs
}

// ConcurrentTime models n streams issued concurrently: the device serves
// their combined volume at the sustained rates (bandwidth is shared), and
// interleaved request streams still pay the per-request overhead — the
// linear model's device-time lower bound is insensitive to how requests
// are distributed over issuers, which is why the executor's logical
// accounting can stay interleaving-independent.
func (m Model) ConcurrentTime(streams []Stream) float64 {
	var total Stream
	for _, s := range streams {
		total.Add(s)
	}
	return m.Time(total.ReadBytes, total.WriteBytes, total.ReadReqs, total.WriteReqs)
}

// PipelinedTime estimates the wall time of an execution that overlaps the
// device with compute: a pipelined engine hides the shorter of the two
// behind the longer, so the ideal wall clock is their maximum rather than
// their sum (the §5.4-style refinement the parallel executor targets).
func (m Model) PipelinedTime(readBytes, writeBytes, readReqs, writeReqs int64, cpuSec float64) float64 {
	io := m.Time(readBytes, writeBytes, readReqs, writeReqs)
	if cpuSec > io {
		return cpuSec
	}
	return io
}

// Counter accumulates I/O volumes and request counts; safe for concurrent
// use.
type Counter struct {
	readBytes  atomic.Int64
	writeBytes atomic.Int64
	readReqs   atomic.Int64
	writeReqs  atomic.Int64
}

// Read records a read of n bytes.
func (c *Counter) Read(n int64) {
	c.readBytes.Add(n)
	c.readReqs.Add(1)
}

// Write records a write of n bytes.
func (c *Counter) Write(n int64) {
	c.writeBytes.Add(n)
	c.writeReqs.Add(1)
}

// Snapshot returns the accumulated volumes and request counts.
func (c *Counter) Snapshot() (readBytes, writeBytes, readReqs, writeReqs int64) {
	return c.readBytes.Load(), c.writeBytes.Load(), c.readReqs.Load(), c.writeReqs.Load()
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	c.readBytes.Store(0)
	c.writeBytes.Store(0)
	c.readReqs.Store(0)
	c.writeReqs.Store(0)
}

// Time converts the accumulated volumes using the model.
func (c *Counter) Time(m Model) float64 {
	rb, wb, rr, wr := c.Snapshot()
	return m.Time(rb, wb, rr, wr)
}
