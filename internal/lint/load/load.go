// Package load turns Go package patterns into type-checked
// analysis.Units without depending on golang.org/x/tools/go/packages.
//
// It shells out to `go list -export -json -deps`, which compiles every
// dependency's export data into the build cache, then parses only the
// target packages' source and type-checks them against that export
// data via the standard library's gc importer. This is the same
// division of labour go/packages uses in LoadTypes|NeedSyntax mode:
// full syntax for the packages under analysis, compiler export data
// for everything beneath them, so loading stays fast and entirely
// offline.
//
// Only non-test GoFiles are loaded; the riotvet analyzers skip
// _test.go diagnostics anyway (tests poke invariants deliberately),
// and test packages reach the analyzers through `go vet
// -vettool=riotvet`, where the go command supplies the test variants
// itself.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"riotshare/internal/lint/analysis"
)

// A Package is one type-checked target package: its import path, root
// directory, and the analysis.Unit handed to analyzers.
type Package struct {
	// ImportPath is the package's canonical import path.
	ImportPath string

	// Dir is the directory holding the package's source files.
	Dir string

	// Unit is the parsed, type-checked view shared with analyzers.
	Unit *analysis.Unit
}

// listJSON is the subset of `go list -json` output the loader needs.
type listJSON struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct {
		Pos string
		Err string
	}
}

// Packages loads, parses, and type-checks the packages matching
// patterns, resolved relative to dir (the module root or any directory
// inside it). Dependencies — standard library included — are imported
// from compiler export data, so no network or pre-installed archives
// are required. The returned packages share one token.FileSet and are
// sorted by import path.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
		"-deps", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listJSON
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listJSON
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			cp := p
			targets = append(targets, &cp)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("go list %s: no packages matched", strings.Join(patterns, " "))
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		unit, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{ImportPath: t.ImportPath, Dir: t.Dir, Unit: unit})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// check parses one target package's files and type-checks them against
// export data, returning the populated analysis unit.
func check(fset *token.FileSet, imp types.Importer, t *listJSON) (*analysis.Unit, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(t.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", t.ImportPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var tcErrs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { tcErrs = append(tcErrs, err) },
	}
	pkg, _ := conf.Check(t.ImportPath, fset, files, info)
	if len(tcErrs) > 0 {
		return nil, fmt.Errorf("%s: type checking failed: %w", t.ImportPath, errors.Join(tcErrs...))
	}
	return &analysis.Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
