package ctxflow_test

import (
	"testing"

	"riotshare/internal/lint/analysistest"
	"riotshare/internal/lint/ctxflow"
)

// TestCtxFlow runs the analyzer over the minimized pre-PR 8
// cancellation gap (a plan search minting its own root context) and
// the compliant and out-of-scope shapes around it.
func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata/riotshare", ctxflow.Analyzer)
}
