// Package ctxflow implements the riotvet analyzer that enforces the
// PR 8 cancellation discipline in the planning and serving trees.
//
// # Invariant
//
// In internal/sched, internal/core, and internal/server — the packages
// between an HTTP request and the plan search it pays for — work must
// be cancelable end to end:
//
//   - a function that accepts a context.Context takes it as the first
//     parameter, so call sites thread it by habit;
//   - library code does not mint context.Background() or
//     context.TODO(): a minted root detaches the work from the
//     caller's deadline and the server's shutdown, which is exactly
//     how pre-PR 8 plan searches kept running for dead queries;
//   - an exported function or method that takes work-sized inputs (a
//     slice, map, or channel parameter) accepts a context, because
//     work proportional to an input must be cancelable.
//
// # Annotating exceptions
//
// Deliberately detached work — a shared fill serving many queries, a
// keep-alive compat wrapper — carries `//riotvet:allow ctxflow —
// <reason>` on the minting or declaring line. The annotation names the
// analyzer and documents why the detachment is sound.
package ctxflow

import (
	"go/ast"
	"go/types"

	"riotshare/internal/lint/analysis"
	"riotshare/internal/lint/lintutil"
)

// Analyzer enforces ctx-first signatures and forbids minted root
// contexts in the scheduling, planning, and serving packages.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "sched/core/server code threads the caller's context: ctx first, no minted context.Background",
	Run:  run,
}

// run applies the analyzer to one package.
func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PathIn(pass.Pkg.Path(), "sched", "core", "server") {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkSignature(pass, n)
			case *ast.CallExpr:
				checkMint(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkMint flags calls to context.Background and context.TODO.
func checkMint(pass *analysis.Pass, call *ast.CallExpr) {
	fn := lintutil.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	if fn.Name() != "Background" && fn.Name() != "TODO" {
		return
	}
	pass.Reportf(call.Pos(),
		"library code must not mint context.%s; accept and thread the caller's context (//riotvet:allow ctxflow — reason, if the work is deliberately detached)",
		fn.Name())
}

// checkSignature enforces ctx-first ordering on every function and the
// work-sized-inputs-take-a-context rule on exported ones.
func checkSignature(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	ctxAt := -1
	workSized := false
	idx := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter
		}
		tv, ok := pass.TypesInfo.Types[field.Type]
		if ok {
			if lintutil.IsContextType(tv.Type) && ctxAt < 0 {
				ctxAt = idx
			}
			if _, variadic := field.Type.(*ast.Ellipsis); !variadic {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Chan:
					workSized = true
				}
			}
		}
		idx += n
	}
	if ctxAt > 0 {
		pass.Reportf(fd.Name.Pos(), "context.Context must be the first parameter of %s, not parameter %d", fd.Name.Name, ctxAt+1)
	}
	if ctxAt < 0 && workSized && fd.Name.IsExported() {
		pass.Reportf(fd.Name.Pos(),
			"exported %s takes work-sized inputs but no context.Context; work proportional to an input must be cancelable (accept ctx first, or //riotvet:allow ctxflow — reason)",
			fd.Name.Name)
	}
}
