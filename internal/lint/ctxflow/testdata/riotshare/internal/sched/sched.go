// Package sched is a minimized fixture of the pre-PR 8 cancellation
// gap: a plan search that minted its own root context kept running
// after its query died, burning a planner slot for nobody.
package sched

import "context"

// Plan is a stand-in for a schedule under search.
type Plan struct{ Cost float64 }

// SearchCtx is the compliant shape: ctx first, threaded down.
func SearchCtx(ctx context.Context, events []string) (Plan, error) {
	for range events {
		if err := ctx.Err(); err != nil {
			return Plan{}, err
		}
	}
	return Plan{}, nil
}

// Search is the historical bug: the search detaches itself from the
// query's lifetime by minting a root context.
func Search(events []string) (Plan, error) { // want `exported Search takes work-sized inputs but no context\.Context`
	return SearchCtx(context.Background(), events) // want `library code must not mint context\.Background`
}

// refine threads a context but buries it mid-signature, so call sites
// stop passing it by habit.
func refine(base Plan, ctx context.Context, rounds int) Plan { // want `context\.Context must be the first parameter of refine`
	_ = ctx
	_ = rounds
	return base
}

// Warm is deliberately detached: it pre-fills a cache shared by every
// future query, so no single caller's deadline should bound it.
func Warm(names []string) { //riotvet:allow ctxflow — shared cache fill outlives any one caller
	ctx := context.Background() //riotvet:allow ctxflow — shared cache fill outlives any one caller
	_, _ = SearchCtx(ctx, names)
}

// Options is variadic configuration, not work: no context demanded.
func Options(opts ...string) Plan {
	_ = opts
	return Plan{}
}

// cost is unexported: the work-sized rule binds the public surface
// only, and its int parameter is not work-sized anyway.
func cost(rounds int) float64 {
	return float64(rounds)
}
