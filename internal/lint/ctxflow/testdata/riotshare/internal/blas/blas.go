// Package blas sits outside the sched/core/server trees, so ctxflow
// leaves its compute kernels alone even though they take slices.
package blas

import "context"

// Scale is exempt: kernels below the planner are not request-scoped.
func Scale(xs []float64, by float64) {
	for i := range xs {
		xs[i] *= by
	}
}

// Detach is exempt for the same reason.
func Detach() context.Context {
	return context.Background()
}
