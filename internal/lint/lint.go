// Package lint assembles the riotvet analyzer suite: the
// project-invariant checks that turn conventions fixed by hand in past
// review cycles into build failures. See docs/static-analysis.md for
// each analyzer's invariant, the historical bug behind it, and the
// annotations that mark intentional exceptions.
package lint

import (
	"riotshare/internal/lint/analysis"
	"riotshare/internal/lint/ctxflow"
	"riotshare/internal/lint/errclass"
	"riotshare/internal/lint/guardedfield"
	"riotshare/internal/lint/lockio"
)

// Suite returns the full riotvet analyzer suite in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		guardedfield.Analyzer,
		lockio.Analyzer,
		ctxflow.Analyzer,
		errclass.Analyzer,
	}
}
