// Package analysis is a dependency-free skeleton of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check, a
// Pass hands it one type-checked package, and Run applies a suite of
// analyzers to a package and collects position-sorted findings.
//
// The shapes (Analyzer.Run(*Pass), Pass.Reportf, Diagnostic) mirror
// x/tools deliberately so the riotvet analyzers can migrate to the real
// framework by swapping an import path if the dependency ever becomes
// available; the build environment for this repository is offline, so
// the suite cannot assume the module cache holds x/tools.
//
// Beyond the x/tools subset, Run implements the project-wide
// suppression annotation: a diagnostic is dropped when its source line
// (or the line directly above it) carries a comment of the form
//
//	//riotvet:allow <analyzer-name> — <reason>
//
// naming the reporting analyzer. The reason text is free-form but the
// annotation is intentionally per-line and per-analyzer so a suppression
// can never silence more than the one finding it documents.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static check: a stable name (used in
// diagnostics and //riotvet:allow annotations), user-facing
// documentation, and the Run function applied once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -<name>=false
	// toggles, and //riotvet:allow comments. By convention it is a
	// lower-case single word.
	Name string

	// Doc is the analyzer's documentation: the first line states the
	// invariant it enforces, the rest explains the rules and the
	// annotations that mark intentional exceptions.
	Doc string

	// Run applies the analyzer to one package, reporting findings via
	// pass.Report. The result value is unused by this skeleton (x/tools
	// uses it for inter-analyzer facts) but kept for API parity.
	Run func(*Pass) (any, error)
}

// A Pass provides one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the check being applied.
	Analyzer *Analyzer

	// Fset maps token positions in Files to file/line/column.
	Fset *token.FileSet

	// Files holds the package's parsed syntax, comments included.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds the type-checker's facts about Files.
	TypesInfo *types.Info

	// Report delivers one diagnostic. Analyzers usually call Reportf.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at one source position.
type Diagnostic struct {
	// Pos locates the finding; it must be valid within the pass's Fset.
	Pos token.Pos

	// Message states the violated invariant and, where useful, the
	// annotation that would mark an intentional exception.
	Message string
}

// A Unit is one type-checked package ready for analysis: shared
// file set, parsed files (with comments), the types.Package, and the
// type-checker's info tables.
type Unit struct {
	// Fset is the file set the files were parsed against.
	Fset *token.FileSet

	// Files is the package's syntax, parsed with comments.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// Info holds Types/Defs/Uses/Selections/Scopes/Implicits for Files.
	Info *types.Info
}

// A Finding is one resolved diagnostic: analyzer name, concrete
// position, and message. Findings are what the riotvet driver prints.
type Finding struct {
	// Analyzer is the reporting analyzer's Name.
	Analyzer string

	// Pos is the finding's resolved file/line/column.
	Pos token.Position

	// Message is the diagnostic text.
	Message string
}

// String renders the finding in the canonical vet form
// "file:line:col: analyzer: message".
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// allowRE matches one suppression annotation; the analyzer name is the
// first whitespace-delimited token after the marker.
var allowRE = regexp.MustCompile(`riotvet:allow\s+(\S+)`)

// Run applies the analyzers to the unit and returns its findings sorted
// by position. Diagnostics are dropped when they fall in a _test.go
// file (tests poke invariants deliberately) or when their line — or the
// line above — carries a matching //riotvet:allow annotation.
func Run(u *Unit, analyzers []*Analyzer) ([]Finding, error) {
	allowed := allowLines(u.Fset, u.Files)
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
		}
		pass.Report = func(d Diagnostic) {
			pos := u.Fset.Position(d.Pos)
			if strings.HasSuffix(pos.Filename, "_test.go") {
				return
			}
			if names, ok := allowed[lineKey{pos.Filename, pos.Line}]; ok {
				for _, n := range names {
					if n == a.Name {
						return
					}
				}
			}
			out = append(out, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", u.Pkg.Path(), a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// lineKey addresses one source line for the suppression index.
type lineKey struct {
	file string
	line int
}

// allowLines indexes //riotvet:allow annotations: a comment on line N
// suppresses the named analyzers on N and N+1, so both trailing and
// line-above annotation styles work.
func allowLines(fset *token.FileSet, files []*ast.File) map[lineKey][]string {
	idx := make(map[lineKey][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					k := lineKey{pos.Filename, line}
					idx[k] = append(idx[k], m[1])
				}
			}
		}
	}
	return idx
}
