// Package lintutil holds the type- and syntax-probing helpers shared
// by the riotvet analyzers: recognizing sync mutexes and their
// Lock/Unlock call shapes, canonicalizing the expressions mutexes and
// guarded fields hang off, finding the functions that enclose a node,
// and reading the per-field / per-function annotations
// (`// guarded by mu`, `//riotvet:locked`, `//riotvet:iolock`,
// `//riotvet:unguarded`) that let code document intentional exceptions
// instead of suppressing a check.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// IsMutex reports whether t (or the type it points to) is sync.Mutex
// or sync.RWMutex, and whether it is the RW variant.
func IsMutex(t types.Type) (ok, rw bool) {
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return true, false
	case "RWMutex":
		return true, true
	}
	return false, false
}

// LockCall describes one call to a sync.Mutex/RWMutex method.
type LockCall struct {
	// Recv is the receiver expression, e.g. `p.mu` in `p.mu.Lock()`.
	Recv ast.Expr

	// Key is Recv canonicalized with types.ExprString, the identity
	// under which held-lock bookkeeping tracks this mutex.
	Key string

	// Method is the called method: Lock, RLock, TryLock, TryRLock,
	// Unlock, or RUnlock.
	Method string
}

// AsLockCall recognizes a call expression as a mutex method call. It
// matches only direct selector calls (`x.mu.Lock()`), which is how every
// lock site in this repository is written; calls through method values
// or interfaces are not tracked.
func AsLockCall(info *types.Info, call *ast.CallExpr) (LockCall, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return LockCall{}, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return LockCall{}, false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return LockCall{}, false
	}
	if ok, _ := IsMutex(tv.Type); !ok {
		return LockCall{}, false
	}
	return LockCall{Recv: sel.X, Key: types.ExprString(sel.X), Method: sel.Sel.Name}, true
}

// Acquires reports whether the method takes the lock (in any mode).
func (c LockCall) Acquires() bool {
	switch c.Method {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return true
	}
	return false
}

// Releases reports whether the method drops the lock.
func (c LockCall) Releases() bool {
	return c.Method == "Unlock" || c.Method == "RUnlock"
}

// FuncMarkedLocked reports whether fn documents that its caller holds
// the relevant lock: its name ends in "Locked" or its doc comment
// contains a riotvet:locked annotation.
func FuncMarkedLocked(fn *ast.FuncDecl) bool {
	if strings.HasSuffix(fn.Name.Name, "Locked") {
		return true
	}
	return commentHas(fn.Doc, "riotvet:locked")
}

// commentHas reports whether any line of the comment group contains
// the marker.
func commentHas(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// FieldComment returns the text of a struct field's doc and trailing
// line comments, joined; empty when the field has neither.
func FieldComment(field *ast.Field) string {
	var parts []string
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg != nil {
			parts = append(parts, cg.Text())
		}
	}
	return strings.Join(parts, " ")
}

// EnclosingFuncs returns the stack of function declarations and
// literals in file that contain pos, outermost first. An empty result
// means pos sits in package-level scope (a var initializer, say).
func EnclosingFuncs(file *ast.File, pos token.Pos) []ast.Node {
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || pos < n.Pos() || pos >= n.End() {
			return n == nil
		}
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			stack = append(stack, n)
		}
		return true
	})
	return stack
}

// FuncBody returns the body of a node returned by EnclosingFuncs.
func FuncBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// PathIn reports whether the package path names one of the given
// project subtrees: an exact match on "riotshare/internal/<name>" or
// any path ending in "/internal/<name>", so analyzer fixtures under
// testdata modules resolve the same way the real tree does.
func PathIn(pkgPath string, names ...string) bool {
	for _, name := range names {
		if pkgPath == "riotshare/internal/"+name || strings.HasSuffix(pkgPath, "/internal/"+name) {
			return true
		}
	}
	return false
}

// IsErrorType reports whether t is exactly the built-in error
// interface type.
func IsErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// ImplementsError reports whether t satisfies the error interface.
func ImplementsError(t types.Type) bool {
	iface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return iface != nil && types.Implements(t, iface)
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// CalleeFunc resolves the called function or method object of a call
// expression, nil when the callee is not a named function (a func
// value, a conversion, or a builtin).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// RootIdent returns the leftmost identifier of a selector chain
// (`s` for `s.pool.frames`), or nil when the chain is rooted in a call
// or other non-identifier expression.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
