// Package storage is a minimized fixture of the remote-shard
// classification bug: sentinel comparisons with == read wrapped
// transient failures as persistent and skipped the retry path, and a
// cleanup loop kept only the last shard's error.
package storage

import (
	"errors"
	"fmt"
	"io/fs"

	"riotshare/internal/blockproto"
)

// ErrShardUnavailable is the persistent-failure sentinel degraded
// reads key off.
var ErrShardUnavailable = errors.New("shard unavailable")

// classifyBroken is the historical bug: the pool wraps errors before
// they reach classification, so == never matches.
func classifyBroken(err error) bool {
	if err == ErrShardUnavailable { // want `sentinel comparison err == ErrShardUnavailable`
		return false
	}
	if err != fs.ErrNotExist { // want `sentinel comparison err != fs\.ErrNotExist`
		return true
	}
	return false
}

// classify is the fixed shape.
func classify(err error) bool {
	if errors.Is(err, ErrShardUnavailable) {
		return false
	}
	return !errors.Is(err, fs.ErrNotExist)
}

// statusBroken asserts the concrete type directly, missing wrapped
// server errors.
func statusBroken(err error) int {
	if se, ok := err.(*blockproto.ServerError); ok { // want `type assertion on an error misses wrapped values`
		return se.Status
	}
	switch err.(type) { // want `type switch on an error misses wrapped values`
	case *blockproto.ServerError:
		return 1
	default:
		return 0
	}
}

// status is the fixed shape.
func status(err error) int {
	var se *blockproto.ServerError
	if errors.As(err, &se) {
		return se.Status
	}
	return 0
}

// closeAllBroken keeps only the last shard's close failure.
func closeAllBroken(shards []interface{ Close() error }) error {
	var last error
	for _, s := range shards {
		if err := s.Close(); err != nil {
			last = err // want `last is overwritten on each failing iteration`
		}
	}
	return last
}

// closeAll aggregates with errors.Join, naming every failed shard.
func closeAll(shards []interface{ Close() error }) error {
	var all error
	for i, s := range shards {
		if err := s.Close(); err != nil {
			all = errors.Join(all, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return all
}

// closeKeepFirst preserves one error deliberately: accepted.
func closeKeepFirst(shards []interface{ Close() error }) error {
	var first error
	for _, s := range shards {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// retryLoop re-assigns inside the loop for control flow, not
// aggregation: the call-shaped RHS is the check-and-return idiom.
func retryLoop(dial func() error) error {
	var err error
	for i := 0; i < 3; i++ {
		err = dial()
		if err == nil {
			return nil
		}
	}
	return err
}

// Is lets a wrapped wire error match fs.ErrNotExist: the direct
// comparisons here are the implementation of errors.Is, not misuse.
func (e *notFoundError) Is(target error) bool {
	return target == fs.ErrNotExist
}

// notFoundError adapts a remote miss to the fs sentinel.
type notFoundError struct{ key string }

// Error implements the error interface.
func (e *notFoundError) Error() string { return "not found: " + e.key }
