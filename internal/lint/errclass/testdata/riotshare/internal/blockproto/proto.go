// Package blockproto stubs the wire-error type the remote
// classification fixture asserts on.
package blockproto

// ServerError mirrors the real protocol error carrying a status code.
type ServerError struct {
	Status int
	Msg    string
}

// Error implements the error interface.
func (e *ServerError) Error() string { return e.Msg }
