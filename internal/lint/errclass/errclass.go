// Package errclass implements the riotvet analyzer that enforces the
// repository's error-classification discipline.
//
// # Invariant
//
// Errors that cross a package boundary are wrapped — the remote client
// wraps shard failures, the storage layer wraps fs errors — so
// classifying them structurally is the only correct move:
//
//   - a sentinel (a package-level error variable such as
//     storage.ErrShardUnavailable, fs.ErrNotExist, or io.EOF) is
//     matched with errors.Is, never compared with == or !=;
//   - a concrete error type (such as *blockproto.ServerError) is
//     extracted with errors.As, never a direct type assertion or type
//     switch on an error value;
//   - cleanup that visits many shards aggregates failures with
//     errors.Join instead of overwriting one error variable per
//     iteration, so no shard's failure is silently dropped.
//
// # Exceptions
//
// The bodies of Is(error) bool and As(any) bool methods are exempt —
// comparing the target against a sentinel is how those methods are
// written. A keep-first assignment under an explicit `x == nil` guard
// is accepted for the loop rule. Anything else carries
// `//riotvet:allow errclass — <reason>` on its line.
//
// # History
//
// The remote-shard classification path compared wrapped errors against
// sentinels with ==, so a retryable failure wrapped by the pool read
// as persistent and skipped the backoff path. The same review cycle
// found a `err != io.EOF` in the block daemon's serve loop.
package errclass

import (
	"go/ast"
	"go/token"
	"go/types"

	"riotshare/internal/lint/analysis"
	"riotshare/internal/lint/lintutil"
)

// Analyzer flags sentinel ==/!= comparisons, direct error type
// assertions, and last-error-wins loops.
var Analyzer = &analysis.Analyzer{
	Name: "errclass",
	Doc:  "classify errors structurally: errors.Is for sentinels, errors.As for types, errors.Join for aggregates",
	Run:  run,
}

// run applies the analyzer to one package.
func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			exempt := isIsOrAsMethod(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					if !exempt {
						checkComparison(pass, n)
					}
				case *ast.TypeAssertExpr:
					if !exempt {
						checkAssert(pass, n)
					}
				case *ast.TypeSwitchStmt:
					if !exempt {
						checkTypeSwitch(pass, n)
					}
				case *ast.ForStmt:
					checkLoop(pass, n, n.Body)
				case *ast.RangeStmt:
					checkLoop(pass, n, n.Body)
				}
				return true
			})
		}
	}
	return nil, nil
}

// isIsOrAsMethod reports whether fd is an Is(error) bool or
// As(any/target) bool method — the one place direct comparison against
// a sentinel or type is the implementation, not a bug.
func isIsOrAsMethod(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil {
		return false
	}
	if fd.Name.Name != "Is" && fd.Name.Name != "As" {
		return false
	}
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	return sig.Params().Len() == 1 && sig.Results().Len() == 1
}

// checkComparison flags ==/!= against a package-level error sentinel.
func checkComparison(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		valSide, sentinelSide := pair[0], pair[1]
		tv, ok := pass.TypesInfo.Types[valSide]
		if !ok || !lintutil.IsErrorType(tv.Type) {
			continue
		}
		if sentinel := sentinelVar(pass, sentinelSide); sentinel != nil {
			pass.Reportf(be.Pos(),
				"sentinel comparison %s %s %s misclassifies wrapped errors; use errors.Is(%s, %s)",
				types.ExprString(be.X), be.Op, types.ExprString(be.Y),
				types.ExprString(valSide), types.ExprString(sentinelSide))
			return
		}
	}
}

// sentinelVar resolves an expression to a package-level error variable
// (a sentinel), or nil.
func sentinelVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !lintutil.IsErrorType(v.Type()) {
		return nil
	}
	return v
}

// checkAssert flags `x.(T)` where x is an error and T implements
// error.
func checkAssert(pass *analysis.Pass, ta *ast.TypeAssertExpr) {
	if ta.Type == nil {
		return // x.(type): handled by checkTypeSwitch
	}
	xt, ok := pass.TypesInfo.Types[ta.X]
	if !ok || !lintutil.IsErrorType(xt.Type) {
		return
	}
	tt, ok := pass.TypesInfo.Types[ta.Type]
	if !ok || !lintutil.ImplementsError(tt.Type) {
		return
	}
	pass.Reportf(ta.Pos(),
		"type assertion on an error misses wrapped values; use errors.As with a *%s target",
		types.ExprString(ta.Type))
}

// checkTypeSwitch flags `switch x.(type)` over an error value when any
// case extracts an error-implementing type.
func checkTypeSwitch(pass *analysis.Pass, ts *ast.TypeSwitchStmt) {
	var x ast.Expr
	switch a := ts.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
			x = ta.X
		}
	case *ast.AssignStmt:
		if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
			x = ta.X
		}
	}
	if x == nil {
		return
	}
	xt, ok := pass.TypesInfo.Types[x]
	if !ok || !lintutil.IsErrorType(xt.Type) {
		return
	}
	for _, clause := range ts.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, t := range cc.List {
			tv, ok := pass.TypesInfo.Types[t]
			if !ok || tv.Type == types.Typ[types.UntypedNil] {
				continue
			}
			if lintutil.ImplementsError(tv.Type) {
				pass.Reportf(ts.Pos(),
					"type switch on an error misses wrapped values; use errors.As for each case type")
				return
			}
		}
	}
}

// checkLoop flags last-error-wins assignments: an error variable
// declared outside the loop, plainly overwritten inside it, dropping
// every failure but the final one.
func checkLoop(pass *analysis.Pass, loop ast.Node, body *ast.BlockStmt) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[lhs]
		if obj == nil || !lintutil.IsErrorType(obj.Type()) {
			return true
		}
		// Only variables declared outside the loop accumulate across
		// iterations.
		if obj.Pos() >= loop.Pos() && obj.Pos() < loop.End() {
			return true
		}
		// `firstErr = err` is the dropped-aggregate shape; `err = f()`
		// is the check-and-return shape, which the next statement
		// handles.
		switch ast.Unparen(as.Rhs[0]).(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			return true
		}
		if usesIdent(as.Rhs[0], obj, pass) {
			return true // x = wrap(x, ...) shapes keep the history
		}
		// A keep-first guard (`if x == nil { x = err }`) preserves one
		// error deliberately; accept it.
		for _, anc := range stack {
			ifs, ok := anc.(*ast.IfStmt)
			if !ok {
				continue
			}
			if guardsNil(pass, ifs.Cond, obj) {
				return true
			}
		}
		pass.Reportf(as.Pos(),
			"%s is overwritten on each failing iteration, dropping earlier errors; aggregate with %s = errors.Join(%s, ...) or keep the first under an explicit %s == nil guard",
			lhs.Name, lhs.Name, lhs.Name, lhs.Name)
		return true
	})
}

// usesIdent reports whether expr references obj.
func usesIdent(expr ast.Expr, obj types.Object, pass *analysis.Pass) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// guardsNil reports whether cond contains `obj == nil`.
func guardsNil(pass *analysis.Pass, cond ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.EQL {
			return true
		}
		for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
			id, ok := ast.Unparen(pair[0]).(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != obj {
				continue
			}
			if tv, ok := pass.TypesInfo.Types[pair[1]]; ok && tv.IsNil() {
				found = true
			}
		}
		return !found
	})
	return found
}
