package errclass_test

import (
	"testing"

	"riotshare/internal/lint/analysistest"
	"riotshare/internal/lint/errclass"
)

// TestErrClass runs the analyzer over the minimized remote-shard
// classification bug (sentinel ==, direct type asserts, last-error-wins
// cleanup) and the compliant shapes around it.
func TestErrClass(t *testing.T) {
	analysistest.Run(t, "testdata/riotshare", errclass.Analyzer)
}
