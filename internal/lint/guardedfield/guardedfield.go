// Package guardedfield implements the riotvet analyzer that enforces
// the repository's mutex-guarding convention on struct fields.
//
// # Invariant
//
// A field that belongs to a mutex's guarded group may only be read or
// written while that mutex is held. A field joins a guarded group two
// ways:
//
//   - explicitly, when its doc or line comment says "guarded by <mu>"
//     naming a sibling mutex field, or
//   - implicitly, when it is a map or slice declared in the same
//     contiguous field group as (and after) a sync.Mutex/RWMutex field
//     — the layout convention structs like telemetry.Registry,
//     buffer.Pool, and server.Server already follow. A blank line or
//     another mutex ends the group.
//
// An access is compliant when some enclosing function locks the same
// mutex on the same receiver expression (`p.mu.Lock()`, `p.mu.RLock()`
// or a TryLock variant — release placement is the lockio analyzer's
// concern), when an enclosing named function is documented as running
// under the lock (its name ends in "Locked" or its doc comment carries
// //riotvet:locked), or when the struct value was constructed in the
// same function and so cannot be shared yet.
//
// # Annotating exceptions
//
// A field that looks guarded but intentionally is not — say a map that
// is immutable after construction — opts out with a trailing
// `//riotvet:unguarded <reason>` comment on its declaration. A single
// access that is safe for reasons the analyzer cannot see carries
// `//riotvet:allow guardedfield — <reason>` on its line.
//
// # History
//
// PR 7 shipped the /metrics scrape race: telemetry.Registry's families
// map was written under mu by registration but iterated lock-free by
// the scrape path. The fix took the lock; this analyzer makes that
// class of fix permanent.
package guardedfield

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"riotshare/internal/lint/analysis"
	"riotshare/internal/lint/lintutil"
)

// Analyzer flags accesses to mutex-guarded struct fields made without
// holding the guarding mutex.
var Analyzer = &analysis.Analyzer{
	Name: "guardedfield",
	Doc:  "mutex-guarded struct fields must be accessed with the mutex held",
	Run:  run,
}

// guardedByRE extracts the mutex name from an explicit field comment.
var guardedByRE = regexp.MustCompile(`guarded by (\*?\w+)`)

// guard records one guarded field's protection contract.
type guard struct {
	muName     string     // guarding mutex field's name
	structName string     // owning struct's type name, for messages
	owner      types.Type // owning struct's named type
	fieldName  string     // guarded field's name, for messages
}

// run applies the analyzer to one package.
func run(pass *analysis.Pass) (any, error) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil, nil
	}
	for _, file := range pass.Files {
		checkFile(pass, file, guards)
	}
	return nil, nil
}

// collectGuards scans the package's struct declarations for guarded
// fields, keyed by the field's types.Var.
func collectGuards(pass *analysis.Pass) map[*types.Var]guard {
	guards := make(map[*types.Var]guard)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			collectStruct(pass, ts.Name.Name, tn.Type(), st, guards)
			return true
		})
	}
	return guards
}

// collectStruct walks one struct's field list in declaration order,
// tracking the mutex that opens the current contiguous field group.
func collectStruct(pass *analysis.Pass, name string, owner types.Type, st *ast.StructType, guards map[*types.Var]guard) {
	// mutexNames lets explicit "guarded by x" comments name any
	// mutex-typed field regardless of position.
	mutexNames := make(map[string]bool)
	for _, f := range st.Fields.List {
		tv, ok := pass.TypesInfo.Types[f.Type]
		if !ok {
			continue
		}
		if ok, _ := lintutil.IsMutex(tv.Type); ok {
			for _, id := range f.Names {
				mutexNames[id.Name] = true
			}
		}
	}

	groupMu := "" // mutex opening the current field group, "" when none
	prevEnd := -1 // line the previous field ended on
	for _, f := range st.Fields.List {
		start := pass.Fset.Position(f.Pos()).Line
		if f.Doc != nil {
			start = pass.Fset.Position(f.Doc.Pos()).Line
		}
		if prevEnd >= 0 && start-prevEnd > 1 {
			groupMu = "" // blank line: the guarded group ends
		}
		prevEnd = pass.Fset.Position(f.End()).Line
		if f.Comment != nil {
			prevEnd = pass.Fset.Position(f.Comment.End()).Line
		}

		tv, ok := pass.TypesInfo.Types[f.Type]
		if !ok {
			continue
		}
		if ok, _ := lintutil.IsMutex(tv.Type); ok {
			if len(f.Names) > 0 {
				groupMu = f.Names[0].Name
			}
			continue
		}

		comment := lintutil.FieldComment(f)
		if strings.Contains(comment, "riotvet:unguarded") {
			continue
		}
		mu := ""
		if m := guardedByRE.FindStringSubmatch(comment); m != nil && mutexNames[strings.TrimPrefix(m[1], "*")] {
			mu = strings.TrimPrefix(m[1], "*")
		} else if groupMu != "" && implicitlyGuarded(tv.Type) {
			mu = groupMu
		}
		if mu == "" {
			continue
		}
		for _, id := range f.Names {
			if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
				guards[v] = guard{muName: mu, structName: name, owner: owner, fieldName: id.Name}
			}
		}
	}
}

// implicitlyGuarded reports whether adjacency alone guards a field of
// this type: only maps and slices, the shapes whose unsynchronized use
// is both common and memory-unsafe.
func implicitlyGuarded(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Map, *types.Slice:
		return true
	}
	return false
}

// checkFile flags guarded-field accesses in one file.
func checkFile(pass *analysis.Pass, file *ast.File, guards map[*types.Var]guard) {
	// lockSets and constructed memoize per-function facts.
	lockSets := make(map[ast.Node]map[string]bool)
	constructed := make(map[ast.Node]map[types.Object]bool)

	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		g, ok := guards[field]
		if !ok {
			return true
		}

		baseKey := types.ExprString(sel.X)
		lockKey := baseKey + "." + g.muName
		funcs := lintutil.EnclosingFuncs(file, sel.Pos())
		if len(funcs) == 0 {
			return true // package-level initializer: pre-sharing by construction
		}
		for _, fn := range funcs {
			if fd, ok := fn.(*ast.FuncDecl); ok && lintutil.FuncMarkedLocked(fd) {
				return true
			}
			if lockSet(pass, fn, lockSets)[lockKey] {
				return true
			}
			if root := lintutil.RootIdent(sel.X); root != nil {
				if obj := pass.TypesInfo.Uses[root]; obj != nil {
					if constructedObjs(pass, fn, g, constructed)[obj] {
						return true
					}
				}
			}
		}
		pass.Reportf(sel.Pos(),
			"%s.%s is guarded by %s.%s but accessed without holding it (lock it, name the function ...Locked, or annotate //riotvet:locked if every caller holds the lock)",
			g.structName, g.fieldName, baseKey, g.muName)
		return true
	})
}

// lockSet returns the mutex keys a function acquires anywhere in its
// own body, nested function literals excluded (their locks are taken
// on a different activation's timeline).
func lockSet(pass *analysis.Pass, fn ast.Node, memo map[ast.Node]map[string]bool) map[string]bool {
	if s, ok := memo[fn]; ok {
		return s
	}
	s := make(map[string]bool)
	memo[fn] = s
	body := lintutil.FuncBody(fn)
	if body == nil {
		return s
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lc, ok := lintutil.AsLockCall(pass.TypesInfo, call); ok && lc.Acquires() {
			s[lc.Key] = true
		}
		return true
	})
	return s
}

// constructedObjs returns the local variables a function binds to a
// fresh value of the guarded struct's type (composite literal, address
// of one, or new(T)): accesses through them precede sharing, so no
// lock is required yet.
func constructedObjs(pass *analysis.Pass, fn ast.Node, g guard, memo map[ast.Node]map[types.Object]bool) map[types.Object]bool {
	if s, ok := memo[fn]; ok {
		return s
	}
	s := make(map[types.Object]bool)
	memo[fn] = s
	body := lintutil.FuncBody(fn)
	if body == nil {
		return s
	}
	record := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || !isFreshValue(pass, rhs, g.owner) {
			return
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			s[obj] = true
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			s[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return s
}

// isFreshValue reports whether expr constructs a new value of the
// owner type: T{...}, &T{...}, or new(T).
func isFreshValue(pass *analysis.Pass, expr ast.Expr, owner types.Type) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CompositeLit:
		return sameStruct(pass, e, owner)
	case *ast.UnaryExpr:
		if cl, ok := e.X.(*ast.CompositeLit); ok {
			return sameStruct(pass, cl, owner)
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" && len(e.Args) == 1 {
			if tv, ok := pass.TypesInfo.Types[e.Args[0]]; ok {
				return types.Identical(tv.Type, owner)
			}
		}
	}
	return false
}

// sameStruct reports whether the composite literal's type is the
// guarded struct's type.
func sameStruct(pass *analysis.Pass, cl *ast.CompositeLit, owner types.Type) bool {
	tv, ok := pass.TypesInfo.Types[cl]
	return ok && types.Identical(tv.Type, owner)
}
