module riotshare

go 1.22
