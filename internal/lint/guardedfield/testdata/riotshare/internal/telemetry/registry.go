// Package telemetry is a minimized fixture of the PR 7 /metrics scrape
// race: a registry whose families map is written under mu by
// registration but was iterated lock-free by the scrape path.
package telemetry

import (
	"fmt"
	"io"
	"sync"
)

// Registry mirrors the real telemetry.Registry's guarded layout.
type Registry struct {
	mu       sync.Mutex
	families map[string]int
	order    []string
	limit    int // guarded by mu
	// baseline is a plain scalar: adjacency alone does not guard it.
	baseline int

	// name is set at construction and never mutated; the blank line
	// above ends mu's guarded group.
	name string
	// labels would look guarded if groups did not reset at mutexes,
	// but it is immutable after New. //riotvet:unguarded set once
	labels []string
}

// New constructs a registry; pre-sharing accesses need no lock.
func New() *Registry {
	r := &Registry{families: map[string]int{}}
	r.families["up"] = 1 // constructor exemption: r is fresh
	r.order = append(r.order, "up")
	return r
}

// Register adds a family with the lock held: compliant.
func (r *Registry) Register(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.families[name]++
	r.order = append(r.order, name)
	r.limit++
}

// Scrape is the historical bug: it walks the guarded map and slice
// without taking the lock, racing concurrent Register calls.
func (r *Registry) Scrape(w io.Writer) {
	for _, name := range r.order { // want `Registry\.order is guarded by r\.mu`
		fmt.Fprintf(w, "%s %d\n", name, r.families[name]) // want `Registry\.families is guarded by r\.mu`
	}
	if r.limit > 0 { // want `Registry\.limit is guarded by r\.mu`
		fmt.Fprintln(w, "truncated")
	}
	_ = r.baseline // scalar outside the contract: no diagnostic
	_ = r.name     // group ended by the blank line: no diagnostic
	_ = r.labels   // riotvet:unguarded opt-out: no diagnostic
}

// ScrapeLocked is the documented caller-holds-the-lock shape.
func (r *Registry) ScrapeLocked(w io.Writer) {
	for _, name := range r.order {
		fmt.Fprintf(w, "%s %d\n", name, r.families[name])
	}
}

// snapshot is annotated as running under the lock.
//
//riotvet:locked — called only from Register and Scrape with mu held
func (r *Registry) snapshot() []string {
	return append([]string(nil), r.order...)
}

// RLockedRead shows an RWMutex read path holding the read lock.
type Gauges struct {
	rw     sync.RWMutex
	values map[string]float64
}

// Get reads under RLock: compliant.
func (g *Gauges) Get(name string) float64 {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.values[name]
}

// Sum forgets the lock entirely.
func (g *Gauges) Sum() float64 {
	var s float64
	for _, v := range g.values { // want `Gauges\.values is guarded by g\.rw`
		s += v
	}
	return s
}

// SumAllowed documents a single intentionally lock-free access.
func (g *Gauges) SumAllowed() int {
	return len(g.values) //riotvet:allow guardedfield — racy size hint is fine for logging
}
