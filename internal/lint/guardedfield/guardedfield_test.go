package guardedfield_test

import (
	"testing"

	"riotshare/internal/lint/analysistest"
	"riotshare/internal/lint/guardedfield"
)

// TestGuardedField runs the analyzer over the minimized PR 7 scrape
// race (telemetry.Registry's families map iterated lock-free) and the
// compliant shapes around it.
func TestGuardedField(t *testing.T) {
	analysistest.Run(t, "testdata/riotshare", guardedfield.Analyzer)
}
