// Package analysistest runs a riotvet analyzer over a fixture module
// and checks its diagnostics against `// want` comment expectations,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A fixture lives under the analyzer's testdata directory as a
// self-contained module (its own go.mod), typically named `riotshare`
// so path-sensitive analyzers resolve `internal/...` fixture packages
// exactly like the real tree. Expectations are trailing comments on
// the line a diagnostic should land on:
//
//	stats := r.counts // want `counts is guarded by`
//	okHere()          // no comment: any diagnostic on this line fails
//
// Each backquoted or double-quoted string after `want` is an anchored
// regular expression that must match one diagnostic on that line;
// unmatched expectations and unexpected diagnostics both fail the
// test. `// want` comments work in _test.go fixture files too, but
// the runner skips such files by design, so fixtures use plain .go
// files.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"riotshare/internal/lint/analysis"
	"riotshare/internal/lint/load"
)

// wantRE captures the expectation list after a `want` marker.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// expectation is one unmatched `// want` pattern.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the module rooted at dir (applying patterns, default
// ./...), applies the analyzer to every loaded package, and reports
// any mismatch between diagnostics and `// want` expectations as test
// errors. It returns the findings for additional assertions.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) []analysis.Finding {
	t.Helper()
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	var findings []analysis.Finding
	var wants []*expectation
	for _, pkg := range pkgs {
		fs, err := analysis.Run(pkg.Unit, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		findings = append(findings, fs...)
		ws, err := collectWants(pkg.Unit.Fset, pkg.Unit)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, ws...)
	}

	// Greedy matching: each diagnostic consumes the first unmatched
	// expectation on its line whose pattern matches.
	for _, f := range findings {
		consumed := false
		for _, w := range wants {
			if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.matched = true
				consumed = true
				break
			}
		}
		if !consumed {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
	return findings
}

// collectWants parses `// want` expectations out of the unit's
// comments.
func collectWants(fset *token.FileSet, u *analysis.Unit) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				patterns, err := splitPatterns(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want comment: %w", pos.Filename, pos.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %q: %w", pos.Filename, pos.Line, p, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// splitPatterns tokenizes the tail of a want comment into its quoted
// regular expressions (backquoted or double-quoted Go strings).
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '`' && quote != '"' {
			return nil, fmt.Errorf("expected quoted pattern at %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if quote == '"' {
			// Respect escapes inside double quotes via strconv.
			q, rest, ok := scanDoubleQuoted(s)
			if !ok {
				return nil, fmt.Errorf("unterminated pattern at %q", s)
			}
			out = append(out, q)
			s = strings.TrimSpace(rest)
			continue
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern at %q", s)
		}
		out = append(out, s[1:1+end])
		s = strings.TrimSpace(s[end+2:])
	}
	return out, nil
}

// scanDoubleQuoted unquotes a leading double-quoted Go string and
// returns it with the remainder of the input.
func scanDoubleQuoted(s string) (val, rest string, ok bool) {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			v, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", false
			}
			return v, s[i+1:], true
		}
	}
	return "", "", false
}
