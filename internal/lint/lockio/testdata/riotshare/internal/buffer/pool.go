// Package buffer is a minimized fixture of the PR 9 ReleaseBlock
// stall: a dirty block written back to the store while the pool mutex
// was still held, stalling every concurrent acquire behind one device
// write.
package buffer

import (
	"net"
	"os"
	"sync"

	"riotshare/internal/storage"
)

// Pool is the guarded cache under test.
type Pool struct {
	mu    sync.Mutex
	dirty map[string][]byte

	store storage.Backend
}

// ReleaseBlockStalled is the historical bug shape: write-back inside
// the critical section.
func (p *Pool) ReleaseBlockStalled(key string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	data := p.dirty[key]
	delete(p.dirty, key)
	return p.store.WriteBlock(key, 0, 0, data) // want `storage block I/O \(WriteBlock\) while p\.mu is held`
}

// ReleaseBlock is the fixed shape: snapshot under the lock, write
// after dropping it.
func (p *Pool) ReleaseBlock(key string) error {
	p.mu.Lock()
	data := p.dirty[key]
	delete(p.dirty, key)
	p.mu.Unlock()
	return p.store.WriteBlock(key, 0, 0, data)
}

// Fill reads while holding the lock: reads stall the pool just like
// writes.
func (p *Pool) Fill(key string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	data, err := p.store.ReadBlock(key, 0, 0) // want `storage block I/O \(ReadBlock\) while p\.mu is held`
	if err != nil {
		return err
	}
	p.dirty[key] = data
	return nil
}

// DropArray holds the lock across storage.Drop.
func (p *Pool) DropArray(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.store.Drop(name) // want `storage Drop while p\.mu is held`
}

// flushLocked documents that its caller holds the pool mutex, so I/O
// inside it is still I/O under a lock.
func (p *Pool) flushLocked(key string) error {
	return p.store.WriteBlock(key, 0, 0, p.dirty[key]) // want `storage block I/O \(WriteBlock\) while the caller's lock is held`
}

// spill is allowed to write asynchronously: the goroutine runs on its
// own timeline after the critical section.
func (p *Pool) spill(key string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	data := p.dirty[key]
	go func() {
		_ = p.store.WriteBlock(key, 0, 0, data)
	}()
}

// client mirrors the remote client's split-mutex layout: mu guards
// bookkeeping, wmu exists to serialize writers on the shared conn.
type client struct {
	mu      sync.Mutex
	pending map[uint64]chan []byte

	// wmu serializes the write half of conn. //riotvet:iolock — this
	// mutex exists to order frames on the socket.
	wmu  sync.Mutex
	conn net.Conn
}

// send writes under the annotated I/O mutex: compliant by design.
func (c *client) send(frame []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_, err := c.conn.Write(frame)
	return err
}

// sendTracked takes the bookkeeping mutex across the socket write: the
// data lock is not an I/O lock.
func (c *client) sendTracked(id uint64, frame []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pending[id] = make(chan []byte, 1)
	_, err := c.conn.Write(frame) // want `net\.Conn Write while c\.mu is held`
	return err
}

// journal holds a file write inside a critical section, then shows the
// unlock-first fix and an annotated exception.
func journal(mu *sync.Mutex, f *os.File, line string) error {
	mu.Lock()
	if _, err := f.WriteString(line); err != nil { // want `os\.File WriteString while mu is held`
		mu.Unlock()
		return err
	}
	mu.Unlock()
	if err := f.Sync(); err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	return f.Sync() //riotvet:allow lockio — single-writer journal, the lock is the flush barrier
}
