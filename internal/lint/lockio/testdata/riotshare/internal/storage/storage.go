// Package storage stubs the real storage.Backend surface so the
// lockio fixture exercises the same call shapes the production pool
// makes.
package storage

// Backend is the block-I/O interface the buffer pool writes through.
type Backend interface {
	ReadBlock(array string, r, c int64) ([]byte, error)
	WriteBlock(array string, r, c int64, data []byte) error
	Create(array string) error
	Drop(array string) error
}
