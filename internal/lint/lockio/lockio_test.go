package lockio_test

import (
	"testing"

	"riotshare/internal/lint/analysistest"
	"riotshare/internal/lint/lockio"
)

// TestLockIO runs the analyzer over the minimized PR 9 ReleaseBlock
// write-back stall and the compliant shapes around it.
func TestLockIO(t *testing.T) {
	analysistest.Run(t, "testdata/riotshare", lockio.Analyzer)
}
