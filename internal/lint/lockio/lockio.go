// Package lockio implements the riotvet analyzer that keeps blocking
// I/O out of mutex critical sections.
//
// # Invariant
//
// No storage block I/O (ReadBlock/WriteBlock anywhere, Create/Drop on
// a storage-package type), net.Conn read/write, or os.File write may
// execute on a path where a sync.Mutex or sync.RWMutex is held. Locks
// in this repository guard in-memory maps and counters; holding one
// across device or network latency serializes every other query on the
// lock for the duration of the slowest I/O.
//
// The check is flow-insensitive within one function: lock and unlock
// calls and I/O calls are ordered by source position, a deferred
// unlock keeps the lock held to the end of the function, and functions
// documented as running under a caller's lock (name ending in "Locked"
// or a //riotvet:locked doc annotation) are treated as holding a lock
// from their first statement. Calls inside `go` statements and nested
// function literals run on their own timelines and are checked
// separately.
//
// # Annotating exceptions
//
// Some mutexes exist precisely to serialize an I/O stream — the remote
// client's write-half mutex, say. Declare that role on the mutex field
// with a `//riotvet:iolock <reason>` comment and the analyzer ignores
// sections under it. A single call that is safe for reasons the
// analyzer cannot see carries `//riotvet:allow lockio — <reason>`.
//
// # History
//
// PR 9's ReleaseBlock stall: the buffer pool wrote an evicted dirty
// block back to the store while still holding the pool mutex, stalling
// every concurrent acquire behind one device write. The fix moved the
// write-back outside the critical section; this analyzer makes the fix
// a build invariant.
package lockio

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"riotshare/internal/lint/analysis"
	"riotshare/internal/lint/lintutil"
)

// Analyzer flags blocking storage, network, and file I/O performed
// while holding a mutex.
var Analyzer = &analysis.Analyzer{
	Name: "lockio",
	Doc:  "no blocking storage/network/file I/O while holding a mutex",
	Run:  run,
}

// run applies the analyzer to one package.
func run(pass *analysis.Pass) (any, error) {
	iolocks := collectIOLocks(pass)
	for _, file := range pass.Files {
		var walk func(fn ast.Node, markedLocked bool)
		walk = func(fn ast.Node, markedLocked bool) {
			checkFunc(pass, fn, markedLocked, iolocks)
			body := lintutil.FuncBody(fn)
			if body == nil {
				return
			}
			ast.Inspect(body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					// A literal inherits no held locks: it runs on its
					// own activation's timeline (deferred, spawned, or
					// stored), so it is checked independently.
					walk(lit, false)
					return false
				}
				return true
			})
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				walk(fd, lintutil.FuncMarkedLocked(fd))
			}
		}
	}
	return nil, nil
}

// collectIOLocks gathers the mutex objects annotated //riotvet:iolock:
// struct fields and package-level vars whose declarations carry the
// marker. Locks on these mutexes are exempt by design.
func collectIOLocks(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(names []*ast.Ident, comment string) {
		if !strings.Contains(comment, "riotvet:iolock") {
			return
		}
		for _, id := range names {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, f := range n.Fields.List {
					record(f.Names, lintutil.FieldComment(f))
				}
			case *ast.GenDecl:
				if n.Tok != token.VAR {
					return true
				}
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					var parts []string
					for _, cg := range []*ast.CommentGroup{n.Doc, vs.Doc, vs.Comment} {
						if cg != nil {
							parts = append(parts, cg.Text())
						}
					}
					record(vs.Names, strings.Join(parts, " "))
				}
			}
			return true
		})
	}
	return out
}

// event is one point on a function's linearized timeline.
type event struct {
	pos  token.Pos
	kind int    // 0 acquire, 1 release, 2 io
	key  string // mutex key for acquire/release
	desc string // call description for io
}

// checkFunc linearizes one function body and reports I/O performed
// while the held-lock set is non-empty.
func checkFunc(pass *analysis.Pass, fn ast.Node, markedLocked bool, iolocks map[types.Object]bool) {
	body := lintutil.FuncBody(fn)
	if body == nil {
		return
	}
	deferred := make(map[*ast.CallExpr]bool)
	async := make(map[*ast.CallExpr]bool)
	var events []event
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its own timeline
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.GoStmt:
			async[n.Call] = true
		case *ast.CallExpr:
			if async[n] {
				return true // runs on a new goroutine, not in this section
			}
			if lc, ok := lintutil.AsLockCall(pass.TypesInfo, n); ok {
				if isIOLock(pass, lc.Recv, iolocks) {
					return true
				}
				switch {
				case lc.Acquires():
					events = append(events, event{pos: n.Pos(), kind: 0, key: lc.Key})
				case lc.Releases() && !deferred[n]:
					// A deferred unlock holds the lock to function end,
					// so it contributes no release event.
					events = append(events, event{pos: n.Pos(), kind: 1, key: lc.Key})
				}
				return true
			}
			if desc, ok := ioCall(pass, n); ok {
				events = append(events, event{pos: n.Pos(), kind: 2, desc: desc})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := make(map[string]token.Pos)
	var order []string // acquisition order, for stable messages
	if markedLocked {
		held["the caller's lock"] = body.Pos()
		order = append(order, "the caller's lock")
	}
	for _, e := range events {
		switch e.kind {
		case 0:
			if _, ok := held[e.key]; !ok {
				order = append(order, e.key)
			}
			held[e.key] = e.pos
		case 1:
			delete(held, e.key)
			for i, k := range order {
				if k == e.key {
					order = append(order[:i], order[i+1:]...)
					break
				}
			}
		case 2:
			if len(held) == 0 {
				continue
			}
			mu := order[len(order)-1]
			pass.Reportf(e.pos,
				"%s while %s is held (move the I/O outside the critical section, or annotate the mutex //riotvet:iolock if it exists to serialize this stream)",
				e.desc, mu)
		}
	}
}

// isIOLock reports whether the lock receiver resolves to a mutex
// declaration annotated //riotvet:iolock.
func isIOLock(pass *analysis.Pass, recv ast.Expr, iolocks map[types.Object]bool) bool {
	if len(iolocks) == 0 {
		return false
	}
	switch r := ast.Unparen(recv).(type) {
	case *ast.Ident:
		return iolocks[pass.TypesInfo.Uses[r]]
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[r]; ok {
			return iolocks[sel.Obj()]
		}
		return iolocks[pass.TypesInfo.Uses[r.Sel]]
	}
	return false
}

// fileWrites is the os.File method set lockio treats as blocking
// writes.
var fileWrites = map[string]bool{
	"Write": true, "WriteAt": true, "WriteString": true,
	"Sync": true, "Truncate": true, "ReadFrom": true,
}

// ioCall classifies a call as blocking I/O, returning a description
// for the diagnostic.
func ioCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := lintutil.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	name := fn.Name()
	switch {
	case name == "ReadBlock" || name == "WriteBlock":
		return "storage block I/O (" + name + ")", true
	case (name == "Create" || name == "Drop") && lintutil.PathIn(fn.Pkg().Path(), "storage"):
		return "storage " + name, true
	case fn.Pkg().Path() == "net" && (name == "Read" || name == "Write"):
		return "net.Conn " + name, true
	case fn.Pkg().Path() == "os" && fileWrites[name] && isOSFile(sig.Recv().Type()):
		return "os.File " + name, true
	}
	return "", false
}

// isOSFile reports whether t is *os.File (or os.File).
func isOSFile(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File"
}
