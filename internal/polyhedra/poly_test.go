package polyhedra

import (
	"math/rand"
	"testing"
)

// box returns {lo <= x_i <= hi for all i}.
func box(dim int, lo, hi int64) *Poly {
	p := NewPoly(dim)
	for i := 0; i < dim; i++ {
		p.AddRange(i, lo, hi)
	}
	return p
}

func TestContains(t *testing.T) {
	p := box(2, 0, 3)
	if !p.Contains([]int64{0, 3}) || p.Contains([]int64{4, 0}) || p.Contains([]int64{-1, 2}) {
		t.Fatal("Contains wrong on box")
	}
}

func TestAddEqContains(t *testing.T) {
	p := box(2, 0, 5)
	p.AddEq([]int64{1, -1}, 0) // x = y
	if !p.Contains([]int64{2, 2}) || p.Contains([]int64{2, 3}) {
		t.Fatal("equality constraint not enforced")
	}
}

func TestSimplifyGCDTightening(t *testing.T) {
	// 2x - 1 >= 0 over integers means x >= 1 (tightened from x >= 1/2).
	p := NewPoly(1)
	p.AddIneq([]int64{2}, -1)
	p.Simplify()
	if p.Contains([]int64{0}) {
		t.Fatal("integer tightening failed: x=0 should violate 2x-1>=0 tightened to x>=1")
	}
	if !p.Contains([]int64{1}) {
		t.Fatal("x=1 should satisfy")
	}
}

func TestSimplifyGCDTestEquality(t *testing.T) {
	// 2x + 1 == 0 has no integer solutions.
	p := NewPoly(1)
	p.AddEq([]int64{2}, 1)
	if p.Simplify() {
		t.Fatal("GCD test should detect infeasibility of 2x+1=0")
	}
}

func TestSimplifyContradiction(t *testing.T) {
	p := NewPoly(1)
	p.AddIneq([]int64{1}, -5) // x >= 5
	p.AddIneq([]int64{-1}, 2) // x <= 2
	p.Simplify()
	if !p.IsEmptyRational() {
		t.Fatal("contradictory bounds should be empty")
	}
}

func TestSimplifyDedup(t *testing.T) {
	p := NewPoly(1)
	p.AddIneq([]int64{1}, 0)
	p.AddIneq([]int64{1}, 5)  // weaker
	p.AddIneq([]int64{1}, -2) // stronger: x >= 2
	p.Simplify()
	if len(p.Cons) != 1 || p.Cons[0].K != -2 {
		t.Fatalf("dedup should keep tightest constant, got %v", p.Cons)
	}
}

func TestIntersect(t *testing.T) {
	a := box(2, 0, 10)
	b := NewPoly(2)
	b.AddIneq([]int64{1, 1}, -5) // x+y >= 5
	c := Intersect(a, b)
	if !c.Contains([]int64{3, 3}) || c.Contains([]int64{1, 1}) {
		t.Fatal("Intersect wrong")
	}
}

func TestEliminateVarBox(t *testing.T) {
	// Project {0<=x<=3, 0<=y<=5, x<=y} onto x: 0<=x<=3 survives.
	p := box(2, 0, 5)
	p.AddRange(0, 0, 3)
	p.AddIneq([]int64{-1, 1}, 0) // y - x >= 0
	q, exact := p.EliminateVar(1)
	if !exact {
		t.Fatal("unit-coefficient elimination should be exact")
	}
	for x := int64(-2); x <= 7; x++ {
		want := x >= 0 && x <= 3
		if got := q.Contains([]int64{x}); got != want {
			t.Fatalf("projection wrong at x=%d: got %v want %v", x, got, want)
		}
	}
}

func TestEliminateVarEquality(t *testing.T) {
	// {x = y+1, 0<=y<=4} projected onto x gives 1<=x<=5.
	p := NewPoly(2)
	p.AddEq([]int64{1, -1}, -1) // x - y - 1 = 0
	p.AddRange(1, 0, 4)
	q, exact := p.EliminateVar(1)
	if !exact {
		t.Fatal("should be exact")
	}
	for x := int64(-1); x <= 7; x++ {
		want := x >= 1 && x <= 5
		if got := q.Contains([]int64{x}); got != want {
			t.Fatalf("x=%d got %v want %v", x, got, want)
		}
	}
}

func TestEliminateInexactFlag(t *testing.T) {
	// 2y = x: eliminating y through a coefficient-2 equality is inexact.
	p := NewPoly(2)
	p.AddEq([]int64{-1, 2}, 0)
	p.AddRange(1, 0, 4)
	_, exact := p.EliminateVar(1)
	if exact {
		t.Fatal("coefficient-2 elimination must report inexact")
	}
}

func TestIsEmptyRational(t *testing.T) {
	if box(2, 0, 3).IsEmptyRational() {
		t.Fatal("box should be non-empty")
	}
	p := box(1, 0, 3)
	p.AddIneq([]int64{1}, -10) // x >= 10
	if !p.IsEmptyRational() {
		t.Fatal("should be empty")
	}
	// Empty via chained elimination: x <= y, y <= z, z <= x-1.
	q := NewPoly(3)
	q.AddIneq([]int64{-1, 1, 0}, 0)
	q.AddIneq([]int64{0, -1, 1}, 0)
	q.AddIneq([]int64{1, 0, -1}, -1)
	if !q.IsEmptyRational() {
		t.Fatal("cyclic strict chain should be empty")
	}
}

func TestBindVar(t *testing.T) {
	p := box(3, 0, 4)
	p.AddEq([]int64{1, -1, 0}, 0) // x0 = x1
	q := p.BindVar(0, 2)
	if q.Dim != 2 {
		t.Fatal("BindVar should drop a dimension")
	}
	if !q.Contains([]int64{2, 3}) || q.Contains([]int64{3, 3}) {
		t.Fatal("BindVar substitution wrong")
	}
}

func TestInsertVars(t *testing.T) {
	p := box(2, 0, 3)
	q := p.InsertVars(1, 2)
	if q.Dim != 4 {
		t.Fatal("InsertVars dim wrong")
	}
	// Original x0 at col 0, x1 now at col 3; inserted cols unconstrained.
	if !q.Contains([]int64{0, 99, -99, 3}) || q.Contains([]int64{4, 0, 0, 0}) {
		t.Fatal("InsertVars constraint shift wrong")
	}
}

func TestSampleIntBox(t *testing.T) {
	p := box(3, 2, 7)
	pt, ok := p.SampleInt(4)
	if !ok || !p.Contains(pt) {
		t.Fatalf("sample failed: %v %v", pt, ok)
	}
}

func TestSampleIntPrefersSmall(t *testing.T) {
	p := NewPoly(2) // unconstrained
	pt, ok := p.SampleInt(4)
	if !ok || pt[0] != 0 || pt[1] != 0 {
		t.Fatalf("expected origin for unconstrained space, got %v", pt)
	}
}

func TestSampleIntEqualityDivisibility(t *testing.T) {
	// 3x = 2y, 1 <= x <= 10: needs x divisible by 2; smallest is x=2,y=3.
	p := NewPoly(2)
	p.AddEq([]int64{3, -2}, 0)
	p.AddRange(0, 1, 10)
	pt, ok := p.SampleInt(8)
	if !ok {
		t.Fatal("should find a point")
	}
	if 3*pt[0] != 2*pt[1] || pt[0] < 1 || pt[0] > 10 {
		t.Fatalf("bad point %v", pt)
	}
}

func TestSampleIntEmpty(t *testing.T) {
	p := box(1, 5, 3)
	if _, ok := p.SampleInt(4); ok {
		t.Fatal("empty polyhedron should not sample")
	}
}

func TestSampleIntIntegerEmptyRationalNonempty(t *testing.T) {
	// 2x = 1 within 0 <= x <= 1: rational point x=1/2 exists, integer none.
	p := NewPoly(1)
	p.AddRange(0, 0, 1)
	p.Cons = append(p.Cons, Constraint{Coef: []int64{2}, K: -1, Eq: true})
	if _, ok := p.SampleInt(4); ok {
		t.Fatal("no integer point exists")
	}
	if !p.IsEmptyInt(4) {
		t.Fatal("IsEmptyInt should be true")
	}
}

func TestEnumerate(t *testing.T) {
	p := box(2, 0, 2)
	pts, err := p.Enumerate(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 9 {
		t.Fatalf("expected 9 points, got %d", len(pts))
	}
	for _, pt := range pts {
		if !p.Contains(pt) {
			t.Fatalf("enumerated point %v not in polyhedron", pt)
		}
	}
}

func TestEnumerateTriangle(t *testing.T) {
	// 0 <= x <= y <= 3: 10 points.
	p := NewPoly(2)
	p.AddIneq([]int64{1, 0}, 0)
	p.AddIneq([]int64{-1, 1}, 0)
	p.AddIneq([]int64{0, -1}, 3)
	n, err := p.Count(100)
	if err != nil || n != 10 {
		t.Fatalf("triangle count=%d err=%v want 10", n, err)
	}
}

func TestEnumerateUnboundedFails(t *testing.T) {
	p := NewPoly(1)
	p.AddIneq([]int64{1}, 0) // x >= 0, unbounded above
	if _, err := p.Enumerate(100); err == nil {
		t.Fatal("unbounded enumeration should error")
	}
}

func TestEnumerateLimitExceeded(t *testing.T) {
	p := box(2, 0, 99)
	if _, err := p.Enumerate(10); err == nil {
		t.Fatal("limit should be enforced")
	}
}

func TestImpliedEqualities(t *testing.T) {
	// x >= 2 and x <= 2 implies x == 2.
	p := NewPoly(1)
	p.AddIneq([]int64{1}, -2)
	p.AddIneq([]int64{-1}, 2)
	eqs := p.ImpliedEqualities()
	if len(eqs) == 0 {
		t.Fatal("should detect implied equality")
	}
}

func TestAffineHullRank(t *testing.T) {
	// {0<=x<=3, y=x}: rank over both cols is 1; over [x] alone is 1.
	p := box(1, 0, 3).InsertVars(1, 1)
	p.AddEq([]int64{1, -1}, 0)
	if r := p.AffineHullRank([]int{0, 1}); r != 1 {
		t.Fatalf("rank over (x,y) = %d want 1", r)
	}
	if r := p.AffineHullRank([]int{0}); r != 1 {
		t.Fatalf("rank over (x) = %d want 1", r)
	}
	// Degenerate: x pinned to 2.
	q := NewPoly(1)
	q.AddEq([]int64{1}, -2)
	if r := q.AffineHullRank([]int{0}); r != 0 {
		t.Fatalf("pinned var rank = %d want 0", r)
	}
}

func TestProjectOnto(t *testing.T) {
	// {x=y+z, 0<=y,z<=2} onto x: 0..4.
	p := NewPoly(3)
	p.AddEq([]int64{1, -1, -1}, 0)
	p.AddRange(1, 0, 2)
	p.AddRange(2, 0, 2)
	q, exact := p.ProjectOnto([]int{0})
	if !exact {
		t.Fatal("should be exact")
	}
	for x := int64(-1); x <= 5; x++ {
		want := x >= 0 && x <= 4
		if got := q.Contains([]int64{x}); got != want {
			t.Fatalf("x=%d got %v want %v", x, got, want)
		}
	}
}

// Property test: for random small boxes with a random extra constraint,
// Enumerate agrees with brute force over a superset grid.
func TestEnumerateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 150; iter++ {
		dim := 1 + rng.Intn(3)
		p := box(dim, 0, 4)
		// Random affine constraint with small coefficients.
		coef := make([]int64, dim)
		for i := range coef {
			coef[i] = int64(rng.Intn(5) - 2)
		}
		k := int64(rng.Intn(9) - 4)
		if rng.Intn(2) == 0 {
			p.AddIneq(coef, k)
		} else {
			p.AddEq(coef, k)
		}
		pts, err := p.Enumerate(10000)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[string]bool)
		for _, pt := range pts {
			got[ptKey(pt)] = true
		}
		// Brute force.
		var want int
		grid := make([]int64, dim)
		var rec func(d int)
		rec = func(d int) {
			if d == dim {
				if p.Contains(grid) {
					want++
					if !got[ptKey(grid)] {
						t.Fatalf("missing point %v in %s", grid, p)
					}
				}
				return
			}
			for v := int64(0); v <= 4; v++ {
				grid[d] = v
				rec(d + 1)
			}
		}
		rec(0)
		if want != len(pts) {
			t.Fatalf("count mismatch: enum=%d brute=%d poly=%s", len(pts), want, p)
		}
	}
}

// Property test: elimination preserves the projection of integer points for
// unit-coefficient systems.
func TestEliminationSoundOnIntegerPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 100; iter++ {
		p := box(3, 0, 3)
		coef := []int64{int64(rng.Intn(3) - 1), int64(rng.Intn(3) - 1), int64(rng.Intn(3) - 1)}
		p.AddIneq(coef, int64(rng.Intn(5)-2))
		q, _ := p.EliminateVar(2)
		pts, err := p.Enumerate(10000)
		if err != nil {
			t.Fatal(err)
		}
		for _, pt := range pts {
			if !q.Contains(pt[:2]) {
				t.Fatalf("projection lost point %v", pt)
			}
		}
	}
}

func TestPolyString(t *testing.T) {
	p := NewPoly(2, "i", "j")
	p.AddIneq([]int64{1, 0}, 0)
	p.AddEq([]int64{1, -1}, 0)
	s := p.String()
	if s == "" || s == "{}" {
		t.Fatalf("String should render constraints, got %q", s)
	}
}
