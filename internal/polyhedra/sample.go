package polyhedra

import (
	"fmt"
	"math"
	"sort"
)

// boundsAt computes the integer bounds on variable j implied by the
// constraints of chain (a polyhedron over variables 0..j) once the prefix
// values v[0..j-1] are substituted. It returns lo, hi (using noLo/noHi
// sentinels for unbounded sides) and feasible=false when a constraint is
// already violated.
const (
	noLo = math.MinInt64 / 4
	noHi = math.MaxInt64 / 4
)

func boundsAt(chain *Poly, j int, v []int64) (lo, hi int64, feasible bool) {
	lo, hi = noLo, noHi
	for _, c := range chain.Cons {
		a := c.Coef[j]
		rest := c.K
		for q := 0; q < j; q++ {
			rest += c.Coef[q] * v[q]
		}
		if c.Eq {
			if a == 0 {
				if rest != 0 {
					return 0, 0, false
				}
				continue
			}
			// a*x + rest == 0 -> x = -rest/a, must divide.
			if rest%a != 0 {
				return 0, 0, false
			}
			val := -rest / a
			if val > lo {
				lo = val
			}
			if val < hi {
				hi = val
			}
			continue
		}
		switch {
		case a == 0:
			if rest < 0 {
				return 0, 0, false
			}
		case a > 0:
			// x >= ceil(-rest/a)
			b := ceilDiv(-rest, a)
			if b > lo {
				lo = b
			}
		default:
			// a<0: x <= floor(rest/(-a))
			b := floorDiv(rest, -a)
			if b < hi {
				hi = b
			}
		}
	}
	if lo > hi {
		return lo, hi, false
	}
	return lo, hi, true
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}

// eliminationChain returns chain[j] = p with variables j..Dim-1 projected
// out, so chain[j] constrains variables 0..j-1 (chain[Dim] == p itself).
func (p *Poly) eliminationChain() []*Poly {
	chain := make([]*Poly, p.Dim+1)
	chain[p.Dim] = p
	cur := p.Clone()
	for j := p.Dim - 1; j >= 0; j-- {
		cur, _ = cur.EliminateVar(j)
		chain[j] = cur
	}
	_ = chain[0]
	return chain
}

// SampleInt searches for an integer point of p, preferring coordinates of
// small magnitude. Unbounded coordinate directions are searched within
// [-radius, +radius] (so a "not found" answer on an unbounded polyhedron is
// relative to the radius; every coefficient space searched by the optimizer
// admits small solutions when feasible). It returns the point and whether
// one was found.
func (p *Poly) SampleInt(radius int64) ([]int64, bool) {
	q := p.Clone()
	if !q.Simplify() {
		return nil, false
	}
	if q.Dim == 0 {
		if q.hasPoints() {
			return []int64{}, true
		}
		return nil, false
	}
	chain := q.eliminationChain()
	v := make([]int64, q.Dim)
	if sampleDFS(q, chain, 0, v, radius) {
		return v, true
	}
	return nil, false
}

func sampleDFS(p *Poly, chain []*Poly, j int, v []int64, radius int64) bool {
	if j == p.Dim {
		return p.Contains(v)
	}
	lo, hi, ok := boundsAt(chain[j+1], j, v[:j])
	if !ok {
		return false
	}
	for _, cand := range candidateValues(lo, hi, radius) {
		v[j] = cand
		if sampleDFS(p, chain, j+1, v, radius) {
			return true
		}
	}
	return false
}

// candidateValues lists integers of [lo,hi] (clamped by radius on unbounded
// sides) in order of increasing magnitude, preferring non-negative on ties.
func candidateValues(lo, hi, radius int64) []int64 {
	if lo == noLo && hi == noHi {
		lo, hi = -radius, radius
	} else if lo == noLo {
		lo = hi - 2*radius
		if lo > -radius {
			lo = -radius
		}
	} else if hi == noHi {
		hi = lo + 2*radius
		if hi < radius {
			hi = radius
		}
	}
	if lo > hi {
		return nil
	}
	n := hi - lo + 1
	const maxCands = 4096
	if n > maxCands {
		n = maxCands
		// Keep the window closest to zero.
		switch {
		case lo > 0: // all positive: take the low end
			hi = lo + n - 1
		case hi < 0: // all negative: take the high end
			lo = hi - n + 1
		default:
			half := n / 2
			lo2, hi2 := -half, half
			if lo2 < lo {
				lo2 = lo
			}
			if hi2 > hi {
				hi2 = hi
			}
			lo, hi = lo2, hi2
		}
	}
	out := make([]int64, 0, hi-lo+1)
	for x := lo; x <= hi; x++ {
		out = append(out, x)
	}
	sort.Slice(out, func(a, b int) bool {
		av, bv := abs64(out[a]), abs64(out[b])
		if av != bv {
			return av < bv
		}
		return out[a] > out[b] // prefer +x before -x
	})
	return out
}

// Enumerate returns every integer point of p, up to limit points. It returns
// an error if some variable is unbounded or the limit is exceeded; iteration
// domains at the block level are small, so enumeration is exact and cheap
// for costing and execution (DESIGN.md substitution S3).
func (p *Poly) Enumerate(limit int) ([][]int64, error) {
	q := p.Clone()
	if !q.Simplify() {
		return nil, nil
	}
	if q.Dim == 0 {
		if q.hasPoints() {
			return [][]int64{{}}, nil
		}
		return nil, nil
	}
	chain := q.eliminationChain()
	var out [][]int64
	v := make([]int64, q.Dim)
	var rec func(j int) error
	rec = func(j int) error {
		if j == q.Dim {
			if q.Contains(v) {
				if len(out) >= limit {
					return fmt.Errorf("polyhedra: enumeration exceeds limit %d", limit)
				}
				pt := make([]int64, len(v))
				copy(pt, v)
				out = append(out, pt)
			}
			return nil
		}
		lo, hi, ok := boundsAt(chain[j+1], j, v[:j])
		if !ok {
			return nil
		}
		if lo == noLo || hi == noHi {
			return fmt.Errorf("polyhedra: variable %s unbounded during enumeration", q.name(j))
		}
		for x := lo; x <= hi; x++ {
			v[j] = x
			if err := rec(j + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

// Count returns the exact number of integer points (via Enumerate).
func (p *Poly) Count(limit int) (int, error) {
	pts, err := p.Enumerate(limit)
	if err != nil {
		return 0, err
	}
	return len(pts), nil
}
