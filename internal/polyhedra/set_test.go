package polyhedra

import (
	"math/rand"
	"testing"
)

func interval(lo, hi int64) *Poly {
	return box(1, lo, hi)
}

func TestSetUnionEnumerate(t *testing.T) {
	s := NewSet(1)
	s.AddPiece(interval(0, 2))
	s.AddPiece(interval(5, 6))
	pts, err := s.Enumerate(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("want 5 points got %d", len(pts))
	}
}

func TestSetEnumerateDedup(t *testing.T) {
	s := NewSet(1)
	s.AddPiece(interval(0, 3))
	s.AddPiece(interval(2, 5)) // overlap 2,3
	pts, err := s.Enumerate(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("union 0..5 should have 6 points, got %d", len(pts))
	}
}

func TestSetAddPieceDropsEmpty(t *testing.T) {
	s := NewSet(1)
	s.AddPiece(interval(5, 3))
	if len(s.Ps) != 0 {
		t.Fatal("empty piece should be dropped")
	}
	if !s.IsEmpty() {
		t.Fatal("set should be empty")
	}
}

func TestSubtractPolyInterval(t *testing.T) {
	// [0,9] minus [3,5] = [0,2] ∪ [6,9].
	s := FromPoly(interval(0, 9))
	d := s.SubtractPoly(interval(3, 5))
	pts, err := d.Enumerate(100)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]bool{0: true, 1: true, 2: true, 6: true, 7: true, 8: true, 9: true}
	if len(pts) != len(want) {
		t.Fatalf("got %d points want %d: %v", len(pts), len(want), pts)
	}
	for _, pt := range pts {
		if !want[pt[0]] {
			t.Fatalf("unexpected point %v", pt)
		}
	}
}

func TestSubtractEquality(t *testing.T) {
	// [0,4] minus {x == 2}.
	eq := NewPoly(1)
	eq.AddEq([]int64{1}, -2)
	d := FromPoly(interval(0, 4)).SubtractPoly(eq)
	pts, _ := d.Enumerate(100)
	if len(pts) != 4 {
		t.Fatalf("want 4 points got %d: %v", len(pts), pts)
	}
	for _, pt := range pts {
		if pt[0] == 2 {
			t.Fatal("x=2 should have been removed")
		}
	}
}

func TestSubtractDisjointPieces(t *testing.T) {
	// Result pieces of subtraction must be disjoint (chain decomposition).
	s := FromPoly(box(2, 0, 5))
	hole := box(2, 2, 3)
	d := s.SubtractPoly(hole)
	seen := make(map[string]int)
	for _, p := range d.Ps {
		pts, err := p.Enumerate(1000)
		if err != nil {
			t.Fatal(err)
		}
		for _, pt := range pts {
			seen[ptKey(pt)]++
		}
	}
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("point %s appears in %d pieces (should be disjoint)", k, n)
		}
	}
	// 36 - 4 = 32 points.
	if len(seen) != 32 {
		t.Fatalf("want 32 surviving points got %d", len(seen))
	}
}

func TestIntersectSet(t *testing.T) {
	a := NewSet(1)
	a.AddPiece(interval(0, 4))
	a.AddPiece(interval(8, 10))
	b := FromPoly(interval(3, 9))
	c := IntersectSet(a, b)
	pts, _ := c.Enumerate(100)
	want := map[int64]bool{3: true, 4: true, 8: true, 9: true}
	if len(pts) != len(want) {
		t.Fatalf("got %v", pts)
	}
}

func TestSetContains(t *testing.T) {
	s := NewSet(1)
	s.AddPiece(interval(0, 1))
	s.AddPiece(interval(5, 5))
	if !s.Contains([]int64{5}) || s.Contains([]int64{3}) {
		t.Fatal("Set.Contains wrong")
	}
}

func TestSetProjectOnto(t *testing.T) {
	// {(x,y) : y=x, 0<=x<=2} ∪ {(x,y) : y=x+10, 4<=x<=5} onto x.
	p1 := NewPoly(2)
	p1.AddEq([]int64{1, -1}, 0)
	p1.AddRange(0, 0, 2)
	p2 := NewPoly(2)
	p2.AddEq([]int64{1, -1}, -10)
	p2.AddRange(0, 4, 5)
	s := NewSet(2)
	s.AddPiece(p1)
	s.AddPiece(p2)
	proj, exact := s.ProjectOnto([]int{0})
	if !exact {
		t.Fatal("projection should be exact")
	}
	pts, _ := proj.Enumerate(100)
	if len(pts) != 5 {
		t.Fatalf("want 5 points got %v", pts)
	}
}

func TestSetBindVar(t *testing.T) {
	p := NewPoly(2)
	p.AddEq([]int64{1, -1}, 0)
	p.AddRange(0, 0, 5)
	s := FromPoly(p)
	b := s.BindVar(0, 3)
	pts, _ := b.Enumerate(100)
	if len(pts) != 1 || pts[0][0] != 3 {
		t.Fatalf("BindVar wrong: %v", pts)
	}
}

// Property: A \ B ∪ (A ∩ B) == A on integer points, and (A\B) ∩ B == ∅.
func TestSubtractPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 80; iter++ {
		a := box(2, 0, 4)
		b := box(2, int64(rng.Intn(4)), int64(rng.Intn(5)+1))
		coef := []int64{int64(rng.Intn(3) - 1), int64(rng.Intn(3) - 1)}
		b.AddIneq(coef, int64(rng.Intn(4)-1))
		diff := FromPoly(a).SubtractPoly(b)
		aPts, err := a.Enumerate(10000)
		if err != nil {
			t.Fatal(err)
		}
		for _, pt := range aPts {
			inB := b.Contains(pt)
			inDiff := diff.Contains(pt)
			if inB && inDiff {
				t.Fatalf("point %v in both B and A\\B", pt)
			}
			if !inB && !inDiff {
				t.Fatalf("point %v lost from A\\B", pt)
			}
		}
	}
}

func TestSetString(t *testing.T) {
	s := NewSet(1)
	if s.String() != "{}" {
		t.Fatal("empty set string")
	}
	s.AddPiece(interval(0, 1))
	if s.String() == "{}" {
		t.Fatal("non-empty set should render")
	}
}
