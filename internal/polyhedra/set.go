package polyhedra

import (
	"fmt"
	"strings"

	"riotshare/internal/linalg"
)

// Set is a finite union of basic polyhedra over the same space. Extent
// polyhedra of co-accesses are naturally unions (the lexicographic order
// constraint Θx ≺ Θ'x' is a disjunction over depths, Definition 1), so every
// relation the analyzer manipulates is a Set.
type Set struct {
	Dim   int
	Names []string
	Ps    []*Poly
}

// NewSet returns an empty set (no pieces) over dim variables.
func NewSet(dim int, names ...string) *Set {
	if len(names) != 0 && len(names) != dim {
		panic("polyhedra: set names length mismatch")
	}
	return &Set{Dim: dim, Names: append([]string(nil), names...)}
}

// FromPoly wraps a single basic polyhedron as a set.
func FromPoly(p *Poly) *Set {
	return &Set{Dim: p.Dim, Names: p.Names, Ps: []*Poly{p}}
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	t := NewSet(s.Dim, s.Names...)
	for _, p := range s.Ps {
		t.Ps = append(t.Ps, p.Clone())
	}
	return t
}

// AddPiece appends a basic polyhedron to the union, dropping it if trivially
// empty.
func (s *Set) AddPiece(p *Poly) *Set {
	if p.Dim != s.Dim {
		panic("polyhedra: AddPiece dimension mismatch")
	}
	q := p.Clone()
	if q.Simplify() && !q.IsEmptyRational() {
		s.Ps = append(s.Ps, q)
	}
	return s
}

// Union returns the union of two sets over the same space.
func Union(a, b *Set) *Set {
	if a.Dim != b.Dim {
		panic("polyhedra: Union dimension mismatch")
	}
	out := a.Clone()
	for _, p := range b.Ps {
		out.AddPiece(p)
	}
	return out
}

// IntersectSet intersects two sets (cross product of pieces). Pieces that
// simplify to an obvious contradiction are dropped; a full emptiness check
// is deliberately not run here (hot path — callers that need definite
// emptiness use IsEmpty or sampling).
func IntersectSet(a, b *Set) *Set {
	if a.Dim != b.Dim {
		panic("polyhedra: IntersectSet dimension mismatch")
	}
	out := NewSet(a.Dim, a.Names...)
	for _, p := range a.Ps {
		for _, q := range b.Ps {
			r := Intersect(p, q)
			if r.Simplify() {
				out.Ps = append(out.Ps, r)
			}
		}
	}
	return out
}

// IntersectPoly intersects every piece with a basic polyhedron (cheap
// simplification only; see IntersectSet).
func (s *Set) IntersectPoly(p *Poly) *Set {
	out := NewSet(s.Dim, s.Names...)
	for _, q := range s.Ps {
		r := Intersect(q, p)
		if r.Simplify() {
			out.Ps = append(out.Ps, r)
		}
	}
	return out
}

// IsEmpty reports whether every piece is rationally empty.
func (s *Set) IsEmpty() bool {
	for _, p := range s.Ps {
		if !p.IsEmptyRational() {
			return false
		}
	}
	return true
}

// IsEmptyInt reports whether the set has no integer points (sampling-based;
// see Poly.IsEmptyInt).
func (s *Set) IsEmptyInt(radius int64) bool {
	for _, p := range s.Ps {
		if !p.IsEmptyInt(radius) {
			return false
		}
	}
	return true
}

// Contains reports whether some piece contains the point.
func (s *Set) Contains(pt []int64) bool {
	for _, p := range s.Ps {
		if p.Contains(pt) {
			return true
		}
	}
	return false
}

// SubtractPoly returns s minus the integer points of b, as a new set. The
// standard chain decomposition keeps the result disjoint and exact on
// integer points: negating an inequality e >= 0 yields -e-1 >= 0, and an
// equality splits into e-1 >= 0 and -e-1 >= 0.
func (s *Set) SubtractPoly(b *Poly) *Set {
	if s.Dim != b.Dim {
		panic("polyhedra: SubtractPoly dimension mismatch")
	}
	out := NewSet(s.Dim, s.Names...)
	for _, piece := range s.Ps {
		cur := piece.Clone()
		for _, c := range b.Cons {
			if c.Eq {
				p1 := cur.Clone().AddIneq(c.Coef, c.K-1)                       // e - 1 >= 0, i.e. e >= 1
				p2 := cur.Clone().AddIneq(linalg.ScaleVec(-1, c.Coef), -c.K-1) // -e - 1 >= 0, i.e. e <= -1
				out.AddPiece(p1)
				out.AddPiece(p2)
				cur.AddEq(c.Coef, c.K)
			} else {
				p1 := cur.Clone().AddIneq(linalg.ScaleVec(-1, c.Coef), -c.K-1) // violates c
				out.AddPiece(p1)
				cur.AddIneq(c.Coef, c.K)
			}
			if !cur.Simplify() {
				break
			}
		}
	}
	return out
}

// Subtract returns s minus every piece of b.
func (s *Set) Subtract(b *Set) *Set {
	if s.Dim != b.Dim {
		panic("polyhedra: Subtract dimension mismatch")
	}
	out := s.Clone()
	for _, p := range b.Ps {
		out = out.SubtractPoly(p)
	}
	return out
}

// ProjectOnto projects every piece onto the kept columns; exact reports
// whether all eliminations were integer-exact.
func (s *Set) ProjectOnto(keep []int) (*Set, bool) {
	var names []string
	if len(s.Names) == s.Dim {
		for _, k := range keep {
			names = append(names, s.Names[k])
		}
	}
	out := NewSet(len(keep), names...)
	exact := true
	for _, p := range s.Ps {
		q, e := p.ProjectOnto(keep)
		exact = exact && e
		out.AddPiece(q)
	}
	return out, exact
}

// Enumerate returns the integer points of the union, deduplicated, up to
// limit per piece.
func (s *Set) Enumerate(limit int) ([][]int64, error) {
	seen := make(map[string]bool)
	var out [][]int64
	for _, p := range s.Ps {
		pts, err := p.Enumerate(limit)
		if err != nil {
			return nil, err
		}
		for _, pt := range pts {
			k := ptKey(pt)
			if !seen[k] {
				seen[k] = true
				out = append(out, pt)
			}
		}
	}
	return out, nil
}

func ptKey(pt []int64) string {
	var sb strings.Builder
	for _, x := range pt {
		fmt.Fprintf(&sb, "%d,", x)
	}
	return sb.String()
}

// SampleInt finds an integer point in any piece.
func (s *Set) SampleInt(radius int64) ([]int64, bool) {
	for _, p := range s.Ps {
		if pt, ok := p.SampleInt(radius); ok {
			return pt, true
		}
	}
	return nil, false
}

// BindVar substitutes a value for variable i in every piece.
func (s *Set) BindVar(i int, v int64) *Set {
	var names []string
	if len(s.Names) == s.Dim {
		names = append(append([]string(nil), s.Names[:i]...), s.Names[i+1:]...)
	}
	out := NewSet(s.Dim-1, names...)
	for _, p := range s.Ps {
		out.AddPiece(p.BindVar(i, v))
	}
	return out
}

// String renders the union.
func (s *Set) String() string {
	if len(s.Ps) == 0 {
		return "{}"
	}
	parts := make([]string, len(s.Ps))
	for i, p := range s.Ps {
		parts[i] = p.String()
	}
	return strings.Join(parts, " or ")
}
