package polyhedra

import (
	"math/rand"
	"testing"
)

// randPoly builds a random bounded polyhedron with small coefficients.
func randPoly(rng *rand.Rand, dim int) *Poly {
	p := box(dim, 0, int64(2+rng.Intn(4)))
	extra := rng.Intn(3)
	for e := 0; e < extra; e++ {
		coef := make([]int64, dim)
		for i := range coef {
			coef[i] = int64(rng.Intn(5) - 2)
		}
		k := int64(rng.Intn(7) - 3)
		if rng.Intn(4) == 0 {
			p.AddEq(coef, k)
		} else {
			p.AddIneq(coef, k)
		}
	}
	return p
}

// Property: SampleInt succeeds exactly when Enumerate finds points, and the
// sample is one of them.
func TestSampleEnumerateConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 300; iter++ {
		dim := 1 + rng.Intn(3)
		p := randPoly(rng, dim)
		pts, err := p.Enumerate(100000)
		if err != nil {
			t.Fatal(err)
		}
		sample, ok := p.SampleInt(8)
		if ok != (len(pts) > 0) {
			t.Fatalf("sample ok=%v but %d points exist in %s", ok, len(pts), p)
		}
		if ok && !p.Contains(sample) {
			t.Fatalf("sample %v not in polyhedron %s", sample, p)
		}
	}
}

// Property: intersection of two random polyhedra contains exactly the
// points in both.
func TestIntersectionSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 150; iter++ {
		dim := 1 + rng.Intn(2)
		a := randPoly(rng, dim)
		b := randPoly(rng, dim)
		c := Intersect(a, b)
		pts, err := box(dim, -1, 7).Enumerate(100000)
		if err != nil {
			t.Fatal(err)
		}
		for _, pt := range pts {
			want := a.Contains(pt) && b.Contains(pt)
			if got := c.Contains(pt); got != want {
				t.Fatalf("intersection wrong at %v: got %v want %v", pt, got, want)
			}
		}
	}
}

// Property: Simplify never changes the integer point set.
func TestSimplifyPreservesPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 200; iter++ {
		dim := 1 + rng.Intn(3)
		p := randPoly(rng, dim)
		q := p.Clone()
		feasible := q.Simplify()
		grid, err := box(dim, -1, 7).Enumerate(100000)
		if err != nil {
			t.Fatal(err)
		}
		any := false
		for _, pt := range grid {
			want := p.Contains(pt)
			any = any || want
			if got := q.Contains(pt); got != want {
				t.Fatalf("Simplify changed membership at %v:\nbefore %s\nafter %s", pt, p, q)
			}
		}
		if !feasible && any {
			t.Fatalf("Simplify declared empty but points exist: %s", p)
		}
	}
}

// Property: projection contains exactly the shadows of integer points for
// unit-coefficient systems (exact case), and at least the shadows otherwise
// (sound over-approximation).
func TestProjectionSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 150; iter++ {
		p := randPoly(rng, 3)
		proj, exact := p.EliminateVar(2)
		pts, err := p.Enumerate(100000)
		if err != nil {
			t.Fatal(err)
		}
		shadow := map[[2]int64]bool{}
		for _, pt := range pts {
			shadow[[2]int64{pt[0], pt[1]}] = true
			if !proj.Contains(pt[:2]) {
				t.Fatalf("projection lost point %v of %s", pt, p)
			}
		}
		if !exact {
			continue
		}
		// Exact: every projected integer point must have a preimage.
		ppts, err := proj.Enumerate(100000)
		if err != nil {
			continue // unbounded projection; skip
		}
		for _, q := range ppts {
			if !shadow[[2]int64{q[0], q[1]}] {
				t.Fatalf("exact projection invented point %v for %s", q, p)
			}
		}
	}
}

// Property: subtraction then union restores the original point set.
func TestSubtractUnionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 100; iter++ {
		a := randPoly(rng, 2)
		b := randPoly(rng, 2)
		diff := FromPoly(a).SubtractPoly(b)
		both := IntersectSet(FromPoly(a), FromPoly(b))
		grid, err := box(2, -1, 7).Enumerate(100000)
		if err != nil {
			t.Fatal(err)
		}
		for _, pt := range grid {
			inA := a.Contains(pt)
			got := diff.Contains(pt) || both.Contains(pt)
			if got != inA {
				t.Fatalf("A != (A\\B) ∪ (A∩B) at %v", pt)
			}
		}
	}
}
