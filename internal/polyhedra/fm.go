package polyhedra

import (
	"riotshare/internal/linalg"
)

// EliminateVar projects out variable i by Fourier-Motzkin elimination,
// returning a polyhedron of dimension Dim-1 (column i removed). The boolean
// result reports whether the projection is exact on integer points: it is
// exact when the variable is eliminated through an equality with a ±1
// coefficient, or when every inequality pair combined has a ±1 coefficient
// on the eliminated variable (the standard Omega-test exactness condition).
// All access functions and schedules in this system have ±1 coefficients, so
// eliminations are exact in practice; callers that must be exact check the
// flag.
func (p *Poly) EliminateVar(i int) (*Poly, bool) {
	exact := true
	// Prefer substitution through an equality containing variable i.
	bestEq := -1
	for j, c := range p.Cons {
		if c.Eq && c.Coef[i] != 0 {
			if bestEq < 0 || abs64(c.Coef[i]) < abs64(p.Cons[bestEq].Coef[i]) {
				bestEq = j
			}
		}
	}
	q := &Poly{Dim: p.Dim - 1, Rational: p.Rational}
	if len(p.Names) == p.Dim {
		q.Names = append(append([]string(nil), p.Names[:i]...), p.Names[i+1:]...)
	}
	if bestEq >= 0 {
		e := p.Cons[bestEq]
		if abs64(e.Coef[i]) != 1 {
			exact = false
		}
		for j, c := range p.Cons {
			if j == bestEq {
				continue
			}
			if c.Coef[i] == 0 {
				q.Cons = append(q.Cons, dropCol(c, i))
				continue
			}
			// Cancel variable i: h = e_i*c - c_i*e. On points of the
			// polyhedron e == 0, so h = e_i*c; flip if e_i < 0 to preserve the
			// inequality direction.
			h := combine(e.Coef[i], c, -c.Coef[i], e)
			if e.Coef[i] < 0 && !c.Eq {
				h = Constraint{Coef: linalg.ScaleVec(-1, h.Coef), K: -h.K, Eq: h.Eq}
			}
			q.Cons = append(q.Cons, dropCol(h, i))
		}
		q.Simplify()
		return q, exact
	}
	// Pure inequality elimination.
	var lowers, uppers, free []Constraint
	for _, c := range p.Cons {
		switch {
		case c.Coef[i] > 0:
			lowers = append(lowers, c) // c_i * x_i >= -(rest)
		case c.Coef[i] < 0:
			uppers = append(uppers, c)
		default:
			free = append(free, c)
		}
	}
	for _, c := range free {
		q.Cons = append(q.Cons, dropCol(c, i))
	}
	for _, lo := range lowers {
		for _, up := range uppers {
			if lo.Coef[i] != 1 && -up.Coef[i] != 1 {
				exact = false
			}
			// h = (-up_i)*lo + lo_i*up has zero coefficient on i and is a
			// nonnegative combination of nonnegative expressions.
			h := combine(-up.Coef[i], lo, lo.Coef[i], up)
			q.Cons = append(q.Cons, dropCol(h, i))
		}
	}
	q.Simplify()
	return q, exact
}

// combine returns a*c1 + b*c2 as a constraint; the result is an equality only
// if both inputs are equalities.
func combine(a int64, c1 Constraint, b int64, c2 Constraint) Constraint {
	coef := make([]int64, len(c1.Coef))
	for k := range coef {
		coef[k] = a*c1.Coef[k] + b*c2.Coef[k]
	}
	return Constraint{Coef: coef, K: a*c1.K + b*c2.K, Eq: c1.Eq && c2.Eq}
}

func dropCol(c Constraint, i int) Constraint {
	coef := append(append([]int64(nil), c.Coef[:i]...), c.Coef[i+1:]...)
	return Constraint{Coef: coef, K: c.K, Eq: c.Eq}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// ProjectOnto eliminates every variable except those in keep (given as a set
// of column indices), returning the projection over the kept columns in
// their original order and whether it was exact.
func (p *Poly) ProjectOnto(keep []int) (*Poly, bool) {
	keepSet := make(map[int]bool, len(keep))
	for _, k := range keep {
		keepSet[k] = true
	}
	q := p.Clone()
	exact := true
	// Eliminate from the highest index down so indices stay stable.
	for i := p.Dim - 1; i >= 0; i-- {
		if keepSet[i] {
			continue
		}
		var e bool
		q, e = q.EliminateVar(i)
		exact = exact && e
		if !q.hasPoints() {
			// Definitely empty: return an empty polyhedron of the target
			// dimension.
			empty := NewPoly(len(keep))
			empty.Rational = p.Rational
			empty.Cons = append(empty.Cons, falseCon(len(keep)))
			return empty, exact
		}
	}
	return q, exact
}

// ProjectOutRange eliminates count consecutive variables starting at column
// start.
func (p *Poly) ProjectOutRange(start, count int) (*Poly, bool) {
	q := p.Clone()
	exact := true
	for i := start + count - 1; i >= start; i-- {
		var e bool
		q, e = q.EliminateVar(i)
		exact = exact && e
	}
	return q, exact
}

// hasPoints is a quick check: false means the constraint list already
// contains an unsatisfiable constant constraint.
func (p *Poly) hasPoints() bool {
	for _, c := range p.Cons {
		if linalg.IsZeroVec(c.Coef) {
			if c.Eq && c.K != 0 {
				return false
			}
			if !c.Eq && c.K < 0 {
				return false
			}
		}
	}
	return true
}

// IsEmptyRational reports whether the polyhedron has no rational points,
// established by full Fourier-Motzkin elimination. A rational-empty
// polyhedron has no integer points either; the converse may not hold (use
// SampleInt for integer-exact checks — for the affine systems in this
// project the two coincide). Variables are eliminated in a greedy order
// that prefers equality substitutions and minimizes the inequality-pair
// product, which keeps the optimizer's large coefficient spaces tractable.
func (p *Poly) IsEmptyRational() bool {
	q := p.Clone()
	if !q.Simplify() {
		return true
	}
	for q.Dim > 0 {
		q, _ = q.EliminateVar(q.cheapestVar())
		if !q.hasPoints() {
			return true
		}
	}
	return !q.hasPoints()
}

// cheapestVar picks the elimination variable: any variable appearing in an
// equality is free to substitute away; otherwise the one whose
// positive/negative inequality pair product is smallest.
func (p *Poly) cheapestVar() int {
	best, bestCost := p.Dim-1, int64(1)<<62
	for i := 0; i < p.Dim; i++ {
		var pos, neg int64
		inEq := false
		for _, c := range p.Cons {
			if c.Coef[i] == 0 {
				continue
			}
			if c.Eq {
				inEq = true
				break
			}
			if c.Coef[i] > 0 {
				pos++
			} else {
				neg++
			}
		}
		if inEq {
			return i
		}
		cost := pos * neg
		if cost < bestCost {
			best, bestCost = i, cost
		}
	}
	return best
}

// IsEmptyInt reports whether the polyhedron has no integer points: it first
// runs the rational test, and if rationally non-empty, attempts to sample an
// integer point with the given search radius for unbounded directions.
func (p *Poly) IsEmptyInt(radius int64) bool {
	if p.IsEmptyRational() {
		return true
	}
	_, ok := p.SampleInt(radius)
	return !ok
}

// ImpliedEqualities returns the affine hull of p as a list of equality
// constraints: the explicit equalities plus every inequality whose strict
// version is infeasible (e >= 0 with p ∩ {e >= 1} empty implies e == 0 on p).
func (p *Poly) ImpliedEqualities() []Constraint {
	var eqs []Constraint
	for _, c := range p.Cons {
		if c.Eq {
			eqs = append(eqs, c.Clone())
			continue
		}
		strict := p.Clone()
		strict.AddIneq(linalg.ScaleVec(1, c.Coef), c.K-1) // e - 1 >= 0
		if strict.IsEmptyRational() {
			eqs = append(eqs, Constraint{Coef: linalg.CloneVec(c.Coef), K: c.K, Eq: true})
		}
	}
	return eqs
}

// AffineHullRank returns the dimension of the affine hull of p restricted to
// the given columns: len(cols) minus the rank of the implied-equality system
// over those columns after eliminating all other columns' influence. It
// measures the "degrees of freedom" of the listed variables within p, the
// quantity Remark A.1 calls rank.
func (p *Poly) AffineHullRank(cols []int) int {
	proj, _ := p.ProjectOnto(cols)
	eqs := proj.ImpliedEqualities()
	rows := make([][]int64, 0, len(eqs))
	for _, e := range eqs {
		rows = append(rows, e.Coef)
	}
	return proj.Dim - linalg.Rank(rows)
}
