// Package polyhedra implements the integer-polyhedra layer RIOTShare builds
// on: basic polyhedra (conjunctions of affine equalities and inequalities
// over integer points), unions of basic polyhedra ("sets"), and the
// operations the optimizer needs — intersection, Fourier-Motzkin projection,
// exact integer subtraction, emptiness testing, integer-point sampling and
// enumeration. It replaces the isl library [Verdoolaege 2010] used by the
// paper.
//
// A constraint is stored as a coefficient vector over the space's variables
// plus a constant; an inequality constraint means expr >= 0 and an equality
// constraint means expr == 0, following the paper's matrix notation in §4.1.
package polyhedra

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"riotshare/internal/linalg"
)

// Constraint is a single affine constraint over a polyhedron's variables:
// Coef·x + K >= 0 (Eq=false) or Coef·x + K == 0 (Eq=true).
type Constraint struct {
	Coef []int64
	K    int64
	Eq   bool
}

// Clone returns a deep copy of the constraint.
func (c Constraint) Clone() Constraint {
	return Constraint{Coef: linalg.CloneVec(c.Coef), K: c.K, Eq: c.Eq}
}

// Eval evaluates the constraint's affine expression at the given point.
func (c Constraint) Eval(pt []int64) int64 {
	return linalg.Dot(c.Coef, pt) + c.K
}

// Holds reports whether the point satisfies the constraint.
func (c Constraint) Holds(pt []int64) bool {
	v := c.Eval(pt)
	if c.Eq {
		return v == 0
	}
	return v >= 0
}

// Poly is a basic polyhedron: the integer points of a conjunction of affine
// constraints over Dim variables. Names is optional debugging metadata with
// len == Dim when present.
//
// Rational marks a polyhedron whose points range over the rationals rather
// than the integers (e.g. Farkas multiplier spaces, Lemma 1): Simplify then
// skips integer-only reasoning (constant tightening and the GCD test), and
// elimination computes the exact rational shadow.
type Poly struct {
	Dim      int
	Names    []string
	Cons     []Constraint
	Rational bool
}

// NewPoly returns an unconstrained polyhedron (all of Z^dim).
func NewPoly(dim int, names ...string) *Poly {
	if len(names) != 0 && len(names) != dim {
		panic("polyhedra: names length mismatch")
	}
	return &Poly{Dim: dim, Names: append([]string(nil), names...)}
}

// Clone returns a deep copy.
func (p *Poly) Clone() *Poly {
	q := &Poly{Dim: p.Dim, Names: p.Names, Rational: p.Rational}
	q.Cons = make([]Constraint, len(p.Cons))
	for i, c := range p.Cons {
		q.Cons[i] = c.Clone()
	}
	return q
}

// Add appends a constraint (which must have len(Coef) == Dim).
func (p *Poly) Add(c Constraint) *Poly {
	if len(c.Coef) != p.Dim {
		panic(fmt.Sprintf("polyhedra: constraint dim %d != poly dim %d", len(c.Coef), p.Dim))
	}
	p.Cons = append(p.Cons, c)
	return p
}

// AddIneq adds coef·x + k >= 0.
func (p *Poly) AddIneq(coef []int64, k int64) *Poly {
	return p.Add(Constraint{Coef: linalg.CloneVec(coef), K: k})
}

// AddEq adds coef·x + k == 0.
func (p *Poly) AddEq(coef []int64, k int64) *Poly {
	return p.Add(Constraint{Coef: linalg.CloneVec(coef), K: k, Eq: true})
}

// AddRange adds lo <= x[i] <= hi.
func (p *Poly) AddRange(i int, lo, hi int64) *Poly {
	c1 := make([]int64, p.Dim)
	c1[i] = 1
	p.AddIneq(c1, -lo) // x[i] - lo >= 0
	c2 := make([]int64, p.Dim)
	c2[i] = -1
	p.AddIneq(c2, hi) // hi - x[i] >= 0
	return p
}

// Contains reports whether the integer point satisfies every constraint.
func (p *Poly) Contains(pt []int64) bool {
	if len(pt) != p.Dim {
		panic("polyhedra: point dimension mismatch")
	}
	for _, c := range p.Cons {
		if !c.Holds(pt) {
			return false
		}
	}
	return true
}

// Intersect returns a new polyhedron with the constraints of both operands.
func Intersect(a, b *Poly) *Poly {
	if a.Dim != b.Dim {
		panic("polyhedra: Intersect dimension mismatch")
	}
	out := a.Clone()
	for _, c := range b.Cons {
		out.Cons = append(out.Cons, c.Clone())
	}
	return out
}

// Simplify normalizes constraints in place: gcd-reduces them (with integer
// tightening of inequality constants), drops trivially-true constraints,
// deduplicates, and detects simple infeasibility. It reports whether the
// polyhedron is still possibly non-empty (false means definitely empty).
func (p *Poly) Simplify() bool {
	out := p.Cons[:0]
	seen := make(map[string]int) // key -> index into out
	for _, c := range p.Cons {
		if linalg.IsZeroVec(c.Coef) {
			if c.Eq && c.K != 0 {
				p.Cons = nil
				p.Cons = append(p.Cons, falseCon(p.Dim))
				return false
			}
			if !c.Eq && c.K < 0 {
				p.Cons = nil
				p.Cons = append(p.Cons, falseCon(p.Dim))
				return false
			}
			continue // trivially true
		}
		g := linalg.GcdVec(c.Coef)
		if g > 1 && !p.Rational {
			if c.Eq {
				if c.K%g != 0 {
					// GCD test: no integer solutions.
					p.Cons = nil
					p.Cons = append(p.Cons, falseCon(p.Dim))
					return false
				}
				c = Constraint{Coef: divVec(c.Coef, g), K: c.K / g, Eq: true}
			} else {
				// coef·x >= -K  =>  (coef/g)·x >= ceil(-K/g), i.e. K' = floor(K/g).
				c = Constraint{Coef: divVec(c.Coef, g), K: floorDiv(c.K, g)}
			}
		} else if g > 1 && p.Rational && c.Eq && c.K%g == 0 {
			c = Constraint{Coef: divVec(c.Coef, g), K: c.K / g, Eq: true}
		}
		if c.Eq {
			// Canonical sign: first nonzero coefficient positive.
			for _, x := range c.Coef {
				if x != 0 {
					if x < 0 {
						c = Constraint{Coef: linalg.ScaleVec(-1, c.Coef), K: -c.K, Eq: true}
					}
					break
				}
			}
		}
		key := conKey(c)
		if j, ok := seen[key]; ok {
			// Same coefficient vector: keep the tighter constant.
			if c.Eq {
				if out[j].K != c.K {
					p.Cons = nil
					p.Cons = append(p.Cons, falseCon(p.Dim))
					return false
				}
			} else if c.K < out[j].K {
				out[j].K = c.K
			}
			continue
		}
		seen[key] = len(out)
		out = append(out, c)
	}
	p.Cons = out
	// Detect directly contradictory inequality pairs: e+k1>=0 and -e+k2>=0
	// with k1+k2 < 0; and inequality vs equality conflicts are left to the
	// emptiness test.
	for _, c := range p.Cons {
		if c.Eq {
			continue
		}
		neg := Constraint{Coef: linalg.ScaleVec(-1, c.Coef)}
		if j, ok := seen[conKey(neg)]; ok && !p.Cons[j].Eq {
			if c.K+p.Cons[j].K < 0 {
				p.Cons = nil
				p.Cons = append(p.Cons, falseCon(p.Dim))
				return false
			}
		}
	}
	return true
}

func falseCon(dim int) Constraint {
	return Constraint{Coef: make([]int64, dim), K: -1}
}

func divVec(v []int64, g int64) []int64 {
	out := make([]int64, len(v))
	for i, x := range v {
		out[i] = x / g
	}
	return out
}

// floorDiv returns floor(a/b) for b > 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func conKey(c Constraint) string {
	buf := make([]byte, 0, 1+len(c.Coef)*3)
	if c.Eq {
		buf = append(buf, '=')
	}
	for _, x := range c.Coef {
		buf = strconv.AppendInt(buf, x, 10)
		buf = append(buf, ',')
	}
	return string(buf)
}

// name returns a printable name for variable i.
func (p *Poly) name(i int) string {
	if len(p.Names) == p.Dim && p.Names[i] != "" {
		return p.Names[i]
	}
	return fmt.Sprintf("x%d", i)
}

// String renders the polyhedron as a conjunction of constraints.
func (p *Poly) String() string {
	if len(p.Cons) == 0 {
		return fmt.Sprintf("{Z^%d}", p.Dim)
	}
	parts := make([]string, 0, len(p.Cons))
	for _, c := range p.Cons {
		var terms []string
		for i, x := range c.Coef {
			switch {
			case x == 0:
			case x == 1:
				terms = append(terms, p.name(i))
			case x == -1:
				terms = append(terms, "-"+p.name(i))
			default:
				terms = append(terms, fmt.Sprintf("%d%s", x, p.name(i)))
			}
		}
		if c.K != 0 || len(terms) == 0 {
			terms = append(terms, fmt.Sprintf("%d", c.K))
		}
		expr := strings.Join(terms, "+")
		expr = strings.ReplaceAll(expr, "+-", "-")
		if c.Eq {
			parts = append(parts, expr+" = 0")
		} else {
			parts = append(parts, expr+" >= 0")
		}
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, " and ") + "}"
}

// BindVar substitutes x[i] = v and returns a polyhedron of dimension Dim-1
// (column i removed).
func (p *Poly) BindVar(i int, v int64) *Poly {
	q := &Poly{Dim: p.Dim - 1, Rational: p.Rational}
	if len(p.Names) == p.Dim {
		q.Names = append(append([]string(nil), p.Names[:i]...), p.Names[i+1:]...)
	}
	for _, c := range p.Cons {
		nc := Constraint{
			Coef: append(append([]int64(nil), c.Coef[:i]...), c.Coef[i+1:]...),
			K:    c.K + c.Coef[i]*v,
			Eq:   c.Eq,
		}
		q.Cons = append(q.Cons, nc)
	}
	return q
}

// InsertVars returns a polyhedron over dim+count variables where count fresh
// unconstrained variables are inserted starting at position at (existing
// columns shift right). Used to move constraints between related spaces.
func (p *Poly) InsertVars(at, count int, names ...string) *Poly {
	if len(names) != 0 && len(names) != count {
		panic("polyhedra: InsertVars names mismatch")
	}
	q := &Poly{Dim: p.Dim + count, Rational: p.Rational}
	if len(p.Names) == p.Dim {
		q.Names = make([]string, 0, q.Dim)
		q.Names = append(q.Names, p.Names[:at]...)
		if len(names) == count {
			q.Names = append(q.Names, names...)
		} else {
			for i := 0; i < count; i++ {
				q.Names = append(q.Names, fmt.Sprintf("t%d", i))
			}
		}
		q.Names = append(q.Names, p.Names[at:]...)
	}
	for _, c := range p.Cons {
		coef := make([]int64, q.Dim)
		copy(coef, c.Coef[:at])
		copy(coef[at+count:], c.Coef[at:])
		q.Cons = append(q.Cons, Constraint{Coef: coef, K: c.K, Eq: c.Eq})
	}
	return q
}

// Equalities returns the equality constraints (after Simplify semantics; the
// caller should Simplify first if canonical form matters).
func (p *Poly) Equalities() []Constraint {
	var out []Constraint
	for _, c := range p.Cons {
		if c.Eq {
			out = append(out, c)
		}
	}
	return out
}
