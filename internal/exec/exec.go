// Package exec physically executes lowered plans (timelines): it walks the
// scheduled statement instances in order, performs block I/O through the
// storage manager under the plan's per-access actions, keeps shared blocks
// buffered exactly for their hold intervals (the paper's "RIOTShare injects
// additional code to ensure that all array block accesses are fulfilled
// either by blocks already buffered in memory or by I/O", §5.5), runs the
// in-core kernels on real data, and accounts logical I/O volumes and peak
// memory. Execution validates the cost model: measured volumes must equal
// predicted volumes byte for byte.
package exec

import (
	"fmt"
	"time"

	"riotshare/internal/blas"
	"riotshare/internal/codegen"
	"riotshare/internal/disk"
	"riotshare/internal/prog"
	"riotshare/internal/storage"
)

// Result reports an execution.
type Result struct {
	// Logical I/O volumes (paper-scale accounting).
	ReadBytes, WriteBytes int64
	ReadReqs, WriteReqs   int64
	// SimulatedIOSec converts the volumes with the disk model.
	SimulatedIOSec float64
	// CPUTime is the wall time spent inside compute kernels.
	CPUTime time.Duration
	// PeakMemoryBytes is the maximum buffered logical working set.
	PeakMemoryBytes int64
	// StageTimes maps statement name → cumulative kernel wall time for
	// that pipeline stage (parallel runs sum across workers, so stage
	// times can exceed wall time). Nil until the first kernel runs.
	StageTimes map[string]time.Duration
	// PrefetchIssued counts prefetchable block reads the async
	// prefetcher issued ahead of use; PrefetchInline counts the ones a
	// consumer reached first and claimed inline (prefetch arrived too
	// late). Both are zero for sequential runs; PrefetchInline stays
	// zero in pool mode, where the pool coalesces the in-flight read.
	PrefetchIssued, PrefetchInline int64
}

// addStageTime accumulates one kernel's wall time under its stage name.
func (r *Result) addStageTime(stage string, d time.Duration) {
	if r.StageTimes == nil {
		r.StageTimes = make(map[string]time.Duration)
	}
	r.StageTimes[stage] += d
}

// Engine executes timelines against a storage backend (a single-directory
// manager or a sharded store — placement is invisible to execution).
type Engine struct {
	Store storage.Backend
	Model disk.Model
	// MemCapBytes, when nonzero, makes execution fail if the buffered
	// working set ever exceeds the cap (the optimizer must have chosen a
	// plan that fits, §4.2).
	MemCapBytes int64
	// Pool, when non-nil, routes every physical block read and write
	// through a sharing-aware buffer pool instead of raw storage, so
	// concurrent queries over one pool serve each other's blocks from
	// memory. Pool frames are pinned for the plan's hold intervals.
	// Logical I/O accounting (Result) is identical either way.
	Pool BlockPool
	// OnBlockWritten, when non-nil, is invoked once per written block
	// right after the block's final physical write completes — from that
	// moment its value is durable through Pool/Store and safe to read
	// while later pipeline stages still run (WAW and dataflow edges order
	// every earlier write before the final one). The multi-query server
	// uses it to begin streaming finished output blocks early. Calls may
	// come from worker goroutines; the callback must be cheap and safe
	// for concurrent use. Blocks whose last write never reaches disk
	// (transient, memory-only state) produce no call.
	OnBlockWritten func(array string, r, c int64)
}

// buffered is one memory-resident block.
type buffered struct {
	blk   *blas.Matrix
	bytes int64
}

// Run executes the timeline.
func (e *Engine) Run(tl *codegen.Timeline) (Result, error) {
	var res Result
	p := tl.Prog

	var finalize [][]blockRef
	if e.OnBlockWritten != nil {
		finalize = finalWrites(tl)
	}

	// Pool pins owned by this run: one per block acquired at each event,
	// reduced to a single hold-scoped pin while the block's hold interval
	// is active, released when it expires (and unconditionally on exit).
	pins := newPinSet(e.Pool)
	defer pins.releaseAll()

	// holdsUntil[blockKey] = latest event index through which the block must
	// stay buffered (merged over the plan's hold intervals), indexed as the
	// execution reaches each hold's start.
	type holdIv struct{ start, end int }
	holdsByStart := make(map[int][]codegen.Hold)
	for _, h := range tl.Holds {
		holdsByStart[h.StartEvent] = append(holdsByStart[h.StartEvent], h)
	}
	holdEnd := make(map[string]int) // active holds: block key -> max end event

	buf := make(map[string]buffered)
	bufBytes := int64(0)

	account := func(peakExtra int64) error {
		if bufBytes+peakExtra > res.PeakMemoryBytes {
			res.PeakMemoryBytes = bufBytes + peakExtra
		}
		if e.MemCapBytes > 0 && bufBytes+peakExtra > e.MemCapBytes {
			return fmt.Errorf("exec: memory cap exceeded: %d > %d bytes", bufBytes+peakExtra, e.MemCapBytes)
		}
		return nil
	}

	for i, ev := range tl.Events {
		st := ev.St
		actions := tl.Actions[i]
		// Activate holds starting here (they may refer to blocks acquired at
		// this very event).
		for _, h := range holdsByStart[i] {
			key := codegen.BlockKey(h.Array, h.R, h.C)
			if h.EndEvent > holdEnd[key] {
				holdEnd[key] = h.EndEvent
			}
		}

		// Acquire all input blocks plus the write target.
		local := make(map[string]*blas.Matrix) // blocks live for this event
		localBytes := int64(0)
		var kernelIn []*blas.Matrix // active read operands in access order
		var outBlk *blas.Matrix
		var writeAcc *prog.Access
		var writeAction codegen.AccessAction
		var accRead *blas.Matrix // accumulator read operand, nil when inactive

		for ai := range st.Accesses {
			ac := &st.Accesses[ai]
			action := actions[ai]
			if action == codegen.Inactive {
				if ac.Type == prog.Read && isAccumulatorRead(st, ai) {
					accRead = nil
				}
				continue
			}
			arr := p.Arrays[ac.Array]
			r, c := ac.BlockAt(ev.X, tl.Params)
			key := codegen.BlockKey(ac.Array, r, c)

			if ac.Type == prog.Read {
				blk, held := buf[key]
				var m *blas.Matrix
				switch {
				case action == codegen.FromMemory:
					if !held {
						if lm, ok := local[key]; ok {
							m = lm
						} else {
							return res, fmt.Errorf("exec: %s%v expects %s in memory but it is not buffered",
								st.Name, ev.X, key)
						}
					} else {
						m = blk.blk
					}
				case action == codegen.DoIO:
					var err error
					var pinned bool
					m, pinned, err = e.readThrough(ac.Array, r, c)
					if err != nil {
						return res, err
					}
					if pinned {
						pins.add(key, ac.Array, r, c)
					}
					res.ReadBytes += arr.LogicalBlockBytes
					res.ReadReqs++
				}
				if _, dup := local[key]; !dup {
					local[key] = m
					if !held {
						localBytes += arr.LogicalBlockBytes
					}
				}
				if isAccumulatorRead(st, ai) {
					accRead = m
				} else {
					kernelIn = append(kernelIn, m)
				}
				continue
			}
			// Write access: the output block materializes in memory.
			writeAcc = ac
			writeAction = action
			if b, held := buf[key]; held {
				outBlk = b.blk
			} else {
				outBlk = blas.NewMatrix(arr.BlockRows, arr.BlockCols)
				if _, dup := local[key]; !dup {
					localBytes += arr.LogicalBlockBytes
				}
			}
			local[key] = outBlk
		}
		if err := account(localBytes); err != nil {
			return res, err
		}

		// Run the kernel on real data.
		t0 := time.Now()
		if err := RunKernel(st, kernelIn, accRead, outBlk); err != nil {
			return res, fmt.Errorf("exec: %s%v: %w", st.Name, ev.X, err)
		}
		kd := time.Since(t0)
		res.CPUTime += kd
		res.addStageTime(st.Name, kd)

		// Write-back.
		if writeAcc != nil && writeAction == codegen.DoIO {
			arr := p.Arrays[writeAcc.Array]
			r, c := writeAcc.BlockAt(ev.X, tl.Params)
			pinned, err := e.writeThrough(writeAcc.Array, r, c, outBlk)
			if err != nil {
				return res, err
			}
			if pinned {
				pins.add(codegen.BlockKey(writeAcc.Array, r, c), writeAcc.Array, r, c)
			}
			res.WriteBytes += arr.LogicalBlockBytes
			res.WriteReqs++
		}

		// Retain blocks with active holds; release everything else.
		for key, m := range local {
			end, heldNow := holdEnd[key]
			_, already := buf[key]
			switch {
			case heldNow && end > i && !already:
				buf[key] = buffered{blk: m, bytes: blockBytesOf(p, key, st, ev, m)}
				bufBytes += buf[key].bytes
			case heldNow && end > i && already:
				buf[key] = buffered{blk: m, bytes: buf[key].bytes}
			}
		}
		// Pool pins follow the holds: blocks acquired this event keep one
		// pin while their hold extends past it, none otherwise.
		for key := range local {
			keep := 0
			if end, heldNow := holdEnd[key]; heldNow && end > i {
				keep = 1
			}
			pins.drop(key, keep)
		}
		// Expire holds ending at this event.
		for key, end := range holdEnd {
			if end <= i {
				if b, ok := buf[key]; ok {
					bufBytes -= b.bytes
					delete(buf, key)
				}
				delete(holdEnd, key)
				pins.drop(key, 0)
			}
		}

		// Announce blocks whose final physical write was this event.
		if finalize != nil {
			for _, br := range finalize[i] {
				e.OnBlockWritten(br.array, br.r, br.c)
			}
		}
	}
	res.SimulatedIOSec = e.Model.Time(res.ReadBytes, res.WriteBytes, res.ReadReqs, res.WriteReqs)
	return res, nil
}

// blockRef names one block of one array.
type blockRef struct {
	array string
	r, c  int64
}

// finalWrites maps each event index to the blocks whose final write the
// event performs and persists (the last write access of the block across
// the whole timeline, with action DoIO — through the pool that is a
// deferred dirty install, directly it is the disk write itself). After
// such an event completes, the block's value is final and readable; both
// engines drive Engine.OnBlockWritten off these lists. Blocks whose last
// write stays memory-only are omitted.
func finalWrites(tl *codegen.Timeline) [][]blockRef {
	type lastWrite struct {
		event int
		doIO  bool
		ref   blockRef
	}
	last := make(map[string]lastWrite)
	for i, set := range tl.AccessSets() {
		for _, ba := range set {
			if ba.Type != prog.Write || ba.Action == codegen.Inactive {
				continue
			}
			last[ba.Key] = lastWrite{
				event: i,
				doIO:  ba.Action == codegen.DoIO,
				ref:   blockRef{array: ba.Array, r: ba.R, c: ba.C},
			}
		}
	}
	out := make([][]blockRef, len(tl.Events))
	for _, lw := range last {
		if lw.doIO {
			out[lw.event] = append(out[lw.event], lw.ref)
		}
	}
	return out
}

// blockBytesOf resolves the logical byte size of a block key by searching
// the event's arrays (the key embeds the array name before '[').
func blockBytesOf(p *prog.Program, key string, st *prog.Statement, ev codegen.Event, m *blas.Matrix) int64 {
	for name, arr := range p.Arrays {
		if len(key) > len(name) && key[:len(name)] == name && key[len(name)] == '[' {
			return arr.LogicalBlockBytes
		}
	}
	return int64(m.Rows) * int64(m.Cols) * 8
}

// isAccumulatorRead reports whether access ai is a read of the same array
// the statement writes (the "+=" self-operand).
func isAccumulatorRead(st *prog.Statement, ai int) bool {
	ac := &st.Accesses[ai]
	if ac.Type != prog.Read {
		return false
	}
	w := st.WriteAccess()
	return w != nil && w.Array == ac.Array
}
