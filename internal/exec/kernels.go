package exec

import (
	"fmt"
	"strings"

	"riotshare/internal/blas"
	"riotshare/internal/prog"
)

// RunKernel dispatches a statement's in-core computation. in holds the
// active read operands in access order (excluding the accumulator
// self-read), accRead the accumulator's prior value (nil at the first
// accumulation step or when the statement does not accumulate), and dst the
// output block. Accumulating kernels continue from accRead; others
// recompute dst from scratch.
func RunKernel(st *prog.Statement, in []*blas.Matrix, accRead, dst *blas.Matrix) error {
	if st.Kernel == "" {
		return nil // analysis-only statement: I/O pattern without compute
	}
	if dst == nil {
		return fmt.Errorf("kernel %q without write target", st.Kernel)
	}
	prepAccum := func() {
		switch {
		case accRead == nil:
			dst.Zero()
		case accRead != dst:
			copy(dst.Data, accRead.Data)
		}
	}
	parts := strings.Split(st.Kernel, ":")
	switch parts[0] {
	case "add":
		if len(in) != 2 {
			return fmt.Errorf("add wants 2 operands, got %d", len(in))
		}
		blas.Add(dst, in[0], in[1])
	case "sub":
		if len(in) != 2 {
			return fmt.Errorf("sub wants 2 operands, got %d", len(in))
		}
		blas.Sub(dst, in[0], in[1])
	case "gemm":
		ta, tb, self := false, false, false
		for _, f := range parts[1:] {
			switch f {
			case "ta":
				ta = true
			case "tb":
				tb = true
			case "self":
				self = true
			default:
				return fmt.Errorf("unknown gemm flag %q", f)
			}
		}
		var a, b *blas.Matrix
		if self {
			if len(in) != 1 {
				return fmt.Errorf("gemm:self wants 1 operand, got %d", len(in))
			}
			a, b = in[0], in[0]
		} else {
			if len(in) != 2 {
				return fmt.Errorf("gemm wants 2 operands, got %d", len(in))
			}
			a, b = in[0], in[1]
		}
		prepAccum()
		blas.Gemm(dst, a, ta, b, tb)
	case "inv":
		if len(in) != 1 {
			return fmt.Errorf("inv wants 1 operand, got %d", len(in))
		}
		return blas.Inverse(dst, in[0])
	case "rss":
		if len(in) != 1 {
			return fmt.Errorf("rss wants 1 operand, got %d", len(in))
		}
		prepAccum()
		blas.RSS(dst, in[0])
	case "scan-agg":
		if len(in) != 1 {
			return fmt.Errorf("scan-agg wants 1 operand, got %d", len(in))
		}
		prepAccum()
		var s float64
		for _, v := range in[0].Data {
			s += v
		}
		dst.Data[0] += s
	case "join-agg":
		if len(in) != 2 {
			return fmt.Errorf("join-agg wants 2 operands, got %d", len(in))
		}
		prepAccum()
		// Count equi-matches between the operands' first columns (a simple
		// block nested-loop join aggregate).
		var matches float64
		for i := 0; i < in[0].Rows; i++ {
			for j := 0; j < in[1].Rows; j++ {
				if in[0].At(i, 0) == in[1].At(j, 0) {
					matches++
				}
			}
		}
		dst.Data[0] += matches
	default:
		return fmt.Errorf("unknown kernel %q", st.Kernel)
	}
	return nil
}
