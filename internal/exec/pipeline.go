// pipeline.go turns the sequential timeline interpreter into a pipelined
// parallel engine. The timeline stays the single source of truth: a
// dependence graph over its events — derived from per-event block access
// sets (memory dataflow inside hold intervals, RAW/WAR/WAW on disk state)
// — lets independent in-core kernels run on a worker pool while an
// asynchronous prefetcher walks the timeline ahead of execution and issues
// block reads early.
//
// Two invariants make the parallel engine a validation of the paper rather
// than a departure from it:
//
//  1. Logical I/O accounting is byte-for-byte equal to the cost model's
//     prediction regardless of worker count. Volumes are the plan's, not an
//     artifact of interleaving, so Result is computed by replaying the
//     timeline's actions with sequential semantics (accountRun) — exactly
//     what Engine.Run measures — and the physical run only carries them
//     out.
//  2. Numerics are bit-identical to sequential execution. Every kernel
//     consumes the same operand values in the same order: accumulator
//     chains are serialized by write-write edges, shared buffers by
//     producer→consumer edges, so floating-point summation order never
//     changes.
//
// PeakMemoryBytes therefore reports the plan's logical working-set peak
// (what the optimizer bounded with the memory cap, §4.2). The physical
// resident set of a parallel run can transiently exceed it by the worker
// pool's per-event operand blocks plus the prefetch window; the prefetch
// window is bounded by the cap's spare headroom (cap − logical peak) and
// never issues a read past an unexecuted write of the same block.
package exec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"riotshare/internal/blas"
	"riotshare/internal/codegen"
	"riotshare/internal/prog"
)

// Options configures pipelined parallel execution.
type Options struct {
	// Workers is the number of concurrent kernel workers; values <= 1 run
	// the sequential interpreter.
	Workers int
	// PrefetchDepth caps the number of prefetched-but-unconsumed blocks
	// (<= 0 selects 2*Workers). A nonzero Engine.MemCapBytes additionally
	// shrinks the window to the cap's headroom above the plan's peak.
	PrefetchDepth int
	// Pool, when non-nil, routes physical block I/O through a
	// sharing-aware buffer pool (overrides Engine.Pool for this run). With
	// a pool the prefetcher warms pool frames instead of holding a private
	// cache, so prefetched blocks are shared with concurrent queries too.
	Pool BlockPool
}

// RunOptions executes the timeline with the given parallelism. Workers <= 1
// is exactly Engine.Run; otherwise the pipelined engine runs and returns an
// identical Result (modulo CPUTime, which is measured wall time inside
// kernels either way).
func (e *Engine) RunOptions(tl *codegen.Timeline, opt Options) (Result, error) {
	eng := *e
	if opt.Pool != nil {
		eng.Pool = opt.Pool
	}
	if opt.Workers <= 1 {
		return eng.Run(tl)
	}
	return eng.runParallel(tl, opt)
}

// accountRun replays the timeline's actions with sequential semantics and
// returns the logical Result the sequential interpreter would measure:
// I/O volumes and request counts summed over DoIO actions, and the peak
// buffered working set under the hold bookkeeping — including the memory
// cap check, which must fail for a plan the optimizer would have rejected.
// It is a transliteration of Engine.Run minus the physical I/O and
// kernels; the pipelined engine derives its accounting here so that worker
// interleaving can never distort the paper-scale volumes.
func accountRun(tl *codegen.Timeline, memCapBytes int64) (Result, error) {
	var res Result
	p := tl.Prog

	holdsByStart := make(map[int][]codegen.Hold)
	for _, h := range tl.Holds {
		holdsByStart[h.StartEvent] = append(holdsByStart[h.StartEvent], h)
	}
	holdEnd := make(map[string]int)
	bufBytesBy := make(map[string]int64) // buffered keys -> logical bytes
	bufBytes := int64(0)

	account := func(extra int64) error {
		if bufBytes+extra > res.PeakMemoryBytes {
			res.PeakMemoryBytes = bufBytes + extra
		}
		if memCapBytes > 0 && bufBytes+extra > memCapBytes {
			return fmt.Errorf("exec: memory cap exceeded: %d > %d bytes", bufBytes+extra, memCapBytes)
		}
		return nil
	}

	for i, ev := range tl.Events {
		st := ev.St
		actions := tl.Actions[i]
		for _, h := range holdsByStart[i] {
			key := codegen.BlockKey(h.Array, h.R, h.C)
			if h.EndEvent > holdEnd[key] {
				holdEnd[key] = h.EndEvent
			}
		}

		local := make(map[string]bool)
		localBytes := int64(0)
		var writeArr *prog.Array
		var writeAction codegen.AccessAction
		haveWrite := false

		for ai := range st.Accesses {
			ac := &st.Accesses[ai]
			action := actions[ai]
			if action == codegen.Inactive {
				continue
			}
			arr := p.Arrays[ac.Array]
			r, c := ac.BlockAt(ev.X, tl.Params)
			key := codegen.BlockKey(ac.Array, r, c)
			_, held := bufBytesBy[key]

			if ac.Type == prog.Read {
				if action == codegen.FromMemory && !held && !local[key] {
					return res, fmt.Errorf("exec: %s%v expects %s in memory but it is not buffered",
						st.Name, ev.X, key)
				}
				if action == codegen.DoIO {
					res.ReadBytes += arr.LogicalBlockBytes
					res.ReadReqs++
				}
				if !local[key] {
					local[key] = true
					if !held {
						localBytes += arr.LogicalBlockBytes
					}
				}
				continue
			}
			// Write access: the output block materializes in memory.
			writeArr, writeAction, haveWrite = arr, action, true
			if !held && !local[key] {
				localBytes += arr.LogicalBlockBytes
			}
			local[key] = true
		}
		if err := account(localBytes); err != nil {
			return res, err
		}
		if haveWrite && writeAction == codegen.DoIO {
			res.WriteBytes += writeArr.LogicalBlockBytes
			res.WriteReqs++
		}

		// Retain blocks with active holds; expire holds ending here.
		for key := range local {
			if end, heldNow := holdEnd[key]; heldNow && end > i {
				if _, already := bufBytesBy[key]; !already {
					b := keyLogicalBytes(p, key)
					bufBytesBy[key] = b
					bufBytes += b
				}
			}
		}
		for key, end := range holdEnd {
			if end <= i {
				if b, ok := bufBytesBy[key]; ok {
					bufBytes -= b
					delete(bufBytesBy, key)
				}
				delete(holdEnd, key)
			}
		}
	}
	return res, nil
}

// keyLogicalBytes resolves a block key's logical byte size via its array
// name prefix (the key embeds the array name before '[').
func keyLogicalBytes(p *prog.Program, key string) int64 {
	for name, arr := range p.Arrays {
		if len(key) > len(name) && key[:len(name)] == name && key[len(name)] == '[' {
			return arr.LogicalBlockBytes
		}
	}
	return 0
}

// ivState is one merged hold interval plus its runtime refcount: the
// buffered block is released when every event that touches it inside the
// interval has completed (the parallel form of "expire holds ending at
// this event").
type ivState struct {
	iv   codegen.HoldInterval
	refs int32
}

// pipeline is the static schedule the parallel engine executes: access
// sets, the event dependence DAG, hold-interval coverage, and the prefetch
// walk.
type pipeline struct {
	sets  [][]codegen.BlockAccess
	succs [][]int
	indeg []int32
	// cover[i][key] is the merged hold interval covering event i for key
	// (Start <= i <= End); nil map when event i covers nothing.
	cover []map[string]*ivState
	// release[i] lists intervals in which event i is an accessor.
	release [][]*ivState
	// prefetch is the ordered walk of coalesced prefetchable reads;
	// consumers counts the DoIO reads each entry must serve.
	prefetch  []pfReq
	consumers map[string]int
	maxBlock  int64 // largest prefetchable block, for the byte budget
	// firstDiskWrite[key] is the earliest event writing the block to disk;
	// reads at later events must bypass the prefetch cache (stale state).
	firstDiskWrite map[string]int
}

// pfReq identifies one block the prefetcher should read ahead.
type pfReq struct {
	key   string
	array string
	r, c  int64
}

// buildPipeline derives the dependence DAG from the timeline's block
// access sets. Three edge families preserve sequential semantics:
//
//   - memory dataflow inside each merged hold interval: the interval's
//     start event produces the buffered block; readers depend on the
//     latest producer, writers on the latest producer plus every reader
//     since (so in-place accumulation never races a consumer);
//   - buffer-slot reuse between consecutive intervals of the same block:
//     the next interval's start waits for every accessor of the previous
//     one, so release precedes re-insertion;
//   - disk state per block: DoIO write → later DoIO reads (RAW), DoIO
//     reads → next DoIO write (WAR), DoIO write → DoIO write (WAW).
//
// All edges point forward in timeline order, so the graph is a DAG.
func buildPipeline(tl *codegen.Timeline) (*pipeline, error) {
	n := len(tl.Events)
	pp := &pipeline{
		sets:      tl.AccessSets(),
		succs:     make([][]int, n),
		indeg:     make([]int32, n),
		cover:     make([]map[string]*ivState, n),
		release:   make([][]*ivState, n),
		consumers: make(map[string]int),
	}
	seen := make(map[int64]bool)
	addEdge := func(from, to int) error {
		if from == to {
			return nil // intra-event ordering is program order
		}
		if from > to {
			return fmt.Errorf("exec: dependence edge %d->%d runs against the timeline", from, to)
		}
		id := int64(from)<<32 | int64(to)
		if seen[id] {
			return nil
		}
		seen[id] = true
		pp.succs[from] = append(pp.succs[from], to)
		pp.indeg[to]++
		return nil
	}

	// Per-event key → (reads, writes) flags for interval accessor scans.
	type rw struct{ read, write bool }
	touch := make([]map[string]rw, n)
	for i, set := range pp.sets {
		touch[i] = make(map[string]rw, len(set))
		for _, ba := range set {
			t := touch[i][ba.Key]
			if ba.Type == prog.Read {
				t.read = true
			} else {
				t.write = true
			}
			touch[i][ba.Key] = t
		}
	}

	// Memory dataflow within and between hold intervals.
	intervals := tl.HoldIntervals()
	var prev *codegen.HoldInterval
	var prevAccessors []int
	for idx := range intervals {
		iv := intervals[idx]
		st := &ivState{iv: iv}
		var accessors []int
		for i := iv.Start; i <= iv.End; i++ {
			if _, ok := touch[i][iv.Key]; !ok {
				continue
			}
			accessors = append(accessors, i)
			if pp.cover[i] == nil {
				pp.cover[i] = make(map[string]*ivState)
			}
			pp.cover[i][iv.Key] = st
			pp.release[i] = append(pp.release[i], st)
		}
		if len(accessors) == 0 || accessors[0] != iv.Start {
			return nil, fmt.Errorf("exec: hold interval %s[%d..%d] start event does not access the block",
				iv.Key, iv.Start, iv.End)
		}
		st.refs = int32(len(accessors))

		producer := iv.Start
		var readers []int
		for _, i := range accessors[1:] {
			if touch[i][iv.Key].write {
				if err := addEdge(producer, i); err != nil {
					return nil, err
				}
				for _, r := range readers {
					if err := addEdge(r, i); err != nil {
						return nil, err
					}
				}
				producer, readers = i, readers[:0]
				continue
			}
			if err := addEdge(producer, i); err != nil {
				return nil, err
			}
			readers = append(readers, i)
		}

		// Buffer-slot reuse: the previous interval of this block must fully
		// release before the next one buffers.
		if prev != nil && prev.Key == iv.Key {
			for _, a := range prevAccessors {
				if err := addEdge(a, iv.Start); err != nil {
					return nil, err
				}
			}
		}
		prev, prevAccessors = &intervals[idx], accessors
	}

	// Disk-state dependences per block over DoIO actions.
	type diskAcc struct {
		event       int
		read, write bool
	}
	diskByKey := make(map[string][]diskAcc)
	for i, set := range pp.sets {
		for _, ba := range set {
			if ba.Action != codegen.DoIO {
				continue
			}
			accs := diskByKey[ba.Key]
			if len(accs) > 0 && accs[len(accs)-1].event == i {
				if ba.Type == prog.Read {
					accs[len(accs)-1].read = true
				} else {
					accs[len(accs)-1].write = true
				}
			} else {
				accs = append(accs, diskAcc{event: i, read: ba.Type == prog.Read, write: ba.Type == prog.Write})
			}
			diskByKey[ba.Key] = accs
		}
	}
	firstDiskWrite := make(map[string]int)
	pp.firstDiskWrite = firstDiskWrite
	for key, accs := range diskByKey {
		lastWriter := -1
		var readersSince []int
		for _, a := range accs {
			if a.read || a.write {
				if lastWriter >= 0 {
					if err := addEdge(lastWriter, a.event); err != nil {
						return nil, err
					}
				}
			}
			if a.write {
				for _, r := range readersSince {
					if err := addEdge(r, a.event); err != nil {
						return nil, err
					}
				}
				lastWriter, readersSince = a.event, readersSince[:0]
				if _, ok := firstDiskWrite[key]; !ok {
					firstDiskWrite[key] = a.event
				}
			}
			if a.read {
				readersSince = append(readersSince, a.event)
			}
		}
	}

	// Prefetch walk: a DoIO read is prefetchable when no earlier event
	// writes the block to disk — then all prefetchable reads of one block
	// see identical disk state and can share a single early read. Reads
	// past a disk write are left to the executor, whose RAW edge orders
	// them.
	inWalk := make(map[string]bool)
	for i, set := range pp.sets {
		for _, ba := range set {
			if ba.Type != prog.Read || ba.Action != codegen.DoIO {
				continue
			}
			if w, ok := firstDiskWrite[ba.Key]; ok && w < i {
				continue
			}
			pp.consumers[ba.Key]++
			if !inWalk[ba.Key] {
				inWalk[ba.Key] = true
				pp.prefetch = append(pp.prefetch, pfReq{key: ba.Key, array: ba.Array, r: ba.R, c: ba.C})
				if b := tl.Prog.Arrays[ba.Array].LogicalBlockBytes; b > pp.maxBlock {
					pp.maxBlock = b
				}
			}
		}
	}
	return pp, nil
}

// pfEntry is one coalesced prefetchable block read: issued either by the
// prefetcher (ahead of execution, holding a window slot) or claimed inline
// by the first consumer to need it, never both.
type pfEntry struct {
	refs     int32 // consumers remaining
	shared   bool  // >1 consumers: hand out clones, keep blk pristine
	issued   bool
	slotHeld bool // the prefetcher holds a window slot until fully consumed
	done     chan struct{}
	blk      *blas.Matrix
	err      error
}

// runState is the shared state of one parallel run.
type runState struct {
	e  *Engine
	tl *codegen.Timeline
	pp *pipeline

	mu  sync.Mutex // guards buf, ivPins and scheduler bookkeeping
	buf map[string]*blas.Matrix
	// ivPins holds pool pins owned by active hold intervals (pool mode):
	// event-local pins transfer here while an interval stays active and
	// are released when its last accessor completes.
	ivPins *pinSet

	cacheMu sync.Mutex
	cache   map[string]*pfEntry
	slots   chan struct{}
	// pfWG tracks the prefetcher and every read goroutine it spawned;
	// runParallel joins it so no straggler touches the pool or storage
	// after the run returns.
	pfWG sync.WaitGroup

	// finalize[i] lists blocks whose final physical write is event i
	// (nil when the engine has no OnBlockWritten callback).
	finalize [][]blockRef

	cancel  chan struct{}
	failErr error
	once    sync.Once

	cpuNanos atomic.Int64

	// stageMu guards stageNanos, the per-statement kernel time sums
	// that become Result.StageTimes. pfIssued/pfInline count prefetch
	// reads issued ahead of use vs. claimed inline by a consumer.
	stageMu    sync.Mutex
	stageNanos map[string]int64
	pfIssued   atomic.Int64
	pfInline   atomic.Int64
}

// addStageTime accumulates one kernel's wall time under its stage.
func (rs *runState) addStageTime(stage string, d time.Duration) {
	rs.stageMu.Lock()
	rs.stageNanos[stage] += int64(d)
	rs.stageMu.Unlock()
}

func (rs *runState) fail(err error) {
	rs.once.Do(func() {
		rs.failErr = err
		close(rs.cancel)
	})
}

// runParallel executes the timeline on a worker pool with I/O prefetch.
func (e *Engine) runParallel(tl *codegen.Timeline, opt Options) (Result, error) {
	res, err := accountRun(tl, e.MemCapBytes)
	if err != nil {
		return res, err
	}
	pp, err := buildPipeline(tl)
	if err != nil {
		return res, err
	}

	depth := opt.PrefetchDepth
	if depth <= 0 {
		depth = 2 * opt.Workers
	}
	if e.MemCapBytes > 0 && pp.maxBlock > 0 {
		// Prefetch only into the cap's headroom above the plan's peak.
		if spare := int((e.MemCapBytes - res.PeakMemoryBytes) / pp.maxBlock); spare < depth {
			depth = spare
		}
	}
	if depth < 0 {
		depth = 0
	}

	rs := &runState{
		e: e, tl: tl, pp: pp,
		buf:        make(map[string]*blas.Matrix),
		ivPins:     newPinSet(e.Pool),
		cache:      make(map[string]*pfEntry, len(pp.prefetch)),
		slots:      make(chan struct{}, max(depth, 1)),
		cancel:     make(chan struct{}),
		stageNanos: make(map[string]int64),
	}
	if e.OnBlockWritten != nil {
		rs.finalize = finalWrites(tl)
	}
	defer rs.ivPins.releaseAll()
	for _, req := range pp.prefetch {
		c := pp.consumers[req.key]
		rs.cache[req.key] = &pfEntry{refs: int32(c), shared: c > 1, done: make(chan struct{})}
	}
	if depth > 0 {
		rs.pfWG.Add(1)
		go rs.prefetcher()
	}

	n := len(tl.Events)
	ready := make(chan int, n)
	remaining := n
	for i := 0; i < n; i++ {
		if pp.indeg[i] == 0 {
			ready <- i
		}
	}
	if n == 0 {
		close(ready)
	}

	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-rs.cancel:
					return
				case i, ok := <-ready:
					if !ok {
						return
					}
					if err := rs.execEvent(i); err != nil {
						rs.fail(err)
						return
					}
					rs.mu.Lock()
					for _, s := range pp.succs[i] {
						if pp.indeg[s]--; pp.indeg[s] == 0 {
							ready <- s
						}
					}
					if remaining--; remaining == 0 {
						close(ready)
					}
					rs.mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	rs.fail(nil)   // release the prefetcher if it is still walking
	rs.pfWG.Wait() // join prefetch reads so none outlives the run
	if rs.failErr != nil {
		return res, rs.failErr
	}
	res.CPUTime = time.Duration(rs.cpuNanos.Load())
	for stage, ns := range rs.stageNanos {
		res.addStageTime(stage, time.Duration(ns))
	}
	res.PrefetchIssued = rs.pfIssued.Load()
	res.PrefetchInline = rs.pfInline.Load()
	res.SimulatedIOSec = e.Model.Time(res.ReadBytes, res.WriteBytes, res.ReadReqs, res.WriteReqs)
	return res, nil
}

// prefetcher walks the timeline's prefetchable reads in first-use order,
// issuing each one asynchronously while window slots are available. An
// entry the executor already claimed inline is skipped.
func (rs *runState) prefetcher() {
	defer rs.pfWG.Done()
	for _, req := range rs.pp.prefetch {
		select {
		case <-rs.cancel:
			return
		case rs.slots <- struct{}{}:
		}
		rs.cacheMu.Lock()
		en := rs.cache[req.key]
		if en == nil || en.issued {
			// Fully consumed (entry evicted) or claimed inline already.
			rs.cacheMu.Unlock()
			<-rs.slots
			continue
		}
		en.issued = true
		en.slotHeld = true
		rs.cacheMu.Unlock()
		rs.pfIssued.Add(1)
		rs.pfWG.Add(1)
		go func(req pfReq, en *pfEntry) {
			defer rs.pfWG.Done()
			if pool := rs.e.Pool; pool != nil {
				// Pool mode: warm the shared pool instead of a private
				// cache. Consumers acquire their own pinned copies (the
				// pool coalesces with this in-flight read), so the
				// prefetcher's pin is released immediately. An error is
				// left for the consumer's own read to surface.
				if _, err := pool.Acquire(req.array, req.r, req.c); err == nil {
					pool.Unpin(req.array, req.r, req.c, 1)
				}
				close(en.done)
				return
			}
			en.blk, en.err = rs.e.Store.ReadBlock(req.array, req.r, req.c)
			close(en.done)
		}(req, en)
	}
}

// noteConsumed retires one prefetch-window reference for key (pool mode):
// the pool itself serves and caches the block, so the cache entry only
// tracks window occupancy. The last consumer evicts the entry and frees
// the prefetcher's slot.
func (rs *runState) noteConsumed(key string) {
	rs.cacheMu.Lock()
	en := rs.cache[key]
	if en == nil {
		rs.cacheMu.Unlock()
		return
	}
	en.refs--
	last := en.refs == 0
	if last {
		delete(rs.cache, key)
	}
	slotHeld := en.slotHeld
	rs.cacheMu.Unlock()
	if last && slotHeld {
		<-rs.slots
	}
}

// readBlock serves one DoIO read at event i: from the prefetch cache when
// the read is prefetchable (claiming the entry inline if the prefetcher
// has not reached it yet), from storage otherwise — in particular, a read
// scheduled after a disk write of the same block must bypass the cache,
// whose entry predates the write. Shared entries hand out clones so a
// consumer installing its block into the mutable buffer pool cannot
// corrupt the others. The pinned result reports that the caller owns one
// pool pin (pool mode only). In pool mode every read — including
// post-disk-write bypass reads — goes through the pool, whose frame always
// holds the current value (disk writes are deferred write-backs there).
func (rs *runState) readBlock(i int, array string, r, c int64, key string) (*blas.Matrix, bool, error) {
	if pool := rs.e.Pool; pool != nil {
		if w, ok := rs.pp.firstDiskWrite[key]; !ok || w >= i {
			rs.noteConsumed(key)
		}
		m, err := pool.Acquire(array, r, c)
		return m, err == nil, err
	}
	if w, ok := rs.pp.firstDiskWrite[key]; ok && w < i {
		m, err := rs.e.Store.ReadBlock(array, r, c)
		return m, false, err
	}
	rs.cacheMu.Lock()
	en := rs.cache[key]
	if en == nil {
		rs.cacheMu.Unlock()
		m, err := rs.e.Store.ReadBlock(array, r, c)
		return m, false, err
	}
	claimed := false
	if !en.issued {
		en.issued = true
		claimed = true
		rs.pfInline.Add(1)
	}
	en.refs--
	last := en.refs == 0
	if last {
		// Evict so the block is not pinned for the rest of the run; a
		// latecomer simply misses the cache and reads inline.
		delete(rs.cache, key)
	}
	rs.cacheMu.Unlock()

	if claimed {
		en.blk, en.err = rs.e.Store.ReadBlock(array, r, c)
		close(en.done)
	} else {
		select {
		case <-en.done:
		case <-rs.cancel:
			return nil, false, fmt.Errorf("exec: canceled")
		}
	}
	if last && en.slotHeld {
		<-rs.slots
	}
	if en.err != nil {
		return nil, false, en.err
	}
	if en.shared {
		return en.blk.Clone(), false, nil
	}
	return en.blk, false, nil
}

// execEvent runs one statement instance: acquire operands (shared buffer,
// prefetch cache, or disk), run the kernel, write back, then retain and
// release held blocks. It mirrors Engine.Run's per-event logic exactly;
// only the sourcing of blocks differs.
func (rs *runState) execEvent(i int) error {
	tl := rs.tl
	ev := tl.Events[i]
	set := rs.pp.sets[i]
	cover := rs.pp.cover[i]

	// Pool pins acquired by this event; pins for blocks whose hold
	// interval extends past the event transfer to interval ownership
	// (rs.ivPins), the rest release when the event finishes.
	evPins := newPinSet(rs.e.Pool)
	defer evPins.releaseAll()

	local := make(map[string]*blas.Matrix, len(set))
	var kernelIn []*blas.Matrix
	var outBlk *blas.Matrix
	var writeBA *codegen.BlockAccess
	var accRead *blas.Matrix

	heldBefore := func(key string) bool {
		iv, ok := cover[key]
		return ok && i > iv.iv.Start
	}

	for bi := range set {
		ba := &set[bi]
		if ba.Type == prog.Read {
			var m *blas.Matrix
			switch ba.Action {
			case codegen.FromMemory:
				if heldBefore(ba.Key) {
					rs.mu.Lock()
					m = rs.buf[ba.Key]
					rs.mu.Unlock()
				}
				if m == nil {
					if lm, ok := local[ba.Key]; ok {
						m = lm
					} else {
						return fmt.Errorf("exec: %s%v expects %s in memory but it is not buffered",
							ev.St.Name, ev.X, ba.Key)
					}
				}
			case codegen.DoIO:
				var err error
				var pinned bool
				m, pinned, err = rs.readBlock(i, ba.Array, ba.R, ba.C, ba.Key)
				if err != nil {
					return err
				}
				if pinned {
					evPins.add(ba.Key, ba.Array, ba.R, ba.C)
				}
			}
			if _, dup := local[ba.Key]; !dup {
				local[ba.Key] = m
			}
			if isAccumulatorRead(ev.St, ba.Acc) {
				accRead = m
			} else {
				kernelIn = append(kernelIn, m)
			}
			continue
		}
		// Write access: the output block materializes in memory.
		writeBA = ba
		if heldBefore(ba.Key) {
			rs.mu.Lock()
			outBlk = rs.buf[ba.Key]
			rs.mu.Unlock()
			if outBlk == nil {
				return fmt.Errorf("exec: %s%v writes held block %s but it is not buffered",
					ev.St.Name, ev.X, ba.Key)
			}
		} else {
			arr := tl.Prog.Arrays[ba.Array]
			outBlk = blas.NewMatrix(arr.BlockRows, arr.BlockCols)
		}
		local[ba.Key] = outBlk
	}

	t0 := time.Now()
	if err := RunKernel(ev.St, kernelIn, accRead, outBlk); err != nil {
		return fmt.Errorf("exec: %s%v: %w", ev.St.Name, ev.X, err)
	}
	kd := time.Since(t0)
	rs.cpuNanos.Add(int64(kd))
	rs.addStageTime(ev.St.Name, kd)

	if writeBA != nil && writeBA.Action == codegen.DoIO {
		pinned, err := rs.e.writeThrough(writeBA.Array, writeBA.R, writeBA.C, outBlk)
		if err != nil {
			return err
		}
		if pinned {
			evPins.add(writeBA.Key, writeBA.Array, writeBA.R, writeBA.C)
		}
	}

	// Retain blocks whose hold interval extends past this event; release
	// interval references and evict fully consumed blocks. Pool pins for
	// retained blocks move to interval ownership and are released when the
	// interval's last accessor completes.
	rs.mu.Lock()
	for key, m := range local {
		if iv, ok := cover[key]; ok && i < iv.iv.End {
			rs.buf[key] = m
			evPins.transfer(key, rs.ivPins)
		}
	}
	for _, st := range rs.pp.release[i] {
		if st.refs--; st.refs == 0 {
			delete(rs.buf, st.iv.Key)
			rs.ivPins.drop(st.iv.Key, 0)
		}
	}
	rs.mu.Unlock()

	// Announce blocks whose final physical write was this event. The WAW
	// and dataflow edges ordered every earlier write before it, so the
	// value observed through Pool/Store from here on is final.
	if rs.finalize != nil {
		for _, br := range rs.finalize[i] {
			rs.e.OnBlockWritten(br.array, br.r, br.c)
		}
	}
	return nil
}
