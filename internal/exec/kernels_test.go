package exec

import (
	"strings"
	"testing"

	"riotshare/internal/blas"
	"riotshare/internal/prog"
)

func stmtWithKernel(t *testing.T, kernel string) *prog.Statement {
	t.Helper()
	p := prog.New("k", "n")
	p.AddArray(&prog.Array{Name: "A", BlockRows: 2, BlockCols: 2, GridRows: 1, GridCols: 1})
	s := p.NewStatement("s", "i")
	s.Access(prog.Write, "A", prog.C(0), prog.C(0))
	s.SetKernel(kernel)
	return s
}

func TestRunKernelUnknown(t *testing.T) {
	s := stmtWithKernel(t, "nonsense")
	if err := RunKernel(s, nil, nil, blas.NewMatrix(2, 2)); err == nil {
		t.Fatal("unknown kernel should error")
	}
}

func TestRunKernelOperandCount(t *testing.T) {
	cases := []struct {
		kernel string
		in     []*blas.Matrix
	}{
		{"add", []*blas.Matrix{blas.NewMatrix(2, 2)}},
		{"sub", nil},
		{"gemm", []*blas.Matrix{blas.NewMatrix(2, 2)}},
		{"gemm:self", []*blas.Matrix{blas.NewMatrix(2, 2), blas.NewMatrix(2, 2)}},
		{"inv", nil},
		{"rss", nil},
		{"scan-agg", nil},
		{"join-agg", []*blas.Matrix{blas.NewMatrix(2, 2)}},
	}
	for _, c := range cases {
		s := stmtWithKernel(t, c.kernel)
		if err := RunKernel(s, c.in, nil, blas.NewMatrix(2, 2)); err == nil {
			t.Errorf("kernel %q with %d operands should error", c.kernel, len(c.in))
		}
	}
}

func TestRunKernelBadGemmFlag(t *testing.T) {
	s := stmtWithKernel(t, "gemm:tz")
	in := []*blas.Matrix{blas.NewMatrix(2, 2), blas.NewMatrix(2, 2)}
	err := RunKernel(s, in, nil, blas.NewMatrix(2, 2))
	if err == nil || !strings.Contains(err.Error(), "flag") {
		t.Fatalf("bad flag should error, got %v", err)
	}
}

func TestRunKernelNilDst(t *testing.T) {
	s := stmtWithKernel(t, "add")
	if err := RunKernel(s, nil, nil, nil); err == nil {
		t.Fatal("nil dst should error")
	}
}

func TestRunKernelEmptyKernelNoop(t *testing.T) {
	s := stmtWithKernel(t, "")
	s.Kernel = ""
	if err := RunKernel(s, nil, nil, nil); err != nil {
		t.Fatalf("analysis-only statement should be a no-op: %v", err)
	}
}

// Accumulation semantics: accRead copied into dst when distinct; continued
// in place when aliased; zeroed when nil.
func TestRunKernelAccumulationSemantics(t *testing.T) {
	s := stmtWithKernel(t, "scan-agg")
	in := []*blas.Matrix{{Rows: 1, Cols: 2, Data: []float64{3, 4}}}

	// accRead nil: fresh accumulation.
	dst := &blas.Matrix{Rows: 1, Cols: 1, Data: []float64{99}}
	if err := RunKernel(s, in, nil, dst); err != nil {
		t.Fatal(err)
	}
	if dst.Data[0] != 7 {
		t.Fatalf("fresh accumulation got %v want 7", dst.Data[0])
	}

	// accRead distinct: copy then accumulate.
	acc := &blas.Matrix{Rows: 1, Cols: 1, Data: []float64{10}}
	dst2 := blas.NewMatrix(1, 1)
	if err := RunKernel(s, in, acc, dst2); err != nil {
		t.Fatal(err)
	}
	if dst2.Data[0] != 17 {
		t.Fatalf("copied accumulation got %v want 17", dst2.Data[0])
	}

	// accRead aliased to dst: continue in place.
	dst3 := &blas.Matrix{Rows: 1, Cols: 1, Data: []float64{10}}
	if err := RunKernel(s, in, dst3, dst3); err != nil {
		t.Fatal(err)
	}
	if dst3.Data[0] != 17 {
		t.Fatalf("in-place accumulation got %v want 17", dst3.Data[0])
	}
}

func TestJoinAggCountsMatches(t *testing.T) {
	s := stmtWithKernel(t, "join-agg")
	outer := &blas.Matrix{Rows: 3, Cols: 1, Data: []float64{1, 2, 3}}
	inner := &blas.Matrix{Rows: 2, Cols: 1, Data: []float64{2, 2}}
	dst := blas.NewMatrix(1, 1)
	if err := RunKernel(s, []*blas.Matrix{outer, inner}, nil, dst); err != nil {
		t.Fatal(err)
	}
	if dst.Data[0] != 2 {
		t.Fatalf("join matches got %v want 2", dst.Data[0])
	}
}
