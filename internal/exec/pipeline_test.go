package exec

import (
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"riotshare/internal/blas"
	"riotshare/internal/blockd"
	"riotshare/internal/buffer"
	"riotshare/internal/core"
	"riotshare/internal/disk"
	"riotshare/internal/ops"
	"riotshare/internal/prog"
	"riotshare/internal/storage"
)

// useropProgram mirrors examples/userop: a sliding-window operator, a scan
// aggregate, and a nested-loop join over blocked vectors.
func useropProgram() *prog.Program {
	p := prog.New("userop", "n", "m")
	p.AddArray(&prog.Array{Name: "Src", BlockRows: 8, BlockCols: 4, GridRows: 10, GridCols: 1})
	p.AddArray(&prog.Array{Name: "Win", BlockRows: 8, BlockCols: 4, GridRows: 10, GridCols: 1, Transient: true})
	p.AddArray(&prog.Array{Name: "Rel", BlockRows: 8, BlockCols: 4, GridRows: 6, GridCols: 1})
	p.AddArray(&prog.Array{Name: "Agg", BlockRows: 1, BlockCols: 1, GridRows: 1, GridCols: 1})
	p.AddArray(&prog.Array{Name: "Join", BlockRows: 1, BlockCols: 1, GridRows: 1, GridCols: 1})
	p.NewNest()
	s1 := p.NewStatement("s1", "i")
	s1.Range("i", prog.C(0), prog.V("n"))
	s1.Access(prog.Read, "Src", prog.V("i"), prog.C(0))
	s1.Access(prog.Read, "Src", prog.V("i").AddK(1), prog.C(0))
	s1.Access(prog.Write, "Win", prog.V("i"), prog.C(0))
	s1.SetKernel("add")
	ops.Scan(p, "s2", "Win", "Agg", "n")
	ops.NLJoin(p, "s3", "Join", "Win", "Rel", "n", "m")
	p.Bind("n", 9).Bind("m", 6)
	return p
}

// outputArrays returns the persistent arrays the program writes.
func outputArrays(p *prog.Program) []string {
	var out []string
	seen := map[string]bool{}
	for _, st := range p.Stmts {
		w := st.WriteAccess()
		if w == nil || seen[w.Array] {
			continue
		}
		seen[w.Array] = true
		if arr := p.Arrays[w.Array]; arr != nil && !arr.Transient {
			out = append(out, w.Array)
		}
	}
	return out
}

// runConfig varies one execution of a plan in the property tests: the
// on-disk format, the engine parallelism, the shard count of the block
// store (0/1 = the single-directory manager) with its replication factor,
// and whether block I/O goes through a sharing-aware buffer pool (with
// which eviction policy and capacity — a small poolCap forces eviction and
// dirty write-back churn mid-plan).
type runConfig struct {
	format     storage.Format
	workers    int
	prefetch   int
	memCap     int64
	shards     int
	replicas   int
	pool       bool
	poolPolicy string
	poolCap    int64
}

// runPlan executes one plan on fresh storage and returns the result plus
// every persistent output array.
func runPlan(t *testing.T, p *prog.Program, pl *core.EvaluatedPlan, cfg runConfig) (Result, map[string]*blas.Matrix) {
	t.Helper()
	var m storage.Backend
	var err error
	if cfg.shards > 1 {
		m, err = storage.OpenSharded(storage.ShardDirs(t.TempDir(), cfg.shards),
			storage.ShardedOptions{Format: cfg.format, Replicas: cfg.replicas})
	} else {
		m, err = storage.NewManager(t.TempDir(), cfg.format)
	}
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.CreateAll(p); err != nil {
		t.Fatal(err)
	}
	fillInputs(t, p, m, 42)
	return runPlanOn(t, p, pl, m, cfg)
}

// runPlanOn executes one plan on an already-created, already-filled backend
// — the hook the degraded-store variant uses to lose a shard between fill
// and execution.
func runPlanOn(t *testing.T, p *prog.Program, pl *core.EvaluatedPlan, m storage.Backend, cfg runConfig) (Result, map[string]*blas.Matrix) {
	t.Helper()
	var err error
	eng := &Engine{Store: m, Model: disk.PaperModel(), MemCapBytes: cfg.memCap}
	var pool *buffer.Pool
	if cfg.pool {
		pool, err = buffer.NewPoolOptions(m, buffer.Options{
			CapacityBytes: cfg.poolCap,
			Policy:        cfg.poolPolicy,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.Pool = pool
	}
	r, err := eng.RunOptions(pl.Timeline, Options{Workers: cfg.workers, PrefetchDepth: cfg.prefetch})
	if err != nil {
		t.Fatalf("plan %s %+v: %v", pl.Label, cfg, err)
	}
	if pool != nil {
		if st := pool.Stats(); st.PinnedFrames != 0 {
			t.Fatalf("plan %s %+v: %d pool frames still pinned after the run", pl.Label, cfg, st.PinnedFrames)
		}
		if err := pool.Flush(); err != nil {
			t.Fatalf("plan %s %+v: flush: %v", pl.Label, cfg, err)
		}
	}
	outs := map[string]*blas.Matrix{}
	for _, name := range outputArrays(p) {
		outs[name] = readFull(t, p, m, name)
	}
	return r, outs
}

// comparable strips the fields that legitimately vary between runs
// (CPUTime and StageTimes are measured wall time inside kernels;
// prefetch counts depend on scheduling and worker count).
func comparable(r Result) Result {
	r.CPUTime = 0
	r.StageTimes = nil
	r.PrefetchIssued = 0
	r.PrefetchInline = 0
	return r
}

// assertIdentical checks the parallel engine's central invariant: logical
// I/O accounting and numerics are byte-for-byte identical to sequential
// execution, for any worker count.
func assertIdentical(t *testing.T, label string, workers int, seq, par Result, seqOut, parOut map[string]*blas.Matrix) {
	t.Helper()
	if !reflect.DeepEqual(comparable(seq), comparable(par)) {
		t.Errorf("plan %s workers=%d: Result diverged\nseq: %+v\npar: %+v", label, workers, comparable(seq), comparable(par))
	}
	for name, want := range seqOut {
		got := parOut[name]
		if got == nil {
			t.Fatalf("plan %s workers=%d: output %s missing", label, workers, name)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("plan %s workers=%d: %s[%d] = %v, want %v (not bit-identical)",
					label, workers, name, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// planSample bounds how many plans each program exercises: the baseline,
// the best, and a spread in between.
func planSample(res *core.Result, n int) []*core.EvaluatedPlan {
	if len(res.Plans) <= n {
		out := make([]*core.EvaluatedPlan, len(res.Plans))
		for i := range res.Plans {
			out[i] = &res.Plans[i]
		}
		return out
	}
	var out []*core.EvaluatedPlan
	step := len(res.Plans) / n
	for i := 0; i < len(res.Plans); i += step {
		out = append(out, &res.Plans[i])
	}
	if base := res.Baseline(); base != nil {
		out = append(out, base)
	}
	return out
}

// TestParallelMatchesSequential is the property test for the pipelined
// engine: across the example programs, a sample of their plans, and both
// on-disk formats (DAF and LAB-tree), a Workers=4 run — with or without a
// sharing-aware buffer pool — must produce the same Result (ReadBytes/
// WriteBytes/ReadReqs/WriteReqs/PeakMemoryBytes/SimulatedIOSec) and
// bit-identical output matrices as Workers=1.
func TestParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name     string
		prog     *prog.Program
		subsets  [][]string
		maxPlans int
	}{
		{name: "addmul", prog: addMulProgram(3, 4, 2), maxPlans: 10},
		{name: "twomm", prog: ops.TwoMM(ops.TwoMMConfig{
			N1: 3, N2: 4, N3: 3, N4: 4,
			ABlock: ops.Dims{Rows: 4, Cols: 4}, BBlock: ops.Dims{Rows: 4, Cols: 4},
			DBlock: ops.Dims{Rows: 4, Cols: 4},
		}), maxPlans: 8},
		{name: "linreg", prog: ops.LinReg(ops.LinRegConfig{
			N: 4, XBlock: ops.Dims{Rows: 12, Cols: 5}, YBlock: ops.Dims{Rows: 12, Cols: 3},
		}), subsets: [][]string{
			{"s1RX→s2RX", "s1WU→s3RU", "s2WV→s4RV", "s3WW→s4RW", "s5WYh→s6RYh", "s6WEv→s7REv"},
		}, maxPlans: 4},
		{name: "userop", prog: useropProgram(), maxPlans: 6},
	}
	formats := []storage.Format{storage.FormatDAF, storage.FormatLABTree}
	for _, tc := range cases {
		tc := tc
		for _, format := range formats {
			format := format
			t.Run(tc.name+"/"+format.String(), func(t *testing.T) {
				t.Parallel()
				var res *core.Result
				var err error
				if tc.subsets != nil {
					res, err = core.OptimizeSubsets(tc.prog, core.Options{BindParams: true}, tc.subsets)
				} else {
					res, err = core.Optimize(tc.prog, core.Options{BindParams: true})
				}
				if err != nil {
					t.Fatal(err)
				}
				for _, pl := range planSample(res, tc.maxPlans) {
					seq, seqOut := runPlan(t, tc.prog, pl, runConfig{format: format, workers: 1})
					for _, workers := range []int{2, 4} {
						par, parOut := runPlan(t, tc.prog, pl, runConfig{format: format, workers: workers})
						assertIdentical(t, pl.Label, workers, seq, par, seqOut, parOut)
					}
					// Shards/replicas axes: striping the block store across
					// 2 or 4 shard directories — with or without 2-way
					// replication — must be invisible to execution: same
					// Result, bit-identical outputs, sequential and
					// parallel alike.
					for _, shards := range []int{2, 4} {
						for _, replicas := range []int{1, 2} {
							for _, workers := range []int{1, 4} {
								sh, shOut := runPlan(t, tc.prog, pl, runConfig{
									format: format, workers: workers, shards: shards, replicas: replicas,
								})
								label := fmt.Sprintf("%s+shards%d r%d", pl.Label, shards, replicas)
								assertIdentical(t, label, workers, seq, sh, seqOut, shOut)
							}
						}
					}
					// Degraded store: lose one shard dir mid-suite (after
					// the input fill) under 2-way replication — execution
					// must still be bit-identical, served by replica
					// fallbacks.
					{
						cfg := runConfig{format: format, workers: 4, shards: 2, replicas: 2}
						dirs := storage.ShardDirs(t.TempDir(), cfg.shards)
						sm, err := storage.OpenSharded(dirs,
							storage.ShardedOptions{Format: cfg.format, Replicas: cfg.replicas})
						if err != nil {
							t.Fatal(err)
						}
						if err := sm.CreateAll(tc.prog); err != nil {
							t.Fatal(err)
						}
						fillInputs(t, tc.prog, sm, 42)
						if err := sm.DegradeShard(1); err != nil {
							t.Fatal(err)
						}
						// The directory is really gone: fallbacks must come
						// from shard 0's replicas, not surviving fds.
						if err := os.RemoveAll(dirs[1]); err != nil {
							t.Fatal(err)
						}
						deg, degOut := runPlanOn(t, tc.prog, pl, sm, cfg)
						assertIdentical(t, pl.Label+"+degraded", cfg.workers, seq, deg, seqOut, degOut)
						if sm.DegradedReads() == 0 {
							t.Errorf("plan %s: degraded run issued no replica-fallback reads", pl.Label)
						}
						sm.Close()
					}
					// Remote shards: the same store striped over in-process
					// riotblockd servers (2-way replicated) must be
					// execution-invisible too — same Result, bit-identical
					// outputs. Then kill one server and run again: the dead
					// shard degrades automatically and replica fallbacks
					// keep the run bit-identical.
					{
						cfg := runConfig{format: format, workers: 4, shards: 2, replicas: 2}
						servers := make([]*blockd.Server, cfg.shards)
						addrs := make([]string, cfg.shards)
						for i := range servers {
							srv, err := blockd.New(t.TempDir(), blockd.Options{Format: format})
							if err != nil {
								t.Fatal(err)
							}
							if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
								t.Fatal(err)
							}
							defer srv.Close()
							servers[i] = srv
							addrs[i] = srv.Addr()
						}
						sm, err := storage.OpenSharded(addrs, storage.ShardedOptions{
							Format: cfg.format, Replicas: cfg.replicas,
							Remote: storage.RemoteOptions{Retries: 1, RetryBackoff: 5 * time.Millisecond},
						})
						if err != nil {
							t.Fatal(err)
						}
						if err := sm.CreateAll(tc.prog); err != nil {
							t.Fatal(err)
						}
						fillInputs(t, tc.prog, sm, 42)
						rem, remOut := runPlanOn(t, tc.prog, pl, sm, cfg)
						assertIdentical(t, pl.Label+"+remote", cfg.workers, seq, rem, seqOut, remOut)

						servers[1].Close() // kill one riotblockd mid-suite
						kill, killOut := runPlanOn(t, tc.prog, pl, sm, cfg)
						assertIdentical(t, pl.Label+"+remote-kill", cfg.workers, seq, kill, seqOut, killOut)
						if got := sm.Degraded(); len(got) != 1 || got[0] != 1 {
							t.Errorf("plan %s: Degraded() = %v after killing server 1, want [1]", pl.Label, got)
						}
						if sm.DegradedReads() == 0 {
							t.Errorf("plan %s: remote kill run issued no replica-fallback reads", pl.Label)
						}
						sm.Close()
					}
					// Pooled runs (sequential and parallel, each eviction
					// policy, unlimited and eviction-forcing capacities)
					// must be indistinguishable in Result and numerics
					// too.
					for _, workers := range []int{1, 4} {
						for _, pcfg := range []struct {
							policy string
							cap    int64
							shards int
						}{
							{buffer.PolicyLRU, 0, 0},
							{buffer.PolicyLRU, 4 << 10, 0},
							{buffer.PolicySegmented, 0, 0},
							{buffer.PolicySegmented, 4 << 10, 0},
							// The pool's keys carry array/coords only, so it
							// composes with a sharded store unchanged —
							// including mid-plan eviction write-back routed
							// to the right shard.
							{buffer.PolicyLRU, 4 << 10, 2},
						} {
							pooled, pooledOut := runPlan(t, tc.prog, pl, runConfig{
								format: format, workers: workers, shards: pcfg.shards,
								pool: true, poolPolicy: pcfg.policy, poolCap: pcfg.cap,
							})
							label := fmt.Sprintf("%s+pool-%s-cap%d-shards%d", pl.Label, pcfg.policy, pcfg.cap, pcfg.shards)
							assertIdentical(t, label, workers, seq, pooled, seqOut, pooledOut)
						}
					}
				}
			})
		}
	}
}

// The parallel engine must enforce the memory cap exactly like the
// sequential one: a cap below the plan's peak fails, at the peak it runs —
// and the prefetch window must degrade gracefully to zero headroom.
func TestParallelMemoryCap(t *testing.T) {
	p := addMulProgram(2, 3, 1)
	res, err := core.Optimize(p, core.Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	pl := &res.Plans[0]
	m, err := storage.NewManager(t.TempDir(), storage.FormatDAF)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.CreateAll(p); err != nil {
		t.Fatal(err)
	}
	fillInputs(t, p, m, 3)
	eng := &Engine{Store: m, Model: disk.PaperModel(), MemCapBytes: pl.Cost.PeakMemoryBytes - 1}
	if _, err := eng.RunOptions(pl.Timeline, Options{Workers: 4}); err == nil {
		t.Fatal("cap below the plan's peak must fail")
	}
	eng.MemCapBytes = pl.Cost.PeakMemoryBytes
	if _, err := eng.RunOptions(pl.Timeline, Options{Workers: 4}); err != nil {
		t.Fatalf("cap at the plan's peak must pass: %v", err)
	}
}

// A corrupted timeline (holds dropped under FromMemory actions) must fail
// the buffered-block invariant in the parallel engine too.
func TestParallelFromMemoryInvariant(t *testing.T) {
	p := addMulProgram(2, 2, 1)
	res, err := core.Optimize(p, core.Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	var withShares *core.EvaluatedPlan
	for i := range res.Plans {
		if len(res.Plans[i].Plan.Shares) > 0 {
			withShares = &res.Plans[i]
			break
		}
	}
	if withShares == nil {
		t.Skip("no sharing plan found")
	}
	bad := *withShares.Timeline
	bad.Holds = nil
	m, err := storage.NewManager(t.TempDir(), storage.FormatDAF)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.CreateAll(p); err != nil {
		t.Fatal(err)
	}
	fillInputs(t, p, m, 1)
	eng := &Engine{Store: m, Model: disk.PaperModel()}
	if _, err := eng.RunOptions(&bad, Options{Workers: 4}); err == nil {
		t.Fatal("corrupted timeline should fail the buffered-block invariant")
	}
}

// The dry-run accounting must agree with what the sequential interpreter
// physically measures, plan by plan — it is the bridge that keeps parallel
// Results equal to sequential ones.
func TestAccountRunMatchesSequential(t *testing.T) {
	p := addMulProgram(3, 4, 2)
	res, err := core.Optimize(p, core.Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range res.Plans {
		m, err := storage.NewManager(t.TempDir(), storage.FormatDAF)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.CreateAll(p); err != nil {
			t.Fatal(err)
		}
		fillInputs(t, p, m, 42)
		eng := &Engine{Store: m, Model: disk.PaperModel()}
		measured, err := eng.Run(pl.Timeline)
		if err != nil {
			t.Fatalf("plan %s: %v", pl.Label, err)
		}
		accounted, err := accountRun(pl.Timeline, 0)
		if err != nil {
			t.Fatalf("plan %s: accountRun: %v", pl.Label, err)
		}
		accounted.SimulatedIOSec = eng.Model.Time(accounted.ReadBytes, accounted.WriteBytes, accounted.ReadReqs, accounted.WriteReqs)
		if !reflect.DeepEqual(comparable(measured), comparable(accounted)) {
			t.Errorf("plan %s: accounting diverged\nmeasured:  %+v\naccounted: %+v",
				pl.Label, comparable(measured), comparable(accounted))
		}
		m.Close()
	}
}
