// pool.go hooks the execution engines into a sharing-aware block pool.
// When Engine.Pool is set, every physical block read and write goes through
// the pool instead of raw storage, so a block read by one query is a cache
// hit for the next (the cross-query extension of the paper's intra-program
// I/O sharing). The engines pin pool frames for exactly the plan's hold
// intervals: while a block sits in a plan's working set the pool may not
// evict it, and when the hold expires the frame returns to LRU order.
package exec

import (
	"riotshare/internal/blas"
)

// BlockPool is the block cache the engines acquire blocks through when
// Engine.Pool is set. Acquire returns a private copy of the block with one
// pin held on the underlying frame; Put installs a written block (the pool
// keeps its own copy, marked dirty for write-back) also with one pin held;
// Unpin releases n pins. *buffer.Pool and its aliasing sessions implement
// this interface.
type BlockPool interface {
	Acquire(array string, r, c int64) (*blas.Matrix, error)
	Put(array string, r, c int64, blk *blas.Matrix) error
	Unpin(array string, r, c int64, n int)
}

// readThrough serves one physical block read through the pool when present.
// The returned pinned flag tells the caller it owns one pool pin.
func (e *Engine) readThrough(array string, r, c int64) (m *blas.Matrix, pinned bool, err error) {
	if e.Pool != nil {
		m, err = e.Pool.Acquire(array, r, c)
		return m, err == nil, err
	}
	m, err = e.Store.ReadBlock(array, r, c)
	return m, false, err
}

// writeThrough performs one physical block write through the pool when
// present (deferred write-back) or directly to storage. As with
// readThrough, the caller owns one pool pin on success.
func (e *Engine) writeThrough(array string, r, c int64, blk *blas.Matrix) (pinned bool, err error) {
	if e.Pool != nil {
		err = e.Pool.Put(array, r, c, blk)
		return err == nil, err
	}
	return false, e.Store.WriteBlock(array, r, c, blk)
}

// pinSet tracks the pool pins one run owns, keyed by block key. It lets the
// engines drive pin lifetimes off the plan's hold intervals and guarantees
// nothing stays pinned after the run (releaseAll on every exit path).
type pinSet struct {
	pool BlockPool
	pins map[string]*pinInfo
}

type pinInfo struct {
	array string
	r, c  int64
	n     int
}

func newPinSet(pool BlockPool) *pinSet {
	if pool == nil {
		return nil
	}
	return &pinSet{pool: pool, pins: make(map[string]*pinInfo)}
}

// add records one owned pin for the block (acquired via readThrough or
// writeThrough).
func (ps *pinSet) add(key, array string, r, c int64) {
	if ps == nil {
		return
	}
	if pi, ok := ps.pins[key]; ok {
		pi.n++
		return
	}
	ps.pins[key] = &pinInfo{array: array, r: r, c: c, n: 1}
}

// drop releases owned pins for key down to keep.
func (ps *pinSet) drop(key string, keep int) {
	if ps == nil {
		return
	}
	pi, ok := ps.pins[key]
	if !ok || pi.n <= keep {
		return
	}
	ps.pool.Unpin(pi.array, pi.r, pi.c, pi.n-keep)
	pi.n = keep
	if pi.n == 0 {
		delete(ps.pins, key)
	}
}

// transfer moves count owned pins for key into another pinSet (the parallel
// engine hands event-local pins to interval-scoped ownership).
func (ps *pinSet) transfer(key string, to *pinSet) {
	if ps == nil || to == nil {
		return
	}
	pi, ok := ps.pins[key]
	if !ok {
		return
	}
	if t, dup := to.pins[key]; dup {
		t.n += pi.n
	} else {
		to.pins[key] = &pinInfo{array: pi.array, r: pi.r, c: pi.c, n: pi.n}
	}
	delete(ps.pins, key)
}

// releaseAll unpins everything still owned.
func (ps *pinSet) releaseAll() {
	if ps == nil {
		return
	}
	for key, pi := range ps.pins {
		if pi.n > 0 {
			ps.pool.Unpin(pi.array, pi.r, pi.c, pi.n)
		}
		delete(ps.pins, key)
	}
}
