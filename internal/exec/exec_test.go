package exec

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"riotshare/internal/blas"
	"riotshare/internal/codegen"
	"riotshare/internal/core"
	"riotshare/internal/disk"
	"riotshare/internal/ops"
	"riotshare/internal/prog"
	"riotshare/internal/storage"
)

// fillInputs writes random blocks for every array the program never writes
// (the program inputs), returning the full assembled matrices for
// reference computation.
func fillInputs(t *testing.T, p *prog.Program, m storage.Backend, seed int64) map[string]*blas.Matrix {
	t.Helper()
	written := map[string]bool{}
	for _, st := range p.Stmts {
		if w := st.WriteAccess(); w != nil {
			written[w.Array] = true
		}
	}
	rng := rand.New(rand.NewSource(seed))
	full := map[string]*blas.Matrix{}
	// Deterministic fill order so two fills with one seed agree (the
	// parallel-vs-sequential property tests compare across fills).
	names := make([]string, 0, len(p.Arrays))
	for name := range p.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		arr := p.Arrays[name]
		if written[name] {
			continue
		}
		fm := blas.NewMatrix(arr.BlockRows*arr.GridRows, arr.BlockCols*arr.GridCols)
		for i := range fm.Data {
			fm.Data[i] = rng.NormFloat64()
		}
		full[name] = fm
		for br := 0; br < arr.GridRows; br++ {
			for bc := 0; bc < arr.GridCols; bc++ {
				blk := blas.NewMatrix(arr.BlockRows, arr.BlockCols)
				for r := 0; r < arr.BlockRows; r++ {
					for c := 0; c < arr.BlockCols; c++ {
						blk.Set(r, c, fm.At(br*arr.BlockRows+r, bc*arr.BlockCols+c))
					}
				}
				if err := m.WriteBlock(name, int64(br), int64(bc), blk); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return full
}

// readFull assembles a stored array into one matrix.
func readFull(t *testing.T, p *prog.Program, m storage.Backend, name string) *blas.Matrix {
	t.Helper()
	arr := p.Arrays[name]
	fm := blas.NewMatrix(arr.BlockRows*arr.GridRows, arr.BlockCols*arr.GridCols)
	for br := 0; br < arr.GridRows; br++ {
		for bc := 0; bc < arr.GridCols; bc++ {
			blk, err := m.ReadBlock(name, int64(br), int64(bc))
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < arr.BlockRows; r++ {
				for c := 0; c < arr.BlockCols; c++ {
					fm.Set(br*arr.BlockRows+r, bc*arr.BlockCols+c, blk.At(r, c))
				}
			}
		}
	}
	return fm
}

func addMulProgram(n1, n2, n3 int64) *prog.Program {
	return ops.AddMul(ops.AddMulConfig{
		N1: n1, N2: n2, N3: n3,
		ABBlock: ops.Dims{Rows: 6, Cols: 5},
		DBlock:  ops.Dims{Rows: 5, Cols: 4},
	})
}

// Every plan of the add+mul program must produce the same, correct E — and
// its measured I/O volumes must equal the cost model's prediction byte for
// byte (the engine realizes exactly the planned sharing).
func TestAllPlansCorrectAndPredicted(t *testing.T) {
	p := addMulProgram(3, 4, 2)
	res, err := core.Optimize(p, core.Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plans) < 4 {
		t.Fatalf("expected several plans, got %d", len(res.Plans))
	}
	for _, pl := range res.Plans {
		m, err := storage.NewManager(t.TempDir(), storage.FormatDAF)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.CreateAll(p); err != nil {
			t.Fatal(err)
		}
		full := fillInputs(t, p, m, 42)
		eng := &Engine{Store: m, Model: disk.PaperModel()}
		r, err := eng.Run(pl.Timeline)
		if err != nil {
			t.Fatalf("plan %s: %v", pl.Label, err)
		}
		if r.ReadBytes != pl.Cost.ReadBytes || r.WriteBytes != pl.Cost.WriteBytes {
			t.Errorf("plan %s: measured I/O (%d,%d) != predicted (%d,%d)",
				pl.Label, r.ReadBytes, r.WriteBytes, pl.Cost.ReadBytes, pl.Cost.WriteBytes)
		}
		if r.ReadReqs != pl.Cost.ReadReqs || r.WriteReqs != pl.Cost.WriteReqs {
			t.Errorf("plan %s: request counts (%d,%d) != predicted (%d,%d)",
				pl.Label, r.ReadReqs, r.WriteReqs, pl.Cost.ReadReqs, pl.Cost.WriteReqs)
		}
		if r.PeakMemoryBytes != pl.Cost.PeakMemoryBytes {
			t.Errorf("plan %s: peak memory %d != predicted %d",
				pl.Label, r.PeakMemoryBytes, pl.Cost.PeakMemoryBytes)
		}
		// Reference: E = (A+B)·D on full matrices.
		sum := blas.NewMatrix(full["A"].Rows, full["A"].Cols)
		blas.Add(sum, full["A"], full["B"])
		want := blas.NewMatrix(full["A"].Rows, full["D"].Cols)
		blas.Gemm(want, sum, false, full["D"], false)
		got := readFull(t, p, m, "E")
		if d := blas.MaxAbsDiff(got, want); d > 1e-9 {
			t.Errorf("plan %s: E wrong by %g", pl.Label, d)
		}
		m.Close()
	}
}

// The best plan must beat the baseline on I/O while staying correct.
func TestBestPlanBeatsBaseline(t *testing.T) {
	p := addMulProgram(4, 4, 1)
	res, err := core.Optimize(p, core.Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	base := res.Baseline()
	best := &res.Plans[0]
	if base == nil {
		t.Fatal("no baseline plan")
	}
	if best.Cost.IOTimeSec >= base.Cost.IOTimeSec {
		t.Fatalf("best plan (%.1fs) does not beat baseline (%.1fs)",
			best.Cost.IOTimeSec, base.Cost.IOTimeSec)
	}
	t.Logf("baseline %.2fs -> best %.2fs (%s)", base.Cost.IOTimeSec, best.Cost.IOTimeSec, best.Label)
}

// Linear regression end-to-end on real data: β̂ must solve the normal
// equations and R must equal the residual sum of squares, for both the
// baseline and best plans, on both storage formats.
func TestLinRegEndToEnd(t *testing.T) {
	p := ops.LinReg(ops.LinRegConfig{
		N: 4, XBlock: ops.Dims{Rows: 12, Cols: 5}, YBlock: ops.Dims{Rows: 12, Cols: 3},
	})
	// Evaluate the baseline plus a representative best-style plan (share X
	// between the two upstream multiplications and pipeline the chain)
	// without enumerating the full combination space.
	res, err := core.OptimizeSubsets(p, core.Options{BindParams: true}, [][]string{
		{"s1RX→s2RX", "s1WU→s3RU", "s2WV→s4RV", "s3WW→s4RW", "s5WYh→s6RYh", "s6WEv→s7REv"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []storage.Format{storage.FormatDAF, storage.FormatLABTree} {
		for _, pl := range []*core.EvaluatedPlan{res.Baseline(), &res.Plans[0]} {
			m, err := storage.NewManager(t.TempDir(), format)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.CreateAll(p); err != nil {
				t.Fatal(err)
			}
			full := fillInputs(t, p, m, 7)
			eng := &Engine{Store: m, Model: disk.PaperModel()}
			r, err := eng.Run(pl.Timeline)
			if err != nil {
				t.Fatalf("%s plan %s: %v", format, pl.Label, err)
			}
			if r.ReadBytes != pl.Cost.ReadBytes || r.WriteBytes != pl.Cost.WriteBytes {
				t.Errorf("%s plan %s: measured I/O (%d,%d) != predicted (%d,%d)",
					format, pl.Label, r.ReadBytes, r.WriteBytes, pl.Cost.ReadBytes, pl.Cost.WriteBytes)
			}
			x, y := full["X"], full["Y"]
			// Reference: β̂ = (XᵀX)⁻¹XᵀY.
			xtX := blas.NewMatrix(x.Cols, x.Cols)
			blas.Gemm(xtX, x, true, x, false)
			inv := blas.NewMatrix(x.Cols, x.Cols)
			if err := blas.Inverse(inv, xtX); err != nil {
				t.Fatal(err)
			}
			xtY := blas.NewMatrix(x.Cols, y.Cols)
			blas.Gemm(xtY, x, true, y, false)
			wantB := blas.NewMatrix(x.Cols, y.Cols)
			blas.Gemm(wantB, inv, false, xtY, false)
			gotB := readFull(t, p, m, "Bh")
			if d := blas.MaxAbsDiff(gotB, wantB); d > 1e-6 {
				t.Errorf("%s plan %s: β̂ wrong by %g", format, pl.Label, d)
			}
			// Reference RSS per response column.
			yh := blas.NewMatrix(y.Rows, y.Cols)
			blas.Gemm(yh, x, false, wantB, false)
			gotR := readFull(t, p, m, "R")
			for j := 0; j < y.Cols; j++ {
				var want float64
				for i := 0; i < y.Rows; i++ {
					d := y.At(i, j) - yh.At(i, j)
					want += d * d
				}
				if math.Abs(gotR.At(0, j)-want) > 1e-6*(1+want) {
					t.Errorf("%s plan %s: RSS[%d] = %g want %g", format, pl.Label, j, gotR.At(0, j), want)
				}
			}
			m.Close()
		}
	}
}

// The memory cap must be enforced at execution time.
func TestMemoryCapEnforced(t *testing.T) {
	p := addMulProgram(2, 3, 1)
	res, err := core.Optimize(p, core.Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	pl := &res.Plans[0]
	m, err := storage.NewManager(t.TempDir(), storage.FormatDAF)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.CreateAll(p); err != nil {
		t.Fatal(err)
	}
	fillInputs(t, p, m, 3)
	eng := &Engine{Store: m, Model: disk.PaperModel(), MemCapBytes: pl.Cost.PeakMemoryBytes - 1}
	if _, err := eng.Run(pl.Timeline); err == nil {
		t.Fatal("cap below the plan's peak must fail")
	}
	eng.MemCapBytes = pl.Cost.PeakMemoryBytes
	if _, err := eng.Run(pl.Timeline); err != nil {
		t.Fatalf("cap at the plan's peak must pass: %v", err)
	}
}

// Dead transient writes: with n3=1 the best add+mul plan must never write C
// (footnote 8), and C's store stays empty.
func TestTransientDeadWriteElision(t *testing.T) {
	p := addMulProgram(3, 3, 1)
	res, err := core.Optimize(p, core.Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	best := &res.Plans[0]
	if got := best.Cost.PerArray["C"]; got.WriteBytes != 0 || got.ReadBytes != 0 {
		t.Fatalf("best plan should never touch C on disk (n3=1): %+v (plan %s)", got, best.Label)
	}
	// The baseline must still write and read C.
	base := res.Baseline()
	if got := base.Cost.PerArray["C"]; got.WriteBytes == 0 || got.ReadBytes == 0 {
		t.Fatalf("baseline should write and read C: %+v", got)
	}
}

// FromMemory without a buffered block is an engine invariant violation and
// must error, not silently read.
func TestFromMemoryInvariant(t *testing.T) {
	p := addMulProgram(2, 2, 1)
	res, err := core.Optimize(p, core.Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	var withShares *core.EvaluatedPlan
	for i := range res.Plans {
		if len(res.Plans[i].Plan.Shares) > 0 {
			withShares = &res.Plans[i]
			break
		}
	}
	if withShares == nil {
		t.Skip("no sharing plan found")
	}
	// Corrupt the timeline: drop all holds so FromMemory reads have no
	// buffered source.
	bad := *withShares.Timeline
	bad.Holds = nil
	hasFromMemory := false
	for _, acts := range bad.Actions {
		for _, a := range acts {
			if a == codegen.FromMemory {
				hasFromMemory = true
			}
		}
	}
	if !hasFromMemory {
		t.Skip("plan has no FromMemory actions")
	}
	m, err := storage.NewManager(t.TempDir(), storage.FormatDAF)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.CreateAll(p); err != nil {
		t.Fatal(err)
	}
	fillInputs(t, p, m, 1)
	eng := &Engine{Store: m, Model: disk.PaperModel()}
	if _, err := eng.Run(&bad); err == nil {
		t.Fatal("corrupted timeline should fail the buffered-block invariant")
	}
}
