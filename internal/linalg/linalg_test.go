package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGcd(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0}, {0, 5, 5}, {5, 0, 5}, {12, 18, 6}, {-12, 18, 6},
		{12, -18, 6}, {-12, -18, 6}, {7, 13, 1}, {1, 1, 1},
	}
	for _, c := range cases {
		if got := Gcd(c.a, c.b); got != c.want {
			t.Errorf("Gcd(%d,%d)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLcm(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 5, 0}, {4, 6, 12}, {3, 5, 15}, {7, 7, 7},
	}
	for _, c := range cases {
		if got := Lcm(c.a, c.b); got != c.want {
			t.Errorf("Lcm(%d,%d)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGcdProperties(t *testing.T) {
	f := func(a, b int32) bool {
		g := Gcd(int64(a), int64(b))
		if a == 0 && b == 0 {
			return g == 0
		}
		if g <= 0 {
			return false
		}
		return int64(a)%g == 0 && int64(b)%g == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeVec(t *testing.T) {
	v := []int64{6, -9, 12}
	NormalizeVec(v)
	want := []int64{2, -3, 4}
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("NormalizeVec got %v want %v", v, want)
		}
	}
	z := []int64{0, 0}
	NormalizeVec(z)
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("NormalizeVec broke zero vector")
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]int64{1, 2, 3}, []int64{4, -5, 6}); got != 12 {
		t.Fatalf("Dot got %d want 12", got)
	}
}

func TestVecOps(t *testing.T) {
	a := []int64{1, 2}
	b := []int64{3, 4}
	if s := AddVec(a, b); s[0] != 4 || s[1] != 6 {
		t.Fatal("AddVec wrong")
	}
	if s := SubVec(a, b); s[0] != -2 || s[1] != -2 {
		t.Fatal("SubVec wrong")
	}
	if s := ScaleVec(3, a); s[0] != 3 || s[1] != 6 {
		t.Fatal("ScaleVec wrong")
	}
	if !IsZeroVec([]int64{0, 0}) || IsZeroVec([]int64{0, 1}) {
		t.Fatal("IsZeroVec wrong")
	}
}

func TestRank(t *testing.T) {
	cases := []struct {
		rows [][]int64
		want int
	}{
		{nil, 0},
		{[][]int64{{0, 0}}, 0},
		{[][]int64{{1, 0}, {0, 1}}, 2},
		{[][]int64{{1, 2}, {2, 4}}, 1},
		{[][]int64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}, 2},
		{[][]int64{{2, 0, 0}, {0, 3, 0}, {0, 0, 5}}, 3},
		{[][]int64{{1, 1}, {1, -1}, {2, 0}}, 2},
	}
	for i, c := range cases {
		if got := Rank(c.rows); got != c.want {
			t.Errorf("case %d: Rank=%d want %d", i, got, c.want)
		}
	}
}

func TestNullSpaceBasis(t *testing.T) {
	// Null space of [1 1 1] is 2-dimensional; every basis vector must be
	// orthogonal to the row.
	rows := [][]int64{{1, 1, 1}}
	basis := NullSpaceBasis(rows, 3)
	if len(basis) != 2 {
		t.Fatalf("basis size %d want 2", len(basis))
	}
	for _, v := range basis {
		if Dot(v, rows[0]) != 0 {
			t.Errorf("basis vector %v not orthogonal", v)
		}
	}
	if Rank(basis) != 2 {
		t.Error("basis not independent")
	}
}

func TestNullSpaceBasisEmptyRows(t *testing.T) {
	basis := NullSpaceBasis(nil, 3)
	if len(basis) != 3 || Rank(basis) != 3 {
		t.Fatalf("expected standard basis, got %v", basis)
	}
}

func TestNullSpaceBasisFullRank(t *testing.T) {
	rows := [][]int64{{1, 0}, {0, 1}}
	if basis := NullSpaceBasis(rows, 2); len(basis) != 0 {
		t.Fatalf("full-rank matrix should have trivial null space, got %v", basis)
	}
}

// Property: rank(rows) + dim(nullspace) == cols (rank-nullity).
func TestRankNullityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		rows := rng.Intn(5)
		cols := 1 + rng.Intn(5)
		m := make([][]int64, rows)
		for i := range m {
			m[i] = make([]int64, cols)
			for j := range m[i] {
				m[i][j] = int64(rng.Intn(7) - 3)
			}
		}
		r := Rank(m)
		ns := NullSpaceBasis(m, cols)
		if r+len(ns) != cols {
			t.Fatalf("rank-nullity violated: rank=%d null=%d cols=%d m=%v", r, len(ns), cols, m)
		}
		for _, v := range ns {
			for _, row := range m {
				if Dot(row, v) != 0 {
					t.Fatalf("null vector %v not orthogonal to %v", v, row)
				}
			}
		}
	}
}

func TestInSpan(t *testing.T) {
	rows := [][]int64{{1, 0, 1}, {0, 1, 1}}
	if !InSpan([]int64{1, 1, 2}, rows) {
		t.Error("(1,1,2) should be in span")
	}
	if InSpan([]int64{0, 0, 1}, rows) {
		t.Error("(0,0,1) should not be in span")
	}
	if !InSpan([]int64{0, 0, 0}, nil) {
		t.Error("zero vector is in every span")
	}
}

func TestSolveExact(t *testing.T) {
	// x + y = 3; x - y = 1 => x=2, y=1.
	a := [][]int64{{1, 1}, {1, -1}}
	b := []int64{3, 1}
	x, unique, ok := SolveExact(a, b)
	if !ok || !unique {
		t.Fatalf("expected unique solution, ok=%v unique=%v", ok, unique)
	}
	if x[0].RatString() != "2" || x[1].RatString() != "1" {
		t.Fatalf("got %v,%v want 2,1", x[0], x[1])
	}
}

func TestSolveExactInconsistent(t *testing.T) {
	a := [][]int64{{1, 1}, {2, 2}}
	b := []int64{1, 3}
	if _, _, ok := SolveExact(a, b); ok {
		t.Fatal("inconsistent system should fail")
	}
}

func TestSolveExactUnderdetermined(t *testing.T) {
	a := [][]int64{{1, 1}}
	b := []int64{2}
	x, unique, ok := SolveExact(a, b)
	if !ok || unique {
		t.Fatalf("expected non-unique solution, ok=%v unique=%v", ok, unique)
	}
	// x[0] + x[1] must equal 2.
	sum := x[0].Num().Int64()*x[1].Denom().Int64() + x[1].Num().Int64()*x[0].Denom().Int64()
	if x[0].Denom().Int64() != 1 || x[1].Denom().Int64() != 1 {
		t.Skip("fractional solution; checked via Rat arithmetic elsewhere")
	}
	if sum != 2*x[0].Denom().Int64()*x[1].Denom().Int64() {
		t.Fatalf("solution does not satisfy system: %v %v", x[0], x[1])
	}
}

func TestRankRegression(t *testing.T) {
	// Rows from an actual schedule prefix (loop-var parts).
	rows := [][]int64{{0, 0, 0}, {0, -1, 0}, {0, 0, 1}}
	if got := Rank(rows); got != 2 {
		t.Fatalf("Rank=%d want 2", got)
	}
}
