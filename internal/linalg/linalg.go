// Package linalg provides exact integer and rational linear algebra used by
// the polyhedral layer: ranks, null spaces, row spans, and small utilities on
// integer vectors. All computations are exact (math/big rationals internally,
// integer vectors externally), because polyhedral reasoning cannot tolerate
// floating-point error.
package linalg

import (
	"fmt"
	"math/big"
)

// Gcd returns the non-negative greatest common divisor of a and b.
// Gcd(0, 0) == 0.
func Gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Lcm returns the least common multiple of a and b, or 0 if either is 0.
func Lcm(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	g := Gcd(a, b)
	return a / g * b
}

// GcdVec returns the gcd of all entries of v (non-negative; 0 for the zero
// vector).
func GcdVec(v []int64) int64 {
	var g int64
	for _, x := range v {
		g = Gcd(g, x)
	}
	return g
}

// NormalizeVec divides v in place by the gcd of its entries, if nonzero.
// It returns v for chaining.
func NormalizeVec(v []int64) []int64 {
	g := GcdVec(v)
	if g > 1 {
		for i := range v {
			v[i] /= g
		}
	}
	return v
}

// Dot returns the inner product of two equal-length integer vectors.
func Dot(a, b []int64) int64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s int64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// IsZeroVec reports whether every entry of v is zero.
func IsZeroVec(v []int64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// CloneVec returns a copy of v.
func CloneVec(v []int64) []int64 {
	c := make([]int64, len(v))
	copy(c, v)
	return c
}

// ScaleVec returns k*v as a new vector.
func ScaleVec(k int64, v []int64) []int64 {
	c := make([]int64, len(v))
	for i, x := range v {
		c[i] = k * x
	}
	return c
}

// AddVec returns a+b as a new vector.
func AddVec(a, b []int64) []int64 {
	if len(a) != len(b) {
		panic("linalg: AddVec length mismatch")
	}
	c := make([]int64, len(a))
	for i := range a {
		c[i] = a[i] + b[i]
	}
	return c
}

// SubVec returns a-b as a new vector.
func SubVec(a, b []int64) []int64 {
	if len(a) != len(b) {
		panic("linalg: SubVec length mismatch")
	}
	c := make([]int64, len(a))
	for i := range a {
		c[i] = a[i] - b[i]
	}
	return c
}

// ratMat is a dense matrix of rationals used internally for elimination.
type ratMat struct {
	rows, cols int
	a          []*big.Rat // row-major
}

func newRatMat(rows [][]int64) *ratMat {
	if len(rows) == 0 {
		return &ratMat{}
	}
	m := &ratMat{rows: len(rows), cols: len(rows[0])}
	m.a = make([]*big.Rat, m.rows*m.cols)
	for i, r := range rows {
		if len(r) != m.cols {
			panic("linalg: ragged matrix")
		}
		for j, x := range r {
			m.a[i*m.cols+j] = new(big.Rat).SetInt64(x)
		}
	}
	return m
}

func (m *ratMat) at(i, j int) *big.Rat { return m.a[i*m.cols+j] }

// rowEchelon performs in-place Gauss-Jordan elimination and returns, for each
// pivot, the column it lands in (in order). Rows of m are modified.
func (m *ratMat) rowEchelon() (pivotCols []int) {
	if m.rows == 0 {
		return nil
	}
	row := 0
	for col := 0; col < m.cols && row < m.rows; col++ {
		// Find pivot.
		p := -1
		for i := row; i < m.rows; i++ {
			if m.at(i, col).Sign() != 0 {
				p = i
				break
			}
		}
		if p < 0 {
			continue
		}
		// Swap into place.
		if p != row {
			for j := 0; j < m.cols; j++ {
				m.a[p*m.cols+j], m.a[row*m.cols+j] = m.a[row*m.cols+j], m.a[p*m.cols+j]
			}
		}
		// Scale pivot row to make pivot 1.
		inv := new(big.Rat).Inv(m.at(row, col))
		for j := col; j < m.cols; j++ {
			m.at(row, j).Mul(m.at(row, j), inv)
		}
		// Eliminate the column everywhere else (Gauss-Jordan: full reduction).
		for i := 0; i < m.rows; i++ {
			if i == row || m.at(i, col).Sign() == 0 {
				continue
			}
			f := new(big.Rat).Set(m.at(i, col))
			for j := col; j < m.cols; j++ {
				t := new(big.Rat).Mul(f, m.at(row, j))
				m.at(i, j).Sub(m.at(i, j), t)
			}
		}
		pivotCols = append(pivotCols, col)
		row++
	}
	return pivotCols
}

// Rank returns the rank of the matrix whose rows are the given integer
// vectors.
func Rank(rows [][]int64) int {
	m := newRatMat(rows)
	return len(m.rowEchelon())
}

// NullSpaceBasis returns an integer basis of the (right) null space of the
// matrix whose rows are the given vectors: all v with rows·v = 0. Each basis
// vector is scaled to integers and gcd-normalized. cols is required so the
// dimension is known even when rows is empty (in which case the basis is the
// standard basis of Z^cols).
func NullSpaceBasis(rows [][]int64, cols int) [][]int64 {
	for _, r := range rows {
		if len(r) != cols {
			panic("linalg: NullSpaceBasis dimension mismatch")
		}
	}
	if len(rows) == 0 {
		basis := make([][]int64, cols)
		for i := range basis {
			basis[i] = make([]int64, cols)
			basis[i][i] = 1
		}
		return basis
	}
	m := newRatMat(rows)
	pivotCols := m.rowEchelon()
	isPivot := make([]bool, cols)
	for _, c := range pivotCols {
		isPivot[c] = true
	}
	var basis [][]int64
	for free := 0; free < cols; free++ {
		if isPivot[free] {
			continue
		}
		// Solution with x[free]=1, other free vars 0; pivot vars determined by
		// the reduced rows: x[pivotCols[i]] = -m[i][free].
		vec := make([]*big.Rat, cols)
		for j := range vec {
			vec[j] = new(big.Rat)
		}
		vec[free].SetInt64(1)
		for i, pc := range pivotCols {
			vec[pc].Neg(m.at(i, free))
		}
		basis = append(basis, ratVecToInt(vec))
	}
	return basis
}

// ratVecToInt clears denominators (multiplying by the LCM) and gcd-normalizes.
func ratVecToInt(v []*big.Rat) []int64 {
	l := big.NewInt(1)
	for _, x := range v {
		d := x.Denom()
		g := new(big.Int).GCD(nil, nil, l, d)
		l.Div(l, g).Mul(l, d)
	}
	out := make([]int64, len(v))
	for i, x := range v {
		n := new(big.Int).Mul(x.Num(), l)
		n.Div(n, x.Denom())
		if !n.IsInt64() {
			panic("linalg: coefficient overflow clearing denominators")
		}
		out[i] = n.Int64()
	}
	NormalizeVec(out)
	return out
}

// InSpan reports whether v lies in the linear span of the given rows.
func InSpan(v []int64, rows [][]int64) bool {
	if IsZeroVec(v) {
		return true
	}
	r0 := Rank(rows)
	aug := make([][]int64, 0, len(rows)+1)
	aug = append(aug, rows...)
	aug = append(aug, v)
	return Rank(aug) == r0
}

// SolveExact solves A x = b exactly over the rationals, where A's rows are
// the given integer vectors. It returns the solution scaled to a rational
// pair (num, den) per coordinate via big.Rat, or ok=false if the system is
// inconsistent or underdetermined (multiple solutions: the minimal-index
// solution with free variables set to zero is returned with ok=true and
// unique=false).
func SolveExact(a [][]int64, b []int64) (x []*big.Rat, unique, ok bool) {
	if len(a) != len(b) {
		panic("linalg: SolveExact dimension mismatch")
	}
	if len(a) == 0 {
		return nil, false, false
	}
	cols := len(a[0])
	aug := make([][]int64, len(a))
	for i := range a {
		row := make([]int64, cols+1)
		copy(row, a[i])
		row[cols] = b[i]
		aug[i] = row
	}
	m := newRatMat(aug)
	pivots := m.rowEchelon()
	// Inconsistent if a pivot lands in the augmented column.
	for _, p := range pivots {
		if p == cols {
			return nil, false, false
		}
	}
	x = make([]*big.Rat, cols)
	for j := range x {
		x[j] = new(big.Rat)
	}
	for i, p := range pivots {
		x[p].Set(m.at(i, cols))
	}
	return x, len(pivots) == cols, true
}
