package baseline

import (
	"math/rand"
	"testing"

	"riotshare/internal/blas"
	"riotshare/internal/core"
	"riotshare/internal/disk"
	"riotshare/internal/ops"
	"riotshare/internal/prog"
	"riotshare/internal/storage"
)

func smallAddMul() *prog.Program {
	return ops.AddMul(ops.AddMulConfig{
		N1: 4, N2: 4, N3: 1,
		ABBlock: ops.Dims{Rows: 6, Cols: 5},
		DBlock:  ops.Dims{Rows: 5, Cols: 4},
	})
}

func fill(t *testing.T, p *prog.Program, m *storage.Manager, seed int64) map[string]*blas.Matrix {
	t.Helper()
	written := map[string]bool{}
	for _, st := range p.Stmts {
		if w := st.WriteAccess(); w != nil {
			written[w.Array] = true
		}
	}
	rng := rand.New(rand.NewSource(seed))
	full := map[string]*blas.Matrix{}
	for name, arr := range p.Arrays {
		if written[name] {
			continue
		}
		fm := blas.NewMatrix(arr.BlockRows*arr.GridRows, arr.BlockCols*arr.GridCols)
		for i := range fm.Data {
			fm.Data[i] = rng.NormFloat64()
		}
		full[name] = fm
		for br := 0; br < arr.GridRows; br++ {
			for bc := 0; bc < arr.GridCols; bc++ {
				blk := blas.NewMatrix(arr.BlockRows, arr.BlockCols)
				for r := 0; r < arr.BlockRows; r++ {
					for c := 0; c < arr.BlockCols; c++ {
						blk.Set(r, c, fm.At(br*arr.BlockRows+r, bc*arr.BlockCols+c))
					}
				}
				if err := m.WriteBlock(name, int64(br), int64(bc), blk); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return full
}

func TestOperatorAtATimeBetween(t *testing.T) {
	p := smallAddMul()
	opt := core.Options{BindParams: true}
	res, err := core.Optimize(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	best := &res.Plans[0]
	none, err := NoSharing(smallAddMul(), opt)
	if err != nil {
		t.Fatal(err)
	}
	opAtATime, err := OperatorAtATime(smallAddMul(), opt)
	if err != nil {
		t.Fatal(err)
	}
	// The Matlab-like strategy sits between no sharing and the best plan.
	if opAtATime.Cost.IOTimeSec > none.Cost.IOTimeSec {
		t.Errorf("operator-at-a-time (%.1f) should not exceed no-sharing (%.1f)",
			opAtATime.Cost.IOTimeSec, none.Cost.IOTimeSec)
	}
	if best.Cost.IOTimeSec > opAtATime.Cost.IOTimeSec {
		t.Errorf("cross-operator sharing (%.1f) should beat per-operator (%.1f)",
			best.Cost.IOTimeSec, opAtATime.Cost.IOTimeSec)
	}
}

// The LRU buffer pool, given exactly the best plan's memory, must do more
// I/O than the explicitly-controlled plan — §2's argument that the buffer
// pool mechanism is opportunistic and timing-sensitive — while still
// producing correct results.
func TestLRUWorseThanExplicitControl(t *testing.T) {
	p := smallAddMul()
	res, err := core.Optimize(p, core.Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	best := &res.Plans[0]
	base := res.Baseline()

	m, err := storage.NewManager(t.TempDir(), storage.FormatDAF)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.CreateAll(p); err != nil {
		t.Fatal(err)
	}
	full := fill(t, p, m, 5)

	lru := &LRUEngine{Store: m, Model: disk.PaperModel(), CapBytes: best.Cost.PeakMemoryBytes}
	r, err := lru.Run(base.Timeline)
	if err != nil {
		t.Fatal(err)
	}
	total := r.ReadBytes + r.WriteBytes
	bestTotal := best.Cost.ReadBytes + best.Cost.WriteBytes
	if total <= bestTotal {
		t.Errorf("LRU with the same memory (%d bytes I/O) should lose to the optimized plan (%d)",
			total, bestTotal)
	}
	// Correctness: E = (A+B)·D.
	sum := blas.NewMatrix(full["A"].Rows, full["A"].Cols)
	blas.Add(sum, full["A"], full["B"])
	want := blas.NewMatrix(full["A"].Rows, full["D"].Cols)
	blas.Gemm(want, sum, false, full["D"], false)
	arr := p.Arrays["E"]
	for br := 0; br < arr.GridRows; br++ {
		for bc := 0; bc < arr.GridCols; bc++ {
			blk, err := m.ReadBlock("E", int64(br), int64(bc))
			if err != nil {
				t.Fatal(err)
			}
			for rr := 0; rr < arr.BlockRows; rr++ {
				for cc := 0; cc < arr.BlockCols; cc++ {
					w := want.At(br*arr.BlockRows+rr, bc*arr.BlockCols+cc)
					if d := blk.At(rr, cc) - w; d > 1e-9 || d < -1e-9 {
						t.Fatalf("LRU run produced wrong E at block (%d,%d)", br, bc)
					}
				}
			}
		}
	}
	t.Logf("LRU I/O %.1fs vs optimized %.1fs vs no-sharing %.1fs",
		r.SimulatedIOSec, best.Cost.IOTimeSec, base.Cost.IOTimeSec)
}

// LRU peak memory must respect the cap.
func TestLRURespectsCap(t *testing.T) {
	p := smallAddMul()
	res, err := core.OptimizeSubsets(p, core.Options{BindParams: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := res.Baseline()
	m, err := storage.NewManager(t.TempDir(), storage.FormatDAF)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.CreateAll(p); err != nil {
		t.Fatal(err)
	}
	fill(t, p, m, 6)
	cap := int64(3 * 6 * 5 * 8) // three blocks
	lru := &LRUEngine{Store: m, Model: disk.PaperModel(), CapBytes: cap}
	r, err := lru.Run(base.Timeline)
	if err != nil {
		t.Fatal(err)
	}
	if r.PeakMemoryBytes > cap {
		t.Fatalf("LRU exceeded cap: %d > %d", r.PeakMemoryBytes, cap)
	}
}
