// Package baseline provides the comparison engines of §6.1 (DESIGN.md
// substitution S5): a Matlab-like operator-at-a-time executor (each
// operator well-blocked in isolation, intermediates materialized, no
// cross-operator sharing), a SciDB-like chunk-at-a-time executor (no
// sharing at all, naive kernels), and an LRU buffer-pool engine that
// executes the original order with opportunistic caching under a memory
// cap — the "low-level, opportunistic" database approach §2 contrasts with
// RIOTShare's principled optimization.
package baseline

import (
	"container/list"
	"fmt"

	"riotshare/internal/blas"
	"riotshare/internal/codegen"
	"riotshare/internal/core"
	"riotshare/internal/disk"
	"riotshare/internal/exec"
	"riotshare/internal/prog"
	"riotshare/internal/storage"
)

// OperatorAtATime evaluates the Matlab-like strategy: every statement is
// optimized in isolation (its feasible self sharing opportunities —
// accumulator kept in memory, operand reuse within the operator) but no
// sharing crosses operators. Returns the evaluated plan.
func OperatorAtATime(p *prog.Program, opt core.Options) (*core.EvaluatedPlan, error) {
	res, err := core.Optimize(p, opt)
	if err != nil {
		return nil, err
	}
	// Pick the cheapest plan whose shares are all self opportunities.
	var best *core.EvaluatedPlan
	for i := range res.Plans {
		pl := &res.Plans[i]
		allSelf := true
		for _, idx := range pl.Plan.Shares {
			if !res.Analysis.Shares[idx].IsSelf() {
				allSelf = false
				break
			}
		}
		if !allSelf {
			continue
		}
		if opt.MemCapBytes > 0 && pl.Cost.PeakMemoryBytes > opt.MemCapBytes {
			continue
		}
		if best == nil || pl.Cost.IOTimeSec < best.Cost.IOTimeSec {
			best = pl
		}
	}
	if best == nil {
		return nil, fmt.Errorf("baseline: no operator-at-a-time plan fits")
	}
	return best, nil
}

// NoSharing evaluates the SciDB-like strategy: the unmodified original
// execution with every intermediate materialized and no I/O sharing (the
// paper's Plan 0).
func NoSharing(p *prog.Program, opt core.Options) (*core.EvaluatedPlan, error) {
	res, err := core.OptimizeSubsets(p, opt, nil)
	if err != nil {
		return nil, err
	}
	return res.Baseline(), nil
}

// LRUEngine executes a timeline's statement order while ignoring its
// sharing actions, relying purely on an LRU buffer pool with a byte cap —
// what a conventional buffer manager would achieve with the same memory.
type LRUEngine struct {
	Store    *storage.Manager
	Model    disk.Model
	CapBytes int64
}

type lruEntry struct {
	key   string
	blk   *blas.Matrix
	bytes int64
	dirty bool
	array string
	r, c  int64
}

// Run executes the timeline with LRU caching. Sharing actions in the
// timeline are ignored: every read goes through the pool; hits are free,
// misses do I/O; dirty blocks write back on eviction and at the end.
func (e *LRUEngine) Run(tl *codegen.Timeline) (exec.Result, error) {
	var res exec.Result
	p := tl.Prog
	lru := list.New() // front = most recent
	byKey := make(map[string]*list.Element)
	var used int64

	evictTo := func(budget int64) error {
		for used > budget && lru.Len() > 0 {
			el := lru.Back()
			ent := el.Value.(*lruEntry)
			if ent.dirty {
				if err := e.Store.WriteBlock(ent.array, ent.r, ent.c, ent.blk); err != nil {
					return err
				}
				res.WriteBytes += ent.bytes
				res.WriteReqs++
			}
			used -= ent.bytes
			lru.Remove(el)
			delete(byKey, ent.key)
		}
		return nil
	}
	touch := func(key string) (*lruEntry, bool) {
		if el, ok := byKey[key]; ok {
			lru.MoveToFront(el)
			return el.Value.(*lruEntry), true
		}
		return nil, false
	}
	insert := func(ent *lruEntry) error {
		if el, ok := byKey[ent.key]; ok {
			old := el.Value.(*lruEntry)
			used -= old.bytes
			lru.Remove(el)
			delete(byKey, ent.key)
		}
		if err := evictTo(e.CapBytes - ent.bytes); err != nil {
			return err
		}
		byKey[ent.key] = lru.PushFront(ent)
		used += ent.bytes
		if used > res.PeakMemoryBytes {
			res.PeakMemoryBytes = used
		}
		return nil
	}

	for i, ev := range tl.Events {
		st := ev.St
		var in []*blas.Matrix
		var accRead *blas.Matrix
		var outBlk *blas.Matrix
		var writeAcc *prog.Access
		for ai := range st.Accesses {
			ac := &st.Accesses[ai]
			if tl.Actions[i][ai] == codegen.Inactive {
				continue
			}
			arr := p.Arrays[ac.Array]
			r, c := ac.BlockAt(ev.X, tl.Params)
			key := codegen.BlockKey(ac.Array, r, c)
			if ac.Type == prog.Write {
				writeAcc = ac
				if ent, hit := touch(key); hit {
					outBlk = ent.blk
				} else {
					outBlk = blas.NewMatrix(arr.BlockRows, arr.BlockCols)
				}
				continue
			}
			var m *blas.Matrix
			if ent, hit := touch(key); hit {
				m = ent.blk
			} else {
				var err error
				m, err = e.Store.ReadBlock(ac.Array, r, c)
				if err != nil {
					return res, err
				}
				res.ReadBytes += arr.LogicalBlockBytes
				res.ReadReqs++
				if err := insert(&lruEntry{key: key, blk: m, bytes: arr.LogicalBlockBytes, array: ac.Array, r: r, c: c}); err != nil {
					return res, err
				}
			}
			if w := st.WriteAccess(); w != nil && w.Array == ac.Array {
				accRead = m
			} else {
				in = append(in, m)
			}
		}
		if err := exec.RunKernel(st, in, accRead, outBlk); err != nil {
			return res, fmt.Errorf("baseline: %s%v: %w", st.Name, ev.X, err)
		}
		if writeAcc != nil {
			arr := p.Arrays[writeAcc.Array]
			r, c := writeAcc.BlockAt(ev.X, tl.Params)
			key := codegen.BlockKey(writeAcc.Array, r, c)
			// Write-back caching: mark dirty, defer the physical write.
			if err := insert(&lruEntry{key: key, blk: outBlk, bytes: arr.LogicalBlockBytes, dirty: true, array: writeAcc.Array, r: r, c: c}); err != nil {
				return res, err
			}
		}
	}
	// Flush dirty blocks.
	for el := lru.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*lruEntry)
		if ent.dirty {
			if err := e.Store.WriteBlock(ent.array, ent.r, ent.c, ent.blk); err != nil {
				return res, err
			}
			res.WriteBytes += ent.bytes
			res.WriteReqs++
		}
	}
	res.SimulatedIOSec = e.Model.Time(res.ReadBytes, res.WriteBytes, res.ReadReqs, res.WriteReqs)
	return res, nil
}
