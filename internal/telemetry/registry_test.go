package telemetry

import (
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("riot_test_total", "test counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same handle.
	if r.Counter("riot_test_total", "test counter") != c {
		t.Fatal("re-registration returned a different handle")
	}
	g := r.Gauge("riot_test_gauge", "test gauge", L("tenant", "a"))
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x", "", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry should hand out nil handles")
	}
	// None of these may panic.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Quantile(0.5) != 0 || c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil handles should read as zero")
	}
	r.Collect(func(*Emit) { t.Fatal("collector must not run") })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("riot_test_seconds", "test", []float64{0.01, 0.1, 1, 10})
	// 100 samples spread evenly through the 0–0.01 bucket, 100 through
	// the 0.01–0.1 bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.005)
		h.Observe(0.05)
	}
	if got := h.Count(); got != 200 {
		t.Fatalf("count = %d, want 200", got)
	}
	if got, want := h.Sum(), 100*0.005+100*0.05; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// p50 lands exactly at the first bucket's upper bound.
	if got := h.Quantile(0.5); math.Abs(got-0.01) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.01", got)
	}
	// p75 is halfway through the second bucket: 0.01 + 0.5*(0.1-0.01).
	if got := h.Quantile(0.75); math.Abs(got-0.055) > 1e-9 {
		t.Fatalf("p75 = %v, want 0.055", got)
	}
	// Values past the last finite bucket clamp to it.
	h2 := r.Histogram("riot_test_clamp_seconds", "test", []float64{1})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 1 {
		t.Fatalf("overflow quantile = %v, want clamp to 1", got)
	}
	// Empty histogram.
	h3 := r.Histogram("riot_test_empty_seconds", "test", nil)
	if got := h3.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

// TestRegistryConcurrency exercises parallel registration and writes
// against concurrent scrapes; meaningful under -race.
func TestRegistryConcurrency(t *testing.T) {
	r := New()
	r.Collect(func(e *Emit) {
		e.Gauge("riot_test_collected", "from collector", 1, L("src", "test"))
	})
	var wg sync.WaitGroup
	const workers = 8
	const iters = 500
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			tenant := string(rune('a' + w%4))
			for i := 0; i < iters; i++ {
				r.Counter("riot_test_ops_total", "ops", L("tenant", tenant)).Inc()
				r.Gauge("riot_test_depth", "depth", L("tenant", tenant)).Set(float64(i))
				r.Histogram("riot_test_lat_seconds", "lat", nil, L("tenant", tenant)).Observe(float64(i) / 1000)
			}
		}()
	}
	// Scrape concurrently with the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	// Snapshot consistency: total ops across tenants equals all writes.
	var total int64
	for _, tenant := range []string{"a", "b", "c", "d"} {
		total += r.Counter("riot_test_ops_total", "ops", L("tenant", tenant)).Value()
	}
	if total != workers*iters {
		t.Fatalf("total ops = %d, want %d", total, workers*iters)
	}
}

// TestScrapeDuringRegistration drives parallel WritePrometheus calls
// against registrations that keep introducing never-seen label
// values, so scrapes overlap series-map growth (including rehashes).
// The scrapers must run in their own goroutines: a single-threaded
// scrape loop re-acquires the registry mutex each iteration, which
// publishes its unlocked reads to the writers and hides the race from
// the detector. This shape crashes the pre-snapshot exposition path
// with "concurrent map read and map write".
func TestScrapeDuringRegistration(t *testing.T) {
	r := New()
	// Writers register a bounded but large stream of fresh label
	// values; scrapers keep scraping until every writer is done, so
	// series-map growth always overlaps exposition.
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				v := string(rune('a'+w)) + "-" + strconv.Itoa(i)
				r.Counter("riot_test_grow_total", "grow", L("tenant", v)).Inc()
				r.Histogram("riot_test_grow_seconds", "grow", nil, L("tenant", v)).Observe(0.01)
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()
	var sg sync.WaitGroup
	for g := 0; g < 2; g++ {
		sg.Add(1)
		go func() {
			defer sg.Done()
			for {
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
					return
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	sg.Wait()
}

// TestLabelKeyCanonical pins the series-identity rules: label order
// must not matter, and separator characters in values must not let
// two different label sets collide.
func TestLabelKeyCanonical(t *testing.T) {
	r := New()
	c1 := r.Counter("riot_test_order_total", "order", L("a", "1"), L("b", "2"))
	c2 := r.Counter("riot_test_order_total", "order", L("b", "2"), L("a", "1"))
	if c1 != c2 {
		t.Fatal("label order created two series for the same label set")
	}
	// {a="1,b=2"} must not collide with {a="1", b="2"}.
	c3 := r.Counter("riot_test_order_total", "order", L("a", "1,b=2"))
	if c3 == c1 {
		t.Fatal("separator characters in a label value collided with a different label set")
	}
}

// TestHistogramBucketMismatchPanics pins that re-registering a
// histogram family with a different bucket layout fails loudly
// instead of mixing layouts within one family.
func TestHistogramBucketMismatchPanics(t *testing.T) {
	r := New()
	r.Histogram("riot_test_layout_seconds", "layout", []float64{0.1, 1}, L("op", "a"))
	defer func() {
		if recover() == nil {
			t.Fatal("bucket layout mismatch did not panic")
		}
	}()
	r.Histogram("riot_test_layout_seconds", "layout", []float64{0.5}, L("op", "b"))
}

func TestHistogramVec(t *testing.T) {
	r := New()
	v := r.HistogramVec("riot_test_vec_seconds", "vec", []float64{1}, "tenant")
	h := v.With("a")
	if h == nil {
		t.Fatal("vec returned nil handle on live registry")
	}
	if v.With("a") != h {
		t.Fatal("vec did not memoize the handle")
	}
	// The vec resolves to the same series as direct registration.
	if r.Histogram("riot_test_vec_seconds", "vec", []float64{1}, L("tenant", "a")) != h {
		t.Fatal("vec series differs from direct registration")
	}
	var nv *HistogramVec
	if nv.With("x") != nil {
		t.Fatal("nil vec should hand out nil handles")
	}
	nv.With("x").Observe(1) // must not panic
}

// TestWritePrometheusGolden locks the exposition format: HELP/TYPE
// headers, sorted families and series, cumulative histogram buckets
// with +Inf, _sum and _count lines, label escaping.
func TestWritePrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("riot_b_total", "b counter", L("tenant", "t1")).Add(3)
	r.Counter("riot_b_total", "b counter", L("tenant", `quo"te`)).Inc()
	r.Gauge("riot_a_bytes", "a gauge").Set(1024)
	h := r.Histogram("riot_c_seconds", "c histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.Collect(func(e *Emit) {
		e.Gauge("riot_d_collected", "from a collector", 7, L("shard", "0"))
	})

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP riot_a_bytes a gauge
# TYPE riot_a_bytes gauge
riot_a_bytes 1024
# HELP riot_b_total b counter
# TYPE riot_b_total counter
riot_b_total{tenant="quo\"te"} 1
riot_b_total{tenant="t1"} 3
# HELP riot_c_seconds c histogram
# TYPE riot_c_seconds histogram
riot_c_seconds_bucket{le="0.1"} 1
riot_c_seconds_bucket{le="1"} 2
riot_c_seconds_bucket{le="+Inf"} 3
riot_c_seconds_sum 5.55
riot_c_seconds_count 3
# HELP riot_d_collected from a collector
# TYPE riot_d_collected gauge
riot_d_collected{shard="0"} 7
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSpanTreeAndTracer(t *testing.T) {
	root := StartSpan("query")
	p := root.Child("planning")
	p.Annotate("cache", "miss")
	p.End()
	e := root.Child("exec")
	stage := StartSpan("stage:load")
	stage.EndWith(42 * time.Millisecond)
	e.AttachChild(stage)
	e.End()
	root.End()

	if len(root.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(root.Children))
	}
	if stage.Duration() != 42*time.Millisecond {
		t.Fatalf("stage duration = %v", stage.Duration())
	}

	tr := NewTracer(2)
	tr.Add("q1", root)
	tr.Add("q2", root)
	tr.Add("q3", root)
	if _, ok := tr.Get("q1"); ok {
		t.Fatal("q1 should have been evicted from a capacity-2 ring")
	}
	got, ok := tr.Get("q3")
	if !ok || got.QueryID != "q3" || got.Root != root {
		t.Fatalf("Get(q3) = %+v, %v", got, ok)
	}
	if ids := tr.IDs(); len(ids) != 2 || ids[0] != "q2" || ids[1] != "q3" {
		t.Fatalf("IDs = %v", ids)
	}

	var sb strings.Builder
	root.Render(&sb, 0)
	out := sb.String()
	for _, frag := range []string{"query", "planning", "cache=miss", "stage:load"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("rendered trace missing %q:\n%s", frag, out)
		}
	}

	// Nil safety.
	var ns *Span
	ns.End()
	ns.Annotate("k", "v")
	ns.AttachChild(root)
	if ns.Child("x") != nil {
		t.Fatal("nil span Child should be nil")
	}
	var nt *Tracer
	nt.Add("x", root)
	if _, ok := nt.Get("x"); ok {
		t.Fatal("nil tracer should not store")
	}
}
