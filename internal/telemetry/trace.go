package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span is one timed phase of a query, forming a tree. Spans are built
// by the single goroutine executing the query (phases are sequential)
// and must not be mutated after being handed to a Tracer. A nil *Span
// is a valid no-op, so tracing can be disabled by passing nil roots.
type Span struct {
	// Name identifies the phase, e.g. "planning" or "exec".
	Name string `json:"name"`
	// StartUnixNano is the wall-clock start in Unix nanoseconds.
	StartUnixNano int64 `json:"start_unix_nano"`
	// DurationNanos is the span length; 0 until End is called.
	DurationNanos int64 `json:"duration_nanos"`
	// Annotations carries small key=value details (byte counts, cache
	// verdicts) attached during the span.
	Annotations map[string]string `json:"annotations,omitempty"`
	// Children are sub-phases in execution order.
	Children []*Span `json:"children,omitempty"`

	start time.Time
}

// StartSpan opens a new root span.
func StartSpan(name string) *Span {
	now := time.Now()
	return &Span{Name: name, StartUnixNano: now.UnixNano(), start: now}
}

// Child opens and attaches a sub-span. Returns nil on a nil receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := StartSpan(name)
	s.Children = append(s.Children, c)
	return c
}

// AttachChild adds a pre-built child span (used when a lower layer
// reports timings after the fact, e.g. per-stage exec durations).
func (s *Span) AttachChild(c *Span) {
	if s == nil || c == nil {
		return
	}
	s.Children = append(s.Children, c)
}

// End closes the span, fixing its duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.DurationNanos = time.Since(s.start).Nanoseconds()
}

// EndWith closes the span with an explicit duration (for spans whose
// timing was measured elsewhere).
func (s *Span) EndWith(d time.Duration) {
	if s == nil {
		return
	}
	s.DurationNanos = d.Nanoseconds()
}

// Annotate attaches a key=value detail to the span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	if s.Annotations == nil {
		s.Annotations = map[string]string{}
	}
	s.Annotations[key] = value
}

// Duration returns the recorded span duration.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.DurationNanos)
}

// Render pretty-prints the span tree, one line per span, indented by
// depth, with durations and annotations. Used by the riotshared trace
// subcommand.
func (s *Span) Render(w *strings.Builder, depth int) {
	if s == nil {
		return
	}
	w.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(w, "%-24s %12s", s.Name, time.Duration(s.DurationNanos).Round(time.Microsecond))
	if len(s.Annotations) > 0 {
		keys := make([]string, 0, len(s.Annotations))
		for k := range s.Annotations {
			keys = append(keys, k)
		}
		sortStrings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  %s=%s", k, s.Annotations[k])
		}
	}
	w.WriteByte('\n')
	for _, c := range s.Children {
		c.Render(w, depth+1)
	}
}

// sortStrings is a tiny insertion sort to keep trace.go free of extra
// imports in hot paths that never run it.
func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Trace is a completed span tree for one query.
type Trace struct {
	// QueryID is the server-assigned query identifier.
	QueryID string `json:"query_id"`
	// Root is the top-level query span.
	Root *Span `json:"root"`
}

// Tracer retains a bounded ring of completed traces keyed by query
// ID. A nil *Tracer is a valid no-op.
type Tracer struct {
	mu     sync.Mutex
	cap    int
	order  []string
	traces map[string]*Trace
}

// NewTracer returns a tracer retaining up to capacity completed
// traces (oldest evicted first). Capacity <= 0 defaults to 256.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{cap: capacity, traces: map[string]*Trace{}}
}

// Add stores a completed trace, evicting the oldest when full.
func (t *Tracer) Add(id string, root *Span) {
	if t == nil || root == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.traces[id]; !ok {
		t.order = append(t.order, id)
	}
	t.traces[id] = &Trace{QueryID: id, Root: root}
	for len(t.order) > t.cap {
		old := t.order[0]
		t.order = t.order[1:]
		delete(t.traces, old)
	}
}

// Get returns the trace for a query ID, if still retained.
func (t *Tracer) Get(id string) (*Trace, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.traces[id]
	return tr, ok
}

// IDs returns the retained query IDs, oldest first.
func (t *Tracer) IDs() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.order))
	copy(out, t.order)
	return out
}
