// Package telemetry provides a dependency-free metrics registry
// (counters, gauges, fixed-bucket latency histograms with quantile
// extraction) and a per-query span tracer, plus Prometheus text
// exposition. It is the observability layer shared by riotshared and
// riotblockd.
//
// All handle types are nil-safe: methods on a nil *Registry return
// nil handles, and methods on nil handles are no-ops. A component
// instrumented against a nil registry therefore pays only a nil check
// per call site, which is the "no-op path" the telemetry overhead
// benchmark pins down.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key=value metric dimension.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// DefBuckets is the default latency histogram layout in seconds,
// spanning 100µs to 60s. It suits both block I/O and whole-query
// latencies in this system.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// metric kinds for exposition.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// Counter is a monotonically increasing integer metric. A nil
// *Counter is a valid no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add increases the counter by n (negative n is ignored: counters are
// monotonic).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can go up and down. A nil *Gauge is a
// valid no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add offsets the gauge by v.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution metric. Buckets are
// cumulative upper bounds as in Prometheus; an implicit +Inf bucket
// always exists. A nil *Histogram is a valid no-op.
type Histogram struct {
	uppers  []float64      // finite upper bounds, ascending
	counts  []atomic.Int64 // len(uppers)+1; last is +Inf overflow
	sumBits atomic.Uint64  // float64 bits of the sample sum
	count   atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.uppers, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Count returns the total number of samples observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation within the bucket that contains it, mirroring
// Prometheus's histogram_quantile. Samples beyond the last finite
// bucket clamp to that bound. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.uppers) {
				// +Inf bucket: clamp to the last finite bound.
				if len(h.uppers) == 0 {
					return 0
				}
				return h.uppers[len(h.uppers)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.uppers[i-1]
			}
			hi := h.uppers[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	if len(h.uppers) == 0 {
		return 0
	}
	return h.uppers[len(h.uppers)-1]
}

// snapshot returns (bucketCounts, sum, count) read once; bucket
// counts are cumulative as required by exposition.
func (h *Histogram) snapshot() ([]int64, float64, int64) {
	cum := make([]int64, len(h.counts))
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, math.Float64frombits(h.sumBits.Load()), h.count.Load()
}

// series is one labeled instance of a metric family.
type series struct {
	labels []Label
	key    string
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name    string
	help    string
	kind    string
	buckets []float64
	series  map[string]*series
	order   []string
}

// Registry holds metric families and scrape-time collectors. The zero
// value is not usable; call New. A nil *Registry is a valid no-op
// registry: registration methods return nil handles.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	order      []string
	collectors []func(*Emit)
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelKey builds the series memoization key: labels are sorted by
// key so call-site order doesn't split a label set into two series,
// and the separators ','/'=' (plus '\') are escaped so no label value
// can collide with a differently-split label set. The escaping keeps
// keys lexicographically ordered like their label sets, so series
// sort order in exposition follows label order.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		keyEscape(&b, l.Key)
		b.WriteByte('=')
		keyEscape(&b, l.Value)
	}
	return b.String()
}

func keyEscape(b *strings.Builder, s string) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\\' || c == ',' || c == '=' {
			b.WriteByte('\\')
		}
		b.WriteByte(c)
	}
}

// getFamilyLocked returns (registering on first use) the named metric
// family; every caller holds r.mu.
func (r *Registry) getFamilyLocked(name, help, kind string, buckets []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, series: map[string]*series{}}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	if kind == kindHistogram && !sameBuckets(f.buckets, buckets) {
		panic(fmt.Sprintf("telemetry: histogram %q re-registered with buckets %v (was %v)", name, buckets, f.buckets))
	}
	return f
}

func sameBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (f *family) getSeries(labels []Label) *series {
	k := labelKey(labels)
	s, ok := f.series[k]
	if !ok {
		cp := make([]Label, len(labels))
		copy(cp, labels)
		s = &series{labels: cp, key: k}
		f.series[k] = s
		f.order = append(f.order, k)
	}
	return s
}

// Counter registers (or fetches) a counter series. Safe for
// concurrent use; returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getFamilyLocked(name, help, kindCounter, nil).getSeries(labels)
	if s.ctr == nil {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge registers (or fetches) a gauge series. Safe for concurrent
// use; returns nil on a nil registry.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getFamilyLocked(name, help, kindGauge, nil).getSeries(labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram registers (or fetches) a histogram series with the given
// bucket upper bounds (nil means DefBuckets). Safe for concurrent
// use; returns nil on a nil registry.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getFamilyLocked(name, help, kindHistogram, buckets).getSeries(labels)
	if s.hist == nil {
		h := &Histogram{uppers: buckets}
		h.counts = make([]atomic.Int64, len(buckets)+1)
		s.hist = h
	}
	return s.hist
}

// HistogramVec is a single-label histogram family whose per-value
// handles are memoized in a lock-free map, so a steady-state hot path
// (one Observe per query/grant) only takes the registry mutex the
// first time a label value is seen. A nil *HistogramVec is a valid
// no-op.
type HistogramVec struct {
	reg     *Registry
	name    string
	help    string
	buckets []float64
	label   string
	m       sync.Map // label value -> *Histogram
}

// HistogramVec returns a memoizing view over the named histogram
// family keyed by one label. Returns nil on a nil registry.
func (r *Registry) HistogramVec(name, help string, buckets []float64, label string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{reg: r, name: name, help: help, buckets: buckets, label: label}
}

// With returns the histogram series for the given label value,
// registering it on first use.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	if h, ok := v.m.Load(value); ok {
		return h.(*Histogram)
	}
	h := v.reg.Histogram(v.name, v.help, v.buckets, L(v.label, value))
	v.m.Store(value, h)
	return h
}

// Collect registers fn to be invoked at every scrape. Collectors emit
// point-in-time counter/gauge values sampled from existing stats
// structs, so components with cheap snapshot methods need no hot-path
// instrumentation. No-op on a nil registry.
func (r *Registry) Collect(fn func(*Emit)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Emit receives point-in-time samples from scrape collectors.
type Emit struct {
	fams  map[string]*emitFamily
	order []string
}

type emitFamily struct {
	help string
	kind string
	rows []emitRow
}

type emitRow struct {
	labels []Label
	value  float64
}

func (e *Emit) add(name, help, kind string, v float64, labels []Label) {
	f, ok := e.fams[name]
	if !ok {
		f = &emitFamily{help: help, kind: kind}
		e.fams[name] = f
		e.order = append(e.order, name)
	}
	cp := make([]Label, len(labels))
	copy(cp, labels)
	f.rows = append(f.rows, emitRow{labels: cp, value: v})
}

// Counter emits a point-in-time counter sample.
func (e *Emit) Counter(name, help string, v float64, labels ...Label) {
	e.add(name, help, kindCounter, v, labels)
}

// Gauge emits a point-in-time gauge sample.
func (e *Emit) Gauge(name, help string, v float64, labels ...Label) {
	e.add(name, help, kindGauge, v, labels)
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// labelsWithLE appends an le label for histogram bucket lines.
func labelsWithLE(labels []Label, le string) string {
	all := make([]Label, 0, len(labels)+1)
	all = append(all, labels...)
	all = append(all, Label{Key: "le", Value: le})
	return formatLabels(all)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes all registered families plus collector
// output in Prometheus text exposition format (version 0.0.4).
// Families are emitted in sorted name order and series in sorted
// label order, so output is deterministic for a given state. No-op on
// a nil registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Snapshot family metadata and series handle lists while holding
	// the lock: concurrent Counter/Gauge/Histogram calls mutate the
	// series maps, so they must never be read unlocked. The handles
	// themselves are updated via atomics, so formatting can proceed
	// outside the lock on the snapshot.
	r.mu.Lock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	snaps := make(map[string]*famSnapshot, len(r.families))
	for _, name := range names {
		snaps[name] = r.families[name].snapshot()
	}
	collectors := make([]func(*Emit), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	e := &Emit{fams: map[string]*emitFamily{}}
	for _, fn := range collectors {
		fn(e)
	}

	// Merge registered family names with collector-emitted names.
	seen := map[string]bool{}
	all := make([]string, 0, len(names)+len(e.order))
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			all = append(all, n)
		}
	}
	for _, n := range e.order {
		if !seen[n] {
			seen[n] = true
			all = append(all, n)
		}
	}
	sort.Strings(all)

	var b strings.Builder
	for _, name := range all {
		f := snaps[name]
		ef := e.fams[name]
		help, kind := "", ""
		if f != nil {
			help, kind = f.help, f.kind
		} else if ef != nil {
			help, kind = ef.help, ef.kind
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", name, strings.ReplaceAll(help, "\n", " "))
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, kind)
		if f != nil {
			writeFamily(&b, f)
		}
		if ef != nil {
			writeEmitFamily(&b, name, ef)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// famSnapshot is a scrape-time copy of one family's metadata and
// series handle list, taken under the registry lock.
type famSnapshot struct {
	name, help, kind string
	series           []*series
}

// snapshot copies the family's series handles in sorted key order.
// Must be called with the registry lock held.
func (f *family) snapshot() *famSnapshot {
	keys := make([]string, len(f.order))
	copy(keys, f.order)
	sort.Strings(keys)
	sl := make([]*series, 0, len(keys))
	for _, k := range keys {
		sl = append(sl, f.series[k])
	}
	return &famSnapshot{name: f.name, help: f.help, kind: f.kind, series: sl}
}

func writeFamily(b *strings.Builder, f *famSnapshot) {
	for _, s := range f.series {
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(b, "%s%s %d\n", f.name, formatLabels(s.labels), s.ctr.Value())
		case kindGauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, formatLabels(s.labels), formatFloat(s.gauge.Value()))
		case kindHistogram:
			cum, sum, count := s.hist.snapshot()
			for i, upper := range s.hist.uppers {
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelsWithLE(s.labels, formatFloat(upper)), cum[i])
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelsWithLE(s.labels, "+Inf"), cum[len(cum)-1])
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, formatLabels(s.labels), formatFloat(sum))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, formatLabels(s.labels), count)
		}
	}
}

func writeEmitFamily(b *strings.Builder, name string, ef *emitFamily) {
	rows := make([]emitRow, len(ef.rows))
	copy(rows, ef.rows)
	sort.Slice(rows, func(i, j int) bool {
		return labelKey(rows[i].labels) < labelKey(rows[j].labels)
	})
	for _, row := range rows {
		fmt.Fprintf(b, "%s%s %s\n", name, formatLabels(row.labels), formatFloat(row.value))
	}
}
