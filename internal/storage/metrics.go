package storage

import (
	"strconv"
	"time"

	"riotshare/internal/telemetry"
)

// RegisterMetrics attaches telemetry to the sharded store: per-shard
// read/write latency histograms observed on every shard-level request
// (including replica fallbacks), plus a scrape-time collector over
// ShardStats and each remote client's dial/retry/timeout counters.
// Must be called before the store takes traffic — the histogram
// slices are installed without locking, on the assumption that no
// ReadBlock/WriteBlock is in flight yet. No-op when reg is nil.
func (sm *ShardedManager) RegisterMetrics(reg *telemetry.Registry) {
	if sm == nil || reg == nil {
		return
	}
	rl := make([]*telemetry.Histogram, len(sm.shards))
	wl := make([]*telemetry.Histogram, len(sm.shards))
	for i := range sm.shards {
		lbl := telemetry.L("shard", strconv.Itoa(i))
		rl[i] = reg.Histogram("riotshare_shard_read_seconds",
			"Latency of block reads per shard, replica fallbacks included.", nil, lbl)
		wl[i] = reg.Histogram("riotshare_shard_write_seconds",
			"Latency of block writes per shard, replica mirrors included.", nil, lbl)
	}
	sm.readLat, sm.writeLat = rl, wl

	reg.Collect(func(e *telemetry.Emit) {
		for i, st := range sm.ShardStats() {
			lbl := telemetry.L("shard", strconv.Itoa(i))
			spec := telemetry.L("spec", st.Dir)
			e.Counter("riotshare_shard_read_reqs_total", "Physical block reads served per shard.", float64(st.ReadReqs), lbl, spec)
			e.Counter("riotshare_shard_read_bytes_total", "Bytes read per shard.", float64(st.ReadBytes), lbl, spec)
			e.Counter("riotshare_shard_write_reqs_total", "Physical block writes per shard.", float64(st.WriteReqs), lbl, spec)
			e.Counter("riotshare_shard_write_bytes_total", "Bytes written per shard.", float64(st.WriteBytes), lbl, spec)
			e.Counter("riotshare_shard_degraded_reads_total",
				"Reads whose primary is this shard that a replica served instead.", float64(st.DegradedReads), lbl, spec)
			degraded := 0.0
			if st.Degraded {
				degraded = 1
			}
			e.Gauge("riotshare_shard_degraded", "1 when the shard is offline and reads fall back to replicas.", degraded, lbl, spec)
		}
		for i, sd := range sm.shards {
			rs, ok := sd.(*RemoteShard)
			if !ok {
				continue
			}
			st := rs.RemoteStats()
			lbl := telemetry.L("shard", strconv.Itoa(i))
			addr := telemetry.L("addr", sm.specs[i])
			e.Counter("riotshare_remote_dials_total", "TCP connections established to riotblockd servers.", float64(st.Dials), lbl, addr)
			e.Counter("riotshare_remote_retries_total", "Remote attempts re-issued after a transient failure.", float64(st.Retries), lbl, addr)
			e.Counter("riotshare_remote_timeouts_total", "Remote attempts that exceeded the op timeout.", float64(st.Timeouts), lbl, addr)
		}
	})
}

// observeSince records one shard-level operation latency when the
// store is instrumented; free (one nil slice check) otherwise.
func observeSince(hists []*telemetry.Histogram, i int, t0 time.Time) {
	if hists == nil {
		return
	}
	hists[i].ObserveDuration(time.Since(t0))
}
