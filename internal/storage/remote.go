// remote.go is the client side of the riotblockd network block service: a
// RemoteShard turns a `host:port` shard spec into a storage.Backend (and a
// ShardedManager shard) by speaking the blockproto protocol over a small
// pool of TCP connections. Requests pipeline: many in-flight requests share
// one connection, matched to responses by FIFO order, so a striped read
// pays one round-trip of latency for a whole batch instead of one per
// block. Every operation has a per-attempt timeout and a retry-with-backoff
// loop that classifies failures — timeouts and broken connections are
// transient and retried on a fresh connection; connection-refused and
// exhausted retries are persistent and surface as ErrShardUnavailable, the
// signal on which ShardedManager degrades the shard so replica fallback and
// Repair take over.
package storage

import (
	"errors"
	"fmt"
	"io/fs"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"riotshare/internal/blas"
	"riotshare/internal/blockproto"
	"riotshare/internal/prog"
)

// ErrShardUnavailable marks a persistent connection-level failure against a
// remote shard: the server refused the connection, or transient failures
// survived every retry. A ShardedManager that sees it degrades the shard
// (replicas permitting) instead of failing queries; Repair brings the shard
// back once its server is reachable again.
var ErrShardUnavailable = errors.New("storage: remote shard unavailable")

// RemoteOptions tunes a RemoteShard client. The zero value gets sensible
// defaults (4 connections, 2s dial, 10s per-attempt op timeout, 2 retries,
// 50ms initial backoff).
type RemoteOptions struct {
	// PoolSize caps the pooled TCP connections per shard; requests beyond
	// it pipeline onto existing connections in round-robin order.
	PoolSize int
	// DialTimeout bounds establishing one TCP connection.
	DialTimeout time.Duration
	// OpTimeout bounds one request attempt end-to-end (write + response).
	// A timed-out attempt kills its connection — responses are matched by
	// FIFO order, so a desynced connection cannot be reused — and counts
	// as transient.
	OpTimeout time.Duration
	// Retries is how many additional attempts follow a transient failure
	// (timeout, broken/reset connection). Application errors the server
	// answers (unknown array, bad request) are never retried.
	Retries int
	// RetryBackoff is the sleep before the first retry, doubling per
	// retry.
	RetryBackoff time.Duration
}

// withDefaults fills unset options.
func (o RemoteOptions) withDefaults() RemoteOptions {
	if o.PoolSize <= 0 {
		o.PoolSize = 4
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.OpTimeout <= 0 {
		o.OpTimeout = 10 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	return o
}

// RemoteShard is a storage.Backend served by one riotblockd process. It is
// safe for concurrent use; concurrent requests pipeline across the
// connection pool. It also implements the shard interface, so a
// ShardedManager stripes over remote and local shards interchangeably.
type RemoteShard struct {
	addr string
	opt  RemoteOptions

	mu     sync.Mutex
	conns  []*remoteConn
	next   int
	closed bool

	// created tracks arrays registered through THIS client, mirroring a
	// local Manager's registry: Create refuses duplicates within a
	// session, but a registration left on the long-lived server by an
	// earlier session is stale and silently reused — exactly as a fresh
	// Manager reuses an existing store file.
	createdMu sync.Mutex
	created   map[string]struct{}

	dials    atomic.Int64
	retries  atomic.Int64
	timeouts atomic.Int64
}

// RemoteStats counts a client's connection-level events — the
// observability hook the failure-classification tests assert against.
type RemoteStats struct {
	// Dials counts TCP connections established.
	Dials int64
	// Retries counts attempts re-issued after a transient failure.
	Retries int64
	// Timeouts counts attempts that exceeded OpTimeout.
	Timeouts int64
}

// NewRemoteShard creates a client for the riotblockd server at addr
// (host:port). No connection is made until the first operation, so a
// front-end can open a store whose servers come up later — or never, in
// which case operations fail with ErrShardUnavailable and the shard runs
// degraded.
func NewRemoteShard(addr string, opt RemoteOptions) *RemoteShard {
	return &RemoteShard{addr: addr, opt: opt.withDefaults(), created: make(map[string]struct{})}
}

var (
	_ Backend = (*RemoteShard)(nil)
	_ shard   = (*RemoteShard)(nil)
)

// RemoteStats snapshots the client's connection-level counters.
func (s *RemoteShard) RemoteStats() RemoteStats {
	return RemoteStats{Dials: s.dials.Load(), Retries: s.retries.Load(), Timeouts: s.timeouts.Load()}
}

// Label returns the server address (the shard's name in errors and stats).
func (s *RemoteShard) Label() string { return s.addr }

// Addr returns the server address this client speaks to.
func (s *RemoteShard) Addr() string { return s.addr }

// remoteConn is one pooled connection: writes are serialized, responses
// are read by a dedicated goroutine and delivered to pending calls in FIFO
// order (the protocol's pipelining contract).
type remoteConn struct {
	conn    net.Conn
	wmu     sync.Mutex
	pending chan *pendingCall
	broken  atomic.Bool
	drainMu sync.Mutex
}

// pendingCall is one in-flight request awaiting its response.
type pendingCall struct {
	done    chan struct{}
	status  byte
	payload []byte
	err     error
}

// readLoop delivers responses to pending calls in order until the
// connection dies.
func (rc *remoteConn) readLoop() {
	for {
		_, status, payload, err := blockproto.ReadFrame(rc.conn)
		if err != nil {
			rc.fail(fmt.Errorf("read response: %w", err))
			return
		}
		var call *pendingCall
		select {
		case call = <-rc.pending:
		default:
		}
		if call == nil {
			// A response with no outstanding request: protocol desync.
			rc.fail(errors.New("unsolicited response frame"))
			return
		}
		call.status, call.payload = status, payload
		close(call.done)
	}
}

// fail marks the connection broken, closes it, and fails every pending
// call with a transient error so their callers retry elsewhere.
func (rc *remoteConn) fail(err error) {
	rc.broken.Store(true)
	rc.conn.Close()
	rc.drainMu.Lock()
	defer rc.drainMu.Unlock()
	for {
		select {
		case call := <-rc.pending:
			call.err = &transientError{err}
			close(call.done)
		default:
			return
		}
	}
}

// transientError wraps connection-level failures worth retrying.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// ServerError is an application-level error the server answered with: the
// operation reached the server and failed there (unknown array, bad
// request, store I/O error). It is never retried and never degrades the
// shard — the server is alive.
type ServerError struct {
	// Status is the blockproto status code.
	Status byte
	// Msg is the server's error text.
	Msg string
}

// Error formats the server-side failure.
func (e *ServerError) Error() string { return e.Msg }

// Is lets a StatusNotFound answer satisfy errors.Is(err, fs.ErrNotExist),
// so manifest loading treats a missing remote manifest exactly like a
// missing local file.
func (e *ServerError) Is(target error) bool {
	return target == fs.ErrNotExist && e.Status == blockproto.StatusNotFound
}

// conn returns a healthy pooled connection, dialing a new one while the
// pool is below PoolSize (so concurrency spreads across connections before
// it pipelines onto them).
func (s *RemoteShard) conn() (*remoteConn, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("storage: remote shard client closed")
	}
	// Drop broken connections.
	live := s.conns[:0]
	for _, rc := range s.conns {
		if !rc.broken.Load() {
			live = append(live, rc)
		}
	}
	s.conns = live
	if len(s.conns) >= s.opt.PoolSize {
		rc := s.conns[s.next%len(s.conns)]
		s.next++
		s.mu.Unlock()
		return rc, nil
	}
	s.mu.Unlock()

	c, err := net.DialTimeout("tcp", s.addr, s.opt.DialTimeout)
	if err != nil {
		return nil, classifyDial(err)
	}
	s.dials.Add(1)
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	rc := &remoteConn{conn: c, pending: make(chan *pendingCall, 1024)}
	go rc.readLoop()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		c.Close()
		return nil, errors.New("storage: remote shard client closed")
	}
	s.conns = append(s.conns, rc)
	s.mu.Unlock()
	return rc, nil
}

// classifyDial maps dial failures: connection-refused means the server is
// down — persistent, degrade now; everything else (timeout, unreachable)
// is worth a retry before giving up.
func classifyDial(err error) error {
	if errors.Is(err, syscall.ECONNREFUSED) {
		return fmt.Errorf("%w: dial %s", ErrShardUnavailable, err)
	}
	return &transientError{fmt.Errorf("dial: %w", err)}
}

// attempt performs one request/response round-trip on one connection.
func (s *RemoteShard) attempt(op byte, req []byte) (byte, []byte, error) {
	rc, err := s.conn()
	if err != nil {
		return 0, nil, err
	}
	call := &pendingCall{done: make(chan struct{})}
	rc.wmu.Lock()
	if rc.broken.Load() {
		rc.wmu.Unlock()
		return 0, nil, &transientError{errors.New("connection already failed")}
	}
	rc.pending <- call
	rc.conn.SetWriteDeadline(time.Now().Add(s.opt.OpTimeout))
	err = blockproto.WriteFrame(rc.conn, op, req)
	rc.conn.SetWriteDeadline(time.Time{})
	rc.wmu.Unlock()
	if err != nil {
		rc.fail(fmt.Errorf("write request: %w", err))
		<-call.done
		return 0, nil, call.err
	}
	timer := time.NewTimer(s.opt.OpTimeout)
	defer timer.Stop()
	select {
	case <-call.done:
	case <-timer.C:
		// The response may still arrive, but a FIFO connection that
		// skipped a response can never be trusted again: kill it, fail
		// everything pending on it, retry on a fresh connection.
		s.timeouts.Add(1)
		rc.fail(fmt.Errorf("request timed out after %v", s.opt.OpTimeout))
		<-call.done
	}
	if call.err != nil {
		return 0, nil, call.err
	}
	return call.status, call.payload, nil
}

// do runs one operation with retry-with-backoff: transient failures retry
// up to Retries times on fresh connections; persistent failures (refused,
// retries exhausted) come back wrapping ErrShardUnavailable; server-side
// application errors return as *ServerError immediately.
func (s *RemoteShard) do(op byte, req []byte) ([]byte, error) {
	backoff := s.opt.RetryBackoff
	for att := 0; ; att++ {
		status, payload, err := s.attempt(op, req)
		if err == nil {
			if status == blockproto.StatusOK {
				return payload, nil
			}
			msg := blockproto.NewDec(payload).Str()
			if msg == "" {
				msg = fmt.Sprintf("server error (status %d)", status)
			}
			return nil, &ServerError{Status: status, Msg: msg}
		}
		var tr *transientError
		if !errors.As(err, &tr) {
			// Persistent already (refused, client closed).
			return nil, err
		}
		if att >= s.opt.Retries {
			return nil, fmt.Errorf("%w: %s: %v (after %d attempts)", ErrShardUnavailable, s.addr, err, att+1)
		}
		s.retries.Add(1)
		time.Sleep(backoff)
		backoff *= 2
	}
}

// Ping checks server liveness over the protocol.
func (s *RemoteShard) Ping() error {
	_, err := s.do(blockproto.OpPing, nil)
	return err
}

// create registers an array's store on the server; ensure makes it
// idempotent.
func (s *RemoteShard) create(arr *prog.Array, ensure bool) error {
	e := new(blockproto.Enc).Str(arr.Name).
		U32(uint32(arr.BlockRows)).U32(uint32(arr.BlockCols)).
		U32(uint32(arr.GridRows)).U32(uint32(arr.GridCols)).
		I64(arr.LogicalBlockBytes)
	if ensure {
		e.U8(1)
	} else {
		e.U8(0)
	}
	_, err := s.do(blockproto.OpCreate, e.Bytes())
	return err
}

// Create registers an array's store on the server (error on duplicates,
// like Manager.Create). Duplicate detection is client-session-scoped: a
// registration left on the server by an earlier session is stale and
// reused, the way a fresh local Manager reuses an existing store file —
// so the wire request always carries the ensure flag.
func (s *RemoteShard) Create(arr *prog.Array) error {
	s.createdMu.Lock()
	if _, dup := s.created[arr.Name]; dup {
		s.createdMu.Unlock()
		return fmt.Errorf("storage: array %q already created", arr.Name)
	}
	s.created[arr.Name] = struct{}{}
	s.createdMu.Unlock()
	if err := s.create(arr, true); err != nil {
		s.forget(arr.Name)
		return err
	}
	return nil
}

// Ensure registers an array's store if it is not already registered.
func (s *RemoteShard) Ensure(arr *prog.Array) error {
	if err := s.create(arr, true); err != nil {
		return err
	}
	s.createdMu.Lock()
	s.created[arr.Name] = struct{}{}
	s.createdMu.Unlock()
	return nil
}

// forget drops an array from the session's created-set so a later Create
// may register it anew.
func (s *RemoteShard) forget(array string) {
	s.createdMu.Lock()
	delete(s.created, array)
	s.createdMu.Unlock()
}

// CreateAll registers stores for every array of a program.
func (s *RemoteShard) CreateAll(p *prog.Program) error {
	for _, arr := range p.Arrays {
		if err := s.Create(arr); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlock sends one block to the server.
func (s *RemoteShard) WriteBlock(array string, r, c int64, blk *blas.Matrix) error {
	e := new(blockproto.Enc).Str(array).I64(r).I64(c).
		U32(uint32(blk.Rows)).U32(uint32(blk.Cols)).
		Blob(blockproto.EncodeBlock(blk))
	_, err := s.do(blockproto.OpWrite, e.Bytes())
	if err != nil {
		return fmt.Errorf("storage: remote write %s[%d,%d] @%s: %w", array, r, c, s.addr, err)
	}
	return nil
}

// ReadBlock fetches one block from the server. Concurrent reads pipeline
// across the connection pool; the server coalesces duplicate reads.
func (s *RemoteShard) ReadBlock(array string, r, c int64) (*blas.Matrix, error) {
	e := new(blockproto.Enc).Str(array).I64(r).I64(c)
	payload, err := s.do(blockproto.OpRead, e.Bytes())
	if err != nil {
		return nil, fmt.Errorf("storage: remote read %s[%d,%d] @%s: %w", array, r, c, s.addr, err)
	}
	d := blockproto.NewDec(payload)
	rows, cols := int(d.U32()), int(d.U32())
	raw := d.Blob()
	if err := d.Err(); err != nil {
		return nil, err
	}
	return blockproto.DecodeBlock(rows, cols, raw)
}

// Drop closes and unregisters an array's store on the server.
func (s *RemoteShard) Drop(array string, deleteFile bool) error {
	e := new(blockproto.Enc).Str(array)
	if deleteFile {
		e.U8(1)
	} else {
		e.U8(0)
	}
	_, err := s.do(blockproto.OpDrop, e.Bytes())
	if err == nil {
		s.forget(array)
	}
	return err
}

// Stats fetches the server's physical I/O counters — cumulative since the
// server process started, like a local manager's counters since creation.
// An unreachable server reports zeros.
func (s *RemoteShard) Stats() Stats {
	payload, err := s.do(blockproto.OpStats, nil)
	if err != nil {
		return Stats{}
	}
	d := blockproto.NewDec(payload)
	return Stats{ReadReqs: d.I64(), ReadBytes: d.I64(), WriteReqs: d.I64(), WriteBytes: d.I64()}
}

// SetLatency configures the server's simulated device latency (best
// effort: an unreachable server keeps its current setting).
func (s *RemoteShard) SetLatency(read, write time.Duration) {
	e := new(blockproto.Enc).I64(int64(read)).I64(int64(write))
	_, _ = s.do(blockproto.OpLatency, e.Bytes())
}

// ReadManifest fetches the shard root's manifest; a missing manifest
// satisfies errors.Is(err, fs.ErrNotExist) like a missing local file, and
// an unreachable server reads as "manifest lost" too — which is exactly
// what lets a replicated front-end open with a dead server degraded.
func (s *RemoteShard) ReadManifest() ([]byte, error) {
	payload, err := s.do(blockproto.OpManifest, new(blockproto.Enc).U8(blockproto.ManifestGet).Bytes())
	if err != nil {
		return nil, err
	}
	d := blockproto.NewDec(payload)
	data := d.Blob()
	return data, d.Err()
}

// WriteManifest atomically replaces the shard root's manifest.
func (s *RemoteShard) WriteManifest(data []byte) error {
	e := new(blockproto.Enc).U8(blockproto.ManifestPut).Blob(data)
	_, err := s.do(blockproto.OpManifest, e.Bytes())
	return err
}

// RemoveManifest deletes the shard root's manifest (absent is fine).
func (s *RemoteShard) RemoveManifest() error {
	_, err := s.do(blockproto.OpManifest, new(blockproto.Enc).U8(blockproto.ManifestDel).Bytes())
	return err
}

// StoreExists reports whether the array's store file exists on the server.
func (s *RemoteShard) StoreExists(array string) (bool, error) {
	payload, err := s.do(blockproto.OpStat, new(blockproto.Enc).Str(array).Bytes())
	if err != nil {
		return false, err
	}
	d := blockproto.NewDec(payload)
	exists := d.U8() != 0
	return exists, d.Err()
}

// WipeStore closes and deletes the array's store file on the server.
func (s *RemoteShard) WipeStore(array string) error {
	_, err := s.do(blockproto.OpWipe, new(blockproto.Enc).Str(array).Bytes())
	if err == nil {
		s.forget(array)
	}
	return err
}

// PrepareRepair probes the server: repairing a remote shard needs its
// riotblockd back up (the server owns the directory).
func (s *RemoteShard) PrepareRepair() error { return s.Ping() }

// Close closes every pooled connection. The server and its data are
// untouched.
func (s *RemoteShard) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := s.conns
	s.conns = nil
	s.mu.Unlock()
	for _, rc := range conns {
		rc.fail(errors.New("client closed"))
	}
	return nil
}
