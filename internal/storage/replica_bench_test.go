package storage

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"riotshare/internal/prog"
)

// BenchmarkReplicatedWrite measures the write amplification of k-way
// replication on simulated devices: one op writes every block of the array,
// so replicas=2 should cost ~2x the device time of replicas=1 — the
// durability premium an operator pays for degraded reads instead of failed
// opens. `make bench-json` exports it as BENCH_replica.json.
func BenchmarkReplicatedWrite(b *testing.B) {
	const latency = 100 * time.Microsecond
	arr := &prog.Array{Name: "A", BlockRows: 8, BlockCols: 8, GridRows: 8, GridCols: 8}
	for _, replicas := range []int{1, 2} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			sm, err := OpenSharded(ShardDirs(b.TempDir(), 4), ShardedOptions{Replicas: replicas})
			if err != nil {
				b.Fatal(err)
			}
			defer sm.Close()
			if err := sm.Create(arr); err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			blk := randBlock(rng, arr)
			sm.SetLatency(0, latency)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := int64(0); r < int64(arr.GridRows); r++ {
					for c := int64(0); c < int64(arr.GridCols); c++ {
						if err := sm.WriteBlock("A", r, c, blk); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
}

// BenchmarkDegradedRead measures the latency of replica-fallback reads: one
// op reads every block of the array, healthy (each block off its primary)
// vs degraded (one of four shards down, its blocks served by the next
// replica in ring order). The two should be close — the fallback costs one
// failed local lookup, not a second device wait — which is the number that
// justifies running degraded instead of refusing the open.
func BenchmarkDegradedRead(b *testing.B) {
	const latency = 100 * time.Microsecond
	arr := &prog.Array{Name: "A", BlockRows: 8, BlockCols: 8, GridRows: 8, GridCols: 8}
	for _, mode := range []string{"healthy", "degraded"} {
		b.Run("mode="+mode, func(b *testing.B) {
			sm, err := OpenSharded(ShardDirs(b.TempDir(), 4), ShardedOptions{Replicas: 2})
			if err != nil {
				b.Fatal(err)
			}
			defer sm.Close()
			if err := sm.Create(arr); err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			for r := int64(0); r < int64(arr.GridRows); r++ {
				for c := int64(0); c < int64(arr.GridCols); c++ {
					if err := sm.WriteBlock("A", r, c, randBlock(rng, arr)); err != nil {
						b.Fatal(err)
					}
				}
			}
			if mode == "degraded" {
				if err := sm.DegradeShard(1); err != nil {
					b.Fatal(err)
				}
			}
			sm.SetLatency(latency, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := int64(0); r < int64(arr.GridRows); r++ {
					for c := int64(0); c < int64(arr.GridCols); c++ {
						if _, err := sm.ReadBlock("A", r, c); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
}
