package storage

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"riotshare/internal/blas"
)

// Replication must be invisible to readers: across shard counts, replica
// counts, and placements, every block round-trips bit-identically, each
// block is physically mirrored on exactly k shards, and write requests are
// amplified exactly k-fold.
func TestReplicatedRoundTrip(t *testing.T) {
	for _, placement := range []string{PlacementHash, PlacementRows} {
		for _, shards := range []int{2, 4} {
			for _, replicas := range []int{1, 2} {
				name := fmt.Sprintf("%s/shards=%d/replicas=%d", placement, shards, replicas)
				t.Run(name, func(t *testing.T) {
					sm, err := OpenSharded(ShardDirs(t.TempDir(), shards), ShardedOptions{
						Placement: placement, Replicas: replicas,
					})
					if err != nil {
						t.Fatal(err)
					}
					defer sm.Close()
					arr := shardTestArray("A")
					if err := sm.Create(arr); err != nil {
						t.Fatal(err)
					}
					want := fillArray(t, sm, arr, 11)
					assertBlocks(t, sm, arr, want)

					if got := sm.Stats().WriteReqs; got != int64(replicas*len(want)) {
						t.Errorf("WriteReqs = %d, want %d (%d blocks x %d replicas)", got, replicas*len(want), len(want), replicas)
					}
					if got := sm.DegradedReads(); got != 0 {
						t.Errorf("healthy store counted %d degraded reads", got)
					}
					// Each block lives on exactly its k ring-order replicas.
					for coord := range want {
						p := sm.primaryFor("A", coord[0], coord[1])
						for i, m := range sm.shards {
							onShard := false
							for j := 0; j < replicas; j++ {
								if (p+j)%shards == i {
									onShard = true
								}
							}
							_, err := m.ReadBlock("A", coord[0], coord[1])
							if onShard && err != nil {
								t.Errorf("replica shard %d missing A[%d,%d]: %v", i, coord[0], coord[1], err)
							}
							// DAF files are sparse, so a non-replica shard may
							// return zeros rather than an error; the
							// write-amplification check above already bounds
							// the copies to exactly k.
						}
					}
				})
			}
		}
	}
}

// Losing a shard under 2-way replication must degrade reads — identical
// data served from replicas, counted per primary shard — not fail them;
// Repair must re-mirror the shard and reset the counter.
func TestDegradeAndRepair(t *testing.T) {
	dirs := ShardDirs(t.TempDir(), 3)
	sm, err := OpenSharded(dirs, ShardedOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	arr := shardTestArray("A")
	if err := sm.Create(arr); err != nil {
		t.Fatal(err)
	}
	want := fillArray(t, sm, arr, 23)

	if err := sm.DegradeShard(1); err != nil {
		t.Fatal(err)
	}
	if got := sm.Degraded(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Degraded() = %v, want [1]", got)
	}
	// Remove the directory outright: fallbacks must come from replicas on
	// other shards, not surviving file descriptors.
	if err := os.RemoveAll(dirs[1]); err != nil {
		t.Fatal(err)
	}
	assertBlocks(t, sm, arr, want)
	if got := sm.DegradedReads(); got == 0 {
		t.Error("no degraded reads counted while a shard is down")
	}
	ss := sm.ShardStats()
	if !ss[1].Degraded {
		t.Error("ShardStats does not mark shard 1 degraded")
	}
	if ss[1].DegradedReads == 0 {
		t.Error("ShardStats counts no degraded reads against the lost shard")
	}
	if ss[0].DegradedReads != 0 || ss[2].DegradedReads != 0 {
		t.Errorf("healthy shards charged with degraded reads: %d / %d", ss[0].DegradedReads, ss[2].DegradedReads)
	}

	// Writes while degraded land on the surviving replicas only and remain
	// readable.
	blk := want[[2]int64{0, 0}]
	if err := sm.WriteBlock("A", 0, 0, blk); err != nil {
		t.Fatalf("write while degraded: %v", err)
	}

	if err := sm.Repair(1); err != nil {
		t.Fatal(err)
	}
	if got := sm.Degraded(); len(got) != 0 {
		t.Fatalf("Degraded() = %v after repair, want none", got)
	}
	if got := sm.DegradedReads(); got != 0 {
		t.Errorf("DegradedReads = %d after repair, want 0 (counter resets when the shard heals)", got)
	}
	// Every read now comes off a healthy replica set with no new fallbacks.
	assertBlocks(t, sm, arr, want)
	if got := sm.DegradedReads(); got != 0 {
		t.Errorf("reads after repair still fall back (%d degraded reads)", got)
	}
	// The repaired shard holds its blocks again: degrade the OTHER replica
	// shards one at a time is impossible (coverage), so verify directly.
	for coord := range want {
		p := sm.primaryFor("A", coord[0], coord[1])
		mirrored := p == 1 || (p+1)%3 == 1
		if !mirrored {
			continue
		}
		got, err := sm.shards[1].ReadBlock("A", coord[0], coord[1])
		if err != nil {
			t.Fatalf("repaired shard missing A[%d,%d]: %v", coord[0], coord[1], err)
		}
		w := want[coord]
		for i := range w.Data {
			if got.Data[i] != w.Data[i] {
				t.Fatalf("repaired shard A[%d,%d] element %d = %v, want %v", coord[0], coord[1], i, got.Data[i], w.Data[i])
			}
		}
	}
}

// Degrading must be refused when it would strand blocks: with no
// replication every shard is someone's only copy, and with k-way
// replication the k-th concurrent loss kills a full replica set.
func TestDegradeRefusesCoverageLoss(t *testing.T) {
	sm, err := OpenSharded(ShardDirs(t.TempDir(), 2), ShardedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	if err := sm.DegradeShard(0); err == nil {
		t.Fatal("degrading an unreplicated shard succeeded — its blocks have no other copy")
	}

	sm2, err := OpenSharded(ShardDirs(t.TempDir(), 3), ShardedOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sm2.Close()
	if err := sm2.DegradeShard(0); err != nil {
		t.Fatal(err)
	}
	if err := sm2.DegradeShard(1); err == nil {
		t.Fatal("degrading both shards of a replica set succeeded")
	}
	if got := sm2.Degraded(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("refused degrade left Degraded() = %v, want [0]", got)
	}
}

// A replicated, persistent store must reopen with a lost shard directory:
// the open degrades the shard instead of failing, the catalog survives,
// reads fall back, and Repair + reopen restores full health.
func TestReplicatedPersistLostShardDir(t *testing.T) {
	dirs := ShardDirs(t.TempDir(), 3)
	opt := ShardedOptions{Persist: true, Replicas: 2}
	sm, err := OpenSharded(dirs, opt)
	if err != nil {
		t.Fatal(err)
	}
	arr := shardTestArray("X")
	if err := sm.Create(arr); err != nil {
		t.Fatal(err)
	}
	want := fillArray(t, sm, arr, 3)
	if err := sm.RecordShared(arr, "fp-1"); err != nil {
		t.Fatal(err)
	}
	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}

	if err := os.RemoveAll(dirs[1]); err != nil {
		t.Fatal(err)
	}
	re, err := OpenSharded(dirs, opt)
	if err != nil {
		t.Fatalf("reopen with a lost shard dir under 2-way replication failed: %v", err)
	}
	if got := re.Degraded(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Degraded() = %v, want [1]", got)
	}
	if e, ok := re.SharedEntry("X"); !ok || e.Fingerprint != "fp-1" {
		t.Fatalf("catalog lost on degraded reopen: %+v ok=%v", e, ok)
	}
	assertBlocks(t, re, arr, want)
	if re.DegradedReads() == 0 {
		t.Error("no degraded reads counted on the degraded reopen")
	}
	// The degraded shard must NOT have been given a manifest — a crash now
	// has to leave it degraded, never half-healthy.
	if _, err := os.Stat(filepath.Join(dirs[1], manifestName)); !os.IsNotExist(err) {
		t.Error("degraded shard was handed a manifest before repair")
	}
	if err := re.Repair(1); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	healed, err := OpenSharded(dirs, opt)
	if err != nil {
		t.Fatalf("reopen after repair: %v", err)
	}
	defer healed.Close()
	if got := healed.Degraded(); len(got) != 0 {
		t.Fatalf("repaired store reopened degraded: %v", got)
	}
	assertBlocks(t, healed, arr, want)
	if healed.DegradedReads() != 0 {
		t.Error("repaired store still serves degraded reads")
	}
}

// When every replica of some block is lost, the open must fail with a
// clean error — not silently serve an empty store.
func TestReplicatedCoverageLostFailsOpen(t *testing.T) {
	dirs := ShardDirs(t.TempDir(), 3)
	opt := ShardedOptions{Persist: true, Replicas: 2}
	sm, err := OpenSharded(dirs, opt)
	if err != nil {
		t.Fatal(err)
	}
	arr := shardTestArray("X")
	if err := sm.Create(arr); err != nil {
		t.Fatal(err)
	}
	fillArray(t, sm, arr, 3)
	if err := sm.RecordShared(arr, "fp"); err != nil {
		t.Fatal(err)
	}
	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}
	// Shards 1 and 2 are a full replica set for blocks primary on 1.
	if err := os.RemoveAll(dirs[1]); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dirs[2]); err != nil {
		t.Fatal(err)
	}
	_, err = OpenSharded(dirs, opt)
	if err == nil {
		t.Fatal("open succeeded with a whole replica set missing")
	}
	if !strings.Contains(err.Error(), "coverage lost") {
		t.Errorf("error does not explain the coverage loss: %v", err)
	}
}

// The replication factor is part of the layout: reopening with a different
// one must be refused, and a factor above the shard count is rejected up
// front.
func TestReplicasValidation(t *testing.T) {
	if _, err := OpenSharded(ShardDirs(t.TempDir(), 2), ShardedOptions{Replicas: 3}); err == nil {
		t.Error("replicas > shards accepted")
	}

	dirs := ShardDirs(t.TempDir(), 3)
	sm, err := OpenSharded(dirs, ShardedOptions{Persist: true, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	arr := shardTestArray("A")
	if err := sm.Create(arr); err != nil {
		t.Fatal(err)
	}
	if err := sm.RecordShared(arr, "fp"); err != nil {
		t.Fatal(err)
	}
	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = OpenSharded(dirs, ShardedOptions{Persist: true})
	if err == nil {
		t.Fatal("reopen with a different replication factor succeeded")
	}
	if !strings.Contains(err.Error(), "replication") {
		t.Errorf("error does not explain the replication mismatch: %v", err)
	}
}

// Manifest crash-durability: a torn MANIFEST.json (truncated mid-file, with
// a stale .tmp left beside it) must either be recovered from replicas —
// serving the surviving shards' fingerprints, never the stale ones — or
// fail the open with an error naming the shard. The .tmp file is never
// read.
func TestTornManifest(t *testing.T) {
	tear := func(t *testing.T, dirs []string, shard int) {
		t.Helper()
		path := filepath.Join(dirs[shard], manifestName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// A crash mid-write without the fsync discipline: half the bytes.
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		// And a stale temp file from the interrupted writer, carrying a
		// fingerprint that must never be served.
		stale := strings.Replace(string(data), "fp-good", "fp-stale", 1)
		if err := os.WriteFile(path+".tmp", []byte(stale), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("unreplicated fails naming the shard", func(t *testing.T) {
		dirs := ShardDirs(t.TempDir(), 3)
		sm, err := OpenSharded(dirs, ShardedOptions{Persist: true})
		if err != nil {
			t.Fatal(err)
		}
		arr := shardTestArray("A")
		if err := sm.Create(arr); err != nil {
			t.Fatal(err)
		}
		fillArray(t, sm, arr, 1)
		if err := sm.RecordShared(arr, "fp-good"); err != nil {
			t.Fatal(err)
		}
		if err := sm.Close(); err != nil {
			t.Fatal(err)
		}
		tear(t, dirs, 2)
		_, err = OpenSharded(dirs, ShardedOptions{Persist: true})
		if err == nil {
			t.Fatal("open over a torn manifest succeeded without replication")
		}
		if !strings.Contains(err.Error(), "shard 2") || !strings.Contains(err.Error(), "manifest") {
			t.Errorf("error does not name the torn shard: %v", err)
		}
	})

	t.Run("replicated recovers, never stale", func(t *testing.T) {
		dirs := ShardDirs(t.TempDir(), 3)
		opt := ShardedOptions{Persist: true, Replicas: 2}
		sm, err := OpenSharded(dirs, opt)
		if err != nil {
			t.Fatal(err)
		}
		arr := shardTestArray("A")
		if err := sm.Create(arr); err != nil {
			t.Fatal(err)
		}
		want := fillArray(t, sm, arr, 1)
		if err := sm.RecordShared(arr, "fp-good"); err != nil {
			t.Fatal(err)
		}
		if err := sm.Close(); err != nil {
			t.Fatal(err)
		}
		tear(t, dirs, 2)
		re, err := OpenSharded(dirs, opt)
		if err != nil {
			t.Fatalf("replicated open did not recover from the torn manifest: %v", err)
		}
		defer re.Close()
		if got := re.Degraded(); len(got) != 1 || got[0] != 2 {
			t.Fatalf("Degraded() = %v, want [2]", got)
		}
		e, ok := re.SharedEntry("A")
		if !ok {
			t.Fatal("catalog lost")
		}
		if e.Fingerprint != "fp-good" {
			t.Fatalf("fingerprint %q served, want %q (stale .tmp must never be read)", e.Fingerprint, "fp-good")
		}
		assertBlocks(t, re, arr, want)
	})
}

// createStores must unwind on partial failure: if shard i refuses the
// store, shards 0..i-1 must be closed and unregistered so a retry does not
// hit "already created" and no descriptors leak.
func TestCreateUnwindsOnPartialFailure(t *testing.T) {
	dirs := ShardDirs(t.TempDir(), 2)
	sm, err := OpenSharded(dirs, ShardedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	// Block shard 1's store path with a directory: opening it fails
	// mid-loop, after shard 0 succeeded.
	obstruction := filepath.Join(dirs[1], "A.daf")
	if err := os.MkdirAll(obstruction, 0o755); err != nil {
		t.Fatal(err)
	}
	arr := shardTestArray("A")
	err = sm.Create(arr)
	if err == nil {
		t.Fatal("Create succeeded over an obstructed shard")
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Errorf("error does not name the failing shard: %v", err)
	}
	// The retry must hit the same obstruction — not shard 0's leftover
	// registration.
	err = sm.Create(arr)
	if err == nil {
		t.Fatal("retry succeeded while the obstruction remains")
	}
	if strings.Contains(err.Error(), "already created") {
		t.Fatalf("retry tripped over a leaked store from the failed attempt: %v", err)
	}
	// Clear the obstruction: the retry now succeeds and round-trips.
	if err := os.RemoveAll(obstruction); err != nil {
		t.Fatal(err)
	}
	if err := sm.Create(arr); err != nil {
		t.Fatalf("Create after clearing the obstruction: %v", err)
	}
	want := fillArray(t, sm, arr, 9)
	assertBlocks(t, sm, arr, want)
}

// Drop must report every failed shard by index, not just the first.
func TestDropAggregatesShardErrors(t *testing.T) {
	dirs := ShardDirs(t.TempDir(), 2)
	sm, err := OpenSharded(dirs, ShardedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	arr := shardTestArray("A")
	if err := sm.Create(arr); err != nil {
		t.Fatal(err)
	}
	// Delete both store files behind the manager's back: Drop's file
	// removal then fails on every shard.
	for _, dir := range dirs {
		if err := os.Remove(filepath.Join(dir, "A.daf")); err != nil {
			t.Fatal(err)
		}
	}
	err = sm.Drop("A", true)
	if err == nil {
		t.Fatal("Drop reported success while every file removal failed")
	}
	for _, wantShard := range []string{"shard 0", "shard 1"} {
		if !strings.Contains(err.Error(), wantShard) {
			t.Errorf("aggregated error does not name %s: %v", wantShard, err)
		}
	}
}

// atomicWriteFile must commit all-or-nothing and leave no temp file behind.
func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.json")
	if err := atomicWriteFile(path, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := atomicWriteFile(path, []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "two" {
		t.Fatalf("content %q err %v, want %q", got, err, "two")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind")
	}
	// A stale .tmp from a crashed writer is simply overwritten.
	if err := os.WriteFile(path+".tmp", []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := atomicWriteFile(path, []byte("three"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "three" {
		t.Fatalf("content %q after overwriting a stale temp, want %q", got, "three")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("stale temp file survived the next atomic write")
	}
}

// Repair must start the healing shard from empty store files: blocks left
// on disk from before the loss — or from a same-named array that was
// dropped and re-created while the shard was down — must never resurface
// after the repair.
func TestRepairWipesStaleStores(t *testing.T) {
	sm, err := OpenSharded(ShardDirs(t.TempDir(), 3), ShardedOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	arr := shardTestArray("A")
	if err := sm.Create(arr); err != nil {
		t.Fatal(err)
	}
	stale := fillArray(t, sm, arr, 40)

	// Lose shard 1 with its directory (and stale A.daf) intact, then
	// retire the array entirely and start a new incarnation of it with no
	// blocks written.
	if err := sm.DegradeShard(1); err != nil {
		t.Fatal(err)
	}
	if err := sm.Drop("A", true); err != nil {
		t.Fatal(err)
	}
	if err := sm.Create(arr); err != nil {
		t.Fatal(err)
	}
	if err := sm.Repair(1); err != nil {
		t.Fatal(err)
	}
	// Every block the repaired shard would serve as primary must NOT carry
	// the dropped incarnation's data.
	for coord, old := range stale {
		if sm.primaryFor("A", coord[0], coord[1]) != 1 {
			continue
		}
		got, err := sm.ReadBlock("A", coord[0], coord[1])
		if err != nil {
			continue // unwritten in the new incarnation: an error is correct
		}
		same := true
		for i := range old.Data {
			if got.Data[i] != old.Data[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("A[%d,%d]: repair resurrected the dropped incarnation's data", coord[0], coord[1])
		}
	}
}

// Repairing a healthy shard is a no-op — it must not wipe live stores.
func TestRepairHealthyShardNoop(t *testing.T) {
	sm, err := OpenSharded(ShardDirs(t.TempDir(), 3), ShardedOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	arr := shardTestArray("A")
	if err := sm.Create(arr); err != nil {
		t.Fatal(err)
	}
	want := fillArray(t, sm, arr, 41)
	if err := sm.Repair(1); err != nil {
		t.Fatal(err)
	}
	assertBlocks(t, sm, arr, want)
	if got := sm.Stats().WriteReqs; got != int64(2*len(want)) {
		t.Errorf("no-op repair issued writes: WriteReqs = %d, want %d", got, 2*len(want))
	}
}

// Writes racing with Repair must never be lost on the healing shard: once
// the repair completes, the shard holds the concurrently written values,
// not older replica copies the scan read before the writes landed.
func TestRepairConcurrentWrites(t *testing.T) {
	sm, err := OpenSharded(ShardDirs(t.TempDir(), 3), ShardedOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	arr := shardTestArray("A")
	if err := sm.Create(arr); err != nil {
		t.Fatal(err)
	}
	fillArray(t, sm, arr, 50)
	if err := sm.DegradeShard(1); err != nil {
		t.Fatal(err)
	}
	// New values for every block, distinct from the fill.
	next := map[[2]int64]*blas.Matrix{}
	rng := rand.New(rand.NewSource(51))
	for r := int64(0); r < int64(arr.GridRows); r++ {
		for c := int64(0); c < int64(arr.GridCols); c++ {
			next[[2]int64{r, c}] = randBlock(rng, arr)
		}
	}
	done := make(chan error, 1)
	go func() { done <- sm.Repair(1) }()
	for coord, blk := range next {
		if err := sm.WriteBlock("A", coord[0], coord[1], blk); err != nil {
			t.Error(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The writer finished after Repair returned at the latest; shard 1
	// must now hold the new value of every block it mirrors.
	for coord, blk := range next {
		p := sm.primaryFor("A", coord[0], coord[1])
		if p != 1 && (p+1)%3 != 1 {
			continue
		}
		got, err := sm.shards[1].ReadBlock("A", coord[0], coord[1])
		if err != nil {
			t.Fatalf("repaired shard missing A[%d,%d]: %v", coord[0], coord[1], err)
		}
		for i := range blk.Data {
			if got.Data[i] != blk.Data[i] {
				t.Fatalf("A[%d,%d] element %d on the repaired shard = %v, want the concurrently written %v",
					coord[0], coord[1], i, got.Data[i], blk.Data[i])
			}
		}
	}
	assertBlocks(t, sm, arr, next)
}
