package storage

import (
	"sync"
	"testing"
	"time"

	"riotshare/internal/blas"
	"riotshare/internal/prog"
)

// Concurrent reads and writes across goroutines must be safe on both
// formats (the pipelined executor and its prefetcher hit the manager from
// many goroutines at once), and coalesced readers must get independent
// matrices so one caller mutating its result cannot corrupt another's.
func TestConcurrentReadWrite(t *testing.T) {
	for _, format := range []Format{FormatDAF, FormatLABTree} {
		t.Run(format.String(), func(t *testing.T) {
			m, err := NewManager(t.TempDir(), format)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			arr := &prog.Array{Name: "A", BlockRows: 16, BlockCols: 16, GridRows: 4, GridCols: 4}
			if err := m.Create(arr); err != nil {
				t.Fatal(err)
			}
			// Seed every block with a value derived from its coordinates.
			for r := int64(0); r < 4; r++ {
				for c := int64(0); c < 4; c++ {
					blk := blas.NewMatrix(16, 16)
					for i := range blk.Data {
						blk.Data[i] = float64(r*100 + c*10)
					}
					if err := m.WriteBlock("A", r, c, blk); err != nil {
						t.Fatal(err)
					}
				}
			}
			var wg sync.WaitGroup
			errs := make(chan error, 64)
			for g := 0; g < 16; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					for it := 0; it < 20; it++ {
						// Rows 0-2 only: row 3 is the writers' stripe.
						r, c := int64((g+it)%3), int64(g%4)
						blk, err := m.ReadBlock("A", r, c)
						if err != nil {
							errs <- err
							return
						}
						want := float64(r*100 + c*10)
						if blk.Data[0] != want {
							t.Errorf("A[%d,%d] = %g, want %g", r, c, blk.Data[0], want)
						}
						// Mutating our copy must not leak into other readers.
						blk.Data[0] = -1
					}
				}()
			}
			// Writers on a disjoint block stripe keep the store busy.
			for g := 0; g < 4; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					blk := blas.NewMatrix(16, 16)
					for i := range blk.Data {
						blk.Data[i] = float64(300 + g*10)
					}
					for it := 0; it < 20; it++ {
						if err := m.WriteBlock("A", 3, int64(g)%4, blk); err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

// Coalesced concurrent reads of one block all see the stored data, on both
// on-disk formats.
func TestCoalescedReadsShareOneRequest(t *testing.T) {
	for _, format := range []Format{FormatDAF, FormatLABTree} {
		t.Run(format.String(), func(t *testing.T) {
			m, err := NewManager(t.TempDir(), format)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			arr := &prog.Array{Name: "B", BlockRows: 8, BlockCols: 8, GridRows: 1, GridCols: 1}
			if err := m.Create(arr); err != nil {
				t.Fatal(err)
			}
			blk := blas.NewMatrix(8, 8)
			for i := range blk.Data {
				blk.Data[i] = float64(i)
			}
			if err := m.WriteBlock("B", 0, 0, blk); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			results := make([]*blas.Matrix, 32)
			for g := range results {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					got, err := m.ReadBlock("B", 0, 0)
					if err != nil {
						t.Error(err)
						return
					}
					results[g] = got
				}()
			}
			wg.Wait()
			seen := map[*blas.Matrix]bool{}
			for g, got := range results {
				if got == nil {
					t.Fatal("missing result")
				}
				if seen[got] {
					t.Fatal("two readers received the same matrix object")
				}
				seen[got] = true
				for i := range got.Data {
					if got.Data[i] != float64(i) {
						t.Fatalf("reader %d: data[%d] = %g, want %d", g, i, got.Data[i], i)
					}
				}
			}
		})
	}
}

// The physical I/O counters must account exactly for the requests that
// reach a store: coalesced followers share the leader's read.
func TestStatsCountPhysicalRequests(t *testing.T) {
	m, err := NewManager(t.TempDir(), FormatDAF)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	arr := &prog.Array{Name: "S", BlockRows: 4, BlockCols: 4, GridRows: 2, GridCols: 1}
	if err := m.Create(arr); err != nil {
		t.Fatal(err)
	}
	blk := blas.NewMatrix(4, 4)
	if err := m.WriteBlock("S", 0, 0, blk); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteBlock("S", 1, 0, blk); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadBlock("S", 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadBlock("S", 0, 0); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	want := Stats{ReadReqs: 2, ReadBytes: 2 * 4 * 4 * 8, WriteReqs: 2, WriteBytes: 2 * 4 * 4 * 8}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
	// Coalesced concurrent readers must count one physical request. Use
	// simulated latency to widen the coalescing window.
	m.ReadLatency = 50 * time.Millisecond
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := m.ReadBlock("S", 1, 0); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// Typically exactly one more request (all 8 coalesce onto one leader),
	// but a goroutine delayed past the leader's 50ms window legitimately
	// becomes a second leader on a loaded runner — assert the property
	// (some coalescing happened), not the timing cliff.
	if got := m.Stats().ReadReqs; got < 3 || got >= 2+8 {
		t.Fatalf("after coalesced reads: ReadReqs = %d, want in [3,9] with coalescing", got)
	}
}
