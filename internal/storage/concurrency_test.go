package storage

import (
	"sync"
	"testing"

	"riotshare/internal/blas"
	"riotshare/internal/prog"
)

// Concurrent reads and writes across goroutines must be safe on both
// formats (the pipelined executor and its prefetcher hit the manager from
// many goroutines at once), and coalesced readers must get independent
// matrices so one caller mutating its result cannot corrupt another's.
func TestConcurrentReadWrite(t *testing.T) {
	for _, format := range []Format{FormatDAF, FormatLABTree} {
		t.Run(format.String(), func(t *testing.T) {
			m, err := NewManager(t.TempDir(), format)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			arr := &prog.Array{Name: "A", BlockRows: 16, BlockCols: 16, GridRows: 4, GridCols: 4}
			if err := m.Create(arr); err != nil {
				t.Fatal(err)
			}
			// Seed every block with a value derived from its coordinates.
			for r := int64(0); r < 4; r++ {
				for c := int64(0); c < 4; c++ {
					blk := blas.NewMatrix(16, 16)
					for i := range blk.Data {
						blk.Data[i] = float64(r*100 + c*10)
					}
					if err := m.WriteBlock("A", r, c, blk); err != nil {
						t.Fatal(err)
					}
				}
			}
			var wg sync.WaitGroup
			errs := make(chan error, 64)
			for g := 0; g < 16; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					for it := 0; it < 20; it++ {
						// Rows 0-2 only: row 3 is the writers' stripe.
						r, c := int64((g+it)%3), int64(g%4)
						blk, err := m.ReadBlock("A", r, c)
						if err != nil {
							errs <- err
							return
						}
						want := float64(r*100 + c*10)
						if blk.Data[0] != want {
							t.Errorf("A[%d,%d] = %g, want %g", r, c, blk.Data[0], want)
						}
						// Mutating our copy must not leak into other readers.
						blk.Data[0] = -1
					}
				}()
			}
			// Writers on a disjoint block stripe keep the store busy.
			for g := 0; g < 4; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					blk := blas.NewMatrix(16, 16)
					for i := range blk.Data {
						blk.Data[i] = float64(300 + g*10)
					}
					for it := 0; it < 20; it++ {
						if err := m.WriteBlock("A", 3, int64(g)%4, blk); err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

// Coalesced concurrent reads of one block all see the stored data.
func TestCoalescedReadsShareOneRequest(t *testing.T) {
	m, err := NewManager(t.TempDir(), FormatDAF)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	arr := &prog.Array{Name: "B", BlockRows: 8, BlockCols: 8, GridRows: 1, GridCols: 1}
	if err := m.Create(arr); err != nil {
		t.Fatal(err)
	}
	blk := blas.NewMatrix(8, 8)
	for i := range blk.Data {
		blk.Data[i] = float64(i)
	}
	if err := m.WriteBlock("B", 0, 0, blk); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]*blas.Matrix, 32)
	for g := range results {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := m.ReadBlock("B", 0, 0)
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = got
		}()
	}
	wg.Wait()
	seen := map[*blas.Matrix]bool{}
	for g, got := range results {
		if got == nil {
			t.Fatal("missing result")
		}
		if seen[got] {
			t.Fatal("two readers received the same matrix object")
		}
		seen[got] = true
		for i := range got.Data {
			if got.Data[i] != float64(i) {
				t.Fatalf("reader %d: data[%d] = %g, want %d", g, i, got.Data[i], i)
			}
		}
	}
}
