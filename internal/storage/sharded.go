// sharded.go stripes a block store across several shard directories —
// stand-ins for independent devices (or, with network mounts, machines).
// Every block of every array is owned by exactly one shard, chosen by a
// deterministic placement function of the array name and block coordinates,
// so any process opening the same directories sees the same layout. Each
// shard is a full single-directory Manager: physical I/O counters stay
// per-shard (per-device utilization is visible), concurrent reads of blocks
// on different shards proceed in parallel (each shard is its own simulated
// device), and coalescing still works because one block always routes to
// one shard.
//
// A sharded store can be persistent: a manifest (MANIFEST.json, written
// atomically via rename) in every shard root records the layout (format,
// shard count, placement) and a catalog of shared input arrays — metadata
// plus the fill fingerprint of their synthetic data. Reopening the same
// directories restores the catalog, so a restarted server can serve
// persisted inputs without refilling them.
package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"time"

	"riotshare/internal/blas"
	"riotshare/internal/prog"
)

// Placement names and functions. A placement maps (array, block row, block
// col) to the owning shard; it must be deterministic, so every open of the
// same directories routes blocks identically.
const (
	// PlacementHash stripes by an FNV-1a hash of the array name and block
	// coordinates — statistically even across shards for any access
	// pattern.
	PlacementHash = "hash"
	// PlacementRows round-robins whole grid rows across shards: shard =
	// block-row mod N. Row-panel scans then stream from one device while
	// column sweeps fan out across all of them.
	PlacementRows = "rows"
)

// PlacementFunc maps one block to its owning shard in [0, shards).
type PlacementFunc func(array string, r, c int64, shards int) int

// HashPlacement is PlacementHash.
func HashPlacement(array string, r, c int64, shards int) int {
	h := fnv.New64a()
	h.Write([]byte(array))
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(r))
	binary.LittleEndian.PutUint64(buf[8:], uint64(c))
	h.Write(buf[:])
	return int(h.Sum64() % uint64(shards))
}

// RowPlacement is PlacementRows.
func RowPlacement(array string, r, c int64, shards int) int {
	return int(uint64(r) % uint64(shards))
}

// placementByName resolves a placement name ("" defaults to hash).
func placementByName(name string) (PlacementFunc, string, error) {
	switch name {
	case "", PlacementHash:
		return HashPlacement, PlacementHash, nil
	case PlacementRows:
		return RowPlacement, PlacementRows, nil
	default:
		return nil, "", fmt.Errorf("storage: unknown placement %q (%s, %s)", name, PlacementHash, PlacementRows)
	}
}

// manifestName is the per-shard-root manifest file.
const manifestName = "MANIFEST.json"

// manifestVersion guards the on-disk manifest schema.
const manifestVersion = 1

// CatalogEntry is one cataloged (persistent) array: enough metadata to
// reopen its stores, plus the fill fingerprint identifying its synthetic
// contents.
type CatalogEntry struct {
	BlockRows int `json:"blockRows"`
	BlockCols int `json:"blockCols"`
	GridRows  int `json:"gridRows"`
	GridCols  int `json:"gridCols"`
	// LogicalBlockBytes preserves paper-scale I/O accounting across
	// restarts (it may exceed the physical block size on scaled-down
	// data).
	LogicalBlockBytes int64 `json:"logicalBlockBytes"`
	// Fingerprint identifies the deterministic synthetic fill (seed, name,
	// shape, fill version). A server reopening the store skips refilling
	// an input whose expected fingerprint matches; a mismatch forces a
	// refill instead of serving stale data.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// Array rebuilds the array metadata a catalog entry describes.
func (e CatalogEntry) Array(name string) *prog.Array {
	return &prog.Array{
		Name:      name,
		BlockRows: e.BlockRows, BlockCols: e.BlockCols,
		GridRows: e.GridRows, GridCols: e.GridCols,
		LogicalBlockBytes: e.LogicalBlockBytes,
	}
}

// entryFor catalogs an array.
func entryFor(arr *prog.Array, fingerprint string) CatalogEntry {
	return CatalogEntry{
		BlockRows: arr.BlockRows, BlockCols: arr.BlockCols,
		GridRows: arr.GridRows, GridCols: arr.GridCols,
		LogicalBlockBytes: arr.LogicalBlockBytes,
		Fingerprint:       fingerprint,
	}
}

// manifest is the persisted per-shard-root layout + catalog.
type manifest struct {
	Version    int                     `json:"version"`
	Format     string                  `json:"format"`
	Shards     int                     `json:"shards"`
	ShardIndex int                     `json:"shardIndex"`
	Placement  string                  `json:"placement"`
	Arrays     map[string]CatalogEntry `json:"arrays"`
}

// ShardedOptions configures OpenSharded.
type ShardedOptions struct {
	// Format selects the per-shard on-disk block format (default DAF).
	Format Format
	// Placement selects the block→shard mapping by name ("" or "hash",
	// "rows").
	Placement string
	// Persist enables the manifest catalog: the layout is validated (or
	// written) at open, and shared arrays recorded with RecordShared
	// survive restarts.
	Persist bool
	// SerialDevice makes each shard serve one simulated-latency request at
	// a time (see Manager.SerialDevice) — the regime where striping across
	// shards buys parallel read bandwidth.
	SerialDevice bool
}

// ShardedManager stripes blocks across N shard directories behind the
// Backend interface. It is safe for concurrent use; requests to different
// shards proceed in parallel.
type ShardedManager struct {
	dirs      []string
	shards    []*Manager
	format    Format
	place     PlacementFunc
	placeName string
	persist   bool

	mu       sync.Mutex
	catalog  map[string]CatalogEntry
	reopened bool
}

// OpenSharded opens (or creates) a sharded store over the given shard
// directories. With Persist set it validates any existing manifests — a
// missing or corrupt shard is reported by index and path — loads the shared
// catalog, and reopens the stores of every cataloged array; a cataloged
// array whose store files have gone missing is dropped from the catalog
// (forcing a refill) rather than served as empty data.
func OpenSharded(dirs []string, opt ShardedOptions) (*ShardedManager, error) {
	if len(dirs) == 0 {
		return nil, fmt.Errorf("storage: OpenSharded needs at least one shard directory")
	}
	place, placeName, err := placementByName(opt.Placement)
	if err != nil {
		return nil, err
	}
	sm := &ShardedManager{
		dirs:      dirs,
		format:    opt.Format,
		place:     place,
		placeName: placeName,
		persist:   opt.Persist,
		catalog:   make(map[string]CatalogEntry),
	}
	if opt.Persist {
		if err := sm.loadManifests(); err != nil {
			return nil, err
		}
	}
	for _, dir := range dirs {
		m, err := NewManager(dir, opt.Format)
		if err != nil {
			return nil, fmt.Errorf("storage: shard %s: %w", dir, err)
		}
		m.SerialDevice = opt.SerialDevice
		sm.shards = append(sm.shards, m)
	}
	if opt.Persist {
		if err := sm.reopenCatalog(); err != nil {
			sm.Close()
			return nil, err
		}
		if err := sm.saveManifests(); err != nil {
			sm.Close()
			return nil, err
		}
	}
	return sm, nil
}

// loadManifests reads and cross-validates the per-shard manifests. Either
// no shard has one (a fresh store) or every shard must carry a structurally
// consistent one; anything else is a clean error naming the shard. Array
// entries that diverge across shards (a crash between manifest writes) are
// dropped from the effective catalog so their inputs get refilled instead
// of served stale.
func (sm *ShardedManager) loadManifests() error {
	manifests := make([]*manifest, len(sm.dirs))
	found := 0
	for i, dir := range sm.dirs {
		data, err := os.ReadFile(filepath.Join(dir, manifestName))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return fmt.Errorf("storage: shard %d (%s): read manifest: %w", i, dir, err)
		}
		var mf manifest
		if err := json.Unmarshal(data, &mf); err != nil {
			return fmt.Errorf("storage: shard %d (%s): corrupt manifest: %w", i, dir, err)
		}
		manifests[i] = &mf
		found++
	}
	if found == 0 {
		return nil // fresh store: manifests are written at open
	}
	for i, mf := range manifests {
		if mf == nil {
			return fmt.Errorf("storage: shard %d (%s): manifest missing while %d other shard(s) have one — shard directory lost or wrong -shard-dirs", i, sm.dirs[i], found)
		}
		if mf.Version != manifestVersion {
			return fmt.Errorf("storage: shard %d (%s): manifest version %d, want %d", i, sm.dirs[i], mf.Version, manifestVersion)
		}
		if mf.Format != sm.format.String() {
			return fmt.Errorf("storage: shard %d (%s): stored format %q, opened as %q", i, sm.dirs[i], mf.Format, sm.format.String())
		}
		if mf.Shards != len(sm.dirs) {
			return fmt.Errorf("storage: shard %d (%s): store was written with %d shard(s), reopened with %d — block placement would not match", i, sm.dirs[i], mf.Shards, len(sm.dirs))
		}
		if mf.ShardIndex != i {
			return fmt.Errorf("storage: shard %d (%s): directory is shard %d of the store — shard directories are ordered", i, sm.dirs[i], mf.ShardIndex)
		}
		if mf.Placement != sm.placeName {
			return fmt.Errorf("storage: shard %d (%s): store was written with placement %q, reopened with %q", i, sm.dirs[i], mf.Placement, sm.placeName)
		}
	}
	// Effective catalog: entries identical across every shard.
	for name, e := range manifests[0].Arrays {
		same := true
		for _, mf := range manifests[1:] {
			if other, ok := mf.Arrays[name]; !ok || other != e {
				same = false
				break
			}
		}
		if same {
			sm.catalog[name] = e
		}
	}
	sm.reopened = true
	return nil
}

// reopenCatalog reopens the stores of every cataloged array. An array whose
// store file is missing in any shard is dropped from the catalog: its data
// is gone, and refilling beats silently serving zeros from a fresh file.
func (sm *ShardedManager) reopenCatalog() error {
	for name, e := range sm.catalog {
		intact := true
		for _, m := range sm.shards {
			if _, err := os.Stat(filepath.Join(m.Dir, name+"."+sm.format.String())); err != nil {
				intact = false
				break
			}
		}
		if !intact {
			delete(sm.catalog, name)
			continue
		}
		if err := sm.createStores(e.Array(name)); err != nil {
			return err
		}
	}
	return nil
}

// saveManifests writes the manifest to every shard root, each atomically
// (temp file + rename), so a reader never observes a torn manifest.
func (sm *ShardedManager) saveManifests() error {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.saveManifestsLocked()
}

func (sm *ShardedManager) saveManifestsLocked() error {
	if !sm.persist {
		return nil
	}
	for i, dir := range sm.dirs {
		mf := manifest{
			Version:    manifestVersion,
			Format:     sm.format.String(),
			Shards:     len(sm.dirs),
			ShardIndex: i,
			Placement:  sm.placeName,
			Arrays:     sm.catalog,
		}
		data, err := json.MarshalIndent(&mf, "", "  ")
		if err != nil {
			return err
		}
		tmp := filepath.Join(dir, manifestName+".tmp")
		if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("storage: shard %d (%s): write manifest: %w", i, dir, err)
		}
		if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
			return fmt.Errorf("storage: shard %d (%s): commit manifest: %w", i, dir, err)
		}
	}
	return nil
}

// createStores opens the array's store in every shard (each shard holds the
// blocks the placement routes to it).
func (sm *ShardedManager) createStores(arr *prog.Array) error {
	for i, m := range sm.shards {
		if err := m.Create(arr); err != nil {
			return fmt.Errorf("storage: shard %d (%s): %w", i, sm.dirs[i], err)
		}
	}
	return nil
}

// Create opens the store for an array in every shard.
func (sm *ShardedManager) Create(arr *prog.Array) error {
	return sm.createStores(arr)
}

// CreateAll opens stores for every array of a program.
func (sm *ShardedManager) CreateAll(p *prog.Program) error {
	for _, arr := range p.Arrays {
		if err := sm.Create(arr); err != nil {
			return err
		}
	}
	return nil
}

// shardFor routes one block.
func (sm *ShardedManager) shardFor(array string, r, c int64) *Manager {
	return sm.shards[sm.place(array, r, c, len(sm.shards))]
}

// WriteBlock stores one block on its owning shard.
func (sm *ShardedManager) WriteBlock(array string, r, c int64, blk *blas.Matrix) error {
	return sm.shardFor(array, r, c).WriteBlock(array, r, c, blk)
}

// ReadBlock fetches one block from its owning shard. Concurrent reads of
// blocks on different shards proceed fully in parallel (independent
// devices); concurrent reads of the same block coalesce inside its shard.
func (sm *ShardedManager) ReadBlock(array string, r, c int64) (*blas.Matrix, error) {
	return sm.shardFor(array, r, c).ReadBlock(array, r, c)
}

// Drop closes and unregisters the array's stores on every shard and, if the
// array was cataloged, removes it from the persisted catalog.
func (sm *ShardedManager) Drop(array string, deleteFile bool) error {
	var first error
	for _, m := range sm.shards {
		if err := m.Drop(array, deleteFile); err != nil && first == nil {
			first = err
		}
	}
	sm.mu.Lock()
	if _, ok := sm.catalog[array]; ok {
		delete(sm.catalog, array)
		if err := sm.saveManifestsLocked(); err != nil && first == nil {
			first = err
		}
	}
	sm.mu.Unlock()
	return first
}

// Stats sums the physical I/O counters across shards.
func (sm *ShardedManager) Stats() Stats {
	var total Stats
	for _, m := range sm.shards {
		st := m.Stats()
		total.ReadReqs += st.ReadReqs
		total.ReadBytes += st.ReadBytes
		total.WriteReqs += st.WriteReqs
		total.WriteBytes += st.WriteBytes
	}
	return total
}

// ShardStats is one shard's physical I/O with its directory.
type ShardStats struct {
	Dir string `json:"dir"`
	Stats
}

// ShardStats snapshots per-shard physical I/O, in shard order — the
// per-device utilization view a placement function is judged by.
func (sm *ShardedManager) ShardStats() []ShardStats {
	out := make([]ShardStats, len(sm.shards))
	for i, m := range sm.shards {
		out[i] = ShardStats{Dir: sm.dirs[i], Stats: m.Stats()}
	}
	return out
}

// Shards returns the shard count.
func (sm *ShardedManager) Shards() int { return len(sm.shards) }

// Placement returns the placement name routing blocks to shards.
func (sm *ShardedManager) Placement() string { return sm.placeName }

// Reopened reports whether OpenSharded found an existing manifest — the
// open-existing (restart) path as opposed to a fresh store.
func (sm *ShardedManager) Reopened() bool { return sm.reopened }

// SharedEntry returns the cataloged metadata and fingerprint of a
// persistent shared array, if present.
func (sm *ShardedManager) SharedEntry(name string) (CatalogEntry, bool) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	e, ok := sm.catalog[name]
	return e, ok
}

// RecordShared catalogs a filled shared input array under its fill
// fingerprint and persists the manifest to every shard root. No-op without
// Persist.
func (sm *ShardedManager) RecordShared(arr *prog.Array, fingerprint string) error {
	if !sm.persist {
		return nil
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	sm.catalog[arr.Name] = entryFor(arr, fingerprint)
	return sm.saveManifestsLocked()
}

// SetLatency configures the simulated per-request latency on every shard;
// each shard sleeps independently, like separate devices.
func (sm *ShardedManager) SetLatency(read, write time.Duration) {
	for _, m := range sm.shards {
		m.SetLatency(read, write)
	}
}

// Close closes every shard.
func (sm *ShardedManager) Close() error {
	var first error
	for _, m := range sm.shards {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ShardDirs derives N shard directory paths under one root (shard-0 …
// shard-N-1) — the default layout when explicit directories (separate
// devices) are not given.
func ShardDirs(root string, n int) []string {
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = filepath.Join(root, fmt.Sprintf("shard-%d", i))
	}
	return dirs
}
