// sharded.go stripes a block store across several shards — local
// directories standing in for independent devices, remote riotblockd
// servers standing on other machines, mixed freely (a shard spec is a
// directory path or a host:port address; see IsRemoteSpec). Every block of
// every array has a primary shard, chosen by a deterministic placement
// function of the array name and block coordinates, so any process opening
// the same shard specs sees the same layout. Each shard is a full block
// store (a single-directory Manager, or one behind a riotblockd server):
// physical I/O counters stay per-shard (per-device utilization is visible),
// concurrent reads of blocks on different shards proceed in parallel (each
// shard is its own device), and coalescing still works because one block
// always routes to one shard.
//
// With Replicas = k > 1 every block is mirrored on its primary shard plus
// the next k-1 shards in ring order, under either placement. Losing a shard
// then degrades reads instead of losing data: reads whose primary is gone
// fall back to a surviving replica (counted per shard as DegradedReads),
// writes skip the lost shard, and Repair re-mirrors the lost shard's blocks
// from the survivors so the store heals in place. A remote shard whose
// server stops answering (connection refused, retries exhausted — see
// ErrShardUnavailable) is degraded automatically the same way, replication
// permitting, so a killed riotblockd costs fallback reads, not failed
// queries.
//
// A sharded store can be persistent: a manifest (MANIFEST.json, written
// atomically and fsynced) in every shard root records the layout (format,
// shard count, replication, placement) and a catalog of shared input arrays
// — metadata plus the fill fingerprint of their synthetic data. Reopening
// the same shards restores the catalog, so a restarted server can serve
// persisted inputs without refilling them; a missing or corrupt manifest
// marks its shard degraded when replication still covers every block, and
// fails the open with a clean error naming the shard when it does not.
package storage

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"riotshare/internal/blas"
	"riotshare/internal/prog"
	"riotshare/internal/telemetry"
)

// Placement names and functions. A placement maps (array, block row, block
// col) to the owning shard; it must be deterministic, so every open of the
// same directories routes blocks identically.
const (
	// PlacementHash stripes by an FNV-1a hash of the array name and block
	// coordinates — statistically even across shards for any access
	// pattern.
	PlacementHash = "hash"
	// PlacementRows round-robins whole grid rows across shards: shard =
	// block-row mod N. Row-panel scans then stream from one device while
	// column sweeps fan out across all of them.
	PlacementRows = "rows"
)

// PlacementFunc maps one block to its primary shard in [0, shards).
type PlacementFunc func(array string, r, c int64, shards int) int

// HashPlacement is PlacementHash.
func HashPlacement(array string, r, c int64, shards int) int {
	h := fnv.New64a()
	h.Write([]byte(array))
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(r))
	binary.LittleEndian.PutUint64(buf[8:], uint64(c))
	h.Write(buf[:])
	return int(h.Sum64() % uint64(shards))
}

// RowPlacement is PlacementRows.
func RowPlacement(array string, r, c int64, shards int) int {
	return int(uint64(r) % uint64(shards))
}

// placementByName resolves a placement name ("" defaults to hash).
func placementByName(name string) (PlacementFunc, string, error) {
	switch name {
	case "", PlacementHash:
		return HashPlacement, PlacementHash, nil
	case PlacementRows:
		return RowPlacement, PlacementRows, nil
	default:
		return nil, "", fmt.Errorf("storage: unknown placement %q (%s, %s)", name, PlacementHash, PlacementRows)
	}
}

// manifestName is the per-shard-root manifest file.
const manifestName = "MANIFEST.json"

// manifestVersion guards the on-disk manifest schema. Replication was added
// without a bump: manifests written before it decode with Replicas 0, which
// normalizes to 1 — exactly their behavior.
const manifestVersion = 1

// CatalogEntry is one cataloged (persistent) array: enough metadata to
// reopen its stores, plus the fill fingerprint identifying its synthetic
// contents.
type CatalogEntry struct {
	BlockRows int `json:"blockRows"`
	BlockCols int `json:"blockCols"`
	GridRows  int `json:"gridRows"`
	GridCols  int `json:"gridCols"`
	// LogicalBlockBytes preserves paper-scale I/O accounting across
	// restarts (it may exceed the physical block size on scaled-down
	// data).
	LogicalBlockBytes int64 `json:"logicalBlockBytes"`
	// Fingerprint identifies the deterministic synthetic fill (seed, name,
	// shape, fill version). A server reopening the store skips refilling
	// an input whose expected fingerprint matches; a mismatch forces a
	// refill instead of serving stale data.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// Array rebuilds the array metadata a catalog entry describes.
func (e CatalogEntry) Array(name string) *prog.Array {
	return &prog.Array{
		Name:      name,
		BlockRows: e.BlockRows, BlockCols: e.BlockCols,
		GridRows: e.GridRows, GridCols: e.GridCols,
		LogicalBlockBytes: e.LogicalBlockBytes,
	}
}

// entryFor catalogs an array.
func entryFor(arr *prog.Array, fingerprint string) CatalogEntry {
	return CatalogEntry{
		BlockRows: arr.BlockRows, BlockCols: arr.BlockCols,
		GridRows: arr.GridRows, GridCols: arr.GridCols,
		LogicalBlockBytes: arr.LogicalBlockBytes,
		Fingerprint:       fingerprint,
	}
}

// manifest is the persisted per-shard-root layout + catalog.
type manifest struct {
	Version    int                     `json:"version"`
	Format     string                  `json:"format"`
	Shards     int                     `json:"shards"`
	ShardIndex int                     `json:"shardIndex"`
	Placement  string                  `json:"placement"`
	Replicas   int                     `json:"replicas,omitempty"`
	Arrays     map[string]CatalogEntry `json:"arrays"`
}

// ShardedOptions configures OpenSharded.
type ShardedOptions struct {
	// Format selects the per-shard on-disk block format (default DAF).
	// Remote shards must be served by a riotblockd started with the same
	// -format.
	Format Format
	// Placement selects the block→shard mapping by name ("" or "hash",
	// "rows").
	Placement string
	// Replicas mirrors each block on its primary shard plus the next
	// Replicas-1 shards in ring order (0 or 1 = no replication). With k >=
	// 2 a lost shard degrades reads to the surviving replicas instead of
	// failing the open, and Repair re-mirrors it in place. Must not exceed
	// the shard count; validated against the persisted manifests on
	// reopen.
	Replicas int
	// Persist enables the manifest catalog: the layout is validated (or
	// written) at open, and shared arrays recorded with RecordShared
	// survive restarts.
	Persist bool
	// SerialDevice makes each local shard serve one simulated-latency
	// request at a time (see Manager.SerialDevice) — the regime where
	// striping across shards buys parallel read bandwidth. Remote shards
	// take it from their server's -serial-device flag instead.
	SerialDevice bool
	// Remote tunes the client connecting to each remote (host:port) shard:
	// pool size, timeouts, retry policy. The zero value gets defaults; it
	// is ignored for local directory shards.
	Remote RemoteOptions
}

// ShardedManager stripes blocks across N shards — local directories and
// remote riotblockd servers, mixed freely — behind the Backend interface,
// optionally mirroring each block on k shards. It is safe for concurrent
// use; requests to different shards proceed in parallel.
type ShardedManager struct {
	specs     []string // one per shard: directory path or host:port
	shards    []shard
	format    Format
	place     PlacementFunc
	placeName string
	replicas  int
	persist   bool

	// degraded marks shards that are offline (lost directory, torn
	// manifest, an unreachable server, or an explicit DegradeShard): reads
	// skip them and fall back to a replica, writes skip them, Repair
	// brings them back. healing marks a degraded shard mid-Repair: reads
	// still skip it, but writes flow through (best effort) so blocks
	// updated during the re-mirror scan are not lost when the degraded
	// flag clears. degradedReads[i] counts reads whose primary shard i
	// could not serve them — the ongoing cost of running degraded; Repair
	// resets it.
	degraded      []atomic.Bool
	healing       []atomic.Bool
	degradedReads []atomic.Int64

	// readLat/writeLat are per-shard latency histograms, installed by
	// RegisterMetrics before the store takes traffic; nil when the
	// store is uninstrumented (the common case in tests).
	readLat  []*telemetry.Histogram
	writeLat []*telemetry.Histogram

	// degradeMu serializes the degrade decision (flag flip + coverage
	// check + manifest removal) between explicit DegradeShard calls and
	// the automatic degrade a persistent remote failure triggers, so two
	// concurrent degrades cannot both pass the coverage check and leave a
	// block with no live replica.
	degradeMu sync.Mutex

	// healMu orders Repair's per-block copies against concurrent writes:
	// writers hold it shared for the duration of a replica-set write,
	// Repair holds it exclusive around each (read replica, write target)
	// pair, so a copy of an older replica value can never land on top of
	// a newer concurrent write. It exists precisely to serialize that
	// block I/O. //riotvet:iolock
	healMu sync.RWMutex

	mu       sync.Mutex
	catalog  map[string]CatalogEntry
	arrays   map[string]*prog.Array // every registered array, for Repair
	reopened bool
}

// openShard builds one shard from its spec: a RemoteShard client for a
// host:port address, a directory-backed Manager otherwise.
func openShard(spec string, opt ShardedOptions) (shard, error) {
	if IsRemoteSpec(spec) {
		return NewRemoteShard(spec, opt.Remote), nil
	}
	m, err := NewManager(spec, opt.Format)
	if err != nil {
		return nil, fmt.Errorf("storage: shard %s: %w", spec, err)
	}
	m.SerialDevice = opt.SerialDevice
	return &localShard{m: m, dir: spec}, nil
}

// OpenSharded opens (or creates) a sharded store over the given shard
// specs — directory paths, host:port riotblockd addresses, or a mix. With
// Persist set it validates any existing manifests and loads the shared
// catalog, reopening the stores of every cataloged array; a cataloged array
// whose store files have gone missing is dropped from the catalog (forcing
// a refill) rather than served as empty data. A shard whose manifest is
// missing or corrupt — or whose server is unreachable — fails the open with
// an error naming it, unless the store is replicated and every block is
// still covered by a surviving replica, in which case the shard is merely
// degraded (see Degraded and Repair).
func OpenSharded(specs []string, opt ShardedOptions) (*ShardedManager, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("storage: OpenSharded needs at least one shard directory or address")
	}
	place, placeName, err := placementByName(opt.Placement)
	if err != nil {
		return nil, err
	}
	replicas := opt.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	if replicas > len(specs) {
		return nil, fmt.Errorf("storage: %d-way replication needs at least %d shards (have %d)",
			replicas, replicas, len(specs))
	}
	sm := &ShardedManager{
		specs:         specs,
		format:        opt.Format,
		place:         place,
		placeName:     placeName,
		replicas:      replicas,
		persist:       opt.Persist,
		degraded:      make([]atomic.Bool, len(specs)),
		healing:       make([]atomic.Bool, len(specs)),
		degradedReads: make([]atomic.Int64, len(specs)),
		catalog:       make(map[string]CatalogEntry),
		arrays:        make(map[string]*prog.Array),
	}
	for _, spec := range specs {
		sd, err := openShard(spec, opt)
		if err != nil {
			sm.Close()
			return nil, err
		}
		sm.shards = append(sm.shards, sd)
	}
	if opt.Persist {
		if err := sm.loadManifests(); err != nil {
			sm.Close()
			return nil, err
		}
		if err := sm.reopenCatalog(); err != nil {
			sm.Close()
			return nil, err
		}
		if err := sm.saveManifests(); err != nil {
			sm.Close()
			return nil, err
		}
	}
	return sm, nil
}

// loadManifests reads and cross-validates the per-shard manifests. Either
// no shard has one (a fresh store) or every shard must carry a structurally
// consistent one. A shard whose manifest is missing or corrupt (a lost
// directory, a torn write, an unreachable server) is degraded when
// replication still covers every block, and is a clean error naming the
// shard otherwise. Array entries that diverge across surviving shards (a
// crash between manifest writes) are dropped from the effective catalog so
// their inputs get refilled instead of served stale.
//
// Runs only from Open, before the manager is shared, so it touches
// sm.catalog without sm.mu. //riotvet:locked
func (sm *ShardedManager) loadManifests() error {
	manifests := make([]*manifest, len(sm.shards))
	lost := make([]error, len(sm.shards)) // why shard i has no usable manifest
	found := 0
	for i, sd := range sm.shards {
		data, err := sd.ReadManifest()
		if err != nil {
			// A missing file, a missing directory, and a dead server all
			// look the same here: the shard's manifest is unreadable.
			// Anything else (permissions, I/O error) is also unusable;
			// remember why.
			lost[i] = fmt.Errorf("storage: shard %d (%s): read manifest: %w", i, sm.specs[i], err)
			continue
		}
		var mf manifest
		if err := json.Unmarshal(data, &mf); err != nil {
			lost[i] = fmt.Errorf("storage: shard %d (%s): corrupt manifest: %w", i, sm.specs[i], err)
			continue
		}
		manifests[i] = &mf
		found++
	}
	if found == 0 {
		return nil // fresh store: manifests are written at open
	}
	var survivors []*manifest
	for i, mf := range manifests {
		if mf == nil {
			if errors.Is(lost[i], fs.ErrNotExist) {
				lost[i] = fmt.Errorf("storage: shard %d (%s): manifest missing while %d other shard(s) have one — shard directory lost or wrong -shard-dirs", i, sm.specs[i], found)
			}
			continue
		}
		if mf.Version != manifestVersion {
			return fmt.Errorf("storage: shard %d (%s): manifest version %d, want %d", i, sm.specs[i], mf.Version, manifestVersion)
		}
		if mf.Format != sm.format.String() {
			return fmt.Errorf("storage: shard %d (%s): stored format %q, opened as %q", i, sm.specs[i], mf.Format, sm.format.String())
		}
		if mf.Shards != len(sm.specs) {
			return fmt.Errorf("storage: shard %d (%s): store was written with %d shard(s), reopened with %d — block placement would not match", i, sm.specs[i], mf.Shards, len(sm.specs))
		}
		if mf.ShardIndex != i {
			return fmt.Errorf("storage: shard %d (%s): directory is shard %d of the store — shard directories are ordered", i, sm.specs[i], mf.ShardIndex)
		}
		if mf.Placement != sm.placeName {
			return fmt.Errorf("storage: shard %d (%s): store was written with placement %q, reopened with %q", i, sm.specs[i], mf.Placement, sm.placeName)
		}
		stored := mf.Replicas
		if stored <= 0 {
			stored = 1
		}
		if stored != sm.replicas {
			return fmt.Errorf("storage: shard %d (%s): store was written with %d-way replication, reopened with %d — replica placement would not match", i, sm.specs[i], stored, sm.replicas)
		}
		survivors = append(survivors, mf)
	}
	// Shards without a usable manifest: degrade them if every block is
	// still covered by a surviving replica, otherwise fail with the first
	// shard's error.
	for i := range manifests {
		if manifests[i] == nil {
			sm.degraded[i].Store(true)
		}
	}
	if p := sm.uncoveredPrimary(); p >= 0 {
		first := 0
		for i := range manifests {
			if manifests[i] == nil {
				first = i
				break
			}
		}
		if sm.replicas > 1 {
			return fmt.Errorf("storage: coverage lost — blocks with primary shard %d have no surviving replica (%d-way replication): %w", p, sm.replicas, lost[first])
		}
		return lost[first]
	}
	// Effective catalog: entries identical across every surviving shard.
	for name, e := range survivors[0].Arrays {
		same := true
		for _, mf := range survivors[1:] {
			if other, ok := mf.Arrays[name]; !ok || other != e {
				same = false
				break
			}
		}
		if same {
			sm.catalog[name] = e
		}
	}
	sm.reopened = true
	return nil
}

// uncoveredPrimary returns the first primary shard whose whole replica set
// (the k consecutive shards starting at it, in ring order) is degraded —
// the coverage-lost condition — or -1 when every block still has a live
// copy.
func (sm *ShardedManager) uncoveredPrimary() int {
	n := len(sm.specs)
	for p := 0; p < n; p++ {
		covered := false
		for j := 0; j < sm.replicas; j++ {
			if !sm.degraded[(p+j)%n].Load() {
				covered = true
				break
			}
		}
		if !covered {
			return p
		}
	}
	return -1
}

// reopenCatalog reopens the stores of every cataloged array. An array whose
// store file is missing on any live shard is dropped from the catalog: its
// data is gone, and refilling beats silently serving zeros from a fresh
// file. Degraded shards are not consulted — their blocks live on the
// surviving replicas.
//
// Runs only from Open, before the manager is shared, so it touches
// sm.catalog without sm.mu. //riotvet:locked
func (sm *ShardedManager) reopenCatalog() error {
	for name, e := range sm.catalog {
		intact := true
		for i, sd := range sm.shards {
			if sm.degraded[i].Load() {
				continue
			}
			if ok, err := sd.StoreExists(name); err != nil || !ok {
				intact = false
				break
			}
		}
		if !intact {
			delete(sm.catalog, name)
			continue
		}
		// Ensure, not Create: a remote shard's server outlives this
		// client session and may still have the store registered.
		if err := sm.createStores(e.Array(name), true); err != nil {
			return err
		}
	}
	return nil
}

// saveManifests writes the manifest to every live shard root, each
// atomically and fsynced (locally via atomicWriteFile, remotely via the
// server's identical discipline), so a crash can never leave a torn or
// empty MANIFEST.json. Degraded shards get no manifest — that is exactly
// what marks them degraded on the next open, until Repair rewrites one.
func (sm *ShardedManager) saveManifests() error {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.saveManifestsLocked()
}

func (sm *ShardedManager) saveManifestsLocked() error {
	if !sm.persist {
		return nil
	}
	for i, sd := range sm.shards {
		if sm.degraded[i].Load() {
			continue
		}
		mf := manifest{
			Version:    manifestVersion,
			Format:     sm.format.String(),
			Shards:     len(sm.specs),
			ShardIndex: i,
			Placement:  sm.placeName,
			Replicas:   sm.replicas,
			Arrays:     sm.catalog,
		}
		data, err := json.MarshalIndent(&mf, "", "  ")
		if err != nil {
			return err
		}
		if err := sd.WriteManifest(append(data, '\n')); err != nil {
			return fmt.Errorf("storage: shard %d (%s): write manifest: %w", i, sm.specs[i], err)
		}
	}
	return nil
}

// createStores opens the array's store on every live shard (each shard
// holds the blocks whose replica sets include it). On a mid-loop failure
// the stores already created are unwound — closed and unregistered — so the
// error leaks no file descriptors and a retry does not trip over "already
// created" on the shards that had succeeded. A shard whose server became
// unreachable is degraded (replication permitting) instead of failing the
// create. With ensure set the per-shard creates are idempotent — the
// catalog-reopen path, where a remote shard's long-lived server may still
// have the store registered.
func (sm *ShardedManager) createStores(arr *prog.Array, ensure bool) error {
	var created []int
	for i, sd := range sm.shards {
		if sm.offline(i) {
			continue
		}
		create := sd.Create
		if ensure {
			create = sd.Ensure
		}
		if err := create(arr); err != nil {
			if sm.healing[i].Load() {
				continue // best effort on a mid-repair shard; fallback covers it
			}
			if errors.Is(err, ErrShardUnavailable) && sm.autoDegrade(i) {
				continue
			}
			for _, j := range created {
				_ = sm.shards[j].Drop(arr.Name, false)
			}
			return fmt.Errorf("storage: shard %d (%s): %w", i, sm.specs[i], err)
		}
		created = append(created, i)
	}
	sm.mu.Lock()
	sm.arrays[arr.Name] = arr
	sm.mu.Unlock()
	return nil
}

// Create opens the store for an array on every live shard.
func (sm *ShardedManager) Create(arr *prog.Array) error {
	return sm.createStores(arr, false)
}

// CreateAll opens stores for every array of a program.
func (sm *ShardedManager) CreateAll(p *prog.Program) error {
	for _, arr := range p.Arrays {
		if err := sm.Create(arr); err != nil {
			return err
		}
	}
	return nil
}

// primaryFor routes one block to its primary shard index.
func (sm *ShardedManager) primaryFor(array string, r, c int64) int {
	return sm.place(array, r, c, len(sm.shards))
}

// offline reports whether shard i should be skipped by writes, creates,
// and drops: degraded and not currently healing. A healing shard takes
// writes again (so the re-mirror scan cannot race ahead of live traffic)
// but stays invisible to reads until Repair completes.
func (sm *ShardedManager) offline(i int) bool {
	return sm.degraded[i].Load() && !sm.healing[i].Load()
}

// autoDegrade takes shard i offline in response to a persistent remote
// failure (ErrShardUnavailable), if replication still covers every block.
// It is the automatic twin of DegradeShard: same coverage check, but
// manifest removal is best effort — the failing server cannot answer a
// removal either, and a restart against a still-dead server degrades the
// shard again at open (see docs/operations.md for the recovered-server
// caveat). Returns whether the shard ended up degraded.
func (sm *ShardedManager) autoDegrade(i int) bool {
	sm.degradeMu.Lock()
	defer sm.degradeMu.Unlock()
	if sm.degraded[i].Load() {
		return true
	}
	if sm.healing[i].Load() {
		return false // mid-repair failures surface to the repair, not here
	}
	sm.degraded[i].Store(true)
	if sm.uncoveredPrimary() >= 0 {
		sm.degraded[i].Store(false)
		return false
	}
	if sm.persist {
		_ = sm.shards[i].RemoveManifest()
	}
	return true
}

// WriteBlock stores one block on every live shard of its replica set (the
// primary plus the next Replicas-1 shards in ring order). Degraded shards
// are skipped — Repair re-mirrors them later — and a shard whose server
// became unreachable mid-write is degraded on the spot, replication
// permitting; a write with no live replica at all is an error (the open
// refuses such a store, so this only guards racing DegradeShard calls).
func (sm *ShardedManager) WriteBlock(array string, r, c int64, blk *blas.Matrix) error {
	sm.healMu.RLock()
	defer sm.healMu.RUnlock()
	n := len(sm.shards)
	p := sm.primaryFor(array, r, c)
	wrote := 0
	var errs []error
	for j := 0; j < sm.replicas; j++ {
		i := (p + j) % n
		if sm.offline(i) {
			continue
		}
		t0 := time.Now()
		if err := sm.shards[i].WriteBlock(array, r, c, blk); err != nil {
			observeSince(sm.writeLat, i, t0)
			// Write-through to a healing shard is best effort: a store the
			// repair scan has not ensured yet just means the block is
			// re-mirrored (or served by fallback) later.
			if sm.healing[i].Load() {
				continue
			}
			if errors.Is(err, ErrShardUnavailable) && sm.autoDegrade(i) {
				continue
			}
			errs = append(errs, fmt.Errorf("storage: shard %d (%s): %w", i, sm.specs[i], err))
			continue
		}
		observeSince(sm.writeLat, i, t0)
		wrote++
	}
	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	if wrote == 0 {
		return fmt.Errorf("storage: write %s[%d,%d]: every replica shard is degraded", array, r, c)
	}
	return nil
}

// ReadBlock fetches one block from its primary shard, falling back to the
// next replicas in ring order when the primary is degraded or fails — each
// fallback served is counted against the primary as a DegradedRead. A
// shard whose server became unreachable mid-read is degraded on the spot,
// replication permitting, so later reads skip straight to the replicas.
// Concurrent reads of blocks on different shards proceed fully in parallel
// (independent devices); concurrent reads of the same block coalesce inside
// the shard that serves them.
func (sm *ShardedManager) ReadBlock(array string, r, c int64) (*blas.Matrix, error) {
	n := len(sm.shards)
	p := sm.primaryFor(array, r, c)
	var firstErr error
	for j := 0; j < sm.replicas; j++ {
		i := (p + j) % n
		if sm.degraded[i].Load() {
			continue
		}
		t0 := time.Now()
		blk, err := sm.shards[i].ReadBlock(array, r, c)
		observeSince(sm.readLat, i, t0)
		if err == nil {
			if i != p {
				sm.degradedReads[p].Add(1)
			}
			return blk, nil
		}
		if errors.Is(err, ErrShardUnavailable) {
			sm.autoDegrade(i)
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("storage: shard %d (%s): %w", i, sm.specs[i], err)
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("storage: read %s[%d,%d]: every replica shard is degraded", array, r, c)
	}
	return nil, firstErr
}

// DegradeShard takes one shard offline: its open stores are closed (so
// reads cannot be served from file descriptors of lost files), subsequent
// reads fall back to replicas, writes skip it, and — on a persistent store
// — its manifest is removed so a crash or reopen sees it degraded too. It
// fails when losing the shard would leave some block with no live replica.
// Repair undoes it.
func (sm *ShardedManager) DegradeShard(shard int) error {
	if shard < 0 || shard >= len(sm.shards) {
		return fmt.Errorf("storage: shard %d out of range (%d shards)", shard, len(sm.shards))
	}
	sm.degradeMu.Lock()
	if sm.healing[shard].Load() {
		sm.degradeMu.Unlock()
		return fmt.Errorf("storage: shard %d is being repaired", shard)
	}
	if sm.degraded[shard].Load() {
		sm.degradeMu.Unlock()
		return nil
	}
	sm.degraded[shard].Store(true)
	if p := sm.uncoveredPrimary(); p >= 0 {
		sm.degraded[shard].Store(false)
		sm.degradeMu.Unlock()
		return fmt.Errorf("storage: cannot degrade shard %d: blocks with primary shard %d would have no surviving replica (%d-way replication)", shard, p, sm.replicas)
	}
	// The on-disk state must commit to "degraded" before the in-memory
	// state does anything irreversible: if the manifest cannot be removed,
	// a restart would reopen the shard healthy while this process skipped
	// its writes — stale data with no error. Refuse and stay healthy
	// instead. An unreachable server is the one exception: its manifest
	// cannot be removed, but it cannot serve stale data either while down.
	if sm.persist {
		if err := sm.shards[shard].RemoveManifest(); err != nil && !errors.Is(err, ErrShardUnavailable) {
			sm.degraded[shard].Store(false)
			sm.degradeMu.Unlock()
			return fmt.Errorf("storage: shard %d (%s): remove manifest: %w", shard, sm.specs[shard], err)
		}
	}
	sm.degradeMu.Unlock()
	sm.mu.Lock()
	names := make([]string, 0, len(sm.arrays))
	for name := range sm.arrays {
		names = append(names, name)
	}
	sm.mu.Unlock()
	for _, name := range names {
		_ = sm.shards[shard].Drop(name, false) // best effort: the files may already be gone
	}
	return nil
}

// Repair re-mirrors one degraded shard from the surviving replicas: the
// shard's leftover store files are wiped (they may hold blocks from before
// the loss, or from since-dropped arrays — re-reading them would serve
// stale data), every block whose replica set includes the shard is read
// from a live copy and rewritten there, the shard's degraded flag and
// DegradedReads counter are cleared, and — on a persistent store — its
// manifest is rewritten, so the next open sees a healthy shard. Repairing
// a remote shard requires its riotblockd to be reachable again (the server
// owns the directory); repairing one that is still down fails cleanly and
// leaves the shard degraded.
//
// Repair is safe against live traffic: once the scan starts the shard
// accepts write-through (healing state; reads still skip it), and each
// block copy excludes concurrent writers, so a copy of an older replica
// value can never overwrite a newer concurrent write. Blocks no surviving
// replica can produce are skipped (they were never written); losing them
// entirely is the coverage-lost condition the open already refuses. A
// shard that is not degraded needs no repair: Repair returns nil without
// touching it.
func (sm *ShardedManager) Repair(shard int) error {
	n := len(sm.shards)
	if shard < 0 || shard >= n {
		return fmt.Errorf("storage: shard %d out of range (%d shards)", shard, n)
	}
	if !sm.degraded[shard].Load() {
		return nil
	}
	if sm.replicas < 2 {
		return fmt.Errorf("storage: repair needs replication (replicas=%d): no replica holds shard %d's blocks", sm.replicas, shard)
	}
	if !sm.healing[shard].CompareAndSwap(false, true) {
		return fmt.Errorf("storage: shard %d is already being repaired", shard)
	}
	defer sm.healing[shard].Store(false)
	sm.mu.Lock()
	names := make([]string, 0, len(sm.arrays))
	for name := range sm.arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	arrays := make([]*prog.Array, len(names))
	for i, name := range names {
		arrays[i] = sm.arrays[name]
	}
	sm.mu.Unlock()
	// The lost shard may be gone directory and all (or its server may have
	// just come back); ready it, then start every store from an empty file
	// — anything left on disk predates the loss and must not survive the
	// re-mirror.
	target := sm.shards[shard]
	if err := target.PrepareRepair(); err != nil {
		return fmt.Errorf("storage: repair shard %d (%s): %w", shard, sm.specs[shard], err)
	}
	for _, arr := range arrays {
		if err := target.WipeStore(arr.Name); err != nil {
			return fmt.Errorf("storage: repair shard %d (%s): wipe stale %s: %w", shard, sm.specs[shard], arr.Name, err)
		}
		if err := target.Ensure(arr); err != nil {
			return fmt.Errorf("storage: repair shard %d (%s): %w", shard, sm.specs[shard], err)
		}
	}
	for _, arr := range arrays {
		for r := int64(0); r < int64(arr.GridRows); r++ {
			for c := int64(0); c < int64(arr.GridCols); c++ {
				p := sm.primaryFor(arr.Name, r, c)
				mirrored := false
				for j := 0; j < sm.replicas; j++ {
					if (p+j)%n == shard {
						mirrored = true
						break
					}
				}
				if !mirrored {
					continue
				}
				if err := sm.copyBlock(arr.Name, r, c, p, shard); err != nil {
					return err
				}
			}
		}
	}
	sm.degraded[shard].Store(false)
	sm.degradedReads[shard].Store(0)
	return sm.saveManifests()
}

// copyBlock re-mirrors one block onto the healing shard under the
// exclusive side of healMu, so it cannot interleave with (and then
// overwrite) a concurrent replica-set write of the same block.
func (sm *ShardedManager) copyBlock(array string, r, c int64, primary, shard int) error {
	sm.healMu.Lock()
	defer sm.healMu.Unlock()
	n := len(sm.shards)
	var blk *blas.Matrix
	for j := 0; j < sm.replicas; j++ {
		i := (primary + j) % n
		if i == shard || sm.degraded[i].Load() {
			continue
		}
		if b, err := sm.shards[i].ReadBlock(array, r, c); err == nil {
			blk = b
			break
		}
	}
	if blk == nil {
		return nil // never written; nothing to mirror
	}
	if err := sm.shards[shard].WriteBlock(array, r, c, blk); err != nil {
		return fmt.Errorf("storage: repair shard %d (%s): %s[%d,%d]: %w", shard, sm.specs[shard], array, r, c, err)
	}
	return nil
}

// Drop closes and unregisters the array's stores on every live shard and,
// if the array was cataloged, removes it from the persisted catalog. Shard
// failures are aggregated — every failed shard is named — rather than
// reported first-only; a shard whose server became unreachable is degraded
// instead, replication permitting.
func (sm *ShardedManager) Drop(array string, deleteFile bool) error {
	var errs []error
	for i, sd := range sm.shards {
		if sm.offline(i) {
			continue
		}
		if err := sd.Drop(array, deleteFile); err != nil && !sm.healing[i].Load() {
			if errors.Is(err, ErrShardUnavailable) && sm.autoDegrade(i) {
				continue
			}
			errs = append(errs, fmt.Errorf("storage: shard %d (%s): %w", i, sm.specs[i], err))
		}
	}
	sm.mu.Lock()
	delete(sm.arrays, array)
	if _, ok := sm.catalog[array]; ok {
		delete(sm.catalog, array)
		if err := sm.saveManifestsLocked(); err != nil {
			errs = append(errs, err)
		}
	}
	sm.mu.Unlock()
	return errors.Join(errs...)
}

// Stats sums the physical I/O counters across shards. Remote shards report
// their server's counters (cumulative since the server started); an
// unreachable server contributes zeros.
func (sm *ShardedManager) Stats() Stats {
	var total Stats
	for _, sd := range sm.shards {
		st := sd.Stats()
		total.ReadReqs += st.ReadReqs
		total.ReadBytes += st.ReadBytes
		total.WriteReqs += st.WriteReqs
		total.WriteBytes += st.WriteBytes
	}
	return total
}

// ShardStats is one shard's physical I/O with its spec (directory or
// address), degraded state, and degraded-read count.
type ShardStats struct {
	// Dir is the shard's spec: its directory path, or its host:port
	// address for a remote shard.
	Dir string `json:"dir"`
	// Degraded marks a shard that is offline: reads it would have served
	// fall back to replicas, writes skip it, Repair brings it back.
	Degraded bool `json:"degraded,omitempty"`
	// DegradedReads counts reads whose primary is this shard that a
	// replica had to serve instead — the ongoing cost of running degraded.
	// Repair resets it.
	DegradedReads int64 `json:"degradedReads,omitempty"`
	Stats
}

// ShardStats snapshots per-shard physical I/O, in shard order — the
// per-device utilization view a placement function is judged by, plus each
// shard's degraded state and fallback-read count. Degraded remote shards
// are not polled (their servers are down); they report zero I/O.
func (sm *ShardedManager) ShardStats() []ShardStats {
	out := make([]ShardStats, len(sm.shards))
	for i, sd := range sm.shards {
		out[i] = ShardStats{
			Dir:           sm.specs[i],
			Degraded:      sm.degraded[i].Load(),
			DegradedReads: sm.degradedReads[i].Load(),
		}
		if !sm.degraded[i].Load() {
			out[i].Stats = sd.Stats()
		}
	}
	return out
}

// Shards returns the shard count.
func (sm *ShardedManager) Shards() int { return len(sm.shards) }

// Replicas returns the replication factor (1 = unreplicated).
func (sm *ShardedManager) Replicas() int { return sm.replicas }

// Placement returns the placement name routing blocks to shards.
func (sm *ShardedManager) Placement() string { return sm.placeName }

// Degraded lists the currently degraded shard indexes, in order.
func (sm *ShardedManager) Degraded() []int {
	var out []int
	for i := range sm.degraded {
		if sm.degraded[i].Load() {
			out = append(out, i)
		}
	}
	return out
}

// DegradedReads sums the fallback reads across every shard — zero on a
// fully healthy store.
func (sm *ShardedManager) DegradedReads() int64 {
	var total int64
	for i := range sm.degradedReads {
		total += sm.degradedReads[i].Load()
	}
	return total
}

// Reopened reports whether OpenSharded found an existing manifest — the
// open-existing (restart) path as opposed to a fresh store.
func (sm *ShardedManager) Reopened() bool { return sm.reopened }

// SharedEntry returns the cataloged metadata and fingerprint of a
// persistent shared array, if present.
func (sm *ShardedManager) SharedEntry(name string) (CatalogEntry, bool) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	e, ok := sm.catalog[name]
	return e, ok
}

// RecordShared catalogs a filled shared input array under its fill
// fingerprint and persists the manifest to every live shard root. No-op
// without Persist.
func (sm *ShardedManager) RecordShared(arr *prog.Array, fingerprint string) error {
	if !sm.persist {
		return nil
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	sm.catalog[arr.Name] = entryFor(arr, fingerprint)
	return sm.saveManifestsLocked()
}

// SetLatency configures the simulated per-request latency on every shard;
// each shard sleeps independently, like separate devices. For remote
// shards this sets the latency on the server (best effort).
func (sm *ShardedManager) SetLatency(read, write time.Duration) {
	for i, sd := range sm.shards {
		if sm.degraded[i].Load() {
			continue
		}
		sd.SetLatency(read, write)
	}
}

// Close closes every shard (local stores; remote client connections — the
// servers stay up), aggregating failures so every failed shard is named.
func (sm *ShardedManager) Close() error {
	var errs []error
	for i, sd := range sm.shards {
		if err := sd.Close(); err != nil {
			errs = append(errs, fmt.Errorf("storage: close shard %d (%s): %w", i, sm.specs[i], err))
		}
	}
	return errors.Join(errs...)
}

// ShardDirs derives N shard directory paths under one root (shard-0 …
// shard-N-1) — the default layout when explicit directories (separate
// devices) are not given.
func ShardDirs(root string, n int) []string {
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = filepath.Join(root, fmt.Sprintf("shard-%d", i))
	}
	return dirs
}
