package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"riotshare/internal/blas"
	"riotshare/internal/prog"
)

// BlockStore is the per-array key→payload store shared by the DAF and
// LAB-tree formats.
type BlockStore interface {
	// Write stores one block payload under its linearized index.
	Write(idx uint64, data []byte) error
	// Read fetches the payload stored under idx.
	Read(idx uint64) ([]byte, error)
	// Sync flushes buffered writes to the device.
	Sync() error
	// Close releases the store's file handle(s).
	Close() error
}

// DAF is the Directly Addressable File format: block idx lives at byte
// offset idx*blockBytes. Since every element of a dense matrix has a
// predetermined position, no index needs to be stored (§6's storage
// scheme).
type DAF struct {
	f          *os.File
	blockBytes int64
}

// OpenDAF opens or creates a DAF with fixed block payload size.
func OpenDAF(path string, blockBytes int64) (*DAF, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &DAF{f: f, blockBytes: blockBytes}, nil
}

// Write stores a block payload (must be exactly blockBytes long).
func (d *DAF) Write(idx uint64, data []byte) error {
	if int64(len(data)) != d.blockBytes {
		return fmt.Errorf("storage: DAF block size %d, want %d", len(data), d.blockBytes)
	}
	_, err := d.f.WriteAt(data, int64(idx)*d.blockBytes)
	return err
}

// Read fetches a block payload.
func (d *DAF) Read(idx uint64) ([]byte, error) {
	buf := make([]byte, d.blockBytes)
	n, err := d.f.ReadAt(buf, int64(idx)*d.blockBytes)
	if err != nil && n != len(buf) {
		return nil, fmt.Errorf("storage: DAF read block %d: %w", idx, err)
	}
	return buf, nil
}

// Sync flushes the file.
func (d *DAF) Sync() error { return d.f.Sync() }

// Close closes the file.
func (d *DAF) Close() error { return d.f.Close() }

// labStore adapts LABTree to BlockStore. The tree mutates shared in-memory
// state (root, free list, scratch page) on both reads and writes, so the
// adapter serializes all access; the DAF needs no lock because pread/pwrite
// on one descriptor are atomic.
type labStore struct {
	mu sync.Mutex
	t  *LABTree
}

func (s *labStore) Write(idx uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.Write(idx, data)
}

func (s *labStore) Read(idx uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.Read(idx)
}

func (s *labStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.Sync()
}

func (s *labStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.Close()
}

// Format selects the on-disk format.
type Format int

const (
	// FormatDAF is the directly addressable file.
	FormatDAF Format = iota
	// FormatLABTree is the linearized array B-tree.
	FormatLABTree
)

// String names the format.
func (f Format) String() string {
	if f == FormatLABTree {
		return "lab-tree"
	}
	return "daf"
}

// Linearization maps block coordinates to a key. Blocks are laid out in
// column-major order by default, matching §6's storage scheme.
type Linearization func(r, c int64, gridRows, gridCols int) uint64

// ColMajor is the paper's column-major block layout.
func ColMajor(r, c int64, gridRows, gridCols int) uint64 {
	return uint64(c)*uint64(gridRows) + uint64(r)
}

// RowMajor linearizes row-major.
func RowMajor(r, c int64, gridRows, gridCols int) uint64 {
	return uint64(r)*uint64(gridCols) + uint64(c)
}

// ZOrder interleaves coordinate bits (Morton order), an alternative
// studied for array storage locality.
func ZOrder(r, c int64, gridRows, gridCols int) uint64 {
	var z uint64
	for b := 0; b < 32; b++ {
		z |= (uint64(r) >> b & 1) << (2 * b)
		z |= (uint64(c) >> b & 1) << (2*b + 1)
	}
	return z
}

// Manager stores the blocks of a program's arrays in one store per array.
// It is safe for concurrent use: block reads and writes may be issued from
// many goroutines (the pipelined executor and its prefetcher do), and
// concurrent reads of the same block coalesce onto one disk request.
type Manager struct {
	Dir       string
	Format    Format
	Policy    SplitPolicy
	Linearize Linearization

	// ReadLatency/WriteLatency simulate a slow device by sleeping once per
	// physical block request (coalesced readers share one sleep). They let
	// pipelining experiments reproduce disk-bound behavior on fast local
	// storage; zero (the default) disables the simulation.
	ReadLatency  time.Duration
	WriteLatency time.Duration
	// SerialDevice serializes the simulated latency sleeps, modeling a
	// device that serves one request at a time (a single disk head). With
	// it, concurrent requests to one manager queue behind each other —
	// which is what makes striping across several managers (shards)
	// measurably faster for parallel reads.
	SerialDevice bool
	deviceMu     sync.Mutex

	mu     sync.RWMutex // guards stores/arrays registration
	stores map[string]BlockStore
	arrays map[string]*prog.Array

	// inflight coalesces concurrent reads of the same block: followers
	// wait for the leader's disk read instead of issuing a duplicate
	// request. Logical I/O accounting is the executor's job, so sharing a
	// physical read never distorts the paper-scale volumes.
	inflightMu sync.Mutex
	inflight   map[string]*inflightRead

	// Physical I/O counters (atomic): requests that actually reached a
	// block store. Coalesced read followers and buffer-pool hits do not
	// count, which is exactly what lets callers verify cross-query sharing
	// against logical volumes.
	physReadReqs, physReadBytes   atomic.Int64
	physWriteReqs, physWriteBytes atomic.Int64
}

// Stats is a snapshot of the manager's physical I/O counters.
type Stats struct {
	ReadReqs, ReadBytes   int64
	WriteReqs, WriteBytes int64
}

// SetLatency configures the simulated per-request device latency (zero
// disables). Call it before issuing I/O; it is not synchronized with
// in-flight requests.
func (m *Manager) SetLatency(read, write time.Duration) {
	m.ReadLatency, m.WriteLatency = read, write
}

// simulate sleeps for one simulated device request; on a serial device the
// sleep holds the device, queueing concurrent requests behind it.
func (m *Manager) simulate(d time.Duration) {
	if d <= 0 {
		return
	}
	if m.SerialDevice {
		m.deviceMu.Lock()
		defer m.deviceMu.Unlock()
	}
	time.Sleep(d)
}

// Stats returns the physical I/O performed since the manager was created:
// block requests that reached the underlying store, in physical (stored)
// bytes. Compare against the executor's logical volumes to measure how much
// I/O was absorbed by read coalescing and the shared buffer pool.
func (m *Manager) Stats() Stats {
	return Stats{
		ReadReqs:   m.physReadReqs.Load(),
		ReadBytes:  m.physReadBytes.Load(),
		WriteReqs:  m.physWriteReqs.Load(),
		WriteBytes: m.physWriteBytes.Load(),
	}
}

// inflightRead is one in-progress coalesced block read.
type inflightRead struct {
	done    chan struct{}
	blk     *blas.Matrix
	err     error
	waiters int
}

// NewManager creates a storage manager writing under dir.
func NewManager(dir string, format Format) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Manager{
		Dir:       dir,
		Format:    format,
		Linearize: ColMajor,
		stores:    make(map[string]BlockStore),
		arrays:    make(map[string]*prog.Array),
		inflight:  make(map[string]*inflightRead),
	}, nil
}

// Create opens the store for an array.
func (m *Manager) Create(arr *prog.Array) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.stores[arr.Name]; dup {
		return fmt.Errorf("storage: array %q already created", arr.Name)
	}
	path := filepath.Join(m.Dir, arr.Name+"."+m.Format.String())
	var (
		st  BlockStore
		err error
	)
	switch m.Format {
	case FormatLABTree:
		var t *LABTree
		t, err = OpenLABTree(path, m.Policy)
		st = &labStore{t: t}
	default:
		st, err = OpenDAF(path, arr.PhysicalBlockBytes())
	}
	if err != nil {
		return err
	}
	m.stores[arr.Name] = st
	m.arrays[arr.Name] = arr
	return nil
}

// Registered returns the array a name is currently registered under, or
// nil — how the block server decides whether an ensure-create can reuse an
// existing registration or must reopen it under a new geometry.
func (m *Manager) Registered(name string) *prog.Array {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.arrays[name]
}

// ensure opens the array's store unless it is already registered. Create
// refuses duplicates so callers catch double registration; shard repair
// needs the idempotent form to reopen stores on a recovered shard.
func (m *Manager) ensure(arr *prog.Array) error {
	m.mu.RLock()
	_, ok := m.stores[arr.Name]
	m.mu.RUnlock()
	if ok {
		return nil
	}
	return m.Create(arr)
}

// CreateAll opens stores for every array of a program.
func (m *Manager) CreateAll(p *prog.Program) error {
	for _, arr := range p.Arrays {
		if err := m.Create(arr); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlock serializes and stores one block.
func (m *Manager) WriteBlock(array string, r, c int64, blk *blas.Matrix) error {
	arr, st, err := m.lookup(array)
	if err != nil {
		return err
	}
	m.simulate(m.WriteLatency)
	if blk.Rows != arr.BlockRows || blk.Cols != arr.BlockCols {
		return fmt.Errorf("storage: block shape %dx%d, array %s wants %dx%d",
			blk.Rows, blk.Cols, array, arr.BlockRows, arr.BlockCols)
	}
	buf := make([]byte, 8*len(blk.Data))
	for i, v := range blk.Data {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	if err := st.Write(m.Linearize(r, c, arr.GridRows, arr.GridCols), buf); err != nil {
		return err
	}
	m.physWriteReqs.Add(1)
	m.physWriteBytes.Add(int64(len(buf)))
	return nil
}

// ReadBlock fetches and deserializes one block. Concurrent reads of the
// same block coalesce: one disk request serves all callers. The leader
// hands its matrix over directly; followers receive private copies, since
// callers may install the result into a mutable buffer pool.
func (m *Manager) ReadBlock(array string, r, c int64) (*blas.Matrix, error) {
	key := readKey(array, r, c)
	m.inflightMu.Lock()
	if call, ok := m.inflight[key]; ok {
		call.waiters++
		m.inflightMu.Unlock()
		<-call.done
		if call.err != nil {
			return nil, call.err
		}
		return call.blk.Clone(), nil
	}
	call := &inflightRead{done: make(chan struct{})}
	m.inflight[key] = call
	m.inflightMu.Unlock()

	blk, err := m.readBlock(array, r, c)
	call.blk, call.err = blk, err
	m.inflightMu.Lock()
	delete(m.inflight, key)
	shared := call.waiters > 0
	m.inflightMu.Unlock()
	if shared && err == nil {
		// Followers clone call.blk after done closes; leave it pristine and
		// hand the leader its own copy too.
		blk = blk.Clone()
	}
	close(call.done)
	return blk, err
}

// readBlock performs the physical read.
func (m *Manager) readBlock(array string, r, c int64) (*blas.Matrix, error) {
	arr, st, err := m.lookup(array)
	if err != nil {
		return nil, err
	}
	m.simulate(m.ReadLatency)
	buf, err := st.Read(m.Linearize(r, c, arr.GridRows, arr.GridCols))
	if err != nil {
		return nil, fmt.Errorf("storage: read %s[%d,%d]: %w", array, r, c, err)
	}
	m.physReadReqs.Add(1)
	m.physReadBytes.Add(int64(len(buf)))
	blk := blas.NewMatrix(arr.BlockRows, arr.BlockCols)
	if want := 8 * len(blk.Data); len(buf) != want {
		return nil, fmt.Errorf("storage: %s[%d,%d] payload %d bytes, want %d", array, r, c, len(buf), want)
	}
	for i := range blk.Data {
		blk.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return blk, nil
}

func readKey(array string, r, c int64) string {
	return fmt.Sprintf("%s[%d,%d]", array, r, c)
}

func (m *Manager) lookup(array string) (*prog.Array, BlockStore, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	arr, ok := m.arrays[array]
	if !ok {
		return nil, nil, fmt.Errorf("storage: unknown array %q", array)
	}
	return arr, m.stores[array], nil
}

// Drop closes and unregisters one array's store, optionally deleting its
// file. Long-running services use it to retire per-query output arrays —
// each open store holds a file descriptor, so a server that never dropped
// them would exhaust the process limit.
func (m *Manager) Drop(array string, deleteFile bool) error {
	m.mu.Lock()
	st, ok := m.stores[array]
	delete(m.stores, array)
	delete(m.arrays, array)
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("storage: unknown array %q", array)
	}
	err := st.Close()
	if deleteFile {
		if rerr := os.Remove(filepath.Join(m.Dir, array+"."+m.Format.String())); err == nil && rerr != nil {
			err = rerr
		}
	}
	return err
}

// Close closes every store.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var first error
	for _, st := range m.stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
