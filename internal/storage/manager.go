package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"riotshare/internal/blas"
	"riotshare/internal/prog"
)

// BlockStore is the per-array key→payload store shared by the DAF and
// LAB-tree formats.
type BlockStore interface {
	Write(idx uint64, data []byte) error
	Read(idx uint64) ([]byte, error)
	Sync() error
	Close() error
}

// DAF is the Directly Addressable File format: block idx lives at byte
// offset idx*blockBytes. Since every element of a dense matrix has a
// predetermined position, no index needs to be stored (§6's storage
// scheme).
type DAF struct {
	f          *os.File
	blockBytes int64
}

// OpenDAF opens or creates a DAF with fixed block payload size.
func OpenDAF(path string, blockBytes int64) (*DAF, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &DAF{f: f, blockBytes: blockBytes}, nil
}

// Write stores a block payload (must be exactly blockBytes long).
func (d *DAF) Write(idx uint64, data []byte) error {
	if int64(len(data)) != d.blockBytes {
		return fmt.Errorf("storage: DAF block size %d, want %d", len(data), d.blockBytes)
	}
	_, err := d.f.WriteAt(data, int64(idx)*d.blockBytes)
	return err
}

// Read fetches a block payload.
func (d *DAF) Read(idx uint64) ([]byte, error) {
	buf := make([]byte, d.blockBytes)
	n, err := d.f.ReadAt(buf, int64(idx)*d.blockBytes)
	if err != nil && n != len(buf) {
		return nil, fmt.Errorf("storage: DAF read block %d: %w", idx, err)
	}
	return buf, nil
}

// Sync flushes the file.
func (d *DAF) Sync() error { return d.f.Sync() }

// Close closes the file.
func (d *DAF) Close() error { return d.f.Close() }

// labStore adapts LABTree to BlockStore.
type labStore struct{ *LABTree }

// Format selects the on-disk format.
type Format int

const (
	// FormatDAF is the directly addressable file.
	FormatDAF Format = iota
	// FormatLABTree is the linearized array B-tree.
	FormatLABTree
)

// String names the format.
func (f Format) String() string {
	if f == FormatLABTree {
		return "lab-tree"
	}
	return "daf"
}

// Linearization maps block coordinates to a key. Blocks are laid out in
// column-major order by default, matching §6's storage scheme.
type Linearization func(r, c int64, gridRows, gridCols int) uint64

// ColMajor is the paper's column-major block layout.
func ColMajor(r, c int64, gridRows, gridCols int) uint64 {
	return uint64(c)*uint64(gridRows) + uint64(r)
}

// RowMajor linearizes row-major.
func RowMajor(r, c int64, gridRows, gridCols int) uint64 {
	return uint64(r)*uint64(gridCols) + uint64(c)
}

// ZOrder interleaves coordinate bits (Morton order), an alternative
// studied for array storage locality.
func ZOrder(r, c int64, gridRows, gridCols int) uint64 {
	var z uint64
	for b := 0; b < 32; b++ {
		z |= (uint64(r) >> b & 1) << (2 * b)
		z |= (uint64(c) >> b & 1) << (2*b + 1)
	}
	return z
}

// Manager stores the blocks of a program's arrays in one store per array.
type Manager struct {
	Dir       string
	Format    Format
	Policy    SplitPolicy
	Linearize Linearization

	stores map[string]BlockStore
	arrays map[string]*prog.Array
}

// NewManager creates a storage manager writing under dir.
func NewManager(dir string, format Format) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Manager{
		Dir:       dir,
		Format:    format,
		Linearize: ColMajor,
		stores:    make(map[string]BlockStore),
		arrays:    make(map[string]*prog.Array),
	}, nil
}

// Create opens the store for an array.
func (m *Manager) Create(arr *prog.Array) error {
	if _, dup := m.stores[arr.Name]; dup {
		return fmt.Errorf("storage: array %q already created", arr.Name)
	}
	path := filepath.Join(m.Dir, arr.Name+"."+m.Format.String())
	var (
		st  BlockStore
		err error
	)
	switch m.Format {
	case FormatLABTree:
		var t *LABTree
		t, err = OpenLABTree(path, m.Policy)
		st = labStore{t}
	default:
		st, err = OpenDAF(path, arr.PhysicalBlockBytes())
	}
	if err != nil {
		return err
	}
	m.stores[arr.Name] = st
	m.arrays[arr.Name] = arr
	return nil
}

// CreateAll opens stores for every array of a program.
func (m *Manager) CreateAll(p *prog.Program) error {
	for _, arr := range p.Arrays {
		if err := m.Create(arr); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlock serializes and stores one block.
func (m *Manager) WriteBlock(array string, r, c int64, blk *blas.Matrix) error {
	arr, st, err := m.lookup(array)
	if err != nil {
		return err
	}
	if blk.Rows != arr.BlockRows || blk.Cols != arr.BlockCols {
		return fmt.Errorf("storage: block shape %dx%d, array %s wants %dx%d",
			blk.Rows, blk.Cols, array, arr.BlockRows, arr.BlockCols)
	}
	buf := make([]byte, 8*len(blk.Data))
	for i, v := range blk.Data {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return st.Write(m.Linearize(r, c, arr.GridRows, arr.GridCols), buf)
}

// ReadBlock fetches and deserializes one block.
func (m *Manager) ReadBlock(array string, r, c int64) (*blas.Matrix, error) {
	arr, st, err := m.lookup(array)
	if err != nil {
		return nil, err
	}
	buf, err := st.Read(m.Linearize(r, c, arr.GridRows, arr.GridCols))
	if err != nil {
		return nil, fmt.Errorf("storage: read %s[%d,%d]: %w", array, r, c, err)
	}
	blk := blas.NewMatrix(arr.BlockRows, arr.BlockCols)
	if want := 8 * len(blk.Data); len(buf) != want {
		return nil, fmt.Errorf("storage: %s[%d,%d] payload %d bytes, want %d", array, r, c, len(buf), want)
	}
	for i := range blk.Data {
		blk.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return blk, nil
}

func (m *Manager) lookup(array string) (*prog.Array, BlockStore, error) {
	arr, ok := m.arrays[array]
	if !ok {
		return nil, nil, fmt.Errorf("storage: unknown array %q", array)
	}
	return arr, m.stores[array], nil
}

// Close closes every store.
func (m *Manager) Close() error {
	var first error
	for _, st := range m.stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
