package storage

import (
	"fmt"
	"os"
	"path/filepath"
)

// atomicWriteFile replaces path with data so that a crash at any point
// leaves either the old contents or the new ones — never a torn, empty, or
// missing file. os.Rename alone is not enough: the rename can be durable
// while the renamed file's data is still in the page cache, so a crash
// right after it could expose an empty or partially written target. The
// sequence here closes that window:
//
//  1. write the data to a temp file in the same directory (same filesystem,
//     so the rename below stays atomic),
//  2. fsync the temp file — its bytes are on disk before it becomes
//     reachable under the real name,
//  3. rename it over path — the atomic commit point,
//  4. fsync the directory — the rename's directory entry itself is durable.
//
// The temp file is removed on any failure; a stale "<path>.tmp" left by a
// crash between steps is simply overwritten by the next write and is never
// read by manifest loading.
func atomicWriteFile(path string, data []byte, perm os.FileMode) error {
	return AtomicWriteFile(path, data, perm)
}

// AtomicWriteFile is the exported form of the crash-safe write-replace
// sequence above; the riotblockd block server uses it so a remote shard's
// manifest gets the same durability discipline as a local shard root's.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("sync dir of %s: %w", path, err)
	}
	err = dir.Sync()
	if cerr := dir.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("sync dir of %s: %w", path, err)
	}
	return nil
}
