package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"riotshare/internal/blas"
	"riotshare/internal/prog"
)

func TestLABTreeBasic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.lab")
	tr, err := OpenLABTree(path, SplitMiddle)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Write(7, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Read(7)
	if err != nil || string(got) != "hello" {
		t.Fatalf("Read got %q err %v", got, err)
	}
	if _, err := tr.Read(8); err != ErrNotFound {
		t.Fatalf("missing key should be ErrNotFound, got %v", err)
	}
}

func TestLABTreeUpdate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.lab")
	tr, err := OpenLABTree(path, SplitMiddle)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Write(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(1, bytes.Repeat([]byte("x"), 9000)); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Read(1)
	if err != nil || len(got) != 9000 {
		t.Fatalf("update lost data: %d bytes, err %v", len(got), err)
	}
}

func TestLABTreeMultiPagePayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.lab")
	tr, err := OpenLABTree(path, SplitMiddle)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// A payload spanning many overflow pages.
	data := make([]byte, 50_000)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := tr.Write(42, data); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Read(42)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("multi-page payload corrupted (err %v)", err)
	}
}

func TestLABTreeRandomAgainstOracle(t *testing.T) {
	for _, policy := range []SplitPolicy{SplitMiddle, SplitAppend} {
		t.Run(fmt.Sprint(policy), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "t.lab")
			tr, err := OpenLABTree(path, policy)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			rng := rand.New(rand.NewSource(31))
			oracle := make(map[uint64][]byte)
			for op := 0; op < 3000; op++ {
				key := uint64(rng.Intn(600))
				switch rng.Intn(10) {
				case 0: // delete
					_, exists := oracle[key]
					err := tr.Delete(key)
					if exists && err != nil {
						t.Fatalf("delete existing %d: %v", key, err)
					}
					if !exists && err != ErrNotFound {
						t.Fatalf("delete missing %d: %v", key, err)
					}
					delete(oracle, key)
				default: // write
					data := make([]byte, rng.Intn(2000)+1)
					rng.Read(data)
					if err := tr.Write(key, data); err != nil {
						t.Fatalf("write %d: %v", key, err)
					}
					oracle[key] = data
				}
			}
			for key, want := range oracle {
				got, err := tr.Read(key)
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("key %d mismatch (err %v)", key, err)
				}
			}
		})
	}
}

func TestLABTreeSequentialLoadDeepTree(t *testing.T) {
	// Enough keys to force inner-node splits (maxLeafKeys=255).
	path := filepath.Join(t.TempDir(), "t.lab")
	tr, err := OpenLABTree(path, SplitAppend)
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(3000)
	for k := uint64(0); k < n; k++ {
		if err := tr.Write(k, []byte(fmt.Sprint(k))); err != nil {
			t.Fatal(err)
		}
	}
	_, height, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if height < 2 {
		t.Fatalf("tree should have split: height=%d", height)
	}
	for k := uint64(0); k < n; k++ {
		got, err := tr.Read(k)
		if err != nil || string(got) != fmt.Sprint(k) {
			t.Fatalf("key %d: %q err %v", k, got, err)
		}
	}
	tr.Close()
	// Reopen and verify persistence.
	tr2, err := OpenLABTree(path, SplitAppend)
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	got, err := tr2.Read(n - 1)
	if err != nil || string(got) != fmt.Sprint(n-1) {
		t.Fatalf("after reopen: %q err %v", got, err)
	}
}

func TestLABTreeSplitAppendDenserThanMiddle(t *testing.T) {
	count := func(policy SplitPolicy) uint32 {
		path := filepath.Join(t.TempDir(), fmt.Sprintf("p%d.lab", policy))
		tr, err := OpenLABTree(path, policy)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		for k := uint64(0); k < 4000; k++ {
			if err := tr.Write(k, []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		pages, _, err := tr.Stats()
		if err != nil {
			t.Fatal(err)
		}
		return pages
	}
	mid, app := count(SplitMiddle), count(SplitAppend)
	if app >= mid {
		t.Errorf("append split should use fewer pages on sequential load: middle=%d append=%d", mid, app)
	}
}

func TestDAFRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.daf")
	d, err := OpenDAF(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	data := bytes.Repeat([]byte{0xAB}, 64)
	if err := d.Write(5, data); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(5)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("DAF round trip failed: %v", err)
	}
	if err := d.Write(0, []byte("short")); err == nil {
		t.Fatal("wrong-size write should fail")
	}
}

func TestLinearizations(t *testing.T) {
	if ColMajor(2, 3, 4, 5) != 3*4+2 {
		t.Fatal("ColMajor wrong")
	}
	if RowMajor(2, 3, 4, 5) != 2*5+3 {
		t.Fatal("RowMajor wrong")
	}
	// ZOrder must be injective on a grid.
	seen := map[uint64]bool{}
	for r := int64(0); r < 16; r++ {
		for c := int64(0); c < 16; c++ {
			z := ZOrder(r, c, 16, 16)
			if seen[z] {
				t.Fatalf("ZOrder collision at (%d,%d)", r, c)
			}
			seen[z] = true
		}
	}
}

func testArray() *prog.Array {
	return &prog.Array{Name: "A", BlockRows: 4, BlockCols: 3, GridRows: 5, GridCols: 6}
}

func TestManagerBothFormats(t *testing.T) {
	for _, format := range []Format{FormatDAF, FormatLABTree} {
		t.Run(format.String(), func(t *testing.T) {
			m, err := NewManager(t.TempDir(), format)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			arr := testArray()
			if err := m.Create(arr); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(8))
			want := map[[2]int64]*blas.Matrix{}
			for r := int64(0); r < 5; r++ {
				for c := int64(0); c < 6; c++ {
					blk := blas.NewMatrix(4, 3)
					for i := range blk.Data {
						blk.Data[i] = rng.NormFloat64()
					}
					if err := m.WriteBlock("A", r, c, blk); err != nil {
						t.Fatal(err)
					}
					want[[2]int64{r, c}] = blk
				}
			}
			for rc, blk := range want {
				got, err := m.ReadBlock("A", rc[0], rc[1])
				if err != nil {
					t.Fatal(err)
				}
				if blas.MaxAbsDiff(got, blk) != 0 {
					t.Fatalf("block (%d,%d) corrupted", rc[0], rc[1])
				}
			}
		})
	}
}

func TestManagerErrors(t *testing.T) {
	m, err := NewManager(t.TempDir(), FormatDAF)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.ReadBlock("missing", 0, 0); err == nil {
		t.Fatal("unknown array should error")
	}
	arr := testArray()
	if err := m.Create(arr); err != nil {
		t.Fatal(err)
	}
	if err := m.Create(arr); err == nil {
		t.Fatal("duplicate create should error")
	}
	bad := blas.NewMatrix(1, 1)
	if err := m.WriteBlock("A", 0, 0, bad); err == nil {
		t.Fatal("wrong block shape should error")
	}
}
