package storage

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"riotshare/internal/blas"
	"riotshare/internal/prog"
)

func shardTestArray(name string) *prog.Array {
	return &prog.Array{Name: name, BlockRows: 4, BlockCols: 3, GridRows: 5, GridCols: 4}
}

func randBlock(rng *rand.Rand, arr *prog.Array) *blas.Matrix {
	blk := blas.NewMatrix(arr.BlockRows, arr.BlockCols)
	for i := range blk.Data {
		blk.Data[i] = rng.NormFloat64()
	}
	return blk
}

// fillArray writes a deterministic block set and returns the blocks by
// coordinate for later comparison.
func fillArray(t *testing.T, b Backend, arr *prog.Array, seed int64) map[[2]int64]*blas.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	blocks := map[[2]int64]*blas.Matrix{}
	for r := int64(0); r < int64(arr.GridRows); r++ {
		for c := int64(0); c < int64(arr.GridCols); c++ {
			blk := randBlock(rng, arr)
			blocks[[2]int64{r, c}] = blk
			if err := b.WriteBlock(arr.Name, r, c, blk); err != nil {
				t.Fatalf("write %s[%d,%d]: %v", arr.Name, r, c, err)
			}
		}
	}
	return blocks
}

func assertBlocks(t *testing.T, b Backend, arr *prog.Array, want map[[2]int64]*blas.Matrix) {
	t.Helper()
	for coord, w := range want {
		got, err := b.ReadBlock(arr.Name, coord[0], coord[1])
		if err != nil {
			t.Fatalf("read %s[%d,%d]: %v", arr.Name, coord[0], coord[1], err)
		}
		for i := range w.Data {
			if got.Data[i] != w.Data[i] {
				t.Fatalf("%s[%d,%d] element %d = %v, want %v", arr.Name, coord[0], coord[1], i, got.Data[i], w.Data[i])
			}
		}
	}
}

// Across shard counts, placements, and both formats, a sharded store must
// round-trip exactly the blocks a single-directory manager would.
func TestShardedRoundTrip(t *testing.T) {
	for _, format := range []Format{FormatDAF, FormatLABTree} {
		for _, placement := range []string{PlacementHash, PlacementRows} {
			for _, shards := range []int{1, 2, 4} {
				name := fmt.Sprintf("%s/%s/shards=%d", format, placement, shards)
				t.Run(name, func(t *testing.T) {
					sm, err := OpenSharded(ShardDirs(t.TempDir(), shards), ShardedOptions{
						Format: format, Placement: placement,
					})
					if err != nil {
						t.Fatal(err)
					}
					defer sm.Close()
					arr := shardTestArray("A")
					if err := sm.Create(arr); err != nil {
						t.Fatal(err)
					}
					want := fillArray(t, sm, arr, 7)
					assertBlocks(t, sm, arr, want)

					// Per-shard stats must sum to the aggregate, and with
					// more than one shard the blocks must actually spread.
					total, perShard := sm.Stats(), sm.ShardStats()
					var sum Stats
					used := 0
					for _, ss := range perShard {
						sum.ReadReqs += ss.ReadReqs
						sum.ReadBytes += ss.ReadBytes
						sum.WriteReqs += ss.WriteReqs
						sum.WriteBytes += ss.WriteBytes
						if ss.WriteReqs > 0 {
							used++
						}
					}
					if sum != total {
						t.Errorf("per-shard stats %+v do not sum to aggregate %+v", sum, total)
					}
					if total.WriteReqs != int64(len(want)) {
						t.Errorf("WriteReqs = %d, want %d", total.WriteReqs, len(want))
					}
					if shards > 1 && used < 2 {
						t.Errorf("placement %s left %d of %d shards unused for a %dx%d grid",
							placement, shards-used, shards, arr.GridRows, arr.GridCols)
					}
				})
			}
		}
	}
}

// Placement must be a pure function of (array, coords, shards): the same
// inputs always map to the same shard, and every shard index is in range.
func TestPlacementDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    PlacementFunc
	}{{PlacementHash, HashPlacement}, {PlacementRows, RowPlacement}} {
		for _, shards := range []int{1, 2, 3, 8} {
			for r := int64(0); r < 16; r++ {
				for c := int64(0); c < 16; c++ {
					s1 := tc.f("A", r, c, shards)
					s2 := tc.f("A", r, c, shards)
					if s1 != s2 {
						t.Fatalf("%s(A,%d,%d,%d) flapped: %d vs %d", tc.name, r, c, shards, s1, s2)
					}
					if s1 < 0 || s1 >= shards {
						t.Fatalf("%s(A,%d,%d,%d) = %d out of range", tc.name, r, c, shards, s1)
					}
				}
			}
		}
	}
	// Row placement: one grid row lives on one shard.
	if RowPlacement("A", 3, 0, 4) != RowPlacement("A", 3, 9, 4) {
		t.Error("RowPlacement split one grid row across shards")
	}
}

// A persisted store must reopen with its catalog intact and serve the
// previously written blocks without any rewrite.
func TestShardedPersistReopen(t *testing.T) {
	dirs := ShardDirs(t.TempDir(), 3)
	opt := ShardedOptions{Persist: true}
	sm, err := OpenSharded(dirs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Reopened() {
		t.Fatal("fresh store reported Reopened")
	}
	arr := shardTestArray("X")
	if err := sm.Create(arr); err != nil {
		t.Fatal(err)
	}
	want := fillArray(t, sm, arr, 3)
	if err := sm.RecordShared(arr, "fp-1"); err != nil {
		t.Fatal(err)
	}
	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}
	// No stray temp files from the atomic manifest writes.
	for _, dir := range dirs {
		if _, err := os.Stat(filepath.Join(dir, manifestName+".tmp")); !os.IsNotExist(err) {
			t.Errorf("manifest temp file left behind in %s", dir)
		}
	}

	re, err := OpenSharded(dirs, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.Reopened() {
		t.Fatal("second open did not report Reopened")
	}
	e, ok := re.SharedEntry("X")
	if !ok || e.Fingerprint != "fp-1" {
		t.Fatalf("catalog entry lost across reopen: %+v ok=%v", e, ok)
	}
	if got := e.Array("X"); !(*got == *arr) {
		t.Fatalf("cataloged metadata %+v, want %+v", got, arr)
	}
	// The cataloged array is already open — reads work with zero writes.
	assertBlocks(t, re, arr, want)
	if st := re.Stats(); st.WriteReqs != 0 {
		t.Errorf("reopen issued %d writes, want 0", st.WriteReqs)
	}
}

// Structural mismatches at open time must fail with an error naming the
// shard instead of silently misplacing blocks.
func TestShardedOpenFailures(t *testing.T) {
	newStore := func(t *testing.T, n int) []string {
		dirs := ShardDirs(t.TempDir(), n)
		sm, err := OpenSharded(dirs, ShardedOptions{Persist: true})
		if err != nil {
			t.Fatal(err)
		}
		arr := shardTestArray("A")
		if err := sm.Create(arr); err != nil {
			t.Fatal(err)
		}
		fillArray(t, sm, arr, 1)
		if err := sm.RecordShared(arr, "fp"); err != nil {
			t.Fatal(err)
		}
		if err := sm.Close(); err != nil {
			t.Fatal(err)
		}
		return dirs
	}

	t.Run("missing shard dir", func(t *testing.T) {
		dirs := newStore(t, 3)
		if err := os.RemoveAll(dirs[1]); err != nil {
			t.Fatal(err)
		}
		_, err := OpenSharded(dirs, ShardedOptions{Persist: true})
		if err == nil {
			t.Fatal("open over a missing shard directory succeeded")
		}
		if !strings.Contains(err.Error(), "shard 1") || !strings.Contains(err.Error(), dirs[1]) {
			t.Errorf("error does not name the missing shard: %v", err)
		}
	})

	t.Run("corrupt manifest", func(t *testing.T) {
		dirs := newStore(t, 3)
		if err := os.WriteFile(filepath.Join(dirs[2], manifestName), []byte("{torn"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := OpenSharded(dirs, ShardedOptions{Persist: true})
		if err == nil {
			t.Fatal("open over a corrupt manifest succeeded")
		}
		if !strings.Contains(err.Error(), "shard 2") || !strings.Contains(err.Error(), "manifest") {
			t.Errorf("error does not name the corrupt shard: %v", err)
		}
	})

	t.Run("wrong shard count", func(t *testing.T) {
		dirs := newStore(t, 2)
		_, err := OpenSharded(append(dirs, filepath.Join(filepath.Dir(dirs[0]), "shard-2")),
			ShardedOptions{Persist: true})
		if err == nil {
			t.Fatal("reopen with a different shard count succeeded")
		}
		if !strings.Contains(err.Error(), "2 shard(s)") {
			t.Errorf("error does not explain the shard-count mismatch: %v", err)
		}
	})

	t.Run("reordered shard dirs", func(t *testing.T) {
		dirs := newStore(t, 2)
		_, err := OpenSharded([]string{dirs[1], dirs[0]}, ShardedOptions{Persist: true})
		if err == nil {
			t.Fatal("reopen with reordered shard dirs succeeded")
		}
		if !strings.Contains(err.Error(), "ordered") {
			t.Errorf("error does not explain the ordering mismatch: %v", err)
		}
	})

	t.Run("placement mismatch", func(t *testing.T) {
		dirs := newStore(t, 2)
		_, err := OpenSharded(dirs, ShardedOptions{Persist: true, Placement: PlacementRows})
		if err == nil {
			t.Fatal("reopen with a different placement succeeded")
		}
		if !strings.Contains(err.Error(), "placement") {
			t.Errorf("error does not explain the placement mismatch: %v", err)
		}
	})

	t.Run("lost store file forces refill", func(t *testing.T) {
		dirs := newStore(t, 2)
		if err := os.Remove(filepath.Join(dirs[0], "A.daf")); err != nil {
			t.Fatal(err)
		}
		re, err := OpenSharded(dirs, ShardedOptions{Persist: true})
		if err != nil {
			t.Fatalf("a lost store file should drop the catalog entry, not fail the open: %v", err)
		}
		defer re.Close()
		if _, ok := re.SharedEntry("A"); ok {
			t.Error("catalog still serves an array whose store file is gone (stale/empty data)")
		}
	})
}

// Drop must uncatalog a persisted array so a reopen does not resurrect it.
func TestShardedDropUncatalogs(t *testing.T) {
	dirs := ShardDirs(t.TempDir(), 2)
	sm, err := OpenSharded(dirs, ShardedOptions{Persist: true})
	if err != nil {
		t.Fatal(err)
	}
	arr := shardTestArray("A")
	if err := sm.Create(arr); err != nil {
		t.Fatal(err)
	}
	fillArray(t, sm, arr, 1)
	if err := sm.RecordShared(arr, "fp"); err != nil {
		t.Fatal(err)
	}
	if err := sm.Drop("A", true); err != nil {
		t.Fatal(err)
	}
	sm.Close()
	re, err := OpenSharded(dirs, ShardedOptions{Persist: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok := re.SharedEntry("A"); ok {
		t.Error("dropped array still cataloged after reopen")
	}
}

// Concurrent reads across shards must proceed in parallel: on serial
// simulated devices, reading N blocks spread over 4 shards should take
// roughly N/4 device-sleeps, not N.
func TestShardedParallelReads(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	const latency = 20 * time.Millisecond
	arr := shardTestArray("A")
	nBlocks := arr.GridRows * arr.GridCols // 20

	elapsed := func(shards int) time.Duration {
		sm, err := OpenSharded(ShardDirs(t.TempDir(), shards), ShardedOptions{SerialDevice: true})
		if err != nil {
			t.Fatal(err)
		}
		defer sm.Close()
		if err := sm.Create(arr); err != nil {
			t.Fatal(err)
		}
		fillArray(t, sm, arr, 5)
		sm.SetLatency(latency, 0)
		start := time.Now()
		var wg sync.WaitGroup
		for r := int64(0); r < int64(arr.GridRows); r++ {
			for c := int64(0); c < int64(arr.GridCols); c++ {
				wg.Add(1)
				go func(r, c int64) {
					defer wg.Done()
					if _, err := sm.ReadBlock("A", r, c); err != nil {
						t.Error(err)
					}
				}(r, c)
			}
		}
		wg.Wait()
		return time.Since(start)
	}

	serial, striped := elapsed(1), elapsed(4)
	minSerial := time.Duration(nBlocks) * latency
	if serial < minSerial {
		t.Errorf("single serial device served %d reads in %v, floor %v", nBlocks, serial, minSerial)
	}
	// 4 shards should cut wall clock well below the serial floor; allow
	// generous scheduling slack (anything under 60% proves parallelism).
	if striped > serial*6/10 {
		t.Errorf("4-shard reads took %v vs %v single-device: cross-shard reads did not parallelize", striped, serial)
	}
}
