package storage

import (
	"os"
	"path/filepath"
	"testing"
)

// Opening a non-LAB-tree file must fail cleanly, not corrupt state.
func TestLABTreeBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.lab")
	if err := os.WriteFile(path, make([]byte, pageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLABTree(path, SplitMiddle); err == nil {
		t.Fatal("bad magic should be rejected")
	}
}

// A truncated LAB-tree file (header only, missing root page) must surface
// an I/O error on access instead of panicking.
func TestLABTreeTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.lab")
	tr, err := OpenLABTree(path, SplitMiddle)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	// Truncate to just the header.
	if err := os.Truncate(path, pageSize); err != nil {
		t.Fatal(err)
	}
	tr2, err := OpenLABTree(path, SplitMiddle)
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if _, err := tr2.Read(1); err == nil {
		t.Fatal("reading a truncated tree should error")
	}
}

// Corrupting a page type byte must yield a corruption error, not wrong data.
func TestLABTreeCorruptPageType(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.lab")
	tr, err := OpenLABTree(path, SplitMiddle)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(7, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Page 1 is the root leaf; smash its type byte.
	if _, err := f.WriteAt([]byte{0xFF}, pageSize); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tr2, err := OpenLABTree(path, SplitMiddle)
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if _, err := tr2.Read(7); err == nil {
		t.Fatal("corrupt page should error")
	}
}

// Deleting then rewriting must recycle freed overflow pages (the file does
// not grow without bound under update churn).
func TestLABTreePageRecycling(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.lab")
	tr, err := OpenLABTree(path, SplitMiddle)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	payload := make([]byte, 3*ovflowPayload) // three overflow pages
	if err := tr.Write(1, payload); err != nil {
		t.Fatal(err)
	}
	pagesAfterFirst := tr.npages
	for i := 0; i < 20; i++ {
		if err := tr.Write(1, payload); err != nil {
			t.Fatal(err)
		}
	}
	if tr.npages > pagesAfterFirst+1 {
		t.Fatalf("update churn leaked pages: %d -> %d", pagesAfterFirst, tr.npages)
	}
}

// DAF reads of never-written blocks must fail rather than fabricate data
// beyond EOF.
func TestDAFReadBeyondEOF(t *testing.T) {
	d, err := OpenDAF(filepath.Join(t.TempDir(), "a.daf"), 32)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Read(5); err == nil {
		t.Fatal("reading an unwritten DAF block should error")
	}
}

// Sparse DAF writes are addressable: writing block 7 then reading it back
// works even though blocks 0-6 were never written.
func TestDAFSparse(t *testing.T) {
	d, err := OpenDAF(filepath.Join(t.TempDir(), "a.daf"), 16)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	data := []byte("0123456789abcdef")
	if err := d.Write(7, data); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(7)
	if err != nil || string(got) != string(data) {
		t.Fatalf("sparse read failed: %q %v", got, err)
	}
}
