// shard.go abstracts "one shard of a sharded store" so ShardedManager can
// stripe over local directories and remote riotblockd servers — mixed
// freely — through one interface. localShard adapts the single-directory
// Manager plus its root's manifest and store files; RemoteShard (remote.go)
// speaks the blockproto protocol to a riotblockd process.
package storage

import (
	"errors"
	"io/fs"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"riotshare/internal/blas"
	"riotshare/internal/prog"
)

// shard is what ShardedManager needs from one shard: block I/O and store
// lifecycle, the per-root manifest, and the existence/wipe primitives
// behind catalog reopen and Repair. Label identifies the shard in errors
// and ShardStats — a directory path or a host:port address.
type shard interface {
	Label() string
	Create(arr *prog.Array) error
	// Ensure is Create without the duplicate check — the idempotent form
	// repair and write-through need.
	Ensure(arr *prog.Array) error
	WriteBlock(array string, r, c int64, blk *blas.Matrix) error
	ReadBlock(array string, r, c int64) (*blas.Matrix, error)
	Drop(array string, deleteFile bool) error
	Stats() Stats
	SetLatency(read, write time.Duration)
	Close() error

	// ReadManifest returns the shard root's manifest bytes; an error
	// wrapping fs.ErrNotExist means "no manifest" (fresh or lost shard).
	ReadManifest() ([]byte, error)
	// WriteManifest atomically replaces the manifest (crash-safe).
	WriteManifest(data []byte) error
	// RemoveManifest deletes the manifest; removing an absent one is not
	// an error. DegradeShard commits a shard's offline state through it.
	RemoveManifest() error
	// StoreExists reports whether the array's store file exists — the
	// catalog-reopen intactness probe.
	StoreExists(array string) (bool, error)
	// WipeStore closes the array's store if open and deletes its file, so
	// Repair re-mirrors onto a clean slate; wiping an absent store is not
	// an error.
	WipeStore(array string) error
	// PrepareRepair readies a lost shard to be re-mirrored (recreates a
	// local directory; probes a remote server's liveness).
	PrepareRepair() error
}

// localShard adapts *Manager (one shard directory) to the shard interface.
type localShard struct {
	m   *Manager
	dir string
}

func (s *localShard) Label() string                { return s.dir }
func (s *localShard) Create(arr *prog.Array) error { return s.m.Create(arr) }
func (s *localShard) Ensure(arr *prog.Array) error { return s.m.ensure(arr) }
func (s *localShard) Drop(array string, del bool) error {
	return s.m.Drop(array, del)
}
func (s *localShard) Stats() Stats                         { return s.m.Stats() }
func (s *localShard) SetLatency(read, write time.Duration) { s.m.SetLatency(read, write) }
func (s *localShard) Close() error                         { return s.m.Close() }

func (s *localShard) WriteBlock(array string, r, c int64, blk *blas.Matrix) error {
	return s.m.WriteBlock(array, r, c, blk)
}

func (s *localShard) ReadBlock(array string, r, c int64) (*blas.Matrix, error) {
	return s.m.ReadBlock(array, r, c)
}

func (s *localShard) ReadManifest() ([]byte, error) {
	return os.ReadFile(filepath.Join(s.dir, manifestName))
}

func (s *localShard) WriteManifest(data []byte) error {
	return atomicWriteFile(filepath.Join(s.dir, manifestName), data, 0o644)
}

func (s *localShard) RemoveManifest() error {
	if err := os.Remove(filepath.Join(s.dir, manifestName)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

func (s *localShard) StoreExists(array string) (bool, error) {
	_, err := os.Stat(s.storePath(array))
	if err == nil {
		return true, nil
	}
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	return false, err
}

func (s *localShard) WipeStore(array string) error {
	// Close a surviving open store first (a previous partial repair may
	// hold the fd of the file about to be wiped); unknown arrays are fine.
	_ = s.m.Drop(array, false)
	if err := os.Remove(s.storePath(array)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

func (s *localShard) PrepareRepair() error {
	// The lost shard may be gone directory and all.
	return os.MkdirAll(s.dir, 0o755)
}

func (s *localShard) storePath(array string) string {
	return filepath.Join(s.dir, array+"."+s.m.Format.String())
}

// IsRemoteSpec reports whether a shard spec names a network address
// (host:port with a numeric port) rather than a directory. Anything
// containing a path separator is a directory; "localhost:8441" and
// "10.0.0.7:8441" are addresses.
func IsRemoteSpec(spec string) bool {
	if strings.ContainsAny(spec, "/\\") {
		return false
	}
	host, port, err := net.SplitHostPort(spec)
	if err != nil || host == "" {
		return false
	}
	_, err = strconv.Atoi(port)
	return err == nil
}
