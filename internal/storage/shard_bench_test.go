package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"riotshare/internal/prog"
)

// BenchmarkShardedRead measures parallel block reads against a
// sharded-vs-single-directory store on serialized simulated devices (each
// shard serves one request at a time, like a disk head). One op reads the
// whole array with 8 concurrent readers: with one shard the reads queue
// behind a single device, with 4 shards they fan out — the wall-clock
// ratio is the sharding win the prefetcher banks on. `make bench-json`
// exports it as BENCH_shard.json.
func BenchmarkShardedRead(b *testing.B) {
	const latency = 200 * time.Microsecond
	arr := &prog.Array{Name: "A", BlockRows: 8, BlockCols: 8, GridRows: 8, GridCols: 8}
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sm, err := OpenSharded(ShardDirs(b.TempDir(), shards), ShardedOptions{SerialDevice: true})
			if err != nil {
				b.Fatal(err)
			}
			defer sm.Close()
			if err := sm.Create(arr); err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			for r := int64(0); r < int64(arr.GridRows); r++ {
				for c := int64(0); c < int64(arr.GridCols); c++ {
					if err := sm.WriteBlock("A", r, c, randBlock(rng, arr)); err != nil {
						b.Fatal(err)
					}
				}
			}
			sm.SetLatency(latency, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				sem := make(chan struct{}, 8)
				for r := int64(0); r < int64(arr.GridRows); r++ {
					for c := int64(0); c < int64(arr.GridCols); c++ {
						wg.Add(1)
						sem <- struct{}{}
						go func(r, c int64) {
							defer wg.Done()
							defer func() { <-sem }()
							if _, err := sm.ReadBlock("A", r, c); err != nil {
								b.Error(err)
							}
						}(r, c)
					}
				}
				wg.Wait()
			}
		})
	}
}
