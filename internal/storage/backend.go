package storage

import (
	"time"

	"riotshare/internal/blas"
	"riotshare/internal/prog"
)

// Backend is the block-storage abstraction the rest of the system runs
// over: array registration, physical block I/O, retirement, physical I/O
// counters, and the simulated-device latency knob the pipelining and
// sharding experiments drive. *Manager is the single-directory
// implementation; *ShardedManager stripes blocks across several shard
// directories (stand-ins for devices) behind the same interface, so the
// buffer pool, the execution engines, and the multi-query server are
// placement-agnostic.
type Backend interface {
	// Create opens (or reopens) the store for an array.
	Create(arr *prog.Array) error
	// CreateAll opens the stores for every array of a program.
	CreateAll(p *prog.Program) error
	// WriteBlock stores one block.
	WriteBlock(array string, r, c int64, blk *blas.Matrix) error
	// ReadBlock fetches one block; concurrent reads of the same block
	// coalesce onto one physical request.
	ReadBlock(array string, r, c int64) (*blas.Matrix, error)
	// Drop closes and unregisters one array's store, optionally deleting
	// its file(s).
	Drop(array string, deleteFile bool) error
	// Stats snapshots the physical I/O performed since creation.
	Stats() Stats
	// SetLatency configures the simulated per-request device latency
	// (zero disables). On a sharded backend each shard is its own device
	// and sleeps independently.
	SetLatency(read, write time.Duration)
	// Close closes every store.
	Close() error
}

var (
	_ Backend = (*Manager)(nil)
	_ Backend = (*ShardedManager)(nil)
)
