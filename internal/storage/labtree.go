// Package storage is the RIOTStore substrate [26] the paper uses to store
// blocked matrices: the DAF (Directly Addressable File) format and the
// LAB-tree (Linearized Array B-tree), both keyed by a linearization of the
// block coordinates, with blocks laid out in column-major order (§6). For
// dense matrices the two behave virtually identically, which the storage
// benchmarks verify.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
)

const (
	pageSize   = 4096
	magic      = 0x4C414254 // "LABT"
	typeNone   = 0
	typeInner  = 1
	typeLeaf   = 2
	typeovflow = 3

	// Leaf entry: key uint64 + overflow page uint32 + byte length uint32.
	leafEntrySize = 16
	leafHeader    = 1 + 2 + 4 // type, nkeys, next-leaf
	maxLeafKeys   = (pageSize - leafHeader) / leafEntrySize

	// Inner node: keys uint64 each, children uint32 each.
	innerHeader  = 1 + 2
	maxInnerKeys = (pageSize - innerHeader - 4) / 12

	ovflowHeader  = 1 + 4 + 2 // type, next page, data length
	ovflowPayload = pageSize - ovflowHeader
)

// SplitPolicy selects how full leaves split on insert.
type SplitPolicy int

const (
	// SplitMiddle halves a full leaf (the textbook policy).
	SplitMiddle SplitPolicy = iota
	// SplitAppend splits at the insertion point when inserting past the
	// last key, leaving the left leaf full — dense sequential loads (the
	// common case when writing array blocks in layout order) then fill
	// every page, one of the LAB-tree design points studied in [26].
	SplitAppend
)

// LABTree is a disk-backed B+tree mapping linearized block indices to
// variable-length block payloads (stored in overflow page chains).
type LABTree struct {
	f      *os.File
	root   uint32
	npages uint32
	free   uint32 // head of the freed-page chain
	policy SplitPolicy
	page   [pageSize]byte // scratch
}

// OpenLABTree opens or creates a LAB-tree file.
func OpenLABTree(path string, policy SplitPolicy) (*LABTree, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	t := &LABTree{f: f, policy: policy}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		// Fresh file: header page + empty root leaf.
		t.npages = 2
		t.root = 1
		leaf := make([]byte, pageSize)
		leaf[0] = typeLeaf
		if err := t.writePage(1, leaf); err != nil {
			f.Close()
			return nil, err
		}
		if err := t.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		return t, nil
	}
	hdr := make([]byte, pageSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		f.Close()
		return nil, fmt.Errorf("storage: %s is not a LAB-tree file", path)
	}
	t.root = binary.LittleEndian.Uint32(hdr[4:])
	t.npages = binary.LittleEndian.Uint32(hdr[8:])
	t.free = binary.LittleEndian.Uint32(hdr[12:])
	return t, nil
}

func (t *LABTree) writeHeader() error {
	hdr := make([]byte, pageSize)
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], t.root)
	binary.LittleEndian.PutUint32(hdr[8:], t.npages)
	binary.LittleEndian.PutUint32(hdr[12:], t.free)
	return t.writePage(0, hdr)
}

func (t *LABTree) readPage(id uint32, buf []byte) error {
	_, err := t.f.ReadAt(buf[:pageSize], int64(id)*pageSize)
	return err
}

func (t *LABTree) writePage(id uint32, buf []byte) error {
	_, err := t.f.WriteAt(buf[:pageSize], int64(id)*pageSize)
	return err
}

// allocPage returns a fresh or recycled page id.
func (t *LABTree) allocPage() (uint32, error) {
	if t.free != 0 {
		id := t.free
		buf := make([]byte, pageSize)
		if err := t.readPage(id, buf); err != nil {
			return 0, err
		}
		t.free = binary.LittleEndian.Uint32(buf[1:])
		return id, nil
	}
	id := t.npages
	t.npages++
	return id, nil
}

// freePage links a page into the free chain.
func (t *LABTree) freePage(id uint32) error {
	buf := make([]byte, pageSize)
	buf[0] = typeNone
	binary.LittleEndian.PutUint32(buf[1:], t.free)
	t.free = id
	return t.writePage(id, buf)
}

// leaf page accessors.

type leafRef struct {
	buf []byte
}

func (l leafRef) nkeys() int       { return int(binary.LittleEndian.Uint16(l.buf[1:])) }
func (l leafRef) setNKeys(n int)   { binary.LittleEndian.PutUint16(l.buf[1:], uint16(n)) }
func (l leafRef) next() uint32     { return binary.LittleEndian.Uint32(l.buf[3:]) }
func (l leafRef) setNext(p uint32) { binary.LittleEndian.PutUint32(l.buf[3:], p) }
func (l leafRef) key(i int) uint64 {
	return binary.LittleEndian.Uint64(l.buf[leafHeader+i*leafEntrySize:])
}
func (l leafRef) ovflow(i int) uint32 {
	return binary.LittleEndian.Uint32(l.buf[leafHeader+i*leafEntrySize+8:])
}
func (l leafRef) length(i int) uint32 {
	return binary.LittleEndian.Uint32(l.buf[leafHeader+i*leafEntrySize+12:])
}
func (l leafRef) setEntry(i int, key uint64, ov uint32, length uint32) {
	off := leafHeader + i*leafEntrySize
	binary.LittleEndian.PutUint64(l.buf[off:], key)
	binary.LittleEndian.PutUint32(l.buf[off+8:], ov)
	binary.LittleEndian.PutUint32(l.buf[off+12:], length)
}
func (l leafRef) search(key uint64) (int, bool) {
	lo, hi := 0, l.nkeys()
	for lo < hi {
		mid := (lo + hi) / 2
		k := l.key(mid)
		if k == key {
			return mid, true
		}
		if k < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, false
}

type innerRef struct {
	buf []byte
}

func (n innerRef) nkeys() int     { return int(binary.LittleEndian.Uint16(n.buf[1:])) }
func (n innerRef) setNKeys(k int) { binary.LittleEndian.PutUint16(n.buf[1:], uint16(k)) }
func (n innerRef) key(i int) uint64 {
	return binary.LittleEndian.Uint64(n.buf[innerHeader+i*8:])
}
func (n innerRef) setKey(i int, k uint64) {
	binary.LittleEndian.PutUint64(n.buf[innerHeader+i*8:], k)
}
func (n innerRef) childOff(i int) int { return innerHeader + maxInnerKeys*8 + i*4 }
func (n innerRef) child(i int) uint32 {
	return binary.LittleEndian.Uint32(n.buf[n.childOff(i):])
}
func (n innerRef) setChild(i int, c uint32) {
	binary.LittleEndian.PutUint32(n.buf[n.childOff(i):], c)
}

// descend returns the child index for a key: the first child whose
// separator key exceeds the search key.
func (n innerRef) descend(key uint64) int {
	lo, hi := 0, n.nkeys()
	for lo < hi {
		mid := (lo + hi) / 2
		if key < n.key(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// writeChain stores data in an overflow chain, returning the head page.
func (t *LABTree) writeChain(data []byte) (uint32, error) {
	if len(data) == 0 {
		return 0, nil
	}
	// Allocate pages front to back, chaining forward.
	var head, prev uint32
	prevBuf := make([]byte, pageSize)
	for off := 0; off < len(data); off += ovflowPayload {
		id, err := t.allocPage()
		if err != nil {
			return 0, err
		}
		if head == 0 {
			head = id
		} else {
			binary.LittleEndian.PutUint32(prevBuf[1:], id)
			if err := t.writePage(prev, prevBuf); err != nil {
				return 0, err
			}
		}
		end := off + ovflowPayload
		if end > len(data) {
			end = len(data)
		}
		buf := make([]byte, pageSize)
		buf[0] = typeovflow
		binary.LittleEndian.PutUint16(buf[5:], uint16(end-off))
		copy(buf[ovflowHeader:], data[off:end])
		prev, prevBuf = id, buf
	}
	if err := t.writePage(prev, prevBuf); err != nil {
		return 0, err
	}
	return head, nil
}

// readChain reads length bytes from an overflow chain.
func (t *LABTree) readChain(head uint32, length uint32) ([]byte, error) {
	out := make([]byte, 0, length)
	buf := make([]byte, pageSize)
	for id := head; id != 0; {
		if err := t.readPage(id, buf); err != nil {
			return nil, err
		}
		if buf[0] != typeovflow {
			return nil, fmt.Errorf("storage: page %d is not an overflow page", id)
		}
		n := binary.LittleEndian.Uint16(buf[5:])
		out = append(out, buf[ovflowHeader:ovflowHeader+int(n)]...)
		id = binary.LittleEndian.Uint32(buf[1:])
	}
	if uint32(len(out)) != length {
		return nil, fmt.Errorf("storage: overflow chain length %d, want %d", len(out), length)
	}
	return out, nil
}

// freeChain releases an overflow chain.
func (t *LABTree) freeChain(head uint32) error {
	buf := make([]byte, pageSize)
	for id := head; id != 0; {
		if err := t.readPage(id, buf); err != nil {
			return err
		}
		next := binary.LittleEndian.Uint32(buf[1:])
		if err := t.freePage(id); err != nil {
			return err
		}
		id = next
	}
	return nil
}

// ErrNotFound is returned by Read for missing keys.
var ErrNotFound = errors.New("storage: key not found")

// Read returns the payload stored under the key.
func (t *LABTree) Read(key uint64) ([]byte, error) {
	id := t.root
	buf := make([]byte, pageSize)
	for {
		if err := t.readPage(id, buf); err != nil {
			return nil, err
		}
		switch buf[0] {
		case typeInner:
			n := innerRef{buf}
			id = n.child(n.descend(key))
		case typeLeaf:
			l := leafRef{buf}
			i, found := l.search(key)
			if !found {
				return nil, ErrNotFound
			}
			return t.readChain(l.ovflow(i), l.length(i))
		default:
			return nil, fmt.Errorf("storage: corrupt page %d (type %d)", id, buf[0])
		}
	}
}

// Write inserts or replaces the payload under the key.
func (t *LABTree) Write(key uint64, data []byte) error {
	promoted, newChild, err := t.insert(t.root, key, data)
	if err != nil {
		return err
	}
	if newChild != 0 {
		// Root split: grow the tree by one level.
		id, err := t.allocPage()
		if err != nil {
			return err
		}
		buf := make([]byte, pageSize)
		buf[0] = typeInner
		n := innerRef{buf}
		n.setNKeys(1)
		n.setKey(0, promoted)
		n.setChild(0, t.root)
		n.setChild(1, newChild)
		if err := t.writePage(id, buf); err != nil {
			return err
		}
		t.root = id
	}
	return t.writeHeader()
}

// insert descends into page id; on split it returns the promoted separator
// key and the new right sibling page (0 when no split).
func (t *LABTree) insert(id uint32, key uint64, data []byte) (uint64, uint32, error) {
	buf := make([]byte, pageSize)
	if err := t.readPage(id, buf); err != nil {
		return 0, 0, err
	}
	switch buf[0] {
	case typeInner:
		n := innerRef{buf}
		ci := n.descend(key)
		promoted, newChild, err := t.insert(n.child(ci), key, data)
		if err != nil || newChild == 0 {
			return 0, 0, err
		}
		// Insert separator at position ci.
		k := n.nkeys()
		for i := k; i > ci; i-- {
			n.setKey(i, n.key(i-1))
			n.setChild(i+1, n.child(i))
		}
		n.setKey(ci, promoted)
		n.setChild(ci+1, newChild)
		n.setNKeys(k + 1)
		if k+1 <= maxInnerKeys-1 {
			return 0, 0, t.writePage(id, buf)
		}
		// Split the inner node in half.
		total := k + 1
		mid := total / 2
		upKey := n.key(mid)
		rid, err := t.allocPage()
		if err != nil {
			return 0, 0, err
		}
		rbuf := make([]byte, pageSize)
		rbuf[0] = typeInner
		rn := innerRef{rbuf}
		rk := total - mid - 1
		for i := 0; i < rk; i++ {
			rn.setKey(i, n.key(mid+1+i))
		}
		for i := 0; i <= rk; i++ {
			rn.setChild(i, n.child(mid+1+i))
		}
		rn.setNKeys(rk)
		n.setNKeys(mid)
		if err := t.writePage(id, buf); err != nil {
			return 0, 0, err
		}
		if err := t.writePage(rid, rbuf); err != nil {
			return 0, 0, err
		}
		return upKey, rid, nil
	case typeLeaf:
		l := leafRef{buf}
		i, found := l.search(key)
		if found {
			// Replace: free the old chain, write the new one.
			if err := t.freeChain(l.ovflow(i)); err != nil {
				return 0, 0, err
			}
			ov, err := t.writeChain(data)
			if err != nil {
				return 0, 0, err
			}
			l.setEntry(i, key, ov, uint32(len(data)))
			return 0, 0, t.writePage(id, buf)
		}
		ov, err := t.writeChain(data)
		if err != nil {
			return 0, 0, err
		}
		k := l.nkeys()
		if k < maxLeafKeys {
			for j := k; j > i; j-- {
				l.setEntry(j, l.key(j-1), l.ovflow(j-1), l.length(j-1))
			}
			l.setEntry(i, key, ov, uint32(len(data)))
			l.setNKeys(k + 1)
			return 0, 0, t.writePage(id, buf)
		}
		// Leaf is full: split per policy.
		splitAt := k / 2
		if t.policy == SplitAppend && i == k {
			// Appending past the last key: keep the left leaf full and
			// start a fresh right leaf with just the new entry.
			splitAt = k
		}
		rid, err := t.allocPage()
		if err != nil {
			return 0, 0, err
		}
		rbuf := make([]byte, pageSize)
		rbuf[0] = typeLeaf
		r := leafRef{rbuf}
		// Move entries >= splitAt to the right leaf.
		moved := k - splitAt
		for j := 0; j < moved; j++ {
			r.setEntry(j, l.key(splitAt+j), l.ovflow(splitAt+j), l.length(splitAt+j))
		}
		r.setNKeys(moved)
		r.setNext(l.next())
		l.setNKeys(splitAt)
		l.setNext(rid)
		// Insert the new entry into the proper side.
		if i <= splitAt && !(t.policy == SplitAppend && i == k) {
			ll := l
			kk := ll.nkeys()
			for j := kk; j > i; j-- {
				ll.setEntry(j, ll.key(j-1), ll.ovflow(j-1), ll.length(j-1))
			}
			ll.setEntry(i, key, ov, uint32(len(data)))
			ll.setNKeys(kk + 1)
		} else {
			ri := i - splitAt
			kk := r.nkeys()
			for j := kk; j > ri; j-- {
				r.setEntry(j, r.key(j-1), r.ovflow(j-1), r.length(j-1))
			}
			r.setEntry(ri, key, ov, uint32(len(data)))
			r.setNKeys(kk + 1)
		}
		if err := t.writePage(id, buf); err != nil {
			return 0, 0, err
		}
		if err := t.writePage(rid, rbuf); err != nil {
			return 0, 0, err
		}
		return r.key(0), rid, nil
	default:
		return 0, 0, fmt.Errorf("storage: corrupt page %d (type %d)", id, buf[0])
	}
}

// Delete removes a key (leaf entries are removed without rebalancing, which
// is sufficient for array workloads where deletes are rare).
func (t *LABTree) Delete(key uint64) error {
	id := t.root
	buf := make([]byte, pageSize)
	for {
		if err := t.readPage(id, buf); err != nil {
			return err
		}
		switch buf[0] {
		case typeInner:
			n := innerRef{buf}
			id = n.child(n.descend(key))
		case typeLeaf:
			l := leafRef{buf}
			i, found := l.search(key)
			if !found {
				return ErrNotFound
			}
			if err := t.freeChain(l.ovflow(i)); err != nil {
				return err
			}
			k := l.nkeys()
			for j := i; j < k-1; j++ {
				l.setEntry(j, l.key(j+1), l.ovflow(j+1), l.length(j+1))
			}
			l.setNKeys(k - 1)
			if err := t.writePage(id, buf); err != nil {
				return err
			}
			return t.writeHeader()
		default:
			return fmt.Errorf("storage: corrupt page %d (type %d)", id, buf[0])
		}
	}
}

// Stats reports structural statistics, used by the storage benchmarks.
func (t *LABTree) Stats() (pages uint32, height int, err error) {
	h := 0
	id := t.root
	buf := make([]byte, pageSize)
	for {
		if err := t.readPage(id, buf); err != nil {
			return 0, 0, err
		}
		h++
		if buf[0] == typeLeaf {
			return t.npages, h, nil
		}
		id = innerRef{buf}.child(0)
	}
}

// Sync flushes the file.
func (t *LABTree) Sync() error { return t.f.Sync() }

// Close flushes the header and closes the file.
func (t *LABTree) Close() error {
	if err := t.writeHeader(); err != nil {
		t.f.Close()
		return err
	}
	return t.f.Close()
}
