// Package cost evaluates plans (§5.4): exact I/O volumes (bytes and block
// requests), the modeled I/O time, and the peak memory requirement of a
// lowered timeline. Counting is exact for the bound parameters — the
// concrete-evaluation counterpart of the paper's piecewise
// quasipolynomials (DESIGN.md substitution S3).
package cost

import (
	"riotshare/internal/codegen"
	"riotshare/internal/disk"
	"riotshare/internal/prog"
)

// Cost is the evaluation of one plan.
type Cost struct {
	// Actual plan I/O (after realized sharing and dead-write elision).
	ReadBytes, WriteBytes int64
	ReadReqs, WriteReqs   int64
	// IOTimeSec is the modeled I/O time.
	IOTimeSec float64
	// PeakMemoryBytes is the maximum over time of the buffered working set
	// (blocks accessed by the running instance plus blocks held for reuse),
	// in logical bytes.
	PeakMemoryBytes int64
	// PerArray breaks down I/O volumes by array.
	PerArray map[string]ArrayIO
}

// ArrayIO is the per-array I/O volume breakdown.
type ArrayIO struct {
	ReadBytes, WriteBytes int64
}

// LogicalIOBytes is the plan's total logical I/O volume (reads plus
// writes). It is the disk-model-independent scalar the tiered planner uses
// to rank plans: two plans compare the same under any model whose time is
// monotone in bytes moved, so the greedy tier can score without committing
// to a device profile.
func (c Cost) LogicalIOBytes() int64 {
	return c.ReadBytes + c.WriteBytes
}

// Evaluate computes the plan cost from its lowered timeline.
func Evaluate(tl *codegen.Timeline, model disk.Model) Cost {
	c := Cost{PerArray: make(map[string]ArrayIO)}
	p := tl.Prog

	// Hold intervals per event; holds of the same block overlapping an
	// instant count once (they are the same buffered copy).
	type holdIv struct {
		key        string
		bytes      int64
		start, end int
	}
	holds := make([]holdIv, 0, len(tl.Holds))
	for _, h := range tl.Holds {
		arr := p.Arrays[h.Array]
		holds = append(holds, holdIv{
			key:   codegen.BlockKey(h.Array, h.R, h.C),
			bytes: arr.LogicalBlockBytes,
			start: h.StartEvent, end: h.EndEvent,
		})
	}

	for i, ev := range tl.Events {
		working := make(map[string]int64) // block key -> bytes
		readDone := make(map[string]bool) // block key -> physical read already counted
		for ai, ac := range ev.St.Accesses {
			action := tl.Actions[i][ai]
			if action == codegen.Inactive {
				continue
			}
			arr := p.Arrays[ac.Array]
			r, col := ac.BlockAt(ev.X, tl.Params)
			key := codegen.BlockKey(ac.Array, r, col)
			working[key] = arr.LogicalBlockBytes
			switch {
			case ac.Type == prog.Read && action == codegen.DoIO:
				if !readDone[key] {
					readDone[key] = true
					c.ReadBytes += arr.LogicalBlockBytes
					c.ReadReqs++
					pa := c.PerArray[ac.Array]
					pa.ReadBytes += arr.LogicalBlockBytes
					c.PerArray[ac.Array] = pa
				}
			case ac.Type == prog.Write && action == codegen.DoIO:
				c.WriteBytes += arr.LogicalBlockBytes
				c.WriteReqs++
				pa := c.PerArray[ac.Array]
				pa.WriteBytes += arr.LogicalBlockBytes
				c.PerArray[ac.Array] = pa
			}
		}
		// Memory at this instant: the working set plus all held blocks.
		mem := int64(0)
		seen := make(map[string]bool, len(working))
		for key, b := range working {
			mem += b
			seen[key] = true
		}
		for _, h := range holds {
			if h.start <= i && i <= h.end && !seen[h.key] {
				seen[h.key] = true
				mem += h.bytes
			}
		}
		if mem > c.PeakMemoryBytes {
			c.PeakMemoryBytes = mem
		}
	}
	c.IOTimeSec = model.Time(c.ReadBytes, c.WriteBytes, c.ReadReqs, c.WriteReqs)
	return c
}
