package cost

import (
	"context"

	"testing"

	"riotshare/internal/codegen"
	"riotshare/internal/deps"
	"riotshare/internal/disk"
	"riotshare/internal/ops"
	"riotshare/internal/sched"
)

func timelineFor(t *testing.T, n1, n2, n3 int64, names ...string) (*codegen.Timeline, *deps.Analysis) {
	t.Helper()
	p := ops.AddMul(ops.AddMulConfig{
		N1: n1, N2: n2, N3: n3,
		ABBlock: ops.Dims{Rows: 4, Cols: 4},
		DBlock:  ops.Dims{Rows: 4, Cols: 4},
	})
	an, err := deps.Analyze(p, deps.Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	s := sched.NewSearcher(an)
	var q []*deps.CoAccess
	var idxs []int
	for _, n := range names {
		c := an.FindShare(n)
		if c == nil {
			t.Fatalf("missing %s", n)
		}
		q = append(q, c)
		for i, sh := range an.Shares {
			if sh == c {
				idxs = append(idxs, i)
			}
		}
	}
	schd, ok := s.FindSchedule(context.Background(), q)
	if !ok {
		t.Fatalf("infeasible %v", names)
	}
	tl, err := codegen.Lower(an, sched.Plan{Shares: idxs, Schedule: schd})
	if err != nil {
		t.Fatal(err)
	}
	return tl, an
}

// Baseline I/O for Example 1 follows the paper's §1 analysis exactly:
// A and B read once, C written once and read n3 times, D read n1 times,
// E written n2 times and read n2-1 times (per block).
func TestBaselineVolumesMatchPaperAnalysis(t *testing.T) {
	const n1, n2, n3 = 3, 4, 2
	tl, _ := timelineFor(t, n1, n2, n3)
	c := Evaluate(tl, disk.PaperModel())
	blk := int64(4 * 4 * 8) // bytes per block (all arrays share the shape here)

	wantReads := map[string]int64{
		"A": n1 * n2 * blk,
		"B": n1 * n2 * blk,
		"C": n1 * n2 * n3 * blk,
		"D": n2 * n3 * n1 * blk,       // D[k,j] read for every i
		"E": n1 * n3 * (n2 - 1) * blk, // accumulator read at k>=1
	}
	wantWrites := map[string]int64{
		"C": n1 * n2 * blk,
		"E": n1 * n3 * n2 * blk,
	}
	for arr, want := range wantReads {
		if got := c.PerArray[arr].ReadBytes; got != want {
			t.Errorf("%s reads = %d want %d", arr, got, want)
		}
	}
	for arr, want := range wantWrites {
		if got := c.PerArray[arr].WriteBytes; got != want {
			t.Errorf("%s writes = %d want %d", arr, got, want)
		}
	}
}

// Realizing the accumulator shares eliminates exactly the E re-reads and
// intermediate writes.
func TestAccumulatorSavings(t *testing.T) {
	const n1, n2, n3 = 3, 4, 2
	base, _ := timelineFor(t, n1, n2, n3)
	opt, _ := timelineFor(t, n1, n2, n3, "s2WE→s2RE", "s2WE→s2WE")
	cb := Evaluate(base, disk.PaperModel())
	co := Evaluate(opt, disk.PaperModel())
	blk := int64(4 * 4 * 8)
	if diff := cb.PerArray["E"].ReadBytes - co.PerArray["E"].ReadBytes; diff != n1*n3*(n2-1)*blk {
		t.Errorf("E read savings = %d", diff)
	}
	if diff := cb.PerArray["E"].WriteBytes - co.PerArray["E"].WriteBytes; diff != n1*n3*(n2-1)*blk {
		t.Errorf("E write savings = %d", diff)
	}
	// Other arrays unchanged.
	for _, arr := range []string{"A", "B", "C", "D"} {
		if cb.PerArray[arr] != co.PerArray[arr] {
			t.Errorf("%s I/O changed unexpectedly", arr)
		}
	}
}

// Memory: the baseline's peak is the largest per-instance working set; the
// sharing plan additionally holds blocks across instances.
func TestMemoryAccounting(t *testing.T) {
	base, _ := timelineFor(t, 3, 4, 1)
	cb := Evaluate(base, disk.PaperModel())
	blk := int64(4 * 4 * 8)
	// s2 touches C, D, E (E read is inactive at k=0 but E write is live):
	// 3 distinct blocks.
	if cb.PeakMemoryBytes != 3*blk {
		t.Errorf("baseline peak = %d want %d", cb.PeakMemoryBytes, 3*blk)
	}
	opt, _ := timelineFor(t, 3, 4, 1, "s1WC→s2RC", "s2WE→s2RE", "s2WE→s2WE")
	co := Evaluate(opt, disk.PaperModel())
	if co.PeakMemoryBytes <= cb.PeakMemoryBytes {
		t.Errorf("sharing plan should need more memory: %d vs %d", co.PeakMemoryBytes, cb.PeakMemoryBytes)
	}
	// Fused s1 instant: A, B, C plus held E = 4 blocks.
	if co.PeakMemoryBytes != 4*blk {
		t.Errorf("sharing peak = %d want %d", co.PeakMemoryBytes, 4*blk)
	}
}

// I/O time follows the model: reads at 96 MB/s, writes at 60 MB/s.
func TestIOTimeModel(t *testing.T) {
	tl, _ := timelineFor(t, 2, 2, 1)
	m := disk.PaperModel()
	c := Evaluate(tl, m)
	want := float64(c.ReadBytes)/m.ReadBytesPerSec + float64(c.WriteBytes)/m.WriteBytesPerSec
	if c.IOTimeSec != want {
		t.Errorf("IOTimeSec = %v want %v", c.IOTimeSec, want)
	}
	refined := Evaluate(tl, disk.RefinedModel(0.01))
	if refined.IOTimeSec <= c.IOTimeSec {
		t.Error("per-request overhead must increase the estimate")
	}
}

// Request counts equal the number of block transfers.
func TestRequestCounts(t *testing.T) {
	const n1, n2, n3 = 2, 3, 1
	tl, _ := timelineFor(t, n1, n2, n3)
	c := Evaluate(tl, disk.PaperModel())
	blk := int64(4 * 4 * 8)
	if c.ReadBytes != c.ReadReqs*blk || c.WriteBytes != c.WriteReqs*blk {
		t.Errorf("volumes and requests inconsistent: %+v", c)
	}
}
