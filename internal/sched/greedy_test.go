package sched

import (
	"context"
	"testing"
	"time"
)

// greedyScore prefers plans realizing more sharing opportunities — a
// stand-in for the logical-I/O scorer core supplies (more realized sharing
// never increases I/O in these small configs).
func greedyScore(pl Plan) (float64, error) {
	return float64(100 - len(pl.Shares)), nil
}

// The greedy search must return the baseline plus a combined plan, stay
// feasible, and spend far fewer FindSchedule calls than the full search.
func TestSearchGreedyAddMul(t *testing.T) {
	an := addMulAnalysis(t, 4, 4, 2, true)
	s := NewSearcher(an)
	plans, err := s.SearchGreedy(context.Background(), GreedyOptions{Score: greedyScore})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 || plans[0].Shares != nil {
		t.Fatalf("greedy plans must start with the baseline, got %d plans", len(plans))
	}
	best := plans[len(plans)-1]
	if len(best.Shares) == 0 {
		t.Fatal("greedy search found no sharing plan on addmul")
	}
	if err := s.VerifyConcrete(best.Schedule); err != nil {
		t.Fatalf("greedy plan %s: %v", best.Label(an), err)
	}
	greedyCalls := s.Stats.FindScheduleCalls
	// Polynomially bounded effort: baseline + level 1 + at most
	// seeds·passes·n accretion probes (n small here, so a loose constant
	// catches an accidental return to exponential enumeration).
	n := len(an.Shares)
	if maxCalls := 1 + n + 4*3*n; greedyCalls > maxCalls {
		t.Errorf("greedy used %d FindSchedule calls on %d opportunities (bound %d)",
			greedyCalls, n, maxCalls)
	}

	s2 := NewSearcher(an)
	full, err := s2.Search(context.Background(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("greedy: %d calls, best %s; full: %d calls, %d plans",
		greedyCalls, best.Label(an), s2.Stats.FindScheduleCalls, len(full))
	// Every greedy combination must also exist in the full enumeration.
	want := subsetKey(best.Shares)
	found := false
	for _, pl := range full {
		if subsetKey(pl.Shares) == want {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("greedy combination %s missing from the full enumeration", best.Label(an))
	}
}

// A score function is mandatory: the greedy order is meaningless without
// one.
func TestSearchGreedyRequiresScore(t *testing.T) {
	an := addMulAnalysis(t, 3, 4, 2, true)
	if _, err := NewSearcher(an).SearchGreedy(context.Background(), GreedyOptions{}); err == nil {
		t.Fatal("expected an error without a Score function")
	}
}

// Cancellation before the baseline exists is an error; cancellation after
// degrades to whatever was found.
func TestSearchGreedyCanceled(t *testing.T) {
	an := addMulAnalysis(t, 3, 4, 2, true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewSearcher(an).SearchGreedy(ctx, GreedyOptions{Score: greedyScore}); err == nil {
		t.Fatal("expected an error when canceled before the baseline")
	}
}

// FindSchedule with a canceled context aborts mid-search: ok=false with
// ctx.Err() set distinguishes cancellation from infeasibility.
func TestFindScheduleCanceled(t *testing.T) {
	an := addMulAnalysis(t, 3, 4, 2, false)
	s := NewSearcher(an)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok := s.FindSchedule(ctx, nil); ok {
		t.Fatal("canceled FindSchedule must report ok=false")
	}
	if ctx.Err() == nil {
		t.Fatal("ctx.Err() must be set after cancellation")
	}
	// The same query succeeds with a live context.
	if _, ok := s.FindSchedule(context.Background(), nil); !ok {
		t.Fatal("baseline must be schedulable with a live context")
	}
}

// A deadline that expires mid-enumeration aborts Search with the
// context's error wrapped, not a hang.
func TestSearchDeadline(t *testing.T) {
	an := addMulAnalysis(t, 4, 4, 2, false)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now())
	defer cancel()
	if _, err := NewSearcher(an).Search(ctx, SearchOptions{}); err == nil {
		t.Fatal("expected a cancellation error from an expired deadline")
	} else if ctx.Err() == nil {
		t.Fatal("deadline must have expired")
	}
}
