package sched

import (
	"context"

	"testing"
	"time"

	"riotshare/internal/deps"
	"riotshare/internal/ops"
)

// TestPlanCountsPaperConfigs reproduces the search-space statistics of §6
// on the paper's three programs. The full linear-regression search
// explores its ~2^16 combination space and takes over a minute — the space
// depends on the program's structure, not its matrix sizes — so -short
// runs it with the paper's own §6 mitigation instead, a MaxLevel cap on
// combination size, alongside reduced problem sizes for the other two.
// Every search path still executes; the full statistics run locally.
func TestPlanCountsPaperConfigs(t *testing.T) {
	addMulN1, addMulN2 := int64(12), int64(12)
	twomm := ops.TwoMMConfig{N1: 6, N2: 10, N3: 6, N4: 10,
		ABlock: ops.Dims{Rows: 4, Cols: 4}, BBlock: ops.Dims{Rows: 4, Cols: 4}, DBlock: ops.Dims{Rows: 4, Cols: 4}}
	linreg := ops.LinRegConfig{N: 25, XBlock: ops.Dims{Rows: 60, Cols: 40}, YBlock: ops.Dims{Rows: 60, Cols: 4}}
	var linregOpt SearchOptions
	if testing.Short() {
		addMulN1, addMulN2 = 4, 4
		twomm = ops.TwoMMConfig{N1: 3, N2: 4, N3: 3, N4: 4,
			ABlock: ops.Dims{Rows: 4, Cols: 4}, BBlock: ops.Dims{Rows: 4, Cols: 4}, DBlock: ops.Dims{Rows: 4, Cols: 4}}
		linreg = ops.LinRegConfig{N: 4, XBlock: ops.Dims{Rows: 12, Cols: 5}, YBlock: ops.Dims{Rows: 12, Cols: 3}}
		linregOpt.MaxLevel = 2
	}

	// Example 1 paper config: 12x12 blocks, n3=1.
	an := addMulAnalysis(t, addMulN1, addMulN2, 1, true)
	s := NewSearcher(an)
	t0 := time.Now()
	plans, err := s.Search(context.Background(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("addmul n3=1: %d opportunities %v -> %d plans in %v (%d calls)",
		len(an.Shares), an.ShareStrings(), len(plans), time.Since(t0), s.Stats.FindScheduleCalls)

	// TwoMM config A: 6x6 etc.
	p2 := ops.TwoMM(twomm)
	an2, err := deps.Analyze(p2, deps.Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSearcher(an2)
	t0 = time.Now()
	plans2, err := s2.Search(context.Background(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("twomm: %d opportunities -> %d plans (paper: 40) in %v (%d calls)",
		len(an2.Shares), len(plans2), time.Since(t0), s2.Stats.FindScheduleCalls)

	// LinReg. The full (non-short) search takes on the order of 80s; give
	// it its own deadline so a regression fails here with a clear cancel
	// error instead of hanging the suite until the go test timeout.
	p3 := ops.LinReg(linreg)
	an3, err := deps.Analyze(p3, deps.Options{BindParams: true})
	if err != nil {
		t.Fatal(err)
	}
	s3 := NewSearcher(an3)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	t0 = time.Now()
	plans3, err := s3.Search(ctx, linregOpt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("linreg: %d opportunities -> %d plans in %v (%d calls; paper: 2^16 space, 94%% pruned)",
		len(an3.Shares), len(plans3), time.Since(t0), s3.Stats.FindScheduleCalls)
}
