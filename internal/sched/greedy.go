package sched

import (
	"context"
	"sort"
)

// GreedyOptions configures SearchGreedy.
type GreedyOptions struct {
	// Score maps a plan to a cost estimate (lower is better) used to order
	// candidates and to accept or reject greedy additions. It is typically
	// backed by lowering the plan and summing logical I/O bytes. A scoring
	// error disqualifies the candidate but does not abort the search.
	Score func(pl Plan) (float64, error)
	// MaxCalls caps FindSchedule invocations (0 = default 1000). Together
	// with ctx this bounds worst-case planning latency: the greedy pass
	// tests each of the n opportunities once, then at most n additions.
	MaxCalls int
}

// SearchGreedy is the budgeted fast-path alternative to Search: instead of
// the Apriori enumeration over the (potentially exponential) feasibility
// lattice, it scores each sharing opportunity in isolation, then greedily
// accretes them in ascending-cost order, keeping an addition only if the
// combined set remains schedulable and its score does not worsen. It runs
// O(n) FindSchedule calls rather than the full search's O(2^n) worst case.
//
// The returned slice always starts with the no-sharing baseline plan and
// ends with the best greedy combination found; intermediate accepted states
// are not returned. If ctx expires mid-way the plans found so far are
// returned with a nil error, so a wall-clock budget degrades plan quality
// instead of failing the query; an error is returned only when not even the
// baseline could be scheduled.
func (s *Searcher) SearchGreedy(ctx context.Context, opt GreedyOptions) ([]Plan, error) {
	if opt.Score == nil {
		return nil, errf("greedy search requires a Score function")
	}
	maxCalls := opt.MaxCalls
	if maxCalls == 0 {
		maxCalls = 1000
	}
	startCalls := s.Stats.FindScheduleCalls
	expired := func() bool {
		return ctx.Err() != nil || s.Stats.FindScheduleCalls-startCalls >= maxCalls
	}

	base, ok := s.FindSchedule(ctx, nil)
	if !ok {
		if err := ctx.Err(); err != nil {
			return nil, errf("greedy search canceled before baseline: %v", err)
		}
		return nil, errf("no legal schedule exists even without sharing (program %q)", s.Prog.Name)
	}
	basePlan := Plan{Shares: nil, Schedule: base}
	plans := []Plan{basePlan}

	n := len(s.An.Shares)
	if n == 0 {
		return plans, nil
	}
	baseScore, err := opt.Score(basePlan)
	if err != nil {
		return plans, nil
	}

	// Level 1: score each feasible opportunity in isolation.
	type cand struct {
		idx   int
		plan  Plan
		score float64
	}
	var cands []cand
	for i := 0; i < n && !expired(); i++ {
		q := []int{i}
		sch, ok := s.FindSchedule(ctx, s.coAccesses(q))
		if !ok {
			continue
		}
		pl := Plan{Shares: q, Schedule: sch}
		sc, err := opt.Score(pl)
		if err != nil {
			continue
		}
		cands = append(cands, cand{idx: i, plan: pl, score: sc})
	}
	// Cost-ordered: cheapest single-opportunity plans first; index breaks
	// ties so the pass is deterministic.
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score < cands[b].score
		}
		return cands[a].idx < cands[b].idx
	})

	// Greedy accretion from one seed: try every other candidate in cost
	// order on top of the accepted set, keeping an addition when the
	// combination stays schedulable and its score does not worsen. Passes
	// repeat until a fixpoint, since an addition accepted late in a pass
	// can turn an earlier-rejected candidate profitable.
	accrete := func(seed cand) (Plan, float64) {
		cur, curScore := seed.plan, seed.score
		in := map[int]bool{seed.idx: true}
		for changed := true; changed && !expired(); {
			changed = false
			for _, c := range cands {
				if expired() {
					break
				}
				if in[c.idx] {
					continue
				}
				q := append(append([]int(nil), cur.Shares...), c.idx)
				sort.Ints(q)
				sch, ok := s.FindSchedule(ctx, s.coAccesses(q))
				if !ok {
					continue
				}
				pl := Plan{Shares: q, Schedule: sch}
				sc, err := opt.Score(pl)
				if err != nil || sc > curScore {
					continue
				}
				cur, curScore = pl, sc
				in[c.idx] = true
				changed = true
			}
		}
		return cur, curScore
	}

	// A chain grown from the globally cheapest single opportunity can be
	// myopic — its schedule direction may be incompatible with a cheaper
	// family of opportunities — so grow one chain per top seed and keep
	// the best. Seeds that already score worse than the baseline cannot
	// start an improving chain and are skipped.
	const maxSeeds = 3
	var best *Plan
	bestScore := baseScore
	for i := 0; i < len(cands) && i < maxSeeds && !expired(); i++ {
		if cands[i].score > baseScore {
			break
		}
		pl, sc := accrete(cands[i])
		if sc <= bestScore {
			kept := pl
			best, bestScore = &kept, sc
		}
	}
	if best != nil {
		plans = append(plans, *best)
	}
	return plans, nil
}
