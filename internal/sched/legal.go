package sched

import (
	"riotshare/internal/polyhedra"
	"riotshare/internal/prog"
)

// Legal verifies a schedule against every dependence, independently of how
// the schedule was constructed: for each dependence piece P, the violation
// set P ∩ {Θ_tgt(x') ⪯ Θ_src(x)} must have no integer point (for any
// parameter values in the context). This is the safety net that guarantees
// the optimizer never emits an illegal plan.
func (s *Searcher) Legal(sch *prog.Schedule) bool {
	np := s.Prog.NumParams()
	for _, dep := range s.An.Deps {
		src, tgt := dep.Src, dep.Tgt
		srcRows, tgtRows := sch.Rows[src.ID], sch.Rows[tgt.ID]
		total := src.Ds() + tgt.Ds() + np
		srcOff, tgtOff, paramOff := 0, src.Ds(), src.Ds()+tgt.Ds()

		// diff_q = Θ_tgt,q(x') - Θ_src,q(x) as a row over the pair space.
		diff := make([][]int64, sch.NRows)
		diffK := make([]int64, sch.NRows)
		for qd := 0; qd < sch.NRows; qd++ {
			coef := make([]int64, total)
			for i := 0; i < src.Ds(); i++ {
				coef[srcOff+i] -= srcRows[qd][i]
			}
			for i := 0; i < tgt.Ds(); i++ {
				coef[tgtOff+i] += tgtRows[qd][i]
			}
			for j := 0; j < np; j++ {
				coef[paramOff+j] += tgtRows[qd][tgt.Ds()+j] - srcRows[qd][src.Ds()+j]
			}
			diff[qd] = coef
			diffK[qd] = tgtRows[qd][tgt.Ds()+np] - srcRows[qd][src.Ds()+np]
		}

		for _, piece := range dep.Extent.Ps {
			// Violation pieces: equal on dims < q, strictly reversed at q;
			// plus the all-equal piece (which would also break injectivity).
			for q := 0; q <= sch.NRows; q++ {
				v := piece.Clone()
				for r := 0; r < q; r++ {
					v.AddEq(diff[r], diffK[r])
				}
				if q < sch.NRows {
					// tgt - src <= -1 at dim q.
					neg := make([]int64, total)
					for i, c := range diff[q] {
						neg[i] = -c
					}
					v.AddIneq(neg, -diffK[q]-1)
				}
				if !v.IsEmptyInt(16) {
					return false
				}
			}
		}
	}
	return true
}

// VerifyConcrete checks legality at the instance level for the program's
// bound parameters: it enumerates every dependence pair and compares actual
// schedule times. Used by tests and the execution engine as a second,
// enumeration-based line of defence.
func (s *Searcher) VerifyConcrete(sch *prog.Schedule) error {
	params := s.Prog.ParamValues()
	for _, dep := range s.An.Deps {
		pairs, err := dep.ConcretePairs(2_000_000)
		if err != nil {
			return err
		}
		for _, pr := range pairs {
			t1 := sch.TimeOf(dep.Src, pr[0], params)
			t2 := sch.TimeOf(dep.Tgt, pr[1], params)
			if !prog.LexLess(t1, t2) {
				return errf("dependence %s violated at %v→%v: %v !< %v", dep, pr[0], pr[1], t1, t2)
			}
		}
	}
	return nil
}

// ViolationWitness returns a concrete witness pair for an illegal schedule,
// for diagnostics; ok=false if the schedule is legal under the binding.
func (s *Searcher) ViolationWitness(sch *prog.Schedule) (depStr string, src, tgt []int64, ok bool) {
	params := s.Prog.ParamValues()
	for _, dep := range s.An.Deps {
		pairs, err := dep.ConcretePairs(2_000_000)
		if err != nil {
			continue
		}
		for _, pr := range pairs {
			t1 := sch.TimeOf(dep.Src, pr[0], params)
			t2 := sch.TimeOf(dep.Tgt, pr[1], params)
			if !prog.LexLess(t1, t2) {
				return dep.String(), pr[0], pr[1], true
			}
		}
	}
	return "", nil, nil, false
}

var _ = polyhedra.NewPoly // keep import when building incrementally
