package sched

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"riotshare/internal/deps"
	"riotshare/internal/prog"
)

// Plan is a legal schedule paired with the set of sharing opportunities it
// was constructed to realize (the subset Q of Algorithm 2; code generation
// exploits exactly this set even if the schedule accidentally realizes
// more, §5.3).
type Plan struct {
	// Shares are indices into the analysis's Shares list.
	Shares   []int
	Schedule *prog.Schedule
}

// ShareSet returns the co-accesses this plan realizes.
func (pl *Plan) ShareSet(an *deps.Analysis) []*deps.CoAccess {
	out := make([]*deps.CoAccess, len(pl.Shares))
	for i, idx := range pl.Shares {
		out[i] = an.Shares[idx]
	}
	return out
}

// Label renders the plan's sharing set, e.g. "{s1WC→s2RC, s2WE→s2RE}".
func (pl *Plan) Label(an *deps.Analysis) string {
	if len(pl.Shares) == 0 {
		return "{}"
	}
	parts := make([]string, len(pl.Shares))
	for i, idx := range pl.Shares {
		parts[i] = an.Shares[idx].String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// SearchOptions bounds the Apriori enumeration.
type SearchOptions struct {
	// MaxCalls caps FindSchedule invocations (0 = default 100000).
	MaxCalls int
	// NoPruning disables the Apriori property and tests every subset, for
	// the ablation experiment.
	NoPruning bool
	// MaxLevel, when nonzero, caps the size of sharing-opportunity
	// combinations considered — the paper's §6 suggestion for cutting
	// optimization time on large programs ("localizing optimization" /
	// terminating enumeration early). Plans realizing more than MaxLevel
	// opportunities are then not discovered.
	MaxLevel int
}

// Search is Algorithm 2: Apriori-style enumeration of sharing-opportunity
// combinations. A k-subset is considered only if all its (k-1)-subsets were
// feasible (Lemma 2); each candidate is tested with FindSchedule. It returns
// one plan per feasible combination, including the empty combination (the
// no-sharing baseline plan). Canceling ctx aborts the enumeration with the
// context's error, so shutdown and test deadlines can interrupt the
// potentially minutes-long full search.
func (s *Searcher) Search(ctx context.Context, opt SearchOptions) ([]Plan, error) {
	maxCalls := opt.MaxCalls
	if maxCalls == 0 {
		maxCalls = 100000
	}
	budget := func() error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("sched: search canceled: %w", err)
		}
		if s.Stats.FindScheduleCalls > maxCalls {
			return errf("search exceeded %d FindSchedule calls", maxCalls)
		}
		return nil
	}

	base, ok := s.FindSchedule(ctx, nil)
	if !ok {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sched: search canceled: %w", err)
		}
		return nil, errf("no legal schedule exists even without sharing (program %q)", s.Prog.Name)
	}
	plans := []Plan{{Shares: nil, Schedule: base}}

	n := len(s.An.Shares)
	if n == 0 {
		return plans, nil
	}

	if opt.NoPruning {
		return s.searchNoPruning(ctx, plans, n, maxCalls)
	}

	// Level 1.
	feasible := make(map[string][]int) // key -> subset
	var level [][]int
	for i := 0; i < n; i++ {
		if err := budget(); err != nil {
			return nil, err
		}
		q := []int{i}
		if sch, ok := s.FindSchedule(ctx, s.coAccesses(q)); ok {
			level = append(level, q)
			feasible[subsetKey(q)] = q
			plans = append(plans, Plan{Shares: q, Schedule: sch})
		}
	}
	// Levels k >= 2 (lines 4-9).
	maxLevel := n
	if opt.MaxLevel > 0 && opt.MaxLevel < n {
		maxLevel = opt.MaxLevel
	}
	for k := 2; len(level) > 0 && k <= maxLevel; k++ {
		var next [][]int
		seen := make(map[string]bool)
		for _, a := range level {
			last := a[len(a)-1]
			for b := last + 1; b < n; b++ {
				cand := append(append([]int(nil), a...), b)
				key := subsetKey(cand)
				if seen[key] {
					continue
				}
				seen[key] = true
				// Apriori property: all (k-1)-subsets must be feasible.
				allFeasible := true
				for drop := 0; drop < len(cand); drop++ {
					sub := append(append([]int(nil), cand[:drop]...), cand[drop+1:]...)
					if _, ok := feasible[subsetKey(sub)]; !ok {
						allFeasible = false
						break
					}
				}
				if !allFeasible {
					continue
				}
				if err := budget(); err != nil {
					return nil, err
				}
				if sch, ok := s.FindSchedule(ctx, s.coAccesses(cand)); ok {
					next = append(next, cand)
					feasible[subsetKey(cand)] = cand
					plans = append(plans, Plan{Shares: cand, Schedule: sch})
				}
			}
		}
		level = next
	}
	return plans, nil
}

// searchNoPruning tests the full power set (ablation baseline).
func (s *Searcher) searchNoPruning(ctx context.Context, plans []Plan, n, maxCalls int) ([]Plan, error) {
	for mask := 1; mask < 1<<n; mask++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sched: search canceled: %w", err)
		}
		if s.Stats.FindScheduleCalls > maxCalls {
			return nil, errf("unpruned search exceeded %d FindSchedule calls", maxCalls)
		}
		var q []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				q = append(q, i)
			}
		}
		if sch, ok := s.FindSchedule(ctx, s.coAccesses(q)); ok {
			plans = append(plans, Plan{Shares: q, Schedule: sch})
		}
	}
	return plans, nil
}

func (s *Searcher) coAccesses(q []int) []*deps.CoAccess {
	out := make([]*deps.CoAccess, len(q))
	for i, idx := range q {
		out[i] = s.An.Shares[idx]
	}
	return out
}

func subsetKey(q []int) string {
	c := append([]int(nil), q...)
	sort.Ints(c)
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}
