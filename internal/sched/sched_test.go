package sched

import (
	"context"

	"testing"

	"riotshare/internal/deps"
	"riotshare/internal/ops"
	"riotshare/internal/prog"
)

func addMulAnalysis(t *testing.T, n1, n2, n3 int64, bind bool) *deps.Analysis {
	t.Helper()
	p := ops.AddMul(ops.AddMulConfig{
		N1: n1, N2: n2, N3: n3,
		ABBlock: ops.Dims{Rows: 8, Cols: 8},
		DBlock:  ops.Dims{Rows: 8, Cols: 8},
	})
	an, err := deps.Analyze(p, deps.Options{BindParams: bind})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func sharesByName(t *testing.T, an *deps.Analysis, names ...string) []*deps.CoAccess {
	t.Helper()
	var out []*deps.CoAccess
	for _, n := range names {
		c := an.FindShare(n)
		if c == nil {
			t.Fatalf("share %s not found among %v", n, an.ShareStrings())
		}
		out = append(out, c)
	}
	return out
}

// FindSchedule with no sharing opportunities must always find a legal
// schedule (the baseline plan).
func TestFindScheduleEmpty(t *testing.T) {
	an := addMulAnalysis(t, 3, 4, 2, false)
	s := NewSearcher(an)
	sch, ok := s.FindSchedule(context.Background(), nil)
	if !ok {
		t.Fatal("baseline schedule must exist")
	}
	if err := s.VerifyConcrete(sch); err != nil {
		t.Fatal(err)
	}
}

// The paper's Plan 7 sharing set {s1WC→s2RC, s2WE→s2RE, s2WE→s2WE} must be
// feasible, and the resulting schedule must be legal both symbolically and
// at the instance level.
func TestFindSchedulePlan7(t *testing.T) {
	an := addMulAnalysis(t, 3, 4, 2, false)
	s := NewSearcher(an)
	q := sharesByName(t, an, "s1WC→s2RC", "s2WE→s2RE", "s2WE→s2WE")
	sch, ok := s.FindSchedule(context.Background(), q)
	if !ok {
		t.Fatal("Plan 7 sharing set should be feasible")
	}
	t.Logf("schedule:\n%s", sch.StringFor(an.Prog))
	if err := s.VerifyConcrete(sch); err != nil {
		t.Fatal(err)
	}
	// The schedule must actually realize the opportunities per Table 1:
	// check the pipeline share s1WC→s2RC maps paired instances to times
	// differing only in the constant dimension.
	params := an.Prog.ParamValues()
	c := an.FindShare("s1WC→s2RC")
	pairs, err := c.ConcretePairs(100000)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range pairs {
		t1 := sch.TimeOf(c.Src, pr[0], params)
		t2 := sch.TimeOf(c.Tgt, pr[1], params)
		for d := 0; d < len(t1)-1; d++ {
			if t1[d] != t2[d] {
				t.Fatalf("non-self share not co-scheduled: %v vs %v", t1, t2)
			}
		}
		if t2[len(t2)-1] <= t1[len(t1)-1] {
			t.Fatalf("W→R constant order wrong: %v vs %v", t1, t2)
		}
	}
	// And the self share s2WE→s2RE must be consecutive at depth d̃.
	cs := an.FindShare("s2WE→s2RE")
	pairs, err = cs.ConcretePairs(100000)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range pairs {
		t1 := sch.TimeOf(cs.Src, pr[0], params)
		t2 := sch.TimeOf(cs.Tgt, pr[1], params)
		dt := len(t1) - 2
		for d := 0; d < dt; d++ {
			if t1[d] != t2[d] {
				t.Fatalf("self share prefix mismatch: %v vs %v", t1, t2)
			}
		}
		if t2[dt]-t1[dt] != 1 {
			t.Fatalf("self share not consecutive: %v vs %v", t1, t2)
		}
	}
}

// Conflicting combination: the E-accumulator self shares require k
// consecutive at d̃ while the D self share requires i consecutive — they
// cannot both hold (§1's incompatibility discussion).
func TestFindScheduleConflict(t *testing.T) {
	an := addMulAnalysis(t, 3, 4, 2, false)
	s := NewSearcher(an)
	q := sharesByName(t, an, "s2WE→s2RE", "s2RD→s2RD")
	if _, ok := s.FindSchedule(context.Background(), q); ok {
		t.Fatal("E-accumulation and D-reuse self shares should conflict")
	}
}

// Apriori search on Example 1 with n3=1 (the paper's §6.1 configuration
// structure): the paper reports 8 legal plans.
func TestAprioriAddMulN3Eq1(t *testing.T) {
	an := addMulAnalysis(t, 12, 12, 1, true)
	s := NewSearcher(an)
	plans, err := s.Search(context.Background(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("found %d plans (paper: 8) from %d opportunities %v; %d FindSchedule calls",
		len(plans), len(an.Shares), an.ShareStrings(), s.Stats.FindScheduleCalls)
	if len(plans) < 6 || len(plans) > 12 {
		t.Errorf("plan count %d far from the paper's 8", len(plans))
	}
	// The Plan-7 sharing set must be among the feasible combinations.
	want := map[string]bool{"s1WC→s2RC": true, "s2WE→s2RE": true, "s2WE→s2WE": true}
	found := false
	for _, pl := range plans {
		if len(pl.Shares) != len(want) {
			continue
		}
		all := true
		for _, idx := range pl.Shares {
			if !want[an.Shares[idx].String()] {
				all = false
			}
		}
		if all {
			found = true
		}
	}
	if !found {
		t.Error("the paper's best plan (Plan 7) combination missing from search results")
	}
	// Every plan's schedule must pass instance-level legality.
	for _, pl := range plans {
		if err := s.VerifyConcrete(pl.Schedule); err != nil {
			t.Errorf("plan %s illegal: %v", pl.Label(an), err)
		}
	}
}

// The Apriori property must prune strictly more than the power set would
// explore, while finding the same feasible combinations.
func TestAprioriMatchesNoPruning(t *testing.T) {
	an := addMulAnalysis(t, 3, 3, 1, true)
	s1 := NewSearcher(an)
	pruned, err := s1.Search(context.Background(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSearcher(an)
	full, err := s2.Search(context.Background(), SearchOptions{NoPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	key := func(pl Plan) string { return subsetKey(pl.Shares) }
	a := map[string]bool{}
	for _, pl := range pruned {
		a[key(pl)] = true
	}
	b := map[string]bool{}
	for _, pl := range full {
		b[key(pl)] = true
	}
	if len(a) != len(b) {
		t.Fatalf("pruned found %d combos, unpruned %d", len(a), len(b))
	}
	for k := range a {
		if !b[k] {
			t.Fatalf("combo %q found only with pruning", k)
		}
	}
	if s1.Stats.FindScheduleCalls > s2.Stats.FindScheduleCalls {
		t.Errorf("pruning used more calls (%d) than power set (%d)",
			s1.Stats.FindScheduleCalls, s2.Stats.FindScheduleCalls)
	}
}

// Two matrix multiplications: the key cross-statement share plus the
// accumulator shares of both statements (the paper's Plan 2) must be
// feasible; and Plan 3 (share B and D instead) must also be feasible.
func TestTwoMMKeyPlans(t *testing.T) {
	p := ops.TwoMM(ops.TwoMMConfig{
		N1: 2, N2: 3, N3: 2, N4: 3,
		ABlock: ops.Dims{Rows: 4, Cols: 4}, BBlock: ops.Dims{Rows: 4, Cols: 4}, DBlock: ops.Dims{Rows: 4, Cols: 4},
	})
	an, err := deps.Analyze(p, deps.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(an)

	plan2 := sharesByName(t, an, "s1WC→s1RC", "s1WC→s1WC", "s2WE→s2RE", "s2WE→s2WE", "s1RA→s2RA")
	sch, ok := s.FindSchedule(context.Background(), plan2)
	if !ok {
		t.Fatal("paper Plan 2 (accumulate C,E + share A) should be feasible")
	}
	if err := s.VerifyConcrete(sch); err != nil {
		t.Fatal(err)
	}

	plan3 := sharesByName(t, an, "s1RA→s2RA", "s1RB→s1RB", "s2RD→s2RD")
	sch3, ok := s.FindSchedule(context.Background(), plan3)
	if !ok {
		t.Fatal("paper Plan 3 (share A, B, D) should be feasible")
	}
	if err := s.VerifyConcrete(sch3); err != nil {
		t.Fatal(err)
	}
}

// Linear regression: sharing X reads between the two upstream
// multiplications (s1, s2) must be feasible; sharing X between s1 and s5 is
// impossible (s5 transitively depends on s1's result through U, W, β̂).
func TestLinRegXSharing(t *testing.T) {
	p := ops.LinReg(ops.LinRegConfig{
		N: 4, XBlock: ops.Dims{Rows: 8, Cols: 4}, YBlock: ops.Dims{Rows: 8, Cols: 2},
	})
	an, err := deps.Analyze(p, deps.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(an)
	good := sharesByName(t, an, "s1RX→s2RX")
	sch, ok := s.FindSchedule(context.Background(), good)
	if !ok {
		t.Fatal("sharing X between s1 and s2 should be feasible")
	}
	if err := s.VerifyConcrete(sch); err != nil {
		t.Fatal(err)
	}
	bad := sharesByName(t, an, "s1RX→s5RX")
	if _, ok := s.FindSchedule(context.Background(), bad); ok {
		t.Fatal("sharing X between s1 and s5 must be infeasible (dependence chain)")
	}
}

// Depth-0 statements (linreg's inversion step) must be schedulable.
func TestDepthZeroStatements(t *testing.T) {
	p := ops.LinReg(ops.LinRegConfig{
		N: 3, XBlock: ops.Dims{Rows: 4, Cols: 2}, YBlock: ops.Dims{Rows: 4, Cols: 2},
	})
	an, err := deps.Analyze(p, deps.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(an)
	sch, ok := s.FindSchedule(context.Background(), nil)
	if !ok {
		t.Fatal("baseline schedule must exist for linreg")
	}
	if err := s.VerifyConcrete(sch); err != nil {
		t.Fatal(err)
	}
}

// Legal() must reject a hand-built illegal schedule (s2 before s1).
func TestLegalRejectsBadSchedule(t *testing.T) {
	an := addMulAnalysis(t, 2, 2, 1, true)
	s := NewSearcher(an)
	p := an.Prog
	dt := p.DTilde()
	np := p.NumParams()
	bad := prog.NewSchedule(dt + 1)
	for _, st := range p.Stmts {
		rows := make([][]int64, dt+1)
		w := st.Ds() + np + 1
		for d := 0; d < dt; d++ {
			rows[d] = make([]int64, w)
			if d < st.Ds() {
				rows[d][d] = 1
			}
		}
		rows[dt] = make([]int64, w)
		// Reverse the statement order: s1 gets constant 1, s2 gets 0, and
		// first dimension 0 for both — all s2 instances with equal loop
		// prefix run before s1's.
		if st.Name == "s1" {
			rows[dt][w-1] = 1
		}
		bad.SetRows(st.ID, rows)
	}
	if s.Legal(bad) {
		t.Fatal("schedule violating s1WC→s2RC accepted")
	}
}

// Property: every plan the search returns realizes exactly a subset that is
// closed under the Apriori property (all sub-subsets feasible).
func TestSearchResultsClosedDownward(t *testing.T) {
	an := addMulAnalysis(t, 3, 3, 2, true)
	s := NewSearcher(an)
	plans, err := s.Search(context.Background(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	feasible := map[string]bool{}
	for _, pl := range plans {
		feasible[subsetKey(pl.Shares)] = true
	}
	for _, pl := range plans {
		for drop := 0; drop < len(pl.Shares); drop++ {
			sub := append(append([]int(nil), pl.Shares[:drop]...), pl.Shares[drop+1:]...)
			if !feasible[subsetKey(sub)] {
				t.Fatalf("plan %v feasible but subset %v missing", pl.Shares, sub)
			}
		}
	}
}

func TestEnumRow(t *testing.T) {
	if got := enumRow(3, 0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("needed=0 should force dependent, got %v", got)
	}
	if got := enumRow(2, 2); len(got) != 1 || got[0] != 1 {
		t.Fatalf("remaining==needed should force independent, got %v", got)
	}
	if got := enumRow(3, 2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("want {0,1}, got %v", got)
	}
}

// MaxLevel bounds combination size (the §6 early-termination knob).
func TestSearchMaxLevel(t *testing.T) {
	an := addMulAnalysis(t, 3, 3, 1, true)
	s := NewSearcher(an)
	plans, err := s.Search(context.Background(), SearchOptions{MaxLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range plans {
		if len(pl.Shares) > 1 {
			t.Fatalf("MaxLevel=1 returned a %d-combination", len(pl.Shares))
		}
	}
	full, err := NewSearcher(an).Search(context.Background(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) >= len(full) {
		t.Fatalf("level cap should reduce the plan count: %d vs %d", len(plans), len(full))
	}
}

// The call budget must abort runaway searches with an error.
func TestSearchMaxCallsBudget(t *testing.T) {
	an := addMulAnalysis(t, 3, 3, 2, true)
	s := NewSearcher(an)
	if _, err := s.Search(context.Background(), SearchOptions{MaxCalls: 2}); err == nil {
		t.Fatal("tiny budget should error")
	}
}

// The Farkas cache must hit across FindSchedule calls.
func TestFarkasCacheHits(t *testing.T) {
	an := addMulAnalysis(t, 3, 3, 1, true)
	s := NewSearcher(an)
	if _, err := s.Search(context.Background(), SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	if s.Stats.CacheHits == 0 {
		t.Fatal("expected Farkas cache hits across the search")
	}
}
